open Cm_util

type t = {
  trace : Trace.t;
  engine : Eventsim.Engine.t;
  out_dir : string;
  tag : string;
  mutable dumps : int;
  mutable files : string list; (* newest first *)
}

let ensure_dir dir = if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let dump t ~reason =
  ensure_dir t.out_dir;
  let path = Filename.concat t.out_dir (Printf.sprintf "%s-%03d.dump.jsonl" t.tag t.dumps) in
  t.dumps <- t.dumps + 1;
  t.files <- path :: t.files;
  let b = Buffer.create 4096 in
  (* header line first, so a truncated dump still says why it exists;
     everything below is virtual-time data — byte-identical per seed *)
  Json.write b
    (Json.Obj
       [
         ("recorder", Json.Str t.tag);
         ("reason", Json.Str reason);
         ("ts_ns", Json.Int (Eventsim.Engine.now t.engine));
         ("events", Json.Int (Trace.length t.trace));
         ("dropped", Json.Int (Trace.dropped t.trace));
       ]);
  Buffer.add_char b '\n';
  Trace.to_jsonl b t.trace;
  let oc = open_out_bin path in
  output_string oc (Buffer.contents b);
  close_out oc;
  path

let default_capacity = 4096

let create engine ~out_dir ?(tag = "recorder") ?(capacity = default_capacity) () =
  let t =
    {
      trace = Trace.create_ring engine ~capacity;
      engine;
      out_dir;
      tag;
      dumps = 0;
      files = [];
    }
  in
  (* a crash that escapes event dispatch dumps the ring before unwinding *)
  Eventsim.Engine.set_escape_hook engine
    (Some
       (fun e ->
         match dump t ~reason:("exception: " ^ Printexc.to_string e) with
         | (_ : string) -> ()
         | exception _ -> ()));
  t

let trace t = t.trace
let dumps t = t.dumps
let files t = List.rev t.files
let last_file t = match t.files with [] -> None | f :: _ -> Some f
