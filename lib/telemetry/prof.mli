(** Event-core profiler, rendering side.

    The measurement lives in {!Eventsim.Engine} ([enable_prof] /
    [prof_tag] / [prof_report]): exact per-category dispatch counters,
    sampled wall-clock attribution (one [gettimeofday] every
    [2^sample_shift] dispatches), GC deltas from [Gc.quick_stat], and
    queue/pool occupancy counters.  This module turns a report into JSON
    (for the bench file) and a human-readable summary (for stderr).

    Wall-clock and GC figures are nondeterministic; never route them into
    a seeded-JSON channel that CI byte-diffs. *)

val enabled : Eventsim.Engine.t -> bool

val report_json : Eventsim.Engine.prof_report -> Cm_util.Json.t
(** Render one report. *)

val to_json : Eventsim.Engine.t -> Cm_util.Json.t
(** The engine's profile so far ({!Cm_util.Json.Null} if the profiler is
    off). *)

val summary : Eventsim.Engine.t -> string
(** Multi-line human summary (dispatch shares, sampled wall split, GC,
    queue occupancy). *)
