open Cm_util

type counter = { c_name : string; mutable c_count : int }
type gauge = { g_name : string; g_read : unit -> float }
type histogram = { h_name : string; h_hist : Stats.Histogram.t }

type entry = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  by_name : (string, entry) Hashtbl.t;
  mutable rev_order : entry list; (* registration order, newest first *)
}

let create () = { by_name = Hashtbl.create 32; rev_order = [] }

let entry_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let register t entry =
  let name = entry_name entry in
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Metrics: %S is already registered" name);
  Hashtbl.replace t.by_name name entry;
  t.rev_order <- entry :: t.rev_order

let counter t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.counter: %S is not a counter" name)
  | None ->
      let c = { c_name = name; c_count = 0 } in
      register t (Counter c);
      c

let incr ?(by = 1) c = c.c_count <- c.c_count + by
let count c = c.c_count
let counter_name c = c.c_name

let gauge t name read =
  let g = { g_name = name; g_read = read } in
  register t (Gauge g);
  g

let sample g = g.g_read ()
let gauge_name g = g.g_name

let histogram t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.histogram: %S is not a histogram" name)
  | None ->
      let h = { h_name = name; h_hist = Stats.Histogram.create () } in
      register t (Histogram h);
      h

let observe h v = Stats.Histogram.observe h.h_hist v
let hist h = h.h_hist
let histogram_name h = h.h_name

let entries t = List.rev t.rev_order
let gauges t = List.filter_map (function Gauge g -> Some g | _ -> None) (entries t)

let reset t =
  List.iter
    (function
      | Counter c -> c.c_count <- 0
      | Histogram h -> Stats.Histogram.reset h.h_hist
      | Gauge _ -> ())
    t.rev_order

type snapshot_value =
  | Sc of int  (** counter value *)
  | Sg of float  (** gauge reading *)
  | Sh of Stats.Histogram.t  (** histogram (live; copy via merge if needed) *)

let snapshot t =
  List.map
    (function
      | Counter c -> (c.c_name, Sc c.c_count)
      | Gauge g -> (g.g_name, Sg (g.g_read ()))
      | Histogram h -> (h.h_name, Sh h.h_hist))
    (entries t)

let to_json t =
  let open Json in
  let value = function
    | Sc n -> Int n
    | Sg v -> Float v
    | Sh h ->
        (* an empty histogram has no min/max/quantiles: emit explicit
           nulls rather than the NaN/±inf sentinels the accumulator
           carries internally *)
        if Stats.Histogram.count h = 0 then
          Obj
            [
              ("count", Int 0);
              ("sum", Float 0.);
              ("min", Null);
              ("max", Null);
              ("p50", Null);
              ("p90", Null);
              ("p99", Null);
            ]
        else
          Obj
            [
              ("count", Int (Stats.Histogram.count h));
              ("sum", Float (Stats.Histogram.sum h));
              ("min", Float (Stats.Histogram.min_value h));
              ("max", Float (Stats.Histogram.max_value h));
              ("p50", Float (Stats.Histogram.quantile h 0.5));
              ("p90", Float (Stats.Histogram.quantile h 0.9));
              ("p99", Float (Stats.Histogram.quantile h 0.99));
            ]
  in
  Obj (List.map (fun (name, v) -> (name, value v)) (snapshot t))
