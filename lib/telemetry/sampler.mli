(** Periodic virtual-clock time-series sampler.

    Subscribed gauges (read-only closures) are sampled together on one
    periodic engine timer and appended to preallocated growable buffers —
    one [float array] per series plus a shared time column, doubling in
    place, so steady-state sampling allocates nothing.

    Series may be subscribed mid-run (a macroflow created by a later
    connection); earlier ticks read as NaN and render as blank CSV cells.
    Columns appear in subscription order, which is deterministic under a
    fixed seed — the CSV is byte-identical across same-seed runs. *)

open Cm_util

type t

val create : Eventsim.Engine.t -> period:Time.span -> unit -> t
(** A sampler ticking every [period] of virtual time once {!start}ed.
    Raises [Invalid_argument] if [period <= 0]. *)

val subscribe : t -> string -> (unit -> float) -> unit
(** Add a named series.  Raises [Invalid_argument] on duplicate names. *)

val start : t -> unit
(** Arm the periodic timer; the first sample fires one period from now.
    Idempotent. *)

val stop : t -> unit
(** Disarm the timer (so a drained engine can terminate).  Idempotent. *)

val tick : t -> unit
(** Take one sample row immediately (also used by the periodic timer). *)

val period : t -> Time.span
val ticks : t -> int

val series_names : t -> string list
(** Subscribed names, in subscription order. *)

val times : t -> Time.t array
(** The time column so far (one entry per tick; a copy). *)

val series : t -> string -> float array option
(** One series' samples so far, aligned with {!times} — ticks before the
    series was subscribed read NaN.  A copy; [None] for unknown names.
    The post-run analyzer reads the tables through this. *)

val to_csv : Buffer.t -> t -> unit
(** Append the full table: header [time_s,<name>,…] then one row per
    tick.  Floats via {!Json.float_str} ([%.6g]); NaN cells are blank. *)
