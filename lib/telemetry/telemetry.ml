open Cm_util
open Eventsim
module Metrics = Metrics
module Trace = Trace
module Sampler = Sampler
module Prof = Prof
module Recorder = Recorder

type t = {
  engine : Engine.t;
  metrics : Metrics.t;
  trace : Trace.t;
  sampler : Sampler.t;
}

let default_period = Time.ms 100

let create engine ?(period = default_period) ?trace_capacity () =
  let t =
    {
      engine;
      metrics = Metrics.create ();
      trace =
        (match trace_capacity with
        | None -> Trace.create engine
        | Some cap -> Trace.create_ring engine ~capacity:cap);
      sampler = Sampler.create engine ~period ();
    }
  in
  (* the engine's own health is always worth a column *)
  Sampler.subscribe t.sampler "engine.pending" (fun () ->
      float_of_int (Engine.pending engine));
  Sampler.subscribe t.sampler "engine.events" (fun () ->
      float_of_int (Engine.events_executed engine));
  Sampler.start t.sampler;
  t

let engine t = t.engine
let metrics t = t.metrics
let trace t = t.trace
let sampler t = t.sampler

let gauge t name read =
  ignore (Metrics.gauge t.metrics name read);
  Sampler.subscribe t.sampler name read

let counter t name = Metrics.counter t.metrics name
let histogram t name = Metrics.histogram t.metrics name
let stop t = Sampler.stop t.sampler

let export_jsonl t =
  let b = Buffer.create 4096 in
  Trace.to_jsonl b t.trace;
  Buffer.contents b

let export_chrome t =
  let b = Buffer.create 4096 in
  Trace.to_chrome b t.trace;
  Buffer.contents b

let export_csv t =
  let b = Buffer.create 4096 in
  Sampler.to_csv b t.sampler;
  Buffer.contents b

let export_metrics_json t = Json.to_string (Metrics.to_json t.metrics) ^ "\n"
