(** Always-on bounded flight recorder.

    A preallocated ring of the last N trace events ({!Trace.create_ring}:
    O(1) overwrite, no growth — cheap enough to leave on for whole runs),
    plus a dump path: when something goes wrong (a [Cm.Audit] invariant
    breach, a quarantine, an exception escaping engine dispatch) the ring
    is written to a JSONL file so the failure report says "here are the
    last 4096 events before it happened" instead of just "it happened".

    Wiring: components take the recorder's ring through their
    [set_trace] entry points ([Cm.set_trace], [Link.set_trace]) exactly
    as they would a full telemetry trace; {!create} also installs the
    engine escape hook so crash dumps need no per-experiment code.

    Dump format: one header object
    [{"recorder", "reason", "ts_ns", "events", "dropped"}], then one
    JSON object per event (same schema as {!Trace.to_jsonl}).  Timestamps
    are virtual, so for a fixed seed a dump is byte-identical run after
    run. *)

type t

val create :
  Eventsim.Engine.t -> out_dir:string -> ?tag:string -> ?capacity:int -> unit -> t
(** A recorder ringing the last [capacity] events (default 4096); dumps
    land in [out_dir] (created on first dump) as
    [<tag>-<n>.dump.jsonl].  Installs the engine's escape hook: an
    exception escaping event dispatch dumps the ring (reason
    ["exception: …"]) before the exception propagates. *)

val trace : t -> Trace.t
(** The ring — hand this to the components to instrument. *)

val dump : t -> reason:string -> string
(** Write the ring now; returns the file path.  Call on audit violations,
    quarantines, or any other "explain what just happened" trigger. *)

val dumps : t -> int
(** Dumps written so far. *)

val files : t -> string list
(** Paths written, oldest first. *)

val last_file : t -> string option
