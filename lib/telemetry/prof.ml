open Cm_util
open Eventsim

let enabled = Engine.prof_enabled

let report_json (r : Engine.prof_report) =
  let open Json in
  let q = r.Engine.pr_queue in
  Obj
    [
      ( "categories",
        Obj
          (List.map
             (fun (c : Engine.prof_category) ->
               ( c.Engine.pc_name,
                 Obj
                   [
                     ("dispatches", Int c.Engine.pc_dispatches);
                     ("wall_s", Float c.Engine.pc_wall_s);
                   ] ))
             r.Engine.pr_categories) );
      ("dispatches", Int r.Engine.pr_dispatches);
      ("samples", Int r.Engine.pr_samples);
      ("wall_s", Float r.Engine.pr_wall_s);
      ( "gc",
        Obj
          [
            ("minor_words", Float r.Engine.pr_minor_words);
            ("major_words", Float r.Engine.pr_major_words);
            ("promoted_words", Float r.Engine.pr_promoted_words);
            ("minor_collections", Int r.Engine.pr_minor_collections);
            ("major_collections", Int r.Engine.pr_major_collections);
          ] );
      ("pool_hw", Int r.Engine.pr_pool_hw);
      ( "queue",
        Obj
          [
            ("overflow_inserts", Int q.Wheel.overflow_inserts);
            ("overflow_migrations", Int q.Wheel.overflow_migrations);
            ("hw_size", Int q.Wheel.hw_size);
            ("hw_cur", Int q.Wheel.hw_cur);
          ] );
    ]

let to_json engine =
  match Engine.prof_report engine with None -> Json.Null | Some r -> report_json r

let summary engine =
  match Engine.prof_report engine with
  | None -> "profiler: off"
  | Some r ->
      let b = Buffer.create 256 in
      let q = r.Engine.pr_queue in
      Buffer.add_string b
        (Printf.sprintf "profiler: %d dispatches, %d wall samples over %.3f s\n"
           r.Engine.pr_dispatches r.Engine.pr_samples r.Engine.pr_wall_s);
      List.iter
        (fun (c : Engine.prof_category) ->
          let pct =
            if r.Engine.pr_dispatches = 0 then 0.
            else 100. *. float_of_int c.Engine.pc_dispatches /. float_of_int r.Engine.pr_dispatches
          in
          Buffer.add_string b
            (Printf.sprintf "  %-6s %10d dispatches (%5.1f%%)  %8.4f s sampled wall\n"
               c.Engine.pc_name c.Engine.pc_dispatches pct c.Engine.pc_wall_s))
        r.Engine.pr_categories;
      Buffer.add_string b
        (Printf.sprintf "  gc: %.0f minor words, %.0f major, %.0f promoted, %d/%d collections\n"
           r.Engine.pr_minor_words r.Engine.pr_major_words r.Engine.pr_promoted_words
           r.Engine.pr_minor_collections r.Engine.pr_major_collections);
      Buffer.add_string b
        (Printf.sprintf "  queue: hw %d (cur-slot hw %d), overflow %d inserts / %d migrations; pool hw %d"
           q.Wheel.hw_size q.Wheel.hw_cur q.Wheel.overflow_inserts q.Wheel.overflow_migrations
           r.Engine.pr_pool_hw);
      Buffer.contents b
