open Cm_util
open Eventsim

type series = {
  s_name : string;
  s_read : unit -> float;
  mutable s_data : float array;
}

type t = {
  engine : Engine.t;
  period : Time.span;
  mutable rev_series : series list; (* registration order, newest first *)
  mutable times : Time.t array;
  mutable nticks : int;
  mutable timer : Timer.t option;
}

let create engine ~period () =
  if period <= 0 then invalid_arg "Sampler.create: period must be positive";
  { engine; period; rev_series = []; times = Array.make 256 Time.zero; nticks = 0; timer = None }

let grow_float a len =
  let bigger = Array.make (2 * Array.length a) nan in
  Array.blit a 0 bigger 0 len;
  bigger

let tick t =
  if t.nticks = Array.length t.times then begin
    let bigger = Array.make (2 * t.nticks) Time.zero in
    Array.blit t.times 0 bigger 0 t.nticks;
    t.times <- bigger
  end;
  t.times.(t.nticks) <- Engine.now t.engine;
  List.iter
    (fun s ->
      if t.nticks >= Array.length s.s_data then s.s_data <- grow_float s.s_data t.nticks;
      s.s_data.(t.nticks) <- s.s_read ())
    t.rev_series;
  t.nticks <- t.nticks + 1

let subscribe t name read =
  if List.exists (fun s -> s.s_name = name) t.rev_series then
    invalid_arg (Printf.sprintf "Sampler.subscribe: series %S already exists" name);
  (* ticks that fired before this series existed read as NaN (CSV blank) *)
  let data = Array.make (Stdlib.max 256 (Array.length t.times)) nan in
  t.rev_series <- { s_name = name; s_read = read; s_data = data } :: t.rev_series

let start t =
  match t.timer with
  | Some _ -> ()
  | None ->
      let timer = Timer.create t.engine ~callback:(fun () -> tick t) in
      Timer.start_periodic timer t.period;
      t.timer <- Some timer

let stop t =
  match t.timer with
  | Some timer ->
      Timer.stop timer;
      t.timer <- None
  | None -> ()

let period t = t.period
let ticks t = t.nticks
let series_names t = List.rev_map (fun s -> s.s_name) t.rev_series
let times t = Array.sub t.times 0 t.nticks

let series t name =
  match List.find_opt (fun s -> s.s_name = name) t.rev_series with
  | None -> None
  | Some s -> Some (Array.sub s.s_data 0 t.nticks)

let to_csv b t =
  let cols = List.rev t.rev_series in
  Buffer.add_string b "time_s";
  List.iter
    (fun s ->
      Buffer.add_char b ',';
      Buffer.add_string b s.s_name)
    cols;
  Buffer.add_char b '\n';
  for i = 0 to t.nticks - 1 do
    Buffer.add_string b (Json.float_str (Time.to_float_s t.times.(i)));
    List.iter
      (fun s ->
        Buffer.add_char b ',';
        let v = s.s_data.(i) in
        if not (Float.is_nan v) then Buffer.add_string b (Json.float_str v))
      cols;
    Buffer.add_char b '\n'
  done
