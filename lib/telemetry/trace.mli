(** Structured event/span tracer.

    Records typed, virtual-time-stamped events into a growable in-memory
    buffer: instant events (a congestion decision, a packet drop, a layer
    switch) and begin/end spans (a recovery episode, a whole run).  Two
    exporters: JSONL (one event per line, integer-nanosecond timestamps —
    the grep/jq/diff channel) and the Chrome [trace_event] JSON format,
    loadable in Perfetto or [chrome://tracing].

    The {!nil} instance is the default sink everywhere a component holds
    a trace: it is permanently disabled, so instrumented hot paths pay
    one boolean test ({!on}) and nothing else — argument lists must be
    built {e behind} that test:

    {[
      if Trace.on tr then Trace.instant tr ~cat:"cm" "cm.loss" [ ... ]
    ]}

    Timestamps come from the engine's virtual clock, so with a fixed seed
    the exported bytes are identical run after run. *)

open Cm_util

type value = Bool of bool | Int of int | Float of float | Str of string
(** Typed attribute values. *)

type phase = Span_begin | Span_end | Instant

type event = {
  ts : Time.t;
  phase : phase;
  name : string;
  cat : string;
  args : (string * value) list;
}

type t
(** A trace buffer (or the nil sink). *)

val nil : t
(** The disabled sink: every emit is a no-op, {!on} is [false]. *)

val create : Eventsim.Engine.t -> t
(** An enabled trace stamped by the engine's virtual clock (growable
    buffer: keeps every event). *)

val create_ring : Eventsim.Engine.t -> capacity:int -> t
(** An enabled trace holding only the {e last} [capacity] events: the
    buffer is preallocated and a push into a full ring overwrites the
    oldest event in place — O(1), no growth, cheap enough to leave on for
    arbitrarily long runs (the flight recorder, long [scale]/[cdn_edge]
    sweeps).  {!iter}/{!events} and the exporters walk oldest → newest;
    {!dropped} counts the overwritten events.
    Raises [Invalid_argument] if [capacity <= 0]. *)

val on : t -> bool
(** Whether events are being recorded — test this before building
    argument lists on hot paths. *)

val instant : t -> ?cat:string -> string -> (string * value) list -> unit
(** Record an instant event (default category ["app"]). *)

val span_begin : t -> ?cat:string -> string -> (string * value) list -> unit
val span_end : t -> ?cat:string -> string -> unit

val with_span : t -> ?cat:string -> string -> (string * value) list -> (unit -> 'a) -> 'a
(** [with_span t name args f] wraps [f ()] in a begin/end pair (the end
    is emitted even if [f] raises). *)

val length : t -> int
(** Events currently held (in ring mode, at most the capacity). *)

val capacity : t -> int
(** Ring capacity, or [0] for a growable trace. *)

val dropped : t -> int
(** Events overwritten by ring wraparound ([0] for a growable trace). *)

val events : t -> event list
(** All events, in emission order (a copy). *)

val iter : t -> (event -> unit) -> unit

val clear : t -> unit
(** Drop all recorded events (the buffer is reused). *)

val to_jsonl : Buffer.t -> t -> unit
(** Append one JSON object per event:
    [{"ts_ns":…, "ph":"B|E|i", "cat":…, "name":…, "args":{…}}]. *)

val to_chrome : Buffer.t -> t -> unit
(** Append a complete Chrome [trace_event] document
    ([{"traceEvents": [...]}], ts in microseconds). *)
