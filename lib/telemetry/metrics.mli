(** Named-metrics registry: counters, gauges, and log-bucketed histograms.

    The registry is the pull side of the telemetry layer: components
    register metrics once at wiring time and update them with O(1),
    allocation-free operations on the hot path ([incr] is one mutable
    store; [observe] is one [frexp] and two stores).  Gauges are read-only
    closures sampled on demand — by the {!Sampler}'s periodic virtual-time
    tick or by a final {!snapshot}.

    Iteration order is registration order, which in a deterministic
    simulation is itself deterministic — snapshots and CSV columns come
    out byte-identical across same-seed runs. *)

open Cm_util

type t
(** A registry. *)

type counter
type gauge
type histogram

val create : unit -> t
(** Empty registry. *)

(** {1 Counters} *)

val counter : t -> string -> counter
(** [counter t name] registers (or retrieves, if already registered as a
    counter) a monotonically increasing integer counter.  Raises
    [Invalid_argument] if [name] is registered as another kind. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1).  O(1), no allocation. *)

val count : counter -> int
val counter_name : counter -> string

(** {1 Gauges} *)

val gauge : t -> string -> (unit -> float) -> gauge
(** [gauge t name read] registers a gauge whose current value is
    [read ()].  Raises [Invalid_argument] on duplicate names. *)

val sample : gauge -> float
val gauge_name : gauge -> string

(** {1 Histograms} *)

val histogram : t -> string -> histogram
(** [histogram t name] registers (or retrieves) a log-bucketed
    {!Stats.Histogram}. *)

val observe : histogram -> float -> unit
(** Record one value.  O(1), no allocation. *)

val hist : histogram -> Stats.Histogram.t
(** The underlying histogram, for quantile queries. *)

val histogram_name : histogram -> string

(** {1 Registry-wide operations} *)

val gauges : t -> gauge list
(** All gauges, in registration order. *)

val reset : t -> unit
(** Zero every counter and histogram.  Gauges are unaffected (they read
    live component state). *)

type snapshot_value =
  | Sc of int  (** counter value *)
  | Sg of float  (** gauge reading *)
  | Sh of Stats.Histogram.t  (** histogram (live; copy via merge if needed) *)

val snapshot : t -> (string * snapshot_value) list
(** Point-in-time view of every metric, in registration order.  Gauges
    are read at call time. *)

val to_json : t -> Json.t
(** The snapshot as a JSON object: counters as ints, gauges as floats,
    histograms as [{count, sum, min, max, p50, p90, p99}]. *)
