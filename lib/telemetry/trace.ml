open Cm_util

type value = Bool of bool | Int of int | Float of float | Str of string
type phase = Span_begin | Span_end | Instant

type event = {
  ts : Time.t;
  phase : phase;
  name : string;
  cat : string;
  args : (string * value) list;
}

type t = {
  enabled : bool;
  now : unit -> Time.t;
  mutable events : event array;
  mutable len : int;
  cap : int; (* 0 = growable; > 0 = preallocated ring of the last [cap] *)
  mutable head : int; (* ring mode, once full: index of the oldest event *)
  mutable dropped : int; (* ring mode: events overwritten so far *)
}

let dummy_event = { ts = 0; phase = Instant; name = ""; cat = ""; args = [] }

let nil =
  { enabled = false; now = (fun () -> Time.zero); events = [||]; len = 0; cap = 0; head = 0; dropped = 0 }

let create engine =
  {
    enabled = true;
    now = (fun () -> Eventsim.Engine.now engine);
    events = Array.make 1024 dummy_event;
    len = 0;
    cap = 0;
    head = 0;
    dropped = 0;
  }

let create_ring engine ~capacity =
  if capacity <= 0 then invalid_arg "Trace.create_ring: capacity must be positive";
  {
    enabled = true;
    now = (fun () -> Eventsim.Engine.now engine);
    events = Array.make capacity dummy_event;
    len = 0;
    cap = capacity;
    head = 0;
    dropped = 0;
  }

let on t = t.enabled
let length t = t.len
let capacity t = t.cap
let dropped t = t.dropped

let push t ev =
  if t.enabled then begin
    if t.cap > 0 then
      if t.len < t.cap then begin
        t.events.(t.len) <- ev;
        t.len <- t.len + 1
      end
      else begin
        (* full ring: overwrite the oldest in place, O(1), no growth *)
        t.events.(t.head) <- ev;
        t.head <- (if t.head + 1 = t.cap then 0 else t.head + 1);
        t.dropped <- t.dropped + 1
      end
    else begin
      if t.len = Array.length t.events then begin
        let bigger = Array.make (2 * t.len) dummy_event in
        Array.blit t.events 0 bigger 0 t.len;
        t.events <- bigger
      end;
      t.events.(t.len) <- ev;
      t.len <- t.len + 1
    end
  end

let instant t ?(cat = "app") name args =
  push t { ts = t.now (); phase = Instant; name; cat; args }

let span_begin t ?(cat = "app") name args =
  push t { ts = t.now (); phase = Span_begin; name; cat; args }

let span_end t ?(cat = "app") name =
  push t { ts = t.now (); phase = Span_end; name; cat; args = [] }

let with_span t ?cat name args f =
  span_begin t ?cat name args;
  Fun.protect ~finally:(fun () -> span_end t ?cat name) f

let iter t f =
  (* oldest → newest; a full ring starts at [head] and wraps *)
  if t.cap > 0 && t.len = t.cap then begin
    for i = t.head to t.cap - 1 do
      f t.events.(i)
    done;
    for i = 0 to t.head - 1 do
      f t.events.(i)
    done
  end
  else
    for i = 0 to t.len - 1 do
      f t.events.(i)
    done

let events t =
  let acc = ref [] in
  iter t (fun ev -> acc := ev :: !acc);
  List.rev !acc

let clear t =
  t.len <- 0;
  t.head <- 0;
  t.dropped <- 0

(* ---- exporters -------------------------------------------------------- *)

let json_value = function
  | Bool b -> Json.Bool b
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s

let args_json args = Json.Obj (List.map (fun (k, v) -> (k, json_value v)) args)

let phase_str = function Span_begin -> "B" | Span_end -> "E" | Instant -> "i"

(* one event per line: a grep/jq-friendly stream, ts in integer
   nanoseconds of virtual time so rendering is exact *)
let jsonl_event b ev =
  Json.write b
    (Json.Obj
       [
         ("ts_ns", Json.Int ev.ts);
         ("ph", Json.Str (phase_str ev.phase));
         ("cat", Json.Str ev.cat);
         ("name", Json.Str ev.name);
         ("args", args_json ev.args);
       ]);
  Buffer.add_char b '\n'

let to_jsonl b t = iter t (fun ev -> jsonl_event b ev)

(* Chrome trace_event format (the catapult JSON array flavor), loadable
   in Perfetto / chrome://tracing: ts is microseconds, instants carry a
   global scope so they render as vertical markers *)
let chrome_event b ev =
  let base =
    [
      ("name", Json.Str ev.name);
      ("cat", Json.Str ev.cat);
      ("ph", Json.Str (phase_str ev.phase));
      ("ts", Json.Float (Time.to_float_us ev.ts));
      ("pid", Json.Int 0);
      ("tid", Json.Int 0);
    ]
  in
  let scope = match ev.phase with Instant -> [ ("s", Json.Str "g") ] | _ -> [] in
  let args = match ev.args with [] -> [] | args -> [ ("args", args_json args) ] in
  Json.write b (Json.Obj (base @ scope @ args))

let to_chrome b t =
  Buffer.add_string b "{\"traceEvents\": [\n";
  let first = ref true in
  iter t (fun ev ->
      if !first then first := false else Buffer.add_string b ",\n";
      chrome_event b ev);
  Buffer.add_string b "\n]}\n"
