(** Telemetry: one instrumented view of a simulated system.

    Bundles the three telemetry primitives around one engine:

    - a {!Metrics} registry (counters / gauges / histograms),
    - a structured {!Trace} (spans + instant events, JSONL and Chrome
      [trace_event] exporters),
    - a periodic virtual-clock {!Sampler} whose CSV is the CM-internals
      time series (cwnd, ssthresh, rate, srtt, pipe, queue depths, drop
      counters, scheduler backlogs).

    Components are wired by the layer that owns them —
    [Link.attach_telemetry], [Cm.attach_telemetry] — and hold only a
    {!Trace.t} (default {!Trace.nil}), so an uninstrumented run pays one
    branch per potential event and nothing more.

    Determinism contract: everything is stamped with virtual time and
    serialized through {!Cm_util.Json}, so a fixed seed produces
    byte-identical JSONL / Chrome / CSV artifacts (asserted in
    [test_telemetry] and in CI). *)

open Cm_util

module Metrics = Metrics
module Trace = Trace
module Sampler = Sampler

module Prof = Prof
(** Event-core profiler rendering (measurement lives in
    {!Eventsim.Engine}). *)

module Recorder = Recorder
(** Always-on bounded flight recorder (ring of the last N events, dumped
    on faults). *)

type t

val create : Eventsim.Engine.t -> ?period:Time.span -> ?trace_capacity:int -> unit -> t
(** A telemetry instance sampling every [period] (default 100 ms of
    virtual time).  The sampler starts immediately (first tick one period
    in) and always carries [engine.pending] / [engine.events] columns.
    [trace_capacity] bounds the trace to a ring of the last N events
    ({!Trace.create_ring}) — for long runs ([scale], [cdn_edge]) where a
    growable span buffer would otherwise grow without limit; default is
    the keep-everything buffer. *)

val engine : t -> Eventsim.Engine.t
val metrics : t -> Metrics.t
val trace : t -> Trace.t
val sampler : t -> Sampler.t

val gauge : t -> string -> (unit -> float) -> unit
(** Register a gauge in the registry {e and} subscribe it to the
    sampler — the normal way components expose a time series. *)

val counter : t -> string -> Metrics.counter
val histogram : t -> string -> Metrics.histogram

val stop : t -> unit
(** Stop the sampler timer so the engine's queue can drain. *)

(** {1 Exporters} *)

val export_jsonl : t -> string
(** The trace as JSONL (one event per line). *)

val export_chrome : t -> string
(** The trace as a Chrome [trace_event] document (open in Perfetto). *)

val export_csv : t -> string
(** The sampled time series as CSV. *)

val export_metrics_json : t -> string
(** The metrics snapshot as one JSON object (newline-terminated). *)
