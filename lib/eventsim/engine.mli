(** Discrete-event simulation engine.

    A single-threaded event loop over virtual time: callbacks are scheduled
    at absolute timestamps and executed in timestamp order (FIFO among
    equal timestamps).  All simulated subsystems — links, timers, CPUs,
    protocol state machines — are driven from one engine, which makes every
    run fully deterministic. *)

open Cm_util

type t
(** An engine instance. *)

type handle
(** Names a scheduled event so it can be cancelled or rescheduled.
    Cancellation is lazy (O(1) mark-dead, skipped when it reaches the head
    of the queue).  Event cells are pooled and recycled across schedules;
    a stamp in the handle keeps stale handles safe — cancel/reschedule on
    an event that already ran simply return [false], even if its cell has
    since been reused for a newer event. *)

val create : ?start:Time.t -> ?wheel:bool -> unit -> t
(** [create ()] is a fresh engine with the clock at [start]
    (default {!Time.zero}).  [wheel] selects the queue backend: the
    hashed timing wheel (default) or, when [false], the pure-heap
    reference.  Both pop in identical (time, FIFO) order — the wheel is
    a performance structure, not a semantic one — so the choice is
    observable only through speed.  The default can be forced to the
    heap by setting [CM_ENGINE=heap] in the environment (used by CI to
    diff the two backends). *)

val now : t -> Time.t
(** Current virtual time. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> handle
(** [schedule_at t when_ f] runs [f] when the clock reaches [when_].
    Scheduling in the past raises [Invalid_argument]. *)

val schedule_after : t -> Time.span -> (unit -> unit) -> handle
(** [schedule_after t d f] is [schedule_at t (now t + max d 0) f].
    Negative delays are clamped to zero and counted in
    {!schedules_clamped}. *)

val post : t -> Time.span -> (unit -> unit) -> unit
(** [post t d f] is {!schedule_after} without the handle: same queue
    position, same FIFO stamp sequence, but nothing is allocated for the
    caller to hold.  For fire-and-forget events that are never cancelled
    or rescheduled — the per-grant and per-cycle hot paths. *)

val cancel : t -> handle -> bool
(** Cancel a pending event; [false] if it already ran or was cancelled.
    O(1): the event is marked dead and discarded when it surfaces. *)

val reschedule : t -> handle -> Time.t -> bool
(** [reschedule t h when_] moves a still-pending event to a new time in
    place (no cancellation churn, no allocation); among events at the same
    time it behaves as if freshly scheduled.  Returns [false] if the event
    already ran or was cancelled.  Rescheduling into the past raises
    [Invalid_argument]. *)

val pending : t -> int
(** Number of events still queued. *)

val step : t -> bool
(** Execute the next event; [false] if the queue is empty. *)

val run : ?until:Time.t -> t -> unit
(** Run events in order.  With [until], stop once the next event would be
    strictly after [until] and advance the clock to [until]; without it,
    run until the queue drains. *)

val run_for : t -> Time.span -> unit
(** [run_for t d] is [run ~until:(now t + d) t]. *)

val pool_size : t -> int
(** Number of recycled event cells currently on the free list.  Bounded
    by [max 64 (queued events)], so a transient burst's cells are
    released as the queue drains (diagnostics, tests). *)

val events_executed : t -> int
(** Total number of callbacks executed (diagnostics, bench). *)

val schedules_clamped : t -> int
(** Number of {!schedule_after} calls whose negative delay was clamped to
    zero — a misbehaving-caller diagnostic (diagnostics, bench). *)

(** {1 Observability hooks}

    Both hooks are off by default; an un-hooked engine's dispatch path
    pays one extra load + branch over the bare call. *)

val enable_prof : ?sample_shift:int -> t -> unit
(** Turn on the event-core profiler.  Dispatch counts are exact per
    category; wall-clock is attributed by sampling — every
    [2^sample_shift] dispatches (default 10, i.e. every 1024) one
    [Unix.gettimeofday] is taken and the interval since the previous
    sample is charged to the category of the event that just ran.  GC
    counters ({!Gc.quick_stat}) are snapshotted here and differenced by
    {!prof_report}.  Enable {e before} building the simulated system:
    {!prof_tag} is identity on an unprofiled engine, so closures created
    earlier stay untagged (counted as ["other"]).  Wall-clock figures are
    nondeterministic by nature — keep them out of seeded-JSON channels
    (the bench and stderr summaries are the intended sinks). *)

val prof_enabled : t -> bool

val prof_tag : t -> cat:string -> (unit -> unit) -> unit -> unit
(** [prof_tag t ~cat fn] wraps [fn] so its dispatches are charged to
    [cat] (one of ["timer"], ["net"], ["cm"]; anything else counts as
    ["other"]).  Identity when the profiler is off — call sites tag their
    long-lived callbacks unconditionally at creation time and only a
    profiled run pays the wrapper. *)

type prof_category = { pc_name : string; pc_dispatches : int; pc_wall_s : float }

type prof_report = {
  pr_categories : prof_category list;
  pr_dispatches : int;  (** total dispatches since enable (sum of categories) *)
  pr_samples : int;  (** wall-clock samples taken *)
  pr_wall_s : float;  (** wall seconds since enable *)
  pr_minor_words : float;
  pr_major_words : float;
  pr_promoted_words : float;
  pr_minor_collections : int;
  pr_major_collections : int;
  pr_pool_hw : int;  (** event-cell pool high-water *)
  pr_queue : Cm_util.Wheel.stats;  (** queue occupancy counters *)
}

val prof_report : t -> prof_report option
(** The profile so far ([None] if {!enable_prof} was never called). *)

val set_escape_hook : t -> (exn -> unit) option -> unit
(** Install (or clear) a hook called when an exception escapes an event
    callback.  The hook runs before the exception propagates out of
    {!step}/{!run} — the flight recorder uses it to dump the last events
    leading up to a crash.  A hook must not raise. *)

val pool_hw : t -> int
(** High-water of the recycled event-cell pool (diagnostics). *)

val queue_stats : t -> Cm_util.Wheel.stats
(** Occupancy counters of the underlying queue (overflow inserts and
    migrations, size high-water). *)
