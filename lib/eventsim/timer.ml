open Cm_util

type t = {
  engine : Engine.t;
  callback : unit -> unit;
  mutable handle : Engine.handle option;
  mutable armed : bool;
  mutable expiry : Time.t; (* meaningful only when [armed] *)
  mutable period : Time.span; (* 0 = one-shot *)
  mutable fire : unit -> unit; (* allocated once in [create], reused per arm *)
}

(* Re-arm to an absolute expiry.  If the previous engine event is still
   pending (the common TCP retransmit-reset case) it is moved in place —
   no cancellation churn and no allocation; otherwise one fresh event is
   scheduled with the timer's single pre-allocated fire closure. *)
let arm_at t when_ =
  t.armed <- true;
  t.expiry <- when_;
  let moved = match t.handle with Some h -> Engine.reschedule t.engine h when_ | None -> false in
  if not moved then t.handle <- Some (Engine.schedule_at t.engine when_ t.fire)

let create engine ~callback =
  let t =
    { engine; callback; handle = None; armed = false; expiry = 0; period = 0; fire = ignore }
  in
  t.fire <-
    Engine.prof_tag engine ~cat:"timer"
    @@ (fun () ->
      t.armed <- false;
      (* periodic re-arm is anchored on the previous expiry, not on "now",
         so the tick sequence is exactly [start + k*period] with no drift
         accumulation *)
      if t.period > 0 then arm_at t (Time.add t.expiry t.period);
      t.callback ());
  t

let stop t =
  (match t.handle with
  | Some h when t.armed -> ignore (Engine.cancel t.engine h)
  | _ -> ());
  t.armed <- false;
  t.period <- 0

let arm t delay = arm_at t (Time.add (Engine.now t.engine) (Stdlib.max delay 0))

let start t delay =
  t.period <- 0;
  arm t delay

let start_periodic t period =
  if period <= 0 then invalid_arg "Timer.start_periodic: period must be positive";
  t.period <- period;
  arm t period

let is_running t = t.armed
let expiry t = if t.armed then Some t.expiry else None
