open Cm_util

(* One mutable cell per scheduled event.  [fn] doubles as the liveness
   flag: cancellation and execution both overwrite it with the shared
   [dead] closure, so cancel is O(1) (lazy: the entry stays in the heap
   and is skipped when it reaches the top).

   Event cells and their heap entries are pooled: once an event has been
   popped (executed or found dead), its entry goes on a free list and the
   next [schedule_*] reuses it via {!Heap.reinsert}.  Without the pool a
   deep queue promotes one entry per event out of the minor heap — at
   thousands of outstanding events the GC promotion traffic, not the sift
   depth, is what makes per-event cost grow with queue depth.  [stamp]
   makes reuse safe: a handle captures the stamp at schedule time, and
   cancel/reschedule on a stale handle (its cell since recycled for a
   newer event) sees a stamp mismatch and reports [false], exactly as the
   unpooled engine reported [false] for an already-fired event. *)
type event = { mutable fn : unit -> unit; mutable stamp : int }
type handle = { entry : event Heap.handle; h_stamp : int }

let dead : unit -> unit = fun () -> ()

type t = {
  mutable clock : Time.t;
  queue : event Heap.t;
  mutable pool : event Heap.handle list; (* popped entries awaiting reuse *)
  mutable next_stamp : int;
  mutable executed : int;
  mutable cancelled : int; (* dead events still sitting in [queue] *)
  mutable clamped : int; (* negative-delay schedules clamped to "now" *)
  mutable running : bool;
}

let create ?(start = Time.zero) () =
  {
    clock = start;
    queue = Heap.create ();
    pool = [];
    next_stamp = 0;
    executed = 0;
    cancelled = 0;
    clamped = 0;
    running = false;
  }

let now t = t.clock

let schedule_at t when_ fn =
  if when_ < t.clock then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is in the past (now %a)" Time.pp when_ Time.pp
         t.clock);
  t.next_stamp <- t.next_stamp + 1;
  let stamp = t.next_stamp in
  match t.pool with
  | entry :: rest ->
      t.pool <- rest;
      let ev = Heap.handle_value entry in
      ev.fn <- fn;
      ev.stamp <- stamp;
      Heap.reinsert t.queue entry ~prio:when_;
      { entry; h_stamp = stamp }
  | [] -> { entry = Heap.insert t.queue ~prio:when_ { fn; stamp }; h_stamp = stamp }

let schedule_after t d fn =
  if d < 0 then t.clamped <- t.clamped + 1;
  schedule_at t (Time.add t.clock (Stdlib.max d 0)) fn

(* A handle is live iff its cell has not been recycled for a newer event
   (stamp matches) and the event has neither fired nor been cancelled. *)
let live h =
  let ev = Heap.handle_value h.entry in
  ev.stamp = h.h_stamp && ev.fn != dead

(* Compact once dead entries dominate: rare (amortized O(1) per cancel),
   and only worthwhile when cancelled events would otherwise linger far in
   the future, e.g. retransmit timers that keep being reset.  Entries the
   filter drops are simply GC'd rather than pooled. *)
let maybe_compact t =
  if t.cancelled > 64 && t.cancelled > Heap.size t.queue / 2 then begin
    Heap.filter_in_place t.queue (fun ev -> ev.fn != dead);
    t.cancelled <- 0
  end

let cancel t h =
  if not (live h) then false
  else begin
    (Heap.handle_value h.entry).fn <- dead;
    t.cancelled <- t.cancelled + 1;
    maybe_compact t;
    true
  end

let reschedule t h when_ =
  if when_ < t.clock then
    invalid_arg
      (Format.asprintf "Engine.reschedule: %a is in the past (now %a)" Time.pp when_ Time.pp
         t.clock);
  if not (live h) then false else Heap.update_prio t.queue h.entry ~prio:when_

let pending t = Heap.size t.queue - t.cancelled

let rec step t =
  if Heap.is_empty t.queue then false
  else begin
    let entry = Heap.pop_min t.queue in
    let ev = Heap.handle_value entry in
    t.pool <- entry :: t.pool;
    if ev.fn == dead then begin
      t.cancelled <- t.cancelled - 1;
      step t
    end
    else begin
      t.clock <- Heap.handle_prio entry;
      t.executed <- t.executed + 1;
      let f = ev.fn in
      ev.fn <- dead;
      f ();
      true
    end
  end

(* The run loop peeks (O(1), no allocation) before popping so an event
   past [until] stays queued; [limit] is hoisted to a sentinel so the
   per-event path is a single integer compare instead of an option
   match. *)
let run ?until t =
  if t.running then invalid_arg "Engine.run: reentrant run";
  t.running <- true;
  let limit = match until with Some l -> l | None -> max_int in
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      let continue = ref true in
      while !continue do
        if Heap.is_empty t.queue then continue := false
        else begin
          let entry = Heap.min_handle t.queue in
          let ev = Heap.handle_value entry in
          if ev.fn == dead then begin
            ignore (Heap.pop_min t.queue);
            t.pool <- entry :: t.pool;
            t.cancelled <- t.cancelled - 1
          end
          else begin
            let when_ = Heap.handle_prio entry in
            if when_ > limit then continue := false
            else begin
              ignore (Heap.pop_min t.queue);
              t.pool <- entry :: t.pool;
              t.clock <- when_;
              t.executed <- t.executed + 1;
              let f = ev.fn in
              ev.fn <- dead;
              f ()
            end
          end
        end
      done;
      if limit <> max_int && limit > t.clock then t.clock <- limit)

let run_for t d = run ~until:(Time.add t.clock d) t
let events_executed t = t.executed
let schedules_clamped t = t.clamped
