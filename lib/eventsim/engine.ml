open Cm_util

(* The queue is a hashed timing wheel ({!Cm_util.Wheel}): near-future
   events — timer re-arms, transmit completions, grant callbacks, all
   within a few RTTs — insert and cancel in O(1) wheel slots, while
   far-future events overflow into a heap and migrate forward as the
   wheel turns.  The wheel's pop order is exactly the (time, seq) order
   of a single heap, so engine behaviour is bit-identical across
   backends; [CM_ENGINE=heap] in the environment (or [~wheel:false])
   selects the pure-heap reference, which CI diffs against the wheel.

   The callback is stored directly as the wheel entry's value — no event
   record between the queue entry and the closure, so the pop path
   touches one block, not two.  The closure doubles as the liveness
   flag: cancellation and execution both overwrite it with the shared
   [dead] closure, so cancel is O(1) (lazy: the entry stays queued and
   is skipped when it reaches the top).

   Queue entries are pooled: once an event has been popped (executed or
   found dead), its entry goes on a free list and the next [schedule_*]
   reuses it via {!Wheel.reinsert}.  Without the pool a deep queue
   promotes one entry per event out of the minor heap — at thousands of
   outstanding events the GC promotion traffic, not the sift depth, is
   what makes per-event cost grow with queue depth.  The pool is bounded
   by the number of still-queued events (floor 64), so a transient burst
   does not retain its peak memory forever.  The wheel's own sequence
   number makes reuse safe: a handle captures the entry's seq at
   schedule time; seqs are unique over the wheel's lifetime and
   refreshed on every reinsert, so cancel/reschedule on a stale handle
   (its entry since recycled for a newer event) sees a seq mismatch and
   reports [false], exactly as the unpooled engine reported [false] for
   an already-fired event. *)
type handle = { entry : (unit -> unit) Wheel.handle; mutable h_seq : int }

let dead : unit -> unit = fun () -> ()

(* a GC-safe hole for unused pool slots: an immediate, never dereferenced *)
let null_entry : (unit -> unit) Wheel.handle = Obj.magic 0

(* Sampling profiler state (see [enable_prof]).  Dispatch counters are
   exact per category; wall-clock is attributed by sampling: every
   [2^sample_shift] dispatches the interval since the previous sample is
   charged to the category of the event that just ran, so a run's wall
   time splits across categories at bounded cost (one [land] + compare
   per event, one [Unix.gettimeofday] per sample window). *)
type prof = {
  p_names : string array;
  p_dispatch : int array;
  p_wall : float array; (* sampled wall seconds per category *)
  mutable p_cur : int; (* category of the event being dispatched *)
  p_mask : int; (* sample every (mask+1) dispatches *)
  mutable p_samples : int;
  mutable p_last : float; (* wall clock at the previous sample *)
  p_t0 : float; (* wall clock at enable *)
  p_gc0 : Gc.stat; (* quick_stat at enable; report subtracts *)
}

type prof_category = { pc_name : string; pc_dispatches : int; pc_wall_s : float }

type prof_report = {
  pr_categories : prof_category list;
  pr_dispatches : int;
  pr_samples : int;
  pr_wall_s : float;
  pr_minor_words : float;
  pr_major_words : float;
  pr_promoted_words : float;
  pr_minor_collections : int;
  pr_major_collections : int;
  pr_pool_hw : int;
  pr_queue : Wheel.stats;
}

type t = {
  mutable clock : Time.t;
  queue : (unit -> unit) Wheel.t;
  mutable pool : (unit -> unit) Wheel.handle array; (* popped entries awaiting reuse *)
  mutable pool_len : int; (* stack: pool.(0 .. pool_len-1) are live *)
  mutable pool_hw : int; (* high-water of [pool_len] *)
  mutable executed : int;
  mutable cancelled : int; (* dead events still sitting in [queue] *)
  mutable clamped : int; (* negative-delay schedules clamped to "now" *)
  mutable running : bool;
  (* observability hooks, both off by default; [plain] caches "both off"
     so the dispatch hot path pays one load + branch *)
  mutable plain : bool;
  mutable prof : prof option;
  mutable escape : (exn -> unit) option;
}

let wheel_default =
  match Sys.getenv_opt "CM_ENGINE" with
  | Some "heap" -> false
  | Some "wheel" | Some _ | None -> true

let create ?(start = Time.zero) ?(wheel = wheel_default) () =
  {
    clock = start;
    queue = (if wheel then Wheel.create ~start () else Wheel.create ~slots:0 ~start ());
    pool = Array.make 64 null_entry;
    pool_len = 0;
    pool_hw = 0;
    executed = 0;
    cancelled = 0;
    clamped = 0;
    running = false;
    plain = true;
    prof = None;
    escape = None;
  }

let now t = t.clock

(* ---- observability hooks ----------------------------------------------- *)

let categories = [| "other"; "timer"; "net"; "cm" |]

let category_index cat =
  let rec go i = if i >= Array.length categories then 0 else if categories.(i) = cat then i else go (i + 1) in
  go 0

let default_sample_shift = 10 (* one gettimeofday per 1024 dispatches *)

let enable_prof ?(sample_shift = default_sample_shift) t =
  if sample_shift < 0 || sample_shift > 30 then invalid_arg "Engine.enable_prof: sample_shift";
  let now_w = Unix.gettimeofday () in
  t.prof <-
    Some
      {
        p_names = categories;
        p_dispatch = Array.make (Array.length categories) 0;
        p_wall = Array.make (Array.length categories) 0.;
        p_cur = 0;
        p_mask = (1 lsl sample_shift) - 1;
        p_samples = 0;
        p_last = now_w;
        p_t0 = now_w;
        p_gc0 = Gc.quick_stat ();
      };
  t.plain <- false

let prof_enabled t = t.prof <> None

(* Wrap an event callback so dispatches (and sampled wall time) are
   charged to [cat].  Identity when the profiler is off, so call sites tag
   their one long-lived closure unconditionally at creation time; only a
   profiled run pays the extra closure.  Untagged events count as
   "other". *)
let prof_tag t ~cat fn =
  match t.prof with
  | None -> fn
  | Some p ->
      let idx = category_index cat in
      fun () ->
        p.p_cur <- idx;
        fn ()

let prof_report t =
  match t.prof with
  | None -> None
  | Some p ->
      let gc = Gc.quick_stat () in
      Some
        {
          pr_categories =
            Array.to_list
              (Array.mapi
                 (fun i name ->
                   { pc_name = name; pc_dispatches = p.p_dispatch.(i); pc_wall_s = p.p_wall.(i) })
                 p.p_names);
          pr_dispatches = Array.fold_left ( + ) 0 p.p_dispatch;
          pr_samples = p.p_samples;
          pr_wall_s = Unix.gettimeofday () -. p.p_t0;
          pr_minor_words = gc.Gc.minor_words -. p.p_gc0.Gc.minor_words;
          pr_major_words = gc.Gc.major_words -. p.p_gc0.Gc.major_words;
          pr_promoted_words = gc.Gc.promoted_words -. p.p_gc0.Gc.promoted_words;
          pr_minor_collections = gc.Gc.minor_collections - p.p_gc0.Gc.minor_collections;
          pr_major_collections = gc.Gc.major_collections - p.p_gc0.Gc.major_collections;
          pr_pool_hw = t.pool_hw;
          pr_queue = Wheel.stats t.queue;
        }

let set_escape_hook t hook =
  t.escape <- hook;
  t.plain <- t.prof = None && t.escape = None

let pool_hw t = t.pool_hw
let queue_stats t = Wheel.stats t.queue

(* Dispatch one event callback under the active hooks.  [plain] runs are
   the direct call; otherwise an escaping exception is reported to the
   escape hook (then re-raised — the recorder dumps, the failure still
   propagates), and the profiler charges the dispatch. *)
let dispatch t f =
  if t.plain then f ()
  else begin
    (match t.escape with
    | None -> f ()
    | Some h -> (
        try f ()
        with e ->
          h e;
          raise e));
    match t.prof with
    | None -> ()
    | Some p ->
        p.p_dispatch.(p.p_cur) <- p.p_dispatch.(p.p_cur) + 1;
        if t.executed land p.p_mask = 0 then begin
          let now_w = Unix.gettimeofday () in
          p.p_wall.(p.p_cur) <- p.p_wall.(p.p_cur) +. (now_w -. p.p_last);
          p.p_last <- now_w;
          p.p_samples <- p.p_samples + 1
        end;
        p.p_cur <- 0
  end

(* Pool bound: enough cells to recycle the whole standing queue, but a
   burst's worth of surplus cells is released as the queue drains. *)
let pool_put t entry =
  let cap = Stdlib.max 64 (Wheel.size t.queue) in
  if t.pool_len < cap then begin
    if t.pool_len = Array.length t.pool then begin
      let grown = Array.make (2 * t.pool_len) null_entry in
      Array.blit t.pool 0 grown 0 t.pool_len;
      t.pool <- grown
    end;
    t.pool.(t.pool_len) <- entry;
    t.pool_len <- t.pool_len + 1;
    if t.pool_len > t.pool_hw then t.pool_hw <- t.pool_len
  end
  else
    while t.pool_len > cap do
      t.pool_len <- t.pool_len - 1;
      t.pool.(t.pool_len) <- null_entry
    done

let pool_size t = t.pool_len

let enqueue t when_ fn =
  if t.pool_len > 0 then begin
    t.pool_len <- t.pool_len - 1;
    let entry = t.pool.(t.pool_len) in
    t.pool.(t.pool_len) <- null_entry;
    Wheel.set_handle_value entry fn;
    Wheel.reinsert t.queue entry ~time:when_;
    entry
  end
  else Wheel.insert t.queue ~time:when_ fn

let schedule_at t when_ fn =
  if when_ < t.clock then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is in the past (now %a)" Time.pp when_ Time.pp
         t.clock);
  let entry = enqueue t when_ fn in
  { entry; h_seq = Wheel.handle_seq entry }

let schedule_after t d fn =
  if d < 0 then t.clamped <- t.clamped + 1;
  schedule_at t (Time.add t.clock (Stdlib.max d 0)) fn

(* Fire-and-forget schedule: same queue behaviour as [schedule_after]
   (including the seq sequence, so pop order is unchanged), but no
   handle record is built — the allocation-free path for callers that
   never cancel, which is every per-grant and per-cycle event. *)
let post t d fn =
  if d < 0 then t.clamped <- t.clamped + 1;
  ignore (enqueue t (Time.add t.clock (Stdlib.max d 0)) fn)

(* A handle is live iff its entry has not been recycled or rescheduled
   since the handle was made (seq matches — seqs are never reused) and
   the event has neither fired nor been cancelled. *)
let live h = Wheel.handle_seq h.entry = h.h_seq && Wheel.handle_value h.entry != dead

(* Compact once dead entries dominate: rare (amortized O(1) per cancel),
   and only worthwhile when cancelled events would otherwise linger far in
   the future, e.g. retransmit timers that keep being reset.  Entries the
   filter drops are simply GC'd rather than pooled. *)
let maybe_compact t =
  if t.cancelled > 64 && t.cancelled > Wheel.size t.queue / 2 then begin
    Wheel.filter_in_place t.queue (fun fn -> fn != dead);
    t.cancelled <- 0
  end

let cancel t h =
  if not (live h) then false
  else begin
    Wheel.set_handle_value h.entry dead;
    t.cancelled <- t.cancelled + 1;
    maybe_compact t;
    true
  end

let reschedule t h when_ =
  if when_ < t.clock then
    invalid_arg
      (Format.asprintf "Engine.reschedule: %a is in the past (now %a)" Time.pp when_ Time.pp
         t.clock);
  if not (live h) then false
  else begin
    ignore (Wheel.update t.queue h.entry ~time:when_);
    (* the move took a fresh seq; track it so this handle stays live *)
    h.h_seq <- Wheel.handle_seq h.entry;
    true
  end

let pending t = Wheel.size t.queue - t.cancelled

let rec step t =
  if Wheel.is_empty t.queue then false
  else begin
    let entry = Wheel.pop_min t.queue in
    let f = Wheel.handle_value entry in
    pool_put t entry;
    if f == dead then begin
      t.cancelled <- t.cancelled - 1;
      step t
    end
    else begin
      t.clock <- Wheel.handle_time entry;
      t.executed <- t.executed + 1;
      Wheel.set_handle_value entry dead;
      dispatch t f;
      true
    end
  end

(* The run loop peeks (O(1), no allocation) before popping so an event
   past [until] stays queued; [limit] is hoisted to a sentinel so the
   per-event path is a single integer compare instead of an option
   match. *)
let run ?until t =
  if t.running then invalid_arg "Engine.run: reentrant run";
  t.running <- true;
  let limit = match until with Some l -> l | None -> max_int in
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      let continue = ref true in
      while !continue do
        if Wheel.is_empty t.queue then continue := false
        else begin
          let entry = Wheel.min_handle t.queue in
          let f = Wheel.handle_value entry in
          if f == dead then begin
            ignore (Wheel.pop_min t.queue);
            pool_put t entry;
            t.cancelled <- t.cancelled - 1
          end
          else begin
            let when_ = Wheel.handle_time entry in
            if when_ > limit then continue := false
            else begin
              ignore (Wheel.pop_min t.queue);
              pool_put t entry;
              t.clock <- when_;
              t.executed <- t.executed + 1;
              Wheel.set_handle_value entry dead;
              dispatch t f
            end
          end
        end
      done;
      if limit <> max_int && limit > t.clock then t.clock <- limit)

let run_for t d = run ~until:(Time.add t.clock d) t
let events_executed t = t.executed
let schedules_clamped t = t.clamped
