open Cm_util

let setup engine ?(level = Logs.Warning) ?(ppf = Format.err_formatter) () =
  let report src lvl ~over k msgf =
    let k _ =
      over ();
      k ()
    in
    msgf (fun ?header ?tags fmt ->
        ignore tags;
        let hdr = match header with Some h -> h ^ " " | None -> "" in
        Format.kfprintf k ppf
          ("[%a] %s %a %s@[" ^^ fmt ^^ "@]@.")
          Time.pp (Engine.now engine) (Logs.Src.name src) Logs.pp_level lvl hdr)
  in
  Logs.set_reporter { Logs.report };
  Logs.set_level (Some level)

let sources : (string, Logs.src) Hashtbl.t = Hashtbl.create 8

let src name =
  match Hashtbl.find_opt sources name with
  | Some s -> s
  | None ->
      let s = Logs.Src.create name ~doc:(name ^ " component") in
      Hashtbl.replace sources name s;
      s
