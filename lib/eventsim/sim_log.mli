(** Simulation-aware logging.

    Wires the [logs] library to a reporter that prefixes every message
    with the engine's virtual clock, so library debug output lines up
    with simulated time rather than wall time.  Libraries log under their
    own sources (e.g. ["cm"], ["tcp"]); nothing is printed unless the
    application installs this reporter and raises the level. *)

val setup : Engine.t -> ?level:Logs.level -> ?ppf:Format.formatter -> unit -> unit
(** Install a reporter stamped with [eng]'s {e virtual} clock and set the
    global log level (default [Logs.Warning]).  Output goes to [ppf]
    (default stderr) — tests pass a buffer formatter to assert on the
    stamping and filtering. *)

val src : string -> Logs.src
(** [src name] is a memoized log source for a library component. *)
