type pipe = { a : Host.t; b : Host.t; ab : Link.t; ba : Link.t }

(* Validate builder parameters up front with the builder and parameter
   named, instead of letting Link.create (or worse, a mis-sized queue at
   runtime) fail with a message that doesn't say which knob was wrong. *)
let check_bw ~who name bw =
  if Float.is_nan bw || bw <= 0. then
    invalid_arg (Printf.sprintf "Topology.%s: %s must be positive (got %g bps)" who name bw)

let check_delay ~who name (d : Cm_util.Time.span) =
  if d < 0 then
    invalid_arg (Printf.sprintf "Topology.%s: %s must be non-negative (got %d ns)" who name d)

let check_queue ~who name q =
  if q <= 0 then
    invalid_arg (Printf.sprintf "Topology.%s: %s must be positive (got %d pkts)" who name q)

let pipe engine ~bandwidth_bps ~delay ?(loss_rate = 0.) ?(qdisc_limit = 100)
    ?(reverse_qdisc_limit = 1000) ?rng ?costs () =
  check_bw ~who:"pipe" "bandwidth_bps" bandwidth_bps;
  check_delay ~who:"pipe" "delay" delay;
  check_queue ~who:"pipe" "qdisc_limit" qdisc_limit;
  check_queue ~who:"pipe" "reverse_qdisc_limit" reverse_qdisc_limit;
  let a = Host.create engine ~id:0 ?costs () in
  let b = Host.create engine ~id:1 ?costs () in
  let ab =
    Link.create engine ~bandwidth_bps ~delay
      ~qdisc:(Queue_disc.droptail ~limit_pkts:qdisc_limit ())
      ~loss_rate ?rng
      ~sink:(fun pkt -> Host.deliver b pkt)
      ()
  in
  let ba =
    Link.create engine ~bandwidth_bps ~delay
      ~qdisc:(Queue_disc.droptail ~limit_pkts:reverse_qdisc_limit ())
      ~sink:(fun pkt -> Host.deliver a pkt)
      ()
  in
  Host.attach_route a (Link.send ab);
  Host.attach_route b (Link.send ba);
  { a; b; ab; ba }

type star = {
  server : Host.t;
  clients : Host.t array;
  up : Link.t array;
  down : Link.t array;
  to_server : Link.t;
  from_server : Link.t;
}

let star engine ~n_clients ~access_bps ~access_delay ~bottleneck_bps ~bottleneck_delay
    ?(loss_rate = 0.) ?(qdisc_limit = 100) ?rng ?costs () =
  if n_clients <= 0 then invalid_arg "Topology.star: need at least one client";
  check_bw ~who:"star" "access_bps" access_bps;
  check_bw ~who:"star" "bottleneck_bps" bottleneck_bps;
  check_delay ~who:"star" "access_delay" access_delay;
  check_delay ~who:"star" "bottleneck_delay" bottleneck_delay;
  check_queue ~who:"star" "qdisc_limit" qdisc_limit;
  let server = Host.create engine ~id:0 ?costs () in
  let clients = Array.init n_clients (fun i -> Host.create engine ~id:(i + 1) ?costs ()) in
  let core = Router.create () in
  (* Shared bottleneck, both directions, hanging off the core router. *)
  let to_server =
    Link.create engine ~bandwidth_bps:bottleneck_bps ~delay:bottleneck_delay
      ~qdisc:(Queue_disc.droptail ~limit_pkts:qdisc_limit ())
      ~sink:(fun pkt -> Host.deliver server pkt)
      ()
  in
  let client_side = Router.create () in
  let from_server =
    Link.create engine ~bandwidth_bps:bottleneck_bps ~delay:bottleneck_delay
      ~qdisc:(Queue_disc.droptail ~limit_pkts:qdisc_limit ())
      ~loss_rate ?rng
      ~sink:(fun pkt -> Router.forward client_side pkt)
      ()
  in
  let up =
    Array.map
      (fun client ->
        let link =
          Link.create engine ~bandwidth_bps:access_bps ~delay:access_delay
            ~sink:(fun pkt -> Router.forward core pkt)
            ()
        in
        Host.attach_route client (Link.send link);
        link)
      clients
  in
  let down =
    Array.map
      (fun client ->
        Link.create engine ~bandwidth_bps:access_bps ~delay:access_delay
          ~sink:(fun pkt -> Host.deliver client pkt)
          ())
      clients
  in
  Router.add_route core ~dst:0 (Link.send to_server);
  Array.iteri (fun i _ -> Router.add_route client_side ~dst:(i + 1) (Link.send down.(i))) clients;
  Host.attach_route server (Link.send from_server);
  { server; clients; up; down; to_server; from_server }
