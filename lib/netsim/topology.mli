(** Canned topologies for experiments.

    Two builders cover every evaluation in the paper: a point-to-point
    Dummynet-style pipe between two hosts (Figs. 3–6, 8–10) and a star of
    clients behind one shared bottleneck to a server (Fig. 7, sharing and
    fairness experiments). *)

open Cm_util
open Eventsim

type pipe = {
  a : Host.t;  (** Host with id 0 ("sender" side). *)
  b : Host.t;  (** Host with id 1 ("receiver" side). *)
  ab : Link.t;  (** Forward direction a → b. *)
  ba : Link.t;  (** Reverse direction b → a. *)
}
(** A two-host path. *)

val pipe :
  Engine.t ->
  bandwidth_bps:float ->
  delay:Time.span ->
  ?loss_rate:float ->
  ?qdisc_limit:int ->
  ?reverse_qdisc_limit:int ->
  ?rng:Rng.t ->
  ?costs:Costs.t ->
  unit ->
  pipe
(** [pipe eng ~bandwidth_bps ~delay ()] connects two fresh hosts with
    symmetric links.  [delay] is the one-way propagation delay (RTT is
    [2 × delay] plus serialization).  [loss_rate] applies to the forward
    (a → b) direction only, like the paper's Dummynet configuration.
    [qdisc_limit] sizes the forward drop-tail queue (default 100 pkts). *)

type star = {
  server : Host.t;  (** Host id 0. *)
  clients : Host.t array;  (** Hosts 1..n. *)
  up : Link.t array;  (** Client i → router access links. *)
  down : Link.t array;  (** Router → client i access links. *)
  to_server : Link.t;  (** Shared bottleneck towards the server. *)
  from_server : Link.t;  (** Shared bottleneck from the server. *)
}
(** Clients behind a common bottleneck to one server. *)

val star :
  Engine.t ->
  n_clients:int ->
  access_bps:float ->
  access_delay:Time.span ->
  bottleneck_bps:float ->
  bottleneck_delay:Time.span ->
  ?loss_rate:float ->
  ?qdisc_limit:int ->
  ?rng:Rng.t ->
  ?costs:Costs.t ->
  unit ->
  star
(** Builds clients—router—server.  All traffic between any client and the
    server crosses the shared bottleneck in both directions; [loss_rate]
    applies on the server → clients direction (data direction for a
    downloading client). *)
