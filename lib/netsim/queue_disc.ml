open Cm_util

type verdict = Enqueued | Dropped

type t = {
  name : string;
  enqueue : Packet.t -> verdict;
  dequeue : unit -> Packet.t option;
  len : unit -> int;
  bytes : unit -> int;
  drops : unit -> int;
  marks : unit -> int;
}

let droptail ?limit_bytes ~limit_pkts () =
  if limit_pkts <= 0 then
    invalid_arg
      (Printf.sprintf "Queue_disc.droptail: limit_pkts must be positive (got %d)" limit_pkts);
  (match limit_bytes with
  | Some b when b <= 0 ->
      invalid_arg
        (Printf.sprintf
           "Queue_disc.droptail: limit_bytes must be positive (got %d; a non-positive byte limit \
            would silently drop every packet)"
           b)
  | _ -> ());
  let q = Byte_queue.create () in
  let drops = ref 0 in
  (* the option is resolved once here, not matched per packet *)
  let limit_bytes = match limit_bytes with Some b -> b | None -> max_int in
  let over_limit pkt =
    Byte_queue.length q >= limit_pkts || Byte_queue.bytes q + pkt.Packet.size > limit_bytes
  in
  let enqueue pkt =
    if over_limit pkt then begin
      incr drops;
      Dropped
    end
    else begin
      Byte_queue.push q ~size:pkt.Packet.size pkt;
      Enqueued
    end
  in
  {
    name = "droptail";
    enqueue;
    dequeue = (fun () -> Byte_queue.pop q);
    len = (fun () -> Byte_queue.length q);
    bytes = (fun () -> Byte_queue.bytes q);
    drops = (fun () -> !drops);
    marks = (fun () -> 0);
  }

let drop_from_head ~limit_pkts () =
  if limit_pkts <= 0 then invalid_arg "Queue_disc.drop_from_head: limit_pkts must be positive";
  let q = Byte_queue.create () in
  let drops = ref 0 in
  let enqueue pkt =
    if Byte_queue.length q >= limit_pkts then begin
      ignore (Byte_queue.drop_head q);
      incr drops
    end;
    Byte_queue.push q ~size:pkt.Packet.size pkt;
    Enqueued
  in
  {
    name = "drop-from-head";
    enqueue;
    dequeue = (fun () -> Byte_queue.pop q);
    len = (fun () -> Byte_queue.length q);
    bytes = (fun () -> Byte_queue.bytes q);
    drops = (fun () -> !drops);
    marks = (fun () -> 0);
  }

let red ?(ecn = false) ?(wq = 0.002) ?(max_p = 0.1) ~min_th ~max_th ~limit_pkts ~rng () =
  if min_th <= 0 || max_th <= min_th || limit_pkts < max_th then
    invalid_arg "Queue_disc.red: need 0 < min_th < max_th <= limit_pkts";
  let q = Byte_queue.create () in
  let drops = ref 0 and marks = ref 0 in
  let avg = ref 0. in
  (* per-packet float conversions hoisted out of the enqueue busy-loop;
     the arithmetic below is kept operation-for-operation identical to the
     unhoisted form so simulated traces are unchanged *)
  let one_minus_wq = 1. -. wq in
  let min_th_f = float_of_int min_th in
  let max_th_f = float_of_int max_th in
  let range_f = float_of_int (max_th - min_th) in
  (* count of packets since last mark/drop, for the RED 1/(1 - count*pb)
     spreading of marks *)
  let count = ref (-1) in
  let note_congestion pkt =
    if ecn && pkt.Packet.ecn_capable then begin
      pkt.Packet.ecn_marked <- true;
      incr marks;
      true (* still enqueue *)
    end
    else begin
      incr drops;
      false
    end
  in
  let enqueue pkt =
    avg := (one_minus_wq *. !avg) +. (wq *. float_of_int (Byte_queue.length q));
    let admit =
      if Byte_queue.length q >= limit_pkts then begin
        incr drops;
        count := -1;
        false
      end
      else if !avg < min_th_f then begin
        count := -1;
        true
      end
      else if !avg >= max_th_f then begin
        count := -1;
        note_congestion pkt
      end
      else begin
        incr count;
        let pb = max_p *. (!avg -. min_th_f) /. range_f in
        let pa =
          let denom = 1. -. (float_of_int !count *. pb) in
          if denom <= 0. then 1. else pb /. denom
        in
        if Rng.bernoulli rng pa then begin
          count := -1;
          note_congestion pkt
        end
        else true
      end
    in
    if admit then begin
      Byte_queue.push q ~size:pkt.Packet.size pkt;
      Enqueued
    end
    else Dropped
  in
  {
    name = (if ecn then "red+ecn" else "red");
    enqueue;
    dequeue = (fun () -> Byte_queue.pop q);
    len = (fun () -> Byte_queue.length q);
    bytes = (fun () -> Byte_queue.bytes q);
    drops = (fun () -> !drops);
    marks = (fun () -> !marks);
  }
