open Cm_util
open Eventsim

type direction = Tx | Rx | Drop of Link.drop_why

type event = {
  at : Time.t;
  direction : direction;
  point : string;
  flow : Addr.flow;
  size : int;
  packet_id : int;
}

type t = {
  engine : Engine.t;
  capacity : int;
  filter : Packet.t -> bool;
  ring : event option array;
  mutable next : int; (* next slot to write *)
  mutable total : int;
}

let create engine ?(capacity = 10_000) ?(filter = fun _ -> true) () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  { engine; capacity; filter; ring = Array.make capacity None; next = 0; total = 0 }

let observe t ~name direction (pkt : Packet.t) =
  if t.filter pkt then begin
    t.ring.(t.next mod t.capacity) <-
      Some
        {
          at = Engine.now t.engine;
          direction;
          point = name;
          flow = pkt.Packet.flow;
          size = pkt.Packet.size;
          packet_id = pkt.Packet.id;
        };
    t.next <- t.next + 1;
    t.total <- t.total + 1
  end

let probe_host t ~name host =
  Host.add_tx_hook host (fun pkt -> observe t ~name Tx pkt)

let probe_sink t ~name sink pkt =
  observe t ~name Rx pkt;
  sink pkt

let probe_link_drops t ~name link =
  Link.set_drop_hook link (fun why pkt -> observe t ~name (Drop why) pkt)

let events t =
  let n = Stdlib.min t.total t.capacity in
  let start = t.next - n in
  List.init n (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let count t = Stdlib.min t.total t.capacity
let total_observed t = t.total

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.total <- 0

let find t pred = List.find_opt pred (events t)

let pp_direction fmt = function
  | Tx -> Format.pp_print_string fmt "tx"
  | Rx -> Format.pp_print_string fmt "rx"
  | Drop Link.Channel -> Format.pp_print_string fmt "drop(chan)"
  | Drop Link.Queue -> Format.pp_print_string fmt "drop(queue)"
  | Drop Link.Down -> Format.pp_print_string fmt "drop(down)"

let pp_event fmt e =
  Format.fprintf fmt "%a %a %-12s %a %dB #%d" Time.pp e.at pp_direction e.direction e.point
    Addr.pp_flow e.flow e.size e.packet_id

let line e = Format.asprintf "%a" pp_event e

let dump fmt t =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_event e) (events t)

(* machine-readable twin of [line]: same fields, same drop-cause
   attribution, floats through Json so every machine channel formats
   identically *)
let direction_str = function
  | Tx -> "tx"
  | Rx -> "rx"
  | Drop Link.Channel -> "drop"
  | Drop Link.Queue -> "drop"
  | Drop Link.Down -> "drop"

let drop_cause = function
  | Drop Link.Channel -> Some "channel"
  | Drop Link.Queue -> Some "queue"
  | Drop Link.Down -> Some "down"
  | Tx | Rx -> None

let event_json e =
  let open Json in
  Obj
    ([
       ("ts_s", Float (Time.to_float_s e.at));
       ("dir", Str (direction_str e.direction));
     ]
    @ (match drop_cause e.direction with Some c -> [ ("cause", Str c) ] | None -> [])
    @ [
        ("point", Str e.point);
        ("flow", Str (Format.asprintf "%a" Addr.pp_flow e.flow));
        ("size", Int e.size);
        ("packet", Int e.packet_id);
      ])

let to_jsonl b t =
  List.iter
    (fun e ->
      Json.write b (event_json e);
      Buffer.add_char b '\n')
    (events t)

let dump_jsonl fmt t =
  let b = Buffer.create 1024 in
  to_jsonl b t;
  Format.pp_print_string fmt (Buffer.contents b)
