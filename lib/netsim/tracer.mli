(** Packet tracing.

    A lightweight observability layer: wrap link sinks and host transmit
    paths to record timestamped packet events (the simulator's analogue of
    tcpdump).  Traces are bounded ring buffers, filterable at record time,
    and renderable for debugging failed experiments or tests. *)

open Cm_util
open Eventsim

type direction =
  | Tx  (** Packet leaving a host's IP layer. *)
  | Rx  (** Packet delivered by a link. *)
  | Drop of Link.drop_why
      (** Packet killed at a link, attributed to the channel-loss process,
          the queueing discipline, or a link outage — so scenario
          post-mortems can tell congestion loss from injected faults. *)

type event = {
  at : Time.t;
  direction : direction;
  point : string;  (** Where the event was observed (probe name). *)
  flow : Addr.flow;
  size : int;  (** Wire bytes. *)
  packet_id : int;
}
(** One observed packet event. *)

type t
(** A trace (bounded ring buffer of events). *)

val create : Engine.t -> ?capacity:int -> ?filter:(Packet.t -> bool) -> unit -> t
(** [create eng ()] holds the most recent [capacity] events (default
    10 000), timestamped from the engine's clock; [filter] selects which
    packets are recorded (default: all). *)

val observe : t -> name:string -> direction -> Packet.t -> unit
(** Record one event (the primitive the probes are built on). *)

val probe_host : t -> name:string -> Host.t -> unit
(** Record a [Tx] event for every packet the host transmits. *)

val probe_sink : t -> name:string -> (Packet.t -> unit) -> Packet.t -> unit
(** [probe_sink t ~name sink] is a sink that records an [Rx] event and
    forwards to [sink] — use it as a link's sink. *)

val probe_link_drops : t -> name:string -> Link.t -> unit
(** Record a [Drop] event, with its reason, for every packet the link
    kills (installs the link's drop hook). *)

val events : t -> event list
(** Recorded events, oldest first. *)

val count : t -> int
(** Events currently held. *)

val total_observed : t -> int
(** Events observed since creation (including ones evicted). *)

val clear : t -> unit
(** Drop all recorded events. *)

val find : t -> (event -> bool) -> event option
(** First matching event, oldest first. *)

val pp_event : Format.formatter -> event -> unit
(** Render one line: time, direction, probe, flow, size. *)

val line : event -> string
(** The human line format of {!pp_event}, as a string. *)

val event_json : event -> Cm_util.Json.t
(** The machine twin of {!line}: same fields (timestamp, direction,
    drop-cause attribution, probe, flow, size, packet id), rendered
    through {!Cm_util.Json} so floats format identically ([%.6g]) across
    every machine-readable output in the repo. *)

val to_jsonl : Buffer.t -> t -> unit
(** Append the whole trace as JSONL, one {!event_json} per line. *)

val dump : Format.formatter -> t -> unit
(** Render the whole trace (human lines). *)

val dump_jsonl : Format.formatter -> t -> unit
(** Render the whole trace as JSONL. *)
