type proto = Tcp | Udp
type endpoint = { host : int; port : int }
type flow = { src : endpoint; dst : endpoint; proto : proto; dscp : int }

let endpoint ~host ~port = { host; port }

let flow ?(dscp = 0) ~src ~dst ~proto () =
  if dscp < 0 || dscp > 63 then invalid_arg "Addr.flow: dscp must be in [0, 63]";
  { src; dst; proto; dscp }
let reverse f = { f with src = f.dst; dst = f.src }
let equal_endpoint a b = a.host = b.host && a.port = b.port
let equal_flow a b =
  equal_endpoint a.src b.src && equal_endpoint a.dst b.dst && a.proto = b.proto
  && a.dscp = b.dscp

(* per-packet on the receive path: only allocate when there is actually a
   codepoint to strip (dscp = 0 is the overwhelmingly common case) *)
let strip_dscp f = if f.dscp = 0 then f else { f with dscp = 0 }
let compare_flow (a : flow) b = Stdlib.compare a b
let pp_proto fmt p = Format.pp_print_string fmt (match p with Tcp -> "tcp" | Udp -> "udp")
let pp_endpoint fmt e = Format.fprintf fmt "%d:%d" e.host e.port

let pp_flow fmt f =
  Format.fprintf fmt "%a %a -> %a%s" pp_proto f.proto pp_endpoint f.src pp_endpoint f.dst
    (if f.dscp = 0 then "" else Printf.sprintf " dscp=%d" f.dscp)

module Flow_table = Hashtbl.Make (struct
  type t = flow

  let equal = equal_flow
  let hash = Hashtbl.hash
end)
