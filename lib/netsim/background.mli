(** Background (cross) traffic generators.

    Non-adaptive UDP load used to contend with the flows under test:
    constant bit rate, exponential on/off, and Poisson packet arrivals.
    Combined with the dynamics subsystem's bandwidth scenarios
    (`lib/dynamics`) these reproduce the "available bandwidth varies over
    time" conditions of Figs. 8–10. *)

open Cm_util
open Eventsim

type t
(** A running generator. *)

val cbr :
  Engine.t ->
  host:Host.t ->
  dst:Addr.endpoint ->
  rate_bps:float ->
  packet_bytes:int ->
  ?start:Time.t ->
  ?stop:Time.t ->
  unit ->
  t
(** Constant-bit-rate UDP source from [host] to [dst]:
    one [packet_bytes] packet every [packet_bytes·8 / rate_bps] seconds. *)

val on_off :
  Engine.t ->
  host:Host.t ->
  dst:Addr.endpoint ->
  rate_bps:float ->
  packet_bytes:int ->
  mean_on:Time.span ->
  mean_off:Time.span ->
  rng:Rng.t ->
  ?start:Time.t ->
  ?stop:Time.t ->
  unit ->
  t
(** Exponential on/off source transmitting at [rate_bps] during on
    periods. *)

val poisson :
  Engine.t ->
  host:Host.t ->
  dst:Addr.endpoint ->
  rate_bps:float ->
  packet_bytes:int ->
  rng:Rng.t ->
  ?start:Time.t ->
  ?stop:Time.t ->
  unit ->
  t
(** Poisson packet arrivals with the given mean load. *)

val stop : t -> unit
(** Stop generating. *)

val packets_sent : t -> int
(** Packets emitted so far. *)
