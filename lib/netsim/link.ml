open Cm_util
open Eventsim

type stats = {
  enqueued_pkts : int;
  delivered_pkts : int;
  delivered_bytes : int;
  queue_drops : int;
  channel_drops : int;
  ecn_marks : int;
}

type t = {
  engine : Engine.t;
  mutable bandwidth_bps : float;
  delay : Time.span;
  qdisc : Queue_disc.t;
  mutable loss_rate : float;
  mutable reorder : (float * Time.span) option; (* probability, extra delay *)
  rng : Rng.t option;
  sink : Packet.t -> unit;
  mutable busy : bool;
  mutable enqueued_pkts : int;
  mutable delivered_pkts : int;
  mutable delivered_bytes : int;
  mutable channel_drops : int;
  (* transmit-path caches: bulk traffic is dominated by one packet size, so
     the serialization time is memoized instead of recomputed through float
     division for every packet *)
  mutable tx_cache_size : int;
  mutable tx_cache_time : Time.span;
  (* the packet on the wire and a propagation FIFO let one pre-allocated
     closure pair drive every transmission, instead of two fresh closures
     per packet *)
  mutable txing : Packet.t option;
  in_flight : Packet.t Queue.t;
  mutable finish_fn : unit -> unit;
  mutable deliver_fn : unit -> unit;
}

let tx_time t (pkt : Packet.t) =
  if pkt.size = t.tx_cache_size then t.tx_cache_time
  else begin
    let tt = Time.sec (float_of_int (pkt.size * 8) /. t.bandwidth_bps) in
    t.tx_cache_size <- pkt.size;
    t.tx_cache_time <- tt;
    tt
  end

let deliver t (pkt : Packet.t) =
  t.delivered_pkts <- t.delivered_pkts + 1;
  t.delivered_bytes <- t.delivered_bytes + pkt.Packet.size;
  t.sink pkt

let start_transmission t =
  match t.qdisc.Queue_disc.dequeue () with
  | None -> t.busy <- false
  | Some pkt as got ->
      t.busy <- true;
      t.txing <- got;
      ignore (Engine.schedule_after t.engine (tx_time t pkt) t.finish_fn)

let create engine ~bandwidth_bps ~delay ?qdisc ?(loss_rate = 0.) ?reorder ?rng ~sink () =
  if bandwidth_bps <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  if delay < 0 then invalid_arg "Link.create: negative delay";
  if (loss_rate > 0. || reorder <> None) && rng = None then
    invalid_arg "Link.create: loss_rate/reorder need an rng";
  (match reorder with
  | Some (p, extra) when p < 0. || p > 1. || extra <= 0 ->
      invalid_arg "Link.create: reorder needs 0 <= p <= 1 and a positive extra delay"
  | _ -> ());
  let qdisc = match qdisc with Some q -> q | None -> Queue_disc.droptail ~limit_pkts:100 () in
  let t =
    {
      engine;
      bandwidth_bps;
      delay;
      qdisc;
      loss_rate;
      reorder;
      rng;
      sink;
      busy = false;
      enqueued_pkts = 0;
      delivered_pkts = 0;
      delivered_bytes = 0;
      channel_drops = 0;
      tx_cache_size = -1;
      tx_cache_time = 0;
      txing = None;
      in_flight = Queue.create ();
      finish_fn = ignore;
      deliver_fn = ignore;
    }
  in
  t.deliver_fn <- (fun () -> deliver t (Queue.pop t.in_flight));
  t.finish_fn <-
    (fun () ->
      let pkt = match t.txing with Some p -> p | None -> assert false in
      t.txing <- None;
      (* Dummynet-style reordering: with probability p a packet takes a
         detour of [extra] additional propagation delay, letting later
         packets overtake it *)
      let extra =
        match (t.reorder, t.rng) with
        | Some (p, extra), Some rng when Rng.bernoulli rng p -> extra
        | _ -> 0
      in
      if extra = 0 then begin
        (* common case: in-order propagation, shared delivery closure *)
        Queue.push pkt t.in_flight;
        ignore (Engine.schedule_after t.engine t.delay t.deliver_fn)
      end
      else ignore (Engine.schedule_after t.engine (t.delay + extra) (fun () -> deliver t pkt));
      start_transmission t);
  t

let send t pkt =
  let lost =
    t.loss_rate > 0.
    && match t.rng with Some rng -> Rng.bernoulli rng t.loss_rate | None -> false
  in
  if lost then t.channel_drops <- t.channel_drops + 1
  else begin
    match t.qdisc.Queue_disc.enqueue pkt with
    | Queue_disc.Dropped -> ()
    | Queue_disc.Enqueued ->
        t.enqueued_pkts <- t.enqueued_pkts + 1;
        if not t.busy then start_transmission t
  end

let set_bandwidth t bw =
  if bw <= 0. then invalid_arg "Link.set_bandwidth: bandwidth must be positive";
  t.bandwidth_bps <- bw;
  t.tx_cache_size <- -1

let bandwidth t = t.bandwidth_bps
let delay t = t.delay

let set_loss_rate t r =
  if r > 0. && t.rng = None then invalid_arg "Link.set_loss_rate: loss needs an rng";
  t.loss_rate <- r

let qdisc t = t.qdisc

let stats t =
  {
    enqueued_pkts = t.enqueued_pkts;
    delivered_pkts = t.delivered_pkts;
    delivered_bytes = t.delivered_bytes;
    queue_drops = t.qdisc.Queue_disc.drops ();
    channel_drops = t.channel_drops;
    ecn_marks = t.qdisc.Queue_disc.marks ();
  }

let busy t = t.busy
