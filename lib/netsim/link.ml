open Cm_util
open Eventsim

type drop_why = Channel | Queue | Down

type stats = {
  enqueued_pkts : int;
  delivered_pkts : int;
  delivered_bytes : int;
  queue_drops : int;
  channel_drops : int;
  down_drops : int;
  ecn_marks : int;
}

type t = {
  engine : Engine.t;
  mutable bandwidth_bps : float;
  delay : Time.span;
  qdisc : Queue_disc.t;
  mutable loss_rate : float;
  mutable loss_model : (unit -> bool) option;
  mutable reorder : (float * Time.span) option; (* probability, extra delay *)
  rng : Rng.t option;
  sink : Packet.t -> unit;
  mutable busy : bool;
  mutable up : bool;
  mutable extra_delay : Time.span;
  mutable jitter : Time.span;
  mutable on_drop : drop_why -> Packet.t -> unit;
  (* telemetry: Trace.nil unless attach_telemetry installed a live sink,
     so the transmit path pays one boolean test per drop *)
  mutable trace : Telemetry.Trace.t;
  mutable trace_name : string;
  mutable enqueued_pkts : int;
  mutable delivered_pkts : int;
  mutable delivered_bytes : int;
  mutable channel_drops : int;
  mutable down_drops : int;
  (* transmit-path caches: bulk traffic is dominated by one packet size, so
     the serialization time is memoized instead of recomputed through float
     division for every packet *)
  mutable tx_cache_size : int;
  mutable tx_cache_time : Time.span;
  (* the packet on the wire and a propagation FIFO let one pre-allocated
     closure pair drive every transmission, instead of two fresh closures
     per packet *)
  mutable txing : Packet.t option;
  in_flight : Packet.t Queue.t;
  (* delivery events already scheduled for packets that a link-down flushed
     from [in_flight]; those events must pop nothing when they surface *)
  mutable stale_deliveries : int;
  mutable finish_fn : unit -> unit;
  mutable deliver_fn : unit -> unit;
}

let check_prob ~what p =
  if Float.is_nan p || p < 0. || p > 1. then
    invalid_arg (what ^ ": probability must be in [0,1]")

let tx_time t (pkt : Packet.t) =
  if pkt.size = t.tx_cache_size then t.tx_cache_time
  else begin
    let tt = Time.sec (float_of_int (pkt.size * 8) /. t.bandwidth_bps) in
    t.tx_cache_size <- pkt.size;
    t.tx_cache_time <- tt;
    tt
  end

let deliver t (pkt : Packet.t) =
  t.delivered_pkts <- t.delivered_pkts + 1;
  t.delivered_bytes <- t.delivered_bytes + pkt.Packet.size;
  t.sink pkt

let drop_cause = function Channel -> "channel" | Queue -> "queue" | Down -> "down"

(* every drop funnel: trace event (when telemetry is attached) then the
   caller-installed hook; cause counters stay with each call site *)
let note_drop t why (pkt : Packet.t) =
  if Telemetry.Trace.on t.trace then
    Telemetry.Trace.instant t.trace ~cat:"net" "link.drop"
      [
        ("link", Telemetry.Trace.Str t.trace_name);
        ("cause", Telemetry.Trace.Str (drop_cause why));
        ("size", Telemetry.Trace.Int pkt.Packet.size);
        ("packet", Telemetry.Trace.Int pkt.Packet.id);
      ];
  t.on_drop why pkt

let drop_down t pkt =
  t.down_drops <- t.down_drops + 1;
  note_drop t Down pkt

(* propagation delay for the next packet entering the wire; the jitter
   term makes delivery *times* vary but content order stays FIFO (the
   in-flight queue pops oldest-first whatever the event times) *)
let prop_delay t =
  let base = t.delay + t.extra_delay in
  match (t.jitter, t.rng) with
  | j, Some rng when j > 0 -> base + Rng.uniform_span rng j
  | _ -> base

let start_transmission t =
  if not t.up then t.busy <- false
  else
    match t.qdisc.Queue_disc.dequeue () with
    | None -> t.busy <- false
    | Some pkt as got ->
        t.busy <- true;
        t.txing <- got;
        Engine.post t.engine (tx_time t pkt) t.finish_fn

let create engine ~bandwidth_bps ~delay ?qdisc ?(loss_rate = 0.) ?reorder ?rng ~sink () =
  if Float.is_nan bandwidth_bps || bandwidth_bps <= 0. then
    invalid_arg
      (Printf.sprintf "Link.create: bandwidth must be positive (got %g bps)" bandwidth_bps);
  if delay < 0 then
    invalid_arg (Printf.sprintf "Link.create: negative delay (%d ns)" delay);
  check_prob ~what:"Link.create: loss_rate" loss_rate;
  if (loss_rate > 0. || reorder <> None) && rng = None then
    invalid_arg "Link.create: loss_rate/reorder need an rng";
  (match reorder with
  | Some (p, extra) ->
      check_prob ~what:"Link.create: reorder probability" p;
      if extra <= 0 then invalid_arg "Link.create: reorder needs a positive extra delay"
  | None -> ());
  let qdisc = match qdisc with Some q -> q | None -> Queue_disc.droptail ~limit_pkts:100 () in
  let t =
    {
      engine;
      bandwidth_bps;
      delay;
      qdisc;
      loss_rate;
      loss_model = None;
      reorder;
      rng;
      sink;
      busy = false;
      up = true;
      extra_delay = 0;
      jitter = 0;
      on_drop = (fun _ _ -> ());
      trace = Telemetry.Trace.nil;
      trace_name = "link";
      enqueued_pkts = 0;
      delivered_pkts = 0;
      delivered_bytes = 0;
      channel_drops = 0;
      down_drops = 0;
      tx_cache_size = -1;
      tx_cache_time = 0;
      txing = None;
      in_flight = Queue.create ();
      stale_deliveries = 0;
      finish_fn = ignore;
      deliver_fn = ignore;
    }
  in
  t.deliver_fn <-
    Engine.prof_tag engine ~cat:"net"
    @@ (fun () ->
      if t.stale_deliveries > 0 then t.stale_deliveries <- t.stale_deliveries - 1
      else deliver t (Queue.pop t.in_flight));
  t.finish_fn <-
    Engine.prof_tag engine ~cat:"net"
    @@ (fun () ->
      match t.txing with
      | None ->
          (* the packet under serialization was killed by a link-down *)
          if t.up then start_transmission t else t.busy <- false
      | Some pkt ->
          t.txing <- None;
          (* Dummynet-style reordering: with probability p a packet takes a
             detour of [extra] additional propagation delay, letting later
             packets overtake it *)
          let extra =
            match (t.reorder, t.rng) with
            | Some (p, extra), Some rng when Rng.bernoulli rng p -> extra
            | _ -> 0
          in
          if extra = 0 then begin
            (* common case: in-order propagation, shared delivery closure *)
            Queue.push pkt t.in_flight;
            Engine.post t.engine (prop_delay t) t.deliver_fn
          end
          else
            ignore
              (Engine.schedule_after t.engine
                 (prop_delay t + extra)
                 (fun () -> if t.up then deliver t pkt else drop_down t pkt));
          start_transmission t);
  t

let send t pkt =
  if not t.up then drop_down t pkt
  else begin
    let lost =
      match t.loss_model with
      | Some model -> model ()
      | None -> (
          t.loss_rate > 0.
          && match t.rng with Some rng -> Rng.bernoulli rng t.loss_rate | None -> false)
    in
    if lost then begin
      t.channel_drops <- t.channel_drops + 1;
      note_drop t Channel pkt
    end
    else begin
      match t.qdisc.Queue_disc.enqueue pkt with
      | Queue_disc.Dropped -> note_drop t Queue pkt
      | Queue_disc.Enqueued ->
          t.enqueued_pkts <- t.enqueued_pkts + 1;
          if not t.busy then start_transmission t
    end
  end

let set_bandwidth t bw =
  if Float.is_nan bw || bw <= 0. then
    invalid_arg (Printf.sprintf "Link.set_bandwidth: bandwidth must be positive (got %g bps)" bw);
  t.bandwidth_bps <- bw;
  t.tx_cache_size <- -1

let bandwidth t = t.bandwidth_bps
let delay t = t.delay

let set_loss_rate t r =
  check_prob ~what:"Link.set_loss_rate" r;
  if r > 0. && t.rng = None then invalid_arg "Link.set_loss_rate: loss needs an rng";
  t.loss_rate <- r

let set_loss_model t m = t.loss_model <- m

let up t = t.up

let take_down t =
  if t.up then begin
    t.up <- false;
    (* the packet being serialized dies on the wire *)
    (match t.txing with
    | Some pkt ->
        t.txing <- None;
        drop_down t pkt
    | None -> ());
    (* everything in propagation is lost; their delivery events become
       no-ops when they surface *)
    t.stale_deliveries <- t.stale_deliveries + Queue.length t.in_flight;
    Queue.iter (fun pkt -> drop_down t pkt) t.in_flight;
    Queue.clear t.in_flight
    (* queued packets stay queued: a router buffer survives an interface
       outage and drains when the link returns *)
  end

let bring_up t =
  if not t.up then begin
    t.up <- true;
    if not t.busy then start_transmission t
  end

let set_extra_delay t d =
  if d < 0 then invalid_arg "Link.set_extra_delay: negative delay";
  t.extra_delay <- d

let extra_delay t = t.extra_delay

let set_jitter t j =
  if j < 0 then invalid_arg "Link.set_jitter: negative jitter";
  if j > 0 && t.rng = None then invalid_arg "Link.set_jitter: jitter needs an rng";
  t.jitter <- j

let set_drop_hook t f = t.on_drop <- f
let qdisc t = t.qdisc

let set_trace t ~name tr =
  t.trace <- tr;
  t.trace_name <- name

let attach_telemetry t ~name tel =
  t.trace <- Telemetry.trace tel;
  t.trace_name <- name;
  let g suffix read = Telemetry.gauge tel (Printf.sprintf "link.%s.%s" name suffix) read in
  g "qlen" (fun () -> float_of_int (t.qdisc.Queue_disc.len ()));
  g "qbytes" (fun () -> float_of_int (t.qdisc.Queue_disc.bytes ()));
  g "delivered_pkts" (fun () -> float_of_int t.delivered_pkts);
  g "drops_queue" (fun () -> float_of_int (t.qdisc.Queue_disc.drops ()));
  g "drops_channel" (fun () -> float_of_int t.channel_drops);
  g "drops_down" (fun () -> float_of_int t.down_drops);
  g "ecn_marks" (fun () -> float_of_int (t.qdisc.Queue_disc.marks ()));
  g "bandwidth_bps" (fun () -> t.bandwidth_bps)

let stats t =
  {
    enqueued_pkts = t.enqueued_pkts;
    delivered_pkts = t.delivered_pkts;
    delivered_bytes = t.delivered_bytes;
    queue_drops = t.qdisc.Queue_disc.drops ();
    channel_drops = t.channel_drops;
    down_drops = t.down_drops;
    ecn_marks = t.qdisc.Queue_disc.marks ();
  }

let busy t = t.busy
