open Cm_util

type payload = ..
type payload += Raw of int

type t = {
  id : int;
  flow : Addr.flow;
  size : int;
  sent_at : Time.t;
  mutable ecn_capable : bool;
  mutable ecn_marked : bool;
  payload : payload;
}

let header_bytes = 58

let next_id = ref 0
let reset_ids () = next_id := 0

let[@inline] make ~now ~flow ~payload_bytes ?(ecn_capable = false) payload =
  if payload_bytes < 0 then invalid_arg "Packet.make: negative payload size";
  let id = !next_id + 1 in
  next_id := id;
  {
    id;
    flow;
    size = payload_bytes + header_bytes;
    sent_at = now;
    ecn_capable;
    ecn_marked = false;
    payload;
  }

let[@inline] payload_bytes t = Stdlib.max 0 (t.size - header_bytes)

let pp fmt t =
  Format.fprintf fmt "#%d %a %dB%s%s sent=%a" t.id Addr.pp_flow t.flow t.size
    (if t.ecn_capable then " ect" else "")
    (if t.ecn_marked then " ce" else "")
    Time.pp t.sent_at
