(** Unidirectional links.

    A link serializes packets at its bandwidth, holds them in a queueing
    discipline while the transmitter is busy, applies an optional channel
    loss process (the Dummynet knob used throughout the paper's testbed),
    and delivers each packet to its sink after a propagation delay.

    Bandwidth may be changed at runtime ({!set_bandwidth}): this is how the
    adaptation experiments (Figs. 8–10) emulate a wide-area path whose
    available bandwidth varies over time.  The dynamics subsystem
    ({!module:Cm_dynamics} in `lib/dynamics`) drives the fault knobs —
    {!take_down}/{!bring_up}, {!set_loss_model}, {!set_extra_delay},
    {!set_jitter} — from scripted scenarios. *)

open Cm_util
open Eventsim

type t
(** A link. *)

type drop_why =
  | Channel  (** Lost by the random channel-loss process. *)
  | Queue  (** Rejected by the queueing discipline. *)
  | Down  (** Killed by a link outage (offered or in flight while down). *)
(** Why a packet died at this link (see {!set_drop_hook}). *)

type stats = {
  enqueued_pkts : int;  (** Packets accepted into the queue. *)
  delivered_pkts : int;  (** Packets handed to the sink. *)
  delivered_bytes : int;  (** Bytes handed to the sink. *)
  queue_drops : int;  (** Drops by the queueing discipline. *)
  channel_drops : int;  (** Random (Dummynet-style) channel losses. *)
  down_drops : int;  (** Packets killed by link outages. *)
  ecn_marks : int;  (** ECN marks applied by the discipline. *)
}
(** Cumulative counters. *)

val create :
  Engine.t ->
  bandwidth_bps:float ->
  delay:Time.span ->
  ?qdisc:Queue_disc.t ->
  ?loss_rate:float ->
  ?reorder:float * Time.span ->
  ?rng:Rng.t ->
  sink:(Packet.t -> unit) ->
  unit ->
  t
(** [create eng ~bandwidth_bps ~delay ~sink ()] is a link delivering to
    [sink].  Default discipline: 100-packet drop-tail.  [loss_rate] (with
    its [rng]) drops each packet independently with that probability before
    queueing.  [reorder = (p, extra)] delays each packet by [extra]
    additional propagation with probability [p], so later packets overtake
    it (Dummynet-style reordering).  [loss_rate] and the reorder
    probability must be in \[0,1\] (NaN rejected), else
    [Invalid_argument]. *)

val send : t -> Packet.t -> unit
(** Offer a packet to the link (the device output path). *)

val set_bandwidth : t -> float -> unit
(** Change the serialization rate; takes effect for the next packet to
    start transmission. *)

val bandwidth : t -> float
(** Current serialization rate in bits per second. *)

val delay : t -> Time.span
(** Base propagation delay (excluding any fault-injected extra delay). *)

val set_loss_rate : t -> float -> unit
(** Change the baseline Bernoulli loss probability (must be in \[0,1\],
    NaN rejected). *)

val set_loss_model : t -> (unit -> bool) option -> unit
(** Install a pluggable channel-loss process: the model is asked once per
    offered packet and returns [true] to lose it.  [Some m] overrides the
    baseline [loss_rate]; [None] restores it.  The dynamics subsystem
    provides Bernoulli and Gilbert–Elliott models. *)

val up : t -> bool
(** Whether the link is up (links start up). *)

val take_down : t -> unit
(** Fail the link: the packet under serialization and everything in
    propagation are dropped (counted in [down_drops]), and packets offered
    while down are dropped too.  Queued packets survive, like a router
    buffer behind a dead interface.  Idempotent. *)

val bring_up : t -> unit
(** Restore a failed link and resume draining the queue.  Idempotent. *)

val set_extra_delay : t -> Time.span -> unit
(** Add [d] to the propagation delay of packets subsequently entering the
    wire (a fault-injected delay spike); 0 clears it. *)

val extra_delay : t -> Time.span
(** Current fault-injected extra propagation delay. *)

val set_jitter : t -> Time.span -> unit
(** Add a per-packet uniform random delay in \[0,[j]) to propagation
    (needs the link's [rng]); 0 clears it.  Delivery times vary but packet
    order stays FIFO. *)

val set_drop_hook : t -> (drop_why -> Packet.t -> unit) -> unit
(** Observe every packet this link kills, with the reason — the probe
    point used by [Tracer.probe_link_drops] to attribute losses in
    scenario post-mortems. *)

val set_trace : t -> name:string -> Telemetry.Trace.t -> unit
(** Route this link's trace instants ([link.drop] with cause attribution)
    into [tr] without registering any gauges — how the flight recorder's
    bounded ring taps a link when full telemetry is off.  Overridden by a
    later {!attach_telemetry}. *)

val attach_telemetry : t -> name:string -> Telemetry.t -> unit
(** Wire this link into a telemetry instance: queue depth/bytes, per-cause
    drop counters, ECN marks, and bandwidth become sampled gauges (columns
    [link.<name>.qlen] …), and every drop emits a [link.drop] trace
    instant with its cause attribution ([channel] / [queue] / [down] — the
    same classification {!Tracer} records).  Until this is called the
    link holds the nil trace and the data path pays one branch per drop. *)

val qdisc : t -> Queue_disc.t
(** The attached queueing discipline. *)

val stats : t -> stats
(** Snapshot of the counters. *)

val busy : t -> bool
(** Whether a packet is currently being serialized. *)
