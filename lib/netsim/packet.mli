(** Simulated packets.

    A packet is metadata plus an extensible-variant payload, so transport
    libraries can add their own segment types ([type Packet.payload += Tcp_seg
    of …]) without creating a dependency from the network layer to the
    transports.  Data contents are never materialized — only sizes. *)

open Cm_util

type payload = ..
(** Extensible payload. *)

type payload += Raw of int
      (** Opaque application data of the given length (bytes). *)

type t = {
  id : int;  (** Globally unique (diagnostics, tracing). *)
  flow : Addr.flow;  (** Transport 5-tuple of this packet. *)
  size : int;  (** Wire size in bytes, headers included. *)
  sent_at : Time.t;  (** Timestamp at first transmission onto a link. *)
  mutable ecn_capable : bool;  (** ECT codepoint: sender supports ECN. *)
  mutable ecn_marked : bool;  (** CE codepoint: router marked congestion. *)
  payload : payload;
}
(** A packet in flight. *)

val header_bytes : int
(** Combined link + IP + transport header size charged on every packet
    (Ethernet-era 40-byte IP+transport plus framing ≈ 58). *)

val make :
  now:Time.t -> flow:Addr.flow -> payload_bytes:int -> ?ecn_capable:bool -> payload -> t
(** [make ~now ~flow ~payload_bytes p] is a packet whose wire size is
    [payload_bytes + header_bytes]. *)

val payload_bytes : t -> int
(** Wire size minus {!header_bytes} (never negative). *)

val reset_ids : unit -> unit
(** Restart the process-global id counter.  Packet ids appear in exported
    trace artifacts, so repeated in-process captures ([Trace_run]) reset
    the counter to keep same-seed runs byte-identical.  Only call between
    simulations — concurrent engines would reuse ids. *)

val pp : Format.formatter -> t -> unit
(** One-line description for traces. *)
