open Cm_util
open Eventsim
open Netsim
module Ops = Ops

type mode = Select_loop | Sigio | Poll of Time.span

type t = {
  host : Host.t;
  cm : Cm.t;
  mode : mode;
  extra_fds : int;
  meter : Ops.meter;
  (* control socket state: flows whose write bit is set, and flows whose
     exception (status-changed) bit is set *)
  ready_send : Cm.Cm_types.flow_id Queue.t;
  mutable status_changed : Cm.Cm_types.flow_id list;
  mutable dispatch_pending : bool;
  mutable dispatches : int;
  send_cbs : (Cm.Cm_types.flow_id, Cm.Cm_types.flow_id -> unit) Hashtbl.t;
  update_cbs : (Cm.Cm_types.flow_id, Cm.Cm_types.status -> unit) Hashtbl.t;
  (* flows this process opened and has not closed: what destroy reaps *)
  owned : (Cm.Cm_types.flow_id, unit) Hashtbl.t;
  (* cm_mtu is free for the app: the library caches it at open time *)
  mtu_cache : (Cm.Cm_types.flow_id, int) Hashtbl.t;
  poll_timer : Timer.t option ref;
  mutable alive : bool;
}

let engine t = Host.engine t.host
let cm t = t.cm
let is_alive t = t.alive

let check_alive t =
  if not t.alive then invalid_arg "Libcm: process is destroyed (control socket closed)"

(* One control-socket wakeup: drain everything that is ready with a single
   ioctl per bit, then call back into the application (paper §2.2.2). *)
let dispatch t () =
  t.dispatch_pending <- false;
  if t.alive then begin
  t.dispatches <- t.dispatches + 1;
  if not (Queue.is_empty t.ready_send) then begin
    (* one ioctl extracts the list of all flow IDs that may send *)
    Ops.charge t.meter Ops.Ioctl_query;
    let fids = Queue.fold (fun acc fid -> fid :: acc) [] t.ready_send in
    Queue.clear t.ready_send;
    List.iter
      (fun fid ->
        (* skip flows closed between grant and dispatch: their grants
           were already returned to the window by the close *)
        if Hashtbl.mem t.owned fid then
          match Hashtbl.find_opt t.send_cbs fid with
          | Some cb -> cb fid
          | None -> Cm.notify t.cm fid ~nbytes:0)
      (List.rev fids)
  end;
  if t.status_changed <> [] then begin
    let fids = List.rev t.status_changed in
    t.status_changed <- [];
    List.iter
      (fun fid ->
        match Hashtbl.find_opt t.update_cbs fid with
        | Some cb ->
            (* only the current status matters: re-query at dispatch time *)
            Ops.charge t.meter Ops.Ioctl_query;
            cb (Cm.query t.cm fid)
        | None -> ())
      fids
  end
  end

let schedule_dispatch t =
  if not t.dispatch_pending then begin
    match t.mode with
    | Select_loop ->
        t.dispatch_pending <- true;
        (* the app returns from select — scanning its own descriptors plus
           the one extra control socket (the paper's Table 1 line item) *)
        Ops.charge_deferred t.meter ~nfds:(t.extra_fds + 1) Ops.Select (dispatch t)
    | Sigio ->
        t.dispatch_pending <- true;
        Ops.charge_deferred t.meter Ops.Sigio (dispatch t)
    | Poll _ ->
        (* the poll timer picks it up on its own schedule *)
        ()
  end

let create host cm ?(mode = Select_loop) ?(extra_fds = 1) () =
  let t =
    {
      host;
      cm;
      mode;
      extra_fds;
      meter = Ops.meter host;
      ready_send = Queue.create ();
      status_changed = [];
      dispatch_pending = false;
      dispatches = 0;
      send_cbs = Hashtbl.create 8;
      update_cbs = Hashtbl.create 8;
      owned = Hashtbl.create 8;
      mtu_cache = Hashtbl.create 8;
      poll_timer = ref None;
      alive = true;
    }
  in
  (match mode with
  | Poll interval ->
      let timer =
        Timer.create (engine t) ~callback:(fun () ->
            (* non-blocking select on the control socket, then dispatch *)
            Ops.charge t.meter ~nfds:(t.extra_fds + 1) Ops.Select;
            if (not (Queue.is_empty t.ready_send)) || t.status_changed <> [] then dispatch t ())
      in
      Timer.start_periodic timer interval;
      t.poll_timer := Some timer
  | Select_loop | Sigio -> ());
  t

let meter t = t.meter
let mode t = t.mode

let open_flow t key =
  check_alive t;
  (* connection setup is off the data path; its one-time cost is not
     metered (the paper found setup costs indistinguishable, §4.1) *)
  let fid = Cm.open_flow t.cm key in
  Hashtbl.replace t.owned fid ();
  Hashtbl.replace t.mtu_cache fid (Cm.mtu t.cm fid);
  fid

let close_flow t fid =
  check_alive t;
  (* the CM-side close goes first: if it raises (unknown or already
     closed flow), the library keeps its callback tables, mtu cache and
     ownership record intact instead of half-forgetting the flow *)
  Cm.close_flow t.cm fid;
  Hashtbl.remove t.send_cbs fid;
  Hashtbl.remove t.update_cbs fid;
  Hashtbl.remove t.mtu_cache fid;
  Hashtbl.remove t.owned fid

let mtu t fid =
  check_alive t;
  match Hashtbl.find_opt t.mtu_cache fid with
  | Some m -> m
  | None -> Cm.mtu t.cm fid

let request t fid =
  check_alive t;
  Ops.charge t.meter Ops.Ioctl_request;
  Cm.request t.cm fid

let bulk_request t fids =
  check_alive t;
  Ops.charge t.meter Ops.Ioctl_request;
  Cm.bulk_request t.cm fids

let update t fid ~nsent ~nrecd ~loss ?rtt () =
  check_alive t;
  Ops.charge t.meter Ops.Ioctl_update;
  Cm.update t.cm fid ~nsent ~nrecd ~loss ?rtt ()

let bulk_update t entries =
  check_alive t;
  Ops.charge t.meter Ops.Ioctl_update;
  Cm.bulk_update t.cm entries

let notify t fid ~nbytes =
  check_alive t;
  Ops.charge t.meter Ops.Ioctl_notify;
  Cm.notify t.cm fid ~nbytes

let query t fid =
  check_alive t;
  Ops.charge t.meter Ops.Ioctl_query;
  Cm.query t.cm fid

let set_thresh t fid ~down ~up =
  check_alive t;
  Cm.set_thresh t.cm fid ~down ~up

let register_send t fid cb =
  check_alive t;
  Hashtbl.replace t.send_cbs fid cb;
  Cm.register_send t.cm fid (fun fid ->
      Queue.push fid t.ready_send;
      schedule_dispatch t)

let register_update t fid cb =
  check_alive t;
  Hashtbl.replace t.update_cbs fid cb;
  Cm.register_update t.cm fid (fun _st ->
      if not (List.mem fid t.status_changed) then
        t.status_changed <- fid :: t.status_changed;
      schedule_dispatch t)

let destroy t =
  (* Simulated process death.  The control socket closes: no further
     callbacks are delivered, the poll timer stops, and the CM reaps
     every flow the process still owned — returning granted-but-unsent
     bytes to the macroflow windows immediately.  Idempotent. *)
  if t.alive then begin
    t.alive <- false;
    (match !(t.poll_timer) with
    | Some timer ->
        Timer.stop timer;
        t.poll_timer := None
    | None -> ());
    let fids = Hashtbl.fold (fun fid () acc -> fid :: acc) t.owned [] in
    List.iter (fun fid -> ignore (Cm.reap t.cm fid)) (List.sort Stdlib.compare fids);
    Hashtbl.reset t.owned;
    Hashtbl.reset t.mtu_cache;
    Hashtbl.reset t.send_cbs;
    Hashtbl.reset t.update_cbs;
    Queue.clear t.ready_send;
    t.status_changed <- []
  end

let app_send t ~bytes = Ops.charge t.meter ~bytes Ops.Send
let app_recv t ~bytes = Ops.charge t.meter ~bytes Ops.Recv
let app_gettimeofday t = Ops.charge t.meter Ops.Gettimeofday
let dispatches t = t.dispatches
