(** libcm — the user-space CM library (paper §2.2).

    Gives user-space applications the same [cm_*] API that in-kernel
    clients call directly, while modeling the kernel/user notification
    machinery the paper chose: a single per-process control socket whose
    write bit means "some flow may send" and whose exception bit means
    "network conditions changed", a [select]-based wakeup, and
    ioctl-based extraction of {e all} ready flows in one crossing.

    Every boundary crossing is counted and charged through {!Ops}, which
    is what the API-overhead experiments (Figs. 5–6, Table 1) measure.

    Three event-loop integration modes are provided (paper §3.1):
    [Select_loop] (the default; the app's select loop includes the control
    socket), [Sigio] (SIGIO delivery then an ioctl), and [Poll] (the app
    polls on its own schedule). *)

open Cm_util
open Netsim

module Ops = Ops
(** Boundary-operation metering (re-exported). *)

type mode =
  | Select_loop  (** Control socket in the app's select set. *)
  | Sigio  (** SIGIO notification, then ioctl. *)
  | Poll of Time.span  (** App polls the control socket periodically. *)

type t
(** One process's libcm instance. *)

val create : Host.t -> Cm.t -> ?mode:mode -> ?extra_fds:int -> unit -> t
(** [create host cm ()] sets up the control socket.  [extra_fds] models
    how many other descriptors the app's select loop scans (default 1 —
    its data socket); the control socket itself adds one more. *)

val meter : t -> Ops.meter
(** The process's operation meter. *)

val cm : t -> Cm.t
(** The in-kernel CM instance behind the control socket (applications use
    it to join the CM's telemetry timeline; treat as read-only). *)

val mode : t -> mode
(** The notification mode chosen at creation. *)

val destroy : t -> unit
(** Simulated process death (crash or exit without cleanup).  The control
    socket closes: the poll timer stops, no further callbacks are
    delivered, and the CM {!Cm.reap}s every flow the process still owned,
    returning granted-but-unsent bytes to the macroflow windows
    immediately.  Idempotent; subsequent [cm_*] calls on this instance
    raise [Invalid_argument]. *)

val is_alive : t -> bool
(** Whether the process is still alive ([false] after {!destroy}). *)

(** {1 The cm_* API, with boundary costs} *)

val open_flow : t -> Addr.flow -> Cm.Cm_types.flow_id
(** [cm_open]. *)

val close_flow : t -> Cm.Cm_types.flow_id -> unit
(** [cm_close].  The CM-side close runs first: if it raises (unknown or
    already-closed flow), the library's callback tables, mtu cache and
    ownership record are left untouched, so a failed close cannot strand
    the library in a half-closed state. *)

val mtu : t -> Cm.Cm_types.flow_id -> int
(** [cm_mtu] (free: cached in the library). *)

val request : t -> Cm.Cm_types.flow_id -> unit
(** [cm_request]: one ioctl. *)

val bulk_request : t -> Cm.Cm_types.flow_id list -> unit
(** Batched requests: one ioctl for the whole list (§5). *)

val update :
  t ->
  Cm.Cm_types.flow_id ->
  nsent:int ->
  nrecd:int ->
  loss:Cm.Cm_types.loss_mode ->
  ?rtt:Time.span ->
  unit ->
  unit
(** [cm_update]: one ioctl. *)

val bulk_update :
  t ->
  (Cm.Cm_types.flow_id * int * int * Cm.Cm_types.loss_mode * Time.span option) list ->
  unit
(** Batched updates: one ioctl. *)

val notify : t -> Cm.Cm_types.flow_id -> nbytes:int -> unit
(** Explicit [cm_notify] ioctl — needed when the kernel cannot attribute
    a transmission to a flow (the paper's unconnected-UDP "ALF/noconnect"
    case), or to decline a grant with [~nbytes:0]. *)

val query : t -> Cm.Cm_types.flow_id -> Cm.Cm_types.status
(** [cm_query]: one ioctl. *)

val set_thresh : t -> Cm.Cm_types.flow_id -> down:float -> up:float -> unit
(** [cm_thresh]. *)

val register_send : t -> Cm.Cm_types.flow_id -> (Cm.Cm_types.flow_id -> unit) -> unit
(** [cm_register_send]: the callback is dispatched through the control
    socket — a select wakeup (or SIGIO / poll tick) plus one ioctl that
    drains {e all} ready flows. *)

val register_update : t -> Cm.Cm_types.flow_id -> (Cm.Cm_types.status -> unit) -> unit
(** [cm_register_update]: rate-change callback through the control
    socket's exception bit; the dispatch re-queries current status (one
    ioctl), so coalesced changes report only the latest state. *)

(** {1 Application syscall helpers}

    UDP CM clients also pay for their own data-path syscalls; these
    helpers let applications charge and count them through the same
    meter. *)

val app_send : t -> bytes:int -> unit
(** Charge one [sendto] of [bytes]. *)

val app_recv : t -> bytes:int -> unit
(** Charge one [recv] of [bytes]. *)

val app_gettimeofday : t -> unit
(** Charge one clock read. *)

val dispatches : t -> int
(** Control-socket wakeups delivered so far. *)
