open Cm_util
open Eventsim

(* Endpoint (application) fault injection, mirroring Scenario/Faults:
   declarative seeded steps compiled onto the engine.  The module knows
   nothing about the CM — targets expose mutable misbehaviour flags that
   the application harness consults, plus a crash thunk. *)

type behaviour = {
  mutable silent : bool;
  mutable lie_no_loss : bool;
  mutable hoard : bool;
  mutable double_notify : bool;
}

let behaviour () = { silent = false; lie_no_loss = false; hoard = false; double_notify = false }

type target = { name : string; flags : behaviour; crash : unit -> unit }

let target ~name ?(crash = fun () -> ()) flags = { name; flags; crash }

type kind =
  | Crash
  | Go_silent of Time.span
  | Lie_no_loss of Time.span
  | Grant_hoard of Time.span
  | Double_notify of Time.span

type step = { at : Time.t; target : string; kind : kind }
type t = { name : string; steps : step list }

let kind_name = function
  | Crash -> "crash"
  | Go_silent _ -> "go_silent"
  | Lie_no_loss _ -> "lie_no_loss"
  | Grant_hoard _ -> "grant_hoard"
  | Double_notify _ -> "double_notify"

let validate_step i s =
  let ctx = Printf.sprintf "App_faults %s step %d (%s)" s.target i (kind_name s.kind) in
  if s.at < Time.zero then invalid_arg (ctx ^ ": negative start time");
  if s.target = "" then invalid_arg (ctx ^ ": empty target name");
  match s.kind with
  | Crash -> ()
  | Go_silent d | Lie_no_loss d | Grant_hoard d | Double_notify d ->
      if d < 0 then invalid_arg (ctx ^ ": negative duration")

let make ~name steps =
  List.iteri validate_step steps;
  { name; steps }

let validate ~targets t =
  let known = List.map (fun (tg : target) -> tg.name) targets in
  List.iter
    (fun s ->
      if not (List.mem s.target known) then
        invalid_arg
          (Printf.sprintf "App_faults %s: unknown target %S (have: %s)" t.name s.target
             (String.concat ", " known)))
    t.steps

(* first fault onset and last fault end (crashes never "end") *)
let fault_window t =
  match t.steps with
  | [] -> None
  | s0 :: rest ->
      let endpoint s =
        match s.kind with
        | Crash -> s.at
        | Go_silent d | Lie_no_loss d | Grant_hoard d | Double_notify d -> Time.add s.at d
      in
      Some
        (List.fold_left
           (fun (lo, hi) s -> (Stdlib.min lo s.at, Stdlib.max hi (endpoint s)))
           (s0.at, endpoint s0) rest)

let at_or_now engine at f =
  if at <= Engine.now engine then f () else ignore (Engine.schedule_at engine at f)

let compile engine ~targets t =
  validate ~targets t;
  let find name = List.find (fun (tg : target) -> tg.name = name) targets in
  List.iter
    (fun s ->
      let tg = find s.target in
      let windowed d set =
        at_or_now engine s.at (fun () ->
            set true;
            ignore (Engine.schedule_after engine d (fun () -> set false)))
      in
      match s.kind with
      | Crash -> at_or_now engine s.at tg.crash
      | Go_silent d -> windowed d (fun v -> tg.flags.silent <- v)
      | Lie_no_loss d -> windowed d (fun v -> tg.flags.lie_no_loss <- v)
      | Grant_hoard d -> windowed d (fun v -> tg.flags.hoard <- v)
      | Double_notify d -> windowed d (fun v -> tg.flags.double_notify <- v))
    t.steps

(* ---- seeded storm generators ------------------------------------------- *)

let jittered ~rng ~at ~spread assignments =
  (* one fault per target at a seed-determined onset in [at, at+spread);
     samples are drawn in declaration order, so the schedule is a pure
     function of the seed *)
  if spread < 0 then invalid_arg "App_faults.jittered: negative spread";
  let steps =
    List.map
      (fun (name, kind) ->
        let jitter = if spread = 0 then 0 else Rng.uniform_span rng spread in
        { at = Time.add at jitter; target = name; kind })
      assignments
  in
  make ~name:"jittered-storm" steps

let storm ~rng ~at ~spread ?(duration = Time.sec 4.) targets =
  (* fully randomized: each target draws a fault kind and an onset *)
  let kinds =
    [|
      (fun () -> Crash);
      (fun () -> Go_silent duration);
      (fun () -> Lie_no_loss duration);
      (fun () -> Grant_hoard duration);
      (fun () -> Double_notify duration);
    |]
  in
  let assignments =
    List.map (fun name -> (name, kinds.(Rng.int rng (Array.length kinds)) ())) targets
  in
  let t = jittered ~rng ~at ~spread assignments in
  { t with name = "random-storm" }
