(** Declarative network-dynamics scenarios.

    A scenario is a timed schedule of fault actions over *named* topology
    elements — the reusable, scriptable replacement for ad-hoc
    per-experiment bandwidth fiddling.  Build one with {!make} (or
    {!of_bandwidth_schedule} for plain renegotiation schedules), then
    {!compile} it onto an engine with a name → link binding; compilation
    schedules every action as an event-driven {!Faults} process.

    Determinism contract: all randomness (Bernoulli / Gilbert–Elliott
    loss) is drawn from streams split off the single [rng] passed to
    {!compile}, one per stochastic step in declaration order — the same
    seed and scenario give byte-identical runs regardless of how the
    simulation interleaves. *)

open Cm_util
open Eventsim
open Netsim

type loss_spec =
  | Loss_off  (** No channel loss at all (overrides the link baseline). *)
  | Loss_bernoulli of float  (** I.i.d. loss with this probability. *)
  | Loss_gilbert_elliott of Loss.ge  (** Bursty two-state Markov loss. *)

type action =
  | Set_bandwidth of float  (** Renegotiate the serialization rate. *)
  | Ramp_bandwidth of { to_bps : float; over : Time.span; steps : int }
      (** Linear ramp from the rate in force to [to_bps]. *)
  | Set_loss of loss_spec  (** Install a channel-loss model persistently. *)
  | Loss_burst of { spec : loss_spec; duration : Time.span }
      (** Install a loss model, then revert to the link baseline. *)
  | Outage of Time.span  (** Link down (all-in-flight drops), then up. *)
  | Flap of { down : Time.span; up : Time.span; cycles : int }
      (** Repeated outages. *)
  | Delay_spike of { extra : Time.span; jitter : Time.span; duration : Time.span }
      (** Temporarily inflated propagation delay with optional jitter. *)
  | Control_fault of { profile : Control_faults.profile; duration : Time.span }
      (** Degrade only classified control traffic (CM feedback) at the
          target *host*'s {!Control_faults} injector for [duration]. *)

type step = { at : Time.t; target : string; action : action }
(** One scheduled action on one named topology element. *)

type t = { name : string; steps : step list }

val make : name:string -> step list -> t
(** Validates every step (probabilities in \[0,1\], non-negative times and
    durations, positive rates/steps/cycles); raises [Invalid_argument]
    with the scenario and target named. *)

val of_bandwidth_schedule : name:string -> target:string -> (Time.t * float) list -> t
(** The classic Figs. 8–10 shape: a list of [(time, bps)] renegotiations
    on one link. *)

val validate : links:string list -> ?controls:string list -> t -> unit
(** Check every step's target against the available element names —
    [Control_fault] steps against [controls] (the hosts carrying an
    injector), every other action against [links]; raises
    [Invalid_argument] on an unknown name. *)

val fault_window : t -> (Time.t * Time.t) option
(** [(first fault start, last fault clearance)] over the *bounded*
    disruptions (outages, flaps, loss bursts, delay spikes, control
    faults) — what a recovery experiment measures against.  Persistent
    renegotiations (set/ramp bandwidth, set loss) have no clearance and
    are ignored.  [None] if the scenario has no bounded disruption. *)

val compile :
  Engine.t ->
  rng:Rng.t ->
  links:(string * Link.t) list ->
  ?controls:(string * Control_faults.t) list ->
  t ->
  unit
(** Bind targets to links (and [Control_fault] targets to injectors) and
    schedule every step on the engine (steps at or before "now" apply
    immediately).  Raises [Invalid_argument] on an unknown target. *)
