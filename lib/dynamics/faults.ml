open Eventsim
open Netsim

(* every injector tolerates [at <= now] by acting immediately, so faults
   can be declared before or during a run *)
let at_or_now engine at f =
  if at <= Engine.now engine then f () else ignore (Engine.schedule_at engine at f)

let bandwidth_steps engine link sched =
  List.iter (fun (at, bw) -> at_or_now engine at (fun () -> Link.set_bandwidth link bw)) sched

let bandwidth_ramp engine link ~at ~to_bps ~over ~steps =
  if steps <= 0 then invalid_arg "Faults.bandwidth_ramp: steps must be positive";
  if over < 0 then invalid_arg "Faults.bandwidth_ramp: negative duration";
  if to_bps <= 0. then invalid_arg "Faults.bandwidth_ramp: bandwidth must be positive";
  at_or_now engine at (fun () ->
      (* sample the starting rate when the ramp begins, then interpolate
         linearly over [steps] discrete renegotiations *)
      let from_bps = Link.bandwidth link in
      for k = 1 to steps do
        let frac = float_of_int k /. float_of_int steps in
        let bw = from_bps +. ((to_bps -. from_bps) *. frac) in
        let dt = over * k / steps in
        ignore (Engine.schedule_after engine dt (fun () -> Link.set_bandwidth link bw))
      done)

let outage engine link ~at ~duration =
  if duration < 0 then invalid_arg "Faults.outage: negative duration";
  at_or_now engine at (fun () ->
      Link.take_down link;
      ignore (Engine.schedule_after engine duration (fun () -> Link.bring_up link)))

let flap engine link ~at ~down ~up ~cycles =
  if cycles <= 0 then invalid_arg "Faults.flap: cycles must be positive";
  if down < 0 || up < 0 then invalid_arg "Faults.flap: negative period";
  let rec cycle remaining () =
    if remaining > 0 then begin
      Link.take_down link;
      ignore
        (Engine.schedule_after engine down (fun () ->
             Link.bring_up link;
             if remaining > 1 then ignore (Engine.schedule_after engine up (cycle (remaining - 1)))))
    end
  in
  at_or_now engine at (cycle cycles)

let delay_spike engine link ~at ~extra ?(jitter = 0) ~duration () =
  if duration < 0 then invalid_arg "Faults.delay_spike: negative duration";
  at_or_now engine at (fun () ->
      Link.set_extra_delay link extra;
      Link.set_jitter link jitter;
      ignore
        (Engine.schedule_after engine duration (fun () ->
             Link.set_extra_delay link 0;
             Link.set_jitter link 0)))

let loss_burst engine link ~at ~model ~duration =
  if duration < 0 then invalid_arg "Faults.loss_burst: negative duration";
  at_or_now engine at (fun () ->
      Link.set_loss_model link (Some model);
      ignore
        (Engine.schedule_after engine duration (fun () -> Link.set_loss_model link None)))
