open Cm_util

type model = unit -> bool

let check_prob ~what p =
  if Float.is_nan p || p < 0. || p > 1. then
    invalid_arg (what ^ ": probability must be in [0,1]")

let bernoulli rng ~p =
  check_prob ~what:"Loss.bernoulli" p;
  fun () -> Rng.bernoulli rng p

type ge = { p_gb : float; p_bg : float; loss_good : float; loss_bad : float }

let ge ?(loss_good = 0.) ?(loss_bad = 1.) ~p_gb ~p_bg () =
  check_prob ~what:"Loss.ge: p_gb" p_gb;
  check_prob ~what:"Loss.ge: p_bg" p_bg;
  check_prob ~what:"Loss.ge: loss_good" loss_good;
  check_prob ~what:"Loss.ge: loss_bad" loss_bad;
  if p_gb +. p_bg <= 0. then
    invalid_arg "Loss.ge: p_gb + p_bg must be positive (the chain must move)";
  { p_gb; p_bg; loss_good; loss_bad }

let ge_stationary_loss { p_gb; p_bg; loss_good; loss_bad } =
  (* two-state Markov chain: pi_bad = p_gb / (p_gb + p_bg) *)
  let pi_bad = p_gb /. (p_gb +. p_bg) in
  ((1. -. pi_bad) *. loss_good) +. (pi_bad *. loss_bad)

let gilbert_elliott rng ({ p_gb; p_bg; loss_good; loss_bad } : ge) =
  let in_bad = ref false in
  fun () ->
    (* sample the loss in the current state, then advance the chain — one
       chain step per offered packet *)
    let lost = Rng.bernoulli rng (if !in_bad then loss_bad else loss_good) in
    (if !in_bad then begin
       if Rng.bernoulli rng p_bg then in_bad := false
     end
     else if Rng.bernoulli rng p_gb then in_bad := true);
    lost
