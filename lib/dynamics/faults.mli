(** Event-driven fault injectors.

    Each injector is a process scheduled on the engine that perturbs one
    link: outages and flaps (with all-in-flight drops), delay/jitter
    spikes, bandwidth renegotiation (stepped or ramped), and bounded
    bursts of a channel-loss model.  A start time at or before "now"
    applies immediately, so injectors can be declared before or during a
    run.  {!Scenario} compiles declarative schedules onto these. *)

open Cm_util
open Eventsim
open Netsim

val bandwidth_steps : Engine.t -> Link.t -> (Time.t * float) list -> unit
(** Renegotiate the link's bandwidth to each listed value at the listed
    time — the time-varying available-bandwidth substitute for the
    paper's vBNS path (previously [Topology.apply_bandwidth_schedule]). *)

val bandwidth_ramp :
  Engine.t -> Link.t -> at:Time.t -> to_bps:float -> over:Time.span -> steps:int -> unit
(** Linearly interpolate the bandwidth from its value at [at] to [to_bps]
    across [steps] discrete renegotiations spread over [over]. *)

val outage : Engine.t -> Link.t -> at:Time.t -> duration:Time.span -> unit
(** Take the link down at [at] (dropping the packet being serialized and
    everything in propagation) and bring it back [duration] later. *)

val flap : Engine.t -> Link.t -> at:Time.t -> down:Time.span -> up:Time.span -> cycles:int -> unit
(** [cycles] consecutive outages of length [down] separated by [up] of
    healthy operation. *)

val delay_spike :
  Engine.t ->
  Link.t ->
  at:Time.t ->
  extra:Time.span ->
  ?jitter:Time.span ->
  duration:Time.span ->
  unit ->
  unit
(** Inflate the propagation delay by [extra] (plus uniform per-packet
    jitter in \[0,[jitter])) between [at] and [at + duration]. *)

val loss_burst : Engine.t -> Link.t -> at:Time.t -> model:Loss.model -> duration:Time.span -> unit
(** Install [model] as the link's channel-loss process at [at] and revert
    to the link's baseline [loss_rate] after [duration]. *)
