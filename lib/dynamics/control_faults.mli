(** Seeded fault injection for the CM's control plane.

    A host receive filter that drops, duplicates and delays (and — via
    jitter — reorders) {e only} the packets a classifier selects, in
    practice {!Cmproto} feedback / resync / solicit packets, while every
    data packet passes untouched.  This separates "the network got
    worse" from "the congestion picture got worse": the path under
    measurement is unchanged, only the CM's view of it degrades.

    Replayed (duplicated / delayed) packets re-enter the host through
    [Host.deliver] and traverse the full filter chain again, invisible
    to the injector itself.  Install the injector {b before} any agent
    filter that consumes control traffic — host filters run in
    registration order.

    Determinism: all draws come from the [rng] handed to {!engage} (one
    stream per engagement window), so a seeded schedule perturbs packets
    identically across runs. *)

open Cm_util
open Netsim

type t
(** One injector on one host. *)

type profile = {
  drop : float;  (** Probability a matched packet is dropped. *)
  dup : float;  (** Probability a matched packet is also replayed at once. *)
  delay : Time.span;  (** Fixed extra delivery delay for matched packets. *)
  jitter : Time.span;  (** Uniform extra delay on top of [delay] — unequal
                           draws reorder consecutive control packets. *)
}
(** What happens to matched packets while a window is active.  [delay]
    and [jitter] both zero means matched packets are delivered inline
    (subject only to [drop] / [dup]). *)

val check_profile : ctx:string -> profile -> unit
(** Validate probabilities in \[0,1\] and non-negative spans; raises
    [Invalid_argument] prefixed with [ctx]. *)

type counters = {
  matched : int;  (** Packets the classifier selected. *)
  passed : int;  (** Matched packets delivered inline unmodified. *)
  dropped : int;
  duplicated : int;
  delayed : int;  (** Matched packets rescheduled (delay/jitter). *)
}

val install : Host.t -> classify:(Packet.t -> bool) -> t
(** Register the injector's receive filter (initially inactive: all
    traffic passes). *)

val engage : t -> rng:Rng.t -> at:Time.t -> profile:profile -> duration:Time.span -> unit
(** Schedule a fault window: the profile takes effect at [at] and clears
    [duration] later ([duration = 0] means it never clears).  A later
    engagement supersedes an active one; the superseded window's clear
    event is inert. *)

val set_profile : t -> (profile * Rng.t) option -> unit
(** Imperatively set or clear the active profile (tests and ad-hoc
    drivers; scheduled windows use {!engage}). *)

val active : t -> bool
(** Whether a profile is currently in force. *)

val counters : t -> counters
(** Injection counters (cumulative, windows included). *)
