(** Pluggable channel-loss models.

    A model is a stateful process asked once per packet offered to a link
    ([Link.set_loss_model]).  Two families: memoryless Bernoulli (what the
    paper's Dummynet knob does) and the Gilbert–Elliott two-state Markov
    chain for *bursty* loss — the dynamic-link condition that stresses
    endhost adaptation.

    Determinism: a model's entire behaviour is a function of the [Rng] it
    was built with; give each model its own split stream and a seeded run
    is reproducible. *)

open Cm_util

type model = unit -> bool
(** Called once per offered packet; [true] means the channel lost it. *)

val bernoulli : Rng.t -> p:float -> model
(** I.i.d. loss with probability [p] (must be in \[0,1\], NaN rejected) —
    equivalent to the link's built-in [loss_rate]. *)

type ge = {
  p_gb : float;  (** Per-packet transition probability good → bad. *)
  p_bg : float;  (** Per-packet transition probability bad → good. *)
  loss_good : float;  (** Loss probability while in the good state. *)
  loss_bad : float;  (** Loss probability while in the bad state. *)
}
(** Gilbert–Elliott parameters.  Mean bad-burst length is [1 / p_bg]
    packets; the stationary bad-state probability is
    [p_gb / (p_gb + p_bg)]. *)

val ge : ?loss_good:float -> ?loss_bad:float -> p_gb:float -> p_bg:float -> unit -> ge
(** Validated constructor (defaults [loss_good = 0], [loss_bad = 1], the
    classic Gilbert model).  All four values must be probabilities and
    [p_gb + p_bg > 0], else [Invalid_argument]. *)

val ge_stationary_loss : ge -> float
(** Analytic stationary loss rate:
    [pi_good·loss_good + pi_bad·loss_bad] with
    [pi_bad = p_gb / (p_gb + p_bg)] — the checkable ground truth the unit
    tests compare empirical loss against. *)

val gilbert_elliott : Rng.t -> ge -> model
(** A fresh chain starting in the good state; advances one transition per
    offered packet. *)
