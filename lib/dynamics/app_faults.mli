(** Endpoint (application) fault injection.

    PR 2's {!Scenario} makes the {e network} hostile; this module makes
    the {e endpoints} hostile: CM client applications that crash, go
    silent (stop sending [cm_update] feedback), lie (fabricate no-loss
    delivery claims), hoard grants without transmitting, or double-count
    their notifies.

    Same design as {!Scenario}: a declarative, validated step list
    compiled onto the engine, deterministic for a fixed seed.  The module
    knows nothing about the CM — each {!target} exposes mutable
    misbehaviour {!behaviour} flags that the application harness consults
    at every decision point, plus a crash thunk (typically
    [Libcm.destroy]). *)

open Cm_util
open Eventsim

type behaviour = {
  mutable silent : bool;  (** Stop sending [cm_update] feedback. *)
  mutable lie_no_loss : bool;  (** Fabricate inflated no-loss delivery claims. *)
  mutable hoard : bool;  (** Accept grants but never transmit. *)
  mutable double_notify : bool;  (** Report each transmission twice. *)
}
(** Live misbehaviour switches, read by the application at each decision
    point and toggled by the compiled schedule. *)

val behaviour : unit -> behaviour
(** All flags off. *)

type target = { name : string; flags : behaviour; crash : unit -> unit }
(** A faultable application process. *)

val target : name:string -> ?crash:(unit -> unit) -> behaviour -> target
(** [target ~name ~crash flags].  [crash] defaults to a no-op (for
    harnesses that only exercise the flag faults). *)

type kind =
  | Crash  (** Process death at [at] — permanent. *)
  | Go_silent of Time.span
  | Lie_no_loss of Time.span
  | Grant_hoard of Time.span
  | Double_notify of Time.span  (** Flag faults hold for the given duration. *)

type step = { at : Time.t; target : string; kind : kind }
type t = { name : string; steps : step list }

val make : name:string -> step list -> t
(** Validate (non-negative times and durations, non-empty target names)
    and pack; raises [Invalid_argument] with context on bad steps. *)

val validate : targets:target list -> t -> unit
(** Check every step's target name resolves; raises [Invalid_argument]
    naming the unknown target otherwise.  [compile] calls this first. *)

val fault_window : t -> (Time.t * Time.t) option
(** First fault onset and last fault end across all steps (a crash's end
    is its onset — it never clears).  [None] for an empty schedule. *)

val compile : Engine.t -> targets:target list -> t -> unit
(** Arm the schedule: flag faults set the target's flag at [at] and clear
    it [duration] later; [Crash] invokes the target's crash thunk.  Steps
    whose time has already passed act immediately. *)

val jittered : rng:Rng.t -> at:Time.t -> spread:Time.span -> (string * kind) list -> t
(** One chosen fault per target, each at a seed-determined onset in
    [[at, at + spread)].  Samples are drawn in declaration order, so the
    schedule is a pure function of the seed. *)

val storm :
  rng:Rng.t -> at:Time.t -> spread:Time.span -> ?duration:Time.span -> string list -> t
(** Fully randomized storm: every named target draws a fault kind
    (uniformly among all five) and an onset in [[at, at + spread)];
    flag faults hold for [duration] (default 4 s). *)
