open Cm_util
open Eventsim
open Netsim

type loss_spec =
  | Loss_off
  | Loss_bernoulli of float
  | Loss_gilbert_elliott of Loss.ge

type action =
  | Set_bandwidth of float
  | Ramp_bandwidth of { to_bps : float; over : Time.span; steps : int }
  | Set_loss of loss_spec
  | Loss_burst of { spec : loss_spec; duration : Time.span }
  | Outage of Time.span
  | Flap of { down : Time.span; up : Time.span; cycles : int }
  | Delay_spike of { extra : Time.span; jitter : Time.span; duration : Time.span }
  | Control_fault of { profile : Control_faults.profile; duration : Time.span }

type step = { at : Time.t; target : string; action : action }
type t = { name : string; steps : step list }

let check_prob ~what p =
  if Float.is_nan p || p < 0. || p > 1. then
    invalid_arg (what ^ ": probability must be in [0,1]")

let validate_action ~ctx = function
  | Set_bandwidth bw ->
      if bw <= 0. then invalid_arg (ctx ^ ": bandwidth must be positive")
  | Ramp_bandwidth { to_bps; over; steps } ->
      if to_bps <= 0. then invalid_arg (ctx ^ ": ramp target must be positive");
      if over < 0 then invalid_arg (ctx ^ ": negative ramp duration");
      if steps <= 0 then invalid_arg (ctx ^ ": ramp steps must be positive")
  | Set_loss (Loss_bernoulli p) -> check_prob ~what:(ctx ^ ": loss") p
  | Set_loss (Loss_off | Loss_gilbert_elliott _) -> ()
  | Loss_burst { spec; duration } ->
      (match spec with
      | Loss_bernoulli p -> check_prob ~what:(ctx ^ ": burst loss") p
      | Loss_off | Loss_gilbert_elliott _ -> ());
      if duration < 0 then invalid_arg (ctx ^ ": negative burst duration")
  | Outage d -> if d < 0 then invalid_arg (ctx ^ ": negative outage duration")
  | Flap { down; up; cycles } ->
      if down < 0 || up < 0 then invalid_arg (ctx ^ ": negative flap period");
      if cycles <= 0 then invalid_arg (ctx ^ ": flap cycles must be positive")
  | Delay_spike { extra; jitter; duration } ->
      if extra < 0 || jitter < 0 then invalid_arg (ctx ^ ": negative delay/jitter");
      if duration < 0 then invalid_arg (ctx ^ ": negative spike duration")
  | Control_fault { profile; duration } ->
      Control_faults.check_profile ~ctx profile;
      if duration <= 0 then invalid_arg (ctx ^ ": control fault needs a positive duration")

let make ~name steps =
  List.iter
    (fun { at; target; action } ->
      let ctx = Printf.sprintf "Scenario %S, step on %S" name target in
      if at < 0 then invalid_arg (ctx ^ ": negative time");
      validate_action ~ctx action)
    steps;
  { name; steps }

let of_bandwidth_schedule ~name ~target sched =
  make ~name (List.map (fun (at, bw) -> { at; target; action = Set_bandwidth bw }) sched)

let validate ~links ?(controls = []) t =
  List.iter
    (fun { target; action; _ } ->
      match action with
      | Control_fault _ ->
          if not (List.mem target controls) then
            invalid_arg
              (Printf.sprintf
                 "Scenario %S: control fault targets %S, which has no control-fault injector \
                  (have: %s)"
                 t.name target (String.concat ", " controls))
      | _ ->
          if not (List.mem target links) then
            invalid_arg
              (Printf.sprintf "Scenario %S: unknown topology element %S (have: %s)" t.name
                 target (String.concat ", " links)))
    t.steps

(* the horizon of the *disruptions* — bounded faults whose clearance a
   recovery experiment can measure against.  Persistent renegotiations
   (Set_bandwidth, Set_loss, Ramp_bandwidth) never clear, so they are not
   counted. *)
let fault_window t =
  let windows =
    List.filter_map
      (fun { at; action; _ } ->
        match action with
        | Outage d -> Some (at, Time.add at d)
        | Flap { down; up; cycles } ->
            Some (at, Time.add at (((down + up) * cycles) - up))
        | Loss_burst { duration; _ } -> Some (at, Time.add at duration)
        | Delay_spike { duration; _ } -> Some (at, Time.add at duration)
        | Control_fault { duration; _ } -> Some (at, Time.add at duration)
        | Set_bandwidth _ | Ramp_bandwidth _ | Set_loss _ -> None)
      t.steps
  in
  match windows with
  | [] -> None
  | (s0, e0) :: rest ->
      Some (List.fold_left (fun (s, e) (s', e') -> (Time.min s s', Time.max e e')) (s0, e0) rest)

let model_of_spec rng = function
  | Loss_off -> fun () -> false
  | Loss_bernoulli p -> Loss.bernoulli rng ~p
  | Loss_gilbert_elliott g -> Loss.gilbert_elliott rng g

let compile engine ~rng ~links ?(controls = []) t =
  validate ~links:(List.map fst links) ~controls:(List.map fst controls) t;
  let link name = List.assoc name links in
  (* each stochastic step gets its own stream, split in declaration order:
     the sampled values depend only on the scenario and the seed, never on
     how steps interleave at run time *)
  List.iter
    (fun { at; target; action } ->
      match action with
      | Control_fault { profile; duration } ->
          Control_faults.engage (List.assoc target controls) ~rng:(Rng.split rng) ~at ~profile
            ~duration
      | _ ->
      let l = link target in
      match action with
      | Set_bandwidth bw -> Faults.bandwidth_steps engine l [ (at, bw) ]
      | Ramp_bandwidth { to_bps; over; steps } ->
          Faults.bandwidth_ramp engine l ~at ~to_bps ~over ~steps
      | Set_loss spec ->
          let model = model_of_spec (Rng.split rng) spec in
          let apply () = Link.set_loss_model l (Some model) in
          if at <= Engine.now engine then apply ()
          else ignore (Engine.schedule_at engine at apply)
      | Loss_burst { spec; duration } ->
          let model = model_of_spec (Rng.split rng) spec in
          Faults.loss_burst engine l ~at ~model ~duration
      | Outage duration -> Faults.outage engine l ~at ~duration
      | Flap { down; up; cycles } -> Faults.flap engine l ~at ~down ~up ~cycles
      | Delay_spike { extra; jitter; duration } ->
          Faults.delay_spike engine l ~at ~extra ~jitter ~duration ()
      | Control_fault _ -> assert false (* handled above *))
    t.steps
