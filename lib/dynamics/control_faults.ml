open Cm_util
open Eventsim
open Netsim

(* Seeded fault injection for *control* traffic: a host receive filter
   that drops / duplicates / delays (and, via jitter, reorders) only the
   packets a classifier selects — in practice Cmproto feedback and
   control packets — while every data packet passes untouched.  This is
   the adversary the feedback-plane defenses are built against: the CM's
   congestion picture degraded without the network under measurement
   changing at all.

   Replays re-enter the host through [Host.deliver], so they traverse
   the full filter chain (and are consumed by whatever agent owns them);
   a per-injector [replaying] flag makes the injector transparent to its
   own replays.  Install the injector *before* the agent filters that
   consume control traffic — filters run in registration order, and a
   consuming filter ahead of the injector would hide the traffic. *)

type profile = { drop : float; dup : float; delay : Time.span; jitter : Time.span }

let check_profile ~ctx { drop; dup; delay; jitter } =
  let prob what p =
    if Float.is_nan p || p < 0. || p > 1. then
      invalid_arg (ctx ^ ": " ^ what ^ " probability must be in [0,1]")
  in
  prob "drop" drop;
  prob "dup" dup;
  if delay < 0 || jitter < 0 then invalid_arg (ctx ^ ": negative control delay/jitter")

type counters = { matched : int; passed : int; dropped : int; duplicated : int; delayed : int }

type t = {
  host : Host.t;
  classify : Packet.t -> bool;
  mutable active : (profile * Rng.t) option;
  mutable engagement : int; (* stamps windows so a stale clear is inert *)
  mutable replaying : bool;
  mutable matched : int;
  mutable passed : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
}

let counters t : counters =
  {
    matched = t.matched;
    passed = t.passed;
    dropped = t.dropped;
    duplicated = t.duplicated;
    delayed = t.delayed;
  }

let replay t pkt =
  t.replaying <- true;
  Host.deliver t.host pkt;
  t.replaying <- false

let engine t = Host.engine t.host

let apply t profile rng pkt =
  if profile.drop > 0. && Rng.bernoulli rng profile.drop then begin
    t.dropped <- t.dropped + 1;
    None
  end
  else begin
    if profile.dup > 0. && Rng.bernoulli rng profile.dup then begin
      t.duplicated <- t.duplicated + 1;
      (* the copy re-enters delivery as its own event, after this one *)
      Engine.post (engine t) 0 (fun () -> replay t pkt)
    end;
    if profile.delay > 0 || profile.jitter > 0 then begin
      t.delayed <- t.delayed + 1;
      let extra =
        profile.delay + if profile.jitter > 0 then Rng.uniform_span rng profile.jitter else 0
      in
      ignore
        (Engine.schedule_after (engine t) extra (fun () -> replay t pkt));
      None
    end
    else begin
      t.passed <- t.passed + 1;
      Some pkt
    end
  end

let install host ~classify =
  let t =
    {
      host;
      classify;
      active = None;
      engagement = 0;
      replaying = false;
      matched = 0;
      passed = 0;
      dropped = 0;
      duplicated = 0;
      delayed = 0;
    }
  in
  Host.add_rx_filter host (fun pkt ->
      if t.replaying || not (t.classify pkt) then Some pkt
      else begin
        t.matched <- t.matched + 1;
        match t.active with
        | None ->
            t.passed <- t.passed + 1;
            Some pkt
        | Some (profile, rng) -> apply t profile rng pkt
      end);
  t

let set_profile t prof =
  t.engagement <- t.engagement + 1;
  t.active <- (match prof with None -> None | Some (p, rng) -> Some (p, rng))

let engage t ~rng ~at ~profile ~duration =
  check_profile ~ctx:"Control_faults.engage" profile;
  if duration < 0 then invalid_arg "Control_faults.engage: negative duration";
  let eng = engine t in
  let arm () =
    t.engagement <- t.engagement + 1;
    let stamp = t.engagement in
    t.active <- Some (profile, rng);
    if duration > 0 then
      ignore
        (Engine.schedule_after eng duration (fun () ->
             if t.engagement = stamp then t.active <- None))
  in
  if at <= Engine.now eng then arm () else ignore (Engine.schedule_at eng at arm)

let active t = Option.is_some t.active
