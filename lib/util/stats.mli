(** Online and batch statistics used by experiments and tests. *)

type t
(** A running accumulator (Welford's algorithm): count, mean, variance,
    min, max.  O(1) space regardless of sample count. *)

val create : unit -> t
(** Fresh accumulator. *)

val add : t -> float -> unit
(** Record one sample. *)

val count : t -> int
(** Number of samples recorded. *)

val mean : t -> float
(** Sample mean; [nan] if no samples. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two samples. *)

val stddev : t -> float
(** Square root of {!variance}. *)

val min_value : t -> float
(** Smallest sample; [nan] if none. *)

val max_value : t -> float
(** Largest sample; [nan] if none. *)

val sum : t -> float
(** Sum of all samples. *)

val merge : t -> t -> t
(** [merge a b] is an accumulator equivalent to having seen both streams. *)

val percentile : float array -> float -> float
(** [percentile samples p] is the [p]-th percentile ([0. <= p <= 100.]) by
    linear interpolation.  Sorts a copy; [nan] on an empty array. *)

val median : float array -> float
(** [median s] is [percentile s 50.]. *)

val pp : Format.formatter -> t -> unit
(** Render as [n=… mean=… sd=… min=… max=…]. *)

(** Log-bucketed histogram with O(1) [observe] and quantile estimation
    over the buckets.

    Buckets are powers of two from 2{^-20} up; [observe] finds the bucket
    with [frexp] (no log, no allocation), so it is safe on simulator hot
    paths.  Quantiles interpolate linearly within a bucket and clamp to
    the exactly-tracked min/max, so small sample counts do not produce
    estimates outside the observed range.  This is the histogram the
    telemetry metrics registry records into; experiments should use
    {!Histogram.quantile} instead of recomputing percentiles ad hoc from
    raw sample arrays when streaming. *)
module Histogram : sig
  type t

  val create : unit -> t
  (** Empty histogram. *)

  val observe : t -> float -> unit
  (** Record one value.  Values [<= 0] (and NaN) land in the lowest
      bucket. *)

  val count : t -> int
  (** Number of observations. *)

  val sum : t -> float
  (** Sum of observed values. *)

  val mean : t -> float
  (** Mean of observed values; [nan] if empty. *)

  val min_value : t -> float
  (** Smallest observation (exact); [nan] if empty. *)

  val max_value : t -> float
  (** Largest observation (exact); [nan] if empty. *)

  val quantile : t -> float -> float
  (** [quantile t q] estimates the [q]-th quantile ([0. <= q <= 1.]) by
      linear interpolation inside the covering bucket, clamped to the
      exact min/max.  [nan] if empty. *)

  val merge : t -> t -> t
  (** Elementwise bucket sum: equivalent to having observed both
      streams.  Inputs are not mutated. *)

  val reset : t -> unit
  (** Drop all observations. *)

  val nonzero_buckets : t -> (float * int) list
  (** [(upper_bound, count)] for each non-empty bucket, ascending. *)

  val pp : Format.formatter -> t -> unit
  (** Render as [n=… mean=… p50=… p99=… max=…]. *)
end
