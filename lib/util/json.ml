type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %.6g prints deterministically from the bits of the float, so a seeded
   experiment serializes byte-identically run after run *)
let float_str f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_str f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ", ";
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 256 in
  write b t;
  Buffer.contents b
