type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %.6g prints deterministically from the bits of the float, so a seeded
   experiment serializes byte-identically run after run.  Non-finite
   values have no JSON literal, so NaN and the infinities all render as
   null rather than emitting an unparseable token. *)
let float_str f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_str f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ", ";
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 256 in
  write b t;
  Buffer.contents b

(* ---- parser ------------------------------------------------------------ *)

(* Recursive-descent reader for the subset this module writes (which is
   all of standard JSON).  Used by the dump validators and the tests that
   round-trip escaped strings; not a streaming parser — documents here
   are small (a flight-recorder line, a bench file). *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; advance ()
               | '\\' -> Buffer.add_char b '\\'; advance ()
               | '/' -> Buffer.add_char b '/'; advance ()
               | 'b' -> Buffer.add_char b '\b'; advance ()
               | 'f' -> Buffer.add_char b '\012'; advance ()
               | 'n' -> Buffer.add_char b '\n'; advance ()
               | 'r' -> Buffer.add_char b '\r'; advance ()
               | 't' -> Buffer.add_char b '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let code =
                     try int_of_string ("0x" ^ String.sub s !pos 4)
                     with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* escapes we emit are all < 0x80; decode higher code
                      points as UTF-8 so round-trips stay lossless *)
                   if code < 0x80 then Buffer.add_char b (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_float = ref false in
    let digits () =
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then fail "expected number";
    if !is_float then Float (float_of_string text)
    else match int_of_string_opt text with Some i -> Int i | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ member () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := member () :: !items;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !items)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) -> Error (Printf.sprintf "at offset %d: %s" p msg)
