type 'a entry = {
  mutable prio : int;
  mutable seq : int; (* tie-break: FIFO among equal priorities *)
  value : 'a;
  mutable pos : int; (* index in [arr]; -1 once removed *)
}

type 'a handle = 'a entry

(* Empty slots hold a shared sentinel entry instead of [None]: the backing
   store is a raw ['a entry array], so the hot path never allocates or
   matches an option.  The sentinel's [value] is never read — every access
   is guarded by [len] — so one untyped dummy block is safe to share across
   all heaps. *)
let sentinel_block : unit entry = { prio = max_int; seq = max_int; value = (); pos = -1 }
let sentinel () : 'a entry = Obj.magic sentinel_block

(* Layout: a 4-ary heap over [arr], with the (prio, seq) key of slot [i]
   mirrored into the flat int array at [key.(2i)] / [key.(2i+1)].  Sift
   comparisons read only [key] — cache-line-local unboxed ints — instead of
   chasing a boxed entry pointer per level; entry records are touched only
   when a slot actually moves.  Keys are unique (the seq tie-break), so the
   pop order is a total order independent of heap shape: switching arity or
   rebuilding the layout cannot change any observable extraction sequence. *)
type 'a t = {
  mutable arr : 'a entry array;
  mutable key : int array; (* 2 ints per slot: prio at 2i, seq at 2i+1 *)
  mutable len : int;
  mutable next_seq : int;
}

let create () =
  { arr = Array.make 16 (sentinel ()); key = Array.make 32 0; len = 0; next_seq = 0 }

let size h = h.len
let is_empty h = h.len = 0

let less_idx h i j =
  let k = h.key in
  let pi = Array.unsafe_get k (2 * i) and pj = Array.unsafe_get k (2 * j) in
  pi < pj
  || (pi = pj && Array.unsafe_get k ((2 * i) + 1) < Array.unsafe_get k ((2 * j) + 1))

let set h i e =
  h.arr.(i) <- e;
  h.key.((2 * i)) <- e.prio;
  h.key.((2 * i) + 1) <- e.seq;
  e.pos <- i

(* Both sifts move a hole instead of swapping: the displaced element's key
   stays in registers while neighbours shift through the flat key array,
   so each level touches exactly one entry block (the neighbour's [pos]
   update) instead of re-reading boxed [prio]/[seq] fields — the dependent
   load that dominates sift cost once the heap outgrows L1. *)
let sift_up h i0 =
  if i0 > 0 then begin
    let e = h.arr.(i0) in
    let k = h.key in
    let ep = Array.unsafe_get k (2 * i0) and es = Array.unsafe_get k ((2 * i0) + 1) in
    let i = ref i0 in
    let continue = ref true in
    while !continue do
      if !i = 0 then continue := false
      else begin
        let parent = (!i - 1) / 4 in
        let pp = Array.unsafe_get k (2 * parent)
        and ps = Array.unsafe_get k ((2 * parent) + 1) in
        if ep < pp || (ep = pp && es < ps) then begin
          let moved = h.arr.(parent) in
          h.arr.(!i) <- moved;
          moved.pos <- !i;
          Array.unsafe_set k (2 * !i) pp;
          Array.unsafe_set k ((2 * !i) + 1) ps;
          i := parent
        end
        else continue := false
      end
    done;
    if !i <> i0 then begin
      h.arr.(!i) <- e;
      e.pos <- !i;
      Array.unsafe_set k (2 * !i) ep;
      Array.unsafe_set k ((2 * !i) + 1) es
    end
  end

let sift_down h i0 =
  let e = h.arr.(i0) in
  let k = h.key in
  let ep = Array.unsafe_get k (2 * i0) and es = Array.unsafe_get k ((2 * i0) + 1) in
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let base = (4 * !i) + 1 in
    if base >= h.len then continue := false
    else begin
      let last = Stdlib.min (base + 3) (h.len - 1) in
      let m = ref base in
      for c = base + 1 to last do
        if less_idx h c !m then m := c
      done;
      let mp = Array.unsafe_get k (2 * !m) and ms = Array.unsafe_get k ((2 * !m) + 1) in
      if mp < ep || (mp = ep && ms < es) then begin
        let child = h.arr.(!m) in
        h.arr.(!i) <- child;
        child.pos <- !i;
        Array.unsafe_set k (2 * !i) mp;
        Array.unsafe_set k ((2 * !i) + 1) ms;
        i := !m
      end
      else continue := false
    end
  done;
  if !i <> i0 then begin
    h.arr.(!i) <- e;
    e.pos <- !i;
    Array.unsafe_set k (2 * !i) ep;
    Array.unsafe_set k ((2 * !i) + 1) es
  end

let grow h =
  if h.len = Array.length h.arr then begin
    let cap = 2 * Array.length h.arr in
    let bigger = Array.make cap (sentinel ()) in
    Array.blit h.arr 0 bigger 0 h.len;
    h.arr <- bigger;
    let bigger_key = Array.make (2 * cap) 0 in
    Array.blit h.key 0 bigger_key 0 (2 * h.len);
    h.key <- bigger_key
  end

let insert h ~prio value =
  grow h;
  let e = { prio; seq = h.next_seq; value; pos = h.len } in
  h.next_seq <- h.next_seq + 1;
  h.len <- h.len + 1;
  set h (h.len - 1) e;
  sift_up h (h.len - 1);
  e

(* Re-insertion of an extracted entry: the block (and its value) is reused
   instead of allocating a fresh entry, which keeps long-lived queues from
   promoting one record per insert out of the minor heap.  Takes a fresh
   sequence number from the same counter as [insert], so the observable
   FIFO order among equal priorities is identical to a fresh insert. *)
let reinsert h (e : 'a handle) ~prio =
  if e.pos >= 0 then invalid_arg "Heap.reinsert: handle still in heap";
  grow h;
  e.prio <- prio;
  e.seq <- h.next_seq;
  h.next_seq <- h.next_seq + 1;
  h.len <- h.len + 1;
  set h (h.len - 1) e;
  sift_up h (h.len - 1)

let min_elt h = if h.len = 0 then None else Some (h.arr.(0).prio, h.arr.(0).value)
let min_handle h = if h.len = 0 then invalid_arg "Heap.min_handle: empty" else h.arr.(0)

let delete_at h i =
  let last = h.len - 1 in
  let victim = h.arr.(i) in
  victim.pos <- -1;
  if i = last then begin
    h.arr.(last) <- sentinel ();
    h.len <- last
  end
  else begin
    let moved = h.arr.(last) in
    h.arr.(last) <- sentinel ();
    h.len <- last;
    set h i moved;
    sift_down h i;
    sift_up h i
  end;
  victim

let pop_min h =
  if h.len = 0 then invalid_arg "Heap.pop_min: empty" else delete_at h 0

let extract_min h =
  if h.len = 0 then None
  else begin
    let e = delete_at h 0 in
    Some (e.prio, e.value)
  end

let mem _h (hd : 'a handle) = hd.pos >= 0
let handle_prio (hd : 'a handle) = hd.prio
let handle_value (hd : 'a handle) = hd.value

let remove h hd =
  if hd.pos < 0 then false
  else begin
    ignore (delete_at h hd.pos);
    true
  end

let update_prio h hd ~prio =
  if hd.pos < 0 then false
  else begin
    (* behaves like remove + fresh insert: the entry takes a new sequence
       number, so FIFO tie-breaking treats it as the newest arrival at
       [prio] — without the remove/insert churn (one sift, no allocation) *)
    hd.prio <- prio;
    hd.seq <- h.next_seq;
    h.next_seq <- h.next_seq + 1;
    h.key.((2 * hd.pos)) <- prio;
    h.key.((2 * hd.pos) + 1) <- hd.seq;
    sift_up h hd.pos;
    sift_down h hd.pos;
    true
  end

(* Bottom-up heapify over the first [len] slots; pop order is fully
   determined by the (prio, seq) comparator, so rebuilding preserves the
   observable extraction order. *)
let heapify h =
  if h.len > 1 then
    for i = (h.len - 2) / 4 downto 0 do
      sift_down h i
    done

let filter_in_place h keep =
  let kept = ref 0 in
  for i = 0 to h.len - 1 do
    let e = h.arr.(i) in
    if keep e.value then begin
      set h !kept e;
      incr kept
    end
    else begin
      e.pos <- -1;
      h.arr.(i) <- sentinel ()
    end
  done;
  for i = !kept to h.len - 1 do
    h.arr.(i) <- sentinel ()
  done;
  h.len <- !kept;
  heapify h

let clear h =
  for i = 0 to h.len - 1 do
    h.arr.(i).pos <- -1;
    h.arr.(i) <- sentinel ()
  done;
  h.len <- 0
