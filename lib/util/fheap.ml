type 'a entry = {
  mutable prio : float;
  mutable seq : int; (* tie-break: FIFO among equal priorities *)
  value : 'a;
  mutable pos : int; (* index in [arr]; -1 once removed *)
}

type 'a handle = 'a entry

(* Same raw-array layout as [Heap]: empty slots hold a shared sentinel
   entry instead of [None], so the hot path never allocates or matches an
   option.  The sentinel's [value] is never read — every access is guarded
   by [len]. *)
let sentinel_block : unit entry = { prio = infinity; seq = max_int; value = (); pos = -1 }
let sentinel () : 'a entry = Obj.magic sentinel_block

type 'a t = {
  mutable arr : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { arr = Array.make 16 (sentinel ()); len = 0; next_seq = 0 }
let size h = h.len
let is_empty h = h.len = 0
let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let set h i e =
  h.arr.(i) <- e;
  e.pos <- i

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let e = h.arr.(i) and p = h.arr.(parent) in
    if less e p then begin
      set h parent e;
      set h i p;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && less h.arr.(l) h.arr.(!smallest) then smallest := l;
  if r < h.len && less h.arr.(r) h.arr.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let a = h.arr.(i) and b = h.arr.(!smallest) in
    set h i b;
    set h !smallest a;
    sift_down h !smallest
  end

let grow h =
  if h.len = Array.length h.arr then begin
    let bigger = Array.make (2 * Array.length h.arr) (sentinel ()) in
    Array.blit h.arr 0 bigger 0 h.len;
    h.arr <- bigger
  end

let insert h ~prio value =
  grow h;
  let e = { prio; seq = h.next_seq; value; pos = h.len } in
  h.next_seq <- h.next_seq + 1;
  h.arr.(h.len) <- e;
  h.len <- h.len + 1;
  sift_up h (h.len - 1);
  e

let min_elt h = if h.len = 0 then None else Some (h.arr.(0).prio, h.arr.(0).value)
let min_handle h = if h.len = 0 then invalid_arg "Fheap.min_handle: empty" else h.arr.(0)

let delete_at h i =
  let last = h.len - 1 in
  let victim = h.arr.(i) in
  victim.pos <- -1;
  if i = last then begin
    h.arr.(last) <- sentinel ();
    h.len <- last
  end
  else begin
    let moved = h.arr.(last) in
    h.arr.(last) <- sentinel ();
    h.len <- last;
    set h i moved;
    sift_down h i;
    sift_up h i
  end;
  victim

let pop_min h =
  if h.len = 0 then invalid_arg "Fheap.pop_min: empty" else delete_at h 0

let extract_min h =
  if h.len = 0 then None
  else begin
    let e = delete_at h 0 in
    Some (e.prio, e.value)
  end

let mem _h (hd : 'a handle) = hd.pos >= 0
let handle_prio (hd : 'a handle) = hd.prio
let handle_value (hd : 'a handle) = hd.value

let remove h hd =
  if hd.pos < 0 then false
  else begin
    ignore (delete_at h hd.pos);
    true
  end

let update_prio h hd ~prio =
  if hd.pos < 0 then false
  else begin
    (* behaves like remove + fresh insert: the entry takes a new sequence
       number, so FIFO tie-breaking treats it as the newest arrival at
       [prio] — without the remove/insert churn (one sift, no allocation) *)
    hd.prio <- prio;
    hd.seq <- h.next_seq;
    h.next_seq <- h.next_seq + 1;
    sift_up h hd.pos;
    sift_down h hd.pos;
    true
  end

let shift_all h delta =
  (* a uniform shift preserves the (prio, seq) order of every pair, so the
     heap shape — and therefore the extraction order — is untouched *)
  for i = 0 to h.len - 1 do
    h.arr.(i).prio <- h.arr.(i).prio +. delta
  done

let clear h =
  for i = 0 to h.len - 1 do
    h.arr.(i).pos <- -1;
    h.arr.(i) <- sentinel ()
  done;
  h.len <- 0
