(* All-float record: OCaml stores it as a flat float block, so [update]
   mutates in place with no boxing.  [nan] doubles as the "no sample yet"
   state — nan <> nan, so the initialized test is one compare, and no
   finite sample can collide with the sentinel (an EWMA fed a nan sample
   would be poisoned under either representation). *)
type t = { gain : float; mutable value : float }

let create ~gain =
  if gain <= 0. || gain > 1. then invalid_arg "Ewma.create: gain must be in (0,1]";
  { gain; value = nan }

let update t x =
  if t.value = t.value then t.value <- ((1. -. t.gain) *. t.value) +. (t.gain *. x)
  else t.value <- x

let value t = t.value
let initialized t = t.value = t.value
let reset t = t.value <- nan
