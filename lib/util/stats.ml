type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable sum : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min_v = nan; max_v = nan; sum = 0. }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.n = 1 then begin
    t.min_v <- x;
    t.max_v <- x
  end
  else begin
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x
  end

let count t = t.n
let mean t = if t.n = 0 then nan else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t = t.min_v
let max_value t = t.max_v
let sum t = t.sum

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2 +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    {
      n;
      mean;
      m2;
      min_v = Stdlib.min a.min_v b.min_v;
      max_v = Stdlib.max a.max_v b.max_v;
      sum = a.sum +. b.sum;
    }
  end

let percentile samples p =
  let n = Array.length samples in
  if n = 0 then nan
  else begin
    let sorted = Array.copy samples in
    Array.sort Float.compare sorted;
    if n = 1 then sorted.(0)
    else begin
      let rank = p /. 100. *. float_of_int (n - 1) in
      let lo = int_of_float (Float.of_int (int_of_float rank)) in
      let lo = Stdlib.max 0 (Stdlib.min (n - 2) lo) in
      let frac = rank -. float_of_int lo in
      sorted.(lo) +. (frac *. (sorted.(lo + 1) -. sorted.(lo)))
    end
  end

let median s = percentile s 50.

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.n (mean t) (stddev t) t.min_v
    t.max_v

module Histogram = struct
  (* Log-bucketed histogram: bucket [i] counts values in (2^(i-1+lo_exp),
     2^(i+lo_exp)]; values <= 2^lo_exp land in bucket 0.  [frexp] gives the
     bucket index in O(1) with no floating-point log, so [observe] is safe
     on hot paths. *)

  let lo_exp = -20 (* smallest distinguished magnitude: 2^-20 ~ 1e-6 *)
  let nbuckets = 64 (* covers up to 2^43 ~ 8.8e12 before clamping *)

  type h = {
    buckets : int array;
    mutable hn : int;
    mutable hsum : float;
    mutable hmin : float;
    mutable hmax : float;
  }

  type t = h

  let create () =
    { buckets = Array.make nbuckets 0; hn = 0; hsum = 0.; hmin = nan; hmax = nan }

  let bucket_of x =
    if not (x > 0.) then 0
    else begin
      let _, e = Float.frexp x in
      (* x in [2^(e-1), 2^e) -> upper bound 2^e *)
      Stdlib.max 0 (Stdlib.min (nbuckets - 1) (e - lo_exp))
    end

  let upper_bound i = Float.ldexp 1. (i + lo_exp)
  let lower_bound i = if i = 0 then 0. else upper_bound (i - 1)

  let observe t x =
    let i = bucket_of x in
    t.buckets.(i) <- t.buckets.(i) + 1;
    t.hn <- t.hn + 1;
    t.hsum <- t.hsum +. x;
    if t.hn = 1 then begin
      t.hmin <- x;
      t.hmax <- x
    end
    else begin
      if x < t.hmin then t.hmin <- x;
      if x > t.hmax then t.hmax <- x
    end

  let count t = t.hn
  let sum t = t.hsum
  let min_value t = t.hmin
  let max_value t = t.hmax
  let mean t = if t.hn = 0 then nan else t.hsum /. float_of_int t.hn

  let reset t =
    Array.fill t.buckets 0 nbuckets 0;
    t.hn <- 0;
    t.hsum <- 0.;
    t.hmin <- nan;
    t.hmax <- nan

  let quantile t q =
    if t.hn = 0 then nan
    else begin
      let q = Float.max 0. (Float.min 1. q) in
      let target = q *. float_of_int t.hn in
      let rec walk i cum =
        if i >= nbuckets then t.hmax
        else begin
          let c = t.buckets.(i) in
          let cum' = cum + c in
          if float_of_int cum' >= target && c > 0 then begin
            (* linear interpolation inside the bucket's range *)
            let frac =
              if c = 0 then 0. else (target -. float_of_int cum) /. float_of_int c
            in
            let frac = Float.max 0. (Float.min 1. frac) in
            let lo = lower_bound i and hi = upper_bound i in
            let v = lo +. (frac *. (hi -. lo)) in
            (* the true extremes are tracked exactly; clamp the estimate *)
            Float.max t.hmin (Float.min t.hmax v)
          end
          else walk (i + 1) cum'
        end
      in
      walk 0 0
    end

  let merge a b =
    let t = create () in
    Array.blit a.buckets 0 t.buckets 0 nbuckets;
    Array.iteri (fun i c -> t.buckets.(i) <- t.buckets.(i) + c) b.buckets;
    t.hn <- a.hn + b.hn;
    t.hsum <- a.hsum +. b.hsum;
    (if a.hn = 0 then begin
       t.hmin <- b.hmin;
       t.hmax <- b.hmax
     end
     else if b.hn = 0 then begin
       t.hmin <- a.hmin;
       t.hmax <- a.hmax
     end
     else begin
       t.hmin <- Stdlib.min a.hmin b.hmin;
       t.hmax <- Stdlib.max a.hmax b.hmax
     end);
    t

  let nonzero_buckets t =
    let acc = ref [] in
    for i = nbuckets - 1 downto 0 do
      if t.buckets.(i) > 0 then acc := (upper_bound i, t.buckets.(i)) :: !acc
    done;
    !acc

  let pp fmt t =
    Format.fprintf fmt "n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g" t.hn (mean t)
      (quantile t 0.5) (quantile t 0.99) t.hmax
end
