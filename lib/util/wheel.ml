(* Hashed timing wheel with an exact total pop order.

   A priority queue over (time, seq) keys — seq is an internal counter
   giving FIFO order among equal times — split into three stores by
   temporal distance from a moving [cursor]:

     - the *current-slot heap* [cur]: entries whose slot is at or before
       the cursor.  Pop is extract-min over this small heap — its size is
       one slot's occupancy, not the whole queue's, so the sift working
       set stays cache-resident however many events are outstanding.
     - the *wheel*: one append-only vector per slot for entries within
       [n_slots] slots of the cursor.  Insert and (swap) remove are O(1).
     - the *overflow heap* [over]: entries beyond the wheel horizon.
       They migrate into [cur] when the cursor reaches their slot, so a
       far-future event pays two O(log overflow) heap operations in its
       lifetime, however often the cursor turns.

   Exactness argument (why pop order equals a single heap's): every entry
   in [cur] has slot <= cursor and every entry in a wheel slot or in
   overflow has slot > cursor, so all [cur] times are strictly below all
   wheel/overflow times (slot boundaries are time boundaries).  When [cur]
   drains, the cursor advances directly to the minimum occupied slot
   across wheel and overflow and moves exactly that slot's entries into
   [cur] — nothing is skipped, nothing later is mixed in.  Within [cur]
   the heap orders by (time, seq), which is a total order (seq is unique),
   so the interleaving of pops and inserts cannot depend on internal
   layout.  [slots = 0] degenerates to a single binary heap over the same
   keys — the reference the property tests compare against.

   Entry blocks are reusable via {!reinsert} (same pooling contract as
   {!Heap.reinsert}): a re-inserted entry takes a fresh seq, so FIFO
   tie-breaking treats it as the newest arrival. *)

type 'a entry = {
  mutable time : int;
  mutable seq : int;
  mutable value : 'a;
  mutable where : int; (* w_out, w_cur, w_over, or a physical slot index *)
  mutable pos : int; (* index within the slot vector or heap array *)
}

type 'a handle = 'a entry

let w_out = -1
let w_cur = -2
let w_over = -3

(* Shared sentinel for empty array cells, as in Heap: every access is
   guarded by a length, so the dummy's value is never read. *)
let sentinel_block : unit entry =
  { time = max_int; seq = max_int; value = (); where = w_out; pos = -1 }

let sentinel () : 'a entry = Obj.magic sentinel_block

(* ---- internal binary heap over (time, seq) ----------------------------- *)

(* Same layout trick as Heap: the key of slot [i] is mirrored into a flat
   int array at [pkey.(2i)] / [pkey.(2i+1)], so sift comparisons read
   cache-line-local unboxed ints; entry blocks are touched only when a
   slot actually moves. *)
type 'a pq = {
  mutable parr : 'a entry array;
  mutable pkey : int array;
  mutable plen : int;
}

let pq_create () = { parr = Array.make 16 (sentinel ()); pkey = Array.make 32 0; plen = 0 }

let pq_set q i e =
  q.parr.(i) <- e;
  q.pkey.((2 * i)) <- e.time;
  q.pkey.((2 * i) + 1) <- e.seq;
  e.pos <- i

let pq_grow q =
  if q.plen = Array.length q.parr then begin
    let cap = 2 * Array.length q.parr in
    let bigger = Array.make cap (sentinel ()) in
    Array.blit q.parr 0 bigger 0 q.plen;
    q.parr <- bigger;
    let bigger_key = Array.make (2 * cap) 0 in
    Array.blit q.pkey 0 bigger_key 0 (2 * q.plen);
    q.pkey <- bigger_key
  end

let pq_sift_up q i0 =
  if i0 > 0 then begin
    let e = q.parr.(i0) in
    let k = q.pkey in
    let et = Array.unsafe_get k (2 * i0) and es = Array.unsafe_get k ((2 * i0) + 1) in
    let i = ref i0 in
    let continue = ref true in
    while !continue do
      if !i = 0 then continue := false
      else begin
        let parent = (!i - 1) / 2 in
        let pt = Array.unsafe_get k (2 * parent)
        and ps = Array.unsafe_get k ((2 * parent) + 1) in
        if et < pt || (et = pt && es < ps) then begin
          let moved = q.parr.(parent) in
          q.parr.(!i) <- moved;
          moved.pos <- !i;
          Array.unsafe_set k (2 * !i) pt;
          Array.unsafe_set k ((2 * !i) + 1) ps;
          i := parent
        end
        else continue := false
      end
    done;
    if !i <> i0 then begin
      q.parr.(!i) <- e;
      e.pos <- !i;
      Array.unsafe_set k (2 * !i) et;
      Array.unsafe_set k ((2 * !i) + 1) es
    end
  end

let pq_sift_down q i0 =
  let e = q.parr.(i0) in
  let k = q.pkey in
  let et = Array.unsafe_get k (2 * i0) and es = Array.unsafe_get k ((2 * i0) + 1) in
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= q.plen then continue := false
    else begin
      let m = ref l in
      let r = l + 1 in
      if r < q.plen then begin
        let lt = Array.unsafe_get k (2 * l) and ls = Array.unsafe_get k ((2 * l) + 1) in
        let rt = Array.unsafe_get k (2 * r) and rs = Array.unsafe_get k ((2 * r) + 1) in
        if rt < lt || (rt = lt && rs < ls) then m := r
      end;
      let mt = Array.unsafe_get k (2 * !m) and ms = Array.unsafe_get k ((2 * !m) + 1) in
      if mt < et || (mt = et && ms < es) then begin
        let child = q.parr.(!m) in
        q.parr.(!i) <- child;
        child.pos <- !i;
        Array.unsafe_set k (2 * !i) mt;
        Array.unsafe_set k ((2 * !i) + 1) ms;
        i := !m
      end
      else continue := false
    end
  done;
  if !i <> i0 then begin
    q.parr.(!i) <- e;
    e.pos <- !i;
    Array.unsafe_set k (2 * !i) et;
    Array.unsafe_set k ((2 * !i) + 1) es
  end

let pq_push q tag e =
  pq_grow q;
  e.where <- tag;
  q.plen <- q.plen + 1;
  pq_set q (q.plen - 1) e;
  pq_sift_up q (q.plen - 1)

let pq_delete q i =
  let victim = q.parr.(i) in
  victim.pos <- -1;
  victim.where <- w_out;
  let last = q.plen - 1 in
  if i = last then begin
    q.parr.(last) <- sentinel ();
    q.plen <- last
  end
  else begin
    let moved = q.parr.(last) in
    q.parr.(last) <- sentinel ();
    q.plen <- last;
    pq_set q i moved;
    pq_sift_down q i;
    pq_sift_up q i
  end;
  victim

let pq_heapify q =
  if q.plen > 1 then
    for i = (q.plen - 2) / 2 downto 0 do
      pq_sift_down q i
    done

let pq_filter q keep =
  let kept = ref 0 in
  for i = 0 to q.plen - 1 do
    let e = q.parr.(i) in
    if keep e.value then begin
      pq_set q !kept e;
      incr kept
    end
    else begin
      e.pos <- -1;
      e.where <- w_out
    end
  done;
  for i = !kept to q.plen - 1 do
    q.parr.(i) <- sentinel ()
  done;
  q.plen <- !kept;
  pq_heapify q

(* ---- wheel slots -------------------------------------------------------- *)

type 'a slot = { mutable sarr : 'a entry array; mutable slen : int }

type 'a t = {
  bits : int; (* slot width = 2^bits time units *)
  n_slots : int; (* power of two; 0 = pure-heap mode *)
  mask : int;
  slots : 'a slot array;
  occ : int array; (* occupancy bitmap, 32 slots per word (OCaml ints are 63-bit) *)
  mutable cursor : int; (* absolute slot index the current-slot heap covers *)
  cur : 'a pq;
  over : 'a pq;
  mutable in_slots : int; (* entries currently held in wheel slots *)
  mutable size : int;
  mutable next_seq : int;
  (* occupancy statistics for the profiler: cheap counters on paths that
     already do heap work, plus one compare per insert for the high-water *)
  mutable s_overflow : int; (* inserts routed beyond the wheel horizon *)
  mutable s_migrated : int; (* overflow entries later moved into [cur] *)
  mutable s_hw_size : int; (* high-water of [size] *)
  mutable s_hw_cur : int; (* high-water of the current-slot heap *)
}

type stats = {
  overflow_inserts : int;
  overflow_migrations : int;
  hw_size : int;
  hw_cur : int;
  size_now : int;
}

let default_bits = 14 (* 16.384 us slots at ns resolution *)
let default_slots = 1024 (* horizon: 1024 slots = 16.8 ms *)

let create ?(bits = default_bits) ?(slots = default_slots) ?(start = 0) () =
  if bits < 0 || bits > 40 then invalid_arg "Wheel.create: bits out of range";
  if slots <> 0 && slots land (slots - 1) <> 0 then
    invalid_arg "Wheel.create: slots must be a power of two (or 0 for pure-heap mode)";
  {
    bits;
    n_slots = slots;
    mask = slots - 1;
    slots = Array.init (Stdlib.max 1 slots) (fun _ -> { sarr = [||]; slen = 0 });
    occ = Array.make (Stdlib.max 1 ((slots + 31) / 32)) 0;
    cursor = start asr bits;
    cur = pq_create ();
    over = pq_create ();
    in_slots = 0;
    size = 0;
    next_seq = 0;
    s_overflow = 0;
    s_migrated = 0;
    s_hw_size = 0;
    s_hw_cur = 0;
  }

let stats t =
  {
    overflow_inserts = t.s_overflow;
    overflow_migrations = t.s_migrated;
    hw_size = t.s_hw_size;
    hw_cur = t.s_hw_cur;
    size_now = t.size;
  }

let size t = t.size
let is_empty t = t.size = 0

let occ_set t p = t.occ.(p lsr 5) <- t.occ.(p lsr 5) lor (1 lsl (p land 31))
let occ_clear t p = t.occ.(p lsr 5) <- t.occ.(p lsr 5) land lnot (1 lsl (p land 31))

(* number of trailing zeros; [x] must be non-zero and fit in 32 bits *)
let ntz x =
  let x = x land -x in
  let n = ref 0 in
  let x = if x land 0xFFFF = 0 then (n := !n + 16; x lsr 16) else x in
  let x = if x land 0xFF = 0 then (n := !n + 8; x lsr 8) else x in
  let x = if x land 0xF = 0 then (n := !n + 4; x lsr 4) else x in
  let x = if x land 0x3 = 0 then (n := !n + 2; x lsr 2) else x in
  if x land 0x1 = 0 then !n + 1 else !n

let slot_push t p e =
  let sl = t.slots.(p) in
  if sl.slen = Array.length sl.sarr then begin
    let cap = Stdlib.max 8 (2 * Array.length sl.sarr) in
    let bigger = Array.make cap (sentinel ()) in
    Array.blit sl.sarr 0 bigger 0 sl.slen;
    sl.sarr <- bigger
  end;
  sl.sarr.(sl.slen) <- e;
  e.where <- p;
  e.pos <- sl.slen;
  sl.slen <- sl.slen + 1;
  if sl.slen = 1 then occ_set t p;
  t.in_slots <- t.in_slots + 1

(* Route an entry to its store.  Entries at or before the cursor's slot go
   straight into the current-slot heap (delay-0 schedules, and inserts
   after the clock was advanced by a bounded run); entries within one
   revolution go into their wheel slot; the rest overflow. *)
let place t e =
  if t.n_slots = 0 then pq_push t.over w_over e
  else begin
    let s = e.time asr t.bits in
    if s <= t.cursor then begin
      pq_push t.cur w_cur e;
      if t.cur.plen > t.s_hw_cur then t.s_hw_cur <- t.cur.plen
    end
    else if s - t.cursor <= t.n_slots then slot_push t (s land t.mask) e
    else begin
      t.s_overflow <- t.s_overflow + 1;
      pq_push t.over w_over e
    end
  end

let insert t ~time value =
  let e = { time; seq = t.next_seq; value; where = w_out; pos = -1 } in
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  if t.size > t.s_hw_size then t.s_hw_size <- t.size;
  place t e;
  e

let reinsert t (e : 'a handle) ~time =
  if e.where <> w_out then invalid_arg "Wheel.reinsert: handle still queued";
  e.time <- time;
  e.seq <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  if t.size > t.s_hw_size then t.s_hw_size <- t.size;
  place t e

let detach t e =
  match e.where with
  | w when w = w_cur -> ignore (pq_delete t.cur e.pos)
  | w when w = w_over -> ignore (pq_delete t.over e.pos)
  | p ->
      (* p >= 0: swap-remove from the slot vector *)
      let sl = t.slots.(p) in
      let last = sl.slen - 1 in
      if e.pos <> last then begin
        let moved = sl.sarr.(last) in
        sl.sarr.(e.pos) <- moved;
        moved.pos <- e.pos
      end;
      sl.sarr.(last) <- sentinel ();
      sl.slen <- last;
      if last = 0 then occ_clear t p;
      t.in_slots <- t.in_slots - 1;
      e.where <- w_out;
      e.pos <- -1

let remove t e =
  if e.where = w_out then false
  else begin
    detach t e;
    t.size <- t.size - 1;
    true
  end

let update t e ~time =
  if e.where = w_out then false
  else begin
    detach t e;
    e.time <- time;
    e.seq <- t.next_seq;
    t.next_seq <- t.next_seq + 1;
    place t e;
    true
  end

(* Absolute slot of the nearest occupied wheel slot strictly after the
   cursor; requires [in_slots > 0].  One bitmap word scan per 64 slots,
   in absolute (wrapping-physical) order. *)
let next_wheel_abs t =
  let p0 = (t.cursor + 1) land t.mask in
  let words = Array.length t.occ in
  let w0 = p0 lsr 5 in
  let first = t.occ.(w0) land (-1 lsl (p0 land 31)) in
  let p =
    if first <> 0 then (w0 lsl 5) + ntz first
    else begin
      let rec go k =
        let w = (w0 + k) mod words in
        let m =
          if k = words then t.occ.(w0) land lnot (-1 lsl (p0 land 31)) else t.occ.(w)
        in
        if m <> 0 then (w lsl 5) + ntz m
        else if k >= words then invalid_arg "Wheel: occupancy bitmap inconsistent"
        else go (k + 1)
      in
      go 1
    end
  in
  t.cursor + 1 + ((p - p0) land t.mask)

(* Advance the cursor to the minimum occupied slot across wheel and
   overflow, and move exactly that slot's entries into the current-slot
   heap.  Requires [size > 0] and [cur] empty. *)
let refill t =
  let k_w = if t.in_slots > 0 then next_wheel_abs t else max_int in
  let k_o = if t.over.plen > 0 then t.over.parr.(0).time asr t.bits else max_int in
  let k = Stdlib.min k_w k_o in
  t.cursor <- k;
  if k = k_w then begin
    let p = k land t.mask in
    let sl = t.slots.(p) in
    let n = sl.slen in
    for i = 0 to n - 1 do
      let e = sl.sarr.(i) in
      sl.sarr.(i) <- sentinel ();
      pq_push t.cur w_cur e
    done;
    sl.slen <- 0;
    occ_clear t p;
    t.in_slots <- t.in_slots - n
  end;
  while t.over.plen > 0 && t.over.parr.(0).time asr t.bits <= k do
    let e = pq_delete t.over 0 in
    t.s_migrated <- t.s_migrated + 1;
    pq_push t.cur w_cur e
  done;
  if t.cur.plen > t.s_hw_cur then t.s_hw_cur <- t.cur.plen

let min_handle t =
  if t.size = 0 then invalid_arg "Wheel.min_handle: empty";
  if t.n_slots = 0 then t.over.parr.(0)
  else begin
    if t.cur.plen = 0 then refill t;
    t.cur.parr.(0)
  end

let pop_min t =
  let e = min_handle t in
  detach t e;
  t.size <- t.size - 1;
  e

let mem _t (e : 'a handle) = e.where <> w_out
let handle_time (e : 'a handle) = e.time
let handle_value (e : 'a handle) = e.value
let handle_seq (e : 'a handle) = e.seq
let set_handle_value (e : 'a handle) v = e.value <- v

let filter_in_place t keep =
  pq_filter t.cur keep;
  pq_filter t.over keep;
  if t.n_slots > 0 then begin
    t.in_slots <- 0;
    for p = 0 to t.n_slots - 1 do
      let sl = t.slots.(p) in
      if sl.slen > 0 then begin
        let kept = ref 0 in
        for i = 0 to sl.slen - 1 do
          let e = sl.sarr.(i) in
          if keep e.value then begin
            sl.sarr.(!kept) <- e;
            e.pos <- !kept;
            incr kept
          end
          else begin
            e.pos <- -1;
            e.where <- w_out
          end
        done;
        for i = !kept to sl.slen - 1 do
          sl.sarr.(i) <- sentinel ()
        done;
        sl.slen <- !kept;
        if !kept = 0 then occ_clear t p;
        t.in_slots <- t.in_slots + !kept
      end
    done
  end;
  t.size <- t.cur.plen + t.over.plen + t.in_slots
