(** Minimal JSON document builder with deterministic serialization.

    Every machine-readable artifact in the repo — experiment results,
    telemetry traces, time-series dumps — goes through this one writer so
    floats format identically everywhere: [%.6g], integral values without
    a fractional part, NaN as [null].  With a fixed seed the rendered
    bytes are identical run after run, which is what the determinism
    regression tests diff. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-body escaping: quotes, backslashes, and every control
    character (named escapes for [\n \r \t \b \f], [\u00XX] otherwise). *)

val float_str : float -> string
(** The shared float rendering: [%.6g]; integral values print without a
    fractional part; non-finite values (NaN, ±infinity) render as
    ["null"] — JSON has no literal for them. *)

val to_string : t -> string
(** Render compactly (single line, [", "] separators). *)

val write : Buffer.t -> t -> unit
(** Append the rendering to a buffer. *)

val parse : string -> (t, string) result
(** Parse one complete JSON document (standard JSON; numbers without a
    fraction or exponent come back as [Int]).  [Error] carries the byte
    offset and a short description.  Used to validate flight-recorder
    dumps and to round-trip escaped strings in tests. *)
