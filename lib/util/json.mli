(** Minimal JSON document builder with deterministic serialization.

    Every machine-readable artifact in the repo — experiment results,
    telemetry traces, time-series dumps — goes through this one writer so
    floats format identically everywhere: [%.6g], integral values without
    a fractional part, NaN as [null].  With a fixed seed the rendered
    bytes are identical run after run, which is what the determinism
    regression tests diff. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, newlines). *)

val float_str : float -> string
(** The shared float rendering: [%.6g]; integral values print without a
    fractional part; NaN renders as ["null"]. *)

val to_string : t -> string
(** Render compactly (single line, [", "] separators). *)

val write : Buffer.t -> t -> unit
(** Append the rendering to a buffer. *)
