(** Removable indexed min-heap (4-ary, flat key mirror).

    Backs the event queue: O(log n) insert and extract-min, O(log n)
    removal of an arbitrary element through its handle.  Elements are
    ordered by a priority supplied at insertion plus an insertion sequence
    number, so equal priorities pop in FIFO order (stable).  The layout is
    a 4-ary heap with the (priority, seq) keys mirrored into a flat int
    array: half the levels of a binary heap, and sift comparisons touch
    only unboxed cache-line-local ints rather than one boxed entry per
    level.  Keys are unique, so the extraction order is independent of
    heap arity or internal layout. *)

type 'a t
(** A heap of values of type ['a] keyed by integer priority. *)

type 'a handle
(** Identifies an inserted element; valid until the element is removed or
    extracted. *)

val create : unit -> 'a t
(** An empty heap. *)

val size : 'a t -> int
(** Number of live elements. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [size h = 0]. *)

val insert : 'a t -> prio:int -> 'a -> 'a handle
(** [insert h ~prio v] adds [v] with priority [prio] and returns its
    handle. *)

val reinsert : 'a t -> 'a handle -> prio:int -> unit
(** [reinsert h hd ~prio] puts an extracted (or removed) entry back into
    the heap at [prio], reusing the entry block and its value instead of
    allocating — the recycling half of an object-pooling discipline for
    long-lived queues.  The entry takes a fresh sequence number, so among
    equal priorities it behaves exactly like a fresh {!insert}.  Raises
    [Invalid_argument] if the handle is still live. *)

val min_elt : 'a t -> (int * 'a) option
(** Smallest (priority, value) without removing it. *)

val extract_min : 'a t -> (int * 'a) option
(** Remove and return the smallest (priority, value); [None] if empty. *)

val remove : 'a t -> 'a handle -> bool
(** [remove h hd] deletes the element behind [hd]; returns [false] if it
    was already extracted or removed. *)

val update_prio : 'a t -> 'a handle -> prio:int -> bool
(** [update_prio h hd ~prio] moves the element behind [hd] to a new
    priority in place (decrease- or increase-key), avoiding the
    remove+insert churn of re-keying.  The element is given a fresh
    sequence number, so among equal priorities it behaves exactly as if it
    had just been inserted.  Returns [false] if the element was already
    extracted or removed. *)

val mem : 'a t -> 'a handle -> bool
(** Whether the handle still designates a live element. *)

val min_handle : 'a t -> 'a handle
(** Handle of the smallest element without removing it; no allocation.
    Raises [Invalid_argument] on an empty heap. *)

val pop_min : 'a t -> 'a handle
(** Remove the smallest element and return its handle; no allocation
    (use {!handle_prio} / {!handle_value} to read it).  Raises
    [Invalid_argument] on an empty heap. *)

val handle_prio : 'a handle -> int
(** Priority of the element behind the handle (last value set, also valid
    on extracted handles). *)

val handle_value : 'a handle -> 'a
(** Value behind the handle (also valid on extracted handles). *)

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** [filter_in_place h keep] drops every element whose value fails [keep]
    and re-heapifies in O(n).  Handles of dropped elements become dead.
    Extraction order of surviving elements is unchanged.  Used by the
    event engine to compact lazily-cancelled events. *)

val clear : 'a t -> unit
(** Remove all elements. *)
