(** Hashed timing wheel with an exact total pop order.

    A mutable priority queue keyed by [(time, seq)] — [seq] is an internal
    counter making keys unique, so ties pop FIFO — that routes entries by
    temporal distance: near-future entries land in O(1) wheel slots, the
    current slot drains through a small binary heap, and far-future entries
    overflow into a heap and migrate forward as the wheel turns.  The pop
    sequence is exactly the sorted [(time, seq)] order, identical to a
    single binary heap over the same keys; [~slots:0] degenerates to that
    reference heap. *)

type 'a t
type 'a handle

val create : ?bits:int -> ?slots:int -> ?start:int -> unit -> 'a t
(** [create ()] makes an empty wheel.  [bits] sets the slot width to
    [2^bits] time units (default 14: 16.384 us at nanosecond resolution);
    [slots] is the number of wheel slots, a power of two (default 1024,
    i.e. a ~16.8 ms horizon), or [0] for pure-heap mode; [start] is the
    earliest time the wheel must order exactly (the engine's clock
    origin).  Raises [Invalid_argument] on a non-power-of-two [slots]. *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val insert : 'a t -> time:int -> 'a -> 'a handle
(** O(1) within the horizon, O(log overflow) beyond it. *)

val reinsert : 'a t -> 'a handle -> time:int -> unit
(** Re-queue an extracted entry, reusing its block (no allocation).  Takes
    a fresh sequence number, so FIFO tie-breaking treats it as the newest
    arrival.  Raises [Invalid_argument] if the handle is still queued. *)

val min_handle : 'a t -> 'a handle
(** Handle of the minimum-key entry, without removing it.  May advance the
    wheel cursor internally.  Raises [Invalid_argument] if empty. *)

val pop_min : 'a t -> 'a handle
(** Remove and return the minimum-key entry.
    Raises [Invalid_argument] if empty. *)

val remove : 'a t -> 'a handle -> bool
(** Remove an arbitrary entry: O(1) swap-remove from a wheel slot,
    O(log n) from a heap.  [false] if it was not queued. *)

val update : 'a t -> 'a handle -> time:int -> bool
(** Move a queued entry to a new time with a fresh sequence number
    (remove + reinsert semantics, matching {!Heap.update_prio}).
    [false] if the handle was not queued. *)

val mem : 'a t -> 'a handle -> bool
val handle_time : 'a handle -> int
val handle_value : 'a handle -> 'a

val handle_seq : 'a handle -> int
(** The entry's current sequence number — unique over the wheel's lifetime
    and refreshed by {!reinsert}/{!update}, so it doubles as a generation
    stamp for callers that hold handles across entry reuse. *)

val set_handle_value : 'a handle -> 'a -> unit
(** Overwrite the entry's payload in place (the key is untouched, so the
    entry keeps its queue position).  Lets a pooling caller store its own
    state directly in the entry block instead of through a second
    indirection. *)

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** Drop every entry whose value fails the predicate; dropped handles
    become not-queued.  O(n). *)

type stats = {
  overflow_inserts : int;  (** inserts routed beyond the wheel horizon *)
  overflow_migrations : int;  (** overflow entries later moved into the current-slot heap *)
  hw_size : int;  (** high-water of total queued entries *)
  hw_cur : int;  (** high-water of the current-slot heap (one slot's occupancy) *)
  size_now : int;  (** entries queued right now *)
}

val stats : 'a t -> stats
(** Lifetime occupancy counters (profiler/diagnostics).  In pure-heap
    mode ([~slots:0]) [overflow_inserts] stays 0: everything lives in the
    overflow heap by construction, so counting it would be noise. *)
