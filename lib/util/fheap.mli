(** Removable binary min-heap keyed by {b float} priority.

    The float twin of {!Heap} (which backs the event queue with integer
    deadlines): O(log n) insert and extract-min, O(log n) removal or
    re-keying of an arbitrary element through its handle, FIFO among equal
    priorities.  Built for the stride scheduler, whose pass values are
    rationals of the flow weights and cannot be integer-keyed without
    losing the weight semantics. *)

type 'a t
(** A heap of values of type ['a] keyed by float priority. *)

type 'a handle
(** Identifies an inserted element; valid until the element is removed or
    extracted. *)

val create : unit -> 'a t
(** An empty heap. *)

val size : 'a t -> int
(** Number of live elements. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [size h = 0]. *)

val insert : 'a t -> prio:float -> 'a -> 'a handle
(** [insert h ~prio v] adds [v] with priority [prio] and returns its
    handle. *)

val min_elt : 'a t -> (float * 'a) option
(** Smallest (priority, value) without removing it. *)

val extract_min : 'a t -> (float * 'a) option
(** Remove and return the smallest (priority, value); [None] if empty. *)

val remove : 'a t -> 'a handle -> bool
(** [remove h hd] deletes the element behind [hd]; returns [false] if it
    was already extracted or removed. *)

val update_prio : 'a t -> 'a handle -> prio:float -> bool
(** [update_prio h hd ~prio] re-keys the element in place (decrease- or
    increase-key) with a fresh sequence number, so among equal priorities
    it behaves exactly as if it had just been inserted.  Returns [false]
    if the element was already extracted or removed. *)

val mem : 'a t -> 'a handle -> bool
(** Whether the handle still designates a live element. *)

val min_handle : 'a t -> 'a handle
(** Handle of the smallest element without removing it; no allocation.
    Raises [Invalid_argument] on an empty heap. *)

val pop_min : 'a t -> 'a handle
(** Remove the smallest element and return its handle; no allocation.
    Raises [Invalid_argument] on an empty heap. *)

val handle_prio : 'a handle -> float
(** Priority of the element behind the handle. *)

val handle_value : 'a handle -> 'a
(** Value behind the handle (also valid on extracted handles). *)

val shift_all : 'a t -> float -> unit
(** [shift_all h delta] adds [delta] to every live element's priority in
    O(n) without perturbing the extraction order (a uniform shift
    preserves every pairwise comparison).  The stride scheduler uses this
    to rebase pass values before they grow large enough for float
    addition to lose small strides. *)

val clear : 'a t -> unit
(** Remove all elements. *)
