open Cm_util
open Eventsim
open Netsim

type mode = Alf | Rate_callback of { down : float; up : float }

type t = {
  libcm : Libcm.t;
  host : Host.t;
  engine : Engine.t;
  socket : Udp.Socket.t;
  fid : Cm.Cm_types.flow_id;
  fb : Udp.Feedback.Sender.t;
  layers : float array;
  mode : mode;
  packet_bytes : int;
  pipeline : int;
  headroom : float;
  mutable running : bool;
  mutable layer : int;
  mutable requests_outstanding : int;
  mutable clock : Timer.t; (* rate-callback transmission clock *)
  mutable sent_pkts : int;
  mutable sent_bytes : int;
  tx_tl : Timeline.t;
  rate_tl : Timeline.t;
  layer_tl : Timeline.t;
}

let layer_for t rate_bps =
  (* always keep at least the base layer flowing: a silent source gets no
     feedback and could never discover that bandwidth came back *)
  let budget = rate_bps *. t.headroom in
  let chosen = ref 0 in
  Array.iteri (fun i r -> if r <= budget then chosen := i) t.layers;
  !chosen

let note_layer t layer =
  let prev = t.layer in
  t.layer <- layer;
  let rate = if layer >= 0 then t.layers.(layer) else 0. in
  (* adaptation decisions (Figs. 8–10) as trace instants, on the CM's
     timeline; only actual switches are events, steady state is covered by
     the sampled rate series *)
  (if layer <> prev then
     let tr = Cm.trace (Libcm.cm t.libcm) in
     if Telemetry.Trace.on tr then
       Telemetry.Trace.instant tr ~cat:"app" "app.layer"
         [
           ("flow", Telemetry.Trace.Int t.fid);
           ("from", Telemetry.Trace.Int prev);
           ("to", Telemetry.Trace.Int layer);
           ("rate_bps", Telemetry.Trace.Float rate);
         ]);
  Timeline.record t.layer_tl (Engine.now t.engine) rate

let transmit_packet t =
  let now = Engine.now t.engine in
  let bytes = t.packet_bytes in
  let seq = Udp.Feedback.Sender.on_transmit t.fb ~bytes in
  Libcm.app_send t.libcm ~bytes;
  Udp.Socket.send t.socket ~payload_bytes:bytes (Udp.Feedback.Data { seq; bytes; ts = now });
  t.sent_pkts <- t.sent_pkts + 1;
  t.sent_bytes <- t.sent_bytes + bytes;
  Timeline.record t.tx_tl now (float_of_int bytes)

(* ---- ALF (request/callback) mode ---------------------------------- *)

let alf_sync_requests t =
  if t.running then
    while t.requests_outstanding < t.pipeline do
      t.requests_outstanding <- t.requests_outstanding + 1;
      Libcm.request t.libcm t.fid
    done

let alf_on_grant t _fid =
  t.requests_outstanding <- Stdlib.max 0 (t.requests_outstanding - 1);
  if t.running then begin
    (* last-minute adaptation: query the network state per packet *)
    let st = Libcm.query t.libcm t.fid in
    Timeline.record t.rate_tl (Engine.now t.engine) st.Cm.Cm_types.rate_bps;
    note_layer t (layer_for t st.Cm.Cm_types.rate_bps);
    transmit_packet t;
    alf_sync_requests t
  end
  else Libcm.notify t.libcm t.fid ~nbytes:0

(* ---- rate-callback mode -------------------------------------------- *)

let interval_for t =
  let rate = if t.layer >= 0 then t.layers.(t.layer) else t.layers.(0) /. 2. in
  let rate = Float.max rate 8_000. in
  Time.sec (float_of_int (t.packet_bytes * 8) /. rate)

let rate_tick t =
  if t.running then begin
    if t.layer >= 0 then transmit_packet t;
    Timer.start t.clock (interval_for t)
  end

let on_rate_update t (st : Cm.Cm_types.status) =
  if t.running then begin
    Timeline.record t.rate_tl (Engine.now t.engine) st.Cm.Cm_types.rate_bps;
    note_layer t (layer_for t st.Cm.Cm_types.rate_bps)
  end

(* ---- construction --------------------------------------------------- *)

let create libcm ~host ~dst ~layers ~mode ?(packet_bytes = 1000) ?(pipeline = 4)
    ?(headroom = 0.9) ?feedback_timeout () =
  if Array.length layers = 0 then invalid_arg "Layered.create: need at least one layer";
  let engine = Host.engine host in
  let socket = Udp.Socket.create host () in
  Udp.Socket.connect socket dst;
  let key = Addr.flow ~src:(Udp.Socket.local socket) ~dst ~proto:Addr.Udp () in
  let fid = Libcm.open_flow libcm key in
  let t_ref = ref None in
  let fb =
    Udp.Feedback.Sender.create engine ?timeout_floor:feedback_timeout
      ~on_report:(fun r ->
        match !t_ref with
        | Some t when t.running ->
            (* the app processed an ack in user space: a recv and the
               timestamp reads for the RTT computation *)
            Libcm.app_recv t.libcm ~bytes:32;
            Libcm.app_gettimeofday t.libcm;
            Libcm.app_gettimeofday t.libcm;
            Libcm.update t.libcm t.fid ~nsent:r.Udp.Feedback.nsent ~nrecd:r.Udp.Feedback.nrecd
              ~loss:r.Udp.Feedback.loss ?rtt:r.Udp.Feedback.rtt ()
        | _ -> ())
      ()
  in
  let clock = Timer.create engine ~callback:(fun () -> ()) in
  let t =
    {
      libcm;
      host;
      engine;
      socket;
      fid;
      fb;
      layers;
      mode;
      packet_bytes;
      pipeline;
      headroom;
      running = false;
      layer = -1;
      requests_outstanding = 0;
      clock;
      sent_pkts = 0;
      sent_bytes = 0;
      tx_tl = Timeline.create ();
      rate_tl = Timeline.create ();
      layer_tl = Timeline.create ();
    }
  in
  t_ref := Some t;
  t.clock <- Timer.create engine ~callback:(fun () -> rate_tick t);
  Udp.Socket.on_receive socket (fun pkt ->
      match pkt.Packet.payload with
      | Udp.Feedback.Ack { max_seq; count; bytes; ts_echo } ->
          Udp.Feedback.Sender.on_ack t.fb ~max_seq ~count ~bytes ~ts_echo
      | _ -> ());
  (match mode with
  | Alf -> Libcm.register_send libcm fid (fun fid -> alf_on_grant t fid)
  | Rate_callback { down; up } ->
      Libcm.register_update libcm fid (fun st -> on_rate_update t st);
      Libcm.set_thresh libcm fid ~down ~up);
  t

let start t =
  if not t.running then begin
    t.running <- true;
    match t.mode with
    | Alf -> alf_sync_requests t
    | Rate_callback _ ->
        (* probe: begin at the lowest layer until the CM reports a rate *)
        note_layer t 0;
        rate_tick t
  end

let stop t =
  if t.running then begin
    t.running <- false;
    Timer.stop t.clock;
    Udp.Feedback.Sender.shutdown t.fb
  end

let current_layer t = t.layer
let packets_sent t = t.sent_pkts
let bytes_sent t = t.sent_bytes
let tx_timeline t = t.tx_tl
let rate_timeline t = t.rate_tl
let layer_timeline t = t.layer_tl
let flow t = t.fid
