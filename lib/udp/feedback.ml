open Cm_util
open Eventsim

type Netsim.Packet.payload += Data of { seq : int; bytes : int; ts : Time.t }
type Netsim.Packet.payload += Ack of { max_seq : int; count : int; bytes : int; ts_echo : Time.t }

module Receiver = struct
  type t = {
    engine : Engine.t;
    send_ack : max_seq:int -> count:int -> bytes:int -> ts_echo:Time.t -> unit;
    batch : (int * Time.span) option;
    timer : Timer.t option ref;
    mutable pending_count : int;
    mutable pending_bytes : int;
    mutable pending_max_seq : int;
    mutable pending_ts : Time.t;
    mutable total_packets : int;
    mutable total_bytes : int;
  }

  let flush t =
    if t.pending_count > 0 then begin
      t.send_ack ~max_seq:t.pending_max_seq ~count:t.pending_count ~bytes:t.pending_bytes
        ~ts_echo:t.pending_ts;
      t.pending_count <- 0;
      t.pending_bytes <- 0;
      match !(t.timer) with Some timer -> Timer.stop timer | None -> ()
    end

  let create engine ~send_ack ?batch () =
    let t =
      {
        engine;
        send_ack;
        batch;
        timer = ref None;
        pending_count = 0;
        pending_bytes = 0;
        pending_max_seq = -1;
        pending_ts = 0;
        total_packets = 0;
        total_bytes = 0;
      }
    in
    (match batch with
    | Some _ -> t.timer := Some (Timer.create engine ~callback:(fun () -> flush t))
    | None -> ());
    t

  let on_data t ~seq ~bytes ~ts =
    t.total_packets <- t.total_packets + 1;
    t.total_bytes <- t.total_bytes + bytes;
    t.pending_count <- t.pending_count + 1;
    t.pending_bytes <- t.pending_bytes + bytes;
    if seq > t.pending_max_seq then t.pending_max_seq <- seq;
    t.pending_ts <- ts;
    match t.batch with
    | None -> flush t
    | Some (max_count, max_wait) ->
        if t.pending_count >= max_count then flush t
        else begin
          match !(t.timer) with
          | Some timer when not (Timer.is_running timer) -> Timer.start timer max_wait
          | _ -> ()
        end

  let packets_received t = t.total_packets
  let bytes_received t = t.total_bytes
end

type report = {
  nsent : int;
  nrecd : int;
  loss : Cm.Cm_types.loss_mode;
  rtt : Time.span option;
}

module Sender = struct
  type entry = { bytes : int; sent_at : Time.t }

  type t = {
    engine : Engine.t;
    on_report : report -> unit;
    timeout_floor : Time.span;
    on_starve : (unit -> unit) option;
    starve_floor : Time.span;
    starve_cap : Time.span;
    outstanding : (int, entry) Hashtbl.t; (* seq -> entry *)
    mutable next_seq : int;
    mutable lowest_unresolved : int;
    mutable recover_seq : int; (* gate: one Transient per window *)
    mutable srtt : float;
    mutable srtt_valid : bool;
    mutable last_feedback : Time.t;
    mutable solicit_backoff : Time.span;
    mutable next_solicit_at : Time.t;
    mutable solicits : int;
    timer : Timer.t option ref;
  }

  let srtt t = if t.srtt_valid then Some (int_of_float t.srtt) else None

  let observe_rtt t sample =
    if sample > 0 then begin
      let s = float_of_int sample in
      if t.srtt_valid then t.srtt <- (0.875 *. t.srtt) +. (0.125 *. s)
      else begin
        t.srtt <- s;
        t.srtt_valid <- true
      end
    end

  (* resolve every outstanding packet with seq <= upto; returns (packets,
     bytes) resolved *)
  let resolve_upto t upto =
    let resolved = ref 0 and bytes = ref 0 in
    for seq = t.lowest_unresolved to upto do
      match Hashtbl.find_opt t.outstanding seq with
      | Some e ->
          incr resolved;
          bytes := !bytes + e.bytes;
          Hashtbl.remove t.outstanding seq
      | None -> ()
    done;
    if upto >= t.lowest_unresolved then t.lowest_unresolved <- upto + 1;
    (!resolved, !bytes)

  (* Declare everything in flight lost: the shared core of the silence
     timeout and of an explicit resync (receiver restarted, so feedback
     for the old packets will never come). *)
  let declare_outstanding_lost t =
    let now = Engine.now t.engine in
    if Hashtbl.length t.outstanding > 0 then begin
      let bytes = Hashtbl.fold (fun _ e acc -> acc + e.bytes) t.outstanding 0 in
      Hashtbl.reset t.outstanding;
      t.lowest_unresolved <- t.next_seq;
      t.recover_seq <- t.next_seq;
      t.last_feedback <- now;
      t.on_report { nsent = bytes; nrecd = 0; loss = Cm.Cm_types.Persistent; rtt = None }
    end

  let maintenance t () =
    if Hashtbl.length t.outstanding > 0 then begin
      let now = Engine.now t.engine in
      (* Feedback starvation: before giving up on the outstanding data,
         solicit the receiver — its feedback may be the only thing being
         lost.  Exponential backoff so a dead feedback path costs a
         handful of control packets, not a stream; any accepted feedback
         resets the backoff to the floor. *)
      (match t.on_starve with
      | Some solicit ->
          if
            Time.diff now t.last_feedback >= t.solicit_backoff
            && now >= t.next_solicit_at
          then begin
            t.solicits <- t.solicits + 1;
            t.next_solicit_at <- Time.add now t.solicit_backoff;
            t.solicit_backoff <- Stdlib.min (2 * t.solicit_backoff) t.starve_cap;
            solicit ()
          end
      | None -> ());
      (* nothing heard for a long time while data is outstanding: persistent
         congestion (the UDP analogue of a TCP timeout) *)
      let limit =
        Stdlib.max t.timeout_floor
          (if t.srtt_valid then 2 * int_of_float t.srtt else t.timeout_floor)
      in
      if Time.diff now t.last_feedback > limit then declare_outstanding_lost t
    end

  let create engine ~on_report ?(timeout_floor = Time.ms 500) ?on_starve
      ?(starve_floor = Time.ms 200) ?(starve_cap = Time.sec 3.2) () =
    let t =
      {
        engine;
        on_report;
        timeout_floor;
        on_starve;
        starve_floor;
        starve_cap;
        outstanding = Hashtbl.create 64;
        next_seq = 0;
        lowest_unresolved = 0;
        recover_seq = 0;
        srtt = 0.;
        srtt_valid = false;
        last_feedback = Engine.now engine;
        solicit_backoff = starve_floor;
        next_solicit_at = 0;
        solicits = 0;
        timer = ref None;
      }
    in
    let timer = Timer.create engine ~callback:(maintenance t) in
    Timer.start_periodic timer (Time.ms 100);
    t.timer := Some timer;
    t

  let next_seq t = t.next_seq

  let on_transmit t ~bytes =
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    Hashtbl.replace t.outstanding seq { bytes; sent_at = Engine.now t.engine };
    seq

  let on_ack t ~max_seq ~count ~bytes ~ts_echo =
    t.last_feedback <- Engine.now t.engine;
    t.solicit_backoff <- t.starve_floor;
    t.next_solicit_at <- 0;
    let rtt =
      if ts_echo > 0 then begin
        let sample = Time.diff (Engine.now t.engine) ts_echo in
        observe_rtt t sample;
        if sample > 0 then Some sample else None
      end
      else None
    in
    let resolved_pkts, resolved_bytes = resolve_upto t max_seq in
    if resolved_pkts = 0 then begin
      (* feedback carried no new resolution; still deliver the rtt *)
      if rtt <> None then t.on_report { nsent = 0; nrecd = 0; loss = Cm.Cm_types.No_loss; rtt }
    end
    else begin
      let recd_bytes = Stdlib.min bytes resolved_bytes in
      let lost_pkts = resolved_pkts - Stdlib.min count resolved_pkts in
      let loss =
        if lost_pkts > 0 && max_seq >= t.recover_seq then begin
          t.recover_seq <- t.next_seq;
          Cm.Cm_types.Transient
        end
        else Cm.Cm_types.No_loss
      in
      let nrecd = if lost_pkts > 0 then recd_bytes else resolved_bytes in
      t.on_report { nsent = resolved_bytes; nrecd; loss; rtt }
    end

  let resync t = declare_outstanding_lost t
  let solicits t = t.solicits
  let outstanding_packets t = Hashtbl.length t.outstanding
  let outstanding_bytes t = Hashtbl.fold (fun _ e acc -> acc + e.bytes) t.outstanding 0

  let shutdown t =
    match !(t.timer) with
    | Some timer ->
        Timer.stop timer;
        t.timer := None
    | None -> ()
end
