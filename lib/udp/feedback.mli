(** Application-level acknowledgments for UDP CM clients.

    "All UDP-based clients must implement application level data
    acknowledgements in order to make use of the CM" (paper §3.1).  This
    module is that machinery, factored out so every UDP application does
    not re-implement it: the receiver side acknowledges data packets
    (optionally batching feedback, the knob behind Fig. 10), and the
    sender side converts acks into the [(nsent, nrecd, lossmode, rtt)]
    reports that [cm_update] expects, including gap-based loss detection
    with one Transient report per window and timeout-based Persistent
    detection. *)

open Cm_util
open Eventsim

type Netsim.Packet.payload += Data of { seq : int; bytes : int; ts : Time.t }
      (** A data packet: sequence number, payload size, sender timestamp. *)

type Netsim.Packet.payload +=
  | Ack of { max_seq : int; count : int; bytes : int; ts_echo : Time.t }
      (** Feedback: highest sequence seen, and how many packets/bytes
          arrived since the previous ack; echoes the newest timestamp. *)

(** {1 Receiver side} *)

module Receiver : sig
  type t
  (** Acknowledgment generator state. *)

  val create :
    Engine.t ->
    send_ack:(max_seq:int -> count:int -> bytes:int -> ts_echo:Time.t -> unit) ->
    ?batch:int * Time.span ->
    unit ->
    t
  (** [create eng ~send_ack ()] acknowledges every data packet
      immediately.  With [~batch:(n, d)] feedback is sent once [n] packets
      accumulate or [d] elapses since the first unacknowledged packet —
      the paper's delayed feedback of [min(500 acks, 2000 ms)]. *)

  val on_data : t -> seq:int -> bytes:int -> ts:Time.t -> unit
  (** Process one arriving data packet. *)

  val packets_received : t -> int
  (** Total data packets seen. *)

  val bytes_received : t -> int
  (** Total payload bytes seen. *)

  val flush : t -> unit
  (** Force out any pending batched acknowledgment. *)
end

(** {1 Sender side} *)

type report = {
  nsent : int;  (** Payload bytes resolved by this feedback event. *)
  nrecd : int;  (** Of those, bytes that arrived. *)
  loss : Cm.Cm_types.loss_mode;  (** Congestion classification. *)
  rtt : Time.span option;  (** Fresh RTT sample, if the ack allowed one. *)
}
(** What to pass to [cm_update]. *)

module Sender : sig
  type t
  (** Loss-detection and RTT bookkeeping for a data sender. *)

  val create :
    Engine.t ->
    on_report:(report -> unit) ->
    ?timeout_floor:Time.span ->
    ?on_starve:(unit -> unit) ->
    ?starve_floor:Time.span ->
    ?starve_cap:Time.span ->
    unit ->
    t
  (** [create eng ~on_report ()] invokes [on_report] whenever feedback
      resolves outstanding data.  A maintenance timer declares data lost
      (Persistent) when nothing has been heard for
      [max(2·srtt, timeout_floor)] (floor default 500 ms).

      With [~on_starve], the same timer calls it to solicit the receiver
      when feedback has starved for [starve_floor] (default 200 ms) while
      data is outstanding, backing off exponentially (doubling up to
      [starve_cap], default 3.2 s) until feedback is heard again —
      feedback may be the only thing the network is losing. *)

  val next_seq : t -> int
  (** Sequence number to stamp on the next data packet. *)

  val on_transmit : t -> bytes:int -> int
  (** Record a transmission; returns the sequence number consumed. *)

  val on_ack : t -> max_seq:int -> count:int -> bytes:int -> ts_echo:Time.t -> unit
  (** Process incoming feedback; may emit one or more reports. *)

  val resync : t -> unit
  (** The receiver's acknowledgment state is gone (e.g. its CM agent
      crashed and restarted): declare everything outstanding lost with one
      Persistent report and fast-forward past it, so the sender backs off
      to its floor and restarts cleanly instead of wedging on
      acknowledgments that will never come. *)

  val solicits : t -> int
  (** Starvation solicitations issued (see [on_starve]). *)

  val outstanding_packets : t -> int
  (** Transmitted packets not yet resolved. *)

  val outstanding_bytes : t -> int
  (** Transmitted bytes not yet resolved. *)

  val srtt : t -> Time.span option
  (** Smoothed RTT from ack echoes. *)

  val shutdown : t -> unit
  (** Stop the maintenance timer. *)
end
