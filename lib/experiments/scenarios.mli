(** Fault-injection scenario experiments (the dynamics subsystem's
    experiment family).

    Each canned scenario — Gilbert–Elliott burst loss, a 2 s link outage,
    and a sawtooth bandwidth renegotiation — is run against two CM
    applications: a TCP/CM bulk transfer and the ALF layered streaming
    source of Figs. 8–9.  Every run reports goodput before / during the
    fault and the {b recovery time}: how long after the fault clears until
    a 500 ms goodput bin again reaches 80 % of the pre-fault mean.

    Results are emitted as JSON via {!Exp_common.Json}; with a fixed seed
    the serialized output is byte-identical across runs. *)

open Cm_util
open Netsim

type scenario_id = Burst_loss | Outage | Sawtooth
type app_id = Tcp_cm_bulk | Layered_stream

type result = {
  r_scenario : string;
  r_app : string;
  r_duration : Time.span;
  r_fault_start : Time.t;  (** First disruption start. *)
  r_fault_clear : Time.t;  (** Last disruption end — recovery clock zero. *)
  r_goodput_bps : float;  (** Whole-run application goodput. *)
  r_pre_bps : float;  (** Mean binned goodput in [warmup, fault_start). *)
  r_fault_bps : float;  (** Mean binned goodput while the fault is active. *)
  r_recovery : Time.span option;
      (** Time from fault clearance to the end of the first 500 ms bin at
          ≥ 80 % of [r_pre_bps]; [None] if the run never recovers. *)
  r_layer_switches : int option;  (** Layered app only. *)
  r_stats : Link.stats;  (** Forward-link counters (drop breakdown). *)
}

val scenario_name : scenario_id -> string

type via = Handwritten | Dsl
(** How the pipe and its fault schedule are constructed: the original
    {!Netsim.Topology.pipe} + [Scenario.make] path, or the same shape
    authored in the spec DSL and compiled through
    [Cm_spec.Check]/[Cm_spec.Build].  Both produce byte-identical JSON —
    the parity proof for the spec compiler (tested in [test_spec]). *)

val spec_of : scenario_id -> Cm_spec.Spec.t
(** The DSL source of the pipe + fault schedule for one scenario. *)

val run_one : ?via:via -> Exp_common.params -> scenario:scenario_id -> app:app_id -> result
(** Run one (scenario, application) cell on a fresh 8 Mbit/s, 20 ms pipe.
    Default [via]: [Handwritten]. *)

val run : ?via:via -> Exp_common.params -> result list
(** The full 3 × 2 scenario/application matrix. *)

val result_json : result -> Exp_common.Json.t
val to_json : Exp_common.params -> result list -> Exp_common.Json.t

val print : Exp_common.params -> result list -> unit
(** Header plus the {!to_json} document on one line. *)
