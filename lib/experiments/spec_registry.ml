type entry = {
  name : string;
  provenance : string;
  specs : (string * Cm_spec.Spec.t) list;  (* sub-spec name → spec *)
}

let entries =
  [
    {
      name = "scenarios";
      provenance = "dsl (parity-proven against the handwritten builder)";
      specs =
        List.map
          (fun id -> (Scenarios.scenario_name id, Scenarios.spec_of id))
          [ Scenarios.Burst_loss; Scenarios.Outage; Scenarios.Sawtooth ];
    };
    { name = "fattree"; provenance = "dsl"; specs = [ ("fattree", Fattree.spec) ] };
    { name = "cdn_edge"; provenance = "dsl"; specs = [ ("cdn_edge", Cdn_edge.spec) ] };
    { name = "cellular"; provenance = "dsl"; specs = [ ("cellular", Cellular.spec) ] };
  ]

let find name = List.find_opt (fun e -> e.name = name) entries

let provenance_of name =
  match find name with Some e -> e.provenance | None -> "handwritten"
