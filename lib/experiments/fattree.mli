(** Fat-tree incast family (spec-DSL authored).

    A k=4 fat-tree (16 hosts, 20 routers) carrying two flow groups: a
    15-sender incast of 128 KiB blocks into [h0] at t=100 ms, and a
    cross-pod shuffle wave (pod 1 → h12, 512 KiB each, 10 ms stagger) at
    t=2 s.  The topology, groups and timing are authored entirely in
    {!Cm_spec.Spec} and compiled through the checker/builder — the
    family doubles as the DSL's datacenter fan-in exercise.  Seeded runs
    emit byte-identical JSON. *)

open Cm_util
open Netsim

val spec : Cm_spec.Spec.t
(** The family's DSL source. *)

type group_result = {
  gr_name : string;
  gr_flows : int;
  gr_done : int;
  gr_first_done : Time.t;
  gr_last_done : Time.t;
  gr_mean_s : float;
  gr_goodput_bps : float;  (** Aggregate: total bytes / (last done − group start). *)
}

type result = { r_groups : group_result list; r_edge : Link.stats }
(** [r_edge]: the incast bottleneck, the edge-router → h0 access link. *)

val run : Exp_common.params -> result
val to_json : Exp_common.params -> result -> Exp_common.Json.t
val print : Exp_common.params -> result -> unit
