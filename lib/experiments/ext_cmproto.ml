open Cm_util
open Eventsim
open Netsim

type row = {
  design : string;
  us_per_packet : float;
  ops : (string * float) list;
}

let size = 168
let window = 32

let ops_of meter n =
  List.filter_map
    (fun kind ->
      let c = Libcm.Ops.count meter kind in
      if c = 0 then None
      else Some (Libcm.Ops.to_string kind, float_of_int c /. float_of_int n))
    Libcm.Ops.all

(* The CM-protocol sender: same windowed workload as Fig. 6's Buffered
   variant, but acknowledgment happens kernel-to-kernel. *)
let run_cmproto params ~n =
  let engine = Exp_common.create_engine params () in
  let rng = Rng.create ~seed:params.Exp_common.seed in
  let net =
    Topology.pipe engine ~bandwidth_bps:100e6 ~delay:(Time.us 50) ~qdisc_limit:500
      ~reverse_qdisc_limit:500 ~rng ~costs:Costs.pentium3 ()
  in
  let costs = Host.costs net.Topology.a in
  let cm = Cm.create engine ~mtu:(size + Cmproto.header_bytes) () in
  Cm.attach cm net.Topology.a;
  let lib = Libcm.create net.Topology.a cm () in
  let meter = Libcm.meter lib in
  (* kernel costs of the protocol itself, charged before the agents run:
     the sender pays one interrupt + CM work per feedback packet *)
  Host.add_rx_filter net.Topology.a (fun pkt ->
      (match pkt.Packet.payload with
      | Cmproto.Feedback _ ->
          Cpu.charge (Host.cpu net.Topology.a) (costs.Costs.intr_rx + costs.Costs.cm_op)
      | _ -> ());
      Some pkt);
  let agent = Cmproto.Sender_agent.install net.Topology.a cm in
  let _receiver = Cmproto.Receiver_agent.install net.Topology.b ~ack_every:1 () in
  let session =
    Cmproto.Session.create agent ~host:net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ~queue_limit_pkts:(window * 2) ()
  in
  (* the application's only boundary crossing: the send syscall *)
  Host.add_tx_hook net.Topology.a (fun pkt ->
      match pkt.Packet.payload with
      | Cmproto.Data _ -> Libcm.Ops.charge meter ~bytes:size Libcm.Ops.Send
      | _ -> ());
  let fed = ref 0 in
  let pump = Timer.create engine ~callback:(fun () ->
      while !fed < n && Cmproto.Session.queued session < window do
        incr fed;
        Cmproto.Session.send session size
      done)
  in
  Timer.start_periodic pump (Time.us 200);
  let t0 = Engine.now engine in
  let t_end = ref None in
  let guard = ref 0 in
  while !t_end = None && !guard < 4_000 do
    incr guard;
    Engine.run_for engine (Time.ms 10);
    if
      !fed >= n
      && Cmproto.Session.packets_sent session >= n
      && Cmproto.Session.unresolved_packets session = 0
    then t_end := Some (Engine.now engine)
  done;
  Timer.stop pump;
  let finish = match !t_end with Some t -> t | None -> Engine.now engine in
  (Time.to_float_us (Time.diff finish t0) /. float_of_int n, meter)

let run params =
  let n = 20_000 in
  let buffered_us, buffered_meter =
    Fig6.measure_variant params Fig6.Buffered ~size ~n
  in
  let cmproto_us, cmproto_meter = run_cmproto params ~n in
  [
    {
      design = "Buffered (application feedback)";
      us_per_packet = buffered_us;
      ops = ops_of buffered_meter n;
    };
    {
      design = "CM protocol (kernel feedback)";
      us_per_packet = cmproto_us;
      ops = ops_of cmproto_meter n;
    };
  ]

let print rows =
  Exp_common.print_header
    "Extension: CM protocol (kernel-to-kernel feedback) vs application feedback, 168 B packets";
  List.iter
    (fun r ->
      Exp_common.print_row (Printf.sprintf "%-36s %8.1f us/packet" r.design r.us_per_packet);
      List.iter
        (fun (name, per) -> Exp_common.print_row (Printf.sprintf "    %-16s %6.2f /pkt" name per))
        r.ops)
    rows;
  match rows with
  | [ app; proto ] ->
      Exp_common.print_row
        (Printf.sprintf
           "per-packet saving: %.1f us (%.0f%%); the sending app's only crossing is send()"
           (app.us_per_packet -. proto.us_per_packet)
           ((app.us_per_packet -. proto.us_per_packet) /. app.us_per_packet *. 100.))
  | _ -> ()
