(** Endpoint-fault experiment family.

    Two honest TCP/CM bulk transfers share a bottleneck (and a
    destination macroflow) with four greedy libcm UDP applications.
    {!Cm_dynamics.App_faults} drives the UDP apps into misbehaviour —
    crash, feedback silence, fabricated no-loss claims, grant hoarding,
    double notifies, and a concurrent storm of all four — while the CM
    runs with the feedback watchdog and misbehaviour auditor enabled and
    {!Cm.Audit} sweeps the structural invariants every 500 ms.

    Reported per case (deterministic JSON for a fixed seed): the injected
    schedule, defense latency (first quarantine or reap), the rejection /
    reclamation counters, per-offender fate, honest goodput before the
    fault and after the 10 s recovery deadline, the recovery ratio
    against the fault-free baseline, and the invariant-audit verdict. *)

open Cm_util

type case = Baseline | Crash | Silence | Lie | Hoard | Double_notify | Storm

val all_cases : case list
val case_name : case -> string

type offender_report = {
  o_name : string;
  o_alive : bool;  (** process still up — [false] after a crash *)
  o_flow_open : bool;  (** CM flow still in the flow table *)
  o_suspicion : int option;  (** [None] once the flow is gone *)
  o_quarantined : bool option;
  o_sent_pkts : int;
}

type result = {
  r_case : string;
  r_faults : string list;  (** injected steps, ["target:kind"] *)
  r_fault_at : Time.t option;  (** earliest onset *)
  r_first_defense : Time.t option;
      (** first quarantine or reap (100 ms polling resolution) *)
  r_counters : Cm.counters;
  r_watchdog_fires : int;
  r_released_grant_bytes : int;
  r_offenders : offender_report list;
  r_honest_pre_bps : float;  (** combined TCP goodput, warmup → fault *)
  r_honest_post_bps : float;  (** combined TCP goodput, deadline → end *)
  r_recovery_ratio : float;  (** post goodput vs the baseline run's *)
  r_audit_runs : int;
  r_audit_violations : string list;  (** deduplicated, discovery order *)
}

val run_case : Exp_common.params -> case -> result
(** One 20 s simulated run of the given case ([r_recovery_ratio] is 0
    until {!run} fills it in against the baseline). *)

val run : Exp_common.params -> result list
(** All cases, baseline first; recovery ratios normalized to the
    baseline's post-window goodput. *)

val to_json : Exp_common.params -> result list -> Exp_common.Json.t
val print : Exp_common.params -> result list -> unit
