(** Instrumented experiment runs ([cm_expt trace]).

    Runs one experiment with telemetry wired up ({!Exp_common.instrument})
    and exports the four artifacts: the structured trace as JSONL and as a
    Chrome [trace_event] document (loadable in Perfetto), the CM-internals
    time series as CSV, and the metrics snapshot as JSON.

    Same experiment + same seed ⇒ byte-identical artifacts (virtual-time
    stamps, [%.6g] floats) — checked in [test_telemetry] and in CI. *)

val experiments : string list
(** Experiments that can run instrumented (e.g. ["fig6"], ["fig8"],
    ["scenario_outage"]). *)

val capture : expt:string -> seed:int -> Telemetry.t list
(** Run one experiment instrumented and return the telemetry instances it
    captured, oldest first.  Raises [Invalid_argument] on an unknown
    experiment name. *)

val ensure_dir : string -> unit
(** Create [dir] if it does not exist (shared with [Report_run]). *)

val write_file : string -> string -> unit
(** Binary-mode whole-file write (shared with [Report_run]). *)

type artifact = { a_name : string; a_path : string; a_bytes : int }
(** One file written by {!run}. *)

val run : ?out_dir:string -> expt:string -> seed:int -> unit -> artifact list
(** Run instrumented and write [<expt>.trace.jsonl], [<expt>.chrome.json],
    [<expt>.series.csv] and [<expt>.metrics.json] into [out_dir] (default
    ["traces"], created if missing). *)

val print : artifact list -> unit
(** Human summary of what was written. *)
