open Cm_util
open Eventsim
open Netsim

type row = { request : int; linux_ms : float; cm_ms : float }

let run_side params ~use_cm ~count ~file_bytes =
  let engine = Exp_common.create_engine params () in
  let rng = Rng.create ~seed:params.Exp_common.seed in
  (* wide-area path: ~10 Mbps available, 75 ms RTT like the MIT-Utah vBNS
     path of the paper *)
  let net =
    Topology.pipe engine ~bandwidth_bps:10e6 ~delay:(Time.us 37_500) ~qdisc_limit:100 ~rng ()
  in
  (* the SERVER is the data sender: the CM (when enabled) lives on host b *)
  let server_driver =
    if use_cm then begin
      let cm = Cm.create engine () in
      Cm.attach cm net.Topology.b;
      ignore
        (Exp_common.instrument params ~engine
           ~links:[ ("ba", net.Topology.ba); ("ab", net.Topology.ab) ]
           ~cm ());
      Tcp.Conn.Cm_driven cm
    end
    else Tcp.Conn.Native
  in
  let _server =
    Cm_apps.Web.server net.Topology.b ~port:80 ~file_bytes ~driver:server_driver ()
  in
  let results = ref [] in
  Cm_apps.Web.sequential_fetches net.Topology.a
    ~dst:(Addr.endpoint ~host:1 ~port:80)
    ~expect_bytes:file_bytes ~count ~gap:(Time.ms 500)
    ~on_done:(fun rs -> results := rs)
    ();
  Engine.run_for engine (Time.sec (float_of_int count *. 2.) );
  match !results with
  | [] -> failwith "fig7: fetches did not complete"
  | rs -> List.map (fun r -> Time.to_float_ms r.Cm_apps.Web.duration) rs

let run ?(count = 9) ?(file_bytes = 128 * 1024) params =
  let linux = run_side params ~use_cm:false ~count ~file_bytes in
  let cm = run_side params ~use_cm:true ~count ~file_bytes in
  List.mapi (fun i (l, c) -> { request = i + 1; linux_ms = l; cm_ms = c })
    (List.combine linux cm)

let print rows =
  Exp_common.print_header
    "Figure 7: sequential 128KB fetches, 500 ms apart (completion time, ms)";
  Exp_common.print_row (Printf.sprintf "%-10s %14s %14s" "request#" "TCP/Linux" "TCP/CM");
  List.iter
    (fun r ->
      Exp_common.print_row (Printf.sprintf "%-10d %14.1f %14.1f" r.request r.linux_ms r.cm_ms))
    rows
