(** Figure 7: sharing congestion state across sequential connections.

    A client fetches the same 128 KB file nine times, each request started
    500 ms after the previous one, over a wide-area path.  With a plain
    server every connection slow-starts from scratch; with a CM server the
    per-destination macroflow retains the congestion window and RTT
    estimate, so later fetches skip slow start.  The paper reports ~40 %
    faster completions for the later requests, and a slightly {e slower}
    first CM request (initial window 1 vs Linux's 2). *)

type row = {
  request : int;  (** 1-based request number. *)
  linux_ms : float;  (** Completion time with the native server, ms. *)
  cm_ms : float;  (** Completion time with the TCP/CM server, ms. *)
}

val run : ?count:int -> ?file_bytes:int -> Exp_common.params -> row list
(** Defaults: 9 requests of 128 KB. *)

val run_side : Exp_common.params -> use_cm:bool -> count:int -> file_bytes:int -> float list
(** One side of the comparison (completion times, ms) — exposed so the
    trace driver can run just the instrumented CM side. *)

val print : row list -> unit
(** Print paper-shaped rows. *)
