open Cm_util
open Eventsim
open Netsim
module Spec = Cm_spec.Spec
module Check = Cm_spec.Check
module Build = Cm_spec.Build
module Launch = Cm_spec.Launch

(* CDN edge: two edge servers, each with ~a thousand access clients
   behind a shared 100 Mbit/s trunk.  A small baseline population
   fetches steadily from t=0; at t=2 s a flash crowd — every remaining
   client — piles on within one second.  The interesting outputs are the
   latency split (baseline vs. crowd) and the trunk's queue behaviour;
   each server's CM aggregates congestion state across all of its
   clients' connections. *)

let n_per_server = 1024
let n_baseline = 64
let object_bytes = 50 * 1024
let crowd_start = Time.sec 2.
let duration = Time.sec 20.
let servers = [ "s0"; "s1" ]

let spec =
  let all i = List.init n_per_server (fun j -> Spec.client_name ~server:i ~index:j ()) in
  let baseline i = List.filteri (fun j _ -> j < n_baseline) (all i) in
  let crowd i = List.filteri (fun j _ -> j >= n_baseline) (all i) in
  let fetch = Spec.web_fetch ~object_bytes ~count:3 ~gap:(Time.ms 600) in
  let one_fetch = Spec.web_fetch ~object_bytes ~count:1 ~gap:(Time.ms 600) in
  Spec.(
    par
      [
        par (List.map node servers);
        clients ~n:n_per_server ~per:servers ~bw:4e6 ~lat:(Time.ms 5) ~queue:50
          ~trunk_bw:100e6 ~trunk_lat:(Time.ms 2) ~trunk_queue:200 ();
        par
          (List.mapi
             (fun i s ->
               par
                 [
                   flows ~name:("baseline-" ^ s) ~src:(baseline i) ~dst:s ~port:80 ~app:fetch
                     ~stagger:(Time.ms 15) ();
                   flows ~name:("crowd-" ^ s) ~src:(crowd i) ~dst:s ~port:80 ~app:one_fetch
                     ~start:crowd_start ~stagger:(Time.ms 1) ();
                 ])
             servers);
      ])

type cohort = {
  c_name : string;
  c_clients : int;
  c_done : int;  (** Clients whose whole fetch sequence finished. *)
  c_fetches : int;
  c_lat_mean_s : float;
  c_lat_p50_s : float;
  c_lat_p95_s : float;
  c_lat_max_s : float;
}

type result = { r_cohorts : cohort list; r_trunks : (string * Link.stats) list }

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(Stdlib.min (n - 1) (int_of_float (p *. float_of_int n)))

let cohort_of (r : Launch.running) =
  let lats =
    Array.to_list r.Launch.outcomes
    |> List.concat_map (function
         | Launch.Fetched { fetches; _ } ->
             List.map (fun (f : Cm_apps.Web.fetch_result) -> Time.to_float_s f.Cm_apps.Web.duration) fetches
         | _ -> [])
  in
  let sorted = Array.of_list lats in
  Array.sort compare sorted;
  let n = Array.length sorted in
  {
    c_name = r.Launch.rg.Check.g_name;
    c_clients = Array.length r.Launch.outcomes;
    c_done = Launch.done_count r;
    c_fetches = n;
    c_lat_mean_s = (if n = 0 then 0. else Array.fold_left ( +. ) 0. sorted /. float_of_int n);
    c_lat_p50_s = percentile sorted 0.5;
    c_lat_p95_s = percentile sorted 0.95;
    c_lat_max_s = (if n = 0 then 0. else sorted.(n - 1));
  }

let run params =
  let engine = Exp_common.create_engine params () in
  let rng = Rng.create ~seed:params.Exp_common.seed in
  let ir = Check.elaborate_exn spec in
  let net = Build.instantiate ~rng engine ir in
  let trunk_names = List.mapi (fun i s -> Printf.sprintf "%s->cr%d" s i) servers in
  let tel =
    Exp_common.instrument params ~engine
      ~links:(List.map (fun n -> (n, Build.link net n)) trunk_names)
      ()
  in
  (* CMs live at the data senders: the edge servers *)
  let cms = Hashtbl.create 4 in
  let driver_for host =
    let id = Host.id host in
    match Hashtbl.find_opt cms id with
    | Some cm -> Some (Tcp.Conn.Cm_driven cm)
    | None ->
        if List.exists (fun s -> Build.host net s == host) servers then begin
          let cm = Exp_common.create_cm params engine () in
          Cm.attach cm host;
          Hashtbl.replace cms id cm;
          Some (Tcp.Conn.Cm_driven cm)
        end
        else None (* clients: stock TCP for their tiny requests *)
  in
  let running = Launch.run net ~driver_for () in
  Engine.run_for engine duration;
  Option.iter Telemetry.stop tel;
  {
    r_cohorts = List.map cohort_of running;
    r_trunks = List.map (fun n -> (n, Link.stats (Build.link net n))) trunk_names;
  }

let to_json params r =
  let open Exp_common.Json in
  Obj
    [
      ("seed", Int params.Exp_common.seed);
      ("clients_per_server", Int n_per_server);
      ("object_bytes", Int object_bytes);
      ("crowd_start_s", Float (Time.to_float_s crowd_start));
      ( "cohorts",
        List
          (List.map
             (fun c ->
               Obj
                 [
                   ("name", Str c.c_name);
                   ("clients", Int c.c_clients);
                   ("done", Int c.c_done);
                   ("fetches", Int c.c_fetches);
                   ("latency_mean_s", Float c.c_lat_mean_s);
                   ("latency_p50_s", Float c.c_lat_p50_s);
                   ("latency_p95_s", Float c.c_lat_p95_s);
                   ("latency_max_s", Float c.c_lat_max_s);
                 ])
             r.r_cohorts) );
      ( "trunks",
        List
          (List.map
             (fun (name, (s : Link.stats)) ->
               Obj
                 [
                   ("link", Str name);
                   ("delivered_pkts", Int s.Link.delivered_pkts);
                   ("queue_drops", Int s.Link.queue_drops);
                 ])
             r.r_trunks) );
    ]

let print params r =
  Exp_common.print_header
    "CDN edge: flash crowd over two edge servers, spec-DSL authored (JSON)";
  Exp_common.print_row (Exp_common.Json.to_string (to_json params r))
