open Cm_util
open Eventsim
open Netsim
module Spec = Cm_spec.Spec
module Check = Cm_spec.Check
module Build = Cm_spec.Build
module Launch = Cm_spec.Launch

(* k=4 datacenter fat-tree with a classic incast: every other host sends
   a 128 KiB block to h0 at the same instant, then a cross-pod shuffle
   wave follows.  Authored entirely in the spec DSL — the family exists
   to exercise fan-in through the fabric and the edge link's queue. *)

let k = 4
let block = 128 * 1024
let incast_start = Time.ms 100
let shuffle_start = Time.sec 2.
let duration = Time.sec 12.

let spec =
  let hosts = Spec.fat_tree_hosts ~k in
  let senders = List.tl hosts in
  (* pod 1's hosts each push a block to a distinct pod-3 host *)
  let pod1 = List.filteri (fun i _ -> i >= 4 && i < 8) hosts in
  Spec.(
    par
      [
        fat_tree ~k ~host_bw:100e6 ~fabric_bw:100e6 ~lat:(Time.us 10) ~queue:64 ();
        flows ~name:"incast" ~src:senders ~dst:"h0" ~port:5000 ~app:(bulk ~bytes:block)
          ~start:incast_start ();
        flows ~name:"shuffle" ~src:pod1 ~dst:"h12" ~port:6000 ~app:(bulk ~bytes:(4 * block))
          ~start:shuffle_start ~stagger:(Time.ms 10) ();
      ])

type group_result = {
  gr_name : string;
  gr_flows : int;
  gr_done : int;
  gr_first_done : Time.t;
  gr_last_done : Time.t;
  gr_mean_s : float;
  gr_goodput_bps : float;  (** Aggregate: total bytes / (last done − group start). *)
}

type result = { r_groups : group_result list; r_edge : Link.stats }
(** [r_edge]: the incast bottleneck, the edge-router → h0 access link. *)

let run params =
  let engine = Exp_common.create_engine params () in
  let rng = Rng.create ~seed:params.Exp_common.seed in
  let ir = Check.elaborate_exn spec in
  let net = Build.instantiate ~rng engine ir in
  let tel = Exp_common.instrument params ~engine ~links:[ ("edge-h0", Build.link net "p0e0->h0") ] () in
  (* one CM per host, created lazily as flows launch on it *)
  let cms = Hashtbl.create 16 in
  let cm_for host =
    match Hashtbl.find_opt cms (Host.id host) with
    | Some cm -> cm
    | None ->
        let cm = Exp_common.create_cm params engine () in
        Cm.attach cm host;
        Hashtbl.replace cms (Host.id host) cm;
        cm
  in
  let running =
    Launch.run net ~driver_for:(fun h -> Some (Tcp.Conn.Cm_driven (cm_for h))) ()
  in
  Engine.run_for engine duration;
  Option.iter Telemetry.stop tel;
  let group_result (r : Launch.running) =
    let start = r.Launch.rg.Check.g_start in
    let dones =
      Array.to_list r.Launch.outcomes
      |> List.filter_map (function
           | Launch.Bulk_done { at; result } -> Some (at, result)
           | _ -> None)
    in
    let durations = List.map (fun (at, _) -> Time.to_float_s (Time.diff at start)) dones in
    let bytes =
      List.fold_left (fun acc (_, (b : Cm_apps.Bulk.result)) -> acc + b.Cm_apps.Bulk.transferred) 0 dones
    in
    let last = List.fold_left (fun acc (at, _) -> Time.max acc at) start dones in
    let first = List.fold_left (fun acc (at, _) -> Time.min acc at) last dones in
    {
      gr_name = r.Launch.rg.Check.g_name;
      gr_flows = Array.length r.Launch.outcomes;
      gr_done = Launch.done_count r;
      gr_first_done = first;
      gr_last_done = last;
      gr_mean_s =
        (match durations with
        | [] -> 0.
        | ds -> List.fold_left ( +. ) 0. ds /. float_of_int (List.length ds));
      gr_goodput_bps =
        (if last > start then float_of_int (bytes * 8) /. Time.to_float_s (Time.diff last start)
         else 0.);
    }
  in
  { r_groups = List.map group_result running; r_edge = Link.stats (Build.link net "p0e0->h0") }

let to_json params r =
  let open Exp_common.Json in
  Obj
    [
      ("seed", Int params.Exp_common.seed);
      ("k", Int k);
      ("block_bytes", Int block);
      ( "groups",
        List
          (List.map
             (fun g ->
               Obj
                 [
                   ("name", Str g.gr_name);
                   ("flows", Int g.gr_flows);
                   ("done", Int g.gr_done);
                   ("first_done_s", Float (Time.to_float_s g.gr_first_done));
                   ("last_done_s", Float (Time.to_float_s g.gr_last_done));
                   ("mean_completion_s", Float g.gr_mean_s);
                   ("goodput_kbps", Float (Exp_common.kbps g.gr_goodput_bps));
                 ])
             r.r_groups) );
      ( "edge_link",
        Obj
          [
            ("delivered_pkts", Int r.r_edge.Link.delivered_pkts);
            ("queue_drops", Int r.r_edge.Link.queue_drops);
            ("ecn_marks", Int r.r_edge.Link.ecn_marks);
          ] );
    ]

let print params r =
  Exp_common.print_header "Fat-tree (k=4) incast + cross-pod shuffle, spec-DSL authored (JSON)";
  Exp_common.print_row (Exp_common.Json.to_string (to_json params r))
