open Cm_util
open Eventsim
open Netsim

type result = { linux_setup_us : float; cm_setup_us : float; cm_open_close_ns : float }

let setup_time params ~use_cm =
  let engine = Exp_common.create_engine params () in
  let rng = Rng.create ~seed:params.Exp_common.seed in
  let net =
    Topology.pipe engine ~bandwidth_bps:100e6 ~delay:(Time.us 100) ~rng ~costs:Costs.pentium3 ()
  in
  let driver =
    if use_cm then begin
      let cm = Cm.create engine () in
      Cm.attach cm net.Topology.a;
      Tcp.Conn.Cm_driven cm
    end
    else Tcp.Conn.Native
  in
  let _l = Tcp.Conn.listen net.Topology.b ~port:80 ~on_accept:(fun _ -> ()) () in
  let established_at = ref None in
  let t0 = Engine.now engine in
  let conn = Tcp.Conn.connect net.Topology.a ~dst:(Addr.endpoint ~host:1 ~port:80) ~driver () in
  Tcp.Conn.on_established conn (fun () -> established_at := Some (Engine.now engine));
  Engine.run_for engine (Time.ms 100);
  match !established_at with
  | Some t -> Time.to_float_us (Time.diff t t0)
  | None -> failwith "micro: connection did not establish"

let open_close_cost () =
  (* real wall-clock cost of the CM's own bookkeeping *)
  let engine = Engine.create () in
  let cm = Cm.create engine () in
  let n = 10_000 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    let key =
      Addr.flow
        ~src:(Addr.endpoint ~host:0 ~port:(1000 + (i mod 30_000)))
        ~dst:(Addr.endpoint ~host:1 ~port:80)
        ~proto:Addr.Tcp ()
    in
    let fid = Cm.open_flow cm key in
    Cm.close_flow cm fid
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n

let run params =
  {
    linux_setup_us = setup_time params ~use_cm:false;
    cm_setup_us = setup_time params ~use_cm:true;
    cm_open_close_ns = open_close_cost ();
  }

let print r =
  Exp_common.print_header "Microbenchmark (§4.1): connection establishment";
  Exp_common.print_row
    (Printf.sprintf "TCP/Linux connect -> established: %10.1f us" r.linux_setup_us);
  Exp_common.print_row
    (Printf.sprintf "TCP/CM    connect -> established: %10.1f us" r.cm_setup_us);
  Exp_common.print_row
    (Printf.sprintf "cm_open + cm_close bookkeeping:   %10.0f ns (host wall clock)"
       r.cm_open_close_ns)
