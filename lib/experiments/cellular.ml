open Cm_util
open Eventsim
open Netsim
module Spec = Cm_spec.Spec
module Check = Cm_spec.Check
module Build = Cm_spec.Build
module Launch = Cm_spec.Launch
module Scenario = Cm_dynamics.Scenario

(* Cellular last mile: a server streams the layered app to one UE behind
   a base station whose downlink ramps, flaps (a handoff) and recovers —
   the scenario shape the in-network-adaptation comparison needs.  The
   whole topology, schedule and flow group are spec DSL; phases compose
   with [seq]. *)

let layers = [| 0.5e6; 1e6; 2e6; 4e6 |]
let duration = Time.sec 30.

let phases =
  Spec.(
    seq
      [
        ("steady", Time.sec 8., []);
        ( "degrade",
          Time.sec 8.,
          faults ~target:"cell.down"
            [ (Time.zero, Scenario.Ramp_bandwidth { to_bps = 1.5e6; over = Time.sec 4.; steps = 8 }) ]
        );
        ( "handoff",
          Time.sec 6.,
          faults ~target:"cell.down"
            [ (Time.sec 1., Scenario.Flap { down = Time.ms 300; up = Time.ms 1200; cycles = 3 }) ]
        );
        ( "recover",
          Time.sec 8.,
          faults ~target:"cell.down"
            [ (Time.sec 1., Scenario.Ramp_bandwidth { to_bps = 8e6; over = Time.sec 3.; steps = 6 }) ]
        );
      ])

let spec =
  Spec.(
    par
      [
        node "srv";
        router "bs";
        node "ue";
        duplex ~name:"backhaul" ~rev_name:"backhaul.up" ~bw:50e6 ~lat:(Time.ms 10) "srv" "bs";
        link ~name:"cell.down" ~queue:64 ~bw:8e6 ~lat:(Time.ms 30) "bs" "ue";
        link ~name:"cell.up" ~queue:64 ~bw:2e6 ~lat:(Time.ms 30) "ue" "bs";
        flows ~name:"stream" ~src:[ "srv" ] ~dst:"ue" ~port:5004
          ~app:(layered ~packet_bytes:1000 ~layers ())
          ~stop:duration ();
        phases;
      ])

type result = {
  r_bytes : int;
  r_packets : int;
  r_goodput_bps : float;
  r_layer_switches : int;
  r_final_layer : int;
  r_layer_occupancy : float array;  (** Fraction of samples spent at each layer rate. *)
  r_down_stats : Link.stats;
}

let run params =
  let engine = Exp_common.create_engine params () in
  let rng = Rng.create ~seed:params.Exp_common.seed in
  let ir = Check.elaborate_exn spec in
  let net = Build.instantiate ~rng engine ir in
  let tel =
    Exp_common.instrument params ~engine ~links:[ ("cell.down", Build.link net "cell.down") ] ()
  in
  let srv = Build.host net "srv" in
  let cm = Exp_common.create_cm params engine ~mtu:1000 () in
  Cm.attach cm srv;
  let lib = Libcm.create srv cm () in
  let running = Launch.run net ~driver_for:(fun _ -> None) ~libcm_for:(fun _ -> lib) () in
  let sc = Build.scenario ~name:"cellular" ir in
  Cm_dynamics.Scenario.compile engine ~rng ~links:(Build.links_alist net) sc;
  Engine.run_for engine duration;
  Option.iter Telemetry.stop tel;
  let source =
    match (Launch.find running "stream").Launch.outcomes.(0) with
    | Launch.Streaming s -> s
    | _ -> assert false
  in
  let points = Timeline.points (Cm_apps.Layered.layer_timeline source) in
  let switches =
    match points with
    | [] -> 0
    | p0 :: rest ->
        fst
          (List.fold_left
             (fun (n, prev) (p : Timeline.point) ->
               if p.Timeline.value <> prev then (n + 1, p.Timeline.value) else (n, prev))
             (0, p0.Timeline.value) rest)
  in
  let occupancy = Array.make (Array.length layers) 0 in
  List.iter
    (fun (p : Timeline.point) ->
      Array.iteri (fun i r -> if p.Timeline.value = r then occupancy.(i) <- occupancy.(i) + 1) layers)
    points;
  let samples = List.length points in
  let bytes = Cm_apps.Layered.bytes_sent source in
  {
    r_bytes = bytes;
    r_packets = Cm_apps.Layered.packets_sent source;
    r_goodput_bps = float_of_int (bytes * 8) /. Time.to_float_s duration;
    r_layer_switches = switches;
    r_final_layer = Cm_apps.Layered.current_layer source;
    r_layer_occupancy =
      Array.map
        (fun n -> if samples = 0 then 0. else float_of_int n /. float_of_int samples)
        occupancy;
    r_down_stats = Link.stats (Build.link net "cell.down");
  }

let to_json params r =
  let open Exp_common.Json in
  Obj
    [
      ("seed", Int params.Exp_common.seed);
      ("layers_bps", List (Array.to_list (Array.map (fun l -> Float l) layers)));
      ("duration_s", Float (Time.to_float_s duration));
      ("bytes_sent", Int r.r_bytes);
      ("packets_sent", Int r.r_packets);
      ("goodput_kbps", Float (Exp_common.kbps r.r_goodput_bps));
      ("layer_switches", Int r.r_layer_switches);
      ("final_layer", Int r.r_final_layer);
      ("layer_occupancy", List (Array.to_list (Array.map (fun f -> Float f) r.r_layer_occupancy)));
      ( "cell_down",
        Obj
          [
            ("delivered_pkts", Int r.r_down_stats.Link.delivered_pkts);
            ("queue_drops", Int r.r_down_stats.Link.queue_drops);
            ("down_drops", Int r.r_down_stats.Link.down_drops);
          ] );
    ]

let print params r =
  Exp_common.print_header
    "Cellular last mile: layered stream vs. ramps and handoff flaps, spec-DSL authored (JSON)";
  Exp_common.print_row (Exp_common.Json.to_string (to_json params r))
