open Cm_util
open Eventsim
open Netsim

type row = {
  setup : string;
  per_object_ms : float array;
  first_chunk_ms : float array;
  first_ms : float;
  total_ms : float;
  spread_ms : float;
}

let objects = 4
let object_bytes = 64 * 1024

let make_row setup (r : Cm_apps.Phttp.result) =
  let first = Array.fold_left Float.min Float.infinity r.Cm_apps.Phttp.object_ms in
  {
    setup;
    per_object_ms = r.Cm_apps.Phttp.object_ms;
    first_chunk_ms = r.Cm_apps.Phttp.first_chunk_ms;
    first_ms = first;
    total_ms = r.Cm_apps.Phttp.total_ms;
    spread_ms = r.Cm_apps.Phttp.total_ms -. first;
  }

(* a queueing discipline that deterministically drops the data packets
   whose (1-based) index is listed — one surgical loss event, so the
   coupling it induces is unambiguous *)
let drop_listed ~drops inner =
  let count = ref 0 in
  let enqueue pkt =
    if Packet.payload_bytes pkt > 500 then begin
      incr count;
      if List.mem !count drops then Queue_disc.Dropped else inner.Queue_disc.enqueue pkt
    end
    else inner.Queue_disc.enqueue pkt
  in
  { inner with Queue_disc.enqueue; name = "drop-listed" }

let run_side _params ~use_cm ~drops =
  let engine = Exp_common.create_engine _params () in
  let a = Host.create engine ~id:0 () in
  let b = Host.create engine ~id:1 () in
  let qdisc = drop_listed ~drops (Queue_disc.droptail ~limit_pkts:100 ()) in
  let ab =
    Link.create engine ~bandwidth_bps:6e6 ~delay:(Time.ms 25) ~qdisc
      ~sink:(fun p -> Host.deliver b p)
      ()
  in
  let ba =
    Link.create engine ~bandwidth_bps:6e6 ~delay:(Time.ms 25)
      ~sink:(fun p -> Host.deliver a p)
      ()
  in
  Host.attach_route a (Link.send ab);
  Host.attach_route b (Link.send ba);
  let result = ref None in
  if use_cm then begin
    let cm = Cm.create engine () in
    Cm.attach cm a;
    Cm_apps.Phttp.cm_transfer ~src:a ~dst_host:b ~base_port:8000 ~cm ~objects ~object_bytes
      ~on_done:(fun r -> result := Some r)
      ()
  end
  else
    Cm_apps.Phttp.phttp_transfer ~src:a ~dst_host:b ~port:8000 ~objects ~object_bytes
      ~on_done:(fun r -> result := Some r)
      ();
  Engine.run_for engine (Time.sec 60.);
  match !result with
  | Some r ->
      make_row
        (if use_cm then "CM concurrent (shared macroflow)" else "P-HTTP (one TCP conn)")
        r
  | None -> failwith "sec6_phttp: transfer did not complete"

(* One loss event mid-transfer (data packets 60 and 61), late enough
   that fast retransmit can recover it.  Under P-HTTP those bytes belong
   to one object, yet in-order delivery stalls EVERY object behind the
   retransmission.  Under the CM the loss hits one or two connections;
   the others are coupled only through the shared congestion window (one
   halving), not through ordering. *)
let drops = [ 60; 61 ]

let run params =
  [
    run_side params ~use_cm:false ~drops:[];
    run_side params ~use_cm:false ~drops;
    run_side params ~use_cm:true ~drops:[];
    run_side params ~use_cm:true ~drops;
  ]

let print rows =
  Exp_common.print_header
    "Sec. 6 comparison: P-HTTP multiplexing vs CM concurrent connections (4 x 64 KB, one early loss event)";
  Exp_common.print_row
    (Printf.sprintf "%-44s %10s %10s   %s" "setup" "first ms" "total ms" "per-object ms");
  List.iteri
    (fun i r ->
      let label = if i mod 2 = 0 then r.setup ^ " [clean]" else r.setup ^ " [loss]" in
      let fmt a =
        Array.to_list a |> List.map (Printf.sprintf "%.0f") |> String.concat " "
      in
      Exp_common.print_row
        (Printf.sprintf "%-44s %10.1f %10.1f   done [%s]  first-8KB [%s]" label r.first_ms
           r.total_ms (fmt r.per_object_ms) (fmt r.first_chunk_ms)))
    rows;
  (* coupling metric: how many objects were delayed by a loss that hit
     only one object's bytes? *)
  match rows with
  | [ p0; p1; c0; c1 ] ->
      let inflation base lossy =
        let sorted a =
          let c = Array.copy a in
          Array.sort Float.compare c;
          c
        in
        let b = sorted base.per_object_ms and l = sorted lossy.per_object_ms in
        Array.mapi (fun i v -> v -. b.(i)) l
      in
      let pi = inflation p0 p1 and ci = inflation c0 c1 in
      let fmt a = Array.to_list a |> List.map (Printf.sprintf "%+.0f") |> String.concat " " in
      let span a =
        Array.fold_left Float.max 0. a -. Array.fold_left Float.min Float.infinity a
      in
      Exp_common.print_row "";
      Exp_common.print_row
        (Printf.sprintf
           "parallelism of downloads (clean first-8KB span): P-HTTP %.0f ms, CM %.0f ms"
           (span p0.first_chunk_ms) (span c0.first_chunk_ms));
      Exp_common.print_row
        (Printf.sprintf "completion shift from the loss (sorted): P-HTTP [%s], CM [%s]" (fmt pi)
           (fmt ci));
      Exp_common.print_row
        "(P-HTTP serializes delivery - later objects' first bytes wait hundreds of ms -";
      Exp_common.print_row
        " and an early object's loss delays every object behind it in the byte stream.";
      Exp_common.print_row
        " CM streams deliver in parallel and share only the congestion window, which";
      Exp_common.print_row
        " shifts all completions uniformly - the paper's sec. 6 argument.)"
  | _ -> ()
