open Cm_util
open Eventsim
open Netsim
open Cm_dynamics

(* Endpoint-fault experiment family: honest TCP/CM transfers share a
   macroflow (and a bottleneck) with greedy libcm UDP applications that
   are driven into misbehaviour by App_faults — crash, silence, lying,
   grant hoarding, double-notifying.  The CM runs with the full defenses
   (feedback watchdog + misbehaviour auditor), the invariant auditor
   sweeps the structure every 500 ms, and the result is deterministic
   JSON: defense latency, reclamation counters, and whether the honest
   flows recover their fair-share goodput. *)

type case = Baseline | Crash | Silence | Lie | Hoard | Double_notify | Storm

let all_cases = [ Baseline; Crash; Silence; Lie; Hoard; Double_notify; Storm ]

let case_name = function
  | Baseline -> "baseline"
  | Crash -> "crash"
  | Silence -> "go_silent"
  | Lie -> "lie_no_loss"
  | Hoard -> "grant_hoard"
  | Double_notify -> "double_notify"
  | Storm -> "storm"

let duration = Time.sec 20.
let warmup = Time.sec 3.
let fault_at = Time.sec 6.
let fault_spread = Time.sec 1.
let fault_hold = Time.sec 8.

(* honest flows must be back on fair share within 10 s of fault onset *)
let post_from = Time.add fault_at (Time.sec 10.)

(* the greedy UDP application *)
let packet_bytes = 1000
let depth = 32
let feedback_period = Time.ms 50
let stall_after = Time.ms 600

type offender_report = {
  o_name : string;
  o_alive : bool;  (** process still up — [false] after a crash *)
  o_flow_open : bool;  (** CM flow still in the flow table *)
  o_suspicion : int option;  (** [None] once the flow is gone *)
  o_quarantined : bool option;
  o_sent_pkts : int;
}

type result = {
  r_case : string;
  r_faults : string list;  (** injected steps, ["target:kind"] *)
  r_fault_at : Time.t option;  (** earliest onset *)
  r_first_defense : Time.t option;
      (** first quarantine or reap (100 ms polling resolution) *)
  r_counters : Cm.counters;
  r_watchdog_fires : int;
  r_released_grant_bytes : int;
  r_offenders : offender_report list;
  r_honest_pre_bps : float;  (** combined TCP goodput, warmup → fault *)
  r_honest_post_bps : float;  (** combined TCP goodput, [post_from] → end *)
  r_recovery_ratio : float;  (** post goodput vs the baseline run's *)
  r_audit_runs : int;
  r_audit_violations : string list;  (** deduplicated, discovery order *)
}

(* ---- the misbehaving-capable UDP application ---------------------------- *)

(* A windowed ALF-style sender (cf. Fig. 6): cm_request per packet, grant
   drives the send, per-packet acks, and a 50 ms feedback timer that
   cm_updates fresh acks (and resolves stalled inflight as Transient loss,
   the app-level retransmission-timeout analogue).  Every decision point
   consults its App_faults.behaviour flags. *)
type offender = {
  name : string;
  flags : App_faults.behaviour;
  lib : Libcm.t;
  fid : Cm.Cm_types.flow_id;
  socket : Udp.Socket.t;
  mutable alive : bool;
  mutable next_seq : int;
  mutable sent_pkts : int;
  mutable sent_bytes : int;
  mutable acked_bytes : int;
  mutable lost_bytes : int;
  mutable reported_bytes : int;
  mutable pending_reqs : int;
  mutable last_rtt : Time.span option;
  mutable last_progress : Time.t;
}

let make_offender engine cm host ~name ~port ~start_at =
  let lib = Libcm.create host cm () in
  let socket = Udp.Socket.create host () in
  let dst = Addr.endpoint ~host:1 ~port in
  Udp.Socket.connect socket dst;
  let key = Addr.flow ~src:(Udp.Socket.local socket) ~dst ~proto:Addr.Udp () in
  let fid = Libcm.open_flow lib key in
  let o =
    {
      name;
      flags = App_faults.behaviour ();
      lib;
      fid;
      socket;
      alive = true;
      next_seq = 0;
      sent_pkts = 0;
      sent_bytes = 0;
      acked_bytes = 0;
      lost_bytes = 0;
      reported_bytes = 0;
      pending_reqs = 0;
      last_rtt = None;
      last_progress = Time.zero;
    }
  in
  let inflight () = Stdlib.max 0 (o.sent_bytes - o.acked_bytes - o.lost_bytes) in
  let send_one () =
    let seq = o.next_seq in
    o.next_seq <- seq + 1;
    o.sent_pkts <- o.sent_pkts + 1;
    o.sent_bytes <- o.sent_bytes + packet_bytes;
    Udp.Socket.send socket ~payload_bytes:packet_bytes
      (Udp.Feedback.Data { seq; bytes = packet_bytes; ts = Engine.now engine });
    (* the attach hook already charged this transmission; the
       double-notifier reports it a second time by explicit ioctl *)
    if o.flags.App_faults.double_notify then Libcm.notify lib fid ~nbytes:packet_bytes
  in
  let pump () =
    if o.alive then
      while ((o.pending_reqs * packet_bytes) + inflight ()) < depth * packet_bytes do
        o.pending_reqs <- o.pending_reqs + 1;
        Libcm.request lib fid
      done
  in
  Libcm.register_send lib fid (fun _ ->
      o.pending_reqs <- Stdlib.max 0 (o.pending_reqs - 1);
      (* the hoarder sits on the grant: neither sends nor declines *)
      if o.alive && not o.flags.App_faults.hoard then send_one ());
  Udp.Socket.on_receive socket (fun pkt ->
      match pkt.Packet.payload with
      | Udp.Feedback.Ack { max_seq = _; count = _; bytes; ts_echo } ->
          if o.alive then begin
            o.acked_bytes <- o.acked_bytes + bytes;
            o.last_rtt <- Some (Time.diff (Engine.now engine) ts_echo);
            o.last_progress <- Engine.now engine;
            pump ()
          end
      | _ -> ());
  let rec tick () =
    if o.alive then begin
      let now = Engine.now engine in
      if not o.flags.App_faults.silent then begin
        let fresh = o.acked_bytes - o.reported_bytes in
        if fresh > 0 then begin
          o.reported_bytes <- o.acked_bytes;
          Libcm.update lib fid ~nsent:fresh ~nrecd:fresh ~loss:Cm.Cm_types.No_loss
            ?rtt:o.last_rtt ()
        end;
        let stalled = inflight () in
        if stalled > 0 && Time.diff now o.last_progress > stall_after then begin
          o.lost_bytes <- o.lost_bytes + stalled;
          o.last_progress <- now;
          Libcm.update lib fid ~nsent:stalled ~nrecd:0 ~loss:Cm.Cm_types.Transient ()
        end
      end;
      (* the liar fabricates delivered-fine claims on top of reality *)
      if o.flags.App_faults.lie_no_loss then
        Libcm.update lib fid ~nsent:20_000 ~nrecd:20_000 ~loss:Cm.Cm_types.No_loss ();
      pump ();
      ignore (Engine.schedule_after engine feedback_period tick)
    end
  in
  ignore
    (Engine.schedule_at engine start_at (fun () ->
         o.last_progress <- Engine.now engine;
         tick ()));
  o

let crash_offender o () =
  if o.alive then begin
    o.alive <- false;
    (* process death: the control socket closes and the CM reaps *)
    Libcm.destroy o.lib;
    Udp.Socket.close o.socket
  end

(* ---- fault schedules ---------------------------------------------------- *)

let offender_names = [ "off0"; "off1"; "off2"; "off3" ]

let steps_of_case = function
  | Baseline -> []
  | Crash -> [ ("off0", App_faults.Crash) ]
  | Silence -> [ ("off0", App_faults.Go_silent fault_hold) ]
  | Lie -> [ ("off0", App_faults.Lie_no_loss fault_hold) ]
  | Hoard -> [ ("off0", App_faults.Grant_hoard fault_hold) ]
  | Double_notify -> [ ("off0", App_faults.Double_notify fault_hold) ]
  | Storm ->
      [
        ("off0", App_faults.Crash);
        ("off1", App_faults.Go_silent fault_hold);
        ("off2", App_faults.Lie_no_loss fault_hold);
        ("off3", App_faults.Grant_hoard fault_hold);
      ]

(* ---- measurement -------------------------------------------------------- *)

let window_bps tl ~from_ ~until =
  let bytes =
    List.fold_left
      (fun acc (p : Timeline.point) ->
        if p.Timeline.time >= from_ && p.Timeline.time < until then acc +. p.Timeline.value
        else acc)
      0. (Timeline.points tl)
  in
  bytes *. 8. /. Time.to_float_s (Time.diff until from_)

let run_case params case =
  let engine = Exp_common.create_engine params () in
  let rng = Rng.create ~seed:params.Exp_common.seed in
  let net = Topology.pipe engine ~bandwidth_bps:8e6 ~delay:(Time.ms 20) ~qdisc_limit:50 ~rng () in
  (* this family always runs defended — measuring the defenses is its point *)
  let cm = Exp_common.create_cm { params with Exp_common.defenses = true } engine () in
  Cm.attach cm net.Topology.a;
  let tel =
    Exp_common.instrument params ~engine
      ~links:[ ("fwd", net.Topology.ab); ("rev", net.Topology.ba) ]
      ~cm ()
  in
  (* flight recorder: the last events before each defense firing / audit
     breach, dumped as JSONL (exercised by the CI crash-dump smoke) *)
  let recorder =
    Exp_common.attach_recorder params ~engine
      ~tag:("app_faults-" ^ case_name case)
      ~links:[ ("fwd", net.Topology.ab); ("rev", net.Topology.ba) ]
      ~cm ()
  in
  let record_dump reason =
    match recorder with
    | Some r -> ignore (Telemetry.Recorder.dump r ~reason : string)
    | None -> ()
  in
  (* two honest TCP/CM bulk transfers *)
  let honest_tl = Timeline.create () in
  List.iter
    (fun port ->
      let _listener =
        Tcp.Conn.listen net.Topology.b ~port
          ~on_accept:(fun conn ->
            Tcp.Conn.on_receive conn (fun n ->
                Timeline.record honest_tl (Engine.now engine) (float_of_int n)))
          ()
      in
      let conn =
        Tcp.Conn.connect net.Topology.a ~dst:(Addr.endpoint ~host:1 ~port)
          ~driver:(Tcp.Conn.Cm_driven cm) ()
      in
      Tcp.Conn.send conn (1 lsl 34))
    [ 80; 81 ];
  (* four greedy UDP applications, one libcm "process" each *)
  let offenders =
    List.mapi
      (fun i name ->
        let port = 5004 + i in
        let _receiver = Udp.Cc_socket.run_echo_receiver net.Topology.b ~port () in
        make_offender engine cm net.Topology.a ~name ~port
          ~start_at:(Time.ms (100 + (20 * i))))
      offender_names
  in
  (* arm the fault schedule (seeded onset jitter in [fault_at, +spread)) *)
  let steps = steps_of_case case in
  let fault_names, fault_onset =
    match steps with
    | [] -> ([], None)
    | _ ->
        let targets =
          List.map
            (fun o -> App_faults.target ~name:o.name ~crash:(crash_offender o) o.flags)
            offenders
        in
        let sched = App_faults.jittered ~rng:(Rng.split rng) ~at:fault_at ~spread:fault_spread steps in
        App_faults.compile engine ~targets sched;
        ( List.map (fun (s : App_faults.step) -> s.App_faults.target ^ ":" ^
              (match s.App_faults.kind with
               | App_faults.Crash -> "crash"
               | App_faults.Go_silent _ -> "go_silent"
               | App_faults.Lie_no_loss _ -> "lie_no_loss"
               | App_faults.Grant_hoard _ -> "grant_hoard"
               | App_faults.Double_notify _ -> "double_notify"))
            sched.App_faults.steps,
          Option.map fst (App_faults.fault_window sched) )
  in
  (* invariant auditor sweep every 500 ms *)
  let audit_runs = ref 0 in
  let violations = ref [] in
  let rec audit () =
    incr audit_runs;
    let rep = Cm.Audit.run cm in
    List.iter
      (fun v ->
        if not (List.mem v !violations) then begin
          violations := !violations @ [ v ];
          record_dump ("audit:" ^ v)
        end)
      rep.Cm.Audit.violations;
    ignore (Engine.schedule_after engine (Time.ms 500) audit)
  in
  ignore (Engine.schedule_at engine (Time.ms 250) audit);
  (* defense-latency probe: first quarantine or reap, 100 ms resolution *)
  let first_defense = ref None in
  let rec probe () =
    (match !first_defense with
    | None ->
        let c = Cm.counters cm in
        if c.Cm.quarantines + c.Cm.reaps > 0 then begin
          first_defense := Some (Engine.now engine);
          record_dump "defense"
        end
    | Some _ -> ());
    if !first_defense = None then ignore (Engine.schedule_after engine (Time.ms 100) probe)
  in
  ignore (Engine.schedule_at engine (Time.ms 100) probe);
  Engine.run_for engine duration;
  Option.iter Telemetry.stop tel;
  Exp_common.maybe_report_prof params engine;
  let open_flows = Cm.flows cm in
  let offender_reports =
    List.map
      (fun o ->
        let flow_open = List.mem o.fid open_flows in
        {
          o_name = o.name;
          o_alive = Libcm.is_alive o.lib;
          o_flow_open = flow_open;
          o_suspicion = (if flow_open then Some (Cm.suspicion cm o.fid) else None);
          o_quarantined = (if flow_open then Some (Cm.is_quarantined cm o.fid) else None);
          o_sent_pkts = o.sent_pkts;
        })
      offenders
  in
  {
    r_case = case_name case;
    r_faults = fault_names;
    r_fault_at = fault_onset;
    r_first_defense = !first_defense;
    r_counters = Cm.counters cm;
    r_watchdog_fires = Cm.watchdog_fires cm;
    r_released_grant_bytes = Cm.released_grant_bytes cm;
    r_offenders = offender_reports;
    r_honest_pre_bps = window_bps honest_tl ~from_:warmup ~until:fault_at;
    r_honest_post_bps = window_bps honest_tl ~from_:post_from ~until:duration;
    r_recovery_ratio = 0.;
    r_audit_runs = !audit_runs;
    r_audit_violations = !violations;
  }

let run params =
  let baseline = run_case params Baseline in
  let fair = baseline.r_honest_post_bps in
  List.map
    (fun case ->
      let r = if case = Baseline then baseline else run_case params case in
      let ratio = if fair > 0. then r.r_honest_post_bps /. fair else 0. in
      { r with r_recovery_ratio = ratio })
    all_cases

(* ---- JSON output -------------------------------------------------------- *)

let offender_json o =
  let open Exp_common.Json in
  let opt_int = function Some n -> Int n | None -> Null in
  let opt_bool = function Some b -> Bool b | None -> Null in
  Obj
    [
      ("name", Str o.o_name);
      ("alive", Bool o.o_alive);
      ("flow_open", Bool o.o_flow_open);
      ("suspicion", opt_int o.o_suspicion);
      ("quarantined", opt_bool o.o_quarantined);
      ("sent_pkts", Int o.o_sent_pkts);
    ]

let result_json r =
  let open Exp_common.Json in
  let time_opt = function Some t -> Float (Time.to_float_s t) | None -> Null in
  let c = r.r_counters in
  Obj
    [
      ("case", Str r.r_case);
      ("faults", List (List.map (fun f -> Str f) r.r_faults));
      ("fault_at_s", time_opt r.r_fault_at);
      ("first_defense_s", time_opt r.r_first_defense);
      ( "counters",
        Obj
          [
            ("rejected_updates", Int c.Cm.rejected_updates);
            ("rejected_notifies", Int c.Cm.rejected_notifies);
            ("quarantines", Int c.Cm.quarantines);
            ("reaps", Int c.Cm.reaps);
            ("declined_grants", Int c.Cm.declined_grants);
          ] );
      ("watchdog_fires", Int r.r_watchdog_fires);
      ("released_grant_bytes", Int r.r_released_grant_bytes);
      ("offenders", List (List.map offender_json r.r_offenders));
      ("honest_pre_kbps", Float (Exp_common.kbps r.r_honest_pre_bps));
      ("honest_post_kbps", Float (Exp_common.kbps r.r_honest_post_bps));
      ("recovery_ratio", Float r.r_recovery_ratio);
      ("audit_runs", Int r.r_audit_runs);
      ("audit_ok", Bool (r.r_audit_violations = []));
      ("audit_violations", List (List.map (fun v -> Str v) r.r_audit_violations));
    ]

let to_json params results =
  let open Exp_common.Json in
  Obj
    [
      ("seed", Int params.Exp_common.seed);
      ("duration_s", Float (Time.to_float_s duration));
      ("results", List (List.map result_json results));
    ]

let print params results =
  Exp_common.print_header
    "Endpoint faults: crash / silence / lying / hoarding vs the CM defenses (JSON)";
  Exp_common.print_row (Exp_common.Json.to_string (to_json params results))
