open Cm_util
open Eventsim
open Netsim

type row = {
  setup : string;
  pair_bytes : int;
  reference_bytes : int;
  pair_to_reference : float;
}

let run_side params ~merged =
  let engine = Exp_common.create_engine params () in
  let rng = Rng.create ~seed:params.Exp_common.seed in
  (* hosts 1, 2 and 3 all live behind the same 6 Mbit/s bottleneck from
     the sender's point of view (sender is the star's "server" side) *)
  let net =
    Topology.star engine ~n_clients:3 ~access_bps:1e8 ~access_delay:(Time.ms 1)
      ~bottleneck_bps:6e6 ~bottleneck_delay:(Time.ms 20) ~qdisc_limit:50 ~rng ()
  in
  let sender = net.Topology.server in
  let cm = Cm.create engine ~mtu:1000 () in
  Cm.attach cm sender;
  (* two CC-UDP flows to two different destination hosts *)
  let _r1 = Udp.Cc_socket.run_echo_receiver net.Topology.clients.(0) ~port:7001 () in
  let _r2 = Udp.Cc_socket.run_echo_receiver net.Topology.clients.(1) ~port:7001 () in
  let sock_a = Udp.Cc_socket.create sender ~cm ~dst:(Addr.endpoint ~host:1 ~port:7001) () in
  let sock_b = Udp.Cc_socket.create sender ~cm ~dst:(Addr.endpoint ~host:2 ~port:7001) () in
  (* by default these are separate per-destination macroflows; with
     bottleneck knowledge supplied, merge them into one *)
  if merged then Cm.merge cm (Udp.Cc_socket.flow sock_a) ~into:(Udp.Cc_socket.flow sock_b);
  (* the reference: a native TCP to the third destination *)
  let reference_bytes = ref 0 in
  let _l =
    Tcp.Conn.listen net.Topology.clients.(2) ~port:80
      ~on_accept:(fun c -> Tcp.Conn.on_receive c (fun n -> reference_bytes := !reference_bytes + n))
      ()
  in
  let reference = Tcp.Conn.connect sender ~dst:(Addr.endpoint ~host:3 ~port:80) () in
  Tcp.Conn.send reference (1 lsl 28);
  let feeder =
    Timer.create engine ~callback:(fun () ->
        List.iter
          (fun s ->
            let room = 64 - Udp.Cc_socket.queued s in
            for _ = 1 to room do
              Udp.Cc_socket.send s 1000
            done)
          [ sock_a; sock_b ])
  in
  Timer.start_periodic feeder (Time.ms 20);
  Engine.run_for engine (Time.sec 20.);
  Timer.stop feeder;
  let pair = Udp.Cc_socket.bytes_sent sock_a + Udp.Cc_socket.bytes_sent sock_b in
  {
    setup = (if merged then "merged macroflow (bottleneck known)" else "separate per-destination");
    pair_bytes = pair;
    reference_bytes = !reference_bytes;
    pair_to_reference = float_of_int pair /. float_of_int (Stdlib.max 1 !reference_bytes);
  }

let run params = [ run_side params ~merged:false; run_side params ~merged:true ]

let print rows =
  Exp_common.print_header
    "Extension (sec. 5): merging macroflows across destinations behind one bottleneck";
  Exp_common.print_row
    (Printf.sprintf "%-36s %12s %14s %10s" "setup" "pair bytes" "reference TCP" "pair/ref");
  List.iter
    (fun r ->
      Exp_common.print_row
        (Printf.sprintf "%-36s %12d %14d %10.2f" r.setup r.pair_bytes r.reference_bytes
           r.pair_to_reference))
    rows;
  Exp_common.print_row
    "(two independent macroflows probe the shared bottleneck like two TCPs; merged,";
  Exp_common.print_row " the pair takes roughly one TCP's share)"
