(** Which experiment families are authored in the spec DSL.

    The registry backs [cm_expt spec]: [--list] annotates every family
    with its provenance, [--check]/[--dump] resolve a family name to its
    DSL source(s).  Families not listed here are handwritten OCaml with
    no spec to check. *)

type entry = {
  name : string;  (** The cm_expt family name. *)
  provenance : string;  (** Human-readable DSL-vs-handwritten note. *)
  specs : (string * Cm_spec.Spec.t) list;
      (** Sub-spec name → spec.  The scenarios family carries one spec
          per canned scenario; the DSL-native families carry one. *)
}

val entries : entry list
(** Every spec-bearing family. *)

val find : string -> entry option

val provenance_of : string -> string
(** ["handwritten"] for families not in the registry. *)
