open Cm_util
open Eventsim
open Netsim

(* Many-flow scalability: a web-server-like closed-loop workload driven
   straight against the CM API (no packet simulation — the subject under
   test is the CM's own per-grant and per-flow control paths).

   N flows spread over N/32 destination hosts (so per-macroflow membership
   stays constant while the CM-wide flow count grows); every flow runs
   [rounds] request → grant → notify → update cycles against a synthetic
   2 ms path, a slice of flows closes and reopens mid-run to exercise the
   teardown path, and everything is closed at the end.  Sub-linear
   per-grant cost shows up as events/sec (bench) and events-per-grant
   (deterministic JSON) staying flat as N grows. *)

type sched = Rr | Stride

let sched_name = function Rr -> "round-robin" | Stride -> "weighted-stride"
let sched_factory = function Rr -> Cm.Scheduler.round_robin | Stride -> Cm.Scheduler.weighted

type point = {
  p_sched : sched;
  p_flows : int;
  p_macroflows : int;
  p_rounds : int;
  p_grants : int;
  p_closes : int;
  p_events : int;
  p_virtual_s : float;
  p_lat_p50_us : float;  (** request → grant latency, virtual time *)
  p_lat_p99_us : float;
  p_teardown_probes : int;
  p_wall_s : float;  (** host wall clock — NOT part of the deterministic JSON *)
}

(* one flow's closed-loop state, a single small record (see [run_point]) *)
type fstate = {
  mutable fs_fid : int;
  fs_rtt : Cm_util.Time.span;
  mutable fs_left : int;
  mutable fs_churned : bool;
  (* the loop is closed, so a flow never has more than one request in
     flight: a scalar timestamp slot, no queue, no allocation *)
  mutable fs_req_at : Cm_util.Time.t;
  mutable fs_update : unit -> unit;
}

let family = [ 64; 512; 4096; 16384 ]
let rounds = 24
let flows_per_mf = 32
let mtu = 1448

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(Stdlib.min (n - 1) (int_of_float (q *. float_of_int n)))

let run_point ?(rounds = rounds) params ~sched ~flows =
  let engine = Exp_common.create_engine params () in
  let cm =
    Exp_common.create_cm params engine ~mtu ~scheduler:(sched_factory sched) ()
  in
  let dests = Stdlib.max 1 (flows / flows_per_mf) in
  let rng = Rng.create ~seed:params.Exp_common.seed in
  (* All of a flow's loop state lives in one record — one cache line per
     flow on the hot cycle instead of a line per parallel array.  At
     N=16384 the per-flow state is what the cycle cost is made of, so its
     layout is part of what the experiment measures.  [fs_update] is the
     flow's update callback, allocated once at setup rather than one
     closure per cycle. *)
  let nil_thunk = fun () -> () in
  let st =
    (* per-flow feedback delay: a 2 ms path with fixed per-flow jitter so
       the event pattern is irregular but fully determined by the seed
       (records are built in index order, preserving the rng draw order
       of the former rtt array) *)
    Array.init flows (fun _ ->
        {
          fs_fid = -1;
          fs_rtt = Time.add (Time.ms 2) (Time.us (Rng.int rng 500));
          fs_left = rounds;
          fs_churned = false;
          fs_req_at = Time.zero;
          fs_update = nil_thunk;
        })
  in
  let lats = Array.make (flows * rounds) 0. in
  let n_lats = ref 0 in
  let done_flows = ref 0 in
  let key_of i ~gen =
    Addr.flow
      ~src:(Addr.endpoint ~host:0 ~port:(1000 + i + (gen * 1_000_000)))
      ~dst:(Addr.endpoint ~host:(1 + (i mod dests)) ~port:80)
      ~proto:Addr.Udp ()
  in
  let request f =
    f.fs_req_at <- Engine.now engine;
    Cm.request cm f.fs_fid
  in
  let rec open_one i ~gen =
    let f = st.(i) in
    f.fs_fid <- Cm.open_flow cm (key_of i ~gen);
    Cm.register_send cm f.fs_fid (on_grant f);
    if sched = Stride then Cm.set_weight cm f.fs_fid (float_of_int (1 + (i mod 3)))
  and on_grant f _granted_fid =
    lats.(!n_lats) <- Time.to_float_us (Time.diff (Engine.now engine) f.fs_req_at);
    incr n_lats;
    Cm.notify cm f.fs_fid ~nbytes:mtu;
    Engine.post engine f.fs_rtt f.fs_update
  in
  for i = 0 to flows - 1 do
    let f = st.(i) in
    f.fs_update <-
      (fun () ->
        (* every 50th cycle of a flow reports a transient loss so the
           shared controllers keep reacting at scale *)
        let lossy = f.fs_left mod 50 = 49 in
        Cm.update cm f.fs_fid ~nsent:mtu
          ~nrecd:(if lossy then 0 else mtu)
          ~loss:(if lossy then Cm.Cm_types.Transient else Cm.Cm_types.No_loss)
          ~rtt:f.fs_rtt ();
        f.fs_left <- f.fs_left - 1;
        if f.fs_left = 0 then incr done_flows
        else begin
          (* mid-run churn: every 16th flow closes and reopens once,
             half-way through its rounds *)
          if (not f.fs_churned) && i mod 16 = 0 && f.fs_left = rounds / 2 then begin
            f.fs_churned <- true;
            Cm.close_flow cm f.fs_fid;
            open_one i ~gen:1
          end;
          request f
        end)
  done;
  let wall0 = Unix.gettimeofday () in
  for i = 0 to flows - 1 do
    open_one i ~gen:0
  done;
  for i = 0 to flows - 1 do
    request st.(i)
  done;
  let guard = ref 0 in
  while !done_flows < flows && !guard < 100_000 do
    incr guard;
    Engine.run_for engine (Time.ms 100)
  done;
  for i = 0 to flows - 1 do
    Cm.close_flow cm st.(i).fs_fid
  done;
  let wall = Unix.gettimeofday () -. wall0 in
  let c = Cm.counters cm in
  let lat = Array.sub lats 0 !n_lats in
  Array.sort Stdlib.compare lat;
  {
    p_sched = sched;
    p_flows = flows;
    p_macroflows = List.length (Cm.audit_view cm).Cm.av_default_macroflows;
    p_rounds = rounds;
    p_grants = c.Cm.grants;
    p_closes = c.Cm.closes;
    p_events = Engine.events_executed engine;
    p_virtual_s = Time.to_float_s (Engine.now engine);
    p_lat_p50_us = percentile lat 0.50;
    p_lat_p99_us = percentile lat 0.99;
    p_teardown_probes = Cm.teardown_probes cm;
    p_wall_s = wall;
  }

let run ?(sizes = family) params =
  List.concat_map
    (fun sched -> List.map (fun flows -> run_point params ~sched ~flows) sizes)
    [ Rr; Stride ]

(* ---- JSON output -------------------------------------------------------- *)

(* Wall-clock figures are deliberately absent: this document is diffed
   byte-for-byte by the CI determinism gate.  bench/ reports the wall-side
   view (events/sec) in BENCH_PR5.json. *)
let point_json p =
  let open Exp_common.Json in
  Obj
    [
      ("scheduler", Str (sched_name p.p_sched));
      ("flows", Int p.p_flows);
      ("macroflows", Int p.p_macroflows);
      ("rounds", Int p.p_rounds);
      ("grants", Int p.p_grants);
      ("closes", Int p.p_closes);
      ("events", Int p.p_events);
      ("events_per_grant", Float (float_of_int p.p_events /. float_of_int p.p_grants));
      ("virtual_s", Float p.p_virtual_s);
      ("grant_lat_p50_us", Float p.p_lat_p50_us);
      ("grant_lat_p99_us", Float p.p_lat_p99_us);
      ("teardown_probes", Int p.p_teardown_probes);
    ]

let to_json params points =
  let open Exp_common.Json in
  Obj
    [
      ("seed", Int params.Exp_common.seed);
      ("flows_per_macroflow", Int flows_per_mf);
      ("points", List (List.map point_json points));
    ]

let print params points =
  Exp_common.print_header "Scale: many-flow CM control-path scalability (JSON)";
  Exp_common.print_row (Exp_common.Json.to_string (to_json params points))
