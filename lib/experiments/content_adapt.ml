open Cm_util
open Eventsim
open Netsim

type fetch = { latency_ms : float; bytes : int }
type row = { bandwidth_mbps : float; fixed : fetch list; adaptive : fetch list }

let encodings = [| 16 * 1024; 64 * 1024; 256 * 1024; 1024 * 1024 |]
let full_quality = 256 * 1024
let target_latency = Time.sec 1.
let requests = 5

let run_side params ~adaptive ~bandwidth_bps =
  let engine = Exp_common.create_engine params () in
  let rng = Rng.create ~seed:params.Exp_common.seed in
  let net = Topology.pipe engine ~bandwidth_bps ~delay:(Time.ms 40) ~rng () in
  let cm = Cm.create engine () in
  Cm.attach cm net.Topology.b;
  let driver = Tcp.Conn.Cm_driven cm in
  let _server =
    if adaptive then
      Cm_apps.Web.adaptive_server net.Topology.b ~cm ~port:80 ~encodings ~target_latency
        ~driver ()
    else Cm_apps.Web.server net.Topology.b ~port:80 ~file_bytes:full_quality ~driver ()
  in
  (* the client accepts whatever size the server chose: fetch until the
     connection delivers its FIN-terminated response *)
  let results = ref [] in
  let remaining = ref requests in
  let rec one () =
    let t0 = Engine.now engine in
    let conn = Tcp.Conn.connect net.Topology.a ~dst:(Addr.endpoint ~host:1 ~port:80) () in
    let received = ref 0 in
    Tcp.Conn.on_established conn (fun () -> Tcp.Conn.send conn 100);
    Tcp.Conn.on_receive conn (fun n -> received := !received + n);
    (* the server closes after the object; completion = our side seeing the
       whole response (close_wait) *)
    let poll = ref None in
    let check () =
      if Tcp.Conn.state conn = Tcp.Conn.Close_wait then begin
        (match !poll with Some t -> Timer.stop t | None -> ());
        Tcp.Conn.close conn;
        results :=
          { latency_ms = Time.to_float_ms (Time.diff (Engine.now engine) t0); bytes = !received }
          :: !results;
        decr remaining;
        if !remaining > 0 then
          ignore (Engine.schedule_after engine (Time.ms 500) one)
      end
    in
    let timer = Timer.create engine ~callback:check in
    poll := Some timer;
    Timer.start_periodic timer (Time.ms 5)
  in
  one ();
  Engine.run_for engine (Time.sec 120.);
  List.rev !results

let bandwidths = [ 8e6; 2e6; 0.5e6 ]

let run params =
  List.map
    (fun bw ->
      {
        bandwidth_mbps = bw /. 1e6;
        fixed = run_side params ~adaptive:false ~bandwidth_bps:bw;
        adaptive = run_side params ~adaptive:true ~bandwidth_bps:bw;
      })
    bandwidths

let print rows =
  Exp_common.print_header
    "Content adaptation: fixed 256 KB object vs cm_query-chosen encoding (1 s latency target)";
  List.iter
    (fun r ->
      Exp_common.print_row (Printf.sprintf "path %.1f Mbit/s:" r.bandwidth_mbps);
      let fmt fs =
        fs
        |> List.map (fun f -> Printf.sprintf "%4.0fms/%3dKB" f.latency_ms (f.bytes / 1024))
        |> String.concat "  "
      in
      Exp_common.print_row (Printf.sprintf "  fixed    %s" (fmt r.fixed));
      Exp_common.print_row (Printf.sprintf "  adaptive %s" (fmt r.adaptive)))
    rows;
  Exp_common.print_row "";
  Exp_common.print_row
    "(the adaptive server serves the small encoding while it has no estimate, then";
  Exp_common.print_row
    " the largest encoding the learned macroflow rate can deliver within 1 s)"
