open Cm_util
open Eventsim
open Netsim

type telemetry_request = { period : Time.span; mutable captured : Telemetry.t list }

type params = {
  seed : int;
  full : bool;
  telemetry : telemetry_request option;
  defenses : bool;
  prof : bool;
  recorder : string option;
}

let default_params =
  { seed = 42; full = false; telemetry = None; defenses = false; prof = false; recorder = None }

let request_telemetry ?(period = Time.ms 100) () = { period; captured = [] }

(* Every experiment builds its engine through here so the event-core
   profiler can be armed before any component closure exists —
   [Engine.prof_tag] is identity on an unprofiled engine, so tagging must
   happen after [enable_prof]. *)
let create_engine params () =
  let engine = Engine.create () in
  if params.prof then Engine.enable_prof engine;
  engine

(* Print the profile where it cannot contaminate a seeded-JSON stdout
   channel: wall-clock figures are nondeterministic by nature. *)
let maybe_report_prof params engine =
  if params.prof then prerr_endline (Telemetry.Prof.summary engine)

(* Honor [params.recorder] for one simulated system: a bounded flight
   ring on [engine], tapped into the links and the CM via their
   [set_trace] entry points.  Skipped when full telemetry is on — the
   growable telemetry trace already keeps everything the ring would. *)
let attach_recorder params ~engine ?(tag = "recorder") ?(links = []) ?cm () =
  match params.recorder with
  | Some dir when params.telemetry = None ->
      let rec_ = Telemetry.Recorder.create engine ~out_dir:dir ~tag () in
      let tr = Telemetry.Recorder.trace rec_ in
      List.iter (fun (name, link) -> Link.set_trace link ~name tr) links;
      (match cm with Some c -> Cm.set_trace c tr | None -> ());
      Some rec_
  | _ -> None

(* Every experiment builds its CM through here so the endpoint-fault
   defenses (feedback watchdog + misbehaviour auditor) can be toggled
   uniformly — the bench measures their overhead this way. *)
let create_cm params engine ?mtu ?scheduler ?grant_reclaim_after () =
  if params.defenses then
    Cm.create engine ?mtu ?scheduler ?grant_reclaim_after
      ~feedback_watchdog:Cm.Macroflow.default_watchdog ~auditor:Cm.default_auditor ()
  else Cm.create engine ?mtu ?scheduler ?grant_reclaim_after ()

(* One call per simulated system inside an experiment: builds the
   telemetry instance (when the run asked for one), wires the interesting
   components, and captures it so the trace driver can export artifacts
   after the run.  Experiments that were not asked to trace pay nothing —
   this returns [None] and every component keeps its nil sink. *)
let instrument params ~engine ?(links = []) ?cm () =
  match params.telemetry with
  | None -> None
  | Some req ->
      let tel = Telemetry.create engine ~period:req.period () in
      req.captured <- tel :: req.captured;
      List.iter (fun (name, link) -> Link.attach_telemetry link ~name tel) links;
      (match cm with Some c -> Cm.attach_telemetry c tel | None -> ());
      Some tel
let kbps bits_per_s = bits_per_s /. 8. /. 1000.

let print_header name =
  print_endline "";
  print_endline ("== " ^ name ^ " ==")

let print_row = print_endline

(* The serializer lives in [Cm_util.Json] so every machine-readable
   channel (experiments, telemetry, tracer) formats floats identically. *)
module Json = Cm_util.Json

let measured_bulk params ~driver ~bandwidth_bps ~delay ?(loss = 0.) ?(qdisc_limit = 100)
    ?(costs = Costs.zero) ?(duration = Time.sec 30.) ?bytes () =
  let engine = create_engine params () in
  let rng = Rng.create ~seed:params.seed in
  let net = Topology.pipe engine ~bandwidth_bps ~delay ~loss_rate:loss ~qdisc_limit ~rng ~costs () in
  let cm = Cm.create engine () in
  Cm.attach cm net.Topology.a;
  let drv = driver (Some cm) in
  let delivered = ref 0 in
  let finished_at = ref None in
  let target = bytes in
  let _listener =
    Tcp.Conn.listen net.Topology.b ~port:80
      ~on_accept:(fun conn ->
        Tcp.Conn.on_receive conn (fun n ->
            delivered := !delivered + n;
            match target with
            | Some want when !delivered >= want && !finished_at = None ->
                finished_at := Some (Engine.now engine)
            | _ -> ()))
      ()
  in
  let conn = Tcp.Conn.connect net.Topology.a ~dst:(Addr.endpoint ~host:1 ~port:80) ~driver:drv () in
  let to_send = match target with Some b -> b | None -> 1 lsl 34 in
  Tcp.Conn.send conn to_send;
  let busy0 = Cpu.total_busy (Host.cpu net.Topology.a) in
  (match target with
  | Some _ ->
      (* run until delivery completes (bounded by a generous limit) *)
      let guard = ref 0 in
      while !finished_at = None && !guard < 10_000 do
        incr guard;
        Engine.run_for engine (Time.ms 100)
      done
  | None -> Engine.run_for engine duration);
  let elapsed =
    match !finished_at with Some t -> t | None -> Engine.now engine
  in
  let elapsed = Stdlib.max elapsed 1 in
  let busy = Cpu.total_busy (Host.cpu net.Topology.a) - busy0 in
  let goodput = float_of_int (!delivered * 8) /. Time.to_float_s elapsed in
  let util = float_of_int busy /. float_of_int elapsed in
  (goodput, util)
