open Cm_util
open Eventsim
open Netsim

type params = { seed : int; full : bool }

let default_params = { seed = 42; full = false }
let kbps bits_per_s = bits_per_s /. 8. /. 1000.

let print_header name =
  print_endline "";
  print_endline ("== " ^ name ^ " ==")

let print_row = print_endline

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* %.6g prints deterministically from the bits of the float, so a seeded
     experiment serializes byte-identically run after run *)
  let float_str f =
    if Float.is_nan f then "null"
    else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.6g" f

  let rec write b = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_str f)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string b ", ";
            write b x)
          xs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ", ";
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\": ";
            write b v)
          kvs;
        Buffer.add_char b '}'

  let to_string t =
    let b = Buffer.create 256 in
    write b t;
    Buffer.contents b
end

let measured_bulk params ~driver ~bandwidth_bps ~delay ?(loss = 0.) ?(qdisc_limit = 100)
    ?(costs = Costs.zero) ?(duration = Time.sec 30.) ?bytes () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:params.seed in
  let net = Topology.pipe engine ~bandwidth_bps ~delay ~loss_rate:loss ~qdisc_limit ~rng ~costs () in
  let cm = Cm.create engine () in
  Cm.attach cm net.Topology.a;
  let drv = driver (Some cm) in
  let delivered = ref 0 in
  let finished_at = ref None in
  let target = bytes in
  let _listener =
    Tcp.Conn.listen net.Topology.b ~port:80
      ~on_accept:(fun conn ->
        Tcp.Conn.on_receive conn (fun n ->
            delivered := !delivered + n;
            match target with
            | Some want when !delivered >= want && !finished_at = None ->
                finished_at := Some (Engine.now engine)
            | _ -> ()))
      ()
  in
  let conn = Tcp.Conn.connect net.Topology.a ~dst:(Addr.endpoint ~host:1 ~port:80) ~driver:drv () in
  let to_send = match target with Some b -> b | None -> 1 lsl 34 in
  Tcp.Conn.send conn to_send;
  let busy0 = Cpu.total_busy (Host.cpu net.Topology.a) in
  (match target with
  | Some _ ->
      (* run until delivery completes (bounded by a generous limit) *)
      let guard = ref 0 in
      while !finished_at = None && !guard < 10_000 do
        incr guard;
        Engine.run_for engine (Time.ms 100)
      done
  | None -> Engine.run_for engine duration);
  let elapsed =
    match !finished_at with Some t -> t | None -> Engine.now engine
  in
  let elapsed = Stdlib.max elapsed 1 in
  let busy = Cpu.total_busy (Host.cpu net.Topology.a) - busy0 in
  let goodput = float_of_int (!delivered * 8) /. Time.to_float_s elapsed in
  let util = float_of_int busy /. float_of_int elapsed in
  (goodput, util)
