(** Extension experiment: the CM protocol vs. application feedback.

    The paper's buffered UDP API makes the {e application} acknowledge —
    paying a recv, two gettimeofdays and an update ioctl per feedback
    packet in user space (Table 1).  The CM protocol (§5's "remains to be
    studied" alternative, implemented in [lib/cmproto]) moves
    acknowledgment into the receiving host's CM: the sending application
    pays only its send syscall.

    This experiment reruns the Fig. 6 measurement at 168-byte packets for
    both designs and reports per-packet wall time and boundary-crossing
    counts. *)

type row = {
  design : string;
  us_per_packet : float;
  ops : (string * float) list;  (** Sender boundary crossings per packet. *)
}

val run : Exp_common.params -> row list
(** Buffered (application feedback) vs CM protocol. *)

val run_cmproto : Exp_common.params -> n:int -> float * Libcm.Ops.meter
(** The CM-protocol half alone: [n] windowed 168-byte packets over the
    100 Mbps pipe with kernel-to-kernel feedback.  Exposed so the bench
    can measure the feedback-plane hardening overhead on exactly the
    workload the hardening sits on. *)

val print : row list -> unit
(** Print the comparison. *)
