(** Shared plumbing for the paper-reproduction experiments. *)

open Cm_util

open Netsim

type params = { seed : int; full : bool }
(** [seed] drives every RNG; [full] enables the long variants (e.g. the
    10^6-buffer point of Figs. 4–5). *)

val default_params : params
(** [seed = 42], [full = false]. *)

val kbps : float -> float
(** Bits/s to the paper's KBytes/s. *)

val print_header : string -> unit
(** Banner line for one experiment's output. *)

val print_row : string -> unit
(** One data row (plain [print_endline], named for greppability). *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Render compactly.  Float formatting is deterministic ([%.6g], NaN as
      [null]), so a seeded experiment's JSON is byte-identical across
      runs — the machine-readable channel for scenario results. *)
end

val measured_bulk :
  params ->
  driver:(Cm.t option -> Tcp.Conn.driver) ->
  bandwidth_bps:float ->
  delay:Time.span ->
  ?loss:float ->
  ?qdisc_limit:int ->
  ?costs:Costs.t ->
  ?duration:Time.span ->
  ?bytes:int ->
  unit ->
  float * float
(** One bulk TCP run on a fresh pipe; returns
    [(goodput_bps, sender_cpu_utilization)].  With [?bytes] the run ends
    when that much is delivered; otherwise it is time-limited by
    [duration] (default 30 s) with the goodput measured over the whole
    window. *)
