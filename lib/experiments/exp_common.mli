(** Shared plumbing for the paper-reproduction experiments. *)

open Cm_util

open Netsim

type telemetry_request = { period : Time.span; mutable captured : Telemetry.t list }
(** Ask the experiments to run instrumented: each simulated system gets a
    {!Telemetry.t} sampling every [period], and the instances are
    accumulated in [captured] (newest first) for the caller to export. *)

type params = {
  seed : int;
  full : bool;
  telemetry : telemetry_request option;
  defenses : bool;
  prof : bool;
  recorder : string option;
}
(** [seed] drives every RNG; [full] enables the long variants (e.g. the
    10^6-buffer point of Figs. 4–5); [telemetry] (default [None]) makes
    instrumented experiments wire up metrics / time series / tracing;
    [defenses] turns on the endpoint-fault defenses (feedback watchdog +
    misbehaviour auditor) in experiments built via {!create_cm} — off by
    default, matching the paper's trusting CM; [prof] arms the event-core
    profiler on engines built via {!create_engine} (summary goes to
    stderr — wall clock is nondeterministic); [recorder] (a directory)
    attaches a bounded flight ring via {!attach_recorder} in the families
    that support it, dumping the last events on faults. *)

val default_params : params
(** [seed = 42], [full = false], everything else off. *)

val create_engine : params -> unit -> Eventsim.Engine.t
(** The engine factory every experiment uses: arms the profiler (before
    any component closures exist, so [Engine.prof_tag] wraps them) when
    [params.prof]. *)

val maybe_report_prof : params -> Eventsim.Engine.t -> unit
(** Print the profiler summary to {e stderr} when [params.prof] — never
    to stdout, which carries the seeded byte-diffed JSON. *)

val attach_recorder :
  params ->
  engine:Eventsim.Engine.t ->
  ?tag:string ->
  ?links:(string * Link.t) list ->
  ?cm:Cm.t ->
  unit ->
  Telemetry.Recorder.t option
(** Honor [params.recorder] for one simulated system: create a flight
    recorder on [engine] (ring of the last 4096 trace events + crash
    escape hook) and tap the [links] and [cm] into its ring.  [None]
    when no recorder was requested or full telemetry is on (the growable
    telemetry trace already keeps everything). *)

val create_cm :
  params ->
  Eventsim.Engine.t ->
  ?mtu:int ->
  ?scheduler:Cm.Scheduler.factory ->
  ?grant_reclaim_after:Time.span ->
  unit ->
  Cm.t
(** Build a CM honoring [params.defenses] ({!Cm.default_auditor} and
    {!Cm.Macroflow.default_watchdog} when on).  [scheduler] passes
    through to {!Cm.create} (the scale family runs both). *)

val request_telemetry : ?period:Time.span -> unit -> telemetry_request
(** A fresh request sampling every [period] (default 100 ms virtual). *)

val instrument :
  params ->
  engine:Eventsim.Engine.t ->
  ?links:(string * Link.t) list ->
  ?cm:Cm.t ->
  unit ->
  Telemetry.t option
(** Honor [params.telemetry] for one simulated system: create a telemetry
    instance on [engine], attach the named [links] and the [cm], record it
    in the request's [captured] list, and return it.  [None] (and zero
    work) when the run was not asked to trace. *)

val kbps : float -> float
(** Bits/s to the paper's KBytes/s. *)

val print_header : string -> unit
(** Banner line for one experiment's output. *)

val print_row : string -> unit
(** One data row (plain [print_endline], named for greppability). *)

module Json = Cm_util.Json
(** Deterministic JSON (alias of {!Cm_util.Json}: [%.6g] floats, NaN as
    [null]), so a seeded experiment's JSON is byte-identical across
    runs — the machine-readable channel for scenario results. *)

val measured_bulk :
  params ->
  driver:(Cm.t option -> Tcp.Conn.driver) ->
  bandwidth_bps:float ->
  delay:Time.span ->
  ?loss:float ->
  ?qdisc_limit:int ->
  ?costs:Costs.t ->
  ?duration:Time.span ->
  ?bytes:int ->
  unit ->
  float * float
(** One bulk TCP run on a fresh pipe; returns
    [(goodput_bps, sender_cpu_utilization)].  With [?bytes] the run ends
    when that much is delivered; otherwise it is time-limited by
    [duration] (default 30 s) with the goodput measured over the whole
    window. *)
