(** Run-report driver ([cm_expt report]).

    Runs one experiment family instrumented, feeds each captured
    telemetry instance through the health analyzer ({!Cm_report.Analyze})
    and exports [<expt>.report.json] (machine channel, also printed to
    stdout) plus [<expt>.report.md] (human channel).

    Same family + same seed ⇒ byte-identical report JSON (the analyzer
    only consumes virtual-time data) — re-checked in CI by running twice
    and diffing. *)

val experiments : string list
(** Families that can be reported on: ["fig6"], ["fig7"], ["fig8"],
    ["fig9"], ["scenarios"] (all three scenario sub-runs), and
    ["app_faults"] (the storm case, defenses exercised). *)

val analyze_all : expt:string -> seed:int -> (string * Cm_report.Analyze.t) list
(** Run the family instrumented and analyze every captured system;
    returns [(sub_run_name, report)] pairs, oldest system first.  Raises
    [Invalid_argument] on an unknown family. *)

val report_json : (string * Cm_report.Analyze.t) list -> Cm_util.Json.t
(** Single report → its object; several → an object keyed by sub-run. *)

val report_markdown : expt:string -> (string * Cm_report.Analyze.t) list -> string
(** Markdown document with one section per sub-run. *)

type artifact = { a_name : string; a_path : string; a_bytes : int }
(** One file written by {!run}. *)

val run : ?out_dir:string -> expt:string -> seed:int -> unit -> artifact list
(** Run, analyze and write [<expt>.report.json] / [<expt>.report.md] into
    [out_dir] (default ["reports"], created if missing); the JSON is also
    printed to stdout. *)

val print : artifact list -> unit
(** Human summary of what was written (stderr — stdout carries JSON). *)
