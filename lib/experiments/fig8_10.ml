open Cm_util
open Eventsim
open Netsim

type sample = { t_s : float; tx_kbps : float; cm_kbps : float }
type series = { label : string; samples : sample list }

(* cumulative layer rates: 250/500/1000/2000 KBytes/s, like the paper's
   KBps axes *)
let layers = [| 2e6; 4e6; 8e6; 16e6 |]

(* available-bandwidth schedule for the emulated wide-area path *)
let schedule duration =
  let base =
    [
      (Time.sec 0., 18e6);
      (Time.sec 5., 6e6);
      (Time.sec 10., 3e6);
      (Time.sec 15., 10e6);
      (Time.sec 20., 18e6);
    ]
  in
  (* repeat the pattern for longer runs *)
  let rec extend acc offset =
    if offset >= duration then List.rev acc
    else begin
      let shifted = List.map (fun (t, bw) -> (Time.add t offset, bw)) base in
      extend (List.rev_append shifted acc) (Time.add offset (Time.sec 25.))
    end
  in
  extend [] 0

let run_one params ~label ~mode ~duration ~batch =
  let engine = Exp_common.create_engine params () in
  let rng = Rng.create ~seed:params.Exp_common.seed in
  let net =
    Topology.pipe engine ~bandwidth_bps:18e6 ~delay:(Time.ms 20) ~qdisc_limit:50
      ~reverse_qdisc_limit:200 ~rng ()
  in
  Cm_dynamics.Scenario.compile engine ~rng
    ~links:[ ("wan", net.Topology.ab) ]
    (Cm_dynamics.Scenario.of_bandwidth_schedule ~name:"fig8-10 vBNS path" ~target:"wan"
       (schedule duration));
  let cm = Cm.create engine ~mtu:1000 () in
  Cm.attach cm net.Topology.a;
  let tel =
    Exp_common.instrument params ~engine
      ~links:[ ("wan", net.Topology.ab); ("rev", net.Topology.ba) ]
      ~cm ()
  in
  let lib = Libcm.create net.Topology.a cm () in
  let _receiver = Udp.Cc_socket.run_echo_receiver net.Topology.b ~port:5004 ?batch () in
  let feedback_timeout =
    (* with batched feedback the sender must tolerate the batching delay
       before declaring persistent loss *)
    match batch with Some (_, d) -> Some (2 * d + Time.ms 500) | None -> None
  in
  let source =
    Cm_apps.Layered.create lib ~host:net.Topology.a
      ~dst:(Addr.endpoint ~host:1 ~port:5004)
      ~layers ~mode ~packet_bytes:1000 ?feedback_timeout ()
  in
  Cm_apps.Layered.start source;
  Engine.run_for engine duration;
  Cm_apps.Layered.stop source;
  Option.iter Telemetry.stop tel;
  let bin = Time.sec 1. in
  let tx = Timeline.rate_series (Cm_apps.Layered.tx_timeline source) ~bin ~until:duration in
  let cmr =
    Timeline.sampled_series (Cm_apps.Layered.rate_timeline source) ~bin ~until:duration
  in
  let samples =
    List.map2
      (fun (t, bytes_per_s) (_, rate_bps) ->
        {
          t_s = Time.to_float_s t;
          tx_kbps = bytes_per_s /. 1000.;
          cm_kbps = (if Float.is_nan rate_bps then 0. else Exp_common.kbps rate_bps);
        })
      tx cmr
  in
  { label; samples }

let run_fig8 params =
  run_one params ~label:"Figure 8: ALF (request/callback) layered source, 25 s"
    ~mode:Cm_apps.Layered.Alf ~duration:(Time.sec 25.) ~batch:None

let run_fig9 params =
  run_one params ~label:"Figure 9: rate-callback layered source, 20 s"
    ~mode:(Cm_apps.Layered.Rate_callback { down = 0.9; up = 1.1 })
    ~duration:(Time.sec 20.) ~batch:None

let run_fig10 params =
  run_one params
    ~label:"Figure 10: rate callback with delayed feedback min(500 acks, 2 s), 70 s"
    ~mode:(Cm_apps.Layered.Rate_callback { down = 0.9; up = 1.1 })
    ~duration:(Time.sec 70.)
    ~batch:(Some (500, Time.sec 2.))

let print { label; samples } =
  Exp_common.print_header label;
  Exp_common.print_row (Printf.sprintf "%-8s %18s %18s" "t(s)" "tx rate (KB/s)" "CM rate (KB/s)");
  List.iter
    (fun s ->
      Exp_common.print_row (Printf.sprintf "%-8.0f %18.0f %18.0f" s.t_s s.tx_kbps s.cm_kbps))
    samples
