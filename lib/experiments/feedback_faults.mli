(** Feedback-plane fault experiment family.

    An honest {!Cmproto} macroflow whose control traffic — and only it —
    is degraded by seeded {!Cm_dynamics.Control_faults} injectors while
    the data path stays pristine.  Cases: lossless baseline; a total
    10 s feedback blackout (the macroflow must decay to its floor
    without auditor strikes and re-attain ≥ 0.9× pre-fault goodput
    within 5 s of feedback returning); a degraded plane (30% drop, 15%
    duplication, 20 ms jitter reordering — goodput must stay within 15%
    of lossless); and a receiver-agent crash/restart exercising the
    epoch/Resync protocol.  Deterministic JSON keyed only by the seed. *)

type result = {
  r_case : string;
  r_pre_bps : float;
  r_fault_bps : float;
  r_recover_bps : float;
  r_recovery_ratio : float;
  r_fault_ratio : float;
  r_floor_cwnd : int;
  r_packets_sent : int;
  r_solicits : int;
  r_defense : Cmproto.Sender_agent.counters;
  r_receiver_epoch : int;
  r_receiver_resyncs : int;
  r_dropped_while_down : int;
  r_injected : Cm_dynamics.Control_faults.counters option;
  r_watchdog_fires : int;
  r_audit_runs : int;
  r_audit_violations : string list;
}

type case = Baseline | Blackout | Degraded | Crash_restart

val run_case : Exp_common.params -> case -> result
(** One case in isolation ([r_fault_ratio] left at 0 — only {!run}
    normalizes against the baseline).  Exposed for the report driver. *)

val run : Exp_common.params -> result list
(** One result per case, baseline first ([r_fault_ratio] is relative to
    the baseline run's fault-window goodput). *)

val to_json : Exp_common.params -> result list -> Exp_common.Json.t

val print : Exp_common.params -> result list -> unit
(** Header plus the JSON document on stdout (byte-stable per seed). *)
