(** Cellular last-mile family (spec-DSL authored).

    A server streams the layered app (ALF mode, 0.5–4 Mbit/s layers) to
    one UE behind a base station.  The downlink runs four {!Cm_spec.Spec.seq}
    phases: steady (8 s), a ramp down to 1.5 Mbit/s, a handoff (three
    300 ms outage flaps), and a ramp back to 8 Mbit/s.  Reports layer
    occupancy, switch count and goodput — the scenario shape the
    in-network-adaptation comparison consumes.  Seeded runs emit
    byte-identical JSON. *)

open Netsim

val spec : Cm_spec.Spec.t
(** The family's DSL source (topology + flow group + seq of phases). *)

type result = {
  r_bytes : int;
  r_packets : int;
  r_goodput_bps : float;
  r_layer_switches : int;
  r_final_layer : int;
  r_layer_occupancy : float array;  (** Fraction of samples spent at each layer rate. *)
  r_down_stats : Link.stats;
}

val run : Exp_common.params -> result
val to_json : Exp_common.params -> result -> Exp_common.Json.t
val print : Exp_common.params -> result -> unit
