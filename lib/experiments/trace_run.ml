(* Instrumented experiment runs: execute one experiment with telemetry
   wired up and export the artifacts (JSONL trace, Chrome trace_event
   document, time-series CSV, metrics snapshot).

   Determinism contract: everything below is driven by the virtual clock
   and the seeded RNG and serialized through [Cm_util.Json], so the same
   [--expt]/[--seed] pair produces byte-identical files — asserted by
   test_telemetry and re-checked in CI by running twice and diffing. *)

open Exp_common

let experiments =
  [
    "fig6"; "fig7"; "fig8"; "fig9"; "scenario_burst"; "scenario_outage"; "scenario_sawtooth";
  ]

(* Deliberately smaller workloads than the figure runs: the artifacts are
   for inspection (Perfetto, spreadsheets), not for the paper's numbers. *)
let run_expt params = function
  | "fig6" -> ignore (Fig6.measure_macro params Fig6.Tcp_cm ~size:1448 ~n:2_000)
  | "fig7" -> ignore (Fig7.run_side params ~use_cm:true ~count:3 ~file_bytes:(64 * 1024))
  | "fig8" -> ignore (Fig8_10.run_fig8 params)
  | "fig9" -> ignore (Fig8_10.run_fig9 params)
  | "scenario_burst" ->
      ignore (Scenarios.run_one params ~scenario:Scenarios.Burst_loss ~app:Scenarios.Tcp_cm_bulk)
  | "scenario_outage" ->
      ignore (Scenarios.run_one params ~scenario:Scenarios.Outage ~app:Scenarios.Tcp_cm_bulk)
  | "scenario_sawtooth" ->
      ignore
        (Scenarios.run_one params ~scenario:Scenarios.Sawtooth ~app:Scenarios.Layered_stream)
  | e ->
      invalid_arg
        (Printf.sprintf "trace: unknown experiment %S (known: %s)" e
           (String.concat ", " experiments))

(* Run instrumented and return the captured telemetry (oldest first: the
   first simulated system an experiment builds comes first). *)
let capture ~expt ~seed =
  (* packet ids are process-global and appear in the trace: restart them
     so repeated in-process captures stay byte-identical *)
  Netsim.Packet.reset_ids ();
  let req = request_telemetry () in
  let params = { default_params with seed; telemetry = Some req } in
  run_expt params expt;
  match List.rev req.captured with
  | [] -> failwith (Printf.sprintf "trace: experiment %S captured no telemetry" expt)
  | tels -> tels

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

type artifact = { a_name : string; a_path : string; a_bytes : int }

let run ?(out_dir = "traces") ~expt ~seed () =
  let tel = List.hd (capture ~expt ~seed) in
  ensure_dir out_dir;
  let emit name contents =
    let path = Filename.concat out_dir (expt ^ name) in
    write_file path contents;
    { a_name = expt ^ name; a_path = path; a_bytes = String.length contents }
  in
  [
    emit ".trace.jsonl" (Telemetry.export_jsonl tel);
    emit ".chrome.json" (Telemetry.export_chrome tel);
    emit ".series.csv" (Telemetry.export_csv tel);
    emit ".metrics.json" (Telemetry.export_metrics_json tel);
  ]

let print artifacts =
  print_header "Trace artifacts";
  List.iter
    (fun a -> print_row (Printf.sprintf "  %-28s %8d bytes  %s" a.a_name a.a_bytes a.a_path))
    artifacts
