(** Many-flow scalability experiment family.

    A web-server-like closed-loop workload driven straight against the CM
    API: N ∈ \{64, 512, 4096, 16384\} concurrent flows spread over N/32
    destination hosts (hundreds of macroflows at the top end), each
    running a fixed number of request → grant → notify → update cycles
    over a synthetic ~2 ms path, with a slice of flows closing and
    reopening mid-run and everything closed at the end.  Run under both
    schedulers (round-robin and weighted stride).

    The deterministic JSON ({!to_json}) reports virtual-time metrics only
    — grant counts, engine events, events-per-grant, request→grant
    latency percentiles, teardown probes — and is byte-identical for a
    fixed seed (the CI scale determinism gate diffs it).  Host wall-clock
    throughput (events/sec) is reported separately by [bench/] in
    BENCH_PR5.json, where sub-linear per-grant cost appears as events/sec
    staying within 2× between N=64 and N=4096. *)

type sched = Rr | Stride

val sched_name : sched -> string

type point = {
  p_sched : sched;
  p_flows : int;
  p_macroflows : int;  (** per-destination macroflows actually created *)
  p_rounds : int;  (** grant cycles per flow *)
  p_grants : int;
  p_closes : int;
  p_events : int;  (** engine callbacks executed *)
  p_virtual_s : float;
  p_lat_p50_us : float;  (** request → grant latency (virtual time) *)
  p_lat_p99_us : float;
  p_teardown_probes : int;  (** {!Cm.teardown_probes} after close-all *)
  p_wall_s : float;  (** host wall clock; excluded from {!to_json} *)
}

val family : int list
(** The standard flow counts: [64; 512; 4096; 16384]. *)

val rounds : int
(** Grant cycles per flow (fixed, so events/sec is comparable across N). *)

val run_point : ?rounds:int -> Exp_common.params -> sched:sched -> flows:int -> point
(** One (scheduler, N) cell.  [rounds] defaults to {!rounds}; the bench
    raises it at small N so every sample covers a comparable wall-clock
    window (a ~1 ms N=64 run with the standard 24 rounds would dodge its
    share of GC and scheduler noise). *)

val run : ?sizes:int list -> Exp_common.params -> point list
(** Every (scheduler, N) cell; [sizes] defaults to {!family}. *)

val to_json : Exp_common.params -> point list -> Exp_common.Json.t
(** Virtual-time metrics only — deterministic for a fixed seed. *)

val print : Exp_common.params -> point list -> unit
(** Header plus the {!to_json} document on one line. *)
