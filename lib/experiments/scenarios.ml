open Cm_util
open Eventsim
open Netsim
open Cm_dynamics

type scenario_id = Burst_loss | Outage | Sawtooth
type app_id = Tcp_cm_bulk | Layered_stream

type result = {
  r_scenario : string;
  r_app : string;
  r_duration : Time.span;
  r_fault_start : Time.t;
  r_fault_clear : Time.t;
  r_goodput_bps : float;
  r_pre_bps : float;
  r_fault_bps : float;
  r_recovery : Time.span option;
  r_layer_switches : int option;
  r_stats : Link.stats;
}

let duration = Time.sec 24.
let warmup = Time.sec 3.
let bin = Time.ms 500

(* ---- canned scenarios --------------------------------------------------- *)

let ge_burst () = Loss.ge ~p_gb:0.01 ~p_bg:0.1 ~loss_bad:0.3 ()
(* stationary loss = (0.01/0.11)·0.3 ≈ 2.7 %, mean burst 10 packets *)

let name_of = function
  | Burst_loss -> "burst-loss"
  | Outage -> "outage-2s"
  | Sawtooth -> "sawtooth-bw"

let fault_steps = function
  | Burst_loss ->
      [
        ( Time.sec 8.,
          Scenario.Loss_burst
            { spec = Scenario.Loss_gilbert_elliott (ge_burst ()); duration = Time.sec 8. } );
      ]
  | Outage -> [ (Time.sec 8., Scenario.Outage (Time.sec 2.)) ]
  | Sawtooth ->
      (* two teeth: ramp 8 → 2 Mbit/s over 3 s, then snap back *)
      let tooth at =
        [
          (at, Scenario.Ramp_bandwidth { to_bps = 2e6; over = Time.sec 3.; steps = 6 });
          (Time.add at (Time.sec 5.), Scenario.Set_bandwidth 8e6);
        ]
      in
      tooth (Time.sec 6.) @ tooth (Time.sec 13.)

let scenario_of id =
  let s =
    Scenario.make ~name:(name_of id)
      (List.map (fun (at, action) -> { Scenario.at; target = "fwd"; action }) (fault_steps id))
  in
  match id with
  | Burst_loss | Outage -> (s, Scenario.fault_window s)
  | Sawtooth ->
      (* renegotiations never "clear" per fault_window; the recovery clock
         starts at the last snap back to full rate *)
      (s, Some (Time.sec 6., Time.sec 18.))

let scenario_name id = (fst (scenario_of id)).Scenario.name
let app_name = function Tcp_cm_bulk -> "tcp-cm-bulk" | Layered_stream -> "layered-alf"

(* ---- topology: handwritten builder vs. the spec DSL --------------------- *)

type via = Handwritten | Dsl

(* The same pipe, authored in the spec algebra.  The parity test checks
   that compiling this (Check.elaborate → Build.instantiate/scenario)
   yields byte-identical family JSON to the Topology.pipe path. *)
let spec_of id =
  Cm_spec.Spec.(
    par
      [
        node "a";
        node "b";
        link ~name:"fwd" ~queue:50 ~bw:8e6 ~lat:(Time.ms 20) "a" "b";
        link ~name:"rev" ~queue:1000 ~bw:8e6 ~lat:(Time.ms 20) "b" "a";
        faults ~target:"fwd" (fault_steps id);
      ])

(* (sender, receiver, fwd, rev, scenario) by either construction path *)
let make_net via engine rng id =
  match via with
  | Handwritten ->
      let net = Topology.pipe engine ~bandwidth_bps:8e6 ~delay:(Time.ms 20) ~qdisc_limit:50 ~rng () in
      (net.Topology.a, net.Topology.b, net.Topology.ab, net.Topology.ba, fst (scenario_of id))
  | Dsl ->
      let ir = Cm_spec.Check.elaborate_exn (spec_of id) in
      let b = Cm_spec.Build.instantiate ~rng engine ir in
      ( Cm_spec.Build.host b "a",
        Cm_spec.Build.host b "b",
        Cm_spec.Build.link b "fwd",
        Cm_spec.Build.link b "rev",
        Cm_spec.Build.scenario ~name:(name_of id) ir )

(* ---- the two applications under test ------------------------------------ *)

(* goodput timeline (value = bytes) + layer switches + forward-link stats *)
let run_bulk params via id =
  let engine = Exp_common.create_engine params () in
  let rng = Rng.create ~seed:params.Exp_common.seed in
  let a, b, ab, ba, scenario = make_net via engine rng id in
  let links = [ ("fwd", ab); ("rev", ba) ] in
  let cm = Cm.create engine () in
  Cm.attach cm a;
  let tel = Exp_common.instrument params ~engine ~links ~cm () in
  let tl = Timeline.create () in
  let _listener =
    Tcp.Conn.listen b ~port:80
      ~on_accept:(fun conn ->
        Tcp.Conn.on_receive conn (fun n -> Timeline.record tl (Engine.now engine) (float_of_int n)))
      ()
  in
  let conn =
    Tcp.Conn.connect a ~dst:(Addr.endpoint ~host:1 ~port:80) ~driver:(Tcp.Conn.Cm_driven cm) ()
  in
  Tcp.Conn.send conn (1 lsl 34);
  Scenario.compile engine ~rng ~links scenario;
  Engine.run_for engine duration;
  Option.iter Telemetry.stop tel;
  Exp_common.maybe_report_prof params engine;
  (tl, None, Link.stats ab)

let run_layered params via id =
  let engine = Exp_common.create_engine params () in
  let rng = Rng.create ~seed:params.Exp_common.seed in
  let a, b, ab, ba, scenario = make_net via engine rng id in
  let links = [ ("fwd", ab); ("rev", ba) ] in
  let cm = Cm.create engine ~mtu:1000 () in
  Cm.attach cm a;
  let tel = Exp_common.instrument params ~engine ~links ~cm () in
  let lib = Libcm.create a cm () in
  let _receiver = Udp.Cc_socket.run_echo_receiver b ~port:5004 () in
  let source =
    Cm_apps.Layered.create lib ~host:a
      ~dst:(Addr.endpoint ~host:1 ~port:5004)
      ~layers:[| 1e6; 2e6; 4e6; 8e6 |]
      ~mode:Cm_apps.Layered.Alf ~packet_bytes:1000 ()
  in
  Cm_apps.Layered.start source;
  Scenario.compile engine ~rng ~links scenario;
  Engine.run_for engine duration;
  Cm_apps.Layered.stop source;
  Option.iter Telemetry.stop tel;
  Exp_common.maybe_report_prof params engine;
  let switches =
    match Timeline.points (Cm_apps.Layered.layer_timeline source) with
    | [] -> 0
    | p0 :: rest ->
        fst
          (List.fold_left
             (fun (n, prev) (p : Timeline.point) ->
               if p.Timeline.value <> prev then (n + 1, p.Timeline.value) else (n, prev))
             (0, p0.Timeline.value) rest)
  in
  (Cm_apps.Layered.tx_timeline source, Some switches, Link.stats ab)

(* ---- metrics ------------------------------------------------------------ *)

let mean xs = match xs with [] -> 0. | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let mean_rate bins ~from_ ~until =
  mean (List.filter_map (fun (t, v) -> if t >= from_ && t < until then Some v else None) bins)

let analyze ~bins_bps ~fault_start ~fault_clear =
  let pre = mean_rate bins_bps ~from_:warmup ~until:fault_start in
  let during = mean_rate bins_bps ~from_:fault_start ~until:fault_clear in
  let recovery =
    (* first full bin at or after clearance that reaches 80 % of the
       pre-fault goodput; the recovery time runs to that bin's end *)
    List.find_map
      (fun (t, v) -> if t >= fault_clear && v >= 0.8 *. pre then Some (t + bin - fault_clear) else None)
      bins_bps
  in
  (pre, during, recovery)

let run_one ?(via = Handwritten) params ~scenario ~app =
  let sc, window = scenario_of scenario in
  let fault_start, fault_clear =
    match window with Some w -> w | None -> (Time.zero, Time.zero)
  in
  let tl, switches, stats =
    match app with
    | Tcp_cm_bulk -> run_bulk params via scenario
    | Layered_stream -> run_layered params via scenario
  in
  let bins_bps =
    List.map (fun (t, bytes_per_s) -> (t, bytes_per_s *. 8.)) (Timeline.rate_series tl ~bin ~until:duration)
  in
  let total_bytes = List.fold_left (fun acc (p : Timeline.point) -> acc +. p.Timeline.value) 0. (Timeline.points tl) in
  let pre, during, recovery = analyze ~bins_bps ~fault_start ~fault_clear in
  {
    r_scenario = sc.Scenario.name;
    r_app = app_name app;
    r_duration = duration;
    r_fault_start = fault_start;
    r_fault_clear = fault_clear;
    r_goodput_bps = total_bytes *. 8. /. Time.to_float_s duration;
    r_pre_bps = pre;
    r_fault_bps = during;
    r_recovery = recovery;
    r_layer_switches = switches;
    r_stats = stats;
  }

let run ?via params =
  List.concat_map
    (fun scenario ->
      List.map (fun app -> run_one ?via params ~scenario ~app) [ Tcp_cm_bulk; Layered_stream ])
    [ Burst_loss; Outage; Sawtooth ]

(* ---- JSON output -------------------------------------------------------- *)

let result_json r =
  let open Exp_common.Json in
  let span_opt = function Some s -> Float (Time.to_float_s s) | None -> Null in
  Obj
    [
      ("scenario", Str r.r_scenario);
      ("app", Str r.r_app);
      ("duration_s", Float (Time.to_float_s r.r_duration));
      ("fault_start_s", Float (Time.to_float_s r.r_fault_start));
      ("fault_clear_s", Float (Time.to_float_s r.r_fault_clear));
      ("goodput_kbps", Float (Exp_common.kbps r.r_goodput_bps));
      ("pre_fault_kbps", Float (Exp_common.kbps r.r_pre_bps));
      ("fault_kbps", Float (Exp_common.kbps r.r_fault_bps));
      ("recovery_s", span_opt r.r_recovery);
      ( "layer_switches",
        match r.r_layer_switches with Some n -> Int n | None -> Null );
      ( "fwd_link",
        Obj
          [
            ("delivered_pkts", Int r.r_stats.Link.delivered_pkts);
            ("queue_drops", Int r.r_stats.Link.queue_drops);
            ("channel_drops", Int r.r_stats.Link.channel_drops);
            ("down_drops", Int r.r_stats.Link.down_drops);
          ] );
    ]

let to_json params results =
  let open Exp_common.Json in
  Obj
    [
      ("seed", Int params.Exp_common.seed);
      ("results", List (List.map result_json results));
    ]

let print params results =
  Exp_common.print_header
    "Scenario experiments: fault injection, dynamics & recovery (JSON)";
  Exp_common.print_row (Exp_common.Json.to_string (to_json params results))
