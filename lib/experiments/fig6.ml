open Cm_util
open Eventsim
open Netsim

type variant = Tcp_linux | Tcp_cm | Tcp_cm_nodelay | Buffered | Alf | Alf_noconnect

let variant_name = function
  | Tcp_linux -> "TCP/Linux"
  | Tcp_cm -> "TCP/CM"
  | Tcp_cm_nodelay -> "TCP/CM nodelay"
  | Buffered -> "Buffered"
  | Alf -> "ALF"
  | Alf_noconnect -> "ALF/noconnect"

let all_variants = [ Alf_noconnect; Alf; Buffered; Tcp_cm_nodelay; Tcp_cm; Tcp_linux ]

type point = { size : int; us_per_packet : float }
type table1_row = { t1_variant : variant; ops_per_packet : (string * float) list }

let sizes = [ 64; 168; 256; 512; 768; 1024; 1448 ]
let window = 32

let make_net params =
  let engine = Exp_common.create_engine params () in
  let rng = Rng.create ~seed:params.Exp_common.seed in
  let net =
    Topology.pipe engine ~bandwidth_bps:100e6 ~delay:(Time.us 50) ~qdisc_limit:500
      ~reverse_qdisc_limit:500 ~rng ~costs:Costs.pentium3 ()
  in
  (engine, net)

(* ------------------------------------------------------------------ *)
(* UDP-based variants: a windowed stop-and-go sender whose per-packet
   boundary crossings follow Table 1, with per-packet acknowledgments. *)

let run_udp variant params ~size ~n =
  let engine, net = make_net params in
  (* the app's packets are [size] bytes; grants reserve one packet each *)
  let cm = Exp_common.create_cm params engine ~mtu:size () in
  Cm.attach cm net.Topology.a;
  let tel =
    Exp_common.instrument params ~engine
      ~links:[ ("ab", net.Topology.ab); ("ba", net.Topology.ba) ]
      ~cm ()
  in
  ignore
    (Exp_common.attach_recorder params ~engine ~tag:"fig6-udp"
       ~links:[ ("ab", net.Topology.ab); ("ba", net.Topology.ba) ]
       ~cm ()
      : Telemetry.Recorder.t option);
  let lib = Libcm.create net.Topology.a cm () in
  let meter = Libcm.meter lib in
  let costs = Host.costs net.Topology.a in
  (* plain per-packet echo receiver on host b *)
  let server = Udp.Socket.create net.Topology.b ~port:70 () in
  Udp.Socket.on_receive server (fun pkt ->
      match pkt.Packet.payload with
      | Udp.Feedback.Data { seq; bytes; ts } ->
          Udp.Socket.sendto server ~dst:pkt.Packet.flow.Addr.src ~payload_bytes:32
            (Udp.Feedback.Ack { max_seq = seq; count = 1; bytes; ts_echo = ts })
      | _ -> ());
  let socket = Udp.Socket.create net.Topology.a () in
  let dst = Addr.endpoint ~host:1 ~port:70 in
  Udp.Socket.connect socket dst;
  let real_key = Addr.flow ~src:(Udp.Socket.local socket) ~dst ~proto:Addr.Udp () in
  (* the unconnected case opens the CM flow under a key the IP layer will
     not match, so the kernel cannot attribute transmissions: the app must
     cm_notify explicitly *)
  let key =
    match variant with
    | Alf_noconnect ->
        (* wildcard-ish source: never matches an outgoing packet *)
        Addr.flow ~src:(Addr.endpoint ~host:0 ~port:1) ~dst ~proto:Addr.Udp ()
    | _ -> real_key
  in
  let fid = Libcm.open_flow lib key in
  let scheduled = ref 0 (* packets committed: send scheduled or request issued *)
  and sent = ref 0
  and acked = ref 0 in
  let t_end = ref None in
  let next_seq = ref 0 in
  (* transmit one committed packet once the CPU has executed the send
     syscall; kernel UDP/IP output is charged before the wire *)
  let send_one_deferred () =
    let extra = costs.Costs.udp_proc + costs.Costs.ip_proc in
    Libcm.Ops.charge_deferred meter ~bytes:size Libcm.Ops.Send (fun () ->
        Cpu.charge (Host.cpu net.Topology.a) extra;
        let seq = !next_seq in
        incr next_seq;
        incr sent;
        Udp.Socket.send socket ~payload_bytes:size
          (Udp.Feedback.Data { seq; bytes = size; ts = Engine.now engine });
        match variant with
        | Alf_noconnect -> Libcm.notify lib fid ~nbytes:size
        | _ -> ())
  in
  let pump () =
    while !scheduled < n && !scheduled - !acked < window do
      incr scheduled;
      match variant with
      | Buffered -> send_one_deferred ()
      | Alf | Alf_noconnect -> Libcm.request lib fid
      | Tcp_linux | Tcp_cm | Tcp_cm_nodelay -> assert false
    done
  in
  (match variant with
  | Alf | Alf_noconnect ->
      (* every issued request corresponds to one committed packet *)
      Libcm.register_send lib fid (fun _ -> send_one_deferred ())
  | _ -> ());
  Udp.Socket.on_receive socket (fun pkt ->
      match pkt.Packet.payload with
      | Udp.Feedback.Ack { max_seq = _; count; bytes; ts_echo } ->
          (* receive interrupt, kernel UDP input, then the app's recv and
             RTT timestamping *)
          Cpu.charge (Host.cpu net.Topology.a) (costs.Costs.intr_rx + costs.Costs.udp_proc);
          Libcm.app_recv lib ~bytes:32;
          Libcm.app_gettimeofday lib;
          Libcm.app_gettimeofday lib;
          acked := !acked + count;
          let rtt = Time.diff (Engine.now engine) ts_echo in
          Libcm.update lib fid ~nsent:bytes ~nrecd:bytes ~loss:Cm.Cm_types.No_loss ~rtt ();
          if !acked >= n && !t_end = None then t_end := Some (Engine.now engine)
          else pump ()
      | _ -> ());
  let t0 = Engine.now engine in
  pump ();
  let guard = ref 0 in
  while !t_end = None && !guard < 2_000 do
    incr guard;
    Engine.run_for engine (Time.ms 50)
  done;
  let finish = match !t_end with Some t -> t | None -> Engine.now engine in
  let us = Time.to_float_us (Time.diff finish t0) /. float_of_int n in
  Option.iter Telemetry.stop tel;
  Exp_common.maybe_report_prof params engine;
  (us, meter, engine, net)

(* ------------------------------------------------------------------ *)
(* TCP-based variants *)

let run_tcp variant params ~size ~n =
  let engine, net = make_net params in
  let cm = Exp_common.create_cm params engine ~mtu:size () in
  Cm.attach cm net.Topology.a;
  let tel =
    Exp_common.instrument params ~engine
      ~links:[ ("ab", net.Topology.ab); ("ba", net.Topology.ba) ]
      ~cm ()
  in
  ignore
    (Exp_common.attach_recorder params ~engine ~tag:"fig6-tcp"
       ~links:[ ("ab", net.Topology.ab); ("ba", net.Topology.ba) ]
       ~cm ()
      : Telemetry.Recorder.t option);
  let lib = Libcm.create net.Topology.a cm () in
  let meter = Libcm.meter lib in
  let delayed = variant <> Tcp_cm_nodelay in
  (* window-limited like the paper's test programs: the experiment measures
     per-packet overhead, not congestion dynamics *)
  let config =
    { Tcp.Conn.default_config with Tcp.Conn.mss = size; delayed_acks = delayed; rwnd = 32 * size }
  in
  let driver =
    match variant with
    | Tcp_linux -> Tcp.Conn.Native
    | Tcp_cm | Tcp_cm_nodelay -> Tcp.Conn.Cm_driven cm
    | _ -> assert false
  in
  (* the webserver-like app: one send() and one select() per packet,
     charged as its data segments hit the IP layer *)
  Host.add_tx_hook net.Topology.a (fun pkt ->
      if pkt.Packet.flow.Addr.proto = Addr.Tcp && Packet.payload_bytes pkt > 0 then begin
        Libcm.Ops.charge meter ~bytes:size Libcm.Ops.Send;
        Libcm.Ops.charge meter ~nfds:1 Libcm.Ops.Select
      end);
  let total = n * size in
  let delivered = ref 0 in
  let t_end = ref None in
  let _listener =
    Tcp.Conn.listen net.Topology.b ~port:80 ~config
      ~on_accept:(fun conn ->
        Tcp.Conn.on_receive conn (fun got ->
            delivered := !delivered + got;
            if !delivered >= total && !t_end = None then t_end := Some (Engine.now engine)))
      ()
  in
  let conn =
    Tcp.Conn.connect net.Topology.a ~dst:(Addr.endpoint ~host:1 ~port:80) ~driver ~config ()
  in
  let t0 = Engine.now engine in
  Tcp.Conn.send conn total;
  let guard = ref 0 in
  while !t_end = None && !guard < 2_000 do
    incr guard;
    Engine.run_for engine (Time.ms 50)
  done;
  let finish = match !t_end with Some t -> t | None -> Engine.now engine in
  let us = Time.to_float_us (Time.diff finish t0) /. float_of_int n in
  Option.iter Telemetry.stop tel;
  Exp_common.maybe_report_prof params engine;
  (us, meter, engine, net)

let run_variant_full variant params ~size ~n =
  match variant with
  | Buffered | Alf | Alf_noconnect -> run_udp variant params ~size ~n
  | Tcp_linux | Tcp_cm | Tcp_cm_nodelay -> run_tcp variant params ~size ~n

let run_variant variant params ~size ~n =
  let us, meter, _, _ = run_variant_full variant params ~size ~n in
  (us, meter)

let packets params = if params.Exp_common.full then 200_000 else 20_000

let run params =
  let n = packets params in
  List.map
    (fun v ->
      let points =
        List.map (fun size -> { size; us_per_packet = fst (run_variant v params ~size ~n) }) sizes
      in
      (v, points))
    all_variants

let run_table1 params =
  let n = 5_000 in
  List.map
    (fun v ->
      let _, meter = run_variant v params ~size:168 ~n in
      let ops =
        List.filter_map
          (fun kind ->
            let c = Libcm.Ops.count meter kind in
            if c = 0 then None
            else Some (Libcm.Ops.to_string kind, float_of_int c /. float_of_int n))
          Libcm.Ops.all
      in
      { t1_variant = v; ops_per_packet = ops })
    all_variants

let print series =
  Exp_common.print_header "Figure 6: API overhead, microseconds per packet vs packet size";
  let header =
    List.fold_left
      (fun acc (v, _) -> acc ^ Printf.sprintf "%16s" (variant_name v))
      (Printf.sprintf "%-8s" "size") series
  in
  Exp_common.print_row header;
  List.iter
    (fun size ->
      let row =
        List.fold_left
          (fun acc (_, points) ->
            let p = List.find (fun p -> p.size = size) points in
            acc ^ Printf.sprintf "%16.1f" p.us_per_packet)
          (Printf.sprintf "%-8d" size)
          series
      in
      Exp_common.print_row row)
    sizes

let print_table1 rows =
  Exp_common.print_header
    "Table 1: measured user/kernel boundary crossings per packet (168-byte packets)";
  List.iter
    (fun { t1_variant; ops_per_packet } ->
      Exp_common.print_row (Printf.sprintf "%-16s" (variant_name t1_variant));
      List.iter
        (fun (name, per_pkt) ->
          Exp_common.print_row (Printf.sprintf "    %-16s %6.2f /pkt" name per_pkt))
        ops_per_packet)
    rows

let measure_variant params variant ~size ~n = run_variant variant params ~size ~n

(* ------------------------------------------------------------------ *)
(* Simulator-level diagnostics of a Fig. 6 run: the event-core macro
   workload used by bench/ for the events-per-second trajectory and by the
   determinism regression test. *)

type macro_stats = {
  m_us_per_packet : float;
  m_events : int;  (** engine callbacks executed *)
  m_final_clock : Time.t;  (** virtual clock at the end of the run *)
  m_fwd : Link.stats;  (** forward (a → b) link counters *)
  m_rev : Link.stats;  (** reverse (b → a) link counters *)
}

let measure_macro params variant ~size ~n =
  let us, _meter, engine, net = run_variant_full variant params ~size ~n in
  {
    m_us_per_packet = us;
    m_events = Engine.events_executed engine;
    m_final_clock = Engine.now engine;
    m_fwd = Link.stats net.Topology.ab;
    m_rev = Link.stats net.Topology.ba;
  }
