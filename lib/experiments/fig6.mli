(** Figure 6 and Table 1: per-packet API overhead.

    Windowed streaming of [n] packets over a clean 100 Mbps link with the
    Pentium-III cost model, once per API:

    - [TCP/Linux] — native kernel TCP, delayed ACKs;
    - [TCP/CM] — TCP with CM congestion control, delayed ACKs;
    - [TCP/CM nodelay] — same without delayed ACKs (the paper's baseline
      for the UDP comparisons);
    - [Buffered] — congestion-controlled UDP socket: the app pays a recv
      and two gettimeofday per feedback packet;
    - [ALF] — request/callback: adds one cm_request ioctl per packet and
      an extra descriptor in the select set;
    - [ALF/noconnect] — adds one explicit cm_notify ioctl per packet.

    Reported: wall-clock microseconds per packet versus packet size
    (Fig. 6), and the measured per-packet boundary-operation counts for
    each API at 168-byte packets (Table 1). *)

type variant = Tcp_linux | Tcp_cm | Tcp_cm_nodelay | Buffered | Alf | Alf_noconnect

val variant_name : variant -> string
(** Display label matching the paper's legend. *)

val all_variants : variant list
(** In the paper's legend order. *)

type point = { size : int; us_per_packet : float }

type table1_row = { t1_variant : variant; ops_per_packet : (string * float) list }
(** Measured boundary crossings per data packet. *)

val run : Exp_common.params -> (variant * point list) list
(** The Fig. 6 sweep (packet sizes 64–1448 bytes). *)

val run_table1 : Exp_common.params -> table1_row list
(** Per-packet operation counts at 168-byte packets. *)

val print : (variant * point list) list -> unit
(** Print the Fig. 6 series. *)

val print_table1 : table1_row list -> unit
(** Print the Table 1 matrix. *)

val measure_variant :
  Exp_common.params -> variant -> size:int -> n:int -> float * Libcm.Ops.meter
(** One variant run: (µs per packet, the boundary-operation meter) —
    reused by the CM-protocol extension experiment. *)

type macro_stats = {
  m_us_per_packet : float;
  m_events : int;  (** Engine callbacks executed. *)
  m_final_clock : Cm_util.Time.t;  (** Virtual clock at the end of the run. *)
  m_fwd : Netsim.Link.stats;  (** Forward (a → b) link counters. *)
  m_rev : Netsim.Link.stats;  (** Reverse (b → a) link counters. *)
}
(** Simulator-level diagnostics of one Fig. 6 run. *)

val measure_macro : Exp_common.params -> variant -> size:int -> n:int -> macro_stats
(** One variant run reported as event-core diagnostics — the macro workload
    behind the bench events-per-second figure and the determinism
    regression test (same seed ⇒ identical [macro_stats]). *)
