(** CDN edge flash-crowd family (spec-DSL authored).

    Two edge servers, each with 1024 access clients behind a shared
    100 Mbit/s trunk ({!Cm_spec.Spec.clients}).  64 clients per server
    fetch steadily from t=0; at t=2 s the remaining 960 per server pile
    on within a second.  Each server's CM aggregates congestion state
    across all of its clients' connections; the outputs are the latency
    split between the baseline and crowd cohorts and the trunks' queue
    behaviour.  Seeded runs emit byte-identical JSON. *)

open Netsim

val spec : Cm_spec.Spec.t
(** The family's DSL source. *)

type cohort = {
  c_name : string;
  c_clients : int;
  c_done : int;  (** Clients whose whole fetch sequence finished. *)
  c_fetches : int;
  c_lat_mean_s : float;
  c_lat_p50_s : float;
  c_lat_p95_s : float;
  c_lat_max_s : float;
}

type result = { r_cohorts : cohort list; r_trunks : (string * Link.stats) list }

val run : Exp_common.params -> result
val to_json : Exp_common.params -> result -> Exp_common.Json.t
val print : Exp_common.params -> result -> unit
