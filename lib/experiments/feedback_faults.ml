open Cm_util
open Eventsim
open Netsim
open Cm_dynamics

(* Feedback-plane fault experiment family: an honest cmproto macroflow
   whose *control* traffic — and only it — is degraded by seeded
   Control_faults injectors, while the data path stays pristine.  Four
   cases quantify the cmproto hardening: a lossless baseline, a total
   10 s feedback blackout (decay to the floor, recover by slow start), a
   degraded plane (30% drop + 15% duplication + 20 ms jitter reordering),
   and a receiver-agent crash/restart resynchronization.  The CM runs
   fully defended, the invariant auditor sweeps every 500 ms, and the
   output is deterministic JSON keyed only by the seed. *)

type case = Baseline | Blackout | Degraded | Crash_restart

let all_cases = [ Baseline; Blackout; Degraded; Crash_restart ]

let case_name = function
  | Baseline -> "baseline"
  | Blackout -> "blackout"
  | Degraded -> "degraded"
  | Crash_restart -> "crash_restart"

let duration = Time.sec 28.
let warmup = Time.sec 3.
let fault_at = Time.sec 8.
let fault_hold = Time.sec 10.
let fault_end = Time.add fault_at fault_hold

(* the ISSUE acceptance window: goodput back to >= 0.9x pre-fault within
   5 s of feedback returning; we measure the tail half of that window *)
let recover_from = Time.add fault_end (Time.sec 2.5)
let recover_until = Time.add fault_end (Time.sec 5.)
let packet_bytes = 1000
let window = 64

let blackout_profile =
  { Control_faults.drop = 1.0; dup = 0.0; delay = 0; jitter = 0 }

let degraded_profile =
  { Control_faults.drop = 0.3; dup = 0.15; delay = 0; jitter = Time.ms 20 }

type result = {
  r_case : string;
  r_pre_bps : float;  (** receiver goodput, warmup → fault onset *)
  r_fault_bps : float;  (** receiver goodput across the fault window *)
  r_recover_bps : float;  (** receiver goodput in the acceptance window *)
  r_recovery_ratio : float;  (** recover vs own pre-fault *)
  r_fault_ratio : float;  (** fault-window goodput vs the baseline run's *)
  r_floor_cwnd : int;  (** smallest cwnd observed during the fault *)
  r_packets_sent : int;
  r_solicits : int;
  r_defense : Cmproto.Sender_agent.counters;
  r_receiver_epoch : int;
  r_receiver_resyncs : int;
  r_dropped_while_down : int;
  r_injected : Control_faults.counters option;  (** sender-side injector *)
  r_watchdog_fires : int;
  r_audit_runs : int;
  r_audit_violations : string list;
}

let window_bps tl ~from_ ~until =
  let bytes =
    List.fold_left
      (fun acc (p : Timeline.point) ->
        if p.Timeline.time >= from_ && p.Timeline.time < until then acc +. p.Timeline.value
        else acc)
      0. (Timeline.points tl)
  in
  bytes *. 8. /. Time.to_float_s (Time.diff until from_)

let run_case params case =
  let engine = Exp_common.create_engine params () in
  let rng = Rng.create ~seed:params.Exp_common.seed in
  let net = Topology.pipe engine ~bandwidth_bps:8e6 ~delay:(Time.ms 20) ~qdisc_limit:50 ~rng () in
  (* this family always runs defended — it measures the defenses *)
  let cm = Exp_common.create_cm { params with Exp_common.defenses = true } engine () in
  Cm.attach cm net.Topology.a;
  let tel =
    Exp_common.instrument params ~engine
      ~links:[ ("fwd", net.Topology.ab); ("rev", net.Topology.ba) ]
      ~cm ()
  in
  (* control-plane injectors go on first: host receive filters run in
     registration order, and the agents' filters must see what survives
     injection, not the other way around *)
  let snd_inj = Control_faults.install net.Topology.a ~classify:Cmproto.is_control in
  let rcv_inj = Control_faults.install net.Topology.b ~classify:Cmproto.is_control in
  let agent = Cmproto.Sender_agent.install net.Topology.a cm in
  Option.iter (fun t -> Cmproto.Sender_agent.register_gauges agent t) tel;
  let receiver = Cmproto.Receiver_agent.install net.Topology.b ~ack_every:2 () in
  (* receiver-side goodput: whatever reaches the application after the
     agent strips the CM header (registered after the receiver agent, so
     it sees the unwrapped survivors only) *)
  let goodput = Timeline.create () in
  Host.add_rx_filter net.Topology.b (fun pkt ->
      (match pkt.Packet.payload with
      | Packet.Raw bytes when pkt.Packet.flow.Addr.dst.Addr.port = 7000 ->
          Timeline.record goodput (Engine.now engine) (float_of_int bytes)
      | _ -> ());
      Some pkt);
  let session =
    Cmproto.Session.create agent ~host:net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ~queue_limit_pkts:(window * 2) ()
  in
  (* an unbounded source: keep the session's queue topped up *)
  let pump =
    Timer.create engine ~callback:(fun () ->
        while Cmproto.Session.queued session < window do
          Cmproto.Session.send session packet_bytes
        done)
  in
  Timer.start_periodic pump (Time.ms 2);
  (* the fault schedule, as a Scenario over the control injectors *)
  let scenario_steps =
    match case with
    | Baseline | Crash_restart -> []
    | Blackout ->
        (* both directions dark: feedback dies at the sender, solicits at
           the receiver — a total control-plane partition *)
        [
          { Scenario.at = fault_at; target = "snd"; action = Scenario.Control_fault { profile = blackout_profile; duration = fault_hold } };
          { Scenario.at = fault_at; target = "rcv"; action = Scenario.Control_fault { profile = blackout_profile; duration = fault_hold } };
        ]
    | Degraded ->
        [
          { Scenario.at = fault_at; target = "snd"; action = Scenario.Control_fault { profile = degraded_profile; duration = fault_hold } };
        ]
  in
  (match scenario_steps with
  | [] -> ()
  | steps ->
      let sc = Scenario.make ~name:(case_name case) steps in
      Scenario.compile engine ~rng:(Rng.split rng) ~links:[]
        ~controls:[ ("snd", snd_inj); ("rcv", rcv_inj) ]
        sc);
  (match case with
  | Crash_restart ->
      ignore (Engine.schedule_at engine fault_at (fun () -> Cmproto.Receiver_agent.crash receiver));
      ignore
        (Engine.schedule_at engine (Time.add fault_at (Time.sec 2.)) (fun () ->
             Cmproto.Receiver_agent.restart receiver))
  | Baseline | Blackout | Degraded -> ());
  (* invariant auditor sweep every 500 ms *)
  let audit_runs = ref 0 in
  let violations = ref [] in
  let rec audit () =
    incr audit_runs;
    let rep = Cm.Audit.run cm in
    List.iter
      (fun v -> if not (List.mem v !violations) then violations := !violations @ [ v ])
      rep.Cm.Audit.violations;
    ignore (Engine.schedule_after engine (Time.ms 500) audit)
  in
  ignore (Engine.schedule_at engine (Time.ms 250) audit);
  (* floor probe: smallest cwnd while the fault holds (100 ms resolution) *)
  let floor_cwnd = ref max_int in
  let rec probe () =
    let now = Engine.now engine in
    if now >= fault_at && now < fault_end then begin
      let st = Cm.query cm (Cmproto.Session.flow session) in
      if st.Cm.Cm_types.cwnd < !floor_cwnd then floor_cwnd := st.Cm.Cm_types.cwnd
    end;
    if now < fault_end then ignore (Engine.schedule_after engine (Time.ms 100) probe)
  in
  ignore (Engine.schedule_at engine fault_at probe);
  Engine.run_for engine duration;
  Timer.stop pump;
  Option.iter Telemetry.stop tel;
  Exp_common.maybe_report_prof params engine;
  let injected =
    match case with
    | Baseline | Crash_restart -> None
    | Blackout | Degraded -> Some (Control_faults.counters snd_inj)
  in
  let pre = window_bps goodput ~from_:warmup ~until:fault_at in
  let fault = window_bps goodput ~from_:fault_at ~until:fault_end in
  let recover = window_bps goodput ~from_:recover_from ~until:recover_until in
  {
    r_case = case_name case;
    r_pre_bps = pre;
    r_fault_bps = fault;
    r_recover_bps = recover;
    r_recovery_ratio = (if pre > 0. then recover /. pre else 0.);
    r_fault_ratio = 0.;
    r_floor_cwnd = (if !floor_cwnd = max_int then 0 else !floor_cwnd);
    r_packets_sent = Cmproto.Session.packets_sent session;
    r_solicits = Cmproto.Session.solicits_sent session;
    r_defense = Cmproto.Sender_agent.counters agent;
    r_receiver_epoch = Cmproto.Receiver_agent.epoch receiver;
    r_receiver_resyncs = Cmproto.Receiver_agent.resyncs_sent receiver;
    r_dropped_while_down = Cmproto.Receiver_agent.dropped_while_down receiver;
    r_injected = injected;
    r_watchdog_fires = Cm.watchdog_fires cm;
    r_audit_runs = !audit_runs;
    r_audit_violations = !violations;
  }

let run params =
  let baseline = run_case params Baseline in
  let base_fault = baseline.r_fault_bps in
  List.map
    (fun case ->
      let r = if case = Baseline then baseline else run_case params case in
      { r with r_fault_ratio = (if base_fault > 0. then r.r_fault_bps /. base_fault else 0.) })
    all_cases

(* ---- JSON output -------------------------------------------------------- *)

let result_json r =
  let open Exp_common.Json in
  let d = r.r_defense in
  Obj
    [
      ("case", Str r.r_case);
      ("pre_kbps", Float (Exp_common.kbps r.r_pre_bps));
      ("fault_kbps", Float (Exp_common.kbps r.r_fault_bps));
      ("recover_kbps", Float (Exp_common.kbps r.r_recover_bps));
      ("recovery_ratio", Float r.r_recovery_ratio);
      ("fault_ratio_vs_baseline", Float r.r_fault_ratio);
      ("floor_cwnd_bytes", Int r.r_floor_cwnd);
      ("packets_sent", Int r.r_packets_sent);
      ("solicits", Int r.r_solicits);
      ( "defense",
        Obj
          [
            ("feedback_received", Int d.Cmproto.Sender_agent.feedback_received);
            ("orphan_feedback", Int d.Cmproto.Sender_agent.orphan_feedback);
            ("dup_feedback", Int d.Cmproto.Sender_agent.dup_feedback);
            ("stale_feedback", Int d.Cmproto.Sender_agent.stale_feedback);
            ("bad_echoes", Int d.Cmproto.Sender_agent.bad_echoes);
            ("resyncs", Int d.Cmproto.Sender_agent.resyncs);
          ] );
      ("receiver_epoch", Int r.r_receiver_epoch);
      ("receiver_resyncs", Int r.r_receiver_resyncs);
      ("dropped_while_down", Int r.r_dropped_while_down);
      ( "injected",
        match r.r_injected with
        | None -> Null
        | Some c ->
            Obj
              [
                ("matched", Int c.Control_faults.matched);
                ("passed", Int c.Control_faults.passed);
                ("dropped", Int c.Control_faults.dropped);
                ("duplicated", Int c.Control_faults.duplicated);
                ("delayed", Int c.Control_faults.delayed);
              ] );
      ("watchdog_fires", Int r.r_watchdog_fires);
      ("audit_runs", Int r.r_audit_runs);
      ("audit_ok", Bool (r.r_audit_violations = []));
      ("audit_violations", List (List.map (fun v -> Str v) r.r_audit_violations));
    ]

let to_json params results =
  let open Exp_common.Json in
  Obj
    [
      ("seed", Int params.Exp_common.seed);
      ("duration_s", Float (Time.to_float_s duration));
      ("fault_window_s", List [ Float (Time.to_float_s fault_at); Float (Time.to_float_s fault_end) ]);
      ("results", List (List.map result_json results));
    ]

let print params results =
  Exp_common.print_header
    "Feedback-plane faults: blackout / degradation / receiver restart vs the cmproto hardening \
     (JSON)";
  Exp_common.print_row (Exp_common.Json.to_string (to_json params results))
