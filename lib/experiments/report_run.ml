(* Run-report driver: run one experiment family instrumented, feed the
   captured telemetry through the health analyzer (lib/report), and
   export the verdicts as JSON + markdown.

   Determinism contract: the analyzer consumes only virtual-time data
   (sampler columns, metric snapshots, trace events) and renders through
   [Cm_util.Json], so the same [--expt]/[--seed] pair produces
   byte-identical report JSON — CI runs each family twice and diffs. *)

open Exp_common

let experiments =
  [ "fig6"; "fig7"; "fig8"; "fig9"; "scenarios"; "app_faults"; "feedback_faults" ]

(* One capture = one (sub-run name, telemetry) list.  Families that run a
   single simulated system report under their own name; multi-system
   families get one report per sub-run. *)
let capture ~expt ~seed =
  let trace_capture e = List.map (fun tel -> (expt, tel)) (Trace_run.capture ~expt:e ~seed) in
  match expt with
  | "fig6" | "fig7" | "fig8" | "fig9" -> trace_capture expt
  | "scenarios" ->
      List.map
        (fun sub ->
          let name = "scenario_" ^ sub in
          (name, List.hd (Trace_run.capture ~expt:name ~seed)))
        [ "burst"; "outage"; "sawtooth" ]
  | "app_faults" ->
      (* the storm case exercises the defenses end to end; the baseline
         case would report all-pass, which is less interesting to read *)
      Netsim.Packet.reset_ids ();
      let req = request_telemetry () in
      let params = { default_params with seed; telemetry = Some req } in
      ignore (App_faults.run_case params App_faults.Storm);
      List.map (fun tel -> ("app_faults_storm", tel)) (List.rev req.captured)
  | "feedback_faults" ->
      (* the blackout case drives every defense counter; the baseline
         would report all-pass *)
      Netsim.Packet.reset_ids ();
      let req = request_telemetry () in
      let params = { default_params with seed; telemetry = Some req } in
      ignore (Feedback_faults.run_case params Feedback_faults.Blackout);
      List.map (fun tel -> ("feedback_faults_blackout", tel)) (List.rev req.captured)
  | e ->
      invalid_arg
        (Printf.sprintf "report: unknown experiment %S (known: %s)" e
           (String.concat ", " experiments))

let analyze_all ~expt ~seed =
  List.map
    (fun (name, tel) -> (name, Cm_report.Analyze.analyze (Cm_report.Analyze.of_telemetry tel)))
    (capture ~expt ~seed)

let report_json reports =
  match reports with
  | [ (_, r) ] -> Cm_report.Analyze.to_json r
  | _ -> Json.Obj (List.map (fun (name, r) -> (name, Cm_report.Analyze.to_json r)) reports)

let report_markdown ~expt reports =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# Run report: %s\n" expt);
  List.iter
    (fun (name, r) ->
      if List.length reports > 1 then Buffer.add_string buf (Printf.sprintf "\n## %s\n" name);
      Buffer.add_string buf (Cm_report.Analyze.to_markdown r))
    reports;
  Buffer.contents buf

type artifact = { a_name : string; a_path : string; a_bytes : int }

let run ?(out_dir = "reports") ~expt ~seed () =
  let reports = analyze_all ~expt ~seed in
  Trace_run.ensure_dir out_dir;
  let emit name contents =
    let path = Filename.concat out_dir (expt ^ name) in
    Trace_run.write_file path contents;
    { a_name = expt ^ name; a_path = path; a_bytes = String.length contents }
  in
  let json = Json.to_string (report_json reports) ^ "\n" in
  let artifacts =
    [ emit ".report.json" json; emit ".report.md" (report_markdown ~expt reports) ]
  in
  (* the machine channel also goes to stdout so CI can twice-run diff it
     without touching the filesystem *)
  print_string json;
  artifacts

let print artifacts =
  List.iter
    (fun a ->
      prerr_endline (Printf.sprintf "  %-28s %8d bytes  %s" a.a_name a.a_bytes a.a_path))
    artifacts
