open Cm_util
open Eventsim
open Netsim

(* ------------------------------------------------------------------ *)
(* Scheduler ablation *)

type sched_row = {
  scheduler : string;
  flow_a_bytes : int;
  flow_b_bytes : int;
  share_ratio : float;
}

let run_one_sched params ~name ~scheduler ~weight_a =
  let engine = Exp_common.create_engine params () in
  let rng = Rng.create ~seed:params.Exp_common.seed in
  let net = Topology.pipe engine ~bandwidth_bps:4e6 ~delay:(Time.ms 20) ~rng () in
  let cm = Cm.create engine ~mtu:1000 ~scheduler () in
  Cm.attach cm net.Topology.a;
  let _r1 = Udp.Cc_socket.run_echo_receiver net.Topology.b ~port:7001 () in
  let _r2 = Udp.Cc_socket.run_echo_receiver net.Topology.b ~port:7002 () in
  let sock_a = Udp.Cc_socket.create net.Topology.a ~cm ~dst:(Addr.endpoint ~host:1 ~port:7001) () in
  let sock_b = Udp.Cc_socket.create net.Topology.a ~cm ~dst:(Addr.endpoint ~host:1 ~port:7002) () in
  (match weight_a with
  | Some w -> Cm.set_weight cm (Udp.Cc_socket.flow sock_a) w
  | None -> ());
  (* keep both sockets backlogged *)
  let tick () =
    List.iter
      (fun s ->
        let room = 64 - Udp.Cc_socket.queued s in
        for _ = 1 to room do
          Udp.Cc_socket.send s 1000
        done)
      [ sock_a; sock_b ]
  in
  let timer = Timer.create engine ~callback:tick in
  tick ();
  Timer.start_periodic timer (Time.ms 50);
  Engine.run_for engine (Time.sec 20.);
  Timer.stop timer;
  let a = Udp.Cc_socket.bytes_sent sock_a and b = Udp.Cc_socket.bytes_sent sock_b in
  {
    scheduler = name;
    flow_a_bytes = a;
    flow_b_bytes = b;
    share_ratio = float_of_int a /. float_of_int (Stdlib.max 1 b);
  }

let run_scheduler params =
  [
    run_one_sched params ~name:"round-robin" ~scheduler:Cm.Scheduler.round_robin ~weight_a:None;
    run_one_sched params ~name:"weighted 3:1" ~scheduler:Cm.Scheduler.weighted
      ~weight_a:(Some 3.0);
  ]

(* ------------------------------------------------------------------ *)
(* Controller ablation *)

type ctrl_row = { controller : string; mean_kbps : float; cv : float }

let run_one_ctrl params ~name ~controller =
  let engine = Exp_common.create_engine params () in
  let rng = Rng.create ~seed:params.Exp_common.seed in
  let net =
    Topology.pipe engine ~bandwidth_bps:8e6 ~delay:(Time.ms 25) ~qdisc_limit:30 ~rng ()
  in
  let cm = Cm.create engine ~mtu:1000 ~controller () in
  Cm.attach cm net.Topology.a;
  let receiver = Udp.Cc_socket.run_echo_receiver net.Topology.b ~port:7001 () in
  ignore receiver;
  let sock = Udp.Cc_socket.create net.Topology.a ~cm ~dst:(Addr.endpoint ~host:1 ~port:7001) () in
  let tick () =
    let room = 64 - Udp.Cc_socket.queued sock in
    for _ = 1 to room do
      Udp.Cc_socket.send sock 1000
    done
  in
  let timer = Timer.create engine ~callback:tick in
  tick ();
  Timer.start_periodic timer (Time.ms 20);
  (* sample the delivered rate every 100 ms after 2 s of warmup *)
  let samples = Stats.create () in
  let last_bytes = ref 0 in
  let sampler =
    Timer.create engine ~callback:(fun () ->
        let b = Udp.Cc_socket.bytes_sent sock in
        if Time.to_float_s (Engine.now engine) > 2. then
          Stats.add samples (float_of_int (b - !last_bytes) /. 0.1 /. 1000.);
        last_bytes := b)
  in
  Timer.start_periodic sampler (Time.ms 100);
  Engine.run_for engine (Time.sec 30.);
  Timer.stop timer;
  Timer.stop sampler;
  let mean = Stats.mean samples in
  { controller = name; mean_kbps = mean; cv = Stats.stddev samples /. mean }

let run_controller params =
  [
    run_one_ctrl params ~name:"AIMD" ~controller:(Cm.Controller.aimd ());
    run_one_ctrl params ~name:"IIAD (k=1,l=0)" ~controller:(Cm.Controller.iiad ());
    run_one_ctrl params ~name:"SQRT (k=.5,l=.5)" ~controller:(Cm.Controller.sqrt_ctl ());
    run_one_ctrl params ~name:"equation (TFRC)" ~controller:(Cm.Controller.equation ());
  ]

(* ------------------------------------------------------------------ *)
(* Sharing ablation *)

type share_row = {
  setup : string;
  mean_completion_ms : float;
  max_completion_ms : float;
  total_retransmits : int;
}

let run_one_share params ~name ~use_cm =
  let engine = Exp_common.create_engine params () in
  let rng = Rng.create ~seed:params.Exp_common.seed in
  let net =
    Topology.pipe engine ~bandwidth_bps:6e6 ~delay:(Time.ms 25) ~qdisc_limit:40 ~rng ()
  in
  let server_driver =
    if use_cm then begin
      let cm = Cm.create engine () in
      Cm.attach cm net.Topology.b;
      Tcp.Conn.Cm_driven cm
    end
    else Tcp.Conn.Native
  in
  let retransmits = ref 0 in
  let _server =
    Tcp.Conn.listen net.Topology.b ~port:80 ~driver:server_driver
      ~on_accept:(fun conn ->
        let responded = ref false in
        Tcp.Conn.on_receive conn (fun _ ->
            if not !responded then begin
              responded := true;
              Tcp.Conn.send conn (256 * 1024);
              Tcp.Conn.close conn
            end);
        Tcp.Conn.on_closed conn (fun () ->
            retransmits := !retransmits + (Tcp.Conn.stats conn).Tcp.Conn.retransmits))
      ()
  in
  let results = ref [] in
  Cm_apps.Web.concurrent_fetches net.Topology.a
    ~dst:(Addr.endpoint ~host:1 ~port:80)
    ~expect_bytes:(256 * 1024) ~count:4
    ~on_done:(fun rs -> results := rs)
    ();
  Engine.run_for engine (Time.sec 30.);
  let durations =
    List.map (fun r -> Time.to_float_ms r.Cm_apps.Web.duration) !results
  in
  match durations with
  | [] -> failwith "ablation_share: fetches did not complete"
  | ds ->
      {
        setup = name;
        mean_completion_ms = List.fold_left ( +. ) 0. ds /. float_of_int (List.length ds);
        max_completion_ms = List.fold_left Float.max 0. ds;
        total_retransmits = !retransmits;
      }

let run_sharing params =
  [
    run_one_share params ~name:"independent (4x TCP/Linux)" ~use_cm:false;
    run_one_share params ~name:"shared macroflow (4x TCP/CM)" ~use_cm:true;
  ]

(* ------------------------------------------------------------------ *)

let print_scheduler rows =
  Exp_common.print_header "Ablation: macroflow scheduler (two backlogged CC-UDP flows, 20 s)";
  Exp_common.print_row (Printf.sprintf "%-14s %12s %12s %8s" "scheduler" "flowA(B)" "flowB(B)" "A/B");
  List.iter
    (fun r ->
      Exp_common.print_row
        (Printf.sprintf "%-14s %12d %12d %8.2f" r.scheduler r.flow_a_bytes r.flow_b_bytes
           r.share_ratio))
    rows

let print_controller rows =
  Exp_common.print_header "Ablation: congestion controller family (8 Mbps bottleneck, 30 s)";
  Exp_common.print_row (Printf.sprintf "%-18s %14s %14s" "controller" "mean KB/s" "rate CV");
  List.iter
    (fun r ->
      Exp_common.print_row (Printf.sprintf "%-18s %14.1f %14.3f" r.controller r.mean_kbps r.cv))
    rows

let print_sharing rows =
  Exp_common.print_header "Ablation: 4 concurrent fetches, independent vs shared congestion state";
  Exp_common.print_row
    (Printf.sprintf "%-30s %12s %12s %10s" "setup" "mean ms" "max ms" "rexmits");
  List.iter
    (fun r ->
      Exp_common.print_row
        (Printf.sprintf "%-30s %12.1f %12.1f %10d" r.setup r.mean_completion_ms
           r.max_completion_ms r.total_retransmits))
    rows

(* ------------------------------------------------------------------ *)
(* Fairness ablation: Jain's index across a mixed ensemble *)

type fairness_row = {
  mix : string;
  per_flow_kb : int list;
  jain : float;  (** Jain's fairness index: 1.0 = perfectly fair. *)
}

let jain_index xs =
  let n = float_of_int (List.length xs) in
  let s = List.fold_left ( +. ) 0. xs in
  let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
  if s2 = 0. then 1. else s *. s /. (n *. s2)

let run_one_fairness params ~name ~cm_flows ~native_flows =
  let engine = Exp_common.create_engine params () in
  let rng = Rng.create ~seed:params.Exp_common.seed in
  let net =
    Topology.pipe engine ~bandwidth_bps:8e6 ~delay:(Time.ms 20) ~qdisc_limit:60
      ~loss_rate:0.002 ~rng ()
  in
  let cm = Cm.create engine () in
  Cm.attach cm net.Topology.a;
  let totals = ref [] in
  let start_flow ~port ~driver =
    let delivered = ref 0 in
    totals := delivered :: !totals;
    let _l =
      Tcp.Conn.listen net.Topology.b ~port
        ~on_accept:(fun c -> Tcp.Conn.on_receive c (fun n -> delivered := !delivered + n))
        ()
    in
    let c = Tcp.Conn.connect net.Topology.a ~dst:(Addr.endpoint ~host:1 ~port) ~driver () in
    Tcp.Conn.send c (1 lsl 27)
  in
  for i = 0 to native_flows - 1 do
    start_flow ~port:(80 + i) ~driver:Tcp.Conn.Native
  done;
  for i = 0 to cm_flows - 1 do
    start_flow ~port:(180 + i) ~driver:(Tcp.Conn.Cm_driven cm)
  done;
  Engine.run_for engine (Time.sec 30.);
  let per_flow = List.rev_map (fun r -> !r) !totals in
  {
    mix = name;
    per_flow_kb = List.map (fun b -> b / 1000) per_flow;
    jain = jain_index (List.map float_of_int per_flow);
  }

let run_fairness params =
  [
    run_one_fairness params ~name:"4 native TCP" ~cm_flows:0 ~native_flows:4;
    run_one_fairness params ~name:"4 TCP/CM (one macroflow)" ~cm_flows:4 ~native_flows:0;
    run_one_fairness params ~name:"2 native + 2 TCP/CM" ~cm_flows:2 ~native_flows:2;
  ]

let print_fairness rows =
  Exp_common.print_header
    "Ablation: fairness across flow ensembles (8 Mbit/s bottleneck, 30 s, Jain index)";
  Exp_common.print_row (Printf.sprintf "%-26s %8s   %s" "mix" "Jain" "per-flow KB");
  List.iter
    (fun r ->
      Exp_common.print_row
        (Printf.sprintf "%-26s %8.3f   [%s]" r.mix r.jain
           (String.concat " " (List.map string_of_int r.per_flow_kb))))
    rows
