type t = {
  name : string;
  cwnd : unit -> int;
  ssthresh : unit -> int;
  in_slow_start : unit -> bool;
  on_ack : nbytes:int -> unit;
  on_loss : Cm_types.loss_mode -> unit;
  age : unit -> unit;
  reset : unit -> unit;
}

type factory = mtu:int -> t

let aimd ?(initial_window_pkts = 1) ?(max_window = 4 * 1024 * 1024) ?initial_ssthresh () ~mtu =
  if mtu <= 0 then invalid_arg "Controller.aimd: mtu must be positive";
  let init_ssthresh = Option.value initial_ssthresh ~default:(1 lsl 30) in
  let iw = initial_window_pkts * mtu in
  let cwnd = ref iw and ssthresh = ref init_ssthresh in
  (* accumulator for byte-counted congestion avoidance: grow by one MTU per
     cwnd bytes acked *)
  let acked_accum = ref 0 in
  let clamp () = cwnd := Stdlib.min max_window (Stdlib.max mtu !cwnd) in
  let on_ack ~nbytes =
    if nbytes > 0 then begin
      if !cwnd < !ssthresh then
        (* slow start with pure byte counting: the window grows by what the
           receiver actually absorbed.  Feedback batches (Fig. 10) produce
           correspondingly large single-step openings. *)
        cwnd := !cwnd + nbytes
      else begin
        acked_accum := !acked_accum + nbytes;
        if !acked_accum >= !cwnd then begin
          acked_accum := !acked_accum - !cwnd;
          cwnd := !cwnd + mtu
        end
      end;
      clamp ()
    end
  in
  let on_loss mode =
    (match mode with
    | Cm_types.No_loss -> ()
    | Cm_types.Ecn_echo | Cm_types.Transient ->
        ssthresh := Stdlib.max (!cwnd / 2) (2 * mtu);
        cwnd := !ssthresh
    | Cm_types.Persistent ->
        ssthresh := Stdlib.max (!cwnd / 2) (2 * mtu);
        cwnd := mtu);
    acked_accum := 0;
    clamp ()
  in
  let age () =
    (* stale feedback: decay toward the initial window without touching
       ssthresh, so slow start reopens the window once feedback resumes *)
    cwnd := Stdlib.max iw (!cwnd / 2);
    acked_accum := 0
  in
  let reset () =
    cwnd := iw;
    ssthresh := init_ssthresh;
    acked_accum := 0
  in
  {
    name = "aimd";
    cwnd = (fun () -> !cwnd);
    ssthresh = (fun () -> !ssthresh);
    in_slow_start = (fun () -> !cwnd < !ssthresh);
    on_ack;
    on_loss;
    age;
    reset;
  }

let binomial ~k ~l ?(alpha = 1.0) ?(beta = 0.5) ?(initial_window_pkts = 1)
    ?(max_window = 4 * 1024 * 1024) () ~mtu =
  if mtu <= 0 then invalid_arg "Controller.binomial: mtu must be positive";
  if beta <= 0. || beta >= 1. then invalid_arg "Controller.binomial: beta must be in (0,1)";
  let fmtu = float_of_int mtu in
  let iw = float_of_int (initial_window_pkts * mtu) in
  let ssthresh_init = float_of_int (1 lsl 30) in
  let cwnd = ref iw and ssthresh = ref ssthresh_init in
  let clamp () = cwnd := Float.min (float_of_int max_window) (Float.max fmtu !cwnd) in
  let on_ack ~nbytes =
    if nbytes > 0 then begin
      if !cwnd < !ssthresh then cwnd := !cwnd +. float_of_int nbytes
      else begin
        (* increase of alpha·mtu^(k+1)/cwnd^k per cwnd bytes acked,
           i.e. proportionally per ack *)
        let per_window = alpha *. (fmtu ** (k +. 1.)) /. (!cwnd ** k) in
        cwnd := !cwnd +. (per_window *. float_of_int nbytes /. !cwnd)
      end;
      clamp ()
    end
  in
  let on_loss mode =
    (match mode with
    | Cm_types.No_loss -> ()
    | Cm_types.Ecn_echo | Cm_types.Transient ->
        let decrease = beta *. (!cwnd ** l) *. (fmtu ** (1. -. l)) in
        ssthresh := Float.max (!cwnd -. decrease) (2. *. fmtu);
        cwnd := !ssthresh
    | Cm_types.Persistent ->
        let decrease = beta *. (!cwnd ** l) *. (fmtu ** (1. -. l)) in
        ssthresh := Float.max (!cwnd -. decrease) (2. *. fmtu);
        cwnd := fmtu);
    clamp ()
  in
  let age () = cwnd := Float.max iw (!cwnd /. 2.) in
  let reset () =
    cwnd := iw;
    ssthresh := ssthresh_init
  in
  {
    name = Printf.sprintf "binomial(k=%g,l=%g)" k l;
    cwnd = (fun () -> int_of_float !cwnd);
    ssthresh = (fun () -> int_of_float !ssthresh);
    in_slow_start = (fun () -> !cwnd < !ssthresh);
    on_ack;
    on_loss;
    age;
    reset;
  }

let iiad () = binomial ~k:1.0 ~l:0.0 ()
let sqrt_ctl () = binomial ~k:0.5 ~l:0.5 ()

let equation ?(initial_window_pkts = 1) ?(max_window = 4 * 1024 * 1024) () ~mtu =
  if mtu <= 0 then invalid_arg "Controller.equation: mtu must be positive";
  (* TFRC-style equation-based control: estimate the loss-event interval
     (bytes acknowledged between congestion events, EWMA-smoothed) and set
     the window from the TCP-friendly formula W = MTU * sqrt(3 / (2 p))
     with p = MTU / interval.  Before the first loss event the controller
     slow starts like AIMD. *)
  let fmtu = float_of_int mtu in
  let iw = initial_window_pkts * mtu in
  let cwnd = ref iw in
  let bytes_since_loss = ref 0 in
  let interval = Cm_util.Ewma.create ~gain:0.25 in
  let clamp w = Stdlib.min max_window (Stdlib.max mtu w) in
  let equation_window () =
    if not (Cm_util.Ewma.initialized interval) then float_of_int max_window
    else begin
      let p = fmtu /. Float.max fmtu (Cm_util.Ewma.value interval) in
      fmtu *. Float.sqrt (1.5 /. p)
    end
  in
  let on_ack ~nbytes =
    if nbytes > 0 then begin
      bytes_since_loss := !bytes_since_loss + nbytes;
      if Cm_util.Ewma.initialized interval then begin
        (* the current loss-free run also informs the estimate: allow the
           window to creep up as the interval outgrows its average *)
        let optimistic = Float.max (Cm_util.Ewma.value interval) (float_of_int !bytes_since_loss) in
        let p = fmtu /. Float.max fmtu optimistic in
        cwnd := clamp (int_of_float (fmtu *. Float.sqrt (1.5 /. p)))
      end
      else cwnd := clamp (!cwnd + nbytes)
    end
  in
  let on_loss mode =
    (match mode with
    | Cm_types.No_loss -> ()
    | Cm_types.Ecn_echo | Cm_types.Transient ->
        Cm_util.Ewma.update interval (float_of_int !bytes_since_loss);
        bytes_since_loss := 0;
        cwnd := clamp (int_of_float (equation_window ()))
    | Cm_types.Persistent ->
        (* persistent congestion: a burst of loss events *)
        Cm_util.Ewma.update interval (float_of_int (!bytes_since_loss / 4));
        bytes_since_loss := 0;
        cwnd := clamp (int_of_float (equation_window () /. 2.)));
    ()
  in
  let age () =
    cwnd := clamp (Stdlib.max iw (!cwnd / 2));
    bytes_since_loss := 0
  in
  let reset () =
    cwnd := iw;
    bytes_since_loss := 0;
    Cm_util.Ewma.reset interval
  in
  {
    name = "equation";
    cwnd = (fun () -> !cwnd);
    ssthresh = (fun () -> max_window);
    in_slow_start = (fun () -> not (Cm_util.Ewma.initialized interval));
    on_ack;
    on_loss;
    age;
    reset;
  }
