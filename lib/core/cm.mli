(** The Congestion Manager.

    The paper's end-system module: maintains a flow table, aggregates
    flows into per-destination macroflows, and exposes the adaptation API
    (§2.1).  The function names map onto the paper's C API:

    - [open_flow] / [close_flow] — [cm_open] / [cm_close]
    - [mtu] — [cm_mtu]
    - [request] — [cm_request] (grant arrives via the registered
      [cmapp_send] callback)
    - [register_send] — [cm_register_send]
    - [register_update] / [set_thresh] — [cm_register_update] / [cm_thresh]
    - [update] — [cm_update]
    - [notify] — [cm_notify] (invoked automatically from the IP output
      hook once the CM is {!attach}ed to a host)
    - [query] — [cm_query]
    - [split] / [merge] — macroflow construction and splitting
    - [bulk_request] / [bulk_update] — the §5 batching optimization

    In-kernel clients (TCP, congestion-controlled UDP) call these functions
    directly; user-space clients go through [Libcm], which adds the
    control-socket machinery and its costs. *)

open Cm_util
open Netsim
open Eventsim

module Cm_types : module type of Cm_types
(** Shared types ({!Cm_types.status}, {!Cm_types.loss_mode}, …). *)

module Controller : module type of Controller
(** Congestion controllers (AIMD, binomial family). *)

module Scheduler : module type of Scheduler
(** Flow schedulers (round-robin, weighted). *)

module Macroflow : module type of Macroflow
(** Macroflow internals (stats, window accounting). *)

type t
(** A CM instance (one per sending host). *)

type aggregation =
  | By_destination
      (** The paper's default: all flows to one host share a macroflow. *)
  | By_destination_and_dscp
      (** §5's differentiated-services refinement: flows to one host with
          different DSCPs receive different network service, so they get
          separate macroflows. *)

type auditor = {
  grant_slack_pkts : int;
      (** Tolerated excess of notified over granted bytes, in MTUs
          (buffered senders legitimately run ahead of their grants). *)
  overclaim_slack_pkts : int;
      (** Tolerated excess of cumulative [nsent] over charged bytes, in
          MTUs. *)
  inflation_slack_pkts : int;
      (** Fixed part (in MTUs) of the charge-inflation bound: a flow
          earns a strike when its unresolved charge exceeds three
          macroflow windows plus this slack — honest unresolved charge is
          bounded by the pipe, phantom charge is not. *)
  silent_after : Time.span;
      (** A flow holding unresolved window charge earns a strike each
          time it sends no feedback for this long. *)
  quarantine_threshold : int;
      (** Suspicion score at which the flow is quarantined. *)
  policed_controller : Controller.factory;
      (** Controller for quarantine macroflows (conservative, capped). *)
}
(** Misbehaviour-auditor parameters.  The auditor cross-checks each
    flow's [notify]-charged bytes against its grants and its cumulative
    [nsent] against its charged bytes; inconsistent feedback is rejected
    — counted, never raised, on this kernel-facing path — and repeat
    offenders are quarantined by {!split}ting them into a policed
    macroflow, restoring the honest members' shared window. *)

val default_auditor : auditor
(** 64-MTU grant slack, 2-MTU overclaim slack, 16-MTU inflation slack,
    1 s silence strikes, quarantine at 3 strikes, and an AIMD policed
    controller capped at four packets. *)

val create :
  Engine.t ->
  ?mtu:int ->
  ?aggregation:aggregation ->
  ?controller:Controller.factory ->
  ?scheduler:Scheduler.factory ->
  ?grant_reclaim_after:Time.span ->
  ?idle_restart:Time.span ->
  ?feedback_watchdog:Macroflow.watchdog ->
  ?auditor:auditor ->
  unit ->
  t
(** [create eng ()] builds a CM.  [mtu] is the usable payload per packet
    (default 1448, Ethernet 1500 minus simulated headers); [aggregation]
    defaults to {!By_destination}; [controller] defaults to
    {!Controller.aimd} with an initial window of one MTU; [scheduler]
    defaults to {!Scheduler.round_robin}.  [idle_restart] enables
    slow-start restart after that much idle time (off by default: the
    persistence is what Fig. 7 exploits).  [feedback_watchdog] ages
    macroflow windows whose feedback has gone stale
    ({!Macroflow.default_watchdog} is a reasonable choice) and [auditor]
    enables the misbehaving-application defenses; both default to off,
    which preserves the trusting pre-defense behaviour exactly. *)

val attach : t -> Host.t -> unit
(** Install the CM's transmit hook on the host's IP output path, so every
    outgoing packet belonging to a CM flow is charged via [notify]
    automatically (paper §2.1.3).  The hook charges payload bytes; pure
    control packets (zero payload) are not charged. *)

val engine : t -> Engine.t
(** The engine this CM schedules callbacks on. *)

val open_flow : t -> Addr.flow -> Cm_types.flow_id
(** [cm_open]: allocate a flow for the 5-tuple and place it in the
    macroflow for its destination host (creating one if needed).
    Raises [Invalid_argument] if the 5-tuple is already open. *)

val close_flow : t -> Cm_types.flow_id -> unit
(** [cm_close]: release the flow; its macroflow is destroyed when the last
    member closes.  The flow's unconsumed grants are returned to the
    macroflow window immediately (not via the 500 ms reclaim timer) and
    its unresolved outstanding charge is discharged — no feedback can
    resolve it once the flow is gone.  Closing an unknown flow raises
    [Invalid_argument]. *)

val reap : t -> Cm_types.flow_id -> bool
(** Crash-tolerant close, used when a client process dies rather than
    closes ({!Libcm.destroy}): same reclamation as {!close_flow} but
    never raises.  Returns whether an open flow was actually reaped. *)

val mtu : t -> Cm_types.flow_id -> int
(** [cm_mtu]: usable payload bytes per transmission for this flow. *)

val register_send : t -> Cm_types.flow_id -> (Cm_types.flow_id -> unit) -> unit
(** [cm_register_send]: set the [cmapp_send] callback.  Each invocation is
    a grant to transmit up to one MTU on the given flow. *)

val register_update : t -> Cm_types.flow_id -> (Cm_types.status -> unit) -> unit
(** [cm_register_update]: set the [cmapp_update] rate callback. *)

val set_thresh : t -> Cm_types.flow_id -> down:float -> up:float -> unit
(** [cm_thresh]: fire the update callback when the flow's rate estimate
    falls below [down ×] or rises above [up ×] the last reported rate.
    Defaults are 0.5 / 2.0.  Requires [0 < down < 1 < up]. *)

val request : t -> Cm_types.flow_id -> unit
(** [cm_request]: one implicit request to send up to an MTU.  The grant
    arrives asynchronously through the [register_send] callback. *)

val update :
  t ->
  Cm_types.flow_id ->
  nsent:int ->
  nrecd:int ->
  loss:Cm_types.loss_mode ->
  ?rtt:Time.span ->
  unit ->
  unit
(** [cm_update]: feedback from the flow's receiver — [nsent] payload bytes
    resolved, of which [nrecd] arrived; [loss] classifies congestion;
    [rtt] is a fresh RTT sample if available.  With an {!auditor},
    malformed or overclaiming feedback is rejected and counted instead of
    applied (and, without one, malformed feedback raises
    [Invalid_argument] as before). *)

val notify : t -> Cm_types.flow_id -> nbytes:int -> unit
(** [cm_notify]: [nbytes] payload bytes of this flow were handed to the
    network ([0] relinquishes an unused grant).  Called automatically by
    the {!attach} hook; clients that decline a grant call it explicitly
    with [~nbytes:0]. *)

val query : t -> Cm_types.flow_id -> Cm_types.status
(** [cm_query]: current per-flow network state estimate.  The macroflow
    rate is divided evenly among member flows (round-robin sharing). *)

val bulk_request : t -> Cm_types.flow_id list -> unit
(** Batched [cm_request] (one call, many flows — §5 optimization). *)

val bulk_update :
  t ->
  (Cm_types.flow_id * int * int * Cm_types.loss_mode * Time.span option) list ->
  unit
(** Batched [cm_update]: [(flow, nsent, nrecd, loss, rtt)] tuples. *)

val macroflow_id : t -> Cm_types.flow_id -> int
(** Identifier of the macroflow the flow currently belongs to. *)

val split : t -> Cm_types.flow_id -> unit
(** Move the flow into a fresh macroflow of its own (fresh congestion
    state) — macroflow splitting for flows that should not share state,
    e.g. under differentiated services (§5). *)

val merge : t -> Cm_types.flow_id -> into:Cm_types.flow_id -> unit
(** Move the first flow into the macroflow of [into] (macroflow
    construction).  Pending requests are re-queued in the new macroflow. *)

val set_weight : t -> Cm_types.flow_id -> float -> unit
(** Scheduler weight of the flow within its macroflow (only meaningful
    with a weighted scheduler). *)

val lookup : t -> Addr.flow -> Cm_types.flow_id option
(** The flow id registered for a 5-tuple, if any (the "well-defined CM
    interface" the IP layer uses, §2.1.3). *)

val flow_key : t -> Cm_types.flow_id -> Addr.flow
(** The 5-tuple of an open flow. *)

val suspicion : t -> Cm_types.flow_id -> int
(** The flow's misbehaviour score (0 without an auditor). *)

val is_quarantined : t -> Cm_types.flow_id -> bool
(** Whether the auditor has quarantined the flow into a policed
    macroflow. *)

val flows : t -> Cm_types.flow_id list
(** All open flows (ascending id). *)

val live_flows : t -> int
(** Number of currently open flows.  O(1): tracked directly rather than
    derived from the directory, so the [cm.flows] telemetry gauge stays
    constant-time even after id recycling leaves holes. *)

val flow_slot_capacity : t -> int
(** Number of distinct flow-directory slots ever issued.  Ids recycle
    through a generation-stamped free list, so this is bounded by peak
    flow concurrency, not by the total number of flows ever opened. *)

val macroflow_of : t -> Cm_types.flow_id -> Macroflow.t
(** The flow's macroflow (stats and tests; treat as read-only). *)

val attach_telemetry : t -> Telemetry.t -> unit
(** Wire this CM into a telemetry instance: per-macroflow congestion
    internals (cwnd, ssthresh, rate, srtt, pipe, granted bytes, scheduler
    backlog, loss estimate — the quantities the paper's figures plot)
    become sampled gauges (columns [mf<id>.cwnd] …), aggregate API
    counters become [cm.*] gauges, and the flow table / controllers emit
    structured trace events: [cm.open] / [cm.close], [cm.congestion]
    (AIMD reaction with its ECN / transient / persistent attribution) and
    [cm.state] (slow-start ↔ congestion-avoidance transitions).
    Macroflows created later are wired automatically.  Until this is
    called the CM holds the nil trace and every hot path pays only a
    branch. *)

val set_trace : t -> Telemetry.Trace.t -> unit
(** Route the CM's trace events (and every macroflow's, current and
    future) into [tr] without registering gauges or a sampler — how the
    flight recorder's bounded ring taps the CM when full telemetry is
    off.  A later {!attach_telemetry} overrides it. *)

val trace : t -> Telemetry.Trace.t
(** The structured trace sink this CM reports to ({!Telemetry.Trace.nil}
    until {!attach_telemetry}); in-kernel clients (TCP) pull this to tag
    their own events onto the same timeline. *)

type counters = {
  opens : int;
  closes : int;
  requests : int;
  grants : int;
  updates : int;
  notifies : int;
  declined_grants : int;
      (** Grants relinquished with [notify ~nbytes:0], plus grants whose
          flow had vanished or had no callback. *)
  rejected_updates : int;  (** Feedback the auditor refused to apply. *)
  rejected_notifies : int;  (** Notifies charged only up to the granted allowance. *)
  quarantines : int;  (** Flows split into policed macroflows. *)
  reaps : int;  (** Flows reclaimed from crashed processes. *)
}
(** Cumulative API-usage counters. *)

val counters : t -> counters
(** Snapshot of the counters. *)

val released_grant_bytes : t -> int
(** Cumulative grant bytes returned to windows by close / reap /
    quarantine (the immediate path, not the reclaim timer). *)

val teardown_probes : t -> int
(** Cumulative count of macroflows examined by the close / reap / move
    teardown path.  Constant per teardown by construction (the default-
    macroflow check is a single id-set probe); the scaling regression test
    asserts the per-close delta does not grow with the number of
    macroflows, without resorting to wall clocks. *)

val watchdog_fires : t -> int
(** Cumulative feedback-watchdog aging steps across all macroflows. *)

type audit_view = {
  av_mtu : int;
  av_flows : (Cm_types.flow_id * Addr.flow * Macroflow.t) list;
      (** Every open flow, ascending id, with its key and macroflow. *)
  av_key_entries : int;  (** Size of the key → id table. *)
  av_macroflows : Macroflow.t list;  (** Every macroflow ever created. *)
  av_default_macroflows : Macroflow.t list;
      (** The per-destination macroflows (these may persist empty). *)
  av_counters : counters;
}
(** Read-only snapshot of the CM's internal structure for {!Audit}. *)

val audit_view : t -> audit_view
(** Snapshot the structure the invariant auditor checks. *)

(** CM invariant auditor.

    Structural checks over a live {!t}, cheap enough to run periodically
    under fault storms:

    - window conservation: [outstanding + granted ≤ cwnd + one MTU] of
      slack, recorded at grant-issue time — the only moment it is
      meaningful, since after a loss halves cwnd the outstanding charge
      legitimately exceeds it while the pipe drains;
    - non-negative accounting (outstanding, granted, members, pending
      requests, every counter);
    - grant ledger sanity (never more reclaimed + released than issued);
    - flow-table bijection (each open flow's 5-tuple resolves back to it;
      both tables agree on size);
    - no leaks after close / crash: member counts match attached flows,
      no flow references a dead macroflow, dead macroflows hold no
      grants, and no non-default macroflow stays alive empty (its
      maintenance timer would tick forever). *)
module Audit : sig
  type report = {
    checked_flows : int;
    checked_macroflows : int;
    violations : string list;  (** Human-readable, in discovery order. *)
  }

  val run : t -> report
  (** Check every invariant; never raises. *)

  val ok : report -> bool
  (** [violations = []]. *)

  val pp : Format.formatter -> report -> unit
  (** One line when clean; the violation list otherwise. *)
end

val pp_summary : Format.formatter -> t -> unit
(** Render a diagnostic snapshot: open flows, macroflows, window state and
    API counters. *)
