type t = {
  name : string;
  enqueue : Cm_types.flow_id -> unit;
  dequeue : unit -> Cm_types.flow_id option;
  remove : Cm_types.flow_id -> unit;
  set_weight : Cm_types.flow_id -> float -> unit;
  pending : unit -> int;
  pending_for : Cm_types.flow_id -> int;
}

type factory = unit -> t

let round_robin () =
  (* active-set ring: flow ids that currently have >= 1 pending request.
     Every operation is O(1) (dequeue amortized: a removed flow leaves at
     most one stale ring entry, skipped exactly once). *)
  let ring : Cm_types.flow_id Queue.t = Queue.create () in
  let counts : (Cm_types.flow_id, int) Hashtbl.t = Hashtbl.create 8 in
  let total = ref 0 in
  let count fid = Option.value (Hashtbl.find_opt counts fid) ~default:0 in
  let enqueue fid =
    let c = count fid in
    Hashtbl.replace counts fid (c + 1);
    incr total;
    if c = 0 then Queue.push fid ring
  in
  let rec dequeue () =
    match Queue.take_opt ring with
    | None -> None
    | Some fid ->
        let c = count fid in
        if c = 0 then dequeue () (* stale ring entry after remove *)
        else begin
          Hashtbl.replace counts fid (c - 1);
          decr total;
          if c - 1 > 0 then Queue.push fid ring;
          Some fid
        end
  in
  let remove fid =
    total := !total - count fid;
    Hashtbl.remove counts fid
  in
  {
    name = "round-robin";
    enqueue;
    dequeue;
    remove;
    set_weight = (fun _ _ -> ());
    pending = (fun () -> !total);
    pending_for = count;
  }

(* ---- weighted (stride) scheduling ------------------------------------- *)

(* Per-flow scheduler state.  [pass] is the flow's next service tag; while
   the flow is backlogged its heap entry's priority equals [pass], so
   dequeue is extract-min over backlogged flows: O(log n) however many
   flows are registered, instead of the full-table scan this replaces. *)
type stride_entry = {
  mutable s_count : int; (* pending requests *)
  mutable s_weight : float;
  mutable s_pass : float; (* next service tag *)
  mutable s_handle : Cm_types.flow_id Cm_util.Fheap.handle option;
      (* live heap entry iff backlogged *)
}

let stride_k = 1_000_000.

(* Default rebase threshold.  Beyond ~2^52 float addition can no longer
   represent a small stride increment (pass +. stride == pass), silently
   starving heavy-weight flows; rebasing long before that — while the
   threshold still dwarfs any single stride — keeps every addition exact
   to well under one quantum.  10^12 grants at the default stride sit
   three decades below this, but a server-lifetime process gets there. *)
let default_rebase_threshold = 1e15

let weighted_stride ?(rebase_threshold = default_rebase_threshold) () =
  let flows : (Cm_types.flow_id, stride_entry) Hashtbl.t = Hashtbl.create 8 in
  let heap : Cm_types.flow_id Cm_util.Fheap.t = Cm_util.Fheap.create () in
  let total = ref 0 in
  let global_pass = ref 0. in
  let entry fid =
    match Hashtbl.find_opt flows fid with
    | Some e -> e
    | None ->
        let e = { s_count = 0; s_weight = 1.0; s_pass = !global_pass; s_handle = None } in
        Hashtbl.replace flows fid e;
        e
  in
  (* Subtract the accumulated pass base from every tag.  A uniform shift
     preserves all pairwise orderings (and the heap shape), so rebasing is
     invisible to the grant sequence; it only keeps the floats small. *)
  let rebase () =
    let base = !global_pass in
    Cm_util.Fheap.shift_all heap (-.base);
    Hashtbl.iter (fun _ e -> e.s_pass <- e.s_pass -. base) flows;
    global_pass := 0.
  in
  let enqueue fid =
    let e = entry fid in
    e.s_count <- e.s_count + 1;
    incr total;
    if e.s_count = 1 then begin
      (* a newly backlogged flow re-enters at the current global pass so it
         cannot hoard credit accumulated while idle *)
      e.s_pass <- Float.max !global_pass e.s_pass;
      e.s_handle <- Some (Cm_util.Fheap.insert heap ~prio:e.s_pass fid)
    end
  in
  let dequeue () =
    if !total = 0 then None
    else begin
      let hd = Cm_util.Fheap.min_handle heap in
      let fid = Cm_util.Fheap.handle_value hd in
      let e = entry fid in
      let pass = e.s_pass in
      e.s_count <- e.s_count - 1;
      decr total;
      global_pass := pass;
      e.s_pass <- pass +. (stride_k /. e.s_weight);
      if e.s_count > 0 then ignore (Cm_util.Fheap.update_prio heap hd ~prio:e.s_pass)
      else begin
        ignore (Cm_util.Fheap.remove heap hd);
        e.s_handle <- None
      end;
      if !global_pass > rebase_threshold then rebase ();
      Some fid
    end
  in
  let remove fid =
    match Hashtbl.find_opt flows fid with
    | None -> ()
    | Some e ->
        total := !total - e.s_count;
        (match e.s_handle with
        | Some hd -> ignore (Cm_util.Fheap.remove heap hd)
        | None -> ());
        Hashtbl.remove flows fid
  in
  let set_weight fid w =
    if w <= 0. then invalid_arg "Scheduler.weighted: weight must be positive";
    (entry fid).s_weight <- w
  in
  let pending_for fid =
    match Hashtbl.find_opt flows fid with Some e -> e.s_count | None -> 0
  in
  {
    name = "weighted-stride";
    enqueue;
    dequeue;
    remove;
    set_weight;
    pending = (fun () -> !total);
    pending_for;
  }

let weighted () = weighted_stride ()
