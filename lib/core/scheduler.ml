type t = {
  name : string;
  enqueue : Cm_types.flow_id -> unit;
  dequeue : unit -> Cm_types.flow_id option;
  remove : Cm_types.flow_id -> unit;
  set_weight : Cm_types.flow_id -> float -> unit;
  pending : unit -> int;
  pending_for : Cm_types.flow_id -> int;
}

type factory = unit -> t

(* Scheduler keys are dense small non-negative ints: each macroflow hands
   its scheduler the flow's macroflow-local member index (recycled on
   detach), not the CM-wide flow id.  Both schedulers below exploit that
   by replacing every per-flow hash probe with a direct array index — the
   state for one macroflow's members is a few contiguous, cache-resident
   arrays however many flows the CM serves overall. *)

(* growable circular buffer of ints: the round-robin ring with no
   per-push allocation and contiguous storage *)
type int_ring = { mutable buf : int array; mutable head : int; mutable len : int }

let ring_create () = { buf = Array.make 16 0; head = 0; len = 0 }

let ring_push r v =
  let cap = Array.length r.buf in
  if r.len = cap then begin
    let buf = Array.make (2 * cap) 0 in
    for i = 0 to r.len - 1 do
      buf.(i) <- r.buf.((r.head + i) land (cap - 1))
    done;
    r.buf <- buf;
    r.head <- 0
  end;
  r.buf.((r.head + r.len) land (Array.length r.buf - 1)) <- v;
  r.len <- r.len + 1

let ring_pop r =
  let v = r.buf.(r.head) in
  r.head <- (r.head + 1) land (Array.length r.buf - 1);
  r.len <- r.len - 1;
  v

(* ring entries pack (epoch, id) so an id recycled after [remove] cannot
   inherit a stale entry's turn: the stale entry's epoch no longer
   matches and it is skipped, exactly as a missing hash-table key was *)
let id_bits = 24
let id_mask = (1 lsl id_bits) - 1

let grow_to arr n fill =
  let cap = Array.length !arr in
  if n > cap then begin
    let bigger = Array.make (Stdlib.max n (2 * cap)) fill in
    Array.blit !arr 0 bigger 0 cap;
    arr := bigger
  end

let round_robin () =
  (* active-set ring: ids that currently have >= 1 pending request.
     Every operation is O(1) (dequeue amortized: a removed id leaves at
     most one stale ring entry, skipped exactly once). *)
  let ring = ring_create () in
  let counts = ref (Array.make 16 0) in
  let epochs = ref (Array.make 16 0) in
  let total = ref 0 in
  let ensure id =
    if id < 0 || id > id_mask then invalid_arg "Scheduler.round_robin: id out of range";
    grow_to counts (id + 1) 0;
    grow_to epochs (id + 1) 0
  in
  let count id = if id >= 0 && id < Array.length !counts then !counts.(id) else 0 in
  let enqueue id =
    ensure id;
    let c = !counts.(id) in
    !counts.(id) <- c + 1;
    incr total;
    if c = 0 then ring_push ring ((!epochs.(id) lsl id_bits) lor id)
  in
  let rec dequeue () =
    if ring.len = 0 then None
    else begin
      let packed = ring_pop ring in
      let id = packed land id_mask in
      let c = !counts.(id) in
      if packed asr id_bits <> !epochs.(id) || c = 0 then dequeue () (* stale after remove *)
      else begin
        !counts.(id) <- c - 1;
        decr total;
        if c > 1 then ring_push ring packed;
        Some id
      end
    end
  in
  let remove id =
    if id >= 0 && id < Array.length !counts then begin
      total := !total - !counts.(id);
      !counts.(id) <- 0;
      (* retire outstanding ring entries for this id *)
      !epochs.(id) <- !epochs.(id) + 1
    end
  in
  {
    name = "round-robin";
    enqueue;
    dequeue;
    remove;
    set_weight = (fun _ _ -> ());
    pending = (fun () -> !total);
    pending_for = count;
  }

(* ---- weighted (stride) scheduling ------------------------------------- *)

(* Per-flow scheduler state.  [pass] is the flow's next service tag; while
   the flow is backlogged its heap entry's priority equals [pass], so
   dequeue is extract-min over backlogged flows: O(log n) however many
   flows are registered, instead of the full-table scan this replaces. *)
type stride_entry = {
  mutable s_count : int; (* pending requests *)
  mutable s_weight : float;
  mutable s_pass : float; (* next service tag *)
  mutable s_handle : Cm_types.flow_id Cm_util.Fheap.handle option;
      (* live heap entry iff backlogged *)
}

(* empty-slot sentinel for the dense entry array: an immediate, never
   dereferenced (every read is guarded by a physical-equality check) *)
let no_entry : stride_entry = Obj.magic 0

let stride_k = 1_000_000.

(* Default rebase threshold.  Beyond ~2^52 float addition can no longer
   represent a small stride increment (pass +. stride == pass), silently
   starving heavy-weight flows; rebasing long before that — while the
   threshold still dwarfs any single stride — keeps every addition exact
   to well under one quantum.  10^12 grants at the default stride sit
   three decades below this, but a server-lifetime process gets there. *)
let default_rebase_threshold = 1e15

let weighted_stride ?(rebase_threshold = default_rebase_threshold) () =
  let entries = ref (Array.make 16 no_entry) in
  let heap : Cm_types.flow_id Cm_util.Fheap.t = Cm_util.Fheap.create () in
  let total = ref 0 in
  let global_pass = ref 0. in
  let entry id =
    if id < 0 then invalid_arg "Scheduler.weighted: id out of range";
    grow_to entries (id + 1) no_entry;
    let e = !entries.(id) in
    if e != no_entry then e
    else begin
      let e = { s_count = 0; s_weight = 1.0; s_pass = !global_pass; s_handle = None } in
      !entries.(id) <- e;
      e
    end
  in
  (* Subtract the accumulated pass base from every tag.  A uniform shift
     preserves all pairwise orderings (and the heap shape), so rebasing is
     invisible to the grant sequence; it only keeps the floats small. *)
  let rebase () =
    let base = !global_pass in
    Cm_util.Fheap.shift_all heap (-.base);
    Array.iter (fun e -> if e != no_entry then e.s_pass <- e.s_pass -. base) !entries;
    global_pass := 0.
  in
  let enqueue id =
    let e = entry id in
    e.s_count <- e.s_count + 1;
    incr total;
    if e.s_count = 1 then begin
      (* a newly backlogged flow re-enters at the current global pass so it
         cannot hoard credit accumulated while idle *)
      e.s_pass <- Float.max !global_pass e.s_pass;
      e.s_handle <- Some (Cm_util.Fheap.insert heap ~prio:e.s_pass id)
    end
  in
  let dequeue () =
    if !total = 0 then None
    else begin
      let hd = Cm_util.Fheap.min_handle heap in
      let id = Cm_util.Fheap.handle_value hd in
      let e = !entries.(id) in
      let pass = e.s_pass in
      e.s_count <- e.s_count - 1;
      decr total;
      global_pass := pass;
      e.s_pass <- pass +. (stride_k /. e.s_weight);
      if e.s_count > 0 then ignore (Cm_util.Fheap.update_prio heap hd ~prio:e.s_pass)
      else begin
        ignore (Cm_util.Fheap.remove heap hd);
        e.s_handle <- None
      end;
      if !global_pass > rebase_threshold then rebase ();
      Some id
    end
  in
  let remove id =
    if id >= 0 && id < Array.length !entries then begin
      let e = !entries.(id) in
      if e != no_entry then begin
        total := !total - e.s_count;
        (match e.s_handle with
        | Some hd -> ignore (Cm_util.Fheap.remove heap hd)
        | None -> ());
        !entries.(id) <- no_entry
      end
    end
  in
  let set_weight id w =
    if w <= 0. then invalid_arg "Scheduler.weighted: weight must be positive";
    (entry id).s_weight <- w
  in
  let pending_for id =
    if id >= 0 && id < Array.length !entries then begin
      let e = !entries.(id) in
      if e != no_entry then e.s_count else 0
    end
    else 0
  in
  {
    name = "weighted-stride";
    enqueue;
    dequeue;
    remove;
    set_weight;
    pending = (fun () -> !total);
    pending_for;
  }

let weighted () = weighted_stride ()
