(** Macroflow schedulers.

    The congestion controller decides how much the macroflow may send; the
    scheduler decides {e which flow} gets each transmission grant.  The
    paper's implementation uses an unweighted round-robin scheduler; a
    weighted (stride) scheduler is provided for the ablation bench.

    Each [enqueue fid] is one outstanding request for a grant of up to one
    MTU; a flow may hold several requests at once. *)

type t = {
  name : string;
  enqueue : Cm_types.flow_id -> unit;  (** Add one pending request for the flow. *)
  dequeue : unit -> Cm_types.flow_id option;
      (** Pick the next flow to grant (consumes one of its requests). *)
  remove : Cm_types.flow_id -> unit;  (** Discard all state for a closed flow. *)
  set_weight : Cm_types.flow_id -> float -> unit;
      (** Set a flow's share weight (ignored by unweighted schedulers). *)
  pending : unit -> int;  (** Total requests queued. *)
  pending_for : Cm_types.flow_id -> int;  (** Requests queued for one flow. *)
}
(** A scheduler instance, private to one macroflow. *)

type factory = unit -> t
(** Builds a fresh scheduler. *)

val round_robin : factory
(** The paper's default: cycle over flows that have pending requests,
    one grant per turn, FIFO among a flow's own requests.  Every
    operation is O(1) (an active-set ring plus a pending-count table). *)

val weighted : factory
(** Stride scheduling: flows receive grants in proportion to their
    weights (default weight 1.0).  Backlogged flows are indexed in a
    min-pass priority queue ({!Cm_util.Fheap}), so [dequeue] is O(log n)
    in the number of {e backlogged} flows — independent of how many flows
    are registered — and equal pass values grant in FIFO order.
    Equivalent to [weighted_stride ()]. *)

val weighted_stride : ?rebase_threshold:float -> factory
(** {!weighted} with an explicit pass-rebase threshold.  Pass values grow
    monotonically by [stride = 10^6 / weight] per grant; once the global
    pass exceeds [rebase_threshold] (default 10^15) every pass is shifted
    down by the global pass in O(flows) — a uniform shift, invisible to
    the grant order — so float addition never reaches the magnitude
    (~2^52) where a small stride stops being representable and a
    heavy-weight flow would silently starve.  Tests use a tiny threshold
    to force frequent rebases. *)
