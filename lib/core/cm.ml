open Cm_util
open Netsim
open Eventsim

(* Re-export the library's public submodules so that users see
   [Cm.Controller], [Cm.Scheduler], [Cm.Macroflow] and [Cm.Cm_types]. *)
module Cm_types = Cm_types
module Controller = Controller
module Scheduler = Scheduler
module Macroflow = Macroflow

type flow = {
  fid : Cm_types.flow_id;
  key : Addr.flow;
  mutable mf : Macroflow.t;
  mutable send_cb : (Cm_types.flow_id -> unit) option;
  mutable update_cb : (Cm_types.status -> unit) option;
  mutable thresh_down : float;
  mutable thresh_up : float;
  mutable last_reported_rate : float;
  mutable update_pending : bool;
  mutable open_ : bool;
}

type counters = {
  opens : int;
  closes : int;
  requests : int;
  grants : int;
  updates : int;
  notifies : int;
  declined_grants : int;
}

type aggregation = By_destination | By_destination_and_dscp

(* macroflow aggregation key: destination host — "all flows destined to the
   same end host take the same path in the common case" (§2) — plus,
   optionally, the differentiated-services codepoint: under diffserv,
   flows to one host with different service classes no longer share a
   bottleneck fate (§5) *)
type mf_key = int * int

type t = {
  engine : Engine.t;
  mtu : int;
  aggregation : aggregation;
  controller : Controller.factory;
  scheduler : Scheduler.factory;
  grant_reclaim_after : Time.span option;
  idle_restart : Time.span option;
  flows_by_id : (Cm_types.flow_id, flow) Hashtbl.t;
  flows_by_key : Cm_types.flow_id Addr.Flow_table.t;
  default_mf : (mf_key, Macroflow.t) Hashtbl.t; (* per-destination macroflows *)
  mf_members : (int, int) Hashtbl.t; (* macroflow id -> member count *)
  mutable next_fid : int;
  mutable next_mfid : int;
  mutable c_opens : int;
  mutable c_closes : int;
  mutable c_requests : int;
  mutable c_grants : int;
  mutable c_updates : int;
  mutable c_notifies : int;
  mutable c_declined : int;
  (* telemetry: None (and the nil trace) until [attach_telemetry] *)
  mutable telemetry : Telemetry.t option;
  mutable trace : Telemetry.Trace.t;
}

let create engine ?(mtu = 1448) ?(aggregation = By_destination)
    ?(controller = Controller.aimd ()) ?(scheduler = Scheduler.round_robin)
    ?grant_reclaim_after ?idle_restart () =
  {
    engine;
    mtu;
    aggregation;
    controller;
    scheduler;
    grant_reclaim_after;
    idle_restart;
    flows_by_id = Hashtbl.create 64;
    flows_by_key = Addr.Flow_table.create 64;
    default_mf = Hashtbl.create 16;
    mf_members = Hashtbl.create 16;
    next_fid = 1;
    next_mfid = 1;
    c_opens = 0;
    c_closes = 0;
    c_requests = 0;
    c_grants = 0;
    c_updates = 0;
    c_notifies = 0;
    c_declined = 0;
    telemetry = None;
    trace = Telemetry.Trace.nil;
  }

let engine t = t.engine

let get_flow t fid =
  match Hashtbl.find_opt t.flows_by_id fid with
  | Some fl when fl.open_ -> fl
  | _ -> invalid_arg (Printf.sprintf "Cm: unknown or closed flow %d" fid)

(* ---- rate-change callbacks ------------------------------------------- *)

let flow_rate fl =
  let members = Stdlib.max 1 (Macroflow.members fl.mf) in
  Macroflow.rate_bps fl.mf /. float_of_int members

let flow_status fl =
  let st = Macroflow.status fl.mf in
  { st with Cm_types.rate_bps = flow_rate fl }

let check_rate_callbacks t mf_id =
  let consider _ fl =
    if fl.open_ && Macroflow.id fl.mf = mf_id then begin
      match fl.update_cb with
      | None -> ()
      | Some cb ->
          let rate = flow_rate fl in
          let last = fl.last_reported_rate in
          let crossed =
            last <= 0.
            || rate <= last *. fl.thresh_down
            || rate >= last *. fl.thresh_up
          in
          if crossed && rate > 0. && not fl.update_pending then begin
            fl.update_pending <- true;
            ignore
              (Engine.schedule_after t.engine 0 (fun () ->
                   fl.update_pending <- false;
                   if fl.open_ then begin
                     fl.last_reported_rate <- flow_rate fl;
                     cb (flow_status fl)
                   end))
          end
    end
  in
  Hashtbl.iter consider t.flows_by_id

(* ---- grant dispatch --------------------------------------------------- *)

let deliver_grant t fid =
  t.c_grants <- t.c_grants + 1;
  match Hashtbl.find_opt t.flows_by_id fid with
  | Some fl when fl.open_ -> (
      match fl.send_cb with
      | Some cb -> cb fid
      | None ->
          t.c_declined <- t.c_declined + 1;
          Macroflow.notify fl.mf ~nbytes:0)
  | _ ->
      t.c_declined <- t.c_declined + 1

(* ---- macroflow lifecycle ---------------------------------------------- *)

(* Subscribe a macroflow's congestion internals — the CM state the paper's
   figures plot — as sampled time series, and route its trace events to
   the live sink.  Gauges survive macroflow shutdown harmlessly (they read
   plain fields), and late wiring is fine: the sampler back-fills earlier
   ticks with blanks. *)
let wire_macroflow_telemetry t mf =
  match t.telemetry with
  | None -> ()
  | Some tel ->
      Macroflow.set_trace mf t.trace;
      let p = Printf.sprintf "mf%d." (Macroflow.id mf) in
      Telemetry.gauge tel (p ^ "cwnd") (fun () -> float_of_int (Macroflow.cwnd mf));
      Telemetry.gauge tel (p ^ "ssthresh") (fun () -> float_of_int (Macroflow.ssthresh mf));
      Telemetry.gauge tel (p ^ "rate_bps") (fun () -> Macroflow.rate_bps mf);
      Telemetry.gauge tel (p ^ "srtt_us") (fun () ->
          match Macroflow.srtt mf with
          | Some s -> float_of_int s /. 1e3
          | None -> Float.nan);
      Telemetry.gauge tel (p ^ "pipe") (fun () ->
          float_of_int (Macroflow.outstanding mf + Macroflow.granted mf));
      Telemetry.gauge tel (p ^ "granted") (fun () -> float_of_int (Macroflow.granted mf));
      Telemetry.gauge tel (p ^ "pending") (fun () ->
          float_of_int (Macroflow.pending_requests mf));
      Telemetry.gauge tel (p ^ "loss_rate") (fun () -> Macroflow.loss_rate mf)

let new_macroflow t =
  let mfid = t.next_mfid in
  t.next_mfid <- t.next_mfid + 1;
  let mf =
    Macroflow.create t.engine ~id:mfid ~mtu:t.mtu ~controller:t.controller
      ~scheduler:t.scheduler
      ~deliver_grant:(fun fid -> deliver_grant t fid)
      ~on_state_change:(fun () -> ())
      ?grant_reclaim_after:t.grant_reclaim_after ?idle_restart:t.idle_restart ()
  in
  wire_macroflow_telemetry t mf;
  mf

let mf_key_of t (key : Addr.flow) : mf_key =
  ( key.Addr.dst.Addr.host,
    match t.aggregation with By_destination -> 0 | By_destination_and_dscp -> key.Addr.dscp )

let macroflow_for_key t k =
  match Hashtbl.find_opt t.default_mf k with
  | Some mf -> mf
  | None ->
      let mf = new_macroflow t in
      Hashtbl.replace t.default_mf k mf;
      mf

let drop_membership t mf =
  let mfid = Macroflow.id mf in
  let members = Macroflow.members mf in
  (* Per-destination macroflows persist after their last flow closes: the
     congestion state they hold is exactly what lets a subsequent
     connection to the same host skip slow start (paper §4.3, Fig. 7).
     Only detached (split-off) macroflows are discarded when empty. *)
  let is_default =
    Hashtbl.fold (fun _ m acc -> acc || Macroflow.id m = mfid) t.default_mf false
  in
  if members = 0 && not is_default then begin
    Macroflow.shutdown mf;
    Hashtbl.remove t.mf_members mfid
  end

(* ---- public API -------------------------------------------------------- *)

let open_flow t key =
  if Addr.Flow_table.mem t.flows_by_key key then
    invalid_arg (Format.asprintf "Cm.open_flow: %a already open" Addr.pp_flow key);
  let fid = t.next_fid in
  t.next_fid <- t.next_fid + 1;
  let mf = macroflow_for_key t (mf_key_of t key) in
  Macroflow.add_member mf;
  let fl =
    {
      fid;
      key;
      mf;
      send_cb = None;
      update_cb = None;
      thresh_down = 0.5;
      thresh_up = 2.0;
      last_reported_rate = 0.;
      update_pending = false;
      open_ = true;
    }
  in
  Hashtbl.replace t.flows_by_id fid fl;
  Addr.Flow_table.replace t.flows_by_key key fid;
  t.c_opens <- t.c_opens + 1;
  if Telemetry.Trace.on t.trace then
    Telemetry.Trace.instant t.trace ~cat:"cm" "cm.open"
      [
        ("flow", Telemetry.Trace.Int fid);
        ("mf", Telemetry.Trace.Int (Macroflow.id mf));
        ("key", Telemetry.Trace.Str (Format.asprintf "%a" Addr.pp_flow key));
      ];
  fid

let close_flow t fid =
  let fl = get_flow t fid in
  fl.open_ <- false;
  Macroflow.detach_flow fl.mf fid;
  Addr.Flow_table.remove t.flows_by_key fl.key;
  Hashtbl.remove t.flows_by_id fid;
  t.c_closes <- t.c_closes + 1;
  if Telemetry.Trace.on t.trace then
    Telemetry.Trace.instant t.trace ~cat:"cm" "cm.close"
      [ ("flow", Telemetry.Trace.Int fid); ("mf", Telemetry.Trace.Int (Macroflow.id fl.mf)) ];
  drop_membership t fl.mf

let mtu t fid =
  let _fl = get_flow t fid in
  t.mtu

let register_send t fid cb =
  let fl = get_flow t fid in
  fl.send_cb <- Some cb

let register_update t fid cb =
  let fl = get_flow t fid in
  fl.update_cb <- Some cb

let set_thresh t fid ~down ~up =
  if not (down > 0. && down < 1. && up > 1.) then
    invalid_arg "Cm.set_thresh: need 0 < down < 1 < up";
  let fl = get_flow t fid in
  fl.thresh_down <- down;
  fl.thresh_up <- up

let request t fid =
  let fl = get_flow t fid in
  t.c_requests <- t.c_requests + 1;
  Macroflow.request fl.mf fid

let update t fid ~nsent ~nrecd ~loss ?rtt () =
  let fl = get_flow t fid in
  t.c_updates <- t.c_updates + 1;
  Macroflow.update fl.mf ~nsent ~nrecd ~loss ~rtt;
  check_rate_callbacks t (Macroflow.id fl.mf)

let notify t fid ~nbytes =
  let fl = get_flow t fid in
  t.c_notifies <- t.c_notifies + 1;
  Macroflow.notify fl.mf ~nbytes

let query t fid =
  let fl = get_flow t fid in
  flow_status fl

let bulk_request t fids = List.iter (request t) fids

let bulk_update t entries =
  List.iter (fun (fid, nsent, nrecd, loss, rtt) -> update t fid ~nsent ~nrecd ~loss ?rtt ())
    entries

let macroflow_id t fid = Macroflow.id (get_flow t fid).mf

let move_flow t fl target_mf =
  let old_mf = fl.mf in
  if Macroflow.id old_mf <> Macroflow.id target_mf then begin
    (* carry this flow's pending requests over to the new macroflow *)
    let requests_to_move = Macroflow.pending_for_flow old_mf fl.fid in
    Macroflow.detach_flow old_mf fl.fid;
    fl.mf <- target_mf;
    Macroflow.add_member target_mf;
    for _ = 1 to requests_to_move do
      Macroflow.request target_mf fl.fid
    done;
    drop_membership t old_mf
  end

let split t fid =
  let fl = get_flow t fid in
  let mf = new_macroflow t in
  move_flow t fl mf

let merge t fid ~into =
  let fl = get_flow t fid in
  let target = get_flow t into in
  move_flow t fl target.mf

let set_weight t fid w =
  let fl = get_flow t fid in
  Macroflow.set_weight fl.mf fid w

let lookup t key = Addr.Flow_table.find_opt t.flows_by_key key
let flow_key t fid = (get_flow t fid).key

let flows t =
  Hashtbl.fold (fun fid _ acc -> fid :: acc) t.flows_by_id [] |> List.sort Stdlib.compare

let macroflow_of t fid = (get_flow t fid).mf

let attach t host =
  Host.add_tx_hook host (fun pkt ->
      match Addr.Flow_table.find_opt t.flows_by_key pkt.Packet.flow with
      | Some fid ->
          let nbytes = Packet.payload_bytes pkt in
          if nbytes > 0 then begin
            Cpu.charge (Host.cpu host) (Host.costs host).Costs.cm_op;
            notify t fid ~nbytes
          end
      | None -> ())

(* ---- telemetry --------------------------------------------------------- *)

let attach_telemetry t tel =
  t.telemetry <- Some tel;
  t.trace <- Telemetry.trace tel;
  Telemetry.gauge tel "cm.flows" (fun () -> float_of_int (Hashtbl.length t.flows_by_id));
  Telemetry.gauge tel "cm.macroflows" (fun () -> float_of_int (Hashtbl.length t.default_mf));
  Telemetry.gauge tel "cm.requests" (fun () -> float_of_int t.c_requests);
  Telemetry.gauge tel "cm.grants" (fun () -> float_of_int t.c_grants);
  Telemetry.gauge tel "cm.updates" (fun () -> float_of_int t.c_updates);
  Telemetry.gauge tel "cm.notifies" (fun () -> float_of_int t.c_notifies);
  (* macroflows that already exist (e.g. the CM was attached mid-run) *)
  Hashtbl.iter (fun _ mf -> wire_macroflow_telemetry t mf) t.default_mf

let trace t = t.trace

let counters t =
  {
    opens = t.c_opens;
    closes = t.c_closes;
    requests = t.c_requests;
    grants = t.c_grants;
    updates = t.c_updates;
    notifies = t.c_notifies;
    declined_grants = t.c_declined;
  }

let pp_summary fmt t =
  let c = counters t in
  Format.fprintf fmt "CM: %d open flows, %d macroflows@." (Hashtbl.length t.flows_by_id)
    (Hashtbl.length t.default_mf);
  Format.fprintf fmt "  api: %d opens, %d requests, %d grants (%d declined), %d updates, %d notifies@."
    c.opens c.requests c.grants c.declined_grants c.updates c.notifies;
  Hashtbl.iter
    (fun _ fl ->
      let mf = fl.mf in
      Format.fprintf fmt "  flow %d (%a): macroflow %d cwnd=%d out=%d srtt=%s@." fl.fid
        Addr.pp_flow fl.key (Macroflow.id mf) (Macroflow.cwnd mf) (Macroflow.outstanding mf)
        (match Macroflow.srtt mf with
        | Some s -> Format.asprintf "%a" Time.pp s
        | None -> "-"))
    t.flows_by_id
