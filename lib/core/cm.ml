open Cm_util
open Netsim
open Eventsim

(* Re-export the library's public submodules so that users see
   [Cm.Controller], [Cm.Scheduler], [Cm.Macroflow] and [Cm.Cm_types]. *)
module Cm_types = Cm_types
module Controller = Controller
module Scheduler = Scheduler
module Macroflow = Macroflow

(* Field order is deliberate: the fields every request/notify/update
   touches (id and liveness, macroflow and member pointers, the ledger)
   come first so the per-packet paths stay within the record's leading
   cache lines; close-path and policy fields trail. *)
type flow = {
  fid : Cm_types.flow_id;
  mutable open_ : bool;
  mutable mf : Macroflow.t;
  (* the flow's member handle within [mf]: its scheduler slot and grant
     chain, so request/notify/teardown reach macroflow state by pointer
     instead of by id lookup; rewired by [move_flow] *)
  mutable fl_mem : Macroflow.member;
  mutable send_cb : (Cm_types.flow_id -> unit) option;
  (* per-flow cross-check ledger (bytes, cumulative since open).  The
     misbehaviour auditor compares these: an honest client keeps
     notified ≲ granted and nsent ≤ charged. *)
  mutable a_granted : int; (* grant bytes reserved for this flow *)
  mutable a_notified : int; (* bytes the client claims to have transmitted *)
  mutable a_charged : int; (* bytes actually charged to the window *)
  mutable a_nsent : int; (* bytes resolved by accepted cm_update feedback *)
  mutable last_update : Time.t;
  (* the member index of [mf], cached so the per-update watcher check is a
     field read instead of a hash lookup; refreshed by [index_add] *)
  mutable fl_ix : mf_index;
  key : Addr.flow;
  mutable update_cb : (Cm_types.status -> unit) option;
  mutable thresh_down : float;
  mutable thresh_up : float;
  mutable last_reported_rate : float;
  mutable update_pending : bool;
  mutable last_inflation : Time.t; (* rate limiter for charge-inflation strikes *)
  mutable suspicion : int;
  mutable quarantined : bool;
}

(* Reverse index: the open flows attached to one macroflow, plus how many
   of them registered a rate callback.  Every per-grant / per-update /
   per-tick control path walks this member set (or skips it outright when
   no member watches rates) instead of folding over the global flow table,
   so the cost of serving one macroflow no longer grows with the number of
   flows the CM serves overall. *)
and mf_index = {
  mx_flows : (Cm_types.flow_id, flow) Hashtbl.t;
  mutable mx_watchers : int; (* members with an update_cb registered *)
}

type counters = {
  opens : int;
  closes : int;
  requests : int;
  grants : int;
  updates : int;
  notifies : int;
  declined_grants : int;
  rejected_updates : int;
  rejected_notifies : int;
  quarantines : int;
  reaps : int;
}

type auditor = {
  grant_slack_pkts : int;
  overclaim_slack_pkts : int;
  inflation_slack_pkts : int;
  silent_after : Time.span;
  quarantine_threshold : int;
  policed_controller : Controller.factory;
}

let default_auditor =
  {
    grant_slack_pkts = 64;
    overclaim_slack_pkts = 2;
    inflation_slack_pkts = 16;
    silent_after = Time.ms 1_000;
    quarantine_threshold = 3;
    policed_controller = Controller.aimd ~initial_window_pkts:1 ~max_window:(4 * 1500) ();
  }

type aggregation = By_destination | By_destination_and_dscp

(* macroflow aggregation key: destination host — "all flows destined to the
   same end host take the same path in the common case" (§2) — plus,
   optionally, the differentiated-services codepoint: under diffserv,
   flows to one host with different service classes no longer share a
   bottleneck fate (§5) *)
type mf_key = int * int

(* Dense flow directory with id recycling.  A flow id packs a slot index
   (low 24 bits) and a generation (high bits), so the per-packet API
   paths (request / notify / update / grant delivery, each of which
   starts with a lookup by id) still index an array directly instead of
   probing a hash table — one predictable load plus a generation compare,
   no bucket chase.  On close the slot's generation is bumped and the
   slot goes on a free list: capacity is bounded by peak concurrency
   rather than flows ever opened, and a lookup through a stale id (old
   generation) misses, mirroring the engine's stamped event handles.
   Slot 0 is never issued, so the first ids are 1, 2, 3, ... exactly as
   the pre-recycling sequential allocator handed out. *)
module Fid_dir = struct
  let slot_bits = 24
  let slot_mask = (1 lsl slot_bits) - 1

  (* Empty-slot sentinel: an immediate that no tenant record can be
     physically equal to, so slots store tenants directly rather than
     behind an option box — the hot lookup is one load and one pointer
     compare, with no per-alloc [Some] cell.  Callers must never
     dereference a returned [miss].  (Only sound because the directory is
     instantiated with a record type — a float tenant would tempt the
     compiler into flat float arrays and corrupt the sentinel.) *)
  let miss : 'a. 'a = Obj.magic 0

  type 'a t = {
    mutable arr : 'a array; (* slot -> current tenant, or [miss] *)
    mutable gen : int array; (* slot -> generation of the current tenant *)
    mutable free : int list; (* recycled slots, LIFO *)
    mutable high : int; (* watermark: slots in [1, high) have been issued *)
    mutable count : int; (* live entries, O(1) for the cm.flows gauge *)
  }

  let create n =
    {
      arr = Array.make (Stdlib.max 2 n) miss;
      gen = Array.make (Stdlib.max 2 n) 0;
      free = [];
      high = 1;
      count = 0;
    }

  (* distinct slots ever issued: the memory bound the recycle test pins *)
  let capacity t = t.high - 1

  (* [find] does not compare generations: the id embeds the generation in
     its high bits, and every caller re-checks the tenant's own stored id
     against the query ([fl.fid = fid]), which subsumes the generation
     compare without a second array load here. *)
  let find t fid =
    let slot = fid land slot_mask in
    if slot > 0 && slot < t.high then Array.unsafe_get t.arr slot else miss

  (* [alloc t mk] picks a slot, forms the id, and stores [mk id]; the
     two happen together because the tenant record holds its own id in
     an immutable field. *)
  let alloc t mk =
    let slot =
      match t.free with
      | s :: rest ->
          t.free <- rest;
          s
      | [] ->
          let s = t.high in
          if s > slot_mask then failwith "Fid_dir: out of flow-id slots";
          t.high <- t.high + 1;
          if s >= Array.length t.arr then begin
            let cap = 2 * Array.length t.arr in
            let grown = Array.make cap miss in
            Array.blit t.arr 0 grown 0 (Array.length t.arr);
            t.arr <- grown;
            let grown_gen = Array.make cap 0 in
            Array.blit t.gen 0 grown_gen 0 (Array.length t.gen);
            t.gen <- grown_gen
          end;
          s
    in
    let fid = (t.gen.(slot) lsl slot_bits) lor slot in
    t.arr.(slot) <- mk fid;
    t.count <- t.count + 1;
    fid

  let remove t fid =
    let slot = fid land slot_mask in
    if
      slot > 0 && slot < t.high
      && t.gen.(slot) = fid asr slot_bits
      && Array.unsafe_get t.arr slot != miss
    then begin
      t.arr.(slot) <- miss;
      t.count <- t.count - 1;
      (* retire this generation: lookups through the old id now miss *)
      t.gen.(slot) <- t.gen.(slot) + 1;
      t.free <- slot :: t.free
    end

  let length t = t.count

  let iter f t =
    for slot = 1 to t.high - 1 do
      let v = Array.unsafe_get t.arr slot in
      if v != miss then f ((t.gen.(slot) lsl slot_bits) lor slot) v
    done

  let fold f t acc =
    let acc = ref acc in
    iter (fun fid v -> acc := f fid v !acc) t;
    !acc
end

type t = {
  engine : Engine.t;
  mtu : int;
  aggregation : aggregation;
  controller : Controller.factory;
  scheduler : Scheduler.factory;
  grant_reclaim_after : Time.span option;
  idle_restart : Time.span option;
  watchdog : Macroflow.watchdog option;
  auditor : auditor option;
  flows_by_id : flow Fid_dir.t;
  flows_by_key : Cm_types.flow_id Addr.Flow_table.t;
  default_mf : (mf_key, Macroflow.t) Hashtbl.t; (* per-destination macroflows *)
  default_ids : (int, unit) Hashtbl.t; (* ids of the default_mf values *)
  all_mf : (int, Macroflow.t) Hashtbl.t; (* every macroflow ever created *)
  mf_index : (int, mf_index) Hashtbl.t; (* live macroflow id -> members *)
  mutable next_mfid : int;
  mutable c_opens : int;
  mutable c_closes : int;
  mutable c_requests : int;
  mutable c_grants : int;
  mutable c_updates : int;
  mutable c_notifies : int;
  mutable c_declined : int;
  mutable c_rejected_updates : int;
  mutable c_rejected_notifies : int;
  mutable c_quarantines : int;
  mutable c_reaps : int;
  mutable c_released_grant_bytes : int;
  (* work counter for the scaling tests: macroflows examined by the
     close/reap teardown path.  Constant per close by construction; the
     counter-based regression test pins that contract without relying on
     wall clocks. *)
  mutable c_teardown_probes : int;
  (* telemetry: None (and the nil trace) until [attach_telemetry] *)
  mutable telemetry : Telemetry.t option;
  mutable trace : Telemetry.Trace.t;
}

let create engine ?(mtu = 1448) ?(aggregation = By_destination)
    ?(controller = Controller.aimd ()) ?(scheduler = Scheduler.round_robin)
    ?grant_reclaim_after ?idle_restart ?feedback_watchdog ?auditor () =
  {
    engine;
    mtu;
    aggregation;
    controller;
    scheduler;
    grant_reclaim_after;
    idle_restart;
    watchdog = feedback_watchdog;
    auditor;
    flows_by_id = Fid_dir.create 64;
    flows_by_key = Addr.Flow_table.create 64;
    default_mf = Hashtbl.create 16;
    default_ids = Hashtbl.create 16;
    all_mf = Hashtbl.create 16;
    mf_index = Hashtbl.create 16;
    next_mfid = 1;
    c_opens = 0;
    c_closes = 0;
    c_requests = 0;
    c_grants = 0;
    c_updates = 0;
    c_notifies = 0;
    c_declined = 0;
    c_rejected_updates = 0;
    c_rejected_notifies = 0;
    c_quarantines = 0;
    c_reaps = 0;
    c_released_grant_bytes = 0;
    c_teardown_probes = 0;
    telemetry = None;
    trace = Telemetry.Trace.nil;
  }

let engine t = t.engine

(* The generation check is the [fl.fid = fid] compare: a stale id (its
   slot since recycled) reaches a tenant whose stored id differs. *)
let get_flow t fid =
  let fl = Fid_dir.find t.flows_by_id fid in
  if fl != Fid_dir.miss && fl.fid = fid && fl.open_ then fl
  else invalid_arg (Printf.sprintf "Cm: unknown or closed flow %d" fid)

(* ---- macroflow reverse index ------------------------------------------ *)

(* placeholder index for a flow between construction and [index_add] —
   never walked (its watcher count stays 0) *)
let nil_ix = { mx_flows = Hashtbl.create 1; mx_watchers = 0 }

let index_of t mfid =
  match Hashtbl.find_opt t.mf_index mfid with
  | Some ix -> ix
  | None ->
      let ix = { mx_flows = Hashtbl.create 8; mx_watchers = 0 } in
      Hashtbl.replace t.mf_index mfid ix;
      ix

let index_add t mf fl =
  let ix = index_of t (Macroflow.id mf) in
  fl.fl_ix <- ix;
  Hashtbl.replace ix.mx_flows fl.fid fl;
  if fl.update_cb <> None then ix.mx_watchers <- ix.mx_watchers + 1

let index_remove t mf fl =
  match Hashtbl.find_opt t.mf_index (Macroflow.id mf) with
  | None -> ()
  | Some ix ->
      if Hashtbl.mem ix.mx_flows fl.fid then begin
        Hashtbl.remove ix.mx_flows fl.fid;
        if fl.update_cb <> None then ix.mx_watchers <- ix.mx_watchers - 1
      end

(* ---- rate-change callbacks ------------------------------------------- *)

let flow_rate fl =
  let members = Stdlib.max 1 (Macroflow.members fl.mf) in
  Macroflow.rate_bps fl.mf /. float_of_int members

let flow_status fl =
  let st = Macroflow.status fl.mf in
  { st with Cm_types.rate_bps = flow_rate fl }

(* Rate apportioning: when a macroflow's estimate moves, check only that
   macroflow's members — and skip even that walk when none of them
   registered a rate callback (the common case for kernel clients).  The
   old implementation folded over every flow the CM had ever opened, which
   made each cm_update O(total flows). *)
let check_rate_callbacks t ix =
  if ix.mx_watchers > 0 then begin
    let consider _ fl =
        if fl.open_ then begin
          match fl.update_cb with
          | None -> ()
          | Some cb ->
              let rate = flow_rate fl in
              let last = fl.last_reported_rate in
              let crossed =
                last <= 0.
                || rate <= last *. fl.thresh_down
                || rate >= last *. fl.thresh_up
              in
              if crossed && rate > 0. && not fl.update_pending then begin
                fl.update_pending <- true;
                Engine.post t.engine 0 (fun () ->
                    fl.update_pending <- false;
                    if fl.open_ then begin
                      fl.last_reported_rate <- flow_rate fl;
                      cb (flow_status fl)
                    end)
              end
        end
    in
    Hashtbl.iter consider ix.mx_flows
  end

(* ---- grant dispatch --------------------------------------------------- *)

(* bytes charged to the window whose fate no accepted feedback has
   resolved; what close/crash must discharge and quarantine must carry *)
let unresolved fl = Stdlib.max 0 (fl.a_charged - fl.a_nsent)

let deliver_grant t mf m ~reserved =
  t.c_grants <- t.c_grants + 1;
  let fid = Macroflow.member_fid m in
  let fl = Fid_dir.find t.flows_by_id fid in
  if fl != Fid_dir.miss && fl.fid = fid && fl.open_ then begin
    ignore reserved;
    (* a grant permits up to one MTU regardless of what the macroflow
       reserved (the learned average may round well below what the
       client actually sends), so the misbehaviour allowance accrues a
       full MTU per grant — honest full-sized senders never drift *)
    fl.a_granted <- fl.a_granted + t.mtu;
    match fl.send_cb with
    | Some cb -> cb fid
    | None ->
        t.c_declined <- t.c_declined + 1;
        Macroflow.notify fl.mf ~m:fl.fl_mem ~nbytes:0 ()
  end
  else begin
    (* the flow vanished between request and grant: return the grant *)
    t.c_declined <- t.c_declined + 1;
    Macroflow.notify mf ~m ~nbytes:0 ()
  end

(* ---- macroflow lifecycle ---------------------------------------------- *)

(* Subscribe a macroflow's congestion internals — the CM state the paper's
   figures plot — as sampled time series, and route its trace events to
   the live sink.  Gauges survive macroflow shutdown harmlessly (they read
   plain fields), and late wiring is fine: the sampler back-fills earlier
   ticks with blanks. *)
let wire_macroflow_telemetry t mf =
  (* the trace sink is wired even without a full telemetry instance — the
     flight recorder installs a bounded ring through [set_trace] *)
  Macroflow.set_trace mf t.trace;
  match t.telemetry with
  | None -> ()
  | Some tel ->
      let p = Printf.sprintf "mf%d." (Macroflow.id mf) in
      Telemetry.gauge tel (p ^ "cwnd") (fun () -> float_of_int (Macroflow.cwnd mf));
      Telemetry.gauge tel (p ^ "ssthresh") (fun () -> float_of_int (Macroflow.ssthresh mf));
      Telemetry.gauge tel (p ^ "rate_bps") (fun () -> Macroflow.rate_bps mf);
      Telemetry.gauge tel (p ^ "srtt_us") (fun () ->
          match Macroflow.srtt mf with
          | Some s -> float_of_int s /. 1e3
          | None -> Float.nan);
      Telemetry.gauge tel (p ^ "pipe") (fun () ->
          float_of_int (Macroflow.outstanding mf + Macroflow.granted mf));
      Telemetry.gauge tel (p ^ "granted") (fun () -> float_of_int (Macroflow.granted mf));
      Telemetry.gauge tel (p ^ "pending") (fun () ->
          float_of_int (Macroflow.pending_requests mf));
      Telemetry.gauge tel (p ^ "loss_rate") (fun () -> Macroflow.loss_rate mf)

let drop_membership t mf =
  let mfid = Macroflow.id mf in
  let members = Macroflow.members mf in
  t.c_teardown_probes <- t.c_teardown_probes + 1;
  (* Per-destination macroflows persist after their last flow closes: the
     congestion state they hold is exactly what lets a subsequent
     connection to the same host skip slow start (paper §4.3, Fig. 7).
     Only detached (split-off) macroflows are discarded when empty.  The
     default check is one membership probe in [default_ids] — the old
     fold over every per-destination macroflow made each close O(hosts
     ever contacted). *)
  let is_default = Hashtbl.mem t.default_ids mfid in
  if members = 0 && not is_default then begin
    Macroflow.shutdown mf;
    Hashtbl.remove t.mf_index mfid
  end

let move_flow t fl target_mf =
  let old_mf = fl.mf in
  if Macroflow.id old_mf <> Macroflow.id target_mf then begin
    (* carry this flow's pending requests over to the new macroflow, give
       back any grants it was sitting on, and take its unresolved charge
       along so the old macroflow's window reopens immediately *)
    let requests_to_move = Macroflow.pending_for_flow old_mf fl.fl_mem in
    let released = Macroflow.release_flow_grants old_mf fl.fl_mem in
    t.c_released_grant_bytes <- t.c_released_grant_bytes + released;
    Macroflow.transfer_outstanding ~src:old_mf ~dst:target_mf (unresolved fl);
    Macroflow.detach_flow old_mf fl.fl_mem;
    index_remove t old_mf fl;
    fl.mf <- target_mf;
    fl.fl_mem <- Macroflow.add_member target_mf fl.fid;
    index_add t target_mf fl;
    for _ = 1 to requests_to_move do
      Macroflow.request target_mf fl.fl_mem
    done;
    drop_membership t old_mf
  end

let rec new_macroflow ?controller t =
  let mfid = t.next_mfid in
  t.next_mfid <- t.next_mfid + 1;
  let controller = Option.value controller ~default:t.controller in
  (* tie the knot: the grant/maintenance hooks need the macroflow they
     serve, which Macroflow.create has not returned yet.  No hook can run
     before create returns (grants and ticks fire from engine events). *)
  let mf_cell = ref None in
  let mf_of_cell () = Option.get !mf_cell in
  let on_reclaim, on_tick =
    match t.auditor with
    | None -> (None, None)
    | Some a ->
        ( Some
            (fun fid _reserved ->
              let fl = Fid_dir.find t.flows_by_id fid in
              if fl != Fid_dir.miss && fl.fid = fid && fl.open_ then
                suspect t a fl "grant_hoard"),
          Some (fun mf -> audit_tick t a mf) )
  in
  let mf =
    Macroflow.create t.engine ~id:mfid ~mtu:t.mtu ~controller ~scheduler:t.scheduler
      ~deliver_grant:(fun m ~reserved -> deliver_grant t (mf_of_cell ()) m ~reserved)
      ~on_state_change:(fun () -> ())
      ?on_reclaim ?on_tick ?watchdog:t.watchdog ?grant_reclaim_after:t.grant_reclaim_after
      ?idle_restart:t.idle_restart ()
  in
  mf_cell := Some mf;
  Hashtbl.replace t.all_mf mfid mf;
  wire_macroflow_telemetry t mf;
  mf

(* ---- misbehaviour scoring & quarantine -------------------------------- *)

and suspect t a fl reason =
  fl.suspicion <- fl.suspicion + 1;
  if Telemetry.Trace.on t.trace then
    Telemetry.Trace.instant t.trace ~cat:"cm" "cm.suspect"
      [
        ("flow", Telemetry.Trace.Int fl.fid);
        ("reason", Telemetry.Trace.Str reason);
        ("score", Telemetry.Trace.Int fl.suspicion);
      ];
  if (not fl.quarantined) && fl.suspicion >= a.quarantine_threshold then quarantine t a fl

and quarantine t a fl =
  (* Split the offender into its own macroflow with a conservative,
     tightly-capped controller: it can no longer consume the honest
     macroflow's window, and its unresolved charge leaves with it. *)
  fl.quarantined <- true;
  t.c_quarantines <- t.c_quarantines + 1;
  if Telemetry.Trace.on t.trace then
    Telemetry.Trace.instant t.trace ~cat:"cm" "cm.quarantine"
      [
        ("flow", Telemetry.Trace.Int fl.fid);
        ("score", Telemetry.Trace.Int fl.suspicion);
        ("from_mf", Telemetry.Trace.Int (Macroflow.id fl.mf));
      ];
  let policed = new_macroflow ~controller:a.policed_controller t in
  move_flow t fl policed

(* per-flow staleness audit, run from each macroflow's maintenance tick:
   a flow holding unresolved window charge that has not sent feedback for
   [silent_after] is suspect even when honest peers keep the macroflow's
   own feedback clock fresh *)
and audit_tick t a mf =
  let now = Engine.now t.engine in
  let members =
    match Hashtbl.find_opt t.mf_index (Macroflow.id mf) with
    | Some ix -> ix.mx_flows
    | None -> Hashtbl.create 0
  in
  Hashtbl.iter
    (fun _ fl ->
      if fl.open_ && not fl.quarantined then begin
        if
          unresolved fl > 2 * t.mtu
          && Time.diff now fl.last_update > a.silent_after
        then begin
          (* one strike per silent_after: the timestamp doubles as the
             rate limiter *)
          fl.last_update <- now;
          suspect t a fl "silent"
        end;
        (* charge inflation: a flow can keep its feedback fresh while its
           charged-but-never-resolved bytes grow without bound (e.g. a
           double-notifier, whose phantom charges no feedback will ever
           explain).  Honest unresolved charge is bounded by the pipe:
           inflight plus lost-but-not-yet-declared bytes (each at most a
           window) plus a feedback delay's worth of throughput (about
           another window) — three windows plus a fixed slack.  The bound
           must track cwnd: phantom charge blocks the window, collapsing
           cwnd, and a fixed-only bound would let the attack deadlock the
           macroflow while sitting just under the threshold. *)
        if
          unresolved fl > (3 * Macroflow.cwnd fl.mf) + (a.inflation_slack_pkts * t.mtu)
          && Time.diff now fl.last_inflation > a.silent_after
        then begin
          fl.last_inflation <- now;
          suspect t a fl "charge_inflation"
        end
      end)
    members

let mf_key_of t (key : Addr.flow) : mf_key =
  ( key.Addr.dst.Addr.host,
    match t.aggregation with By_destination -> 0 | By_destination_and_dscp -> key.Addr.dscp )

let macroflow_for_key t k =
  match Hashtbl.find_opt t.default_mf k with
  | Some mf -> mf
  | None ->
      let mf = new_macroflow t in
      Hashtbl.replace t.default_mf k mf;
      Hashtbl.replace t.default_ids (Macroflow.id mf) ();
      mf

(* ---- public API -------------------------------------------------------- *)

let open_flow t key =
  if Addr.Flow_table.mem t.flows_by_key key then
    invalid_arg (Format.asprintf "Cm.open_flow: %a already open" Addr.pp_flow key);
  let mf = macroflow_for_key t (mf_key_of t key) in
  let fid =
    Fid_dir.alloc t.flows_by_id (fun fid ->
        {
          fid;
          key;
          mf;
          send_cb = None;
          update_cb = None;
          thresh_down = 0.5;
          thresh_up = 2.0;
          last_reported_rate = 0.;
          update_pending = false;
          open_ = true;
          a_granted = 0;
          a_notified = 0;
          a_charged = 0;
          a_nsent = 0;
          last_update = Engine.now t.engine;
          last_inflation = Engine.now t.engine;
          suspicion = 0;
          quarantined = false;
          fl_ix = nil_ix;
          fl_mem = Macroflow.nil_member;
        })
  in
  let fl = Fid_dir.find t.flows_by_id fid in
  assert (fl != Fid_dir.miss);
  fl.fl_mem <- Macroflow.add_member mf fid;
  Addr.Flow_table.replace t.flows_by_key key fid;
  index_add t mf fl;
  t.c_opens <- t.c_opens + 1;
  if Telemetry.Trace.on t.trace then
    Telemetry.Trace.instant t.trace ~cat:"cm" "cm.open"
      [
        ("flow", Telemetry.Trace.Int fid);
        ("mf", Telemetry.Trace.Int (Macroflow.id mf));
        ("key", Telemetry.Trace.Str (Format.asprintf "%a" Addr.pp_flow key));
      ];
  fid

(* shared teardown for close (voluntary) and reap (crash): give the
   flow's unconsumed grants back to the window immediately — not via the
   500 ms reclaim timer — and discharge its unresolved bytes, whose fate
   no feedback can ever resolve once the flow is gone *)
let remove_flow t fl ~event =
  index_remove t fl.mf fl;
  fl.open_ <- false;
  let released = Macroflow.release_flow_grants fl.mf fl.fl_mem in
  t.c_released_grant_bytes <- t.c_released_grant_bytes + released;
  Macroflow.discharge fl.mf (unresolved fl);
  Macroflow.detach_flow fl.mf fl.fl_mem;
  Addr.Flow_table.remove t.flows_by_key fl.key;
  Fid_dir.remove t.flows_by_id fl.fid;
  if Telemetry.Trace.on t.trace then
    Telemetry.Trace.instant t.trace ~cat:"cm" event
      [ ("flow", Telemetry.Trace.Int fl.fid); ("mf", Telemetry.Trace.Int (Macroflow.id fl.mf)) ];
  drop_membership t fl.mf

let close_flow t fid =
  let fl = get_flow t fid in
  t.c_closes <- t.c_closes + 1;
  remove_flow t fl ~event:"cm.close"

let reap t fid =
  (* crash-tolerant close: never raises, reports whether anything was
     reaped.  Libcm.destroy calls this for every flow of a dead process. *)
  let fl = Fid_dir.find t.flows_by_id fid in
  if fl != Fid_dir.miss && fl.fid = fid && fl.open_ then begin
    t.c_reaps <- t.c_reaps + 1;
    remove_flow t fl ~event:"cm.reap";
    true
  end
  else false

let mtu t fid =
  let _fl = get_flow t fid in
  t.mtu

let register_send t fid cb =
  let fl = get_flow t fid in
  fl.send_cb <- Some cb

let register_update t fid cb =
  let fl = get_flow t fid in
  (* first registration turns this flow into a rate watcher; the member
     index counts watchers so updates on watcher-free macroflows skip the
     apportioning walk entirely *)
  if fl.update_cb = None then begin
    match Hashtbl.find_opt t.mf_index (Macroflow.id fl.mf) with
    | Some ix -> ix.mx_watchers <- ix.mx_watchers + 1
    | None -> ()
  end;
  fl.update_cb <- Some cb

let set_thresh t fid ~down ~up =
  if not (down > 0. && down < 1. && up > 1.) then
    invalid_arg "Cm.set_thresh: need 0 < down < 1 < up";
  let fl = get_flow t fid in
  fl.thresh_down <- down;
  fl.thresh_up <- up

let request t fid =
  let fl = get_flow t fid in
  t.c_requests <- t.c_requests + 1;
  Macroflow.request fl.mf fl.fl_mem

let update t fid ~nsent ~nrecd ~loss ?rtt () =
  let fl = get_flow t fid in
  t.c_updates <- t.c_updates + 1;
  let accept =
    match t.auditor with
    | None -> true
    | Some a ->
        (* kernel-facing path: inconsistent feedback is rejected and
           counted, never raised.  A client cannot resolve more bytes
           than it was ever charged for sending — claiming otherwise is
           how a liar inflates the shared window. *)
        if nsent < 0 || nrecd < 0 || nrecd > nsent then begin
          t.c_rejected_updates <- t.c_rejected_updates + 1;
          suspect t a fl "malformed_update";
          false
        end
        else if fl.a_nsent + nsent > fl.a_charged + (a.overclaim_slack_pkts * t.mtu) then begin
          t.c_rejected_updates <- t.c_rejected_updates + 1;
          suspect t a fl "overclaim";
          false
        end
        else true
  in
  if accept then begin
    fl.a_nsent <- fl.a_nsent + nsent;
    fl.last_update <- Engine.now t.engine;
    Macroflow.update fl.mf ~nsent ~nrecd ~loss ~rtt;
    if loss = Cm_types.Persistent then
      (* a persistent-congestion report presumes everything this flow had
         in flight was lost; square its own ledger with that.  Only the
         reporting flow is absolved — blanket absolution would launder
         another flow's phantom charges (e.g. a double-notifier's). *)
      fl.a_nsent <- Stdlib.max fl.a_nsent fl.a_charged;
    check_rate_callbacks t fl.fl_ix
  end

let notify t fid ~nbytes =
  let fl = get_flow t fid in
  t.c_notifies <- t.c_notifies + 1;
  if nbytes = 0 then t.c_declined <- t.c_declined + 1;
  fl.a_notified <- fl.a_notified + nbytes;
  let charge =
    match t.auditor with
    | Some a when nbytes > 0 ->
        (* a client may transmit somewhat ahead of its grants (buffered
           sends), but sustained ungranted transmission is window theft:
           cap the charge at the granted allowance so the audited
           conservation invariant survives a blasting client, and score
           the excess instead of charging it *)
        let allowance = fl.a_granted + (a.grant_slack_pkts * t.mtu) in
        if fl.a_notified > allowance then begin
          t.c_rejected_notifies <- t.c_rejected_notifies + 1;
          suspect t a fl "ungranted_tx";
          Stdlib.max 0 (nbytes - (fl.a_notified - allowance))
        end
        else nbytes
    | _ -> nbytes
  in
  fl.a_charged <- fl.a_charged + charge;
  Macroflow.notify fl.mf ~m:fl.fl_mem ~nbytes:charge ()

let query t fid =
  let fl = get_flow t fid in
  flow_status fl

let bulk_request t fids = List.iter (request t) fids

let bulk_update t entries =
  List.iter (fun (fid, nsent, nrecd, loss, rtt) -> update t fid ~nsent ~nrecd ~loss ?rtt ())
    entries

let macroflow_id t fid = Macroflow.id (get_flow t fid).mf

let split t fid =
  let fl = get_flow t fid in
  let mf = new_macroflow t in
  move_flow t fl mf

let merge t fid ~into =
  let fl = get_flow t fid in
  let target = get_flow t into in
  move_flow t fl target.mf

let set_weight t fid w =
  let fl = get_flow t fid in
  Macroflow.set_weight fl.mf fl.fl_mem w

let lookup t key = Addr.Flow_table.find_opt t.flows_by_key key
let flow_key t fid = (get_flow t fid).key
let suspicion t fid = (get_flow t fid).suspicion
let is_quarantined t fid = (get_flow t fid).quarantined

let flows t =
  Fid_dir.fold (fun fid _ acc -> fid :: acc) t.flows_by_id [] |> List.sort Stdlib.compare

let live_flows t = Fid_dir.length t.flows_by_id
let flow_slot_capacity t = Fid_dir.capacity t.flows_by_id

let macroflow_of t fid = (get_flow t fid).mf

let attach t host =
  Host.add_tx_hook host (fun pkt ->
      match Addr.Flow_table.find_opt t.flows_by_key pkt.Packet.flow with
      | Some fid ->
          let nbytes = Packet.payload_bytes pkt in
          if nbytes > 0 then begin
            Cpu.charge (Host.cpu host) (Host.costs host).Costs.cm_op;
            notify t fid ~nbytes
          end
      | None -> ())

(* ---- telemetry --------------------------------------------------------- *)

let attach_telemetry t tel =
  t.telemetry <- Some tel;
  t.trace <- Telemetry.trace tel;
  Telemetry.gauge tel "cm.flows" (fun () -> float_of_int (Fid_dir.length t.flows_by_id));
  Telemetry.gauge tel "cm.macroflows" (fun () -> float_of_int (Hashtbl.length t.default_mf));
  Telemetry.gauge tel "cm.requests" (fun () -> float_of_int t.c_requests);
  Telemetry.gauge tel "cm.grants" (fun () -> float_of_int t.c_grants);
  Telemetry.gauge tel "cm.updates" (fun () -> float_of_int t.c_updates);
  Telemetry.gauge tel "cm.notifies" (fun () -> float_of_int t.c_notifies);
  Telemetry.gauge tel "cm.rejected_updates" (fun () -> float_of_int t.c_rejected_updates);
  Telemetry.gauge tel "cm.rejected_notifies" (fun () -> float_of_int t.c_rejected_notifies);
  Telemetry.gauge tel "cm.quarantines" (fun () -> float_of_int t.c_quarantines);
  Telemetry.gauge tel "cm.reaps" (fun () -> float_of_int t.c_reaps);
  Telemetry.gauge tel "cm.released_grant_bytes" (fun () ->
      float_of_int t.c_released_grant_bytes);
  Telemetry.gauge tel "cm.watchdog_fires" (fun () ->
      float_of_int
        (Hashtbl.fold (fun _ mf acc -> acc + Macroflow.watchdog_fires mf) t.all_mf 0));
  (* macroflows that already exist (e.g. the CM was attached mid-run) *)
  Hashtbl.iter (fun _ mf -> wire_macroflow_telemetry t mf) t.all_mf

(* Route trace events into [tr] without gauges or a sampler: the flight
   recorder's bounded ring taps the CM this way when full telemetry is
   off.  New macroflows inherit the sink via [wire_macroflow_telemetry];
   a later [attach_telemetry] overrides it. *)
let set_trace t tr =
  t.trace <- tr;
  Hashtbl.iter (fun _ mf -> Macroflow.set_trace mf tr) t.all_mf

let trace t = t.trace

let counters t =
  {
    opens = t.c_opens;
    closes = t.c_closes;
    requests = t.c_requests;
    grants = t.c_grants;
    updates = t.c_updates;
    notifies = t.c_notifies;
    declined_grants = t.c_declined;
    rejected_updates = t.c_rejected_updates;
    rejected_notifies = t.c_rejected_notifies;
    quarantines = t.c_quarantines;
    reaps = t.c_reaps;
  }

let released_grant_bytes t = t.c_released_grant_bytes
let teardown_probes t = t.c_teardown_probes

let watchdog_fires t =
  Hashtbl.fold (fun _ mf acc -> acc + Macroflow.watchdog_fires mf) t.all_mf 0

(* ---- audit view -------------------------------------------------------- *)

type audit_view = {
  av_mtu : int;
  av_flows : (Cm_types.flow_id * Addr.flow * Macroflow.t) list;
  av_key_entries : int;
  av_macroflows : Macroflow.t list; (* every macroflow ever created *)
  av_default_macroflows : Macroflow.t list;
  av_counters : counters;
}

let audit_view t =
  let by_fid (a, _, _) (b, _, _) = Stdlib.compare a b in
  let by_id a b = Stdlib.compare (Macroflow.id a) (Macroflow.id b) in
  {
    av_mtu = t.mtu;
    av_flows =
      Fid_dir.fold (fun fid fl acc -> (fid, fl.key, fl.mf) :: acc) t.flows_by_id []
      |> List.sort by_fid;
    av_key_entries = Addr.Flow_table.length t.flows_by_key;
    av_macroflows = Hashtbl.fold (fun _ mf acc -> mf :: acc) t.all_mf [] |> List.sort by_id;
    av_default_macroflows =
      Hashtbl.fold (fun _ mf acc -> mf :: acc) t.default_mf [] |> List.sort by_id;
    av_counters = counters t;
  }

(* ---- invariant auditor -------------------------------------------------- *)

(* Structural checks over a live CM, cheap enough to run periodically
   under fault storms.  Everything reads snapshots only, so a clean audit
   never perturbs the run. *)
module Audit = struct
  type report = {
    checked_flows : int;
    checked_macroflows : int;
    violations : string list;
  }

  let ok r = r.violations = []

  let run cm =
    let v = audit_view cm in
    let violations = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
    let default_ids = List.map Macroflow.id v.av_default_macroflows in
    let members_of mfid =
      List.length (List.filter (fun (_, _, mf) -> Macroflow.id mf = mfid) v.av_flows)
    in
    (* macroflow accounting *)
    List.iter
      (fun mf ->
        let open Macroflow in
        let mfid = id mf in
        if outstanding mf < 0 then fail "mf%d: negative outstanding (%d)" mfid (outstanding mf);
        if granted mf < 0 then fail "mf%d: negative granted (%d)" mfid (granted mf);
        if members mf < 0 then fail "mf%d: negative member count (%d)" mfid (members mf);
        if pending_requests mf < 0 then
          fail "mf%d: negative pending requests (%d)" mfid (pending_requests mf);
        if grants_issued mf < grants_reclaimed mf + grants_released mf then
          fail "mf%d: more grants reclaimed+released (%d+%d) than ever issued (%d)" mfid
            (grants_reclaimed mf) (grants_released mf) (grants_issued mf);
        let attached = members_of mfid in
        if members mf <> attached then
          fail "mf%d: member count %d but %d open flows attached" mfid (members mf) attached;
        (* window conservation, recorded at grant-issue time (a snapshot
           check would false-positive whenever a loss halves cwnd while
           the pipe drains) *)
        if conservation_breaches mf > 0 then
          fail "mf%d: window conservation breached %d times at grant issue" mfid
            (conservation_breaches mf);
        (* the grant ledger re-derived from the age chain must agree with
           the running counter — catches leaks on *alive* macroflows,
           where the dead-with-granted-bytes check below never looks *)
        let skew = granted_ledger_skew mf in
        if skew <> 0 then
          fail "mf%d: grant ledger skewed by %d bytes (granted %d vs live reservations)" mfid
            skew (granted mf);
        if alive mf then begin
          (* a live empty non-default macroflow's timer would tick forever *)
          if attached = 0 && not (List.mem mfid default_ids) then
            fail "mf%d: leaked (alive, empty, not a per-destination macroflow)" mfid
        end
        else begin
          if attached > 0 then fail "mf%d: dead but %d open flows still attached" mfid attached;
          if granted mf > 0 then fail "mf%d: dead with %d granted bytes" mfid (granted mf)
        end)
      v.av_macroflows;
    (* flow-table bijection *)
    List.iter
      (fun (fid, key, mf) ->
        (match lookup cm key with
        | Some fid' when fid' = fid -> ()
        | Some fid' -> fail "flow %d: key table resolves its 5-tuple to flow %d" fid fid'
        | None -> fail "flow %d: missing from the key table" fid);
        if not (Macroflow.alive mf) then
          fail "flow %d: attached to dead macroflow %d" fid (Macroflow.id mf))
      v.av_flows;
    if v.av_key_entries <> List.length v.av_flows then
      fail "flow tables disagree: %d key entries, %d open flows" v.av_key_entries
        (List.length v.av_flows);
    (* counter sanity *)
    let c = v.av_counters in
    if c.closes + c.reaps > c.opens then
      fail "counters: %d closes + %d reaps exceed %d opens" c.closes c.reaps c.opens;
    List.iter
      (fun (name, n) -> if n < 0 then fail "counters: %s negative (%d)" name n)
      [
        ("opens", c.opens);
        ("closes", c.closes);
        ("requests", c.requests);
        ("grants", c.grants);
        ("updates", c.updates);
        ("notifies", c.notifies);
        ("declined_grants", c.declined_grants);
        ("rejected_updates", c.rejected_updates);
        ("rejected_notifies", c.rejected_notifies);
        ("quarantines", c.quarantines);
        ("reaps", c.reaps);
      ];
    {
      checked_flows = List.length v.av_flows;
      checked_macroflows = List.length v.av_macroflows;
      violations = List.rev !violations;
    }

  let pp fmt r =
    if ok r then
      Format.fprintf fmt "audit ok (%d flows, %d macroflows)" r.checked_flows
        r.checked_macroflows
    else begin
      Format.fprintf fmt "audit FAILED (%d flows, %d macroflows):" r.checked_flows
        r.checked_macroflows;
      List.iter (fun v -> Format.fprintf fmt "@.  - %s" v) r.violations
    end
end

let pp_summary fmt t =
  let c = counters t in
  Format.fprintf fmt "CM: %d open flows, %d macroflows@." (Fid_dir.length t.flows_by_id)
    (Hashtbl.length t.default_mf);
  Format.fprintf fmt "  api: %d opens, %d requests, %d grants (%d declined), %d updates, %d notifies@."
    c.opens c.requests c.grants c.declined_grants c.updates c.notifies;
  if c.rejected_updates + c.rejected_notifies + c.quarantines + c.reaps > 0 then
    Format.fprintf fmt "  defense: %d rejected updates, %d rejected notifies, %d quarantines, %d reaps@."
      c.rejected_updates c.rejected_notifies c.quarantines c.reaps;
  Fid_dir.iter
    (fun _ fl ->
      let mf = fl.mf in
      Format.fprintf fmt "  flow %d (%a): macroflow %d cwnd=%d out=%d srtt=%s@." fl.fid
        Addr.pp_flow fl.key (Macroflow.id mf) (Macroflow.cwnd mf) (Macroflow.outstanding mf)
        (match Macroflow.srtt mf with
        | Some s -> Format.asprintf "%a" Time.pp s
        | None -> "-"))
    t.flows_by_id
