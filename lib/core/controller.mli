(** Pluggable congestion controllers.

    The CM's controller decides the macroflow congestion window.  The
    default is the paper's TCP-compatible window AIMD with slow start and
    byte counting (§2, §4).  The record-of-closures representation is the
    paper's "modularity … encourages experimentation with other non-AIMD
    schemes": the binomial family (Bansal & Balakrishnan) is provided for
    the ablation benches. *)

type t = {
  name : string;
  cwnd : unit -> int;  (** Current window, payload bytes (≥ 1 MTU). *)
  ssthresh : unit -> int;  (** Slow-start threshold, payload bytes. *)
  in_slow_start : unit -> bool;  (** Whether the next ack grows the window exponentially. *)
  on_ack : nbytes:int -> unit;  (** [nbytes] payload bytes were received by the peer. *)
  on_loss : Cm_types.loss_mode -> unit;
      (** A congestion event of the given severity occurred.  Callers
          gate reporting to at most one event per window/RTT, as TCP
          does. *)
  age : unit -> unit;
      (** Feedback has gone stale while data was outstanding (RFC 2861 in
          spirit): decay the window one step toward the initial window
          without treating it as a congestion event.  Called by the
          macroflow feedback watchdog; repeated calls converge
          exponentially on the initial window. *)
  reset : unit -> unit;  (** Return to the initial (post-open) state. *)
}
(** A controller instance, private to one macroflow. *)

type factory = mtu:int -> t
(** Builds a fresh controller for a macroflow with the given payload MTU. *)

val aimd : ?initial_window_pkts:int -> ?max_window:int -> ?initial_ssthresh:int -> unit -> factory
(** The paper's controller: slow start from [initial_window_pkts] MTUs
    (default 1, the CM's conservative choice — Linux used 2), byte-counted
    additive increase of one MTU per window, halving on {!Cm_types.Transient} /
    {!Cm_types.Ecn_echo}, collapse to one MTU plus slow start on
    {!Cm_types.Persistent}.  [max_window] caps the window
    (default 4 MiB); [initial_ssthresh] defaults to effectively infinite. *)

val binomial :
  k:float ->
  l:float ->
  ?alpha:float ->
  ?beta:float ->
  ?initial_window_pkts:int ->
  ?max_window:int ->
  unit ->
  factory
(** Binomial congestion control: per acked window, [cwnd += alpha·mtu^(k+1)/cwnd^k];
    on loss, [cwnd -= beta·cwnd^l·mtu^(1-l)].  [(k=0, l=1)] is AIMD;
    [(k=1, l=0)] is IIAD; [(k=0.5, l=0.5)] is SQRT — gentler rate
    oscillation for audio/video, the paper's motivating example.
    Defaults: [alpha = 1.0], [beta = 0.5]. *)

val iiad : unit -> factory
(** [binomial ~k:1.0 ~l:0.0 ()], named for convenience. *)

val sqrt_ctl : unit -> factory
(** [binomial ~k:0.5 ~l:0.5 ()], named for convenience. *)

val equation : ?initial_window_pkts:int -> ?max_window:int -> unit -> factory
(** TFRC-style equation-based control: the window follows
    [MTU·√(3/(2p))] where [p] is estimated from the EWMA-smoothed
    loss-event interval (bytes acknowledged between congestion events).
    Slow starts until the first loss event.  Much smoother than AIMD —
    the other end of the responsiveness/smoothness trade the binomial
    family explores. *)
