open Cm_util
open Eventsim

let log = Sim_log.src "cm"

type grant_record = { at : Time.t; reserved : int; g_fid : Cm_types.flow_id }

type watchdog = { wd_rtts : float; wd_floor : Time.span }

let default_watchdog = { wd_rtts = 3.; wd_floor = Time.ms 300 }

type t = {
  engine : Engine.t;
  id : int;
  mtu : int;
  ctrl : Controller.t;
  sched : Scheduler.t;
  deliver_grant : Cm_types.flow_id -> reserved:int -> unit;
  on_state_change : unit -> unit;
  on_reclaim : (Cm_types.flow_id -> int -> unit) option;
  on_tick : (t -> unit) option;
  watchdog : watchdog option;
  grant_reclaim_after : Time.span;
  idle_restart : Time.span option;
  mutable last_tx : Time.t;
  (* window accounting, payload bytes *)
  mutable outstanding : int;
  grants : grant_record Queue.t; (* oldest first *)
  mutable granted_bytes : int; (* sum of outstanding grant reservations *)
  (* Grants promise "up to MTU bytes", but reserving a full MTU per grant
     starves flows whose packets are small (interactive audio sends 160-byte
     frames).  The macroflow learns each flow ensemble's typical packet
     size from cm_notify and reserves that much per grant instead. *)
  avg_pkt : Ewma.t;
  (* shared RTT estimate, ns as floats (TCP gains) *)
  mutable srtt : float;
  mutable rttvar : float;
  mutable rtt_valid : bool;
  loss_ewma : Ewma.t;
  mutable members : int;
  mutable grant_event_pending : bool;
  (* the grant-batch event callback, allocated once at create: grants are
     issued in batches (one engine event drains every issuable grant), so
     the per-batch cost must not include building a fresh closure *)
  mutable grant_thunk : unit -> unit;
  maintenance : Timer.t option ref;
  mutable last_feedback : Time.t;
  mutable last_watchdog : Time.t;
  mutable grants_issued : int;
  mutable grants_reclaimed : int;
  mutable grants_released : int;
  mutable conservation_breaches : int;
  mutable watchdog_fires : int;
  (* telemetry: Trace.nil unless Cm.attach_telemetry wired a live sink *)
  mutable trace : Telemetry.Trace.t;
}

let granted t = t.granted_bytes

let reservation t =
  if Ewma.initialized t.avg_pkt then
    Stdlib.min t.mtu (Stdlib.max 64 (int_of_float (Ewma.value t.avg_pkt)))
  else t.mtu

let window_avail t = t.ctrl.Controller.cwnd () - t.outstanding - t.granted_bytes

let run_grants t =
  t.grant_event_pending <- false;
  let rec loop () =
    if window_avail t >= reservation t then begin
      match t.sched.Scheduler.dequeue () with
      | None -> ()
      | Some fid ->
          let reserved = reservation t in
          Queue.push { at = Engine.now t.engine; reserved; g_fid = fid } t.grants;
          t.granted_bytes <- t.granted_bytes + reserved;
          t.grants_issued <- t.grants_issued + 1;
          (* window conservation is only meaningful at the moment credit
             is extended: after a loss halves cwnd, outstanding may
             legitimately exceed it while the pipe drains.  The guard
             above makes this unreachable; the counter is what the
             invariant auditor checks. *)
          if t.outstanding + t.granted_bytes > t.ctrl.Controller.cwnd () + t.mtu then
            t.conservation_breaches <- t.conservation_breaches + 1;
          t.deliver_grant fid ~reserved;
          loop ()
    end
  in
  loop ()

let maybe_grant t =
  if
    (not t.grant_event_pending)
    && t.sched.Scheduler.pending () > 0
    && window_avail t >= reservation t
  then begin
    t.grant_event_pending <- true;
    ignore (Engine.schedule_after t.engine 0 t.grant_thunk)
  end

let maintenance_tick t =
  (* Reclaim grants that were never followed by a transmission. *)
  let now = Engine.now t.engine in
  let reclaimed = ref false in
  let expired g = Time.diff now g.at > t.grant_reclaim_after in
  while (not (Queue.is_empty t.grants)) && expired (Queue.peek t.grants) do
    Logs.debug ~src:log (fun m -> m "macroflow %d: reclaiming a stale grant" t.id);
    let g = Queue.pop t.grants in
    t.granted_bytes <- Stdlib.max 0 (t.granted_bytes - g.reserved);
    t.grants_reclaimed <- t.grants_reclaimed + 1;
    (match t.on_reclaim with Some f -> f g.g_fid g.reserved | None -> ());
    reclaimed := true
  done;
  (* Error handling: if feedback has stopped arriving while bytes remain
     charged as outstanding, decay the charge so the macroflow cannot
     deadlock on lost feedback. *)
  if t.outstanding > 0 && Time.diff now t.last_feedback > Time.ms 1_000 then begin
    t.outstanding <- t.outstanding / 2;
    reclaimed := true
  end;
  (* Feedback watchdog: outstanding bytes with no cm_update for k·srtt
     means the window was computed from information the path has outgrown.
     Age cwnd one halving toward the initial window per elapsed threshold;
     repeated silence converges exponentially on the initial window. *)
  (match t.watchdog with
  | Some wd when t.outstanding > 0 ->
      let threshold =
        if t.rtt_valid then Stdlib.max wd.wd_floor (int_of_float (wd.wd_rtts *. t.srtt))
        else wd.wd_floor
      in
      if
        Time.diff now t.last_feedback > threshold
        && Time.diff now t.last_watchdog > threshold
      then begin
        let cwnd_before = t.ctrl.Controller.cwnd () in
        t.ctrl.Controller.age ();
        t.last_watchdog <- now;
        t.watchdog_fires <- t.watchdog_fires + 1;
        if Telemetry.Trace.on t.trace then
          Telemetry.Trace.instant t.trace ~cat:"cm" "cm.watchdog"
            [
              ("mf", Telemetry.Trace.Int t.id);
              ("cwnd_before", Telemetry.Trace.Int cwnd_before);
              ("cwnd_after", Telemetry.Trace.Int (t.ctrl.Controller.cwnd ()));
              ("silence_ns", Telemetry.Trace.Int (Time.diff now t.last_feedback));
            ]
      end
  | _ -> ());
  (match t.on_tick with Some f -> f t | None -> ());
  if !reclaimed then maybe_grant t

let create engine ~id ~mtu ~controller ~scheduler ~deliver_grant ~on_state_change ?on_reclaim
    ?on_tick ?watchdog ?(grant_reclaim_after = Time.ms 500) ?idle_restart () =
  if mtu <= 0 then invalid_arg "Macroflow.create: mtu must be positive";
  let t =
    {
      engine;
      id;
      mtu;
      ctrl = controller ~mtu;
      sched = scheduler ();
      deliver_grant;
      on_state_change;
      on_reclaim;
      on_tick;
      watchdog;
      grant_reclaim_after;
      idle_restart;
      last_tx = Engine.now engine;
      outstanding = 0;
      grants = Queue.create ();
      granted_bytes = 0;
      avg_pkt = Ewma.create ~gain:0.25;
      srtt = 0.;
      rttvar = 0.;
      rtt_valid = false;
      loss_ewma = Ewma.create ~gain:0.25;
      members = 0;
      grant_event_pending = false;
      grant_thunk = ignore;
      maintenance = ref None;
      last_feedback = Engine.now engine;
      last_watchdog = Engine.now engine;
      grants_issued = 0;
      grants_reclaimed = 0;
      grants_released = 0;
      conservation_breaches = 0;
      watchdog_fires = 0;
      trace = Telemetry.Trace.nil;
    }
  in
  t.grant_thunk <- (fun () -> run_grants t);
  let timer = Timer.create engine ~callback:(fun () -> maintenance_tick t) in
  Timer.start_periodic timer (Time.ms 100);
  t.maintenance := Some timer;
  t

let id t = t.id
let mtu t = t.mtu
let set_trace t tr = t.trace <- tr
let cwnd t = t.ctrl.Controller.cwnd ()
let ssthresh t = t.ctrl.Controller.ssthresh ()
let outstanding t = t.outstanding
let members t = t.members
let add_member t = t.members <- t.members + 1

let detach_flow t fid =
  t.sched.Scheduler.remove fid;
  t.members <- Stdlib.max 0 (t.members - 1)

let request t fid =
  (* optional slow-start restart (RFC 2861 spirit): congestion state grows
     stale while the macroflow is idle; restarting avoids blasting an old
     window into a path whose conditions may have changed.  Off by
     default — Fig. 7's benefit is exactly this persistence. *)
  (match t.idle_restart with
  | Some threshold
    when t.outstanding = 0
         && Queue.is_empty t.grants
         && Time.diff (Engine.now t.engine) t.last_tx > threshold ->
      t.ctrl.Controller.reset ();
      t.last_tx <- Engine.now t.engine
  | _ -> ());
  t.sched.Scheduler.enqueue fid;
  maybe_grant t

(* Consume the flow's oldest grant.  The common case — flows transmit in
   the order they were granted — is an O(1) front pop; out-of-order
   consumption falls back to an order-preserving rebuild.  A flow with no
   grant outstanding consumes nothing (the transmission is charged
   directly), so one flow can no longer burn another's grant. *)
let take_grant t fid =
  if Queue.is_empty t.grants then None
  else
    match fid with
    | None -> Some (Queue.pop t.grants)
    | Some f ->
        if (Queue.peek t.grants).g_fid = f then Some (Queue.pop t.grants)
        else begin
          let keep = Queue.create () in
          let found = ref None in
          Queue.iter
            (fun g -> if !found = None && g.g_fid = f then found := Some g else Queue.push g keep)
            t.grants;
          match !found with
          | None -> None
          | Some _ ->
              Queue.clear t.grants;
              Queue.transfer keep t.grants;
              !found
        end

let notify t ?fid ~nbytes () =
  if nbytes < 0 then invalid_arg "Macroflow.notify: negative byte count";
  (* Consume the flow's oldest grant; transmissions that arrive without a
     grant (e.g. buffered sends charged by the IP hook) are charged
     directly. *)
  (match take_grant t fid with
  | Some g -> t.granted_bytes <- Stdlib.max 0 (t.granted_bytes - g.reserved)
  | None -> ());
  t.outstanding <- t.outstanding + nbytes;
  if nbytes > 0 then begin
    t.last_tx <- Engine.now t.engine;
    Ewma.update t.avg_pkt (float_of_int nbytes)
  end;
  if nbytes = 0 then
    (* the client declined to use its grant; let another flow have it *)
    maybe_grant t
  else if window_avail t >= reservation t then
    (* a small transmission may have freed most of its reservation *)
    maybe_grant t

let release_flow_grants t fid =
  (* Return a closing/crashed flow's unconsumed grants to the window
     immediately rather than waiting out the reclaim timer. *)
  let released = ref 0 in
  if not (Queue.is_empty t.grants) then begin
    let keep = Queue.create () in
    Queue.iter
      (fun g ->
        if g.g_fid = fid then begin
          released := !released + g.reserved;
          t.grants_released <- t.grants_released + 1
        end
        else Queue.push g keep)
      t.grants;
    if !released > 0 then begin
      Queue.clear t.grants;
      Queue.transfer keep t.grants;
      t.granted_bytes <- Stdlib.max 0 (t.granted_bytes - !released);
      maybe_grant t
    end
  end;
  !released

let discharge t nbytes =
  if nbytes > 0 then begin
    t.outstanding <- Stdlib.max 0 (t.outstanding - nbytes);
    maybe_grant t
  end

let transfer_outstanding ~src ~dst nbytes =
  let n = Stdlib.min nbytes src.outstanding in
  if n > 0 then begin
    src.outstanding <- src.outstanding - n;
    dst.outstanding <- dst.outstanding + n;
    maybe_grant src
  end

let update_rtt t sample =
  let s = float_of_int sample in
  if not t.rtt_valid then begin
    t.srtt <- s;
    t.rttvar <- s /. 2.;
    t.rtt_valid <- true
  end
  else begin
    t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. s));
    t.srtt <- (0.875 *. t.srtt) +. (0.125 *. s)
  end

let loss_mode_str = function
  | Cm_types.No_loss -> "none"
  | Cm_types.Ecn_echo -> "ecn"
  | Cm_types.Transient -> "transient"
  | Cm_types.Persistent -> "persistent"

let update t ~nsent ~nrecd ~loss ~rtt =
  if nsent < 0 || nrecd < 0 || nrecd > nsent then
    invalid_arg "Macroflow.update: need 0 <= nrecd <= nsent";
  t.last_feedback <- Engine.now t.engine;
  (match rtt with Some sample when sample > 0 -> update_rtt t sample | _ -> ());
  t.outstanding <- Stdlib.max 0 (t.outstanding - nsent);
  if nsent > 0 then Ewma.update t.loss_ewma (float_of_int (nsent - nrecd) /. float_of_int nsent);
  let was_slow_start = t.ctrl.Controller.in_slow_start () in
  (* Congestion-window validation (RFC 2861 spirit): only grow the window
     when the flow ensemble is actually using it, otherwise an
     application sending below its allowed rate inflates cwnd — and the
     advertised rate — without ever testing the path. *)
  let used = t.outstanding + nsent + granted t in
  if nrecd > 0 && 3 * used >= t.ctrl.Controller.cwnd () then
    t.ctrl.Controller.on_ack ~nbytes:nrecd;
  (match loss with
  | Cm_types.No_loss -> ()
  | mode ->
      Logs.debug ~src:log (fun m ->
          m "macroflow %d: %a congestion, cwnd %d -> reacting" t.id Cm_types.pp_loss_mode mode
            (cwnd t));
      let cwnd_before = cwnd t in
      t.ctrl.Controller.on_loss mode;
      (* the controller's decision, attributed to its cause (ECN echo vs
         transient vs persistent/timeout) — Figs. 5–10 are built from
         exactly these transitions *)
      if Telemetry.Trace.on t.trace then
        Telemetry.Trace.instant t.trace ~cat:"cm" "cm.congestion"
          [
            ("mf", Telemetry.Trace.Int t.id);
            ("mode", Telemetry.Trace.Str (loss_mode_str mode));
            ("cwnd_before", Telemetry.Trace.Int cwnd_before);
            ("cwnd_after", Telemetry.Trace.Int (cwnd t));
            ("ssthresh", Telemetry.Trace.Int (ssthresh t));
          ];
      if mode = Cm_types.Persistent then
        (* after persistent congestion everything in flight is presumed
           lost; restart the accounting cleanly *)
        t.outstanding <- 0);
  (if Telemetry.Trace.on t.trace then
     let now_slow_start = t.ctrl.Controller.in_slow_start () in
     if now_slow_start <> was_slow_start then
       Telemetry.Trace.instant t.trace ~cat:"cm" "cm.state"
         [
           ("mf", Telemetry.Trace.Int t.id);
           ( "state",
             Telemetry.Trace.Str (if now_slow_start then "slow_start" else "cong_avoid") );
           ("cwnd", Telemetry.Trace.Int (cwnd t));
         ]);
  maybe_grant t;
  t.on_state_change ()

let srtt t = if t.rtt_valid then Some (int_of_float t.srtt) else None
let rttvar t = if t.rtt_valid then Some (int_of_float t.rttvar) else None
let loss_rate t = if Ewma.initialized t.loss_ewma then Ewma.value t.loss_ewma else 0.

let rate_bps t =
  if not t.rtt_valid then 0.
  else if t.srtt <= 0. then 0.
  else float_of_int (cwnd t) *. 8. /. (t.srtt /. 1e9)

let status t =
  {
    Cm_types.rate_bps = rate_bps t;
    srtt = srtt t;
    rttvar = rttvar t;
    loss_rate = loss_rate t;
    cwnd = cwnd t;
    mtu = t.mtu;
  }

let set_weight t fid w = t.sched.Scheduler.set_weight fid w
let pending_requests t = t.sched.Scheduler.pending ()
let grants_issued t = t.grants_issued
let grants_reclaimed t = t.grants_reclaimed
let grants_released t = t.grants_released
let conservation_breaches t = t.conservation_breaches
let watchdog_fires t = t.watchdog_fires
let last_feedback t = t.last_feedback
let alive t = Option.is_some !(t.maintenance)
let controller_name t = t.ctrl.Controller.name
let reset_congestion_state t = t.ctrl.Controller.reset ()

let shutdown t =
  match !(t.maintenance) with
  | Some timer ->
      Timer.stop timer;
      t.maintenance := None
  | None -> ()

let pending_for_flow t fid = t.sched.Scheduler.pending_for fid
