open Cm_util
open Eventsim

let log = Sim_log.src "cm"

(* [g_dead] is the consumed/released flag: a record is marked dead in O(1)
   where it stands and physically dequeued only when it reaches the front
   of a queue, the same lazy-deletion trick the event engine uses.  Each
   record sits in two queues — the macroflow-wide age order (what the
   reclaim timer scans) and its flow's own order (what take_grant pops) —
   threaded intrusively through the record itself ([g_qnext] for the
   global chain, [g_fnext] for the flow chain), so issuing a grant
   allocates exactly one record and no queue cells.  Marking rather than
   splicing keeps both chains consistent without either scan.

   [g_mem] is the issuing member's record (below), so consuming or
   releasing a grant reaches the flow's chain by one pointer load — no
   per-flow hash table anywhere on the grant path. *)
type grant_record = {
  at : Time.t;
  reserved : int;
  g_mem : member; (* issuing member; head/tail of the per-flow chain *)
  mutable g_dead : bool;
  mutable g_qnext : grant_record; (* global age chain; [g_nil] terminated *)
  mutable g_fnext : grant_record; (* per-flow chain; [g_nil] terminated *)
}

(* A member is a flow's standing within one macroflow: its scheduler key
   ([m_ix], a small macroflow-local index recycled on detach, which keeps
   the scheduler's arrays dense and cache-resident) and the head/tail of
   its own grant chain.  The CM holds the member record in its flow entry
   and passes it back on every per-flow call, so request/notify/release
   are pointer-chasing only. *)
and member = {
  m_fid : Cm_types.flow_id; (* for reclaim reporting; stale after detach *)
  m_ix : int;
  mutable m_head : grant_record; (* flow's grant chain, oldest first *)
  mutable m_tail : grant_record;
}

(* chain terminator: points to itself so a popped record can be unlinked
   by pointing at [g_nil] without an option box per link *)
let rec g_nil =
  { at = 0; reserved = 0; g_mem = m_nil; g_dead = true; g_qnext = g_nil; g_fnext = g_nil }

and m_nil = { m_fid = -1; m_ix = -1; m_head = g_nil; m_tail = g_nil }

let nil_member = m_nil
let member_fid m = m.m_fid

type watchdog = { wd_rtts : float; wd_floor : Time.span }

let default_watchdog = { wd_rtts = 3.; wd_floor = Time.ms 300 }

(* Smoothed RTT state lives in its own all-float record: OCaml stores it
   as a flat float block, so the per-update stores don't box. *)
type rtt_state = { mutable srtt : float; mutable rttvar : float }

type t = {
  engine : Engine.t;
  id : int;
  mtu : int;
  ctrl : Controller.t;
  sched : Scheduler.t;
  deliver_grant : member -> reserved:int -> unit;
  on_state_change : unit -> unit;
  on_reclaim : (Cm_types.flow_id -> int -> unit) option;
  on_tick : (t -> unit) option;
  watchdog : watchdog option;
  grant_reclaim_after : Time.span;
  idle_restart : Time.span option;
  mutable last_tx : Time.t;
  (* window accounting, payload bytes *)
  mutable outstanding : int;
  (* the controller's window, mirrored into a plain field so the grant
     loop reads an int instead of calling through the controller's
     closure record; refreshed at every controller mutation *)
  mutable cwnd_now : int;
  (* current per-grant reservation, mirrored likewise (recomputed when
     [avg_pkt] absorbs a sample) *)
  mutable resv_now : int;
  mutable gq_head : grant_record; (* oldest first, may hold dead records *)
  mutable gq_tail : grant_record;
  (* member directory by scheduler index: maps the index the scheduler
     hands back from dequeue to the member it belongs to.  Dense, grown
     by doubling; detached slots hold [m_nil] and go on the free list. *)
  mutable mix : member array;
  mutable mix_free : int list;
  mutable mix_high : int; (* indices >= mix_high have never been used *)
  mutable live_grants : int; (* non-dead records across both views *)
  mutable granted_bytes : int; (* sum of outstanding grant reservations *)
  (* Grants promise "up to MTU bytes", but reserving a full MTU per grant
     starves flows whose packets are small (interactive audio sends 160-byte
     frames).  The macroflow learns each flow ensemble's typical packet
     size from cm_notify and reserves that much per grant instead. *)
  avg_pkt : Ewma.t;
  (* shared RTT estimate, ns as floats (TCP gains) *)
  rtts : rtt_state;
  mutable rtt_valid : bool;
  loss_ewma : Ewma.t;
  mutable members : int;
  mutable grant_event_pending : bool;
  (* the grant-batch event callback, allocated once at create: grants are
     issued in batches (one engine event drains every issuable grant), so
     the per-batch cost must not include building a fresh closure *)
  mutable grant_thunk : unit -> unit;
  maintenance : Timer.t option ref;
  mutable last_feedback : Time.t;
  mutable last_watchdog : Time.t;
  mutable grants_issued : int;
  mutable grants_reclaimed : int;
  mutable grants_released : int;
  mutable conservation_breaches : int;
  mutable watchdog_fires : int;
  (* telemetry: Trace.nil unless Cm.attach_telemetry wired a live sink *)
  mutable trace : Telemetry.Trace.t;
}

let granted t = t.granted_bytes

let refresh_cwnd t = t.cwnd_now <- t.ctrl.Controller.cwnd ()

let refresh_reservation t =
  t.resv_now <-
    (if Ewma.initialized t.avg_pkt then
       Stdlib.min t.mtu (Stdlib.max 64 (int_of_float (Ewma.value t.avg_pkt)))
     else t.mtu)

let reservation t = t.resv_now
let window_avail t = t.cwnd_now - t.outstanding - t.granted_bytes

(* ---- intrusive chain plumbing ----------------------------------------- *)

let gq_push t g =
  if t.gq_tail == g_nil then t.gq_head <- g else t.gq_tail.g_qnext <- g;
  t.gq_tail <- g

let gq_pop t =
  let g = t.gq_head in
  t.gq_head <- g.g_qnext;
  if t.gq_head == g_nil then t.gq_tail <- g_nil;
  g.g_qnext <- g_nil;
  g

let fg_push m g =
  if m.m_tail == g_nil then m.m_head <- g else m.m_tail.g_fnext <- g;
  m.m_tail <- g

let fg_pop m =
  let g = m.m_head in
  m.m_head <- g.g_fnext;
  if m.m_head == g_nil then m.m_tail <- g_nil;
  g.g_fnext <- g_nil;
  g

let gq_drop_dead t =
  while t.gq_head != g_nil && t.gq_head.g_dead do
    ignore (gq_pop t)
  done

let fg_drop_dead m =
  while m.m_head != g_nil && m.m_head.g_dead do
    ignore (fg_pop m)
  done

let push_grant t g =
  gq_push t g;
  fg_push g.g_mem g;
  t.live_grants <- t.live_grants + 1

(* Mark a record consumed/released and let dead records drain off the
   global front so they cannot pile up behind a long-lived live one. *)
let kill_grant t g =
  g.g_dead <- true;
  t.live_grants <- t.live_grants - 1;
  gq_drop_dead t

let run_grants t =
  t.grant_event_pending <- false;
  (* [deliver_grant] reenters [notify]/[update] through the client's
     callback, so every window term below must be re-read per iteration —
     with the mirrored fields that is four int loads, not closure calls *)
  let rec loop () =
    if t.cwnd_now - t.outstanding - t.granted_bytes >= t.resv_now then begin
      match t.sched.Scheduler.dequeue () with
      | None -> ()
      | Some ix ->
          let m = t.mix.(ix) in
          if m == m_nil then loop () (* unreachable: detach purges the scheduler *)
          else begin
            let reserved = t.resv_now in
            push_grant t
              {
                at = Engine.now t.engine;
                reserved;
                g_mem = m;
                g_dead = false;
                g_qnext = g_nil;
                g_fnext = g_nil;
              };
            t.granted_bytes <- t.granted_bytes + reserved;
            t.grants_issued <- t.grants_issued + 1;
            (* window conservation is only meaningful at the moment credit
               is extended: after a loss halves cwnd, outstanding may
               legitimately exceed it while the pipe drains.  The guard
               above makes this unreachable; the counter is what the
               invariant auditor checks. *)
            if t.outstanding + t.granted_bytes > t.cwnd_now + t.mtu then
              t.conservation_breaches <- t.conservation_breaches + 1;
            t.deliver_grant m ~reserved;
            loop ()
          end
    end
  in
  loop ()

let maybe_grant t =
  if
    (not t.grant_event_pending)
    && t.sched.Scheduler.pending () > 0
    && window_avail t >= reservation t
  then begin
    t.grant_event_pending <- true;
    Engine.post t.engine 0 t.grant_thunk
  end

let maintenance_tick t =
  (* Reclaim grants that were never followed by a transmission. *)
  let now = Engine.now t.engine in
  let reclaimed = ref false in
  let expired g = Time.diff now g.at > t.grant_reclaim_after in
  let scanning = ref true in
  while !scanning && t.gq_head != g_nil do
    let g = t.gq_head in
    if g.g_dead then ignore (gq_pop t)
    else if expired g then begin
      Logs.debug ~src:log (fun m -> m "macroflow %d: reclaiming a stale grant" t.id);
      ignore (gq_pop t);
      g.g_dead <- true;
      t.live_grants <- t.live_grants - 1;
      t.granted_bytes <- Stdlib.max 0 (t.granted_bytes - g.reserved);
      t.grants_reclaimed <- t.grants_reclaimed + 1;
      (match t.on_reclaim with Some f -> f g.g_mem.m_fid g.reserved | None -> ());
      reclaimed := true
    end
    else scanning := false
  done;
  (* Error handling: if feedback has stopped arriving while bytes remain
     charged as outstanding, decay the charge so the macroflow cannot
     deadlock on lost feedback. *)
  if t.outstanding > 0 && Time.diff now t.last_feedback > Time.ms 1_000 then begin
    t.outstanding <- t.outstanding / 2;
    reclaimed := true
  end;
  (* Feedback watchdog: outstanding bytes with no cm_update for k·srtt
     means the window was computed from information the path has outgrown.
     Age cwnd one halving toward the initial window per elapsed threshold;
     repeated silence converges exponentially on the initial window. *)
  (match t.watchdog with
  | Some wd when t.outstanding > 0 ->
      let threshold =
        if t.rtt_valid then Stdlib.max wd.wd_floor (int_of_float (wd.wd_rtts *. t.rtts.srtt))
        else wd.wd_floor
      in
      if
        Time.diff now t.last_feedback > threshold
        && Time.diff now t.last_watchdog > threshold
      then begin
        let cwnd_before = t.cwnd_now in
        t.ctrl.Controller.age ();
        refresh_cwnd t;
        t.last_watchdog <- now;
        t.watchdog_fires <- t.watchdog_fires + 1;
        if Telemetry.Trace.on t.trace then
          Telemetry.Trace.instant t.trace ~cat:"cm" "cm.watchdog"
            [
              ("mf", Telemetry.Trace.Int t.id);
              ("cwnd_before", Telemetry.Trace.Int cwnd_before);
              ("cwnd_after", Telemetry.Trace.Int t.cwnd_now);
              ("silence_ns", Telemetry.Trace.Int (Time.diff now t.last_feedback));
            ]
      end
  | _ -> ());
  (match t.on_tick with Some f -> f t | None -> ());
  if !reclaimed then maybe_grant t

let create engine ~id ~mtu ~controller ~scheduler ~deliver_grant ~on_state_change ?on_reclaim
    ?on_tick ?watchdog ?(grant_reclaim_after = Time.ms 500) ?idle_restart () =
  if mtu <= 0 then invalid_arg "Macroflow.create: mtu must be positive";
  let t =
    {
      engine;
      id;
      mtu;
      ctrl = controller ~mtu;
      sched = scheduler ();
      deliver_grant;
      on_state_change;
      on_reclaim;
      on_tick;
      watchdog;
      grant_reclaim_after;
      idle_restart;
      last_tx = Engine.now engine;
      outstanding = 0;
      cwnd_now = 0;
      resv_now = mtu;
      gq_head = g_nil;
      gq_tail = g_nil;
      mix = Array.make 8 m_nil;
      mix_free = [];
      mix_high = 0;
      live_grants = 0;
      granted_bytes = 0;
      avg_pkt = Ewma.create ~gain:0.25;
      rtts = { srtt = 0.; rttvar = 0. };
      rtt_valid = false;
      loss_ewma = Ewma.create ~gain:0.25;
      members = 0;
      grant_event_pending = false;
      grant_thunk = ignore;
      maintenance = ref None;
      last_feedback = Engine.now engine;
      last_watchdog = Engine.now engine;
      grants_issued = 0;
      grants_reclaimed = 0;
      grants_released = 0;
      conservation_breaches = 0;
      watchdog_fires = 0;
      trace = Telemetry.Trace.nil;
    }
  in
  refresh_cwnd t;
  refresh_reservation t;
  t.grant_thunk <- Engine.prof_tag engine ~cat:"cm" (fun () -> run_grants t);
  let timer = Timer.create engine ~callback:(fun () -> maintenance_tick t) in
  Timer.start_periodic timer (Time.ms 100);
  t.maintenance := Some timer;
  t

let id t = t.id
let mtu t = t.mtu
let set_trace t tr = t.trace <- tr
let cwnd t = t.cwnd_now
let ssthresh t = t.ctrl.Controller.ssthresh ()
let outstanding t = t.outstanding
let members t = t.members

let add_member t fid =
  let ix =
    match t.mix_free with
    | ix :: rest ->
        t.mix_free <- rest;
        ix
    | [] ->
        let ix = t.mix_high in
        t.mix_high <- ix + 1;
        if ix >= Array.length t.mix then begin
          let grown = Array.make (2 * Array.length t.mix) m_nil in
          Array.blit t.mix 0 grown 0 (Array.length t.mix);
          t.mix <- grown
        end;
        ix
  in
  let m = { m_fid = fid; m_ix = ix; m_head = g_nil; m_tail = g_nil } in
  t.mix.(ix) <- m;
  t.members <- t.members + 1;
  m

let detach_flow t m =
  t.sched.Scheduler.remove m.m_ix;
  (* any remaining records on the member's chain are dead
     (release_flow_grants runs first on every teardown path); recycle the
     scheduler index *)
  t.mix.(m.m_ix) <- m_nil;
  t.mix_free <- m.m_ix :: t.mix_free;
  t.members <- Stdlib.max 0 (t.members - 1)

let request t m =
  (* optional slow-start restart (RFC 2861 spirit): congestion state grows
     stale while the macroflow is idle; restarting avoids blasting an old
     window into a path whose conditions may have changed.  Off by
     default — Fig. 7's benefit is exactly this persistence. *)
  (match t.idle_restart with
  | Some threshold
    when t.outstanding = 0 && t.live_grants = 0
         && Time.diff (Engine.now t.engine) t.last_tx > threshold ->
      t.ctrl.Controller.reset ();
      refresh_cwnd t;
      t.last_tx <- Engine.now t.engine
  | _ -> ());
  t.sched.Scheduler.enqueue m.m_ix;
  maybe_grant t

(* Consume the flow's oldest grant — O(1) via the member's own chain,
   however far out of global age order the flow transmits.  A flow with no
   grant outstanding consumes nothing (the transmission is charged
   directly), so one flow can no longer burn another's grant. *)
let take_grant t m =
  if t.live_grants = 0 then None
  else
    match m with
    | None ->
        (* anonymous transmissions consume the oldest grant overall *)
        gq_drop_dead t;
        let g = gq_pop t in
        g.g_dead <- true;
        t.live_grants <- t.live_grants - 1;
        fg_drop_dead g.g_mem;
        Some g
    | Some m ->
        fg_drop_dead m;
        if m.m_head == g_nil then None
        else begin
          let g = fg_pop m in
          kill_grant t g;
          Some g
        end

let notify t ?m ~nbytes () =
  if nbytes < 0 then invalid_arg "Macroflow.notify: negative byte count";
  (* Consume the flow's oldest grant; transmissions that arrive without a
     grant (e.g. buffered sends charged by the IP hook) are charged
     directly. *)
  (match take_grant t m with
  | Some g -> t.granted_bytes <- Stdlib.max 0 (t.granted_bytes - g.reserved)
  | None -> ());
  t.outstanding <- t.outstanding + nbytes;
  if nbytes > 0 then begin
    t.last_tx <- Engine.now t.engine;
    Ewma.update t.avg_pkt (float_of_int nbytes);
    refresh_reservation t
  end;
  if nbytes = 0 then
    (* the client declined to use its grant; let another flow have it *)
    maybe_grant t
  else if window_avail t >= reservation t then
    (* a small transmission may have freed most of its reservation *)
    maybe_grant t

(* Mutation canary for the soak oracles: with this on,
   [release_flow_grants] "forgets" to return the released reservation to
   the window — precisely the grant-leak bug the ledger-skew audit
   exists to catch.  CI flips it to prove the oracle pipeline detects a
   real, silently-wrong ledger. *)
let canary_grant_leak = ref false

let release_flow_grants t m =
  (* Return a closing/crashed flow's unconsumed grants to the window
     immediately rather than waiting out the reclaim timer.  The member's
     own chain makes this proportional to the flow's grants, not the
     macroflow's. *)
  let released = ref 0 in
  while m.m_head != g_nil do
    let g = fg_pop m in
    if not g.g_dead then begin
      g.g_dead <- true;
      t.live_grants <- t.live_grants - 1;
      released := !released + g.reserved;
      t.grants_released <- t.grants_released + 1
    end
  done;
  if !released > 0 then begin
    gq_drop_dead t;
    if not !canary_grant_leak then
      t.granted_bytes <- Stdlib.max 0 (t.granted_bytes - !released);
    maybe_grant t
  end;
  !released

(* The grant ledger re-derived from first principles: [granted_bytes]
   minus the sum of live reservations on the age chain.  Anything but
   zero means a grant path lost or double-counted bytes — the audit
   invariant that catches leaks on *alive* macroflows (the
   dead-with-granted-bytes check only fires at teardown). *)
let granted_ledger_skew t =
  let rec live g acc =
    if g == g_nil then acc else live g.g_qnext (if g.g_dead then acc else acc + g.reserved)
  in
  t.granted_bytes - live t.gq_head 0

let discharge t nbytes =
  if nbytes > 0 then begin
    t.outstanding <- Stdlib.max 0 (t.outstanding - nbytes);
    maybe_grant t
  end

let transfer_outstanding ~src ~dst nbytes =
  let n = Stdlib.min nbytes src.outstanding in
  if n > 0 then begin
    src.outstanding <- src.outstanding - n;
    dst.outstanding <- dst.outstanding + n;
    maybe_grant src
  end

let update_rtt t sample =
  let s = float_of_int sample in
  let r = t.rtts in
  if not t.rtt_valid then begin
    r.srtt <- s;
    r.rttvar <- s /. 2.;
    t.rtt_valid <- true
  end
  else begin
    r.rttvar <- (0.75 *. r.rttvar) +. (0.25 *. Float.abs (r.srtt -. s));
    r.srtt <- (0.875 *. r.srtt) +. (0.125 *. s)
  end

let loss_mode_str = function
  | Cm_types.No_loss -> "none"
  | Cm_types.Ecn_echo -> "ecn"
  | Cm_types.Transient -> "transient"
  | Cm_types.Persistent -> "persistent"

let update t ~nsent ~nrecd ~loss ~rtt =
  if nsent < 0 || nrecd < 0 || nrecd > nsent then
    invalid_arg "Macroflow.update: need 0 <= nrecd <= nsent";
  t.last_feedback <- Engine.now t.engine;
  (match rtt with Some sample when sample > 0 -> update_rtt t sample | _ -> ());
  t.outstanding <- Stdlib.max 0 (t.outstanding - nsent);
  if nsent > 0 then Ewma.update t.loss_ewma (float_of_int (nsent - nrecd) /. float_of_int nsent);
  let was_slow_start = t.ctrl.Controller.in_slow_start () in
  (* Congestion-window validation (RFC 2861 spirit): only grow the window
     when the flow ensemble is actually using it, otherwise an
     application sending below its allowed rate inflates cwnd — and the
     advertised rate — without ever testing the path. *)
  let used = t.outstanding + nsent + granted t in
  if nrecd > 0 && 3 * used >= t.cwnd_now then begin
    t.ctrl.Controller.on_ack ~nbytes:nrecd;
    refresh_cwnd t
  end;
  (match loss with
  | Cm_types.No_loss -> ()
  | mode ->
      Logs.debug ~src:log (fun m ->
          m "macroflow %d: %a congestion, cwnd %d -> reacting" t.id Cm_types.pp_loss_mode mode
            (cwnd t));
      let cwnd_before = cwnd t in
      t.ctrl.Controller.on_loss mode;
      refresh_cwnd t;
      (* the controller's decision, attributed to its cause (ECN echo vs
         transient vs persistent/timeout) — Figs. 5–10 are built from
         exactly these transitions *)
      if Telemetry.Trace.on t.trace then
        Telemetry.Trace.instant t.trace ~cat:"cm" "cm.congestion"
          [
            ("mf", Telemetry.Trace.Int t.id);
            ("mode", Telemetry.Trace.Str (loss_mode_str mode));
            ("cwnd_before", Telemetry.Trace.Int cwnd_before);
            ("cwnd_after", Telemetry.Trace.Int (cwnd t));
            ("ssthresh", Telemetry.Trace.Int (ssthresh t));
          ];
      if mode = Cm_types.Persistent then
        (* after persistent congestion everything in flight is presumed
           lost; restart the accounting cleanly *)
        t.outstanding <- 0);
  (if Telemetry.Trace.on t.trace then
     let now_slow_start = t.ctrl.Controller.in_slow_start () in
     if now_slow_start <> was_slow_start then
       Telemetry.Trace.instant t.trace ~cat:"cm" "cm.state"
         [
           ("mf", Telemetry.Trace.Int t.id);
           ( "state",
             Telemetry.Trace.Str (if now_slow_start then "slow_start" else "cong_avoid") );
           ("cwnd", Telemetry.Trace.Int (cwnd t));
         ]);
  maybe_grant t;
  t.on_state_change ()

let srtt t = if t.rtt_valid then Some (int_of_float t.rtts.srtt) else None
let rttvar t = if t.rtt_valid then Some (int_of_float t.rtts.rttvar) else None
let loss_rate t = if Ewma.initialized t.loss_ewma then Ewma.value t.loss_ewma else 0.

let rate_bps t =
  if not t.rtt_valid then 0.
  else if t.rtts.srtt <= 0. then 0.
  else float_of_int (cwnd t) *. 8. /. (t.rtts.srtt /. 1e9)

let status t =
  {
    Cm_types.rate_bps = rate_bps t;
    srtt = srtt t;
    rttvar = rttvar t;
    loss_rate = loss_rate t;
    cwnd = cwnd t;
    mtu = t.mtu;
  }

let set_weight t m w = t.sched.Scheduler.set_weight m.m_ix w
let pending_requests t = t.sched.Scheduler.pending ()
let grants_issued t = t.grants_issued
let grants_reclaimed t = t.grants_reclaimed
let grants_released t = t.grants_released
let conservation_breaches t = t.conservation_breaches
let watchdog_fires t = t.watchdog_fires
let last_feedback t = t.last_feedback
let alive t = Option.is_some !(t.maintenance)
let controller_name t = t.ctrl.Controller.name

let reset_congestion_state t =
  t.ctrl.Controller.reset ();
  refresh_cwnd t

let shutdown t =
  match !(t.maintenance) with
  | Some timer ->
      Timer.stop timer;
      t.maintenance := None
  | None -> ()

let pending_for_flow t m = t.sched.Scheduler.pending_for m.m_ix
