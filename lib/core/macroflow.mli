(** Macroflows: the CM's unit of congestion state aggregation.

    A macroflow is "a group of flows that share the same congestion state,
    control algorithms, and state information in the CM" (paper §2) —
    by default all flows to the same destination host.  It owns one
    congestion controller, one scheduler, the shared smoothed RTT
    estimate, and the window bookkeeping that turns controller decisions
    into per-flow transmission grants of one MTU each.

    Window accounting invariant: [outstanding + granted ≤ cwnd], where
    [outstanding] is payload bytes transmitted but not yet resolved by
    feedback, and [granted] is bytes promised to clients that have not yet
    transmitted.  Grants that are never followed by a [notify] are
    reclaimed by the maintenance timer (the paper's "timer-driven component
    to perform background tasks and error handling"). *)

open Cm_util
open Eventsim

type t
(** A macroflow. *)

val create :
  Engine.t ->
  id:int ->
  mtu:int ->
  controller:Controller.factory ->
  scheduler:Scheduler.factory ->
  deliver_grant:(Cm_types.flow_id -> unit) ->
  on_state_change:(unit -> unit) ->
  ?grant_reclaim_after:Time.span ->
  ?idle_restart:Time.span ->
  unit ->
  t
(** [create eng ~id ~mtu ~controller ~scheduler ~deliver_grant
    ~on_state_change ()] builds an idle macroflow.  [deliver_grant] is
    invoked (from an engine event) once per grant; [on_state_change] after
    any feedback that may alter rate estimates.  Grants unclaimed after
    [grant_reclaim_after] (default 500 ms) are returned to the window.
    With [idle_restart], a request arriving after that much transmission
    silence resets the controller to its initial window (slow-start
    restart); by default congestion state persists — that persistence is
    the Fig. 7 benefit. *)

val id : t -> int
(** Macroflow identifier. *)

val mtu : t -> int
(** Payload bytes per grant. *)

val cwnd : t -> int
(** Controller's current window (payload bytes). *)

val ssthresh : t -> int
(** Controller's slow-start threshold. *)

val outstanding : t -> int
(** Payload bytes in flight (sent, no feedback yet). *)

val granted : t -> int
(** Payload bytes granted but not yet transmitted. *)

val members : t -> int
(** Number of flows attached. *)

val add_member : t -> unit
(** Record a flow joining (membership is tracked by the CM). *)

val detach_flow : t -> Cm_types.flow_id -> unit
(** Remove a flow: discard its pending requests and decrement
    membership. *)

val request : t -> Cm_types.flow_id -> unit
(** One implicit request to send up to an MTU on behalf of the flow
    ([cm_request]). *)

val notify : t -> nbytes:int -> unit
(** A packet of [nbytes] payload bytes of this macroflow was handed to the
    network ([cm_notify]); [nbytes = 0] returns an unused grant. *)

val update :
  t -> nsent:int -> nrecd:int -> loss:Cm_types.loss_mode -> rtt:Time.span option -> unit
(** Client feedback ([cm_update]): of [nsent] payload bytes whose fate is
    now known, [nrecd] arrived; [loss] classifies any congestion; [rtt] is
    an optional new RTT sample. *)

val srtt : t -> Time.span option
(** Shared smoothed RTT (combining samples from all member flows). *)

val rttvar : t -> Time.span option
(** Shared RTT mean deviation. *)

val loss_rate : t -> float
(** Smoothed loss fraction. *)

val rate_bps : t -> float
(** Macroflow sustainable rate estimate: [cwnd / srtt], in payload
    bits per second (0 until an RTT sample exists). *)

val status : t -> Cm_types.status
(** Snapshot for [cm_query] (macroflow-level; the CM divides rate among
    member flows). *)

val set_weight : t -> Cm_types.flow_id -> float -> unit
(** Set a member flow's scheduler weight. *)

val pending_requests : t -> int
(** Requests queued awaiting window space. *)

val grants_issued : t -> int
(** Cumulative grants delivered. *)

val grants_reclaimed : t -> int
(** Cumulative grants reclaimed by the maintenance timer. *)

val controller_name : t -> string
(** Name of the active controller (diagnostics). *)

val reset_congestion_state : t -> unit
(** Return the controller to its initial state (used when constructing a
    fresh macroflow for a split is undesirable). *)

val shutdown : t -> unit
(** Stop the maintenance timer (call when the macroflow is discarded). *)

val pending_for_flow : t -> Cm_types.flow_id -> int
(** Requests this flow currently has queued in the scheduler. *)

val set_trace : t -> Telemetry.Trace.t -> unit
(** Route this macroflow's structured trace events (congestion reactions
    with their loss-mode attribution, slow-start/congestion-avoidance
    transitions) to [tr].  Macroflows start with {!Telemetry.Trace.nil},
    so the feedback path pays one branch per update until a live sink is
    wired (normally by [Cm.attach_telemetry]). *)
