(** Macroflows: the CM's unit of congestion state aggregation.

    A macroflow is "a group of flows that share the same congestion state,
    control algorithms, and state information in the CM" (paper §2) —
    by default all flows to the same destination host.  It owns one
    congestion controller, one scheduler, the shared smoothed RTT
    estimate, and the window bookkeeping that turns controller decisions
    into per-flow transmission grants of one MTU each.

    Window accounting invariant: [outstanding + granted ≤ cwnd], where
    [outstanding] is payload bytes transmitted but not yet resolved by
    feedback, and [granted] is bytes promised to clients that have not yet
    transmitted.  Grants that are never followed by a [notify] are
    reclaimed by the maintenance timer (the paper's "timer-driven component
    to perform background tasks and error handling"). *)

open Cm_util
open Eventsim

type t
(** A macroflow. *)

type member
(** A flow's standing within one macroflow: its scheduler slot and its own
    chain of outstanding grants.  Returned by {!add_member}; the CM stores
    it in the flow entry and passes it back on every per-flow operation,
    so the grant path never looks a flow up by id. *)

val nil_member : member
(** Placeholder member for initializing storage before {!add_member};
    never passed to any operation. *)

val member_fid : member -> Cm_types.flow_id
(** The flow id the member was created for (stale after
    {!detach_flow}). *)

type watchdog = { wd_rtts : float; wd_floor : Time.span }
(** Feedback-watchdog parameters: with data outstanding, cwnd is aged one
    step (see {!Controller.t.age}) each time no [cm_update] arrives for
    [max wd_floor (wd_rtts · srtt)].  The floor covers macroflows with no
    RTT estimate yet. *)

val default_watchdog : watchdog
(** [{ wd_rtts = 3.0; wd_floor = 300 ms }] — about three RTTs of silence
    per aging step. *)

val create :
  Engine.t ->
  id:int ->
  mtu:int ->
  controller:Controller.factory ->
  scheduler:Scheduler.factory ->
  deliver_grant:(member -> reserved:int -> unit) ->
  on_state_change:(unit -> unit) ->
  ?on_reclaim:(Cm_types.flow_id -> int -> unit) ->
  ?on_tick:(t -> unit) ->
  ?watchdog:watchdog ->
  ?grant_reclaim_after:Time.span ->
  ?idle_restart:Time.span ->
  unit ->
  t
(** [create eng ~id ~mtu ~controller ~scheduler ~deliver_grant
    ~on_state_change ()] builds an idle macroflow.  [deliver_grant] is
    invoked (from an engine event) once per grant with the bytes reserved
    for it; [on_state_change] after any feedback that may alter rate
    estimates.  Grants unclaimed after [grant_reclaim_after] (default
    500 ms) are returned to the window, reporting each to [on_reclaim]
    with the granted flow and reserved bytes (hoard detection).
    [on_tick] runs on every maintenance tick (the CM's per-flow staleness
    audit).  [watchdog] enables feedback-staleness window aging; absent ⇒
    previous behaviour.  With [idle_restart], a request arriving after
    that much transmission silence resets the controller to its initial
    window (slow-start restart); by default congestion state persists —
    that persistence is the Fig. 7 benefit. *)

val id : t -> int
(** Macroflow identifier. *)

val mtu : t -> int
(** Payload bytes per grant. *)

val cwnd : t -> int
(** Controller's current window (payload bytes). *)

val ssthresh : t -> int
(** Controller's slow-start threshold. *)

val outstanding : t -> int
(** Payload bytes in flight (sent, no feedback yet). *)

val granted : t -> int
(** Payload bytes granted but not yet transmitted. *)

val granted_ledger_skew : t -> int
(** {!granted} minus the sum of live grant reservations, re-derived by
    walking the grant age chain.  Always 0 unless a grant path lost or
    double-counted bytes — the audit invariant that catches ledger leaks
    on alive macroflows. *)

val canary_grant_leak : bool ref
(** Mutation canary (default [false]; see [cm_expt soak --canary]): when
    set, {!release_flow_grants} deliberately leaks the released
    reservation out of the ledger so the soak oracles can prove they
    catch a real accounting bug.  Never set outside canary runs. *)

val members : t -> int
(** Number of flows attached. *)

val add_member : t -> Cm_types.flow_id -> member
(** Record a flow joining and return its member handle.  The handle's
    scheduler slot is macroflow-local and recycled after {!detach_flow},
    which keeps the scheduler's per-flow state dense however many flows
    the CM serves in total. *)

val detach_flow : t -> member -> unit
(** Remove a flow: discard its pending requests, recycle its scheduler
    slot, and decrement membership.  The handle must not be used
    afterwards. *)

val request : t -> member -> unit
(** One implicit request to send up to an MTU on behalf of the flow
    ([cm_request]). *)

val notify : t -> ?m:member -> nbytes:int -> unit -> unit
(** A packet of [nbytes] payload bytes of this macroflow was handed to the
    network ([cm_notify]); [nbytes = 0] returns an unused grant.  With
    [m], the consumed grant is the flow's own oldest one (O(1): the
    member holds its chain head); a flow with no outstanding grant
    consumes nothing and is charged directly.  Without [m] the oldest
    grant overall is consumed (legacy behaviour). *)

val release_flow_grants : t -> member -> int
(** Return all of the flow's unconsumed grants to the window immediately
    (close/crash path — not waiting for the reclaim timer) and wake the
    grant machinery.  Returns the bytes released. *)

val discharge : t -> int -> unit
(** Remove up to [nbytes] from [outstanding] without running controller
    feedback: the bytes' fate can never be learned (their flow closed or
    its process died). *)

val transfer_outstanding : src:t -> dst:t -> int -> unit
(** Move up to [nbytes] of outstanding charge from [src] to [dst]
    (clamped to [src]'s outstanding).  Used when a flow with unresolved
    bytes is moved between macroflows, e.g. on quarantine. *)

val update :
  t -> nsent:int -> nrecd:int -> loss:Cm_types.loss_mode -> rtt:Time.span option -> unit
(** Client feedback ([cm_update]): of [nsent] payload bytes whose fate is
    now known, [nrecd] arrived; [loss] classifies any congestion; [rtt] is
    an optional new RTT sample. *)

val srtt : t -> Time.span option
(** Shared smoothed RTT (combining samples from all member flows). *)

val rttvar : t -> Time.span option
(** Shared RTT mean deviation. *)

val loss_rate : t -> float
(** Smoothed loss fraction. *)

val rate_bps : t -> float
(** Macroflow sustainable rate estimate: [cwnd / srtt], in payload
    bits per second (0 until an RTT sample exists). *)

val status : t -> Cm_types.status
(** Snapshot for [cm_query] (macroflow-level; the CM divides rate among
    member flows). *)

val set_weight : t -> member -> float -> unit
(** Set a member flow's scheduler weight. *)

val pending_requests : t -> int
(** Requests queued awaiting window space. *)

val grants_issued : t -> int
(** Cumulative grants delivered. *)

val grants_reclaimed : t -> int
(** Cumulative grants reclaimed by the maintenance timer. *)

val grants_released : t -> int
(** Cumulative grants released early by {!release_flow_grants}. *)

val conservation_breaches : t -> int
(** Times a grant was issued while [outstanding + granted] exceeded
    [cwnd + one MTU] — checked at the moment credit is extended (the only
    moment it is meaningful: after a loss halves cwnd, outstanding may
    legitimately exceed it while the pipe drains).  Always 0 unless the
    granting logic regresses; the invariant auditor checks it. *)

val watchdog_fires : t -> int
(** Cumulative feedback-watchdog aging steps. *)

val last_feedback : t -> Time.t
(** Time of the most recent [cm_update] (creation time if none yet). *)

val alive : t -> bool
(** Whether the macroflow is live (maintenance timer running); [false]
    after {!shutdown}. *)

val controller_name : t -> string
(** Name of the active controller (diagnostics). *)

val reset_congestion_state : t -> unit
(** Return the controller to its initial state (used when constructing a
    fresh macroflow for a split is undesirable). *)

val shutdown : t -> unit
(** Stop the maintenance timer (call when the macroflow is discarded). *)

val pending_for_flow : t -> member -> int
(** Requests this flow currently has queued in the scheduler. *)

val set_trace : t -> Telemetry.Trace.t -> unit
(** Route this macroflow's structured trace events (congestion reactions
    with their loss-mode attribution, slow-start/congestion-avoidance
    transitions) to [tr].  Macroflows start with {!Telemetry.Trace.nil},
    so the feedback path pays one branch per update until a live sink is
    wired (normally by [Cm.attach_telemetry]). *)
