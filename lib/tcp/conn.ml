open Cm_util
open Eventsim
open Netsim

let log = Eventsim.Sim_log.src "tcp"

type driver = Native | Cm_driven of Cm.t

type config = {
  mss : int;
  rwnd : int;
  delayed_acks : bool;
  delack_timeout : Time.span;
  initial_window_pkts : int;
  nagle : bool;
  timestamps : bool;
  ecn : bool;
  sack : bool;
  min_rto : Time.span;
  msl : Time.span;
}

let default_config =
  {
    mss = 1448;
    rwnd = 1 lsl 20;
    delayed_acks = true;
    delack_timeout = Time.ms 200;
    initial_window_pkts = 2;
    nagle = false;
    timestamps = true;
    ecn = false;
    sack = true;
    min_rto = Time.ms 200;
    msl = Time.sec 1.;
  }

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Last_ack
  | Closing
  | Time_wait

type stats = {
  bytes_sent : int;
  bytes_acked : int;
  bytes_delivered : int;
  segments_out : int;
  acks_out : int;
  retransmits : int;
  fast_retransmits : int;
  timeouts : int;
  rtt_samples : int;
}

(* Native Reno/NewReno controller state. *)
type cc_native = {
  mutable cwnd : int;
  mutable nat_ssthresh : int;
  mutable in_recovery : bool;
  mutable nat_recover : int;
}

(* CM-driven controller state (paper §3.2). *)
type cc_cm = {
  cm : Cm.t;
  mutable fid : Cm.Cm_types.flow_id option;
  mutable requests_outstanding : int;
  mutable rexmit_pending : bool;
  mutable unresolved_tx : int; (* transmitted payload bytes not yet reported via cm_update *)
  mutable prereported : int;
      (* bytes already reported to the CM from duplicate-ack inference that a
         later cumulative ack will cover again; prevents double counting *)
  mutable cm_recover : int; (* end of the window in which we last reported Transient *)
}

type cc = Cc_native of cc_native | Cc_cm of cc_cm

type t = {
  host : Host.t;
  engine : Engine.t;
  config : config;
  mutable state : state;
  local : Addr.endpoint;
  remote : Addr.endpoint;
  out_flow : Addr.flow; (* 5-tuple of packets we transmit *)
  in_flow : Addr.flow; (* 5-tuple of packets we receive *)
  (* --- send side ----------------------------------------------------- *)
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable snd_limit : int; (* sequence number just past queued app data *)
  mutable snd_wnd : int; (* peer's advertised window *)
  mutable fin_queued : bool;
  mutable dupacks : int;
  mutable highest_sent : int; (* for unique-bytes accounting *)
  mutable sacked : (int * int) list; (* scoreboard: disjoint sorted [start,stop) above snd_una *)
  mutable hole_next : int; (* RFC 3517-style NextSeg pointer: holes below this were already retransmitted this recovery *)
  cc : cc;
  rto_est : Rto.t;
  mutable rto_timer : Timer.t;
  (* --- receive side --------------------------------------------------- *)
  mutable rcv_nxt : int;
  mutable ooo : (int * int) list; (* disjoint [start,stop) above rcv_nxt, sorted *)
  mutable fin_rcvd : int option; (* sequence number of the peer's FIN *)
  (* flow control: with a finite consumer, in-order data sits in the
     receive buffer until the app drains it, shrinking the advertised
     window *)
  mutable rcv_buffered : int;
  mutable consume_rate : float option; (* bytes/s; None = infinite *)
  mutable consume_timer : Timer.t;
  mutable last_advertised : int;
  (* persist: probe a zero window so a lost window update cannot deadlock *)
  mutable persist_timer : Timer.t;
  mutable persist_backoff : int;
  mutable segs_since_ack : int;
  mutable quickack : int;
      (* Linux-style quickack: acknowledge the first segments of a
         connection immediately so the sender's slow start is never held
         hostage by the delayed-ack timer *)
  mutable delack_timer : Timer.t;
  mutable pending_ece : bool; (* receiver: echo congestion on next ack *)
  mutable ts_to_echo : Time.t; (* TSval to echo (of segment that caused next ack) *)
  mutable ts_echo_armed : bool;
  (* --- sender ECN / Karn ---------------------------------------------- *)
  mutable ecn_reacted_at : int; (* ignore further ECE until snd_una passes this *)
  mutable karn_timed_seq : int; (* Karn: end seq of the timed segment; -1 if none *)
  mutable karn_sent_at : Time.t;
  (* --- lifecycle ------------------------------------------------------ *)
  mutable time_wait_timer : Timer.t;
  mutable recv_cb : int -> unit;
  mutable established_cb : unit -> unit;
  mutable closed_cb : unit -> unit;
  mutable established_fired : bool;
  mutable closed_fired : bool;
  (* --- stats ----------------------------------------------------------- *)
  mutable s_bytes_sent : int;
  mutable s_bytes_delivered : int;
  mutable s_segments_out : int;
  mutable s_acks_out : int;
  mutable s_retransmits : int;
  mutable s_fast_retransmits : int;
  mutable s_timeouts : int;
  mutable s_rtt_samples : int;
  (* telemetry: CM-driven connections inherit their CM's trace sink so
     loss-classification events land on the same timeline as the
     controller's reactions; nil (one branch per event) otherwise *)
  trace : Telemetry.Trace.t;
}

type listener = { l_host : Host.t; l_port : int }

(* Sequence-number layout: ISS = 0; the SYN occupies sequence 0; app data
   occupies [1, snd_limit); an eventual FIN occupies snd_limit. *)
let iss = 0
let data_start = iss + 1

let cpu_run t cost fn =
  if cost = 0 then fn () else Cpu.run (Host.cpu t.host) ~cost fn

(* ------------------------------------------------------------------ *)
(* Segment construction and transmission *)

let fin_seq t = t.snd_limit
let fin_sent t = t.snd_nxt > t.snd_limit
let advertised_wnd t = Stdlib.max 0 (t.config.rwnd - t.rcv_buffered)

let sack_blocks t =
  if not t.config.sack then []
  else begin
    (* up to three out-of-order ranges the receiver is holding *)
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | b :: rest -> b :: take (n - 1) rest
    in
    take 3 t.ooo
  end

let build_segment t ~seq ~len ~syn ~fin ~with_ack =
  {
    Segment.seq;
    len;
    syn;
    fin;
    ack = with_ack;
    ack_seq = t.rcv_nxt;
    wnd = advertised_wnd t;
    ts_val = (if t.config.timestamps then Engine.now t.engine else 0);
    ts_ecr = (if t.config.timestamps then t.ts_to_echo else 0);
    ece = t.pending_ece;
    sacks = (if with_ack then sack_blocks t else []);
  }

let transmit t seg =
  let payload = seg.Segment.len in
  let pkt =
    Packet.make ~now:(Engine.now t.engine) ~flow:t.out_flow ~payload_bytes:payload
      ~ecn_capable:(t.config.ecn && payload > 0)
      (Segment.Tcp_seg seg)
  in
  if seg.Segment.ece then t.pending_ece <- false;
  if seg.Segment.ack then begin
    t.segs_since_ack <- 0;
    t.ts_echo_armed <- false;
    Timer.stop t.delack_timer
  end;
  let costs = Host.costs t.host in
  let cost = costs.Costs.tcp_proc + costs.Costs.ip_proc in
  cpu_run t cost (fun () -> Host.ip_output t.host pkt)

let send_pure_ack t =
  t.s_acks_out <- t.s_acks_out + 1;
  t.last_advertised <- advertised_wnd t;
  transmit t (build_segment t ~seq:t.snd_nxt ~len:0 ~syn:false ~fin:false ~with_ack:true)

(* ------------------------------------------------------------------ *)
(* RTO timer management *)

let arm_rto t =
  Timer.start t.rto_timer (Stdlib.max t.config.min_rto (Rto.rto t.rto_est))

let rto_restart_or_stop t =
  if t.snd_una < t.snd_nxt then arm_rto t else Timer.stop t.rto_timer

(* ------------------------------------------------------------------ *)
(* Karn timing (only when timestamps are disabled) *)

let karn_maybe_time t ~seq ~len ~retransmission =
  if (not t.config.timestamps) && (not retransmission) && len > 0 && t.karn_timed_seq < 0
  then begin
    t.karn_timed_seq <- seq + len;
    t.karn_sent_at <- Engine.now t.engine
  end

let karn_invalidate t = t.karn_timed_seq <- -1

(* ------------------------------------------------------------------ *)
(* Data segment emission *)

let emit_data t ~seq ~len ~fin ~retransmission =
  if retransmission then begin
    t.s_retransmits <- t.s_retransmits + 1;
    karn_invalidate t
  end
  else karn_maybe_time t ~seq ~len ~retransmission;
  t.s_segments_out <- t.s_segments_out + 1;
  if seq + len > t.highest_sent then begin
    t.s_bytes_sent <- t.s_bytes_sent + (seq + len - Stdlib.max t.highest_sent seq);
    t.highest_sent <- seq + len
  end;
  transmit t (build_segment t ~seq ~len ~syn:false ~fin ~with_ack:true);
  let seg_end = seq + len + if fin then 1 else 0 in
  if seg_end > t.snd_nxt then t.snd_nxt <- seg_end;
  if not (Timer.is_running t.rto_timer) then arm_rto t

(* The CM driver mirrors every transmission into its unresolved counter —
   the bytes it will later explain to the CM via cm_update. *)
let note_tx cc len = if len > 0 then cc.unresolved_tx <- cc.unresolved_tx + len

(* ------------------------------------------------------------------ *)
(* SACK scoreboard (RFC 2018): which bytes above snd_una the receiver
   already holds, so recovery retransmits only the holes. *)

let scoreboard_merge t blocks =
  if t.config.sack && blocks <> [] then begin
    let all = List.rev_append blocks t.sacked in
    let sorted = List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) all in
    let coalesced =
      List.fold_left
        (fun acc (s, e) ->
          match acc with
          | (ps, pe) :: rest when s <= pe -> (ps, Stdlib.max pe e) :: rest
          | _ -> (s, e) :: acc)
        [] sorted
    in
    t.sacked <- List.rev coalesced
  end

let scoreboard_prune t =
  t.sacked <-
    List.filter_map
      (fun (s, e) ->
        if e <= t.snd_una then None else Some (Stdlib.max s t.snd_una, e))
      t.sacked

let scoreboard_clear t = t.sacked <- []

(* first unsacked hole not yet retransmitted this recovery (the NextSeg
   pointer avoids re-sending the same hole on every duplicate ack),
   clipped to [mss] and to the next sacked block *)
let next_hole t =
  let from = Stdlib.max t.snd_una t.hole_next in
  let rec walk seq = function
    | [] ->
        if seq < t.snd_limit then Some (seq, Stdlib.min t.config.mss (t.snd_limit - seq))
        else None
    | (s, e) :: rest ->
        if seq < s then Some (seq, Stdlib.min t.config.mss (Stdlib.min (s - seq) (t.snd_limit - seq)))
        else walk (Stdlib.max seq e) rest
  in
  if from >= t.snd_limit then None else walk from t.sacked

(* only bytes below the highest SACKed byte are presumed lost; with an
   empty scoreboard (SACK off) just the first unacked segment is *)
let loss_edge t =
  List.fold_left (fun acc (_, e) -> Stdlib.max acc e) (t.snd_una + t.config.mss) t.sacked

(* retransmit the next presumed-lost hole and advance the pointer *)
let retransmit_hole t =
  let edge = loss_edge t in
  match next_hole t with
  | Some (seq, len) when seq < edge && seq < t.snd_nxt ->
      let len = Stdlib.min len (edge - seq) in
      t.hole_next <- seq + len;
      emit_data t ~seq ~len ~fin:false ~retransmission:true;
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Output engines *)

(* data may be (re)transmitted in any synchronized state: a timeout can
   roll snd_nxt back below queued data even after our FIN went out *)
let data_ready t =
  match t.state with
  | Established | Close_wait | Fin_wait_1 | Closing | Last_ack -> true
  | Closed | Listen | Syn_sent | Syn_received | Fin_wait_2 | Time_wait -> false

let can_carry_fin t =
  t.fin_queued && (not (fin_sent t)) && t.snd_nxt = t.snd_limit
  && (t.state = Established || t.state = Close_wait || t.state = Fin_wait_1 || t.state = Closing
    || t.state = Last_ack)

let enter_fin_states t =
  (* the FIN is (about to be) transmitted: move the state machine *)
  match t.state with
  | Established -> t.state <- Fin_wait_1
  | Close_wait -> t.state <- Last_ack
  | _ -> ()

let native_output t cc =
  if data_ready t || t.fin_queued then begin
    let continue = ref true in
    while !continue do
      continue := false;
      let wnd = Stdlib.min cc.cwnd t.snd_wnd in
      let in_flight = t.snd_nxt - t.snd_una in
      if t.snd_nxt < t.snd_limit && in_flight < wnd && data_ready t then begin
        let len = Stdlib.min t.config.mss (t.snd_limit - t.snd_nxt) in
        let nagle_hold =
          t.config.nagle && len < t.config.mss && in_flight > 0
          && not (t.fin_queued && t.snd_nxt + len = t.snd_limit)
        in
        if not nagle_hold then begin
          let fin = t.fin_queued && t.snd_nxt + len = t.snd_limit in
          if fin then enter_fin_states t;
          emit_data t ~seq:t.snd_nxt ~len ~fin ~retransmission:false;
          continue := true
        end
      end
      else if can_carry_fin t && in_flight < wnd + t.config.mss then begin
        enter_fin_states t;
        emit_data t ~seq:t.snd_nxt ~len:0 ~fin:true ~retransmission:false
      end
    done
  end

(* Issue enough cm_requests to cover the work we have; each grant callback
   transmits at most one MTU (paper §2.1.2). *)
let cm_sync_requests t cc =
  match cc.fid with
  | None -> ()
  | Some fid ->
      let new_data = Stdlib.max 0 (t.snd_limit - Stdlib.max t.snd_nxt t.snd_una) in
      let in_flight = t.snd_nxt - t.snd_una in
      let window_limited = Stdlib.max 0 (Stdlib.min new_data (t.snd_wnd - in_flight)) in
      let want =
        (if cc.rexmit_pending then 1 else 0)
        + ((window_limited + t.config.mss - 1) / t.config.mss)
        + (if can_carry_fin t && data_ready t then 1 else 0)
      in
      let want = Stdlib.min want 256 in
      let cm_op = (Host.costs t.host).Costs.cm_op in
      while cc.requests_outstanding < want do
        cc.requests_outstanding <- cc.requests_outstanding + 1;
        Cpu.charge (Host.cpu t.host) cm_op;
        Cm.request cc.cm fid
      done

let cm_grant_callback t cc _fid =
  Cpu.charge (Host.cpu t.host) (Host.costs t.host).Costs.cm_op;
  cc.requests_outstanding <- Stdlib.max 0 (cc.requests_outstanding - 1);
  let decline () =
    match cc.fid with Some fid -> Cm.notify cc.cm fid ~nbytes:0 | None -> ()
  in
  if cc.rexmit_pending && t.snd_una < t.snd_limit then begin
    cc.rexmit_pending <- false;
    match next_hole t with
    | Some (seq, len) when len > 0 && seq < t.snd_nxt ->
        t.hole_next <- seq + len;
        note_tx cc len;
        emit_data t ~seq ~len ~fin:false ~retransmission:true
    | _ -> decline ()
  end
  else if
    t.snd_nxt < t.snd_limit && t.snd_nxt - t.snd_una < t.snd_wnd && data_ready t
  then begin
    let len = Stdlib.min t.config.mss (t.snd_limit - t.snd_nxt) in
    note_tx cc len;
    let fin = t.fin_queued && t.snd_nxt + len = t.snd_limit in
    if fin then enter_fin_states t;
    emit_data t ~seq:t.snd_nxt ~len ~fin ~retransmission:false;
    cm_sync_requests t cc
  end
  else if can_carry_fin t then begin
    enter_fin_states t;
    emit_data t ~seq:t.snd_nxt ~len:0 ~fin:true ~retransmission:false
  end
  else begin
    cc.rexmit_pending <- false;
    decline ()
  end

let window_stalled t =
  data_ready t && t.snd_nxt < t.snd_limit && t.snd_una = t.snd_nxt
  && t.snd_wnd < t.config.mss

let arm_persist t =
  if not (Timer.is_running t.persist_timer) then begin
    let base = Stdlib.max t.config.min_rto (Rto.rto t.rto_est) in
    let backoff = Stdlib.min t.persist_backoff 6 in
    Timer.start t.persist_timer (Stdlib.min (Time.sec 60.) (base lsl backoff))
  end

let tcp_output t =
  (match t.cc with
  | Cc_native cc -> native_output t cc
  | Cc_cm cc -> cm_sync_requests t cc);
  if window_stalled t then arm_persist t

(* ------------------------------------------------------------------ *)
(* Sender-side congestion events *)

let flight_size t = Stdlib.max 0 (t.snd_nxt - t.snd_una)

let native_on_new_ack t cc ~acked =
  if cc.in_recovery then begin
    if t.snd_una >= cc.nat_recover then begin
      (* full acknowledgment: leave recovery, deflate to ssthresh *)
      cc.in_recovery <- false;
      cc.cwnd <- cc.nat_ssthresh;
      t.dupacks <- 0
    end
    else begin
      (* partial ack during recovery: retransmit the next hole the
         scoreboard exposes (plain NewReno when SACK is off), with
         partial window deflation *)
      t.hole_next <- Stdlib.max t.hole_next t.snd_una;
      ignore (retransmit_hole t);
      cc.cwnd <- Stdlib.max t.config.mss (cc.cwnd - acked + t.config.mss)
    end
  end
  else begin
    t.dupacks <- 0;
    (* The paper's TCP/Linux baseline: ACK counting — each ACK is assumed
       to cover a full MSS. *)
    if cc.cwnd < cc.nat_ssthresh then cc.cwnd <- cc.cwnd + t.config.mss
    else cc.cwnd <- cc.cwnd + Stdlib.max 1 (t.config.mss * t.config.mss / cc.cwnd)
  end

let native_on_dupack t cc =
  t.dupacks <- t.dupacks + 1;
  if (not cc.in_recovery) && t.dupacks = 3 then begin
    cc.nat_ssthresh <- Stdlib.max (flight_size t / 2) (2 * t.config.mss);
    cc.nat_recover <- t.snd_nxt;
    cc.in_recovery <- true;
    Logs.debug ~src:log (fun m ->
        m "%a: fast retransmit at snd_una=%d" Addr.pp_flow t.out_flow t.snd_una);
    t.s_fast_retransmits <- t.s_fast_retransmits + 1;
    t.hole_next <- t.snd_una;
    if not (retransmit_hole t) then
      if t.fin_queued && fin_sent t then
        emit_data t ~seq:t.snd_una ~len:0 ~fin:true ~retransmission:true;
    cc.cwnd <- cc.nat_ssthresh + (3 * t.config.mss)
  end
  else if cc.in_recovery then begin
    cc.cwnd <- cc.cwnd + t.config.mss;
    (* with SACK information, keep repairing holes while dupacks arrive
       (one per dupack) *)
    if t.config.sack && t.sacked <> [] then ignore (retransmit_hole t);
    native_output t cc
  end

let cm_report (t : t) cc ~nsent ~nrecd ~loss ~rtt =
  match cc.fid with
  | None -> ()
  | Some fid ->
      let nsent = Stdlib.min nsent cc.unresolved_tx in
      let nrecd = Stdlib.min nrecd nsent in
      cc.unresolved_tx <- cc.unresolved_tx - nsent;
      if nsent > 0 || loss <> Cm.Cm_types.No_loss || rtt <> None then begin
        Cpu.charge (Host.cpu t.host) (Host.costs t.host).Costs.cm_op;
        Cm.update cc.cm fid ~nsent ~nrecd ~loss ?rtt ()
      end

let cm_on_new_ack t cc ~acked ~rtt =
  (* bytes already explained to the CM via dupack inference must not be
     reported twice *)
  let offset = Stdlib.min acked cc.prereported in
  cc.prereported <- cc.prereported - offset;
  cm_report t cc ~nsent:(acked - offset) ~nrecd:(acked - offset) ~loss:Cm.Cm_types.No_loss ~rtt;
  if t.snd_una >= cc.cm_recover then t.dupacks <- 0
  else if t.snd_una < t.snd_nxt then begin
    (* NewReno-style partial ack during recovery: the next hole is also
       lost; queue its retransmission and ask the CM for a grant *)
    cc.rexmit_pending <- true;
    cm_sync_requests t cc
  end

let cm_on_dupack t cc =
  t.dupacks <- t.dupacks + 1;
  if t.dupacks = 3 && t.snd_una >= cc.cm_recover then begin
    (* one segment presumed lost to congestion: tell the CM, queue the
       retransmission, and ask for a grant (paper §3.2) *)
    cc.cm_recover <- t.snd_nxt;
    t.hole_next <- t.snd_una;
    t.s_fast_retransmits <- t.s_fast_retransmits + 1;
    cc.prereported <- cc.prereported + t.config.mss;
    if Telemetry.Trace.on t.trace then
      Telemetry.Trace.instant t.trace ~cat:"tcp" "tcp.fast_rexmit"
        [
          ("flow", Telemetry.Trace.Str (Format.asprintf "%a" Addr.pp_flow t.out_flow));
          ("snd_una", Telemetry.Trace.Int t.snd_una);
          ("classified", Telemetry.Trace.Str "transient");
        ];
    cm_report t cc ~nsent:t.config.mss ~nrecd:0 ~loss:Cm.Cm_types.Transient ~rtt:None;
    cc.rexmit_pending <- true;
    cm_sync_requests t cc
  end
  else if t.dupacks > 3 then begin
    (* a segment left the network and reached the receiver *)
    cc.prereported <- cc.prereported + t.config.mss;
    cm_report t cc ~nsent:t.config.mss ~nrecd:t.config.mss ~loss:Cm.Cm_types.No_loss ~rtt:None
  end

let on_ecn_echo t =
  if t.snd_una >= t.ecn_reacted_at then begin
    t.ecn_reacted_at <- t.snd_nxt;
    if Telemetry.Trace.on t.trace then
      Telemetry.Trace.instant t.trace ~cat:"tcp" "tcp.ecn_echo"
        [
          ("flow", Telemetry.Trace.Str (Format.asprintf "%a" Addr.pp_flow t.out_flow));
          ("snd_una", Telemetry.Trace.Int t.snd_una);
          ("classified", Telemetry.Trace.Str "ecn");
        ];
    match t.cc with
    | Cc_native cc ->
        cc.nat_ssthresh <- Stdlib.max (flight_size t / 2) (2 * t.config.mss);
        cc.cwnd <- cc.nat_ssthresh
    | Cc_cm cc -> cm_report t cc ~nsent:0 ~nrecd:0 ~loss:Cm.Cm_types.Ecn_echo ~rtt:None
  end

(* ------------------------------------------------------------------ *)
(* Retransmission timeout *)

let close_cm_flow t =
  match t.cc with
  | Cc_cm cc -> (
      match cc.fid with
      | Some fid ->
          cc.fid <- None;
          Cm.close_flow cc.cm fid
      | None -> ())
  | Cc_native _ -> ()

let become_closed t =
  if t.state <> Closed then begin
    t.state <- Closed;
    Timer.stop t.rto_timer;
    Timer.stop t.delack_timer;
    Timer.stop t.time_wait_timer;
    Timer.stop t.persist_timer;
    Timer.stop t.consume_timer;
    Host.disconnect_demux t.host t.in_flow;
    close_cm_flow t;
    if not t.closed_fired then begin
      t.closed_fired <- true;
      t.closed_cb ()
    end
  end

let enter_time_wait t =
  if t.state <> Time_wait then begin
    t.state <- Time_wait;
    Timer.stop t.rto_timer;
    Timer.start t.time_wait_timer (2 * t.config.msl)
  end

let on_persist t () =
  if t.state <> Closed && window_stalled t then begin
    t.persist_backoff <- t.persist_backoff + 1;
    (* window probe: one byte of real data past the advertised window *)
    emit_data t ~seq:t.snd_nxt ~len:1 ~fin:false ~retransmission:false;
    (match t.cc with Cc_cm cc -> note_tx cc 1 | Cc_native _ -> ());
    arm_persist t
  end
  else t.persist_backoff <- 0

let on_rto t () =
  if t.state <> Closed && t.state <> Time_wait && t.snd_una < t.snd_nxt then begin
    Logs.debug ~src:log (fun m ->
        m "%a: retransmission timeout (snd_una=%d snd_nxt=%d)" Addr.pp_flow t.out_flow t.snd_una
          t.snd_nxt);
    t.s_timeouts <- t.s_timeouts + 1;
    if Telemetry.Trace.on t.trace then
      Telemetry.Trace.instant t.trace ~cat:"tcp" "tcp.rto"
        [
          ("flow", Telemetry.Trace.Str (Format.asprintf "%a" Addr.pp_flow t.out_flow));
          ("snd_una", Telemetry.Trace.Int t.snd_una);
          ("snd_nxt", Telemetry.Trace.Int t.snd_nxt);
          ("classified", Telemetry.Trace.Str "persistent");
        ];
    Rto.backoff t.rto_est;
    karn_invalidate t;
    scoreboard_clear t;
    t.hole_next <- t.snd_una;
    t.dupacks <- 0;
    (match t.cc with
    | Cc_native cc ->
        cc.nat_ssthresh <- Stdlib.max (flight_size t / 2) (2 * t.config.mss);
        cc.cwnd <- t.config.mss;
        cc.in_recovery <- false
    | Cc_cm cc ->
        (* persistent congestion: everything outstanding is presumed lost *)
        cm_report t cc ~nsent:cc.unresolved_tx ~nrecd:0 ~loss:Cm.Cm_types.Persistent ~rtt:None;
        cc.prereported <- 0;
        cc.rexmit_pending <- false;
        cc.cm_recover <- t.snd_nxt);
    (* go-back-N from the last cumulative ack *)
    t.snd_nxt <- t.snd_una;
    (match t.state with
    | Syn_sent ->
        t.snd_nxt <- iss;
        t.s_segments_out <- t.s_segments_out + 1;
        transmit t (build_segment t ~seq:iss ~len:0 ~syn:true ~fin:false ~with_ack:false)
    | Syn_received ->
        t.snd_nxt <- iss;
        t.s_segments_out <- t.s_segments_out + 1;
        transmit t (build_segment t ~seq:iss ~len:0 ~syn:true ~fin:false ~with_ack:true)
    | _ -> (
        match t.cc with
        | Cc_native _ ->
            (* retransmit one segment immediately; the rest follows acks *)
            let len = Stdlib.min t.config.mss (t.snd_limit - t.snd_nxt) in
            if len > 0 then emit_data t ~seq:t.snd_nxt ~len ~fin:false ~retransmission:true
            else if t.fin_queued then
              emit_data t ~seq:t.snd_nxt ~len:0 ~fin:true ~retransmission:true
        | Cc_cm cc ->
            cc.rexmit_pending <- true;
            cm_sync_requests t cc));
    (match t.state with
    | Syn_sent | Syn_received -> t.snd_nxt <- iss + 1
    | _ -> ());
    arm_rto t
  end

(* ------------------------------------------------------------------ *)
(* Receiver side: reassembly and acknowledgment policy *)

let deliver t n =
  if n > 0 then begin
    match t.consume_rate with
    | None ->
        t.s_bytes_delivered <- t.s_bytes_delivered + n;
        t.recv_cb n
    | Some _ -> t.rcv_buffered <- t.rcv_buffered + n
  end

(* a finite consumer drains the receive buffer on a 10 ms tick and sends a
   window update when the window reopens meaningfully (from zero, or by at
   least one MSS since last advertised) *)
let consume_tick t =
  match t.consume_rate with
  | None -> ()
  | Some rate ->
      let drained = Stdlib.min t.rcv_buffered (int_of_float (rate /. 100.)) in
      if drained > 0 then begin
        t.rcv_buffered <- t.rcv_buffered - drained;
        t.s_bytes_delivered <- t.s_bytes_delivered + drained;
        t.recv_cb drained;
        let now_wnd = advertised_wnd t in
        if
          (t.last_advertised = 0 && now_wnd > 0)
          || now_wnd - t.last_advertised >= t.config.mss
        then send_pure_ack t
      end

let ooo_add t start stop =
  (* insert and coalesce; the list is short in practice *)
  let segs = (start, stop) :: t.ooo in
  let sorted = List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) segs in
  let coalesced =
    List.fold_left
      (fun acc (s, e) ->
        match acc with
        | (ps, pe) :: rest when s <= pe -> (ps, Stdlib.max pe e) :: rest
        | _ -> (s, e) :: acc)
      [] sorted
  in
  t.ooo <- List.rev coalesced

(* pull contiguous data out of the ooo store after rcv_nxt advanced *)
let ooo_drain t =
  let rec walk () =
    match t.ooo with
    | (s, e) :: rest when s <= t.rcv_nxt ->
        if e > t.rcv_nxt then begin
          deliver t (e - t.rcv_nxt);
          t.rcv_nxt <- e
        end;
        t.ooo <- rest;
        walk ()
    | _ -> ()
  in
  walk ()

let fin_deliverable t =
  match t.fin_rcvd with Some seq when seq = t.rcv_nxt -> true | _ -> false

let on_fin_delivered t =
  t.rcv_nxt <- t.rcv_nxt + 1;
  match t.state with
  | Established -> t.state <- Close_wait
  | Fin_wait_1 ->
      (* our FIN not yet acked: simultaneous close *)
      t.state <- Closing
  | Fin_wait_2 -> enter_time_wait t
  | _ -> ()

let ack_policy t ~forced =
  if forced || (not t.config.delayed_acks) || t.quickack > 0 then begin
    if t.quickack > 0 then t.quickack <- t.quickack - 1;
    send_pure_ack t
  end
  else begin
    t.segs_since_ack <- t.segs_since_ack + 1;
    if t.segs_since_ack >= 2 then send_pure_ack t
    else if not (Timer.is_running t.delack_timer) then
      Timer.start t.delack_timer t.config.delack_timeout
  end

(* ------------------------------------------------------------------ *)
(* Main segment processing *)

let rtt_sample t seg =
  if t.config.timestamps then begin
    if seg.Segment.ts_ecr > 0 then begin
      let sample = Time.diff (Engine.now t.engine) seg.Segment.ts_ecr in
      if sample > 0 then Some sample else None
    end
    else None
  end
  else if t.karn_timed_seq >= 0 && seg.Segment.ack_seq >= t.karn_timed_seq then begin
    let sample = Time.diff (Engine.now t.engine) t.karn_sent_at in
    t.karn_timed_seq <- -1;
    if sample > 0 then Some sample else None
  end
  else None

let observe_rtt t sample =
  match sample with
  | Some s ->
      Rto.observe t.rto_est s;
      t.s_rtt_samples <- t.s_rtt_samples + 1
  | None -> ()

let fire_established t =
  if not t.established_fired then begin
    t.established_fired <- true;
    t.established_cb ()
  end

let handle_ack t seg =
  let ack = seg.Segment.ack_seq in
  t.snd_wnd <- seg.Segment.wnd;
  scoreboard_merge t seg.Segment.sacks;
  (* After a go-back-N rollback the receiver may acknowledge data above
     our snd_nxt (it had received it before the timeout); such an ack is
     valid and pulls snd_nxt forward. *)
  if ack > t.snd_nxt && ack <= t.snd_limit + 1 then t.snd_nxt <- ack;
  if ack > t.snd_una && ack <= t.snd_nxt then begin
    let prev_una = t.snd_una in
    t.snd_una <- ack;
    t.hole_next <- Stdlib.max t.hole_next t.snd_una;
    scoreboard_prune t;
    Rto.reset_backoff t.rto_est;
    (* count only data bytes (exclude SYN and FIN sequence units) *)
    let lo = Stdlib.max prev_una data_start in
    let hi = Stdlib.min ack (t.snd_limit + 1) in
    let acked_data = Stdlib.max 0 (Stdlib.min hi (t.snd_limit) - Stdlib.min lo t.snd_limit) in
    let rtt = rtt_sample t seg in
    observe_rtt t rtt;
    if t.snd_wnd >= t.config.mss then begin
      Timer.stop t.persist_timer;
      t.persist_backoff <- 0
    end;
    (match t.cc with
    | Cc_native cc -> native_on_new_ack t cc ~acked:acked_data
    | Cc_cm cc -> cm_on_new_ack t cc ~acked:acked_data ~rtt);
    if seg.Segment.ece && t.config.ecn then on_ecn_echo t;
    (* state transitions driven by our FIN being acknowledged *)
    if fin_sent t && ack > fin_seq t then begin
      match t.state with
      | Fin_wait_1 -> t.state <- Fin_wait_2
      | Closing -> enter_time_wait t
      | Last_ack -> become_closed t
      | _ -> ()
    end;
    rto_restart_or_stop t;
    tcp_output t
  end
  else if
    ack = t.snd_una && t.snd_una = t.snd_nxt && seg.Segment.len = 0
    && (not seg.Segment.syn) && not seg.Segment.fin
  then begin
    (* pure window update while nothing is in flight: resume sending *)
    if t.snd_wnd >= t.config.mss then begin
      Timer.stop t.persist_timer;
      t.persist_backoff <- 0;
      tcp_output t
    end
  end
  else if
    ack = t.snd_una && t.snd_una < t.snd_nxt && seg.Segment.len = 0
    && (not seg.Segment.syn) && not seg.Segment.fin
  then begin
    (match t.cc with
    | Cc_native cc -> native_on_dupack t cc
    | Cc_cm cc -> cm_on_dupack t cc);
    if seg.Segment.ece && t.config.ecn then on_ecn_echo t
  end
  else if seg.Segment.ece && t.config.ecn then on_ecn_echo t

let handle_data t seg =
  let seq = seg.Segment.seq in
  (* receiver-side window enforcement: data beyond rcv_nxt + advertised
     window does not fit in the buffer and is dropped (its FIN with it) *)
  let window_edge = t.rcv_nxt + advertised_wnd t in
  let len = Stdlib.min seg.Segment.len (Stdlib.max 0 (window_edge - seq)) in
  let truncated = len < seg.Segment.len in
  if len > 0 || seg.Segment.fin then begin
    if seg.Segment.fin && not truncated then t.fin_rcvd <- Some (seq + len);
    if len > 0 then begin
      let stop = seq + len in
      if seq <= t.rcv_nxt && stop > t.rcv_nxt then begin
        (* advances the window (possibly with partial overlap) *)
        if not t.ts_echo_armed then begin
          t.ts_echo_armed <- true;
          t.ts_to_echo <- seg.Segment.ts_val
        end;
        deliver t (stop - t.rcv_nxt);
        t.rcv_nxt <- stop;
        ooo_drain t;
        if fin_deliverable t then begin
          on_fin_delivered t;
          ack_policy t ~forced:true
        end
        else if t.ooo <> [] then ack_policy t ~forced:true
        else ack_policy t ~forced:false
      end
      else if seq > t.rcv_nxt then begin
        (* out of order: store and emit an immediate duplicate ack *)
        ooo_add t seq stop;
        ack_policy t ~forced:true
      end
      else
        (* stale duplicate *)
        ack_policy t ~forced:true
    end
    else if fin_deliverable t then begin
      if not t.ts_echo_armed then begin
        t.ts_echo_armed <- true;
        t.ts_to_echo <- seg.Segment.ts_val
      end;
      on_fin_delivered t;
      ack_policy t ~forced:true
    end
    else if t.fin_rcvd <> None then
      (* FIN above a hole *)
      ack_policy t ~forced:true
  end

let process_segment t seg ~ecn_marked =
  if ecn_marked then t.pending_ece <- true;
  match t.state with
  | Closed | Listen -> ()
  | Syn_sent ->
      if seg.Segment.syn && seg.Segment.ack && seg.Segment.ack_seq = iss + 1 then begin
        t.rcv_nxt <- seg.Segment.seq + 1;
        t.snd_una <- seg.Segment.ack_seq;
        t.ts_to_echo <- seg.Segment.ts_val;
        observe_rtt t (rtt_sample t seg);
        t.state <- Established;
        Timer.stop t.rto_timer;
        send_pure_ack t;
        fire_established t;
        tcp_output t
      end
  | Syn_received ->
      if seg.Segment.ack && seg.Segment.ack_seq = iss + 1 then begin
        t.snd_una <- seg.Segment.ack_seq;
        t.snd_wnd <- seg.Segment.wnd;
        observe_rtt t (rtt_sample t seg);
        t.state <- Established;
        Timer.stop t.rto_timer;
        fire_established t;
        (* the handshake-completing segment may already carry data *)
        handle_data t seg;
        tcp_output t
      end
      else if seg.Segment.syn && not seg.Segment.ack then
        (* retransmitted SYN: re-send SYN|ACK *)
        transmit t (build_segment t ~seq:iss ~len:0 ~syn:true ~fin:false ~with_ack:true)
  | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack ->
      if seg.Segment.ack then handle_ack t seg;
      if t.state <> Closed then handle_data t seg
  | Time_wait ->
      (* peer retransmitted its FIN: re-ack it *)
      if seg.Segment.fin then send_pure_ack t

let on_packet t pkt =
  match pkt.Packet.payload with
  | Segment.Tcp_seg seg ->
      let costs = Host.costs t.host in
      let cost = costs.Costs.intr_rx + costs.Costs.tcp_proc in
      let marked = pkt.Packet.ecn_marked in
      cpu_run t cost (fun () -> process_segment t seg ~ecn_marked:marked)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Construction *)

let make_conn host ~local ~remote ~driver ~config ~initial_state =
  let engine = Host.engine host in
  let out_flow = Addr.flow ~src:local ~dst:remote ~proto:Addr.Tcp () in
  let in_flow = Addr.reverse out_flow in
  let cc =
    match driver with
    | Native ->
        Cc_native
          {
            cwnd = config.initial_window_pkts * config.mss;
            nat_ssthresh = 1 lsl 30;
            in_recovery = false;
            nat_recover = 0;
          }
    | Cm_driven cm ->
        Cc_cm
          {
            cm;
            fid = None;
            requests_outstanding = 0;
            rexmit_pending = false;
            unresolved_tx = 0;
            prereported = 0;
            cm_recover = 0;
          }
  in
  let dummy () = () in
  let dummy_timer = Timer.create engine ~callback:dummy in
  let t =
    {
      host;
      engine;
      config;
      state = initial_state;
      local;
      remote;
      out_flow;
      in_flow;
      snd_una = iss;
      snd_nxt = iss;
      snd_limit = data_start;
      snd_wnd = config.rwnd;
      fin_queued = false;
      dupacks = 0;
      highest_sent = data_start;
      sacked = [];
      hole_next = 0;
      cc;
      rto_est = Rto.create ~min_rto:config.min_rto ();
      rto_timer = dummy_timer;
      rcv_nxt = 0;
      ooo = [];
      fin_rcvd = None;
      rcv_buffered = 0;
      consume_rate = None;
      consume_timer = dummy_timer;
      last_advertised = config.rwnd;
      persist_timer = dummy_timer;
      persist_backoff = 0;
      segs_since_ack = 0;
      quickack = 16;
      delack_timer = dummy_timer;
      pending_ece = false;
      ts_to_echo = 0;
      ts_echo_armed = false;
      ecn_reacted_at = 0;
      karn_timed_seq = -1;
      karn_sent_at = 0;
      time_wait_timer = dummy_timer;
      recv_cb = (fun _ -> ());
      established_cb = dummy;
      closed_cb = dummy;
      established_fired = false;
      closed_fired = false;
      s_bytes_sent = 0;
      s_bytes_delivered = 0;
      s_segments_out = 0;
      s_acks_out = 0;
      s_retransmits = 0;
      s_fast_retransmits = 0;
      s_timeouts = 0;
      s_rtt_samples = 0;
      trace = (match driver with Native -> Telemetry.Trace.nil | Cm_driven cm -> Cm.trace cm);
    }
  in
  t.rto_timer <- Timer.create engine ~callback:(fun () -> on_rto t ());
  t.delack_timer <-
    Timer.create engine ~callback:(fun () -> if t.state <> Closed then send_pure_ack t);
  t.time_wait_timer <- Timer.create engine ~callback:(fun () -> become_closed t);
  t.persist_timer <- Timer.create engine ~callback:(fun () -> on_persist t ());
  t.consume_timer <- Timer.create engine ~callback:(fun () -> consume_tick t);
  Host.connect_demux host in_flow (fun pkt -> on_packet t pkt);
  (match t.cc with
  | Cc_cm cc ->
      let fid = Cm.open_flow cc.cm out_flow in
      cc.fid <- Some fid;
      Cm.register_send cc.cm fid (fun fid -> cm_grant_callback t cc fid)
  | Cc_native _ -> ());
  t

let connect host ~dst ?(driver = Native) ?(config = default_config) () =
  let local = Addr.endpoint ~host:(Host.id host) ~port:(Host.alloc_port host) in
  let t = make_conn host ~local ~remote:dst ~driver ~config ~initial_state:Syn_sent in
  t.s_segments_out <- t.s_segments_out + 1;
  transmit t (build_segment t ~seq:iss ~len:0 ~syn:true ~fin:false ~with_ack:false);
  t.snd_nxt <- iss + 1;
  arm_rto t;
  t

let listen host ~port ?(driver = Native) ?(config = default_config) ~on_accept () =
  let handler pkt =
    match pkt.Packet.payload with
    | Segment.Tcp_seg seg when seg.Segment.syn && not seg.Segment.ack ->
        let remote = pkt.Packet.flow.Addr.src in
        let local = Addr.endpoint ~host:(Host.id host) ~port in
        let t = make_conn host ~local ~remote ~driver ~config ~initial_state:Syn_received in
        t.rcv_nxt <- seg.Segment.seq + 1;
        t.ts_to_echo <- seg.Segment.ts_val;
        on_accept t;
        t.s_segments_out <- t.s_segments_out + 1;
        transmit t (build_segment t ~seq:iss ~len:0 ~syn:true ~fin:false ~with_ack:true);
        t.snd_nxt <- iss + 1;
        arm_rto t
    | _ -> ()
  in
  Host.bind host Addr.Tcp ~port handler;
  { l_host = host; l_port = port }

let stop_listening l = Host.unbind l.l_host Addr.Tcp ~port:l.l_port

(* ------------------------------------------------------------------ *)
(* Application interface *)

let send t n =
  if n <= 0 then invalid_arg "Conn.send: byte count must be positive";
  if t.fin_queued then invalid_arg "Conn.send: connection closing";
  t.snd_limit <- t.snd_limit + n;
  tcp_output t

let close t =
  if not t.fin_queued then begin
    t.fin_queued <- true;
    match t.state with
    | Closed -> become_closed t
    | Syn_sent | Syn_received ->
        (* queued data and the FIN go out once the handshake completes *)
        ()
    | _ -> tcp_output t
  end

let abort t = become_closed t

let on_receive t cb = t.recv_cb <- cb

let set_consume_rate t rate =
  (match rate with
  | Some r when r < 0. -> invalid_arg "Conn.set_consume_rate: negative rate"
  | _ -> ());
  t.consume_rate <- rate;
  match rate with
  | Some _ ->
      if not (Timer.is_running t.consume_timer) then
        Timer.start_periodic t.consume_timer (Time.ms 10)
  | None ->
      Timer.stop t.consume_timer;
      (* hand any buffered data to the app immediately *)
      if t.rcv_buffered > 0 then begin
        let n = t.rcv_buffered in
        t.rcv_buffered <- 0;
        t.s_bytes_delivered <- t.s_bytes_delivered + n;
        t.recv_cb n
      end

let receive_buffered t = t.rcv_buffered
let on_established t cb =
  t.established_cb <- cb;
  if t.established_fired then cb ()

let on_closed t cb =
  t.closed_cb <- cb;
  if t.closed_fired then cb ()

let state t = t.state

let stats t =
  {
    bytes_sent = t.s_bytes_sent;
    bytes_acked = Stdlib.max 0 (Stdlib.min t.snd_una t.snd_limit - data_start);
    bytes_delivered = t.s_bytes_delivered;
    segments_out = t.s_segments_out;
    acks_out = t.s_acks_out;
    retransmits = t.s_retransmits;
    fast_retransmits = t.s_fast_retransmits;
    timeouts = t.s_timeouts;
    rtt_samples = t.s_rtt_samples;
  }

let srtt t = Rto.srtt t.rto_est

let cwnd t =
  match t.cc with
  | Cc_native cc -> cc.cwnd
  | Cc_cm cc -> (
      match cc.fid with
      | Some fid -> (Cm.query cc.cm fid).Cm.Cm_types.cwnd
      | None -> 0)

let bytes_unacked t = flight_size t
let local t = t.local
let remote t = t.remote

let cm_flow t =
  match t.cc with Cc_cm cc -> cc.fid | Cc_native _ -> None
