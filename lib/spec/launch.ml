open Cm_util
open Eventsim
open Netsim

(* Final stage of the spec pipeline: project flow groups onto running
   applications.  Everything is scheduled up front in declaration order
   (groups, then sources within a group), so launches are deterministic;
   flow [i] of a group starts at [start + i*stagger]. *)

type outcome =
  | Pending  (** Launched (or scheduled) but not finished. *)
  | Bulk_done of { at : Time.t; result : Cm_apps.Bulk.result }
  | Fetched of { at : Time.t; fetches : Cm_apps.Web.fetch_result list }
  | Streaming of Cm_apps.Layered.t
      (** Layered sources run until [stop]; read the source's counters
          and timelines after the run. *)

type running = { rg : Check.group; outcomes : outcome array }

let host_of (b : Build.t) i =
  match b.Build.impls.(i) with
  | Build.Host_impl h -> h
  | Build.Router_impl _ -> assert false (* router endpoints rejected statically *)

let addr_of (b : Build.t) i = b.Build.ir.Check.ir_nodes.(i).Check.n_addr

(* How a Bulk group's byte count maps onto ttcp buffers: whole 8 KiB
   buffers, rounded up. *)
let bulk_buffers bytes =
  let buffer_bytes = Stdlib.min bytes 8192 in
  ((bytes + buffer_bytes - 1) / buffer_bytes, buffer_bytes)

let run (b : Build.t) ~driver_for ?libcm_for () =
  let engine = b.Build.engine in
  let servers = Hashtbl.create 8 in
  Array.to_list b.Build.ir.Check.ir_groups
  |> List.map (fun (g : Check.group) ->
         let dst_h = host_of b g.Check.g_dst in
         let outcomes = Array.make (Array.length g.Check.g_srcs) Pending in
         (* one shared web server per (dst, port), whatever group asks first *)
         (match g.Check.g_app with
         | Spec.Web_fetch { object_bytes; _ } ->
             if not (Hashtbl.mem servers (g.Check.g_dst, g.Check.g_port)) then begin
               Hashtbl.replace servers (g.Check.g_dst, g.Check.g_port) ();
               ignore
                 (Cm_apps.Web.server dst_h ~port:g.Check.g_port ~file_bytes:object_bytes
                    ?driver:(driver_for dst_h) ())
             end
         | Spec.Bulk _ | Spec.Layered _ -> ());
         Array.iteri
           (fun i si ->
             let src = host_of b si in
             let t0 = Time.add g.Check.g_start (i * g.Check.g_stagger) in
             match g.Check.g_app with
             | Spec.Bulk { bytes } ->
                 let port = g.Check.g_port + i in
                 let buffers, buffer_bytes = bulk_buffers bytes in
                 ignore
                   (Engine.schedule_at engine t0 (fun () ->
                        Cm_apps.Bulk.tcp_push ~src ~dst_host:dst_h ~port ~buffers ~buffer_bytes
                          ?driver:(driver_for src)
                          ~on_done:(fun result ->
                            outcomes.(i) <- Bulk_done { at = Engine.now engine; result })
                          ()))
             | Spec.Web_fetch { object_bytes; count; gap } ->
                 let dst = Addr.endpoint ~host:(addr_of b g.Check.g_dst) ~port:g.Check.g_port in
                 ignore
                   (Engine.schedule_at engine t0 (fun () ->
                        Cm_apps.Web.sequential_fetches src ~dst ~expect_bytes:object_bytes ~count
                          ~gap ?driver:(driver_for src)
                          ~on_done:(fun fetches ->
                            outcomes.(i) <- Fetched { at = Engine.now engine; fetches })
                          ()))
             | Spec.Layered { layers; packet_bytes; mode } ->
                 let port = g.Check.g_port + i in
                 let lib =
                   match libcm_for with
                   | Some f -> f src
                   | None -> invalid_arg "Launch.run: layered flow groups need ~libcm_for"
                 in
                 ignore (Udp.Cc_socket.run_echo_receiver dst_h ~port ());
                 let source =
                   Cm_apps.Layered.create lib ~host:src
                     ~dst:(Addr.endpoint ~host:(addr_of b g.Check.g_dst) ~port)
                     ~layers ~mode ~packet_bytes ()
                 in
                 outcomes.(i) <- Streaming source;
                 ignore (Engine.schedule_at engine t0 (fun () -> Cm_apps.Layered.start source));
                 Option.iter
                   (fun stop ->
                     ignore
                       (Engine.schedule_at engine stop (fun () -> Cm_apps.Layered.stop source)))
                   g.Check.g_stop)
           g.Check.g_srcs;
         { rg = g; outcomes })

let done_count r =
  Array.fold_left
    (fun n -> function Bulk_done _ | Fetched _ -> n + 1 | Pending | Streaming _ -> n)
    0 r.outcomes

let find (rs : running list) name =
  match List.find_opt (fun r -> r.rg.Check.g_name = name) rs with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Launch.find: no flow group %S" name)
