open Cm_util

(* Stage 0 of the scenario pipeline: a typed combinator algebra over
   hosts, routers, links, flow groups and fault schedules.  Combinators
   build plain element lists — composition is concatenation — and every
   element carries a source span (a constructor breadcrumb) so the static
   checks in [Check] can point at the combinator that introduced a bad
   element, not just at a name. *)

type span = string list

let span_str sp = String.concat "/" sp
let pp_span fmt sp = Format.pp_print_string fmt (span_str sp)

type node_kind = Host | Router

type app =
  | Bulk of { bytes : int }
  | Web_fetch of { object_bytes : int; count : int; gap : Time.span }
  | Layered of { layers : float array; packet_bytes : int; mode : Cm_apps.Layered.mode }

type elem =
  | Node of { name : string; kind : node_kind; id : int option; span : span }
  | Link of {
      name : string;
      src : string;
      dst : string;
      bw_bps : float;
      lat : Time.span;
      queue : int;
      span : span;
    }
  | Group of {
      name : string;
      srcs : string list;
      dst : string;
      port : int;
      app : app;
      start : Time.t;
      stagger : Time.span;
      stop : Time.t option;
      span : span;
    }
  | Fault of { at : Time.t; target : string; action : Cm_dynamics.Scenario.action; span : span }

type t = elem list

(* ---- core constructors -------------------------------------------------- *)

let node ?id name = [ Node { name; kind = Host; id; span = [ "node:" ^ name ] } ]
let router name = [ Node { name; kind = Router; id = None; span = [ "router:" ^ name ] } ]

let link ?name ?(queue = 100) ~bw ~lat src dst =
  let name = match name with Some n -> n | None -> src ^ "->" ^ dst in
  [ Link { name; src; dst; bw_bps = bw; lat; queue; span = [ "link:" ^ name ] } ]

let duplex ?name ?rev_name ?(queue = 100) ?rev_queue ~bw ~lat a b =
  let rev_queue = match rev_queue with Some q -> q | None -> queue in
  link ?name ~queue ~bw ~lat a b @ link ?name:rev_name ~queue:rev_queue ~bw ~lat b a

let flows ~name ~src ~dst ?(port = 80) ~app ?(start = Time.zero) ?(stagger = 0) ?stop () =
  [ Group { name; srcs = src; dst; port; app; start; stagger; stop; span = [ "flows:" ^ name ] } ]

let faults ~target steps =
  List.map (fun (at, action) -> Fault { at; target; action; span = [ "faults:" ^ target ] }) steps

(* ---- app constructors --------------------------------------------------- *)

let bulk ~bytes = Bulk { bytes }
let web_fetch ~object_bytes ~count ~gap = Web_fetch { object_bytes; count; gap }

let layered ?(packet_bytes = 1000) ?(mode = Cm_apps.Layered.Alf) ~layers () =
  Layered { layers; packet_bytes; mode }

(* ---- composition -------------------------------------------------------- *)

let named ctx spec =
  List.map
    (function
      | Node n -> Node { n with span = ctx :: n.span }
      | Link l -> Link { l with span = ctx :: l.span }
      | Group g -> Group { g with span = ctx :: g.span }
      | Fault f -> Fault { f with span = ctx :: f.span })
    spec

let offset dt spec =
  List.map
    (function
      | Fault f -> Fault { f with at = Time.add f.at dt }
      | Group g ->
          Group
            { g with start = Time.add g.start dt; stop = Option.map (fun s -> Time.add s dt) g.stop }
      | (Node _ | Link _) as e -> e)
    spec

let par specs = List.concat specs

let seq phases =
  let _, acc =
    List.fold_left
      (fun (t0, acc) (name, dur, spec) -> (Time.add t0 dur, named name (offset t0 spec) :: acc))
      (Time.zero, []) phases
  in
  List.concat (List.rev acc)

(* ---- sugar: canned shapes ----------------------------------------------- *)

let chain ?(queue = 100) ~bw ~lat names =
  let rec pairs = function
    | a :: (b :: _ as rest) -> duplex ~queue ~bw ~lat a b @ pairs rest
    | [ _ ] | [] -> []
  in
  named "chain" (pairs names)

let star ~center ?(queue = 100) ~bw ~lat leaves =
  named ("star:" ^ center) (List.concat_map (fun leaf -> duplex ~queue ~bw ~lat center leaf) leaves)

(* clients ~n per edge server: one access router per server, a trunk
   between server and router, and n single-homed clients per router.
   Names follow a fixed convention so flow groups can address them:
   router "<prefix>r<i>", client "<prefix><i>_<j>". *)

let client_name ?(prefix = "c") ~server ~index () = Printf.sprintf "%s%d_%d" prefix server index

let client_names ?(prefix = "c") ~n ~servers () =
  List.concat
    (List.init (List.length servers) (fun i ->
         List.init n (fun j -> client_name ~prefix ~server:i ~index:j ())))

let clients ?(prefix = "c") ~n ~per ~bw ~lat ?(queue = 100) ~trunk_bw ~trunk_lat
    ?(trunk_queue = 100) () =
  let per_server i server =
    let rtr = Printf.sprintf "%sr%d" prefix i in
    router rtr
    @ duplex ~queue:trunk_queue ~bw:trunk_bw ~lat:trunk_lat server rtr
    @ List.concat
        (List.init n (fun j ->
             let c = client_name ~prefix ~server:i ~index:j () in
             node c @ duplex ~queue ~bw ~lat c rtr))
  in
  named ("clients:" ^ prefix) (List.concat (List.mapi per_server per))

(* A k-ary fat-tree (k even): k pods of k/2 edge and k/2 aggregation
   routers, (k/2)^2 cores, k^2/4 hosts per... k/2 hosts per edge router,
   k^3/4 hosts total.  Hosts are "h<i>" in pod-major order; routers are
   "p<pod>e<j>", "p<pod>a<j>" and "core<m>". *)

let fat_tree_host ~k:_ i = Printf.sprintf "h%d" i
let fat_tree_hosts ~k = List.init (k * k * k / 4) (fat_tree_host ~k)

let fat_tree ~k ?(host_bw = 100e6) ?(fabric_bw = 100e6) ?(lat = Time.us 10) ?(queue = 64) () =
  if k <= 0 || k mod 2 <> 0 then
    invalid_arg (Printf.sprintf "Spec.fat_tree: k must be a positive even number (got %d)" k);
  let half = k / 2 in
  let edge pod j = Printf.sprintf "p%de%d" pod j in
  let agg pod j = Printf.sprintf "p%da%d" pod j in
  let core m = Printf.sprintf "core%d" m in
  let cores = List.init (half * half) (fun m -> router (core m)) in
  let pods =
    List.init k (fun pod ->
        let routers =
          List.init half (fun j -> router (edge pod j) @ router (agg pod j))
        in
        let hosts =
          List.init half (fun j ->
              List.init half (fun i ->
                  let h = fat_tree_host ~k ((pod * half * half) + (j * half) + i) in
                  node h @ duplex ~queue ~bw:host_bw ~lat h (edge pod j)))
        in
        let edge_agg =
          List.init half (fun j ->
              List.init half (fun m -> duplex ~queue ~bw:fabric_bw ~lat (edge pod j) (agg pod m)))
        in
        let agg_core =
          List.init half (fun m ->
              List.init half (fun c ->
                  duplex ~queue ~bw:fabric_bw ~lat (agg pod m) (core ((m * half) + c))))
        in
        List.concat
          (routers @ List.concat hosts @ List.concat edge_agg @ List.concat agg_core))
  in
  named
    (Printf.sprintf "fat_tree:k=%d" k)
    (List.concat cores @ List.concat pods)
