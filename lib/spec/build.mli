(** Stage 2 of the spec pipeline: instantiation.

    Turns a checked {!Check.ir} into live {!Netsim} objects — hosts and
    routers in declaration order, links in declaration order with
    drop-tail queues, host default routes and per-destination router
    tables derived from the checker's own BFS — plus a
    {!Cm_dynamics.Scenario} program projected from the fault steps.

    Construction order and parameters match the hand-built
    {!Netsim.Topology} builders exactly (and the [rng] is only stored by
    links, never drawn while loss is off), so a spec describing the same
    shape compiles to a byte-identical simulation. *)

open Eventsim
open Netsim

type node_impl = Host_impl of Host.t | Router_impl of Router.t

type t = {
  engine : Engine.t;
  ir : Check.ir;
  impls : node_impl array;  (** per node index *)
  links : Link.t array;  (** per edge index *)
}

val instantiate : ?costs:Costs.t -> ?rng:Cm_util.Rng.t -> Engine.t -> Check.ir -> t
(** Create every host, router and link, and install all routes.  [rng]
    is handed to every link (needed only if faults later install loss or
    jitter). *)

val host : t -> string -> Host.t
(** Look up a host by spec name; raises [Invalid_argument] for routers
    or unknown names. *)

val link : t -> string -> Link.t
(** Look up a link by spec name. *)

val links_alist : t -> (string * Link.t) list
(** All links with their spec names, declaration order — the binding
    {!Cm_dynamics.Scenario.compile} consumes. *)

val scenario : name:string -> Check.ir -> Cm_dynamics.Scenario.t
(** The fault schedule as a Scenario program (steps in declaration
    order, network faults targeted by link name, control faults by host
    name). *)

val control_injectors :
  t -> classify:(Packet.t -> bool) -> (string * Cm_dynamics.Control_faults.t) list
(** Install a {!Cm_dynamics.Control_faults} injector on every host some
    [Control_fault] step targets (declaration order) and return the
    name binding {!Cm_dynamics.Scenario.compile}'s [?controls] consumes.
    Call right after {!instantiate} — the injector's receive filter must
    be registered {e before} any agent filter that consumes control
    traffic. *)
