(** Stage 1 of the spec pipeline: elaboration and static checks.

    {!elaborate} turns a {!Spec.t} into a validated intermediate graph —
    nodes, edges, flow groups and fault steps with every name resolved to
    an index — or a list of diagnostics, each carrying the source span of
    the offending combinator.  All checks run before any simulation event
    exists:

    - [dup-name] / [dup-address] / [bad-address] — name and host-address
      uniqueness (explicit [?id]s collide with auto-assigned ones too);
    - [bad-link-param] — NaN/non-positive bandwidth, negative latency,
      non-positive queue;
    - [unknown-node] / [self-link] — link endpoint resolution;
    - [multihomed-host] — netsim hosts carry a single route;
    - [router-endpoint] / [empty-group] / [bad-app] / [bad-time] — flow
      group sanity (ports, sizes, ascending layer rates, start/stop/stagger);
    - [port-clash] / [server-conflict] — overlapping destination port
      claims (per-flow apps claim [port..port+n-1], web fetches may share
      a server only at equal object size);
    - [unknown-target] / [bad-fault] / [fault-overlap] — fault steps
      resolve to links, pass {!Cm_dynamics.Scenario.make} validation, and
      bounded disruptions on one target never overlap;
    - [control-target] — control-plane faults ([Control_fault]) must
      target a declared {e host} (the injector lives on the host's
      receive path), never a router or a link;
    - [unreachable] — every source reaches its destination and vice versa
      (feedback path), under the hosts-don't-forward routing rule;
    - [oversubscribed] — the inelastic floor (layered sources' base
      layers) routed over each link fits its capacity. *)

open Cm_util

type diag = { d_code : string; d_span : Spec.span; d_msg : string }

val diag_str : diag -> string
(** ["[code] span: message"]. *)

type node = { n_name : string; n_kind : Spec.node_kind; n_addr : int; n_span : Spec.span }

type edge = {
  e_name : string;
  e_src : int;
  e_dst : int;
  e_bw : float;
  e_lat : Time.span;
  e_queue : int;
  e_span : Spec.span;
}

type group = {
  g_name : string;
  g_srcs : int array;
  g_dst : int;
  g_port : int;
  g_app : Spec.app;
  g_start : Time.t;
  g_stagger : Time.span;
  g_stop : Time.t option;
  g_span : Spec.span;
}

type fault_target =
  | On_link of int  (** Edge index: network faults degrade a link. *)
  | On_host of int
      (** Node index: [Control_fault] steps degrade a host's
          control-plane injector. *)

type fault = {
  f_at : Time.t;
  f_target : fault_target;
  f_action : Cm_dynamics.Scenario.action;
  f_span : Spec.span;
}

type ir = {
  ir_nodes : node array;
  ir_edges : edge array;
  ir_groups : group array;
  ir_faults : fault array;
  ir_out : int list array;  (** per node: out-edge indices, declaration order *)
}

val elaborate : Spec.t -> (ir, diag list) result
(** Elaborate and run every static check.  [Error] is non-empty and in
    first-reported order. *)

val check : Spec.t -> diag list
(** Just the diagnostics ([] = clean). *)

val elaborate_exn : Spec.t -> ir
(** Raises [Invalid_argument] with all diagnostics rendered. *)

val dist_to : ir -> dst:int -> int array
(** Hop distance of every node to [dst] ([max_int] = unreachable), under
    the hosts-don't-forward rule.  {!Build} derives routing tables from
    this, so checker and builder can never disagree on reachability. *)

val next_hop : ir -> int array -> int -> int option
(** [next_hop ir dist u] is the out-edge of [u] one hop closer to the
    distance map's destination — the first declared such edge, the
    deterministic tie-break {!Build} installs in routing tables. *)

val route : ir -> int array -> src:int -> int list option
(** [route ir (dist_to ir ~dst) ~src] is the deterministic edge path
    src → dst (first declared out-edge that steps closer wins). *)

val summary_json : ir -> Json.t
(** Compiled-topology summary for [cm_expt spec --dump]: element counts,
    aggregate capacity, per-group and per-fault digests, and the busiest
    links by routed flow count (capped at 12 for readability). *)
