(** Declarative topology/scenario algebra (stage 0 of the spec pipeline).

    A spec is a list of elements — hosts, routers, links, flow groups and
    fault steps — built with typed combinators and composed by
    concatenation ({!par}) or time-shifted sequencing ({!seq}).  Nothing
    here touches the simulator: a spec is a plain value, elaborated and
    statically checked by {!Check} and only then instantiated into live
    {!Netsim} objects plus a {!Cm_dynamics.Scenario} program by {!Build}.

    Every element carries a {e source span}: a breadcrumb of the
    combinators that introduced it (e.g.
    ["fattree/fat_tree:k=4/link:h0->p0e0"]), reported verbatim by every
    static-check diagnostic.  Wrap sub-specs with {!named} to extend the
    breadcrumb.

    The algebra mirrors the staged-compilation idiom of frenetic's NetKAT
    compiler: a small core (node / link / group / fault) plus sugar
    ({!chain}, {!star}, {!clients}, {!fat_tree}) that elaborates to the
    core at construction time, so the checker and the builder only ever
    see four element forms. *)

open Cm_util

type span = string list
(** Combinator breadcrumb, outermost context first. *)

val span_str : span -> string
val pp_span : Format.formatter -> span -> unit

type node_kind = Host | Router

type app =
  | Bulk of { bytes : int }
      (** One TCP/CM transfer of [bytes] per source; the builder creates a
          per-flow receiver (ports [port], [port+1], …). *)
  | Web_fetch of { object_bytes : int; count : int; gap : Time.span }
      (** [count] sequential fetches of an [object_bytes] response from a
          shared server on [dst:port], each started [gap] after the
          previous one's start. *)
  | Layered of { layers : float array; packet_bytes : int; mode : Cm_apps.Layered.mode }
      (** A layered media source per flow (cumulative rates ascending),
          with a per-flow echo receiver. *)

type elem =
  | Node of { name : string; kind : node_kind; id : int option; span : span }
  | Link of {
      name : string;
      src : string;
      dst : string;
      bw_bps : float;
      lat : Time.span;
      queue : int;
      span : span;
    }
  | Group of {
      name : string;
      srcs : string list;
      dst : string;
      port : int;
      app : app;
      start : Time.t;
      stagger : Time.span;
      stop : Time.t option;
      span : span;
    }
  | Fault of { at : Time.t; target : string; action : Cm_dynamics.Scenario.action; span : span }

type t = elem list

(** {1 Core constructors} *)

val node : ?id:int -> string -> t
(** A host.  [id] overrides the auto-assigned address (declaration
    order); the duplicate-address check rejects collisions. *)

val router : string -> t
(** A store-and-forward element: has no address, forwards by destination
    host. *)

val link : ?name:string -> ?queue:int -> bw:float -> lat:Time.span -> string -> string -> t
(** [link ~bw ~lat src dst] is a unidirectional link (drop-tail queue of
    [queue] packets, default 100).  [name] defaults to ["src->dst"]. *)

val duplex :
  ?name:string ->
  ?rev_name:string ->
  ?queue:int ->
  ?rev_queue:int ->
  bw:float ->
  lat:Time.span ->
  string ->
  string ->
  t
(** Two symmetric links. *)

val flows :
  name:string ->
  src:string list ->
  dst:string ->
  ?port:int ->
  app:app ->
  ?start:Time.t ->
  ?stagger:Time.span ->
  ?stop:Time.t ->
  unit ->
  t
(** A flow group: one [app] instance per source host, targeting [dst].
    Source [i] starts at [start + i*stagger]; [stop] (when given) halts
    unbounded apps (layered sources). *)

val faults : target:string -> (Time.t * Cm_dynamics.Scenario.action) list -> t
(** Timed fault actions on the named link. *)

(** {1 App constructors} *)

val bulk : bytes:int -> app
val web_fetch : object_bytes:int -> count:int -> gap:Time.span -> app
val layered : ?packet_bytes:int -> ?mode:Cm_apps.Layered.mode -> layers:float array -> unit -> app

(** {1 Composition} *)

val named : string -> t -> t
(** Push a context segment onto every element's span. *)

val offset : Time.span -> t -> t
(** Shift every time-bearing element (fault times, group start/stop). *)

val par : t list -> t
(** Overlay specs (plain union; nothing is shifted). *)

val seq : (string * Time.span * t) list -> t
(** Scenario phases in sequence: each [(name, duration, spec)] is
    {!named} and {!offset} by the cumulative duration of its
    predecessors.  Topology elements are unaffected by the shift, so
    phases may freely mix links and faults. *)

(** {1 Sugar: canned shapes} *)

val chain : ?queue:int -> bw:float -> lat:Time.span -> string list -> t
(** Duplex links between consecutive names (nodes declared separately). *)

val star : center:string -> ?queue:int -> bw:float -> lat:Time.span -> string list -> t
(** Duplex links from [center] to every leaf. *)

val clients :
  ?prefix:string ->
  n:int ->
  per:string list ->
  bw:float ->
  lat:Time.span ->
  ?queue:int ->
  trunk_bw:float ->
  trunk_lat:Time.span ->
  ?trunk_queue:int ->
  unit ->
  t
(** [n] single-homed clients per edge server: for server [i] in [per], an
    access router ["<prefix>r<i>"], a trunk (server ↔ router) and [n]
    clients ["<prefix><i>_<j>"] with [bw]/[lat] access links. *)

val client_name : ?prefix:string -> server:int -> index:int -> unit -> string
val client_names : ?prefix:string -> n:int -> servers:string list -> unit -> string list
(** The names {!clients} generates, for use in flow groups. *)

val fat_tree :
  k:int -> ?host_bw:float -> ?fabric_bw:float -> ?lat:Time.span -> ?queue:int -> unit -> t
(** A k-ary fat-tree (k even): [k] pods of [k/2] edge + [k/2] aggregation
    routers, [(k/2)²] cores, [k³/4] hosts ["h0"…]; every adjacency is a
    duplex link.  Raises [Invalid_argument] for odd or non-positive [k]. *)

val fat_tree_host : k:int -> int -> string
val fat_tree_hosts : k:int -> string list
(** Host names of the [k]-ary fat-tree, pod-major. *)
