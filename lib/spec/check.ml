open Cm_util
module Scenario = Cm_dynamics.Scenario

(* Stage 1 of the spec pipeline: elaborate the combinator algebra into a
   validated intermediate graph, running every static check before a
   single simulation event exists.  Each diagnostic carries the source
   span of the element that caused it. *)

type diag = { d_code : string; d_span : Spec.span; d_msg : string }

let diag_str d = Printf.sprintf "[%s] %s: %s" d.d_code (Spec.span_str d.d_span) d.d_msg

type node = { n_name : string; n_kind : Spec.node_kind; n_addr : int; n_span : Spec.span }

type edge = {
  e_name : string;
  e_src : int;
  e_dst : int;
  e_bw : float;
  e_lat : Time.span;
  e_queue : int;
  e_span : Spec.span;
}

type group = {
  g_name : string;
  g_srcs : int array;
  g_dst : int;
  g_port : int;
  g_app : Spec.app;
  g_start : Time.t;
  g_stagger : Time.span;
  g_stop : Time.t option;
  g_span : Spec.span;
}

type fault_target = On_link of int | On_host of int

type fault = {
  f_at : Time.t;
  f_target : fault_target;
  f_action : Scenario.action;
  f_span : Spec.span;
}

type ir = {
  ir_nodes : node array;
  ir_edges : edge array;
  ir_groups : group array;
  ir_faults : fault array;
  ir_out : int list array;  (** per node: out-edge indices, declaration order *)
}

let is_host ir i = ir.ir_nodes.(i).n_kind = Spec.Host
let node_name ir i = ir.ir_nodes.(i).n_name
let edge_name ir i = ir.ir_edges.(i).e_name

let fault_target_name ir = function
  | On_link ei -> edge_name ir ei
  | On_host ni -> node_name ir ni

let fault_target_str ir = function
  | On_link ei -> Printf.sprintf "link %S" (edge_name ir ei)
  | On_host ni -> Printf.sprintf "host %S's control plane" (node_name ir ni)

(* ---- routing ------------------------------------------------------------ *)

(* Hop distance of every node to [dst], over reversed edges.  Hosts do not
   forward: expansion continues only through routers (and [dst] itself),
   so a path "through" a host is never counted.  max_int = unreachable. *)
let dist_to ir ~dst =
  let n = Array.length ir.ir_nodes in
  let dist = Array.make n max_int in
  (* reverse adjacency: in-edges per node *)
  let in_edges = Array.make n [] in
  Array.iteri (fun ei e -> in_edges.(e.e_dst) <- ei :: in_edges.(e.e_dst)) ir.ir_edges;
  let q = Queue.create () in
  dist.(dst) <- 0;
  Queue.push dst q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    if v = dst || not (is_host ir v) then
      List.iter
        (fun ei ->
          let u = ir.ir_edges.(ei).e_src in
          if dist.(u) = max_int then begin
            dist.(u) <- dist.(v) + 1;
            Queue.push u q
          end)
        in_edges.(v)
  done;
  dist

(* Next-hop from [u] toward [dst] under [dist]: the first declared
   out-edge that steps one hop closer.  Declaration order is the
   deterministic tie-break (no ECMP). *)
let next_hop ir dist u =
  if dist.(u) = max_int || dist.(u) = 0 then None
  else
    List.find_opt (fun ei -> dist.(ir.ir_edges.(ei).e_dst) = dist.(u) - 1) ir.ir_out.(u)

(* Edge indices along the deterministic route src → dst, if any. *)
let route ir dist ~src =
  let rec walk u acc =
    match next_hop ir dist u with
    | None -> if dist.(u) = 0 then Some (List.rev acc) else None
    | Some ei -> walk ir.ir_edges.(ei).e_dst (ei :: acc)
  in
  if dist.(src) = max_int then None else walk src []

(* ---- fault windows ------------------------------------------------------ *)

(* The window of a bounded disruption (mirrors Scenario.fault_window's
   per-action clearance rule); persistent renegotiations have none. *)
let step_window at = function
  | Scenario.Outage d -> Some (at, Time.add at d)
  | Scenario.Flap { down; up; cycles } -> Some (at, Time.add at (((down + up) * cycles) - up))
  | Scenario.Loss_burst { duration; _ } -> Some (at, Time.add at duration)
  | Scenario.Delay_spike { duration; _ } -> Some (at, Time.add at duration)
  | Scenario.Control_fault { duration; _ } -> Some (at, Time.add at duration)
  | Scenario.Set_bandwidth _ | Scenario.Ramp_bandwidth _ | Scenario.Set_loss _ -> None

(* ---- app parameters ----------------------------------------------------- *)

(* The rate an app insists on regardless of congestion feedback — what the
   oversubscription check sums per link.  Elastic apps (TCP transfers,
   web fetches) adapt to zero, layered sources never drop below their
   base layer. *)
let app_floor_bps = function
  | Spec.Bulk _ | Spec.Web_fetch _ -> 0.
  | Spec.Layered { layers; _ } -> if Array.length layers = 0 then 0. else layers.(0)

(* Ports an app claims on the destination: shared server vs one per flow. *)
let port_range ~port ~nsrcs = function
  | Spec.Web_fetch _ -> (port, port)
  | Spec.Bulk _ | Spec.Layered _ -> (port, port + Stdlib.max 1 nsrcs - 1)

(* ---- elaboration -------------------------------------------------------- *)

let elaborate spec =
  let diags = ref [] in
  let err code span fmt =
    Printf.ksprintf (fun msg -> diags := { d_code = code; d_span = span; d_msg = msg } :: !diags) fmt
  in
  (* 1. nodes: names unique across hosts and routers; addresses unique *)
  let nodes = ref [] and n_count = ref 0 in
  let node_idx = Hashtbl.create 64 in
  let next_auto = ref 0 in
  List.iter
    (function
      | Spec.Node { name; kind; id; span } ->
          if Hashtbl.mem node_idx name then err "dup-name" span "node %S declared twice" name
          else begin
            let addr =
              match (kind, id) with
              | Spec.Router, Some _ ->
                  err "bad-address" span "router %S cannot carry a host address" name;
                  -1
              | Spec.Router, None -> -1
              | Spec.Host, Some a ->
                  if a < 0 then err "bad-address" span "host %S: negative address %d" name a;
                  a
              | Spec.Host, None ->
                  let a = !next_auto in
                  incr next_auto;
                  a
            in
            (match (kind, id) with
            | Spec.Host, Some a when a >= !next_auto -> next_auto := a + 1
            | _ -> ());
            Hashtbl.replace node_idx name !n_count;
            nodes := { n_name = name; n_kind = kind; n_addr = addr; n_span = span } :: !nodes;
            incr n_count
          end
      | Spec.Link _ | Spec.Group _ | Spec.Fault _ -> ())
    spec;
  let nodes = Array.of_list (List.rev !nodes) in
  let addr_seen = Hashtbl.create 64 in
  Array.iter
    (fun n ->
      if n.n_kind = Spec.Host then begin
        (match Hashtbl.find_opt addr_seen n.n_addr with
        | Some other ->
            err "dup-address" n.n_span "hosts %S and %S share address %d" other n.n_name n.n_addr
        | None -> ());
        Hashtbl.replace addr_seen n.n_addr n.n_name
      end)
    nodes;
  let resolve span what name =
    match Hashtbl.find_opt node_idx name with
    | Some i -> Some i
    | None ->
        err "unknown-node" span "%s references undeclared node %S" what name;
        None
  in
  (* 2. links *)
  let edges = ref [] and e_count = ref 0 in
  let edge_idx = Hashtbl.create 64 in
  List.iter
    (function
      | Spec.Link { name; src; dst; bw_bps; lat; queue; span } ->
          if Hashtbl.mem edge_idx name then err "dup-name" span "link %S declared twice" name;
          if Float.is_nan bw_bps || bw_bps <= 0. then
            err "bad-link-param" span "bandwidth must be positive (got %s bps)"
              (Json.float_str bw_bps);
          if lat < 0 then err "bad-link-param" span "negative latency";
          if queue <= 0 then err "bad-link-param" span "queue must hold at least one packet";
          if src = dst then err "self-link" span "link %S connects %S to itself" name src;
          (match (resolve span ("link " ^ name) src, resolve span ("link " ^ name) dst) with
          | Some s, Some d when src <> dst ->
              Hashtbl.replace edge_idx name !e_count;
              edges :=
                { e_name = name; e_src = s; e_dst = d; e_bw = bw_bps; e_lat = lat;
                  e_queue = queue; e_span = span }
                :: !edges;
              incr e_count
          | _ -> ())
      | Spec.Node _ | Spec.Group _ | Spec.Fault _ -> ())
    spec;
  let edges = Array.of_list (List.rev !edges) in
  let out = Array.make (Stdlib.max 1 (Array.length nodes)) [] in
  Array.iteri (fun ei e -> out.(e.e_src) <- ei :: out.(e.e_src)) edges;
  Array.iteri (fun i l -> out.(i) <- List.rev l) out;
  (* 3. hosts are single-homed: at most one outgoing link *)
  Array.iteri
    (fun i n ->
      if n.n_kind = Spec.Host && List.length out.(i) > 1 then
        err "multihomed-host" n.n_span
          "host %S has %d outgoing links (netsim hosts have one route); make it a router or \
           remove a link"
          n.n_name (List.length out.(i)))
    nodes;
  (* 4. flow groups *)
  let groups = ref [] in
  let group_seen = Hashtbl.create 16 in
  List.iter
    (function
      | Spec.Group { name; srcs; dst; port; app; start; stagger; stop; span } ->
          if Hashtbl.mem group_seen name then err "dup-name" span "flow group %S declared twice" name;
          Hashtbl.replace group_seen name ();
          if srcs = [] then err "empty-group" span "flow group %S has no sources" name;
          if port <= 0 then err "bad-app" span "port must be positive (got %d)" port;
          if start < 0 then err "bad-time" span "negative start time";
          if stagger < 0 then err "bad-time" span "negative stagger";
          (match stop with
          | Some s when s <= start -> err "bad-time" span "stop must come after start"
          | _ -> ());
          (match app with
          | Spec.Bulk { bytes } ->
              if bytes <= 0 then err "bad-app" span "bulk transfer needs positive bytes"
          | Spec.Web_fetch { object_bytes; count; gap } ->
              if object_bytes <= 0 then err "bad-app" span "fetch needs a positive object size";
              if count <= 0 then err "bad-app" span "fetch count must be positive";
              if gap < 0 then err "bad-app" span "negative fetch gap"
          | Spec.Layered { layers; packet_bytes; _ } ->
              if packet_bytes <= 0 then err "bad-app" span "packet_bytes must be positive";
              if Array.length layers = 0 then err "bad-app" span "layered source needs layers";
              Array.iteri
                (fun i r ->
                  if Float.is_nan r || r <= 0. then
                    err "bad-app" span "layer %d rate must be positive" i
                  else if i > 0 && r <= layers.(i - 1) then
                    err "bad-app" span "layer rates must be strictly ascending (layer %d)" i)
                layers);
          let resolve_host what n =
            match resolve span (Printf.sprintf "flow group %S %s" name what) n with
            | Some i when nodes.(i).n_kind = Spec.Router ->
                err "router-endpoint" span "flow group %S uses router %S as %s" name n what;
                None
            | r -> r
          in
          let dsti = resolve_host "destination" dst in
          let srcis = List.filter_map (resolve_host "source") srcs in
          (match dsti with
          | Some d when List.length srcis = List.length srcs ->
              groups :=
                { g_name = name; g_srcs = Array.of_list srcis; g_dst = d; g_port = port;
                  g_app = app; g_start = start; g_stagger = stagger; g_stop = stop; g_span = span }
                :: !groups
          | _ -> ())
      | Spec.Node _ | Spec.Link _ | Spec.Fault _ -> ())
    spec;
  let groups = Array.of_list (List.rev !groups) in
  (* 5. destination port claims must not clash *)
  let claims = Hashtbl.create 16 in
  Array.iter
    (fun g ->
      let lo, hi = port_range ~port:g.g_port ~nsrcs:(Array.length g.g_srcs) g.g_app in
      let prev = try Hashtbl.find claims g.g_dst with Not_found -> [] in
      List.iter
        (fun (lo', hi', g') ->
          if lo <= hi' && lo' <= hi then
            match (g.g_app, g'.g_app) with
            | Spec.Web_fetch { object_bytes = a; _ }, Spec.Web_fetch { object_bytes = b; _ }
              when g.g_port = g'.g_port && a = b ->
                () (* same shared server: fine *)
            | Spec.Web_fetch _, Spec.Web_fetch _ when g.g_port = g'.g_port ->
                err "server-conflict" g.g_span
                  "flow groups %S and %S share server %s:%d but serve different object sizes"
                  g'.g_name g.g_name nodes.(g.g_dst).n_name g.g_port
            | _ ->
                err "port-clash" g.g_span
                  "flow groups %S and %S claim overlapping ports [%d,%d] and [%d,%d] on %S"
                  g'.g_name g.g_name lo' hi' lo hi nodes.(g.g_dst).n_name)
        prev;
      Hashtbl.replace claims g.g_dst ((lo, hi, g) :: prev))
    groups;
  (* 6. faults *)
  let faults = ref [] in
  List.iter
    (function
      | Spec.Fault { at; target; action; span } ->
          if at < 0 then err "bad-time" span "negative fault time";
          (try ignore (Scenario.make ~name:"check" [ { Scenario.at = Stdlib.max at 0; target; action } ])
           with Invalid_argument m -> err "bad-fault" span "%s" m);
          (match action with
          | Scenario.Control_fault _ -> (
              (* control faults degrade a *host*'s feedback plane, not a link *)
              match Hashtbl.find_opt node_idx target with
              | Some ni when nodes.(ni).n_kind = Spec.Host ->
                  faults :=
                    { f_at = at; f_target = On_host ni; f_action = action; f_span = span }
                    :: !faults
              | Some _ ->
                  err "control-target" span
                    "control fault targets router %S; control-plane injectors live on hosts"
                    target
              | None ->
                  err "control-target" span "control fault targets undeclared host %S" target)
          | _ -> (
              match Hashtbl.find_opt edge_idx target with
              | Some ei ->
                  faults :=
                    { f_at = at; f_target = On_link ei; f_action = action; f_span = span }
                    :: !faults
              | None -> err "unknown-target" span "fault targets undeclared link %S" target))
      | Spec.Node _ | Spec.Link _ | Spec.Group _ -> ())
    spec;
  let faults = Array.of_list (List.rev !faults) in
  let ir = { ir_nodes = nodes; ir_edges = edges; ir_groups = groups; ir_faults = faults; ir_out = out } in
  (* 7. overlapping bounded disruptions on the same link are ambiguous *)
  let by_target = Hashtbl.create 8 in
  Array.iter
    (fun f ->
      match step_window f.f_at f.f_action with
      | Some w ->
          let prev = try Hashtbl.find by_target f.f_target with Not_found -> [] in
          Hashtbl.replace by_target f.f_target ((w, f) :: prev)
      | None -> ())
    faults;
  Hashtbl.iter
    (fun target windows ->
      let sorted = List.sort (fun ((s, _), _) ((s', _), _) -> Time.compare s s') (List.rev windows) in
      let rec scan = function
        | ((_, e1), f1) :: (((s2, _), f2) :: _ as rest) ->
            if s2 < e1 then
              err "fault-overlap" f2.f_span
                "bounded disruptions overlap on %s (previous one from %s clears at t=%ss, \
                 this one starts at t=%ss)"
                (fault_target_str ir target) (Spec.span_str f1.f_span)
                (Json.float_str (Time.to_float_s e1))
                (Json.float_str (Time.to_float_s s2));
            scan rest
        | [ _ ] | [] -> ()
      in
      scan sorted)
    by_target;
  (* 8. reachability: every source must reach its destination, and the
     destination must reach every source (the feedback path) *)
  Array.iter
    (fun g ->
      let back = dist_to ir ~dst:g.g_dst in
      (* forward from dst = backward over the graph with all edges reversed;
         reuse dist_to on a reversed view by swapping src/dst *)
      let rev_ir =
        { ir with
          ir_edges = Array.map (fun e -> { e with e_src = e.e_dst; e_dst = e.e_src }) ir.ir_edges }
      in
      let fwd = dist_to rev_ir ~dst:g.g_dst in
      Array.iter
        (fun s ->
          if back.(s) = max_int then
            err "unreachable" g.g_span "flow group %S: source %S cannot reach %S" g.g_name
              (node_name ir s) (node_name ir g.g_dst);
          if fwd.(s) = max_int then
            err "unreachable" g.g_span "flow group %S: %S cannot reach source %S (no feedback path)"
              g.g_name (node_name ir g.g_dst) (node_name ir s))
        g.g_srcs)
    groups;
  (* 9. capacity sanity: the inelastic floor routed over each link must fit *)
  let floor_demand = Array.make (Stdlib.max 1 (Array.length edges)) 0. in
  Array.iter
    (fun g ->
      let f = app_floor_bps g.g_app in
      if f > 0. then begin
        let dist = dist_to ir ~dst:g.g_dst in
        Array.iter
          (fun s ->
            match route ir dist ~src:s with
            | Some path -> List.iter (fun ei -> floor_demand.(ei) <- floor_demand.(ei) +. f) path
            | None -> ())
          g.g_srcs
      end)
    groups;
  Array.iteri
    (fun ei e ->
      if floor_demand.(ei) > e.e_bw then
        err "oversubscribed" e.e_span
          "link %S carries an inelastic floor of %s bps against %s bps capacity; lower the base \
           layer rates or raise the link"
          e.e_name (Json.float_str floor_demand.(ei)) (Json.float_str e.e_bw))
    edges;
  match List.rev !diags with [] -> Ok ir | ds -> Error ds

let check spec = match elaborate spec with Ok _ -> [] | Error ds -> ds

let elaborate_exn spec =
  match elaborate spec with
  | Ok ir -> ir
  | Error ds ->
      invalid_arg
        ("Spec check failed:\n  " ^ String.concat "\n  " (List.map diag_str ds))

(* ---- compiled-topology summary (cm_expt spec --dump) -------------------- *)

let elastic_counts ir =
  let counts = Array.make (Stdlib.max 1 (Array.length ir.ir_edges)) 0 in
  Array.iter
    (fun g ->
      let dist = dist_to ir ~dst:g.g_dst in
      Array.iter
        (fun s ->
          match route ir dist ~src:s with
          | Some path -> List.iter (fun ei -> counts.(ei) <- counts.(ei) + 1) path
          | None -> ())
        g.g_srcs)
    ir.ir_groups;
  counts

let summary_json ir =
  let open Json in
  let hosts = Array.to_list ir.ir_nodes |> List.filter (fun n -> n.n_kind = Spec.Host) in
  let routers = Array.length ir.ir_nodes - List.length hosts in
  let total_bw = Array.fold_left (fun acc e -> acc +. e.e_bw) 0. ir.ir_edges in
  let counts = elastic_counts ir in
  (* busiest links by forward flow count; capped so huge client fan-outs
     stay readable *)
  let busiest =
    Array.to_list (Array.mapi (fun ei e -> (counts.(ei), e)) ir.ir_edges)
    |> List.filter (fun (c, _) -> c > 0)
    |> List.sort (fun (c, e) (c', e') ->
           match compare c' c with 0 -> compare e.e_name e'.e_name | o -> o)
    |> fun l -> List.filteri (fun i _ -> i < 12) l
  in
  let group_json g =
    Obj
      [
        ("name", Str g.g_name);
        ("sources", Int (Array.length g.g_srcs));
        ("dst", Str (node_name ir g.g_dst));
        ("port", Int g.g_port);
        ( "app",
          Str
            (match g.g_app with
            | Spec.Bulk { bytes } -> Printf.sprintf "bulk:%dB" bytes
            | Spec.Web_fetch { object_bytes; count; _ } ->
                Printf.sprintf "web_fetch:%dB x%d" object_bytes count
            | Spec.Layered { layers; _ } ->
                Printf.sprintf "layered:%d layers <=%s bps" (Array.length layers)
                  (Json.float_str layers.(Array.length layers - 1))) );
        ("start_s", Float (Time.to_float_s g.g_start));
        ("stagger_s", Float (Time.to_float_s g.g_stagger));
        ("stop_s", match g.g_stop with Some s -> Float (Time.to_float_s s) | None -> Null);
      ]
  in
  let fault_json f =
    let window = step_window f.f_at f.f_action in
    Obj
      [
        ("target", Str (fault_target_name ir f.f_target));
        ("at_s", Float (Time.to_float_s f.f_at));
        ( "kind",
          Str
            (match f.f_action with
            | Scenario.Set_bandwidth _ -> "set_bandwidth"
            | Scenario.Ramp_bandwidth _ -> "ramp_bandwidth"
            | Scenario.Set_loss _ -> "set_loss"
            | Scenario.Loss_burst _ -> "loss_burst"
            | Scenario.Outage _ -> "outage"
            | Scenario.Flap _ -> "flap"
            | Scenario.Delay_spike _ -> "delay_spike"
            | Scenario.Control_fault _ -> "control_fault") );
        ("clears_s", match window with Some (_, e) -> Float (Time.to_float_s e) | None -> Null);
      ]
  in
  Obj
    [
      ("hosts", Int (List.length hosts));
      ("routers", Int routers);
      ("links", Int (Array.length ir.ir_edges));
      ("flow_groups", Int (Array.length ir.ir_groups));
      ("flows", Int (Array.fold_left (fun acc g -> acc + Array.length g.g_srcs) 0 ir.ir_groups));
      ("faults", Int (Array.length ir.ir_faults));
      ("total_link_bps", Float total_bw);
      ( "busiest_links",
        List
          (List.map
             (fun (c, e) ->
               Obj
                 [
                   ("link", Str e.e_name);
                   ("flows", Int c);
                   ("bandwidth_bps", Float e.e_bw);
                   ( "oversubscription",
                     Float (float_of_int c) );
                 ])
             busiest) );
      ("groups", List (Array.to_list (Array.map group_json ir.ir_groups)));
      ("fault_steps", List (Array.to_list (Array.map fault_json ir.ir_faults)));
    ]
