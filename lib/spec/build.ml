open Eventsim
open Netsim
module Scenario = Cm_dynamics.Scenario

(* Stage 2 of the spec pipeline: instantiate a checked IR into live
   netsim objects (declaration order, so construction is reproducible)
   and project its fault steps into a Scenario program.

   Byte-parity contract with the hand-built Topology.pipe: hosts then
   links are created in declaration order with identical parameters, the
   run rng is merely *stored* by links (never drawn while loss/reorder/
   jitter are off), and routing attaches the same Link.send closures —
   so a spec describing a pipe compiles to an indistinguishable
   simulation. *)

type node_impl = Host_impl of Host.t | Router_impl of Router.t

type t = {
  engine : Engine.t;
  ir : Check.ir;
  impls : node_impl array;
  links : Link.t array;
}

let instantiate ?costs ?rng engine (ir : Check.ir) =
  let impls =
    Array.map
      (fun (n : Check.node) ->
        match n.Check.n_kind with
        | Spec.Host -> Host_impl (Host.create engine ~id:n.Check.n_addr ?costs ())
        | Spec.Router -> Router_impl (Router.create ()))
      ir.Check.ir_nodes
  in
  let links =
    Array.map
      (fun (e : Check.edge) ->
        let sink =
          match impls.(e.Check.e_dst) with
          | Host_impl h -> fun pkt -> Host.deliver h pkt
          | Router_impl r -> Router.forward r
        in
        Link.create engine ~bandwidth_bps:e.Check.e_bw ~delay:e.Check.e_lat
          ~qdisc:(Queue_disc.droptail ~limit_pkts:e.Check.e_queue ())
          ?rng ~sink ())
      ir.Check.ir_edges
  in
  (* hosts: the single out-link (multihoming was rejected statically) *)
  Array.iteri
    (fun i impl ->
      match (impl, ir.Check.ir_out.(i)) with
      | Host_impl h, ei :: _ -> Host.attach_route h (Link.send links.(ei))
      | Host_impl _, [] | Router_impl _, _ -> ())
    impls;
  (* routers: one backward BFS per destination host; next_hop uses the
     same first-declared-edge tie-break the checker's route function
     reports, so reachability and installed routes cannot disagree *)
  Array.iteri
    (fun dst (n : Check.node) ->
      if n.Check.n_kind = Spec.Host then begin
        let dist = Check.dist_to ir ~dst in
        Array.iteri
          (fun u impl ->
            match impl with
            | Router_impl r -> (
                match Check.next_hop ir dist u with
                | Some ei -> Router.add_route r ~dst:n.Check.n_addr (Link.send links.(ei))
                | None -> ())
            | Host_impl _ -> ())
          impls
      end)
    ir.Check.ir_nodes;
  { engine; ir; impls; links }

let node_index t name =
  let idx = ref None in
  Array.iteri
    (fun i (n : Check.node) -> if n.Check.n_name = name then idx := Some i)
    t.ir.Check.ir_nodes;
  match !idx with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Build: unknown node %S" name)

let host t name =
  match t.impls.(node_index t name) with
  | Host_impl h -> h
  | Router_impl _ -> invalid_arg (Printf.sprintf "Build: %S is a router, not a host" name)

let link t name =
  let idx = ref None in
  Array.iteri
    (fun i (e : Check.edge) -> if e.Check.e_name = name then idx := Some i)
    t.ir.Check.ir_edges;
  match !idx with
  | Some i -> t.links.(i)
  | None -> invalid_arg (Printf.sprintf "Build: unknown link %S" name)

let links_alist t =
  Array.to_list
    (Array.mapi (fun i (e : Check.edge) -> (e.Check.e_name, t.links.(i))) t.ir.Check.ir_edges)

let scenario ~name (ir : Check.ir) =
  Scenario.make ~name
    (Array.to_list
       (Array.map
          (fun (f : Check.fault) ->
            let target =
              match f.Check.f_target with
              | Check.On_link ei -> ir.Check.ir_edges.(ei).Check.e_name
              | Check.On_host ni -> ir.Check.ir_nodes.(ni).Check.n_name
            in
            { Scenario.at = f.Check.f_at; target; action = f.Check.f_action })
          ir.Check.ir_faults))

(* Hosts named as Control_fault targets, in declaration order.  Injector
   filters must be registered before any agent filter that consumes
   control traffic, so call this right after [instantiate], before
   installing Cmproto agents. *)
let control_injectors t ~classify =
  let wanted = Hashtbl.create 4 in
  Array.iter
    (fun (f : Check.fault) ->
      match f.Check.f_target with
      | Check.On_host ni -> Hashtbl.replace wanted ni ()
      | Check.On_link _ -> ())
    t.ir.Check.ir_faults;
  let acc = ref [] in
  Array.iteri
    (fun i (n : Check.node) ->
      if Hashtbl.mem wanted i then
        match t.impls.(i) with
        | Host_impl h ->
            acc :=
              (n.Check.n_name, Cm_dynamics.Control_faults.install h ~classify) :: !acc
        | Router_impl _ -> () (* rejected statically *))
    t.ir.Check.ir_nodes;
  List.rev !acc
