(** Final stage of the spec pipeline: flow groups → running applications.

    {!run} schedules every flow of every group on the build's engine —
    deterministically, in declaration order, flow [i] starting at
    [start + i*stagger] — and returns a handle per group to read
    results from after the run:

    - [Bulk] groups launch one {!Cm_apps.Bulk.tcp_push} per source on
      ports [port], [port+1], … (whole 8 KiB buffers, byte count rounded
      up);
    - [Web_fetch] groups share one {!Cm_apps.Web.server} per
      [(dst, port)] and run {!Cm_apps.Web.sequential_fetches} per source;
    - [Layered] groups bind a per-flow echo receiver on ports [port+i]
      and drive a {!Cm_apps.Layered} source, stopped at the group's
      [stop] time if given. *)

open Cm_util
open Netsim

type outcome =
  | Pending  (** Launched (or scheduled) but not finished. *)
  | Bulk_done of { at : Time.t; result : Cm_apps.Bulk.result }
  | Fetched of { at : Time.t; fetches : Cm_apps.Web.fetch_result list }
  | Streaming of Cm_apps.Layered.t

type running = { rg : Check.group; outcomes : outcome array }

val run :
  Build.t ->
  driver_for:(Host.t -> Tcp.Conn.driver option) ->
  ?libcm_for:(Host.t -> Libcm.t) ->
  unit ->
  running list
(** [driver_for] supplies the TCP driver per host ([None] = stock TCP);
    it is consulted for web servers (the data sender) as well as
    connecting clients.  [libcm_for] is required if any group runs a
    layered app — typically a memoized per-host [Libcm.create].  Raises
    [Invalid_argument] if it's missing for a layered group. *)

val done_count : running -> int
(** Finished bounded flows (bulk transfers and fetch sequences). *)

val find : running list -> string -> running
(** Look up a group by name. *)
