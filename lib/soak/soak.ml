open Cm_util
open Eventsim
open Netsim
module Spec = Cm_spec.Spec
module Check = Cm_spec.Check
module Build = Cm_spec.Build
module Launch = Cm_spec.Launch
module Scenario = Cm_dynamics.Scenario
module Control_faults = Cm_dynamics.Control_faults

(* Seeded chaos-soak harness: a fuzzer that draws a well-formed random
   spec (dumbbell topology + bulk flows, the qcheck generator shape from
   the spec test suite) composed with random network, control-plane and
   application fault schedules, runs it with the CM fully defended under
   a battery of invariant oracles, and — when an oracle breaks — shrinks
   the case to a minimal configuration and prints a one-line reproducer
   ([cm_expt soak --seed N]).

   The oracles are structural, not statistical: the auditor sweep (which
   includes window conservation and the grant-ledger skew), flow/timer
   leak checks after teardown, an engine-flood bound, and run-twice byte
   determinism of a digest covering every counter that matters.  The
   [--canary] mode re-introduces a grant leak behind
   {!Cm.Macroflow.canary_grant_leak} to prove the pipeline catches a
   real accounting bug. *)

(* ---- case configuration ------------------------------------------------- *)

type net_fault = { nf_at_s : float; nf_dur_s : float; nf_kind : int }

type ctrl_fault = {
  cf_at_s : float;
  cf_dur_s : float;
  cf_drop : float;
  cf_dup : float;
  cf_jitter_ms : int;
}

type cfg = {
  c_seed : int;
  c_n_l : int;  (** left-side hosts (bulk sources) *)
  c_bw_mbps : int;
  c_lat_ms : int;
  c_queue : int;
  c_bulk_kb : int;
  c_duration_s : float;
  c_net_faults : net_fault list;  (** on the bottleneck, spaced to never overlap *)
  c_ctrl_fault : ctrl_fault option;  (** on the cmproto sender host *)
  c_crash_restart : bool;  (** receiver-agent crash/restart mid-run *)
  c_hoard_crash : bool;  (** a libcm flow hoards grants then dies *)
}

(* The generator mirrors the spec suite's well-formed dumbbell shape:
   everything it can draw must elaborate clean, so "spec checks clean" is
   itself an oracle. *)
let gen_cfg seed =
  QCheck.Gen.(
    let* n_l = int_range 1 3 in
    let* bw_mbps = int_range 4 40 in
    let* lat_ms = int_range 1 25 in
    let* queue = int_range 10 100 in
    let* bulk_kb = int_range 8 128 in
    let* duration_s = int_range 8 14 in
    let* n_net = int_range 0 2 in
    let* kinds = list_repeat n_net (int_range 0 2) in
    let* has_ctrl = bool in
    let* drop10 = int_range 2 9 in
    let* dup10 = int_range 0 3 in
    let* jitter_ms = int_range 0 25 in
    let* crash_restart = bool in
    let* hoard_crash = bool in
    return
      {
        c_seed = seed;
        c_n_l = n_l;
        c_bw_mbps = bw_mbps;
        c_lat_ms = lat_ms;
        c_queue = queue;
        c_bulk_kb = bulk_kb;
        c_duration_s = float_of_int duration_s;
        c_net_faults =
          List.mapi
            (fun i kind ->
              { nf_at_s = 1. +. (4. *. float_of_int i); nf_dur_s = 1.5; nf_kind = kind })
            kinds;
        c_ctrl_fault =
          (if has_ctrl then
             Some
               {
                 cf_at_s = 3.;
                 cf_dur_s = 3.;
                 cf_drop = float_of_int drop10 /. 10.;
                 cf_dup = float_of_int dup10 /. 10.;
                 cf_jitter_ms = jitter_ms;
               }
           else None);
        c_crash_restart = crash_restart;
        c_hoard_crash = hoard_crash;
      })

let cfg_of_seed seed =
  QCheck.Gen.generate1 ~rand:(Random.State.make [| seed |]) (gen_cfg seed)

let lhost_names c = List.init c.c_n_l (Printf.sprintf "l%d")

let spec_of_cfg c =
  let lhosts = lhost_names c in
  let bw = float_of_int c.c_bw_mbps *. 1e6 in
  let lat = Time.ms c.c_lat_ms in
  let queue = c.c_queue in
  let net_steps =
    List.map
      (fun nf ->
        let at = Time.sec nf.nf_at_s in
        let dur = Time.sec nf.nf_dur_s in
        match nf.nf_kind with
        | 0 -> (at, Scenario.Outage dur)
        | 1 ->
            (at, Scenario.Loss_burst { spec = Scenario.Loss_bernoulli 0.08; duration = dur })
        | _ ->
            ( at,
              Scenario.Delay_spike { extra = Time.ms 30; jitter = Time.ms 5; duration = dur }
            ))
      c.c_net_faults
  in
  let ctrl_steps =
    match c.c_ctrl_fault with
    | None -> []
    | Some cf ->
        [
          ( Time.sec cf.cf_at_s,
            Scenario.Control_fault
              {
                profile =
                  {
                    Control_faults.drop = cf.cf_drop;
                    dup = cf.cf_dup;
                    delay = 0;
                    jitter = Time.ms cf.cf_jitter_ms;
                  };
                duration = Time.sec cf.cf_dur_s;
              } );
        ]
  in
  Spec.(
    par
      ([
         par (List.map node lhosts);
         node "r0";
         router "x";
         router "y";
         par (List.map (fun h -> duplex ~queue ~bw ~lat h "x") lhosts);
         duplex ~name:"bottleneck" ~queue ~bw ~lat "x" "y";
         duplex ~queue ~bw ~lat "y" "r0";
         flows ~name:"bulk" ~src:lhosts ~dst:"r0" ~port:5000
           ~app:(bulk ~bytes:(c.c_bulk_kb * 1024))
           ~start:(Time.ms 200) ~stagger:(Time.ms 50) ();
       ]
      @ (match net_steps with [] -> [] | steps -> [ faults ~target:"bottleneck" steps ])
      @ match ctrl_steps with [] -> [] | steps -> [ faults ~target:"l0" steps ]))

(* ---- one run under the oracles ------------------------------------------ *)

type outcome = { o_failures : string list; o_digest : string }

let session_packet = 1000
let session_window = 32

let run_one ?(canary = false) c =
  let hoard_crash = c.c_hoard_crash || canary in
  Cm.Macroflow.canary_grant_leak := canary;
  Fun.protect ~finally:(fun () -> Cm.Macroflow.canary_grant_leak := false) @@ fun () ->
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> if not (List.mem s !failures) then failures := !failures @ [ s ]) fmt in
  match Check.elaborate (spec_of_cfg c) with
  | Error ds ->
      List.iter (fun d -> fail "elaborate: %s" (Check.diag_str d)) ds;
      { o_failures = !failures; o_digest = "" }
  | Ok ir ->
      let engine = Engine.create () in
      let rng = Rng.create ~seed:c.c_seed in
      let net = Build.instantiate ~rng engine ir in
      (* control injectors before any control-consuming agent filter *)
      let controls = Build.control_injectors net ~classify:Cmproto.is_control in
      let sc = Build.scenario ~name:"soak" ir in
      Scenario.compile engine ~rng:(Rng.split rng) ~links:(Build.links_alist net) ~controls sc;
      (* one defended CM per host, creation order recorded for the sweep *)
      let cms = Hashtbl.create 8 in
      let cm_order = ref [] in
      let cm_for host =
        match Hashtbl.find_opt cms (Host.id host) with
        | Some cm -> cm
        | None ->
            let cm =
              Cm.create engine ~feedback_watchdog:Cm.Macroflow.default_watchdog
                ~auditor:Cm.default_auditor ()
            in
            Cm.attach cm host;
            Hashtbl.replace cms (Host.id host) cm;
            cm_order := !cm_order @ [ cm ];
            cm
      in
      let l0 = Build.host net "l0" in
      let r0 = Build.host net "r0" in
      let cm = cm_for l0 in
      let agent = Cmproto.Sender_agent.install l0 cm in
      let receiver = Cmproto.Receiver_agent.install r0 ~ack_every:2 () in
      let session =
        Cmproto.Session.create agent ~host:l0 ~cm
          ~dst:(Addr.endpoint ~host:(Host.id r0) ~port:7000)
          ~queue_limit_pkts:(session_window * 2) ()
      in
      let pump =
        Timer.create engine ~callback:(fun () ->
            while Cmproto.Session.queued session < session_window do
              Cmproto.Session.send session session_packet
            done)
      in
      Timer.start_periodic pump (Time.ms 5);
      let duration = Time.sec c.c_duration_s in
      (* receiver-agent crash/restart (control-plane state loss) *)
      if c.c_crash_restart then begin
        ignore
          (Engine.schedule_at engine
             (Time.sec (0.4 *. c.c_duration_s))
             (fun () -> Cmproto.Receiver_agent.crash receiver));
        ignore
          (Engine.schedule_at engine
             (Time.sec (0.55 *. c.c_duration_s))
             (fun () -> Cmproto.Receiver_agent.restart receiver))
      end;
      (* app fault: a libcm flow that hoards every grant, then its process
         dies — the close path must return (or, under the canary, leak)
         the hoard *)
      let hoard_fid = ref None in
      if hoard_crash then begin
        let hoard_at = Time.sec (0.35 *. c.c_duration_s) in
        ignore
          (Engine.schedule_at engine hoard_at (fun () ->
               let lib = Libcm.create l0 cm () in
               let socket = Udp.Socket.create l0 () in
               let dst = Addr.endpoint ~host:(Host.id r0) ~port:7100 in
               Udp.Socket.connect socket dst;
               let key = Addr.flow ~src:(Udp.Socket.local socket) ~dst ~proto:Addr.Udp () in
               let fid = Libcm.open_flow lib key in
               hoard_fid := Some fid;
               Libcm.register_send lib fid (fun _ -> () (* sit on the grant *));
               for _ = 1 to 16 do
                 Libcm.request lib fid
               done;
               ignore
                 (Engine.schedule_after engine (Time.ms 300) (fun () ->
                      Libcm.destroy lib;
                      Udp.Socket.close socket))))
      end;
      (* bulk workload from the spec's flow groups *)
      let running =
        Launch.run net ~driver_for:(fun h -> Some (Tcp.Conn.Cm_driven (cm_for h))) ()
      in
      (* oracle: auditor sweep every 500 ms across every CM *)
      let audit_runs = ref 0 in
      let rec audit () =
        incr audit_runs;
        List.iter
          (fun cm ->
            let rep = Cm.Audit.run cm in
            List.iter (fun v -> fail "audit: %s" v) rep.Cm.Audit.violations)
          !cm_order;
        ignore (Engine.schedule_after engine (Time.ms 500) audit)
      in
      ignore (Engine.schedule_at engine (Time.ms 250) audit);
      Engine.run_for engine duration;
      (* teardown, then a grace window for in-flight events to settle *)
      Timer.stop pump;
      Cmproto.Session.close session;
      let session_fid = Cmproto.Session.flow session in
      Engine.run_for engine (Time.sec 2.);
      (* oracle: final audit, every CM *)
      List.iter
        (fun cm ->
          let rep = Cm.Audit.run cm in
          List.iter (fun v -> fail "audit: %s" v) rep.Cm.Audit.violations)
        !cm_order;
      (* oracle: closed flows must leave the flow table *)
      if List.mem session_fid (Cm.flows cm) then
        fail "flow-leak: cmproto session flow %d still open after close" session_fid;
      (match !hoard_fid with
      | Some fid when List.mem fid (Cm.flows cm) ->
          fail "flow-leak: destroyed hoarder flow %d still open" fid
      | _ -> ());
      (* oracle: the engine must not flood — a runaway timer or event loop
         shows up as unbounded pending work after teardown *)
      let pending = Engine.pending engine in
      if pending > 512 then fail "engine-flood: %d events pending after teardown" pending;
      (* digest: every counter that matters, in deterministic order — the
         run-twice oracle byte-compares two of these *)
      let bstats = Link.stats (Build.link net "bottleneck") in
      let cm_digest =
        String.concat ";"
          (List.map
             (fun cm ->
               let t = Cm.counters cm in
               Printf.sprintf "o%dc%dg%du%dn%dq%dr%d" t.Cm.opens t.Cm.closes t.Cm.grants
                 t.Cm.updates t.Cm.notifies t.Cm.quarantines t.Cm.reaps)
             !cm_order)
      in
      let d = Cmproto.Sender_agent.counters agent in
      let digest =
        Printf.sprintf
          "sent=%d/%dB fb=%d dup=%d stale=%d echo=%d rsy=%d sol=%d rx=%d/%d drop=%d link=%d/%d \
           done=%s cms=[%s] audits=%d pend=%d"
          (Cmproto.Session.packets_sent session)
          (Cmproto.Session.bytes_sent session)
          d.Cmproto.Sender_agent.feedback_received d.Cmproto.Sender_agent.dup_feedback
          d.Cmproto.Sender_agent.stale_feedback d.Cmproto.Sender_agent.bad_echoes
          d.Cmproto.Sender_agent.resyncs
          (Cmproto.Session.solicits_sent session)
          (Cmproto.Receiver_agent.data_seen receiver)
          (Cmproto.Receiver_agent.feedback_sent receiver)
          (Cmproto.Receiver_agent.dropped_while_down receiver)
          bstats.Link.delivered_pkts bstats.Link.queue_drops
          (String.concat "," (List.map (fun r -> string_of_int (Launch.done_count r)) running))
          cm_digest !audit_runs pending
      in
      { o_failures = !failures; o_digest = digest }

(* ---- shrinking ----------------------------------------------------------- *)

(* Greedy structural shrink: try dropping whole fault elements first,
   then scale the workload down; adopt any candidate that still fails and
   repeat until the case is locally minimal or the run budget is spent. *)
let shrink_candidates c =
  let drop_nth l n = List.filteri (fun i _ -> i <> n) l in
  List.concat
    [
      List.init (List.length c.c_net_faults) (fun i ->
          { c with c_net_faults = drop_nth c.c_net_faults i });
      (match c.c_ctrl_fault with Some _ -> [ { c with c_ctrl_fault = None } ] | None -> []);
      (if c.c_crash_restart then [ { c with c_crash_restart = false } ] else []);
      (if c.c_hoard_crash then [ { c with c_hoard_crash = false } ] else []);
      (if c.c_n_l > 1 then [ { c with c_n_l = c.c_n_l - 1 } ] else []);
      (if c.c_bulk_kb > 8 then [ { c with c_bulk_kb = c.c_bulk_kb / 2 } ] else []);
      (if c.c_duration_s > 8. then [ { c with c_duration_s = 8. } ] else []);
    ]

let still_fails ?canary c =
  let a = run_one ?canary c in
  a.o_failures <> []
  ||
  let b = run_one ?canary c in
  a.o_digest <> b.o_digest

let shrink ?canary c =
  let budget = ref 24 in
  let rec go c =
    let next =
      List.find_opt
        (fun cand ->
          if !budget <= 0 then false
          else begin
            decr budget;
            still_fails ?canary cand
          end)
        (shrink_candidates c)
    in
    match next with Some c' -> go c' | None -> c
  in
  go c

(* ---- driver -------------------------------------------------------------- *)

type failure = {
  f_seed : int;
  f_cfg : cfg;
  f_shrunk : cfg;
  f_failures : string list;  (** oracle breaches of the original case *)
}

let run_seed ?(canary = false) seed =
  let cfg = cfg_of_seed seed in
  let a = run_one ~canary cfg in
  let failures =
    if a.o_failures <> [] then a.o_failures
    else
      let b = run_one ~canary cfg in
      if a.o_digest <> b.o_digest then [ "run-twice-determinism: digests differ" ] else []
  in
  if failures = [] then None
  else Some { f_seed = seed; f_cfg = cfg; f_shrunk = shrink ~canary cfg; f_failures = failures }

let repro_line ?(canary = false) f =
  Printf.sprintf "REPRO: cm_expt soak --seed %d%s" f.f_seed (if canary then " --canary" else "")

let cfg_json c =
  let open Json in
  Obj
    [
      ("seed", Int c.c_seed);
      ("left_hosts", Int c.c_n_l);
      ("bw_mbps", Int c.c_bw_mbps);
      ("lat_ms", Int c.c_lat_ms);
      ("queue_pkts", Int c.c_queue);
      ("bulk_kb", Int c.c_bulk_kb);
      ("duration_s", Float c.c_duration_s);
      ( "net_faults",
        List
          (List.map
             (fun nf ->
               Obj
                 [
                   ("at_s", Float nf.nf_at_s);
                   ("duration_s", Float nf.nf_dur_s);
                   ( "kind",
                     Str
                       (match nf.nf_kind with
                       | 0 -> "outage"
                       | 1 -> "loss_burst"
                       | _ -> "delay_spike") );
                 ])
             c.c_net_faults) );
      ( "control_fault",
        match c.c_ctrl_fault with
        | None -> Null
        | Some cf ->
            Obj
              [
                ("at_s", Float cf.cf_at_s);
                ("duration_s", Float cf.cf_dur_s);
                ("drop", Float cf.cf_drop);
                ("dup", Float cf.cf_dup);
                ("jitter_ms", Int cf.cf_jitter_ms);
              ] );
      ("crash_restart", Bool c.c_crash_restart);
      ("hoard_crash", Bool c.c_hoard_crash);
    ]

let failure_json ?(canary = false) f =
  let open Json in
  Obj
    [
      ("seed", Int f.f_seed);
      ("canary", Bool canary);
      ("failures", List (List.map (fun s -> Str s) f.f_failures));
      ("config", cfg_json f.f_cfg);
      ("shrunk", cfg_json f.f_shrunk);
    ]
