(** Seeded chaos-soak harness ([cm_expt soak]).

    A fuzzer that derives a well-formed random spec from a seed — the
    dumbbell shape of the spec test suite's qcheck generator — composed
    with random network faults (outage / loss burst / delay spike on the
    bottleneck), a control-plane fault (seeded drop/dup/jitter on the
    cmproto sender's feedback traffic), a receiver-agent crash/restart,
    and an application fault (a libcm flow that hoards grants and dies),
    then runs it with the CM fully defended under invariant oracles:

    - the spec elaborates with no diagnostics;
    - {!Cm.Audit.run} sweeps every CM each 500 ms and once after
      teardown — window conservation, grant-ledger skew, flow-table
      consistency;
    - closed/destroyed flows leave the flow table (flow-leak oracle);
    - bounded engine backlog after teardown (timer/event-leak oracle);
    - run-twice byte-determinism of a digest over every counter.

    On failure the configuration is shrunk greedily (drop fault elements,
    then scale the workload down) to a locally minimal case, and a
    one-line reproducer is printed: [REPRO: cm_expt soak --seed N].

    [--canary] re-introduces a grant leak via
    {!Cm.Macroflow.canary_grant_leak}; the audit skew oracle must catch
    it (a mutation test of the whole pipeline).  Every draw and every
    run is keyed only by the seed. *)

type net_fault = { nf_at_s : float; nf_dur_s : float; nf_kind : int }
(** [nf_kind]: 0 = outage, 1 = loss burst, 2 = delay spike. *)

type ctrl_fault = {
  cf_at_s : float;
  cf_dur_s : float;
  cf_drop : float;
  cf_dup : float;
  cf_jitter_ms : int;
}

type cfg = {
  c_seed : int;
  c_n_l : int;
  c_bw_mbps : int;
  c_lat_ms : int;
  c_queue : int;
  c_bulk_kb : int;
  c_duration_s : float;
  c_net_faults : net_fault list;
  c_ctrl_fault : ctrl_fault option;
  c_crash_restart : bool;
  c_hoard_crash : bool;
}

val cfg_of_seed : int -> cfg
(** Deterministic draw: same seed, same configuration. *)

val spec_of_cfg : cfg -> Cm_spec.Spec.t
(** The dumbbell spec (hosts [l0..], routers [x]/[y], sink [r0], named
    bottleneck) with the configuration's fault schedule attached. *)

type outcome = { o_failures : string list; o_digest : string }

val run_one : ?canary:bool -> cfg -> outcome
(** One full simulation under the oracles.  [o_failures] is empty on a
    clean run; [o_digest] is the determinism digest (byte-compared by
    {!run_seed}'s second run). *)

type failure = {
  f_seed : int;
  f_cfg : cfg;
  f_shrunk : cfg;
  f_failures : string list;
}

val run_seed : ?canary:bool -> int -> failure option
(** Draw the seed's configuration, run it twice (oracles + determinism),
    and on any breach shrink to a minimal failing configuration.
    [None] means the seed is clean. *)

val repro_line : ?canary:bool -> failure -> string
val cfg_json : cfg -> Cm_util.Json.t
val failure_json : ?canary:bool -> failure -> Cm_util.Json.t
