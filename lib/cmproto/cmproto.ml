open Cm_util
open Eventsim
open Netsim

let header_bytes = 8

type Packet.payload +=
  | Data of { seq : int; ts : Time.t; inner : Packet.payload }
  | Feedback of {
      data_flow : Addr.flow;
      epoch : int;
      fb_seq : int;
      max_seq : int;
      total_count : int;
      total_bytes : int;
      ts_echo : Time.t;
    }
  | Resync of { data_flow : Addr.flow; epoch : int }
  | Solicit of { data_flow : Addr.flow }

let unwrap = function Data { inner; _ } -> inner | p -> p

let is_control pkt =
  match pkt.Packet.payload with
  | Feedback _ | Resync _ | Solicit _ -> true
  | _ -> false

(* feedback packets travel host-to-host on a reserved flow; they are
   consumed by the sender agent's receive filter and never demultiplexed *)
let feedback_flow ~from_host ~to_host =
  Addr.flow
    ~src:(Addr.endpoint ~host:from_host ~port:0)
    ~dst:(Addr.endpoint ~host:to_host ~port:0)
    ~proto:Addr.Udp ()

let feedback_wire_bytes = 40
let control_wire_bytes = 16

(* Escape hatch for the bench harness only: with hardening off the sender
   agent applies feedback deltas without the duplicate/stale/epoch/echo
   guards, which is what the overhead measurement compares against. *)
let hardening = ref true
let set_hardening b = hardening := b

(* ------------------------------------------------------------------ *)

module Receiver_agent = struct
  type flow_state = {
    mutable pending_count : int;
    mutable total_count : int; (* cumulative this epoch *)
    mutable total_bytes : int;
    mutable max_seq : int;
    mutable ts_latest : Time.t;
    mutable fb_seq : int;
    timer : Timer.t;
  }

  type t = {
    host : Host.t;
    ack_every : int;
    max_delay : Time.span;
    flows : flow_state Addr.Flow_table.t;
    mutable epoch : int; (* incarnation; bumped on restart *)
    mutable up : bool;
    mutable feedback_sent : int;
    mutable data_seen : int;
    mutable dropped_while_down : int;
    mutable resyncs_sent : int;
  }

  (* Feedback carries *cumulative* per-epoch totals under a per-flow
     feedback sequence number: any single feedback packet supersedes every
     earlier one, so the sender can drop duplicates and reordered
     stragglers without losing information. *)
  let flush ?(force = false) t data_flow st =
    if st.pending_count > 0 || force then begin
      let ts_echo = if st.pending_count > 0 then st.ts_latest else 0 in
      st.fb_seq <- st.fb_seq + 1;
      let pkt =
        Packet.make
          ~now:(Engine.now (Host.engine t.host))
          ~flow:(feedback_flow ~from_host:(Host.id t.host) ~to_host:data_flow.Addr.src.Addr.host)
          ~payload_bytes:feedback_wire_bytes
          (Feedback
             {
               data_flow;
               epoch = t.epoch;
               fb_seq = st.fb_seq;
               max_seq = st.max_seq;
               total_count = st.total_count;
               total_bytes = st.total_bytes;
               ts_echo;
             })
      in
      st.pending_count <- 0;
      Timer.stop st.timer;
      t.feedback_sent <- t.feedback_sent + 1;
      Host.ip_output t.host pkt
    end

  let send_resync t data_flow =
    t.resyncs_sent <- t.resyncs_sent + 1;
    let pkt =
      Packet.make
        ~now:(Engine.now (Host.engine t.host))
        ~flow:(feedback_flow ~from_host:(Host.id t.host) ~to_host:data_flow.Addr.src.Addr.host)
        ~payload_bytes:control_wire_bytes
        (Resync { data_flow; epoch = t.epoch })
    in
    Host.ip_output t.host pkt

  let state_for t data_flow ~first_seq =
    match Addr.Flow_table.find_opt t.flows data_flow with
    | Some st -> st
    | None ->
        let rec st =
          lazy
            {
              pending_count = 0;
              total_count = 0;
              total_bytes = 0;
              max_seq = -1;
              ts_latest = 0;
              fb_seq = 0;
              timer =
                Timer.create (Host.engine t.host) ~callback:(fun () ->
                    flush t data_flow (Lazy.force st));
            }
        in
        let st = Lazy.force st in
        Addr.Flow_table.replace t.flows data_flow st;
        (* a flow whose first packet arrives mid-stream means our state
           for it is gone (this agent restarted): tell the sending CM to
           discard its per-flow picture instead of waiting on
           acknowledgments that will never come *)
        if first_seq > 0 then send_resync t data_flow;
        st

  let on_data t pkt ~seq ~ts ~inner =
    t.data_seen <- t.data_seen + 1;
    let data_flow = pkt.Packet.flow in
    let st = state_for t data_flow ~first_seq:seq in
    st.pending_count <- st.pending_count + 1;
    st.total_count <- st.total_count + 1;
    (* byte counts are in CM-charged payload units (header included), so
       feedback resolves exactly what cm_notify charged *)
    st.total_bytes <- st.total_bytes + Packet.payload_bytes pkt;
    if seq > st.max_seq then st.max_seq <- seq;
    st.ts_latest <- ts;
    if st.pending_count >= t.ack_every then flush t data_flow st
    else if not (Timer.is_running st.timer) then Timer.start st.timer t.max_delay;
    (* hand the unwrapped packet to the unmodified application *)
    Some { pkt with Packet.payload = inner }

  let on_solicit t data_flow =
    match Addr.Flow_table.find_opt t.flows data_flow with
    | Some st -> flush ~force:true t data_flow st
    | None ->
        (* we hold no state for the solicited flow — a crash took it, or
           the first data packet never arrived; either way the sender must
           resynchronize *)
        send_resync t data_flow

  let crash t =
    if t.up then begin
      t.up <- false;
      Addr.Flow_table.iter (fun _ st -> Timer.stop st.timer) t.flows;
      Addr.Flow_table.reset t.flows
    end

  let restart t =
    if not t.up then begin
      t.up <- true;
      t.epoch <- t.epoch + 1
    end

  let install host ?(ack_every = 2) ?(max_delay = Time.ms 100) () =
    if ack_every <= 0 then invalid_arg "Receiver_agent.install: ack_every must be positive";
    let t =
      {
        host;
        ack_every;
        max_delay;
        flows = Addr.Flow_table.create 16;
        epoch = 0;
        up = true;
        feedback_sent = 0;
        data_seen = 0;
        dropped_while_down = 0;
        resyncs_sent = 0;
      }
    in
    Host.add_rx_filter host (fun pkt ->
        match pkt.Packet.payload with
        | Data { seq; ts; inner } ->
            if t.up then on_data t pkt ~seq ~ts ~inner
            else begin
              (* no agent to strip the CM header: the wrapped packet is
                 useless to the application, i.e. lost *)
              t.dropped_while_down <- t.dropped_while_down + 1;
              None
            end
        | Solicit { data_flow } ->
            if t.up then on_solicit t data_flow;
            None
        | _ -> Some pkt);
    t

  let feedback_sent t = t.feedback_sent
  let data_seen t = t.data_seen
  let epoch t = t.epoch
  let is_up t = t.up
  let dropped_while_down t = t.dropped_while_down
  let resyncs_sent t = t.resyncs_sent
end

(* ------------------------------------------------------------------ *)

module Sender_agent = struct
  (* Per-flow feedback guard: the receiver's cumulative encoding makes
     acceptance a pure monotonicity test — accept a feedback packet iff
     its (epoch, fb_seq) advances, then apply the *delta* of its totals
     against what was already applied.  Duplicates and reordered
     stragglers carry strict subsets and are dropped whole; an epoch
     advance means the receiver agent restarted. *)
  type guard = {
    mutable g_epoch : int;
    mutable g_fb_seq : int; (* last accepted; -1 = none this epoch *)
    mutable g_max_seq : int;
    mutable g_count : int; (* cumulative totals already applied *)
    mutable g_bytes : int;
  }

  type entry = {
    on_feedback : max_seq:int -> count:int -> bytes:int -> ts_echo:Time.t -> unit;
    on_resync : unit -> unit;
    guard : guard;
  }

  type counters = {
    feedback_received : int;
    orphan_feedback : int;
    dup_feedback : int;
    stale_feedback : int;
    bad_echoes : int;
    resyncs : int;
  }

  type t = {
    host : Host.t;
    cm : Cm.t;
    entries : (Cm.Cm_types.flow_id, entry) Hashtbl.t;
    mutable feedback_received : int;
    mutable orphan : int;
    mutable dups : int;
    mutable stale : int;
    mutable bad_echoes : int;
    mutable resyncs : int;
  }

  let begin_epoch ent epoch =
    let g = ent.guard in
    g.g_epoch <- epoch;
    g.g_fb_seq <- -1;
    g.g_count <- 0;
    g.g_bytes <- 0

  let resync_entry t ent epoch =
    begin_epoch ent epoch;
    t.resyncs <- t.resyncs + 1;
    ent.on_resync ()

  let deliver t ent ~epoch ~fb_seq ~max_seq ~total_count ~total_bytes ~ts_echo =
    let g = ent.guard in
    if not !hardening then begin
      (* bench baseline: raw delta application, no defenses *)
      let count = Stdlib.max 0 (total_count - g.g_count) in
      let bytes = Stdlib.max 0 (total_bytes - g.g_bytes) in
      g.g_epoch <- epoch;
      g.g_fb_seq <- fb_seq;
      g.g_max_seq <- Stdlib.max g.g_max_seq max_seq;
      g.g_count <- total_count;
      g.g_bytes <- total_bytes;
      ent.on_feedback ~max_seq ~count ~bytes ~ts_echo
    end
    else if epoch < g.g_epoch then t.stale <- t.stale + 1
    else begin
      if epoch > g.g_epoch then
        (* the receiver agent restarted and its first announcement was the
           feedback itself (the Resync may have been lost) *)
        resync_entry t ent epoch;
      if fb_seq <= g.g_fb_seq then t.dups <- t.dups + 1
      else begin
        g.g_fb_seq <- fb_seq;
        (* reorder-safe merge: cumulative max_seq can never regress *)
        let merged = Stdlib.max g.g_max_seq max_seq in
        g.g_max_seq <- merged;
        let count = Stdlib.max 0 (total_count - g.g_count) in
        let bytes = Stdlib.max 0 (total_bytes - g.g_bytes) in
        g.g_count <- Stdlib.max g.g_count total_count;
        g.g_bytes <- Stdlib.max g.g_bytes total_bytes;
        (* ts_echo sanity clamp: an echo from the future would yield a
           negative RTT sample; count it and drop the sample (0 = none),
           never feed it to the estimator *)
        let ts_echo =
          if ts_echo > Engine.now (Host.engine t.host) then begin
            t.bad_echoes <- t.bad_echoes + 1;
            0
          end
          else ts_echo
        in
        ent.on_feedback ~max_seq:merged ~count ~bytes ~ts_echo
      end
    end

  let install host cm =
    let t =
      {
        host;
        cm;
        entries = Hashtbl.create 16;
        feedback_received = 0;
        orphan = 0;
        dups = 0;
        stale = 0;
        bad_echoes = 0;
        resyncs = 0;
      }
    in
    Host.add_rx_filter host (fun pkt ->
        match pkt.Packet.payload with
        | Feedback { data_flow; epoch; fb_seq; max_seq; total_count; total_bytes; ts_echo } ->
            t.feedback_received <- t.feedback_received + 1;
            (match Cm.lookup t.cm data_flow with
            | Some fid -> (
                match Hashtbl.find_opt t.entries fid with
                | Some ent ->
                    deliver t ent ~epoch ~fb_seq ~max_seq ~total_count ~total_bytes ~ts_echo
                | None -> t.orphan <- t.orphan + 1)
            | None -> t.orphan <- t.orphan + 1);
            None (* consumed: applications never see CM feedback *)
        | Resync { data_flow; epoch } ->
            (match Cm.lookup t.cm data_flow with
            | Some fid -> (
                match Hashtbl.find_opt t.entries fid with
                | Some ent ->
                    if epoch > ent.guard.g_epoch then resync_entry t ent epoch
                    else t.stale <- t.stale + 1
                | None -> t.orphan <- t.orphan + 1)
            | None -> t.orphan <- t.orphan + 1);
            None
        | _ -> Some pkt);
    t

  let register t fid ~on_feedback ?(on_resync = ignore) () =
    Hashtbl.replace t.entries fid
      {
        on_feedback;
        on_resync;
        guard = { g_epoch = 0; g_fb_seq = -1; g_max_seq = -1; g_count = 0; g_bytes = 0 };
      }

  let unregister t fid = Hashtbl.remove t.entries fid
  let feedback_received t = t.feedback_received
  let orphan_feedback t = t.orphan

  let counters t =
    {
      feedback_received = t.feedback_received;
      orphan_feedback = t.orphan;
      dup_feedback = t.dups;
      stale_feedback = t.stale;
      bad_echoes = t.bad_echoes;
      resyncs = t.resyncs;
    }

  let register_gauges t tel =
    Telemetry.gauge tel "cmproto.feedback_received" (fun () -> float_of_int t.feedback_received);
    Telemetry.gauge tel "cmproto.orphan_feedback" (fun () -> float_of_int t.orphan);
    Telemetry.gauge tel "cmproto.dup_feedback" (fun () -> float_of_int t.dups);
    Telemetry.gauge tel "cmproto.stale_feedback" (fun () -> float_of_int t.stale);
    Telemetry.gauge tel "cmproto.bad_echoes" (fun () -> float_of_int t.bad_echoes);
    Telemetry.gauge tel "cmproto.resyncs" (fun () -> float_of_int t.resyncs)
end

(* ------------------------------------------------------------------ *)

module Session = struct
  type t = {
    agent : Sender_agent.t;
    host : Host.t;
    cm : Cm.t;
    socket : Udp.Socket.t;
    fid : Cm.Cm_types.flow_id;
    key : Addr.flow;
    ledger : Udp.Feedback.Sender.t;
    queue : int Byte_queue.t;
    queue_limit : int;
    mutable sent_pkts : int;
    mutable sent_bytes : int;
    mutable requests_outstanding : int;
    mutable open_ : bool;
  }

  let sync_requests t =
    let want = Stdlib.min (Byte_queue.length t.queue) 256 in
    while t.requests_outstanding < want do
      t.requests_outstanding <- t.requests_outstanding + 1;
      Cm.request t.cm t.fid
    done

  let on_grant t _fid =
    t.requests_outstanding <- Stdlib.max 0 (t.requests_outstanding - 1);
    match Byte_queue.pop t.queue with
    | None -> Cm.notify t.cm t.fid ~nbytes:0
    | Some bytes ->
        let now = Engine.now (Host.engine t.host) in
        let seq = Udp.Feedback.Sender.on_transmit t.ledger ~bytes:(bytes + header_bytes) in
        t.sent_pkts <- t.sent_pkts + 1;
        t.sent_bytes <- t.sent_bytes + bytes;
        Udp.Socket.send t.socket
          ~payload_bytes:(bytes + header_bytes)
          (Data { seq; ts = now; inner = Packet.Raw bytes })

  (* Feedback has starved while data is outstanding: ask the receiver
     agent directly.  Pure control traffic on the reserved feedback flow —
     never charged by the CM, so a blackout costs a trickle of
     solicitations, not window. *)
  let solicit t =
    if t.open_ then begin
      let pkt =
        Packet.make
          ~now:(Engine.now (Host.engine t.host))
          ~flow:
            (feedback_flow ~from_host:(Host.id t.host) ~to_host:t.key.Addr.dst.Addr.host)
          ~payload_bytes:control_wire_bytes
          (Solicit { data_flow = t.key })
      in
      Host.ip_output t.host pkt
    end

  let create agent ~host ~cm ~dst ?(dscp = 0) ?port ?(queue_limit_pkts = 128) () =
    let socket = Udp.Socket.create host ~dscp ?port () in
    Udp.Socket.connect socket dst;
    let key = Addr.flow ~dscp ~src:(Udp.Socket.local socket) ~dst ~proto:Addr.Udp () in
    let fid = Cm.open_flow cm key in
    let t_ref = ref None in
    let ledger =
      Udp.Feedback.Sender.create (Host.engine host)
        ~on_report:(fun r ->
          match !t_ref with
          | Some t when t.open_ ->
              Cm.update cm fid ~nsent:r.Udp.Feedback.nsent ~nrecd:r.Udp.Feedback.nrecd
                ~loss:r.Udp.Feedback.loss ?rtt:r.Udp.Feedback.rtt ()
          | _ -> ())
        ~on_starve:(fun () -> match !t_ref with Some t -> solicit t | None -> ())
        ()
    in
    let t =
      {
        agent;
        host;
        cm;
        socket;
        fid;
        key;
        ledger;
        queue = Byte_queue.create ();
        queue_limit = queue_limit_pkts;
        sent_pkts = 0;
        sent_bytes = 0;
        requests_outstanding = 0;
        open_ = true;
      }
    in
    t_ref := Some t;
    Cm.register_send cm fid (fun fid -> on_grant t fid);
    Sender_agent.register agent fid
      ~on_feedback:(fun ~max_seq ~count ~bytes ~ts_echo ->
        Udp.Feedback.Sender.on_ack t.ledger ~max_seq ~count ~bytes ~ts_echo)
      ~on_resync:(fun () -> Udp.Feedback.Sender.resync t.ledger)
      ();
    t

  let send t bytes =
    if not t.open_ then invalid_arg "Cmproto.Session.send: session closed";
    let mtu = Cm.mtu t.cm t.fid - header_bytes in
    if bytes <= 0 || bytes > mtu then
      invalid_arg (Printf.sprintf "Cmproto.Session.send: payload must be in (0, %d]" mtu);
    if Byte_queue.length t.queue < t.queue_limit then begin
      Byte_queue.push t.queue ~size:bytes bytes;
      sync_requests t
    end

  let queued t = Byte_queue.length t.queue
  let packets_sent t = t.sent_pkts
  let bytes_sent t = t.sent_bytes
  let unresolved_packets t = Udp.Feedback.Sender.outstanding_packets t.ledger
  let solicits_sent t = Udp.Feedback.Sender.solicits t.ledger
  let flow t = t.fid

  let close t =
    if t.open_ then begin
      t.open_ <- false;
      Udp.Feedback.Sender.shutdown t.ledger;
      Sender_agent.unregister t.agent t.fid;
      Cm.close_flow t.cm t.fid;
      Udp.Socket.close t.socket;
      Byte_queue.clear t.queue
    end
end
