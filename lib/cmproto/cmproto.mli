(** The Congestion Manager protocol (receiver-side CM feedback).

    The paper's implementation deliberately changes nothing at the
    receiver, so every UDP application must implement its own
    acknowledgments (§3.1) and pay user-space feedback costs (§4.2).  Its
    Limitations section points at the alternative from the original CM
    architecture paper \[3\]: a kernel-to-kernel {e CM protocol} where the
    receiving host's CM acknowledges on the applications' behalf — "but
    remains to be studied".  This library studies it.

    Mechanics: the sending CM prepends a small header (sequence number,
    timestamp) to each data packet of participating flows; the receiving
    host's {!Receiver_agent} strips the header before the packet reaches
    the (unmodified) application and periodically sends aggregate
    feedback back to the sending host's {!Sender_agent}, which turns it
    into [cm_update] calls.  Applications send and receive exactly as
    without the CM: no acknowledgment code, no recv/gettimeofday/update
    crossings.

    {b Fault tolerance.}  The feedback travels over the same lossy
    network it measures, so the protocol defends its own control plane:
    feedback carries {e cumulative} per-epoch totals under a per-flow
    feedback sequence number (any one packet supersedes all earlier ones
    — duplicates and reordered stragglers are dropped whole, with
    counters), timestamp echoes are sanity-clamped so reordering can
    never produce a negative RTT sample, a starving sender solicits the
    receiver with exponential backoff ({!Session} wiring of
    {!Udp.Feedback.Sender}'s [on_starve]), and a crashed/restarted
    receiver agent re-announces itself with a new epoch via a [Resync]
    payload, upon which the sender discards its stale per-flow picture
    (one Persistent report) instead of wedging.

    The [ext_cmproto] experiment quantifies the saving against the
    paper's buffered (application-feedback) API; the [feedback_faults]
    family exercises the defenses. *)

open Cm_util
open Netsim

val header_bytes : int
(** Wire overhead added to each data packet (8 bytes: sequence +
    compressed timestamp). *)

type Packet.payload +=
  | Data of { seq : int; ts : Time.t; inner : Packet.payload }
        (** A data packet wrapped with the CM header. *)
  | Feedback of {
      data_flow : Addr.flow;  (** The (sender-side) flow being acknowledged. *)
      epoch : int;  (** Receiver-agent incarnation. *)
      fb_seq : int;  (** Per-flow feedback sequence, monotone per epoch. *)
      max_seq : int;  (** Highest data sequence seen. *)
      total_count : int;  (** Cumulative packets received this epoch. *)
      total_bytes : int;  (** Cumulative charged bytes this epoch. *)
      ts_echo : Time.t;  (** Newest echoed sender timestamp; 0 = none. *)
    }  (** Receiver-CM feedback for one flow (cumulative encoding). *)
  | Resync of { data_flow : Addr.flow; epoch : int }
        (** A restarted receiver agent re-announcing itself: its
            acknowledgment state for [data_flow] is gone. *)
  | Solicit of { data_flow : Addr.flow }
        (** A starving sender asking the receiver agent for feedback. *)

val is_control : Packet.t -> bool
(** True for CM feedback and control traffic (Feedback / Resync /
    Solicit) — the classifier {!Cm_dynamics.Control_faults} injectors
    use to target only the CM's control plane. *)

val feedback_wire_bytes : int
(** Wire size of a feedback packet (constant, 40 bytes). *)

val control_wire_bytes : int
(** Wire size of a Resync / Solicit control packet. *)

val set_hardening : bool -> unit
(** Bench escape hatch: with hardening off the sender agent applies
    feedback without the duplicate/stale/epoch/echo guards.  On by
    default; only the overhead benchmark should ever turn it off. *)

(** Receiving host: strips CM headers, generates feedback. *)
module Receiver_agent : sig
  type t
  (** One per receiving host. *)

  val install : Host.t -> ?ack_every:int -> ?max_delay:Time.span -> unit -> t
  (** Register the agent's receive filter on the host.  Feedback for a
      flow is emitted after [ack_every] data packets (default 2, like
      delayed acks) or [max_delay] after the first unacknowledged packet
      (default 100 ms). *)

  val crash : t -> unit
  (** Simulate the agent's kernel state vanishing: all per-flow
      acknowledgment state is dropped and, while down, CM-wrapped data
      is discarded (there is nobody to strip the header) and
      solicitations go unanswered. *)

  val restart : t -> unit
  (** Bring a crashed agent back with a fresh incarnation ([epoch + 1]).
      The first mid-stream data packet (or solicitation) of a flow it no
      longer knows triggers a [Resync] announcement to the sender. *)

  val feedback_sent : t -> int
  (** Feedback packets emitted. *)

  val data_seen : t -> int
  (** CM-wrapped data packets processed. *)

  val epoch : t -> int
  (** Current incarnation (0 until the first restart). *)

  val is_up : t -> bool
  (** False between {!crash} and {!restart}. *)

  val dropped_while_down : t -> int
  (** Wrapped data packets discarded while crashed. *)

  val resyncs_sent : t -> int
  (** Resync announcements emitted. *)
end

(** Sending host: consumes feedback, drives [cm_update]. *)
module Sender_agent : sig
  type t
  (** One per sending host (requires the host's CM). *)

  type counters = {
    feedback_received : int;  (** Feedback packets consumed. *)
    orphan_feedback : int;  (** Feedback for flows no longer open. *)
    dup_feedback : int;  (** Duplicate / reordered-stale feedback dropped. *)
    stale_feedback : int;  (** Old-epoch feedback and resyncs dropped. *)
    bad_echoes : int;  (** Future timestamp echoes clamped (sample dropped). *)
    resyncs : int;  (** Receiver-restart resynchronizations performed. *)
  }
  (** Defense counters: how often each guard fired. *)

  val install : Host.t -> Cm.t -> t
  (** Register the agent's receive filter; feedback and resync packets
      are consumed here and never reach applications. *)

  val register :
    t ->
    Cm.Cm_types.flow_id ->
    on_feedback:(max_seq:int -> count:int -> bytes:int -> ts_echo:Time.t -> unit) ->
    ?on_resync:(unit -> unit) ->
    unit ->
    unit
  (** Subscribe a flow.  [on_feedback] receives deduplicated,
      reorder-merged *deltas* (per-batch packet/byte counts recovered
      from the wire's cumulative totals) — exactly the shape
      {!Udp.Feedback.Sender.on_ack} consumes.  [on_resync] fires when
      the receiver agent is found to have restarted (explicit [Resync]
      or an epoch advance observed on feedback). *)

  val unregister : t -> Cm.Cm_types.flow_id -> unit
  (** Drop a flow's subscription and guard state. *)

  val feedback_received : t -> int
  (** Feedback packets consumed. *)

  val orphan_feedback : t -> int
  (** Feedback for flows that are no longer open. *)

  val counters : t -> counters
  (** Snapshot of all defense counters. *)

  val register_gauges : t -> Telemetry.t -> unit
  (** Publish the defense counters as [cmproto.*] telemetry gauges. *)
end

(** A congestion-controlled, CM-protocol-acknowledged datagram session —
    the buffered API of §3.3 with kernel-to-kernel feedback instead of
    application acknowledgments. *)
module Session : sig
  type t
  (** A session bound to one destination. *)

  val create :
    Sender_agent.t ->
    host:Host.t ->
    cm:Cm.t ->
    dst:Addr.endpoint ->
    ?dscp:int ->
    ?port:int ->
    ?queue_limit_pkts:int ->
    unit ->
    t
  (** Open a CM flow to [dst] whose transmissions carry CM headers and
      whose feedback arrives via the agents.  When feedback starves
      while data is outstanding, the session solicits the receiver agent
      with exponential backoff; a receiver-agent restart resynchronizes
      the ledger (outstanding data is declared lost once and the flow
      restarts cleanly). *)

  val send : t -> int -> unit
  (** Queue one datagram (paced by CM grants, like
      {!Udp.Cc_socket.send}). *)

  val queued : t -> int
  (** Datagrams awaiting grants. *)

  val packets_sent : t -> int
  (** Datagrams transmitted. *)

  val bytes_sent : t -> int
  (** Payload bytes transmitted (excluding the CM header). *)

  val unresolved_packets : t -> int
  (** Transmitted datagrams not yet covered by feedback. *)

  val solicits_sent : t -> int
  (** Feedback solicitations issued by the starvation backoff. *)

  val flow : t -> Cm.Cm_types.flow_id
  (** The backing CM flow. *)

  val close : t -> unit
  (** Release the CM flow and socket. *)
end

val feedback_flow : from_host:int -> to_host:int -> Addr.flow
(** The reserved (port 0) host-to-host flow feedback and control packets
    travel on. *)

val unwrap : Packet.payload -> Packet.payload
(** [unwrap p] is the inner payload if [p] is CM-wrapped, else [p]
    (useful in tests and custom receivers). *)
