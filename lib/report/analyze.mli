(** Post-run health analyzer.

    Consumes one instrumented run's telemetry — the sampled time series
    (cwnd / pipe / granted / pending / rate per macroflow, per-cause drop
    counters per link), the metrics snapshot, and the trace events — and
    answers the questions the raw artifacts don't: what limited each
    flow tick by tick, how fair the macroflows were to each other, where
    goodput stalled, why packets died, and how twitchy the layered app
    was.  Each finding carries a pass/warn verdict with its threshold
    spelled out, rolled into one overall verdict.

    Attribution heuristic, per tick, most severe cause wins:
    link down (a [drops_down] gauge advanced) > queue-limited (a
    [drops_queue] gauge advanced) > cwnd-limited (pipe ≥ 85% of cwnd) >
    grant-limited (requests pending, nothing granted) > unconstrained.
    Link conditions are shared across flows — that is the honest
    granularity of per-link cumulative gauges.

    A stall is a maximal run of zero-rate ticks lasting at least
    max(k·srtt, 3 sampling ticks).  The flap score counts direction
    {e reversals} in [app.layer] switch events per second — monotone
    ramps don't flap.

    Everything is derived from virtual-time data: for a fixed seed,
    {!to_json} renders byte-identically run after run (CI diffs it). *)

type input = {
  i_times : float array;  (** sampler tick times, seconds *)
  i_series : (string * float array) list;  (** aligned columns; NaN before a series existed *)
  i_scalars : (string * float) list;  (** final counter/gauge readings *)
  i_events : Telemetry.Trace.event list;
  i_duration_s : float;
  i_period_s : float;  (** sampling period, seconds *)
}

val of_telemetry : Telemetry.t -> input
(** Snapshot a finished run's telemetry into an analyzable table. *)

type flow_report = {
  f_name : string;  (** series prefix, e.g. ["mf0"] *)
  f_ticks : int;  (** ticks while the flow existed *)
  f_attribution : (string * float) list;  (** fraction of active ticks per cause *)
  f_mean_rate_bps : float;
  f_stall_windows : (float * float) list;  (** [(start_s, end_s)] *)
  f_stall_frac : float;  (** fraction of active ticks inside a stall window *)
}

type status = Pass | Warn

type verdict = { v_check : string; v_status : status; v_detail : string }

type t = {
  r_flows : flow_report list;
  r_jain : float;  (** Jain index over per-flow mean rates; 1.0 for < 2 flows *)
  r_drops : (string * int) list;  (** queue / channel / down / delivered_pkts totals *)
  r_layer_switches : int;
  r_layer_reversals : int;
  r_flap_per_s : float;
  r_verdicts : verdict list;
  r_overall : status;
}

val analyze : ?k_rtt:float -> input -> t
(** Run every analysis ([k_rtt] scales the stall threshold, default 4). *)

val status_str : status -> string
(** ["pass"] / ["warn"]. *)

val to_json : t -> Cm_util.Json.t
(** Deterministic JSON (the CI-diffed channel). *)

val to_markdown : t -> string
(** Human-readable report: verdict table, per-flow attribution table,
    drop causes, flap summary. *)
