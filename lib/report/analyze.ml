open Cm_util

(* Post-run analyzer: turn one instrumented run's telemetry (sampled time
   series + metrics snapshot + trace events) into health findings — what
   limited each flow, how fair the sharing was, where goodput stalled,
   why packets died, how twitchy the adaptive app was — with pass/warn
   verdicts CI can read.  Everything here is derived from virtual-time
   data, so for a fixed seed the rendered JSON is byte-identical. *)

type input = {
  i_times : float array; (* sampler tick times, seconds *)
  i_series : (string * float array) list; (* full columns, NaN before birth *)
  i_scalars : (string * float) list; (* final counter/gauge readings *)
  i_events : Telemetry.Trace.event list;
  i_duration_s : float;
  i_period_s : float;
}

let of_telemetry tel =
  let sampler = Telemetry.sampler tel in
  let names = Telemetry.Sampler.series_names sampler in
  let series =
    List.filter_map
      (fun n ->
        match Telemetry.Sampler.series sampler n with
        | Some data -> Some (n, data)
        | None -> None)
      names
  in
  let scalars =
    List.filter_map
      (fun (name, v) ->
        match v with
        | Telemetry.Metrics.Sc n -> Some (name, float_of_int n)
        | Telemetry.Metrics.Sg x -> Some (name, x)
        | Telemetry.Metrics.Sh _ -> None)
      (Telemetry.Metrics.snapshot (Telemetry.metrics tel))
  in
  let engine = Telemetry.engine tel in
  {
    i_times = Array.map Time.to_float_s (Telemetry.Sampler.times sampler);
    i_series = series;
    i_scalars = scalars;
    i_events = Telemetry.Trace.events (Telemetry.trace tel);
    i_duration_s = Time.to_float_s (Eventsim.Engine.now engine);
    i_period_s = Time.to_float_s (Telemetry.Sampler.period sampler);
  }

(* ---- per-flow attribution ---------------------------------------------- *)

(* Why wasn't flow mf<i> going faster at tick k?  Precedence (most to
   least severe): a link was down; a queue was dropping; the congestion
   window was full (pipe ≥ 85% of cwnd); the scheduler was starving it
   (requests pending, nothing granted); otherwise unconstrained (the app
   itself was the limit).  Link conditions are per-tick deltas of the
   cumulative drop gauges — shared across flows, which is the honest
   granularity of the data we sample. *)

let causes = [| "link_down"; "queue_limited"; "cwnd_limited"; "grant_limited"; "unconstrained" |]

type flow_report = {
  f_name : string;
  f_ticks : int; (* ticks while the flow existed *)
  f_attribution : (string * float) list; (* fraction of active ticks per cause *)
  f_mean_rate_bps : float;
  f_stall_windows : (float * float) list; (* [start_s, end_s] *)
  f_stall_frac : float;
}

type status = Pass | Warn

type verdict = { v_check : string; v_status : status; v_detail : string }

type t = {
  r_flows : flow_report list;
  r_jain : float;
  r_drops : (string * int) list; (* queue / channel / down / delivered_pkts *)
  r_layer_switches : int;
  r_layer_reversals : int;
  r_flap_per_s : float;
  r_verdicts : verdict list;
  r_overall : status;
}

let find_series input name = List.assoc_opt name input.i_series

let is_sample v = not (Float.is_nan v)

(* per-tick "some link dropped for cause X during (k-1, k]" flags, from
   the deltas of every cumulative link.<name>.drops_<cause> column *)
let link_drop_flags input ~suffix =
  let n = Array.length input.i_times in
  let flags = Array.make n false in
  List.iter
    (fun (name, data) ->
      let is_drop_col =
        String.length name > 5
        && String.sub name 0 5 = "link."
        && String.length name >= String.length suffix
        && String.sub name (String.length name - String.length suffix) (String.length suffix)
           = suffix
      in
      if is_drop_col then
        for k = 0 to n - 1 do
          let prev = if k = 0 then 0. else data.(k - 1) in
          let prev = if Float.is_nan prev then 0. else prev in
          if is_sample data.(k) && data.(k) > prev then flags.(k) <- true
        done)
    input.i_series;
  flags

let mean_of a =
  let sum = ref 0. and n = ref 0 in
  Array.iter
    (fun v ->
      if is_sample v then begin
        sum := !sum +. v;
        incr n
      end)
    a;
  if !n = 0 then 0. else !sum /. float_of_int !n

(* stall windows: maximal runs of ticks with zero rate lasting at least
   max(k_rtt * srtt, 3 ticks) *)
let stall_windows input ~k_rtt ~rate ~srtt_us =
  let n = Array.length input.i_times in
  let windows = ref [] in
  let run_start = ref (-1) in
  let flush last =
    if !run_start >= 0 then begin
      let s = !run_start in
      let start_t = input.i_times.(s) and end_t = input.i_times.(last) in
      let srtt_s =
        match srtt_us with
        | Some a when is_sample a.(s) -> a.(s) /. 1e6
        | _ -> 0.
      in
      let min_len = Float.max (k_rtt *. srtt_s) (3. *. input.i_period_s) in
      if end_t -. start_t +. input.i_period_s >= min_len then
        windows := (start_t, end_t) :: !windows;
      run_start := -1
    end
  in
  for k = 0 to n - 1 do
    if is_sample rate.(k) && rate.(k) <= 0. then begin
      if !run_start < 0 then run_start := k
    end
    else flush (k - 1)
  done;
  flush (n - 1);
  List.rev !windows

let analyze_flow input ~k_rtt ~down_flags ~queue_flags name =
  let s suffix = find_series input (name ^ "." ^ suffix) in
  match (s "cwnd", s "rate_bps") with
  | None, _ | _, None -> None
  | Some cwnd, Some rate ->
      let pipe = s "pipe" and granted = s "granted" and pending = s "pending" in
      let srtt_us = s "srtt_us" in
      let n = Array.length input.i_times in
      let counts = Array.make (Array.length causes) 0 in
      let active = ref 0 in
      for k = 0 to n - 1 do
        if is_sample cwnd.(k) then begin
          incr active;
          let get o = match o with Some a when is_sample a.(k) -> a.(k) | _ -> 0. in
          let cause =
            if down_flags.(k) then 0
            else if queue_flags.(k) then 1
            else if cwnd.(k) > 0. && get pipe >= 0.85 *. cwnd.(k) then 2
            else if get pending > 0. && get granted <= 0. then 3
            else 4
          in
          counts.(cause) <- counts.(cause) + 1
        end
      done;
      let frac c = if !active = 0 then 0. else float_of_int c /. float_of_int !active in
      let windows = stall_windows input ~k_rtt ~rate ~srtt_us in
      let stalled_ticks =
        let in_window t = List.exists (fun (a, b) -> t >= a && t <= b) windows in
        Array.fold_left
          (fun acc t -> if in_window t then acc + 1 else acc)
          0 input.i_times
      in
      Some
        {
          f_name = name;
          f_ticks = !active;
          f_attribution = Array.to_list (Array.mapi (fun i c -> (causes.(i), frac c)) counts);
          f_mean_rate_bps = mean_of rate;
          f_stall_windows = windows;
          f_stall_frac =
            (if !active = 0 then 0. else float_of_int stalled_ticks /. float_of_int !active);
        }

(* ---- aggregates -------------------------------------------------------- *)

let jain rates =
  match rates with
  | [] | [ _ ] -> 1.
  | _ ->
      let s = List.fold_left ( +. ) 0. rates in
      let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0. rates in
      if s2 <= 0. then 1. else s *. s /. (float_of_int (List.length rates) *. s2)

let drop_totals input =
  let total suffix =
    List.fold_left
      (fun acc (name, v) ->
        if
          String.length name > 5
          && String.sub name 0 5 = "link."
          && String.length name >= String.length suffix
          && String.sub name (String.length name - String.length suffix) (String.length suffix)
             = suffix
        then acc + int_of_float v
        else acc)
      0 input.i_scalars
  in
  [
    ("queue", total ".drops_queue");
    ("channel", total ".drops_channel");
    ("down", total ".drops_down");
    ("delivered_pkts", total ".delivered_pkts");
  ]

let layer_flaps input =
  let switches =
    List.filter (fun (e : Telemetry.Trace.event) -> e.Telemetry.Trace.name = "app.layer")
      input.i_events
  in
  let dir (e : Telemetry.Trace.event) =
    let arg k =
      match List.assoc_opt k e.Telemetry.Trace.args with
      | Some (Telemetry.Trace.Int i) -> Some i
      | _ -> None
    in
    match (arg "from", arg "to") with
    | Some f, Some t -> compare t f
    | _ -> 0
  in
  let _, reversals =
    List.fold_left
      (fun (prev, acc) e ->
        let d = dir e in
        if d = 0 then (prev, acc)
        else
          match prev with
          | Some p when p <> 0 && p <> d -> (Some d, acc + 1)
          | _ -> (Some d, acc))
      (None, 0) switches
  in
  (List.length switches, reversals)

(* ---- verdict thresholds ------------------------------------------------ *)

let verdicts ~flows ~jain_idx ~drops ~flap_per_s =
  let v check ok detail = { v_check = check; v_status = (if ok then Pass else Warn); v_detail = detail } in
  let worst_stall =
    List.fold_left (fun acc f -> Float.max acc f.f_stall_frac) 0. flows
  in
  let worst_grant =
    List.fold_left
      (fun acc f ->
        match List.assoc_opt "grant_limited" f.f_attribution with
        | Some x -> Float.max acc x
        | None -> acc)
      0. flows
  in
  let get k = match List.assoc_opt k drops with Some n -> n | None -> 0 in
  let delivered = get "delivered_pkts" in
  let queue_rate =
    if delivered = 0 then if get "queue" > 0 then 1. else 0.
    else float_of_int (get "queue") /. float_of_int delivered
  in
  [
    v "stalls" (worst_stall <= 0.10)
      (Printf.sprintf "worst stall fraction %s (warn > 0.1)" (Json.float_str worst_stall));
    v "fairness"
      (List.length flows < 2 || jain_idx >= 0.85)
      (Printf.sprintf "Jain index %s (warn < 0.85)" (Json.float_str jain_idx));
    v "down_drops" (get "down" = 0)
      (Printf.sprintf "%d packets died on downed links" (get "down"));
    v "queue_drops" (queue_rate <= 0.05)
      (Printf.sprintf "queue-drop rate %s of delivered (warn > 0.05)" (Json.float_str queue_rate));
    v "flaps" (flap_per_s <= 1.0)
      (Printf.sprintf "%s layer reversals per second (warn > 1)" (Json.float_str flap_per_s));
    v "grant_starvation" (worst_grant <= 0.5)
      (Printf.sprintf "worst grant-limited fraction %s (warn > 0.5)" (Json.float_str worst_grant));
  ]

(* ---- entry point ------------------------------------------------------- *)

(* macroflow series prefixes, in mf-id order: "mf0", "mf3", ... *)
let flow_names input =
  List.filter_map
    (fun (name, _) ->
      let n = String.length name in
      if n > 7 && String.sub name 0 2 = "mf" && String.sub name (n - 5) 5 = ".cwnd" then
        Some (String.sub name 0 (n - 5))
      else None)
    input.i_series

let analyze ?(k_rtt = 4.) input =
  let down_flags = link_drop_flags input ~suffix:".drops_down" in
  let queue_flags = link_drop_flags input ~suffix:".drops_queue" in
  let flows =
    List.filter_map (analyze_flow input ~k_rtt ~down_flags ~queue_flags) (flow_names input)
  in
  let jain_idx = jain (List.map (fun f -> f.f_mean_rate_bps) flows) in
  let drops = drop_totals input in
  let switches, reversals = layer_flaps input in
  let flap_per_s =
    if input.i_duration_s <= 0. then 0. else float_of_int reversals /. input.i_duration_s
  in
  let vs = verdicts ~flows ~jain_idx ~drops ~flap_per_s in
  {
    r_flows = flows;
    r_jain = jain_idx;
    r_drops = drops;
    r_layer_switches = switches;
    r_layer_reversals = reversals;
    r_flap_per_s = flap_per_s;
    r_verdicts = vs;
    r_overall = (if List.exists (fun v -> v.v_status = Warn) vs then Warn else Pass);
  }

(* ---- rendering --------------------------------------------------------- *)

let status_str = function Pass -> "pass" | Warn -> "warn"

let flow_json f =
  let open Json in
  Obj
    [
      ("mf", Str f.f_name);
      ("ticks", Int f.f_ticks);
      ("mean_rate_bps", Float f.f_mean_rate_bps);
      ("attribution", Obj (List.map (fun (c, x) -> (c, Float x)) f.f_attribution));
      ("stall_frac", Float f.f_stall_frac);
      ( "stall_windows_s",
        List (List.map (fun (a, b) -> List [ Float a; Float b ]) f.f_stall_windows) );
    ]

let to_json r =
  let open Json in
  Obj
    [
      ("flows", List (List.map flow_json r.r_flows));
      ("jain_fairness", Float r.r_jain);
      ("drops", Obj (List.map (fun (c, n) -> (c, Int n)) r.r_drops));
      ("layer_switches", Int r.r_layer_switches);
      ("layer_reversals", Int r.r_layer_reversals);
      ("flap_per_s", Float r.r_flap_per_s);
      ( "verdicts",
        List
          (List.map
             (fun v ->
               Obj
                 [
                   ("check", Str v.v_check);
                   ("status", Str (status_str v.v_status));
                   ("detail", Str v.v_detail);
                 ])
             r.r_verdicts) );
      ("overall", Str (status_str r.r_overall));
    ]

let to_markdown r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "# Run health report\n\n";
  Buffer.add_string b (Printf.sprintf "**Overall: %s**\n\n" (status_str r.r_overall));
  Buffer.add_string b "## Verdicts\n\n| check | status | detail |\n|---|---|---|\n";
  List.iter
    (fun v ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %s | %s |\n" v.v_check (status_str v.v_status) v.v_detail))
    r.r_verdicts;
  Buffer.add_string b "\n## Per-flow completion-latency attribution\n\n";
  Buffer.add_string b
    "| flow | ticks | mean rate (bps) | link down | queue | cwnd | grant | unconstrained | stall frac |\n";
  Buffer.add_string b "|---|---|---|---|---|---|---|---|---|\n";
  List.iter
    (fun f ->
      let a c = match List.assoc_opt c f.f_attribution with Some x -> Json.float_str x | None -> "0" in
      Buffer.add_string b
        (Printf.sprintf "| %s | %d | %s | %s | %s | %s | %s | %s | %s |\n" f.f_name f.f_ticks
           (Json.float_str f.f_mean_rate_bps)
           (a "link_down") (a "queue_limited") (a "cwnd_limited") (a "grant_limited")
           (a "unconstrained") (Json.float_str f.f_stall_frac)))
    r.r_flows;
  Buffer.add_string b
    (Printf.sprintf "\nJain fairness index: %s across %d flows.\n" (Json.float_str r.r_jain)
       (List.length r.r_flows));
  Buffer.add_string b "\n## Drop causes\n\n";
  List.iter (fun (c, n) -> Buffer.add_string b (Printf.sprintf "- %s: %d\n" c n)) r.r_drops;
  Buffer.add_string b
    (Printf.sprintf "\n%d layer switches, %d reversals (%s flaps/s).\n" r.r_layer_switches
       r.r_layer_reversals (Json.float_str r.r_flap_per_s));
  Buffer.contents b
