(* cm_expt — command-line runner for the paper-reproduction experiments.

   One subcommand per table/figure (fig3 … fig10, table1), plus the §4.1
   microbenchmark and the three ablation benches, plus [all]. *)

open Cmdliner

let params ?(prof = false) ?recorder seed full =
  { Experiments.Exp_common.default_params with seed; full; prof; recorder }

let seed_arg =
  let doc = "Seed for every random number generator (runs are deterministic)." in
  Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let full_arg =
  let doc =
    "Run the long variants (e.g. the 10^6-buffer point of Figs. 4-5 and the 200k-packet Fig. 6)."
  in
  Arg.(value & flag & info [ "full" ] ~doc)

let prof_arg =
  let doc =
    "Arm the event-core profiler and print its summary (per-category dispatch counts, \
     sampled wall attribution, GC deltas, wheel/pool occupancy) to stderr after each \
     simulated system finishes.  Stdout stays byte-identical: wall clock is nondeterministic."
  in
  Arg.(value & flag & info [ "prof" ] ~doc)

let recorder_arg =
  let doc =
    "Attach an always-on bounded flight recorder (ring of the last 4096 trace events) to \
     families that support it and dump the ring as JSONL into $(docv) when a defense fires, \
     an audit breach appears, or an exception escapes the event loop."
  in
  Arg.(value & opt (some string) None & info [ "recorder" ] ~docv:"DIR" ~doc)

let run_fig3 p = Experiments.Fig3.print (Experiments.Fig3.run p)
let run_fig4_5 p = Experiments.Fig4_5.print (Experiments.Fig4_5.run p)
let run_fig6 p = Experiments.Fig6.print (Experiments.Fig6.run p)
let run_table1 p = Experiments.Fig6.print_table1 (Experiments.Fig6.run_table1 p)
let run_fig7 p = Experiments.Fig7.print (Experiments.Fig7.run p)
let run_fig8 p = Experiments.Fig8_10.print (Experiments.Fig8_10.run_fig8 p)
let run_fig9 p = Experiments.Fig8_10.print (Experiments.Fig8_10.run_fig9 p)
let run_fig10 p = Experiments.Fig8_10.print (Experiments.Fig8_10.run_fig10 p)
let run_micro p = Experiments.Micro.print (Experiments.Micro.run p)

let run_abl_sched p =
  Experiments.Ablations.print_scheduler (Experiments.Ablations.run_scheduler p)

let run_abl_ctrl p =
  Experiments.Ablations.print_controller (Experiments.Ablations.run_controller p)

let run_abl_share p = Experiments.Ablations.print_sharing (Experiments.Ablations.run_sharing p)
let run_phttp p = Experiments.Sec6_phttp.print (Experiments.Sec6_phttp.run p)
let run_cmproto p = Experiments.Ext_cmproto.print (Experiments.Ext_cmproto.run p)
let run_content p = Experiments.Content_adapt.print (Experiments.Content_adapt.run p)
let run_merge p = Experiments.Ext_merge.print (Experiments.Ext_merge.run p)
let run_fair p = Experiments.Ablations.print_fairness (Experiments.Ablations.run_fairness p)
let run_scenarios p = Experiments.Scenarios.print p (Experiments.Scenarios.run p)
let run_app_faults p = Experiments.App_faults.print p (Experiments.App_faults.run p)
let run_fattree p = Experiments.Fattree.print p (Experiments.Fattree.run p)
let run_cdn_edge p = Experiments.Cdn_edge.print p (Experiments.Cdn_edge.run p)
let run_cellular p = Experiments.Cellular.print p (Experiments.Cellular.run p)

let run_feedback_faults p =
  Experiments.Feedback_faults.print p (Experiments.Feedback_faults.run p)

let experiments =
  [
    ("fig3", "Throughput vs loss: TCP/CM vs TCP/Linux", run_fig3);
    ("fig4", "100 Mbps throughput vs buffers transmitted (also prints Fig. 5)", run_fig4_5);
    ("fig5", "Sender CPU utilization vs buffers transmitted (also prints Fig. 4)", run_fig4_5);
    ("fig6", "Per-packet API overhead vs packet size", run_fig6);
    ("table1", "Boundary crossings per packet per API", run_table1);
    ("fig7", "Sequential fetches: congestion-state sharing", run_fig7);
    ("fig8", "ALF layered streaming over a varying path", run_fig8);
    ("fig9", "Rate-callback layered streaming", run_fig9);
    ("fig10", "Rate callback with delayed feedback", run_fig10);
    ("micro", "Connection-establishment microbenchmark", run_micro);
    ("ablation_sched", "Round-robin vs weighted scheduler", run_abl_sched);
    ("ablation_ctrl", "AIMD vs binomial controllers", run_abl_ctrl);
    ("ablation_share", "Independent vs shared congestion state", run_abl_share);
    ("phttp", "Sec. 6: P-HTTP multiplexing vs CM concurrent connections", run_phttp);
    ("cmproto", "Extension: CM protocol (kernel feedback) vs app feedback", run_cmproto);
    ("content", "Content adaptation: fixed vs cm_query-chosen encodings", run_content);
    ("merge", "Extension: merged macroflows behind a shared bottleneck", run_merge);
    ("ablation_fairness", "Jain fairness across flow ensembles", run_fair);
    ("scenarios", "Fault-injection scenarios: burst loss, outage, sawtooth (JSON)", run_scenarios);
    ("app_faults", "Endpoint faults: crash/silence/lie/hoard defenses & reclamation (JSON)", run_app_faults);
    ("fattree", "Fat-tree k=4 incast + cross-pod shuffle, spec-DSL authored (JSON)", run_fattree);
    ("cdn_edge", "CDN edge flash crowd: 2x1024 clients, spec-DSL authored (JSON)", run_cdn_edge);
    ("cellular", "Cellular last mile: layered app vs ramps and handoff flaps, spec-DSL authored (JSON)", run_cellular);
    ("feedback_faults", "Feedback-plane faults: blackout, degraded control plane, receiver restart (JSON)", run_feedback_faults);
  ]

let make_cmd (name, doc, runner) =
  let action seed full prof recorder = runner (params ~prof ?recorder seed full) in
  Cmd.v (Cmd.info name ~doc)
    Term.(const action $ seed_arg $ full_arg $ prof_arg $ recorder_arg)

let scale_cmd =
  let doc =
    "Many-flow scalability: a web-server-like workload at N concurrent flows across N/32 \
     macroflows, run under both schedulers.  Reports virtual-time metrics (grants, events, \
     request-to-grant latency percentiles) as deterministic JSON — byte-identical for a \
     fixed seed; wall-clock events/sec lives in the bench JSON instead."
  in
  let flows_arg =
    let doc =
      "Run a single flow count instead of the standard family (64, 512, 4096, 16384)."
    in
    Arg.(value & opt (some int) None & info [ "n"; "flows" ] ~docv:"N" ~doc)
  in
  let action seed full flows =
    let p = params seed full in
    let sizes = match flows with Some n -> Some [ n ] | None -> None in
    Experiments.Scale.print p (Experiments.Scale.run ?sizes p)
  in
  Cmd.v (Cmd.info "scale" ~doc) Term.(const action $ seed_arg $ full_arg $ flows_arg)

let trace_cmd =
  let doc =
    "Run one experiment instrumented and export telemetry artifacts: a JSONL event trace, a \
     Chrome trace_event file (open in Perfetto), the CM-internals time series as CSV, and a \
     metrics snapshot.  Byte-identical for a fixed seed."
  in
  let expt_arg =
    let doc =
      "Experiment to trace: " ^ String.concat ", " Experiments.Trace_run.experiments ^ "."
    in
    Arg.(
      value
      & opt (enum (List.map (fun e -> (e, e)) Experiments.Trace_run.experiments)) "fig6"
      & info [ "e"; "expt" ] ~docv:"EXPT" ~doc)
  in
  let out_arg =
    let doc = "Directory for the artifacts (created if missing)." in
    Arg.(value & opt string "traces" & info [ "o"; "out" ] ~docv:"DIR" ~doc)
  in
  let action expt seed out_dir =
    Experiments.Trace_run.print (Experiments.Trace_run.run ~out_dir ~expt ~seed ())
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const action $ expt_arg $ seed_arg $ out_arg)

let report_cmd =
  let doc =
    "Run one experiment family instrumented and emit a run-health report: per-flow \
     bottleneck attribution (grant/cwnd/queue/link-down), Jain fairness, stall windows, \
     drop-cause breakdown and layer-flap score, each with a pass/warn verdict.  Writes \
     <expt>.report.json and <expt>.report.md; the JSON also goes to stdout and is \
     byte-identical for a fixed seed.  With [--check-dump FILE] instead validates a flight- \
     recorder dump (every line must parse as JSON; exit 1 otherwise)."
  in
  let expt_arg =
    let doc =
      "Family to report on: " ^ String.concat ", " Experiments.Report_run.experiments ^ "."
    in
    Arg.(
      value
      & opt (enum (List.map (fun e -> (e, e)) Experiments.Report_run.experiments)) "fig6"
      & info [ "e"; "expt" ] ~docv:"EXPT" ~doc)
  in
  let out_arg =
    let doc = "Directory for the report files (created if missing)." in
    Arg.(value & opt string "reports" & info [ "o"; "out" ] ~docv:"DIR" ~doc)
  in
  let check_dump_arg =
    let doc =
      "Validate the flight-recorder dump $(docv): every line must parse as a JSON document."
    in
    Arg.(value & opt (some string) None & info [ "check-dump" ] ~docv:"FILE" ~doc)
  in
  let check_dump path =
    let ic = open_in path in
    let bad = ref 0 and lines = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then begin
           incr lines;
           match Cm_util.Json.parse line with
           | Ok _ -> ()
           | Error msg ->
               incr bad;
               Printf.eprintf "%s:%d: %s\n" path !lines msg
         end
       done
     with End_of_file -> ());
    close_in ic;
    if !bad > 0 then begin
      Printf.eprintf "cm_expt report: %d invalid line(s) in %s\n" !bad path;
      1
    end
    else begin
      Printf.printf "%s: %d JSON line(s), all valid\n" path !lines;
      0
    end
  in
  let action expt seed out_dir dump =
    match dump with
    | Some path -> exit (check_dump path)
    | None ->
        Experiments.Report_run.print (Experiments.Report_run.run ~out_dir ~expt ~seed ())
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const action $ expt_arg $ seed_arg $ out_arg $ check_dump_arg)

let spec_cmd =
  let doc =
    "Inspect the spec-DSL sources behind experiment families.  [--list] shows every family \
     with its provenance (dsl vs handwritten), [--check FAMILY] runs the static checks and \
     reports diagnostics, [--dump FAMILY] prints a JSON summary of the compiled topology."
  in
  let list_arg =
    let doc = "List every experiment family with its spec provenance." in
    Arg.(value & flag & info [ "list" ] ~doc)
  in
  let check_arg =
    let doc = "Run the static checks for $(docv) and report diagnostics (exit 1 on failure)." in
    Arg.(value & opt (some string) None & info [ "check" ] ~docv:"FAMILY" ~doc)
  in
  let dump_arg =
    let doc = "Print a JSON summary of $(docv)'s compiled topology." in
    Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"FAMILY" ~doc)
  in
  let module R = Experiments.Spec_registry in
  let module Check = Cm_spec.Check in
  let list_families () =
    let all = List.map (fun (n, _, _) -> n) experiments @ [ "scale" ] in
    List.iter (fun n -> Printf.printf "%-18s %s\n" n (R.provenance_of n)) all
  in
  let with_entry family k =
    match R.find family with
    | Some e -> k e
    | None ->
        let known = List.exists (fun (n, _, _) -> n = family) experiments in
        if known then (
          Printf.eprintf
            "cm_expt spec: family %s is handwritten OCaml — no spec to inspect.\n" family;
          1)
        else (
          Printf.eprintf "cm_expt spec: unknown family %s (try --list).\n" family;
          1)
  in
  let check_family family =
    with_entry family (fun e ->
        List.fold_left
          (fun rc (sub, spec) ->
            match Check.check spec with
            | [] ->
                Printf.printf "%s: ok\n" sub;
                rc
            | diags ->
                List.iter (fun d -> Printf.eprintf "%s: %s\n" sub (Check.diag_str d)) diags;
                1)
          0 e.R.specs)
  in
  let dump_family family =
    with_entry family (fun e ->
        let summaries =
          List.filter_map
            (fun (sub, spec) ->
              match Check.elaborate spec with
              | Ok ir -> Some (sub, Check.summary_json ir)
              | Error diags ->
                  List.iter (fun d -> Printf.eprintf "%s: %s\n" sub (Check.diag_str d)) diags;
                  None)
            e.R.specs
        in
        if List.length summaries <> List.length e.R.specs then 1
        else begin
          let json =
            match summaries with [ (_, j) ] -> j | l -> Experiments.Exp_common.Json.Obj l
          in
          print_endline (Experiments.Exp_common.Json.to_string json);
          0
        end)
  in
  let action list check dump =
    let rc =
      match (list, check, dump) with
      | _, None, None ->
          list_families ();
          0
      | _, Some f, None -> check_family f
      | _, None, Some f -> dump_family f
      | _, Some cf, Some df ->
          let rc = check_family cf in
          let rc' = dump_family df in
          max rc rc'
    in
    if rc <> 0 then exit rc
  in
  Cmd.v (Cmd.info "spec" ~doc) Term.(const action $ list_arg $ check_arg $ dump_arg)

let soak_cmd =
  let doc =
    "Seeded chaos soak: draw a well-formed random spec (dumbbell + bulk flows) composed with \
     random network, control-plane and application fault schedules, and run it under the \
     invariant oracles (auditor sweep incl. grant-ledger skew, flow/timer leaks, bounded \
     engine backlog, run-twice byte-determinism).  Failures are shrunk to a minimal \
     configuration and a one-line reproducer is printed.  Exit 1 on any oracle breach."
  in
  let count_arg =
    let doc = "Run $(docv) consecutive seeds starting at --seed." in
    Arg.(value & opt int 1 & info [ "n"; "count" ] ~docv:"N" ~doc)
  in
  let canary_arg =
    let doc =
      "Mutation canary: deliberately re-introduce a grant leak in the close path \
       (Macroflow.canary_grant_leak) — the soak MUST fail, proving the oracles catch a \
       real accounting bug."
    in
    Arg.(value & flag & info [ "canary" ] ~doc)
  in
  let action seed count canary =
    let failures = ref 0 in
    for s = seed to seed + count - 1 do
      match Cm_soak.Soak.run_seed ~canary s with
      | None -> Printf.printf "seed %d: ok\n%!" s
      | Some f ->
          incr failures;
          Printf.printf "seed %d: FAIL\n%!" s;
          List.iter (fun v -> Printf.printf "  %s\n" v) f.Cm_soak.Soak.f_failures;
          Printf.printf "  %s\n" (Cm_soak.Soak.repro_line ~canary f);
          Printf.printf "  %s\n%!" (Cm_util.Json.to_string (Cm_soak.Soak.failure_json ~canary f))
    done;
    if !failures > 0 then exit 1
  in
  Cmd.v (Cmd.info "soak" ~doc) Term.(const action $ seed_arg $ count_arg $ canary_arg)

let all_cmd =
  let doc = "Run every experiment in order." in
  let action seed full =
    let p = params seed full in
    List.iter (fun (_, _, runner) -> runner p)
      (List.filter (fun (n, _, _) -> n <> "fig5") experiments)
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const action $ seed_arg $ full_arg)

let () =
  let doc = "Reproduce the Congestion Manager paper's tables and figures" in
  let info = Cmd.info "cm_expt" ~version:"1.0" ~doc in
  let group =
    Cmd.group info
      (all_cmd :: trace_cmd :: report_cmd :: scale_cmd :: spec_cmd :: soak_cmd
      :: List.map make_cmd experiments)
  in
  exit (Cmd.eval group)
