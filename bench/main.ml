(* bench/main — regenerates every table and figure of the paper's
   evaluation (§4), runs bechamel microbenchmarks of the CM's hot paths
   (including the telemetry layer's), measures the telemetry overhead and
   the endpoint-fault-defense overhead (watchdog + auditor, budget ≤ 5 %
   each) and the observability overhead (profiler ≤ 5 %, flight recorder
   ≤ 2 %) on the Fig. 6 macro workload, runs the many-flow [scale] family
   (events/sec at N = 64 … 16384 flows under both schedulers), and emits
   a machine-readable BENCH_PR8.json so later PRs have a perf trajectory
   to compare against (schema: DESIGN.md §6; diffable with bench_diff).

   Set CM_BENCH_FULL=1 for the long variants (10^6-buffer Fig. 4/5 point,
   200k-packet Fig. 6); CM_BENCH_SEED to change the seed; CM_BENCH_SMOKE=1
   for a seconds-long build/run verification pass (tiny iteration counts,
   experiments skipped); CM_BENCH_OUT to redirect the JSON file. *)

open Cm_util

let params =
  let seed =
    match Sys.getenv_opt "CM_BENCH_SEED" with Some s -> int_of_string s | None -> 42
  in
  let full = Sys.getenv_opt "CM_BENCH_FULL" = Some "1" in
  { Experiments.Exp_common.default_params with seed; full }

let smoke = Sys.getenv_opt "CM_BENCH_SMOKE" = Some "1"
let json_path = match Sys.getenv_opt "CM_BENCH_OUT" with Some p -> p | None -> "BENCH_PR9.json"

(* wall times of every experiment, for the JSON trajectory *)
let experiment_walls : (string * float) list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  f ();
  let wall = Unix.gettimeofday () -. t0 in
  experiment_walls := (name, wall) :: !experiment_walls;
  Printf.printf "[%s finished in %.1fs]\n%!" name wall

let run_experiments () =
  print_endline "=====================================================================";
  print_endline " Congestion Manager reproduction: every table and figure (paper sec 4)";
  print_endline "=====================================================================";
  timed "fig3" (fun () -> Experiments.Fig3.print (Experiments.Fig3.run params));
  timed "fig4+fig5" (fun () -> Experiments.Fig4_5.print (Experiments.Fig4_5.run params));
  timed "fig6" (fun () -> Experiments.Fig6.print (Experiments.Fig6.run params));
  timed "table1" (fun () -> Experiments.Fig6.print_table1 (Experiments.Fig6.run_table1 params));
  timed "fig7" (fun () -> Experiments.Fig7.print (Experiments.Fig7.run params));
  timed "fig8" (fun () -> Experiments.Fig8_10.print (Experiments.Fig8_10.run_fig8 params));
  timed "fig9" (fun () -> Experiments.Fig8_10.print (Experiments.Fig8_10.run_fig9 params));
  timed "fig10" (fun () -> Experiments.Fig8_10.print (Experiments.Fig8_10.run_fig10 params));
  timed "micro" (fun () -> Experiments.Micro.print (Experiments.Micro.run params));
  timed "ablation_sched" (fun () ->
      Experiments.Ablations.print_scheduler (Experiments.Ablations.run_scheduler params));
  timed "ablation_ctrl" (fun () ->
      Experiments.Ablations.print_controller (Experiments.Ablations.run_controller params));
  timed "ablation_share" (fun () ->
      Experiments.Ablations.print_sharing (Experiments.Ablations.run_sharing params));
  timed "sec6_phttp" (fun () ->
      Experiments.Sec6_phttp.print (Experiments.Sec6_phttp.run params));
  timed "ext_cmproto" (fun () ->
      Experiments.Ext_cmproto.print (Experiments.Ext_cmproto.run params));
  timed "content_adapt" (fun () ->
      Experiments.Content_adapt.print (Experiments.Content_adapt.run params));
  timed "ext_merge" (fun () ->
      Experiments.Ext_merge.print (Experiments.Ext_merge.run params));
  timed "ablation_fairness" (fun () ->
      Experiments.Ablations.print_fairness (Experiments.Ablations.run_fairness params));
  timed "scenarios" (fun () ->
      Experiments.Scenarios.print params (Experiments.Scenarios.run params));
  timed "app_faults" (fun () ->
      Experiments.App_faults.print params (Experiments.App_faults.run params));
  timed "fattree" (fun () ->
      Experiments.Fattree.print params (Experiments.Fattree.run params));
  timed "cdn_edge" (fun () ->
      Experiments.Cdn_edge.print params (Experiments.Cdn_edge.run params));
  timed "cellular" (fun () ->
      Experiments.Cellular.print params (Experiments.Cellular.run params))

(* ------------------------------------------------------------------ *)
(* Macrobenchmark: events per second of the simulator core on the Fig. 6
   TCP/CM workload (the sender path the whole evaluation is driven by). *)

type macro_result = {
  mc_workload : string;
  mc_packets : int;
  mc_events : int;
  mc_wall_s : float;
  mc_events_per_sec : float;
  mc_virtual_clock_s : float;
}

let run_macro () =
  let n = if smoke then 500 else if params.Experiments.Exp_common.full then 200_000 else 20_000 in
  (* best of 5 (min wall, compacted heap before each): a single ~70 ms
     sample is one scheduler quantum of OS noise, and the figure gates a
     15% PR-over-PR regression check — the minimum over a few runs is the
     standard way to estimate the code's cost rather than the machine's
     mood *)
  let runs = if smoke then 1 else 5 in
  let wall = ref infinity in
  let measured = ref None in
  for _ = 1 to runs do
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let m = Experiments.Fig6.measure_macro params Experiments.Fig6.Tcp_cm ~size:1448 ~n in
    let w = Unix.gettimeofday () -. t0 in
    if w < !wall then begin
      wall := w;
      measured := Some m
    end
  done;
  let m = Option.get !measured in
  let wall = !wall in
  let r =
    {
      mc_workload = "fig6 TCP/CM 1448B";
      mc_packets = n;
      mc_events = m.Experiments.Fig6.m_events;
      mc_wall_s = wall;
      mc_events_per_sec = float_of_int m.Experiments.Fig6.m_events /. wall;
      mc_virtual_clock_s = Time.to_float_s m.Experiments.Fig6.m_final_clock;
    }
  in
  Printf.printf "\n== Macrobenchmark: event core on the Fig. 6 workload ==\n";
  Printf.printf "%s: %d packets, %d events in %.3fs wall = %.0f events/sec\n%!" r.mc_workload
    r.mc_packets r.mc_events r.mc_wall_s r.mc_events_per_sec;
  r

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: the Fig. 6 macro workload with telemetry off
   (components hold the nil sink — one branch per potential event) vs on
   (100 ms virtual-time sampling + live trace).  Budget: ≤ 5 % overhead
   when off, relative to nothing at all — but since the nil sink IS the
   default, what we report is off vs on, and the acceptance gate is that
   the off path stays within 5 % of the PR-2 baseline (checked against
   the bench trajectory, not here). *)

type telemetry_overhead = {
  to_packets : int;
  to_off_wall_s : float;
  to_on_wall_s : float;
  to_overhead_pct : float;
}

let run_telemetry_overhead () =
  let n = if smoke then 500 else 20_000 in
  let best_of_3 f =
    let once () =
      let t0 = Unix.gettimeofday () in
      f ();
      Unix.gettimeofday () -. t0
    in
    let reps = if smoke then 1 else 3 in
    List.fold_left (fun acc _ -> Float.min acc (once ())) (once ())
      (List.init (Stdlib.max 0 (reps - 1)) Fun.id)
  in
  let run telemetry () =
    let p = { params with Experiments.Exp_common.telemetry } in
    ignore (Experiments.Fig6.measure_macro p Experiments.Fig6.Tcp_cm ~size:1448 ~n)
  in
  let off = best_of_3 (run None) in
  let on =
    best_of_3 (fun () -> run (Some (Experiments.Exp_common.request_telemetry ())) ())
  in
  let pct = (on -. off) /. off *. 100. in
  Printf.printf "\n== Telemetry overhead: Fig. 6 TCP/CM macro workload (%d packets) ==\n" n;
  Printf.printf "off (nil sink): %.3fs   on (100ms sampling + trace): %.3fs   overhead %+.1f%%\n%!"
    off on pct;
  { to_packets = n; to_off_wall_s = off; to_on_wall_s = on; to_overhead_pct = pct }

(* ------------------------------------------------------------------ *)
(* Endpoint-fault-defense overhead: the Fig. 6 macro workload with the
   feedback watchdog + misbehaviour auditor off (the default — per-grant
   allowance bookkeeping still runs, but no staleness aging and no
   suspicion scoring) vs on.  The workload is grant-disciplined TCP/CM,
   so a well-behaved client: the defenses should be pure bookkeeping.
   Budget: ≤ 5 % on vs off. *)

type defense_overhead = {
  do_packets : int;
  do_off_wall_s : float;
  do_on_wall_s : float;
  do_overhead_pct : float;
}

let run_defense_overhead () =
  let n = if smoke then 500 else 20_000 in
  let best_of_3 f =
    let once () =
      let t0 = Unix.gettimeofday () in
      f ();
      Unix.gettimeofday () -. t0
    in
    let reps = if smoke then 1 else 3 in
    List.fold_left (fun acc _ -> Float.min acc (once ())) (once ())
      (List.init (Stdlib.max 0 (reps - 1)) Fun.id)
  in
  let run defenses () =
    let p = { params with Experiments.Exp_common.defenses } in
    ignore (Experiments.Fig6.measure_macro p Experiments.Fig6.Tcp_cm ~size:1448 ~n)
  in
  let off = best_of_3 (run false) in
  let on = best_of_3 (run true) in
  let pct = (on -. off) /. off *. 100. in
  Printf.printf "\n== Defense overhead: Fig. 6 TCP/CM macro workload (%d packets) ==\n" n;
  Printf.printf "off: %.3fs   on (watchdog + auditor): %.3fs   overhead %+.1f%%\n%!" off on pct;
  { do_packets = n; do_off_wall_s = off; do_on_wall_s = on; do_overhead_pct = pct }

(* ------------------------------------------------------------------ *)
(* Feedback-plane hardening overhead: the ext_cmproto macro workload
   (windowed 168 B CM-protocol transfer, kernel-to-kernel feedback) with
   the cmproto hardening off (no sequence bookkeeping, no ts_echo clamp,
   no solicitation timer) vs on (the default).  The hardening sits on the
   per-feedback-packet receive path, so this workload — one feedback per
   data packet at ack_every:1 — is its worst case.  Budget: ≤ 5 % on vs
   off, gated by bench_diff. *)

type hardening_overhead = {
  ho_packets : int;
  ho_off_wall_s : float;
  ho_on_wall_s : float;
  ho_overhead_pct : float;
}

let run_hardening_overhead () =
  let n = if smoke then 500 else 20_000 in
  let best_of_3 f =
    let once () =
      Gc.compact ();
      let t0 = Unix.gettimeofday () in
      f ();
      Unix.gettimeofday () -. t0
    in
    let reps = if smoke then 1 else 3 in
    List.fold_left (fun acc _ -> Float.min acc (once ())) (once ())
      (List.init (Stdlib.max 0 (reps - 1)) Fun.id)
  in
  let run hardening () =
    Cmproto.set_hardening hardening;
    ignore (Experiments.Ext_cmproto.run_cmproto params ~n)
  in
  (* warm-up: the first run of this workload pays one-off page-fault and
     major-heap shaping costs that would otherwise all land on "off" *)
  if not smoke then run true ();
  let off = Fun.protect ~finally:(fun () -> Cmproto.set_hardening true)
      (fun () -> best_of_3 (run false))
  in
  let on = best_of_3 (run true) in
  let pct = (on -. off) /. off *. 100. in
  Printf.printf "\n== Hardening overhead: ext_cmproto macro workload (%d packets) ==\n" n;
  Printf.printf "off: %.3fs   on (seq/clamp/solicit defenses): %.3fs   overhead %+.1f%%\n%!"
    off on pct;
  { ho_packets = n; ho_off_wall_s = off; ho_on_wall_s = on; ho_overhead_pct = pct }

(* ------------------------------------------------------------------ *)
(* Observability overhead: the Fig. 6 macro workload plain (profiler and
   recorder both off — every engine dispatch is one branch on [plain])
   vs with the sampling profiler armed (per-category dispatch counters +
   a gettimeofday every 1024th dispatch) vs with the flight recorder
   attached (every link/CM trace event lands in a preallocated ring).
   Budgets: profiler ≤ 5 %, recorder ≤ 2 % — gated by bench_diff. *)

type observability_overhead = {
  oo_packets : int;
  oo_off_wall_s : float;
  oo_prof_wall_s : float;
  oo_prof_pct : float;
  oo_prof_budget_pct : float;
  oo_recorder_wall_s : float;
  oo_recorder_pct : float;
  oo_recorder_budget_pct : float;
}

let run_observability_overhead () =
  let n = if smoke then 500 else 20_000 in
  let best_of_3 f =
    let once () =
      let t0 = Unix.gettimeofday () in
      f ();
      Unix.gettimeofday () -. t0
    in
    let reps = if smoke then 1 else 3 in
    List.fold_left (fun acc _ -> Float.min acc (once ())) (once ())
      (List.init (Stdlib.max 0 (reps - 1)) Fun.id)
  in
  let run p () =
    ignore (Experiments.Fig6.measure_macro p Experiments.Fig6.Tcp_cm ~size:1448 ~n)
  in
  let rec_dir = Filename.concat (Filename.get_temp_dir_name ()) "cm-bench-recorder" in
  let off = best_of_3 (run params) in
  let prof = best_of_3 (run { params with Experiments.Exp_common.prof = true }) in
  let recorder =
    best_of_3 (run { params with Experiments.Exp_common.recorder = Some rec_dir })
  in
  let pct base v = (v -. base) /. base *. 100. in
  let r =
    {
      oo_packets = n;
      oo_off_wall_s = off;
      oo_prof_wall_s = prof;
      oo_prof_pct = pct off prof;
      oo_prof_budget_pct = 5.0;
      oo_recorder_wall_s = recorder;
      oo_recorder_pct = pct off recorder;
      oo_recorder_budget_pct = 2.0;
    }
  in
  Printf.printf "\n== Observability overhead: Fig. 6 TCP/CM macro workload (%d packets) ==\n" n;
  Printf.printf
    "off: %.3fs   prof on: %.3fs (%+.1f%%, budget 5%%)   recorder on: %.3fs (%+.1f%%, budget 2%%)\n%!"
    off prof r.oo_prof_pct recorder r.oo_recorder_pct;
  r

(* ------------------------------------------------------------------ *)
(* Many-flow scalability: the [scale] closed-loop workload (N flows over
   N/32 macroflows driving request → grant → notify → update cycles
   straight against the CM) at every family size, under both schedulers.
   The headline figure is wall-clock events/sec; near-constant per-event
   cost means it stays within 1.3× between N=64 and N=16384 (the PR6
   acceptance gate, enforced by bench_diff's --max-slowdown check). *)

let run_scale () =
  let sizes =
    if smoke then [ 64 ] else Experiments.Scale.family
  in
  Printf.printf "\n== Scale: many-flow CM control paths (events/sec vs N) ==\n%!";
  let points =
    List.concat_map
      (fun sched ->
        List.map
          (fun flows ->
            (* Per-event cost at different N is only comparable when every
               sample covers the same measurement window: with the
               standard 24 rounds an N=64 run lasts ~1 ms — short enough
               to dodge its share of GC and scheduler noise entirely —
               while an N=4096 run lasts ~200 ms and cannot.  So rounds
               are scaled inversely with N (same ~790k events per sample,
               ~0.3 s each), each sample starts from a compacted heap (the
               19 experiments before leave a big dead major heap whose
               sweep would tax the measured run), and the minimum wall of
               [reps] identical runs filters the ±15% machine-load swings
               out.  The runs are deterministic, so repetitions differ
               only in wall time. *)
            let rounds =
              if smoke then Experiments.Scale.rounds
              else
                Stdlib.max Experiments.Scale.rounds
                  (Experiments.Scale.rounds * 16384 / flows)
            in
            let reps = if smoke then 1 else 3 in
            let best = ref infinity in
            let pt = ref None in
            for _ = 1 to reps do
              Gc.compact ();
              let p = Experiments.Scale.run_point ~rounds params ~sched ~flows in
              if p.Experiments.Scale.p_wall_s < !best then begin
                best := p.Experiments.Scale.p_wall_s;
                pt := Some p
              end
            done;
            let pt = Option.get !pt in
            let eps = float_of_int pt.Experiments.Scale.p_events /. pt.Experiments.Scale.p_wall_s in
            Printf.printf
              "%-15s N=%6d: %8d events in %6.3fs wall = %9.0f events/sec  (p99 grant lat %.0f us)\n%!"
              (Experiments.Scale.sched_name sched)
              flows pt.Experiments.Scale.p_events pt.Experiments.Scale.p_wall_s eps
              pt.Experiments.Scale.p_lat_p99_us;
            pt)
          sizes)
      [ Experiments.Scale.Rr; Experiments.Scale.Stride ]
  in
  points

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: wall-clock cost and minor-heap allocation of
   the implementation's hot paths on this machine. *)

open Bechamel
open Toolkit

(* Each hot path is a raw [unit -> unit] closure: bechamel stages it for
   the wall-clock fit, and the allocation figure is taken directly from
   [Gc.minor_words] deltas — bechamel's own minor-allocated instance reads
   [Gc.quick_stat], which on OCaml 5 only refreshes at minor collections
   and grossly under-reports. *)

let bench_cm_transaction () =
  (* one full request -> grant -> notify -> update cycle *)
  let engine = Eventsim.Engine.create () in
  let cm = Cm.create engine ~mtu:1448 () in
  let key =
    Netsim.Addr.flow
      ~src:(Netsim.Addr.endpoint ~host:0 ~port:100)
      ~dst:(Netsim.Addr.endpoint ~host:1 ~port:200)
      ~proto:Netsim.Addr.Udp ()
  in
  let fid = Cm.open_flow cm key in
  Cm.register_send cm fid (fun fid ->
      Cm.notify cm fid ~nbytes:1448;
      Cm.update cm fid ~nsent:1448 ~nrecd:1448 ~loss:Cm.Cm_types.No_loss ~rtt:(Cm_util.Time.ms 10) ());
  fun () ->
    Cm.request cm fid;
    (* bounded: the macroflow's periodic maintenance timer means the
       event queue never fully drains *)
    Eventsim.Engine.run_for engine (Cm_util.Time.us 10)

let bench_engine_event () =
  let engine = Eventsim.Engine.create () in
  fun () ->
    ignore (Eventsim.Engine.schedule_after engine 10 (fun () -> ()));
    ignore (Eventsim.Engine.step engine)

(* the PR-1 acceptance cycle: schedule two events, cancel one, extract the
   other — the churn pattern of protocol timers under load *)
let bench_engine_cycle () =
  let engine = Eventsim.Engine.create () in
  fun () ->
    let h1 = Eventsim.Engine.schedule_after engine 10 ignore in
    ignore (Eventsim.Engine.schedule_after engine 20 ignore);
    ignore (Eventsim.Engine.cancel engine h1);
    ignore (Eventsim.Engine.step engine)

(* TCP retransmit-timer reset: re-arm an already-armed timer (in-place
   reschedule, no cancel+insert churn) *)
let bench_timer_rearm () =
  let engine = Eventsim.Engine.create () in
  let t = Eventsim.Timer.create engine ~callback:(fun () -> ()) in
  Eventsim.Timer.start t 1_000_000;
  fun () -> Eventsim.Timer.start t 1_000_000

let bench_heap () =
  let h = Heap.create () in
  let i = ref 0 in
  fun () ->
    incr i;
    ignore (Heap.insert h ~prio:(!i land 1023) !i);
    ignore (Heap.extract_min h)

(* timing-wheel near path: inserts landing within the wheel horizon (the
   vast majority — timer re-arms, transmit completions, grant events) *)
let bench_wheel_near () =
  let w = Wheel.create () in
  let time = ref 0 in
  let i = ref 0 in
  fun () ->
    incr i;
    time := !time + 4096;
    ignore (Wheel.insert w ~time:!time !i);
    ignore (Wheel.pop_min w)

(* timing-wheel overflow path: inserts beyond the horizon land in the
   overflow heap and migrate forward as the cursor turns — the cost a
   100 ms maintenance timer pays *)
let bench_wheel_far () =
  let w = Wheel.create () in
  let time = ref 0 in
  let i = ref 0 in
  fun () ->
    incr i;
    time := !time + 30_000_000;
    ignore (Wheel.insert w ~time:!time !i);
    ignore (Wheel.pop_min w)

let bench_heap_update_prio () =
  let h = Heap.create () in
  let handles = Array.init 256 (fun i -> Heap.insert h ~prio:i i) in
  let i = ref 0 in
  fun () ->
    incr i;
    ignore (Heap.update_prio h handles.(!i land 255) ~prio:(!i land 4095))

let bench_scheduler () =
  let s = Cm.Scheduler.round_robin () in
  fun () ->
    s.Cm.Scheduler.enqueue 1;
    s.Cm.Scheduler.enqueue 2;
    ignore (s.Cm.Scheduler.dequeue ());
    ignore (s.Cm.Scheduler.dequeue ())

(* stride dequeue at depth: 4096 backlogged flows held steady, so every
   op is one heap fix-up (O(log 4096)) plus one re-enqueue *)
let bench_stride_scheduler () =
  let s = Cm.Scheduler.weighted () in
  for i = 1 to 4096 do
    s.Cm.Scheduler.set_weight i (float_of_int (1 + (i mod 3)));
    s.Cm.Scheduler.enqueue i
  done;
  fun () ->
    match s.Cm.Scheduler.dequeue () with
    | Some f -> s.Cm.Scheduler.enqueue f
    | None -> ()

let bench_controller () =
  let c = Cm.Controller.aimd () ~mtu:1448 in
  fun () ->
    c.Cm.Controller.on_ack ~nbytes:1448;
    if c.Cm.Controller.cwnd () > 1 lsl 20 then c.Cm.Controller.on_loss Cm.Cm_types.Persistent

let bench_rto () =
  let r = Tcp.Rto.create () in
  fun () ->
    Tcp.Rto.observe r (Cm_util.Time.ms 50);
    ignore (Tcp.Rto.rto r)

(* telemetry hot paths: the operations instrumented components execute *)

let bench_telemetry_counter () =
  let m = Telemetry.Metrics.create () in
  let c = Telemetry.Metrics.counter m "pkts" in
  fun () -> Telemetry.Metrics.incr c

let bench_telemetry_gauge () =
  let m = Telemetry.Metrics.create () in
  let v = ref 0. in
  let g = Telemetry.Metrics.gauge m "depth" (fun () -> !v) in
  fun () ->
    v := !v +. 1.;
    ignore (Telemetry.Metrics.sample g)

let bench_telemetry_hist () =
  let m = Telemetry.Metrics.create () in
  let h = Telemetry.Metrics.histogram m "rtt" in
  let i = ref 0 in
  fun () ->
    incr i;
    Telemetry.Metrics.observe h (float_of_int (!i land 4095))

let bench_trace_span () =
  let engine = Eventsim.Engine.create () in
  let tr = Telemetry.Trace.create engine in
  fun () ->
    (* keep the buffer bounded so the bench measures emission, not growth *)
    if Telemetry.Trace.length tr > 65_536 then Telemetry.Trace.clear tr;
    Telemetry.Trace.span_begin tr ~cat:"bench" "op" [ ("n", Telemetry.Trace.Int 1) ];
    Telemetry.Trace.span_end tr ~cat:"bench" "op"

(* spec-DSL compilation: the full static-check pass (elaboration, BFS
   reachability per group destination, routed-floor oversubscription) on
   the fat-tree k=4 family spec — 36 nodes, 96 links, 19 flows.  This is
   the cost [cm_expt spec --check] and every DSL-built experiment pay
   before the first event fires. *)
let bench_spec_elaborate () =
  let spec = Experiments.Fattree.spec in
  fun () ->
    match Cm_spec.Check.elaborate spec with
    | Ok _ -> ()
    | Error _ -> assert false

(* spec → live netsim: elaboration plus Build.instantiate (hosts, routers,
   links, routing tables) — the end-to-end setup cost of a DSL family *)
let bench_spec_build () =
  let spec = Experiments.Fattree.spec in
  let ir =
    match Cm_spec.Check.elaborate spec with Ok ir -> ir | Error _ -> assert false
  in
  fun () ->
    let engine = Eventsim.Engine.create () in
    ignore (Cm_spec.Build.instantiate engine ir)

let bench_trace_off () =
  (* the cost an uninstrumented component pays at every potential event:
     one branch on the nil sink, argument list never built *)
  let tr = Telemetry.Trace.nil in
  let x = ref 0 in
  fun () ->
    incr x;
    if Telemetry.Trace.on tr then
      Telemetry.Trace.instant tr ~cat:"bench" "op" [ ("n", Telemetry.Trace.Int !x) ]

let hot_paths : (string * (unit -> unit)) list =
  [
    ("cm request/grant/notify/update", bench_cm_transaction ());
    ("engine schedule+step", bench_engine_event ());
    ("engine sched/cancel/extract cycle", bench_engine_cycle ());
    ("timer re-arm", bench_timer_rearm ());
    ("heap insert+extract", bench_heap ());
    ("heap update_prio", bench_heap_update_prio ());
    ("wheel insert+pop near", bench_wheel_near ());
    ("wheel insert+pop overflow", bench_wheel_far ());
    ("rr scheduler cycle", bench_scheduler ());
    ("stride dequeue+enqueue (4096 flows)", bench_stride_scheduler ());
    ("aimd on_ack", bench_controller ());
    ("rto observe", bench_rto ());
    ("telemetry counter incr", bench_telemetry_counter ());
    ("telemetry gauge sample", bench_telemetry_gauge ());
    ("telemetry hist observe", bench_telemetry_hist ());
    ("telemetry span begin/end", bench_trace_span ());
    ("telemetry nil-sink branch", bench_trace_off ());
    ("spec elaborate+check (fat_tree k=4)", bench_spec_elaborate ());
    ("spec build to netsim (fat_tree k=4)", bench_spec_build ());
  ]

let tests =
  Test.make_grouped ~name:"hot-paths" ~fmt:"%s %s"
    (List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) hot_paths)

(* average minor words per call over a long fresh run; [Gc.minor_words]
   reads the allocation pointer directly, so this is exact up to the
   constant loop overhead *)
let minor_words_per_op f =
  let runs = if smoke then 1_000 else 100_000 in
  for _ = 1 to runs / 10 do f () done;
  let w0 = Gc.minor_words () in
  for _ = 1 to runs do f () done;
  (Gc.minor_words () -. w0) /. float_of_int runs

(* (test name, ns/op, minor words/op) rows *)
let run_microbenchmarks () =
  print_endline "";
  print_endline "== Bechamel microbenchmarks: implementation hot paths (this machine) ==";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let quota =
    match Sys.getenv_opt "CM_BENCH_QUOTA" with
    | Some s -> float_of_string s
    | None -> if smoke then 0.02 else 0.25
  in
  let cfg =
    if smoke then Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let times = Analyze.all ols Instance.monotonic_clock raw in
  let estimate name =
    match Hashtbl.find_opt times name with
    | Some v -> ( match Analyze.OLS.estimates v with Some [ est ] -> Some est | _ -> None)
    | None -> None
  in
  let rows =
    List.map
      (fun (short, f) ->
        let name = "hot-paths " ^ short in
        (name, estimate name, Some (minor_words_per_op f)))
      hot_paths
  in
  List.iter
    (fun (name, ns, w) ->
      let fmt_o = function Some v -> Printf.sprintf "%10.1f" v | None -> "         ?" in
      Printf.printf "%-48s %s ns/op %s minor words/op\n" name (fmt_o ns) (fmt_o w))
    rows;
  rows

(* ------------------------------------------------------------------ *)
(* BENCH_PR1.json — machine-readable results (schema: DESIGN.md §6) *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit_json ~macro ~micro ~telem ~defense ~hardening ~obs ~scale () =
  let oc = open_out json_path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema_version\": 1,\n";
  p "  \"pr\": 9,\n";
  p "  \"seed\": %d,\n" params.Experiments.Exp_common.seed;
  p "  \"full\": %b,\n" params.Experiments.Exp_common.full;
  p "  \"smoke\": %b,\n" smoke;
  p "  \"experiments\": [\n";
  let walls = List.rev !experiment_walls in
  List.iteri
    (fun i (name, wall) ->
      p "    {\"name\": \"%s\", \"wall_s\": %.3f}%s\n" (json_escape name) wall
        (if i = List.length walls - 1 then "" else ","))
    walls;
  p "  ],\n";
  p "  \"macro\": {\n";
  p "    \"workload\": \"%s\",\n" (json_escape macro.mc_workload);
  p "    \"packets\": %d,\n" macro.mc_packets;
  p "    \"events\": %d,\n" macro.mc_events;
  p "    \"wall_s\": %.4f,\n" macro.mc_wall_s;
  p "    \"events_per_sec\": %.0f,\n" macro.mc_events_per_sec;
  p "    \"virtual_clock_s\": %.6f\n" macro.mc_virtual_clock_s;
  p "  },\n";
  p "  \"telemetry_overhead\": {\n";
  p "    \"workload\": \"fig6 TCP/CM 1448B\",\n";
  p "    \"packets\": %d,\n" telem.to_packets;
  p "    \"off_wall_s\": %.4f,\n" telem.to_off_wall_s;
  p "    \"on_wall_s\": %.4f,\n" telem.to_on_wall_s;
  p "    \"overhead_pct\": %.2f,\n" telem.to_overhead_pct;
  p "    \"sampling_period_ms\": 100,\n";
  p "    \"budget_pct\": 5.0\n";
  p "  },\n";
  p "  \"defense_overhead\": {\n";
  p "    \"workload\": \"fig6 TCP/CM 1448B\",\n";
  p "    \"packets\": %d,\n" defense.do_packets;
  p "    \"off_wall_s\": %.4f,\n" defense.do_off_wall_s;
  p "    \"on_wall_s\": %.4f,\n" defense.do_on_wall_s;
  p "    \"overhead_pct\": %.2f,\n" defense.do_overhead_pct;
  p "    \"budget_pct\": 5.0\n";
  p "  },\n";
  p "  \"hardening_overhead\": {\n";
  p "    \"workload\": \"ext_cmproto CM-protocol 168B ack_every:1\",\n";
  p "    \"packets\": %d,\n" hardening.ho_packets;
  p "    \"off_wall_s\": %.4f,\n" hardening.ho_off_wall_s;
  p "    \"on_wall_s\": %.4f,\n" hardening.ho_on_wall_s;
  p "    \"overhead_pct\": %.2f,\n" hardening.ho_overhead_pct;
  p "    \"budget_pct\": 5.0\n";
  p "  },\n";
  p "  \"observability_overhead\": {\n";
  p "    \"workload\": \"fig6 TCP/CM 1448B\",\n";
  p "    \"packets\": %d,\n" obs.oo_packets;
  p "    \"off_wall_s\": %.4f,\n" obs.oo_off_wall_s;
  p "    \"prof_wall_s\": %.4f,\n" obs.oo_prof_wall_s;
  p "    \"prof_overhead_pct\": %.2f,\n" obs.oo_prof_pct;
  p "    \"prof_budget_pct\": %.1f,\n" obs.oo_prof_budget_pct;
  p "    \"recorder_wall_s\": %.4f,\n" obs.oo_recorder_wall_s;
  p "    \"recorder_overhead_pct\": %.2f,\n" obs.oo_recorder_pct;
  p "    \"recorder_budget_pct\": %.1f\n" obs.oo_recorder_budget_pct;
  p "  },\n";
  p "  \"scale\": {\n";
  p "    \"flows_per_macroflow\": 32,\n";
  p "    \"rounds\": %d,\n" Experiments.Scale.rounds;
  p "    \"points\": [\n";
  List.iteri
    (fun i pt ->
      let open Experiments.Scale in
      p
        "      {\"scheduler\": \"%s\", \"flows\": %d, \"macroflows\": %d, \"grants\": %d, \
         \"events\": %d, \"wall_s\": %.4f, \"events_per_sec\": %.0f, \"grants_per_sec\": %.0f, \
         \"grant_lat_p99_us\": %.0f}%s\n"
        (json_escape (sched_name pt.p_sched))
        pt.p_flows pt.p_macroflows pt.p_grants pt.p_events pt.p_wall_s
        (float_of_int pt.p_events /. pt.p_wall_s)
        (float_of_int pt.p_grants /. pt.p_wall_s)
        pt.p_lat_p99_us
        (if i = List.length scale - 1 then "" else ","))
    scale;
  p "    ]\n";
  p "  },\n";
  p "  \"micro\": [\n";
  List.iteri
    (fun i (name, ns, w) ->
      let num = function Some v -> Printf.sprintf "%.2f" v | None -> "null" in
      p "    {\"name\": \"%s\", \"ns_per_op\": %s, \"minor_words_per_op\": %s}%s\n"
        (json_escape name) (num ns) (num w)
        (if i = List.length micro - 1 then "" else ","))
    micro;
  p "  ]\n";
  p "}\n";
  close_out oc;
  Printf.printf "\n[wrote %s]\n%!" json_path

let () =
  if not smoke then run_experiments ()
  else print_endline "[smoke mode: experiments skipped, tiny iteration counts]";
  let macro = run_macro () in
  let telem = run_telemetry_overhead () in
  let defense = run_defense_overhead () in
  let hardening = run_hardening_overhead () in
  let obs = run_observability_overhead () in
  let scale = run_scale () in
  let micro = run_microbenchmarks () in
  emit_json ~macro ~micro ~telem ~defense ~hardening ~obs ~scale ()
