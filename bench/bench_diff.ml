(* bench_diff — CI regression gate over two BENCH_*.json files.

   Usage: bench_diff OLD.json NEW.json [threshold_pct] [--max-slowdown X]

   Fails (exit 1) when:
     - macro.events_per_sec in NEW is more than threshold_pct (default 15)
       below OLD's;
     - any scale point present in BOTH files (matched by scheduler and
       flow count) regressed its events_per_sec by more than
       threshold_pct;
     - within NEW alone, a scheduler's events/sec at the largest N
       present fell below 1/X of its N=64 figure, where X is the
       --max-slowdown threshold (default 2.0; the PR6+ gate passes 1.3 —
       near-flat per-event cost over a 256× flow-count increase);
     - within NEW alone, an observability_overhead section (PR8+) whose
       measured profiler / recorder overhead_pct exceeds its own
       budget_pct (profiler ≤ 5 %, flight recorder ≤ 2 %).

   Both files are expected to come from the same machine (the committed
   baselines are produced together); this tool compares them, it does not
   normalise across hosts.  Files older than the scale section (e.g.
   BENCH_PR4.json) simply have no matching scale points, so only the
   macro gate applies to them.

   The parser below is a deliberately small recursive-descent JSON reader
   — enough for the bench schema (objects, arrays, strings, numbers,
   bools, null), no external dependencies. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char b '"'
          | Some '\\' -> Buffer.add_char b '\\'
          | Some '/' -> Buffer.add_char b '/'
          | Some 'n' -> Buffer.add_char b '\n'
          | Some 't' -> Buffer.add_char b '\t'
          | Some 'r' -> Buffer.add_char b '\r'
          | Some 'b' -> Buffer.add_char b '\b'
          | Some 'f' -> Buffer.add_char b '\012'
          | Some 'u' ->
              (* bench output is ASCII; keep the escape verbatim *)
              Buffer.add_string b "\\u"
          | _ -> fail "bad escape");
          advance ();
          loop ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---- accessors --------------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let path json keys =
  List.fold_left (fun acc k -> match acc with Some j -> member k j | None -> None) (Some json) keys

let number json keys =
  match path json keys with Some (Num f) -> Some f | _ -> None

let string_of_field json keys =
  match path json keys with Some (Str s) -> Some s | _ -> None

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* scale points as (scheduler, flows, events_per_sec) *)
let scale_points json =
  match path json [ "scale"; "points" ] with
  | Some (Arr pts) ->
      List.filter_map
        (fun pt ->
          match (string_of_field pt [ "scheduler" ], number pt [ "flows" ], number pt [ "events_per_sec" ]) with
          | Some sched, Some flows, Some eps -> Some (sched, int_of_float flows, eps)
          | _ -> None)
        pts
  | _ -> []

(* ---- the gates --------------------------------------------------------- *)

let failures = ref 0

let check ~what ~old_v ~new_v ~threshold_pct =
  let drop_pct = (old_v -. new_v) /. old_v *. 100. in
  let bad = drop_pct > threshold_pct in
  Printf.printf "%-52s old %12.0f  new %12.0f  %+6.1f%%  %s\n" what old_v new_v (-.drop_pct)
    (if bad then "FAIL" else "ok");
  if bad then incr failures

let () =
  let usage () =
    prerr_endline "usage: bench_diff OLD.json NEW.json [threshold_pct] [--max-slowdown X]";
    exit 2
  in
  (* pull the --max-slowdown flag out of argv, then read positionals *)
  let max_slowdown = ref 2.0 in
  let positional = ref [] in
  let rec scan i =
    if i < Array.length Sys.argv then
      match Sys.argv.(i) with
      | "--max-slowdown" ->
          if i + 1 >= Array.length Sys.argv then usage ();
          (match float_of_string_opt Sys.argv.(i + 1) with
          | Some f when f > 0. -> max_slowdown := f
          | _ -> usage ());
          scan (i + 2)
      | a ->
          positional := a :: !positional;
          scan (i + 1)
  in
  scan 1;
  let old_path, new_path, threshold_pct =
    match List.rev !positional with
    | [ o; n ] -> (o, n, 15.)
    | [ o; n; t ] -> (
        (o, n, match float_of_string_opt t with Some f -> f | None -> usage ()))
    | _ -> usage ()
  in
  let max_slowdown = !max_slowdown in
  let load p =
    try parse (read_file p) with
    | Sys_error e ->
        Printf.eprintf "bench_diff: %s\n" e;
        exit 2
    | Parse_error e ->
        Printf.eprintf "bench_diff: %s: %s\n" p e;
        exit 2
  in
  let old_j = load old_path and new_j = load new_path in
  Printf.printf "bench_diff: %s -> %s (threshold %.0f%%)\n\n" old_path new_path threshold_pct;
  (* 1. macro events/sec *)
  (match (number old_j [ "macro"; "events_per_sec" ], number new_j [ "macro"; "events_per_sec" ]) with
  | Some o, Some n -> check ~what:"macro events/sec (fig6 TCP/CM)" ~old_v:o ~new_v:n ~threshold_pct
  | _ ->
      Printf.eprintf "bench_diff: macro.events_per_sec missing\n";
      exit 2);
  (* 2. scale points present in both files *)
  let old_scale = scale_points old_j and new_scale = scale_points new_j in
  List.iter
    (fun (sched, flows, new_eps) ->
      match
        List.find_opt (fun (s, f, _) -> s = sched && f = flows) old_scale
      with
      | Some (_, _, old_eps) ->
          check
            ~what:(Printf.sprintf "scale events/sec (%s, N=%d)" sched flows)
            ~old_v:old_eps ~new_v:new_eps ~threshold_pct
      | None -> ())
    new_scale;
  if old_scale = [] && new_scale <> [] then
    print_endline "(old file has no scale section; scale compared within the new file only)";
  (* 3. within-NEW sub-linearity: events/sec at the largest N present
     must stay within max_slowdown of N=64 for each scheduler *)
  let scheds = List.sort_uniq compare (List.map (fun (s, _, _) -> s) new_scale) in
  List.iter
    (fun sched ->
      let eps n =
        List.find_map (fun (s, f, e) -> if s = sched && f = n then Some e else None) new_scale
      in
      let max_n =
        List.fold_left
          (fun acc (s, f, _) -> if s = sched && f > acc then f else acc)
          0 new_scale
      in
      match (eps 64, eps max_n) with
      | Some e64, Some e_max when max_n > 64 ->
          let ratio = e64 /. e_max in
          let bad = ratio > max_slowdown in
          Printf.printf "%-52s N=64 %10.0f  N=%d %10.0f  %5.2fx  %s\n"
            (Printf.sprintf "scale sub-linearity (%s)" sched)
            e64 max_n e_max ratio
            (if bad then Printf.sprintf "FAIL (>%.1fx slowdown)" max_slowdown else "ok");
          if bad then incr failures
      | _ -> ())
    scheds;
  (* 4. within-NEW overhead budgets (observability from PR8, feedback-plane
     hardening from PR9): the measured overhead must stay within its own
     recorded budget *)
  List.iter
    (fun (what, section, pct_key, budget_key) ->
      match
        (number new_j [ section; pct_key ], number new_j [ section; budget_key ])
      with
      | Some pct, Some budget ->
          let bad = pct > budget in
          Printf.printf "%-52s measured %+6.2f%%  budget %4.1f%%  %s\n" what pct budget
            (if bad then "FAIL" else "ok");
          if bad then incr failures
      | _ -> ())
    [
      ( "observability: profiler overhead",
        "observability_overhead", "prof_overhead_pct", "prof_budget_pct" );
      ( "observability: recorder overhead",
        "observability_overhead", "recorder_overhead_pct", "recorder_budget_pct" );
      ( "cmproto: feedback hardening overhead",
        "hardening_overhead", "overhead_pct", "budget_pct" );
    ];
  print_newline ();
  if !failures > 0 then begin
    Printf.printf "bench_diff: %d regression(s) beyond the gate\n" !failures;
    exit 1
  end
  else print_endline "bench_diff: all gates passed"
