(* The chaos-soak harness: a clean seed stays clean (twice — the
   determinism oracle is part of run_seed), and the grant-leak mutation
   canary is caught by the audit oracles with a shrunk reproducer. *)

module Soak = Cm_soak.Soak

let ( => ) name cond = Alcotest.(check bool) name true cond

let test_clean_seed () =
  match Soak.run_seed 1 with
  | None -> ()
  | Some f ->
      Alcotest.fail
        (Printf.sprintf "seed 1 must be oracle-clean, got: %s"
           (String.concat "; " f.Soak.f_failures))

let test_config_deterministic () =
  let a = Soak.cfg_of_seed 123 and b = Soak.cfg_of_seed 123 in
  "same seed, same drawn configuration" => (a = b);
  let c = Soak.cfg_of_seed 124 in
  "different seeds explore the space" => (a <> c)

let test_canary_caught_and_shrunk () =
  match Soak.run_seed ~canary:true 1 with
  | None -> Alcotest.fail "the grant-leak canary escaped every oracle"
  | Some f ->
      "the breach is the grant ledger"
      => (List.exists
            (fun v ->
              let has_sub sub s =
                let n = String.length sub and m = String.length s in
                let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
                go 0
              in
              has_sub "ledger" v)
            f.Soak.f_failures);
      (* the shrinker must strip the incidental chaos: the canary fires
         with no network faults at all *)
      "shrunk away the network faults" => (f.Soak.f_shrunk.Soak.c_net_faults = []);
      "reproducer names the seed"
      => (Soak.repro_line ~canary:true f = "REPRO: cm_expt soak --seed 1 --canary")

let () =
  Alcotest.run "soak"
    [
      ( "soak",
        [
          Alcotest.test_case "config drawing deterministic" `Quick test_config_deterministic;
          Alcotest.test_case "clean seed oracle-clean twice" `Slow test_clean_seed;
          Alcotest.test_case "canary caught with shrunk repro" `Slow
            test_canary_caught_and_shrunk;
        ] );
    ]
