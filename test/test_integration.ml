(* End-to-end integration tests: whole-system behaviours the paper claims,
   exercised across every layer (engine, network, CM, transports, apps). *)

open Cm_util
open Eventsim
open Netsim

let ( => ) name cond = Alcotest.(check bool) name true cond

(* The CM's headline safety claim: a TCP/CM flow competing with a native
   TCP flow through the same bottleneck gets a comparable share — the CM
   is TCP-compatible. *)
let test_cm_flow_is_tcp_friendly () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:5 in
  let net =
    Topology.pipe engine ~bandwidth_bps:8e6 ~delay:(Time.ms 25) ~qdisc_limit:60
      ~loss_rate:0.003 ~rng ()
  in
  let cm = Cm.create engine () in
  Cm.attach cm net.Topology.a;
  let d_native = ref 0 and d_cm = ref 0 in
  let _l1 =
    Tcp.Conn.listen net.Topology.b ~port:80
      ~on_accept:(fun c -> Tcp.Conn.on_receive c (fun n -> d_native := !d_native + n))
      ()
  in
  let _l2 =
    Tcp.Conn.listen net.Topology.b ~port:81
      ~on_accept:(fun c -> Tcp.Conn.on_receive c (fun n -> d_cm := !d_cm + n))
      ()
  in
  let c1 = Tcp.Conn.connect net.Topology.a ~dst:(Addr.endpoint ~host:1 ~port:80) () in
  let c2 =
    Tcp.Conn.connect net.Topology.a
      ~dst:(Addr.endpoint ~host:1 ~port:81)
      ~driver:(Tcp.Conn.Cm_driven cm) ()
  in
  Tcp.Conn.send c1 (1 lsl 28);
  Tcp.Conn.send c2 (1 lsl 28);
  Engine.run_for engine (Time.sec 30.);
  let hi = float_of_int (Stdlib.max !d_native !d_cm) in
  let lo = float_of_int (Stdlib.max 1 (Stdlib.min !d_native !d_cm)) in
  "both flows made real progress" => (!d_native > 2_000_000 && !d_cm > 2_000_000);
  "shares within 3x of each other" => (hi /. lo < 3.0)

(* An ensemble of CM flows to one destination must not out-compete a
   single native flow: the whole macroflow behaves like one TCP. *)
let test_macroflow_ensemble_not_aggressive () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:6 in
  let net =
    Topology.pipe engine ~bandwidth_bps:8e6 ~delay:(Time.ms 25) ~qdisc_limit:60
      ~loss_rate:0.003 ~rng ()
  in
  let cm = Cm.create engine () in
  Cm.attach cm net.Topology.a;
  let d_native = ref 0 and d_cm = ref 0 in
  let _l1 =
    Tcp.Conn.listen net.Topology.b ~port:80
      ~on_accept:(fun c -> Tcp.Conn.on_receive c (fun n -> d_native := !d_native + n))
      ()
  in
  let _l2 =
    Tcp.Conn.listen net.Topology.b ~port:81
      ~on_accept:(fun c -> Tcp.Conn.on_receive c (fun n -> d_cm := !d_cm + n))
      ()
  in
  let native = Tcp.Conn.connect net.Topology.a ~dst:(Addr.endpoint ~host:1 ~port:80) () in
  Tcp.Conn.send native (1 lsl 28);
  (* four concurrent CM connections share one macroflow *)
  let cm_conns =
    List.init 4 (fun _ ->
        let c =
          Tcp.Conn.connect net.Topology.a
            ~dst:(Addr.endpoint ~host:1 ~port:81)
            ~driver:(Tcp.Conn.Cm_driven cm) ()
        in
        Tcp.Conn.send c (1 lsl 26);
        c)
  in
  (match List.map (fun c -> Tcp.Conn.cm_flow c) cm_conns with
  | Some f :: rest ->
      List.iter
        (function
          | Some g -> Alcotest.(check int) "one macroflow" (Cm.macroflow_id cm f) (Cm.macroflow_id cm g)
          | None -> Alcotest.fail "missing cm flow")
        rest
  | _ -> Alcotest.fail "no flows");
  Engine.run_for engine (Time.sec 30.);
  let ensemble = float_of_int !d_cm and single = float_of_int (Stdlib.max 1 !d_native) in
  "ensemble of 4 got less than 3x a single native flow" => (ensemble /. single < 3.0)

(* UDP CC flow competing with TCP through the same bottleneck: the CM
   congestion-controls the UDP application too. *)
let test_cc_udp_coexists_with_tcp () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:7 in
  let net =
    Topology.pipe engine ~bandwidth_bps:6e6 ~delay:(Time.ms 20) ~qdisc_limit:50 ~rng ()
  in
  let cm = Cm.create engine ~mtu:1000 () in
  Cm.attach cm net.Topology.a;
  let d_tcp = ref 0 in
  let _l =
    Tcp.Conn.listen net.Topology.b ~port:80
      ~on_accept:(fun c -> Tcp.Conn.on_receive c (fun n -> d_tcp := !d_tcp + n))
      ()
  in
  let tcp_conn = Tcp.Conn.connect net.Topology.a ~dst:(Addr.endpoint ~host:1 ~port:80) () in
  Tcp.Conn.send tcp_conn (1 lsl 27);
  let receiver = Udp.Cc_socket.run_echo_receiver net.Topology.b ~port:6000 () in
  let sock = Udp.Cc_socket.create net.Topology.a ~cm ~dst:(Addr.endpoint ~host:1 ~port:6000) () in
  let feeder =
    Timer.create engine ~callback:(fun () ->
        let room = 64 - Udp.Cc_socket.queued sock in
        for _ = 1 to room do
          Udp.Cc_socket.send sock 1000
        done)
  in
  Timer.start_periodic feeder (Time.ms 50);
  Engine.run_for engine (Time.sec 20.);
  Timer.stop feeder;
  let udp_bytes = Udp.Feedback.Receiver.bytes_received receiver in
  "tcp made progress" => (!d_tcp > 2_000_000);
  "udp made progress" => (udp_bytes > 2_000_000);
  let hi = float_of_int (Stdlib.max !d_tcp udp_bytes) in
  let lo = float_of_int (Stdlib.max 1 (Stdlib.min !d_tcp udp_bytes)) in
  "both within 4x" => (hi /. lo < 4.0)

(* Determinism: identical seeds give byte-identical outcomes. *)
let test_runs_are_deterministic () =
  let run () =
    let engine = Engine.create () in
    let rng = Rng.create ~seed:99 in
    let net =
      Topology.pipe engine ~bandwidth_bps:5e6 ~delay:(Time.ms 15) ~loss_rate:0.01 ~rng ()
    in
    let delivered = ref 0 in
    let _l =
      Tcp.Conn.listen net.Topology.b ~port:80
        ~on_accept:(fun c -> Tcp.Conn.on_receive c (fun n -> delivered := !delivered + n))
        ()
    in
    let c = Tcp.Conn.connect net.Topology.a ~dst:(Addr.endpoint ~host:1 ~port:80) () in
    Tcp.Conn.send c 1_000_000;
    Engine.run_for engine (Time.sec 10.);
    let st = Tcp.Conn.stats c in
    (!delivered, st.Tcp.Conn.segments_out, st.Tcp.Conn.retransmits, Engine.events_executed engine)
  in
  let a = run () and b = run () in
  Alcotest.(check (pair int int)) "identical delivery and segments"
    (let d, s, _, _ = a in
     (d, s))
    (let d, s, _, _ = b in
     (d, s));
  let _, _, r1, e1 = a and _, _, r2, e2 = b in
  Alcotest.(check int) "identical retransmissions" r1 r2;
  Alcotest.(check int) "identical event counts" e1 e2

(* Determinism of the Fig. 6 macro workload: the lazy-cancel event core
   must not let cancelled-entry compaction or handle reuse perturb event
   ordering.  Two runs with the same seed must agree on every simulator
   counter, not just the headline throughput. *)
let test_fig6_macro_deterministic () =
  let params = { Experiments.Exp_common.default_params with seed = 42 } in
  let run () =
    Experiments.Fig6.measure_macro params Experiments.Fig6.Tcp_cm ~size:1448 ~n:2_000
  in
  let a = run () and b = run () in
  let open Experiments.Fig6 in
  "events executed" => (a.m_events > 0);
  Alcotest.(check int) "identical events executed" a.m_events b.m_events;
  Alcotest.(check int) "identical final clock"
    (a.m_final_clock : Time.t :> int) (b.m_final_clock : Time.t :> int);
  Alcotest.(check (float 0.)) "identical us/packet" a.m_us_per_packet b.m_us_per_packet;
  let check_link name (x : Link.stats) (y : Link.stats) =
    Alcotest.(check (list int))
      (name ^ " link stats")
      [ x.Link.enqueued_pkts; x.delivered_pkts; x.delivered_bytes;
        x.queue_drops; x.channel_drops; x.ecn_marks ]
      [ y.Link.enqueued_pkts; y.delivered_pkts; y.delivered_bytes;
        y.queue_drops; y.channel_drops; y.ecn_marks ]
  in
  check_link "forward" a.m_fwd b.m_fwd;
  check_link "reverse" a.m_rev b.m_rev

(* The star topology end-to-end: several clients fetch through a shared
   bottleneck; everything completes and the bottleneck is shared. *)
let test_star_web_workload () =
  let engine = Engine.create () in
  let net =
    Topology.star engine ~n_clients:3 ~access_bps:1e8 ~access_delay:(Time.ms 1)
      ~bottleneck_bps:8e6 ~bottleneck_delay:(Time.ms 20) ()
  in
  let cm = Cm.create engine () in
  Cm.attach cm net.Topology.server;
  let macroflows = ref [] in
  let _server =
    Tcp.Conn.listen net.Topology.server ~port:80 ~driver:(Tcp.Conn.Cm_driven cm)
      ~on_accept:(fun conn ->
        (match Tcp.Conn.cm_flow conn with
        | Some fid -> macroflows := Cm.macroflow_id cm fid :: !macroflows
        | None -> Alcotest.fail "server connection has no CM flow");
        let responded = ref false in
        Tcp.Conn.on_receive conn (fun _ ->
            if not !responded then begin
              responded := true;
              Tcp.Conn.send conn 200_000;
              Tcp.Conn.close conn
            end))
      ()
  in
  let done_count = ref 0 in
  Array.iter
    (fun client ->
      Cm_apps.Web.fetch client
        ~dst:(Addr.endpoint ~host:0 ~port:80)
        ~expect_bytes:200_000
        ~on_done:(fun r ->
          Alcotest.(check int) "full file" 200_000 r.Cm_apps.Web.bytes;
          incr done_count)
        ())
    net.Topology.clients;
  Engine.run_for engine (Time.sec 20.);
  Alcotest.(check int) "all three clients served" 3 !done_count;
  (* three different destinations => three macroflows at the server *)
  Alcotest.(check int) "per-destination macroflows" 3
    (List.length (List.sort_uniq Stdlib.compare !macroflows))

(* ECN end to end: a CM flow through a RED+ECN bottleneck adapts via
   marks, with far fewer drops than with drop-tail. *)
let test_ecn_path_through_cm () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:8 in
  let a = Host.create engine ~id:0 () in
  let b = Host.create engine ~id:1 () in
  let qdisc = Queue_disc.red ~ecn:true ~min_th:5 ~max_th:15 ~limit_pkts:50 ~rng () in
  let ab =
    Link.create engine ~bandwidth_bps:4e6 ~delay:(Time.ms 15) ~qdisc
      ~sink:(fun p -> Host.deliver b p)
      ()
  in
  let ba =
    Link.create engine ~bandwidth_bps:4e6 ~delay:(Time.ms 15)
      ~sink:(fun p -> Host.deliver a p)
      ()
  in
  Host.attach_route a (Link.send ab);
  Host.attach_route b (Link.send ba);
  let cm = Cm.create engine () in
  Cm.attach cm a;
  let config = { Tcp.Conn.default_config with Tcp.Conn.ecn = true } in
  let delivered = ref 0 in
  let _l =
    Tcp.Conn.listen b ~port:80 ~config
      ~on_accept:(fun c -> Tcp.Conn.on_receive c (fun n -> delivered := !delivered + n))
      ()
  in
  let c =
    Tcp.Conn.connect a
      ~dst:(Addr.endpoint ~host:1 ~port:80)
      ~driver:(Tcp.Conn.Cm_driven cm) ~config ()
  in
  Tcp.Conn.send c 3_000_000;
  Engine.run_for engine (Time.sec 20.);
  Alcotest.(check int) "delivered over ECN path" 3_000_000 !delivered;
  let stats = Link.stats ab in
  "marks were applied" => (stats.Link.ecn_marks > 0);
  (* the flow keeps delivering with a meaningful share of congestion
     signaled by marks rather than drops *)
  "marks are a substantial signal"
  => (stats.Link.ecn_marks * 2 > stats.Link.queue_drops)

(* Experiment smoke tests: each paper experiment runs and its headline
   shape holds. *)
let quick_params = { Experiments.Exp_common.default_params with seed = 42 }

let test_fig3_shape () =
  let rows = Experiments.Fig3.run quick_params in
  let at pct =
    List.find (fun r -> Float.abs (r.Experiments.Fig3.loss_pct -. pct) < 0.01) rows
  in
  let low = at 0.5 and high = at 5.0 in
  "throughput declines with loss"
  => (low.Experiments.Fig3.linux_kbps > 2. *. high.Experiments.Fig3.linux_kbps);
  (* TCP-compatibility: the curves track within a factor ~2 where loss dominates *)
  List.iter
    (fun r ->
      if r.Experiments.Fig3.loss_pct >= 0.25 then begin
        let ratio = r.Experiments.Fig3.linux_kbps /. Float.max 1. r.Experiments.Fig3.cm_kbps in
        "cm within 2.5x of linux" => (ratio < 2.5 && ratio > 0.4)
      end)
    rows

let test_fig7_shape () =
  let rows = Experiments.Fig7.run quick_params in
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  "first CM request is slower (initial window 1 vs 2)"
  => (first.Experiments.Fig7.cm_ms > first.Experiments.Fig7.linux_ms);
  "later CM requests are much faster (state sharing)"
  => (last.Experiments.Fig7.cm_ms < 0.7 *. last.Experiments.Fig7.linux_ms);
  "linux requests are flat"
  => (Float.abs (last.Experiments.Fig7.linux_ms -. first.Experiments.Fig7.linux_ms)
      < 0.1 *. first.Experiments.Fig7.linux_ms)

let test_fig6_shape () =
  (* one small size is enough for the ordering claim in a unit test *)
  let series = Experiments.Fig6.run_table1 quick_params in
  let count_of v kind =
    let row =
      List.find (fun r -> r.Experiments.Fig6.t1_variant = v) series
    in
    match List.assoc_opt kind row.Experiments.Fig6.ops_per_packet with
    | Some c -> c
    | None -> 0.
  in
  "alf adds a request ioctl"
  => (count_of Experiments.Fig6.Alf "ioctl(request)" > 0.9);
  "buffered has no request ioctl"
  => (count_of Experiments.Fig6.Buffered "ioctl(request)" < 0.1);
  "noconnect adds the notify ioctl"
  => (count_of Experiments.Fig6.Alf_noconnect "ioctl(notify)" > 0.9
      && count_of Experiments.Fig6.Alf "ioctl(notify)" < 0.1);
  "tcp pays no recv" => (count_of Experiments.Fig6.Tcp_linux "recv" < 0.1)

let test_phttp_shape () =
  let rows = Experiments.Sec6_phttp.run quick_params in
  match rows with
  | [ p_clean; _p_loss; c_clean; _c_loss ] ->
      let span a =
        Array.fold_left Float.max 0. a -. Array.fold_left Float.min Float.infinity a
      in
      (* parallelism of downloads: P-HTTP serializes first bytes, the CM
         delivers all objects' first chunks almost simultaneously *)
      "phttp serializes first chunks"
      => (span p_clean.Experiments.Sec6_phttp.first_chunk_ms
          > 5. *. span c_clean.Experiments.Sec6_phttp.first_chunk_ms)
  | _ -> Alcotest.fail "expected four rows"

let test_content_adaptation_meets_target () =
  let rows = Experiments.Content_adapt.run quick_params in
  List.iter
    (fun r ->
      (* after the first (estimate-free) request, the adaptive server must
         meet the 1 s budget on every path *)
      List.iteri
        (fun i f ->
          if i > 0 then
            "adaptive under budget"
            => (f.Experiments.Content_adapt.latency_ms < 1_000.))
        r.Experiments.Content_adapt.adaptive)
    rows;
  (* the fixed server must blow the budget on the slowest path *)
  let slow = List.nth rows (List.length rows - 1) in
  let worst =
    List.fold_left
      (fun acc f -> Float.max acc f.Experiments.Content_adapt.latency_ms)
      0. slow.Experiments.Content_adapt.fixed
  in
  "fixed blows the budget on the slow path" => (worst > 2_000.)

let test_merged_macroflow_less_aggressive () =
  match Experiments.Ext_merge.run quick_params with
  | [ separate; merged ] ->
      "separate pair out-competes one TCP"
      => (separate.Experiments.Ext_merge.pair_to_reference > 1.5);
      "merged pair takes about one TCP share"
      => (merged.Experiments.Ext_merge.pair_to_reference < 1.5)
  | _ -> Alcotest.fail "expected two rows"


let test_fig4_5_shape () =
  let rows = Experiments.Fig4_5.run quick_params in
  List.iter
    (fun r ->
      let open Experiments.Fig4_5 in
      (* throughput within 0.5%; CPU delta within (0, 2%) *)
      "throughput parity"
      => (Float.abs (r.linux_kbps -. r.cm_kbps) /. r.linux_kbps < 0.005);
      "cpu delta small and positive"
      => (r.cm_cpu_pct -. r.linux_cpu_pct > 0. && r.cm_cpu_pct -. r.linux_cpu_pct < 2.))
    rows

let test_fig8_tracks_schedule () =
  let s = Experiments.Fig8_10.run_fig8 quick_params in
  let rate_at t_s =
    List.fold_left
      (fun acc p ->
        if Float.abs (p.Experiments.Fig8_10.t_s -. t_s) < 0.5 then
          p.Experiments.Fig8_10.tx_kbps
        else acc)
      0. s.Experiments.Fig8_10.samples
  in
  (* schedule: 18 Mbit/s until 5 s, 3 Mbit/s from 10-15 s, 18 again at 20 s *)
  "high at t=4" => (rate_at 4. > 1_500.);
  "low at t=13" => (rate_at 13. < 600.);
  "recovered at t=23" => (rate_at 23. > 1_500.)


let test_fairness_jain () =
  match Experiments.Ablations.run_fairness quick_params with
  | [ native; cm_only; _mix ] ->
      "native ensemble reasonably fair" => (native.Experiments.Ablations.jain > 0.9);
      "cm macroflow perfectly fair" => (cm_only.Experiments.Ablations.jain > 0.999)
  | _ -> Alcotest.fail "expected three rows"

let () =
  Alcotest.run "integration"
    [
      ( "coexistence",
        [
          Alcotest.test_case "cm flow is tcp-friendly" `Quick test_cm_flow_is_tcp_friendly;
          Alcotest.test_case "ensemble not aggressive" `Quick
            test_macroflow_ensemble_not_aggressive;
          Alcotest.test_case "cc-udp coexists with tcp" `Quick test_cc_udp_coexists_with_tcp;
        ] );
      ( "system",
        [
          Alcotest.test_case "deterministic runs" `Quick test_runs_are_deterministic;
          Alcotest.test_case "fig6 macro determinism" `Quick test_fig6_macro_deterministic;
          Alcotest.test_case "star web workload" `Quick test_star_web_workload;
          Alcotest.test_case "ecn path through cm" `Quick test_ecn_path_through_cm;
        ] );
      ( "experiment-shapes",
        [
          Alcotest.test_case "fig3 shape" `Slow test_fig3_shape;
          Alcotest.test_case "fig7 shape" `Slow test_fig7_shape;
          Alcotest.test_case "fig6/table1 shape" `Slow test_fig6_shape;
          Alcotest.test_case "sec6 phttp shape" `Slow test_phttp_shape;
          Alcotest.test_case "content adaptation target" `Slow
            test_content_adaptation_meets_target;
          Alcotest.test_case "merged macroflow share" `Slow
            test_merged_macroflow_less_aggressive;
          Alcotest.test_case "fig4/5 shape" `Slow test_fig4_5_shape;
          Alcotest.test_case "fig8 tracks schedule" `Slow test_fig8_tracks_schedule;
          Alcotest.test_case "fairness jain index" `Slow test_fairness_jain;
        ] );
    ]
