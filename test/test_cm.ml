(* Tests for the CM core: controllers, schedulers, macroflow window
   accounting, and the public API. *)

open Cm_util
open Eventsim
open Netsim
open Cm

let mtu = 1000

let make_env () =
  let engine = Engine.create () in
  let cm = Cm.create engine ~mtu () in
  (engine, cm)

let flow_key ?(sport = 100) ?(dport = 200) ?(dst = 1) () =
  Addr.flow
    ~src:(Addr.endpoint ~host:0 ~port:sport)
    ~dst:(Addr.endpoint ~host:dst ~port:dport)
    ~proto:Addr.Udp ()

(* ------------------------------------------------------------------ *)
(* Controller tests *)

let test_aimd_slow_start () =
  let c = Controller.aimd () ~mtu in
  Alcotest.(check int) "initial window is one mtu" mtu (c.Controller.cwnd ());
  Alcotest.(check bool) "starts in slow start" true (c.Controller.in_slow_start ());
  c.Controller.on_ack ~nbytes:mtu;
  Alcotest.(check int) "doubles per window acked" (2 * mtu) (c.Controller.cwnd ());
  c.Controller.on_ack ~nbytes:(2 * mtu);
  Alcotest.(check int) "pure byte counting" (4 * mtu) (c.Controller.cwnd ());
  c.Controller.on_ack ~nbytes:(4 * mtu);
  (* a large batched feedback event opens the window in one step *)
  Alcotest.(check int) "batched feedback opens fully" (8 * mtu) (c.Controller.cwnd ())

let test_aimd_transient_halves () =
  let c = Controller.aimd () ~mtu in
  for _ = 1 to 10 do
    c.Controller.on_ack ~nbytes:mtu
  done;
  let before = c.Controller.cwnd () in
  c.Controller.on_loss Cm_types.Transient;
  Alcotest.(check int) "halved" (Stdlib.max (before / 2) (2 * mtu)) (c.Controller.cwnd ());
  Alcotest.(check bool) "no longer in slow start" false (c.Controller.in_slow_start ())

let test_aimd_persistent_collapses () =
  let c = Controller.aimd () ~mtu in
  for _ = 1 to 10 do
    c.Controller.on_ack ~nbytes:mtu
  done;
  c.Controller.on_loss Cm_types.Persistent;
  Alcotest.(check int) "back to one mtu" mtu (c.Controller.cwnd ());
  Alcotest.(check bool) "slow start restarts" true (c.Controller.in_slow_start ())

let test_aimd_congestion_avoidance_linear () =
  let c = Controller.aimd () ~mtu in
  c.Controller.on_ack ~nbytes:mtu;
  c.Controller.on_loss Cm_types.Transient;
  (* now in congestion avoidance at ssthresh *)
  let w0 = c.Controller.cwnd () in
  (* acking one full window grows the window by exactly one mtu *)
  let rec ack_window remaining =
    if remaining > 0 then begin
      let chunk = Stdlib.min remaining mtu in
      c.Controller.on_ack ~nbytes:chunk;
      ack_window (remaining - chunk)
    end
  in
  ack_window w0;
  Alcotest.(check int) "one mtu per window" (w0 + mtu) (c.Controller.cwnd ())

let test_aimd_floor_and_reset () =
  let c = Controller.aimd () ~mtu in
  for _ = 1 to 5 do
    c.Controller.on_loss Cm_types.Persistent
  done;
  Alcotest.(check bool) "never below one mtu" true (c.Controller.cwnd () >= mtu);
  for _ = 1 to 20 do
    c.Controller.on_ack ~nbytes:mtu
  done;
  c.Controller.reset ();
  Alcotest.(check int) "reset restores initial window" mtu (c.Controller.cwnd ())

let test_aimd_ecn_like_transient () =
  let c1 = Controller.aimd () ~mtu and c2 = Controller.aimd () ~mtu in
  for _ = 1 to 8 do
    c1.Controller.on_ack ~nbytes:mtu;
    c2.Controller.on_ack ~nbytes:mtu
  done;
  c1.Controller.on_loss Cm_types.Transient;
  c2.Controller.on_loss Cm_types.Ecn_echo;
  Alcotest.(check int) "ecn reduces like transient" (c1.Controller.cwnd ())
    (c2.Controller.cwnd ())

let test_binomial_aimd_equivalence () =
  (* (k=0, l=1) must behave as AIMD: halve on loss *)
  let c = Controller.binomial ~k:0. ~l:1. () ~mtu in
  for _ = 1 to 16 do
    c.Controller.on_ack ~nbytes:mtu
  done;
  let before = c.Controller.cwnd () in
  c.Controller.on_loss Cm_types.Transient;
  let after = c.Controller.cwnd () in
  Alcotest.(check bool)
    (Printf.sprintf "halves on loss (%d -> %d)" before after)
    true
    (abs (after - (before / 2)) <= mtu)

let test_binomial_sqrt_gentler () =
  (* SQRT decreases less than AIMD from the same window *)
  let a = Controller.binomial ~k:0. ~l:1. () ~mtu in
  let s = Controller.binomial ~k:0.5 ~l:0.5 () ~mtu in
  for _ = 1 to 20 do
    a.Controller.on_ack ~nbytes:mtu;
    s.Controller.on_ack ~nbytes:mtu
  done;
  let wa = a.Controller.cwnd () and ws = s.Controller.cwnd () in
  a.Controller.on_loss Cm_types.Transient;
  s.Controller.on_loss Cm_types.Transient;
  let da = wa - a.Controller.cwnd () and ds = ws - s.Controller.cwnd () in
  Alcotest.(check bool)
    (Printf.sprintf "sqrt decrease %d < aimd decrease %d" ds da)
    true (ds < da)


let test_equation_slow_starts_then_tracks_loss_rate () =
  let c = Controller.equation () ~mtu in
  Alcotest.(check bool) "slow start before first loss" true (c.Controller.in_slow_start ());
  for _ = 1 to 10 do
    c.Controller.on_ack ~nbytes:mtu
  done;
  Alcotest.(check bool) "window grew" true (c.Controller.cwnd () > 5 * mtu);
  (* a loss event every 50 mtu of acked data: p = 1/50, W = mtu*sqrt(75) ~ 8.6 mtu *)
  for _ = 1 to 10 do
    for _ = 1 to 50 do
      c.Controller.on_ack ~nbytes:mtu
    done;
    c.Controller.on_loss Cm_types.Transient
  done;
  let w = c.Controller.cwnd () in
  Alcotest.(check bool)
    (Printf.sprintf "window near equation value (%d)" w)
    true
    (w > 6 * mtu && w < 12 * mtu)

let test_equation_smoother_than_aimd () =
  (* after a steady loss pattern, one more loss barely moves the equation
     window while AIMD halves *)
  let e = Controller.equation () ~mtu and a = Controller.aimd () ~mtu in
  for _ = 1 to 10 do
    for _ = 1 to 50 do
      e.Controller.on_ack ~nbytes:mtu;
      a.Controller.on_ack ~nbytes:mtu
    done;
    e.Controller.on_loss Cm_types.Transient;
    a.Controller.on_loss Cm_types.Transient
  done;
  let we0 = e.Controller.cwnd () and wa0 = a.Controller.cwnd () in
  for _ = 1 to 50 do
    e.Controller.on_ack ~nbytes:mtu;
    a.Controller.on_ack ~nbytes:mtu
  done;
  e.Controller.on_loss Cm_types.Transient;
  a.Controller.on_loss Cm_types.Transient;
  let de = abs (e.Controller.cwnd () - we0) and da = abs (a.Controller.cwnd () - wa0) in
  Alcotest.(check bool)
    (Printf.sprintf "equation moved %d vs aimd %d" de da)
    true (de * 2 < da)

let test_equation_reset () =
  let c = Controller.equation () ~mtu in
  for _ = 1 to 100 do
    c.Controller.on_ack ~nbytes:mtu
  done;
  c.Controller.on_loss Cm_types.Transient;
  c.Controller.reset ();
  Alcotest.(check int) "initial window restored" mtu (c.Controller.cwnd ());
  Alcotest.(check bool) "back in slow start" true (c.Controller.in_slow_start ())

(* ------------------------------------------------------------------ *)
(* Scheduler tests *)

let drain sched n =
  List.init n (fun _ -> sched.Scheduler.dequeue ()) |> List.filter_map Fun.id

let test_rr_alternates () =
  let s = Scheduler.round_robin () in
  s.Scheduler.enqueue 1;
  s.Scheduler.enqueue 1;
  s.Scheduler.enqueue 2;
  s.Scheduler.enqueue 2;
  Alcotest.(check (list int)) "alternates flows" [ 1; 2; 1; 2 ] (drain s 4);
  Alcotest.(check (option int)) "then empty" None (s.Scheduler.dequeue ())

let test_rr_remove_purges () =
  let s = Scheduler.round_robin () in
  s.Scheduler.enqueue 1;
  s.Scheduler.enqueue 2;
  s.Scheduler.enqueue 1;
  s.Scheduler.remove 1;
  Alcotest.(check (list int)) "only flow 2 remains" [ 2 ] (drain s 3);
  Alcotest.(check int) "pending zero" 0 (s.Scheduler.pending ())

let test_rr_pending_counts () =
  let s = Scheduler.round_robin () in
  for _ = 1 to 5 do
    s.Scheduler.enqueue 7
  done;
  s.Scheduler.enqueue 9;
  Alcotest.(check int) "pending total" 6 (s.Scheduler.pending ());
  Alcotest.(check int) "pending for 7" 5 (s.Scheduler.pending_for 7);
  Alcotest.(check int) "pending for 9" 1 (s.Scheduler.pending_for 9)

let test_weighted_proportional () =
  let s = Scheduler.weighted () in
  s.Scheduler.set_weight 1 3.0;
  s.Scheduler.set_weight 2 1.0;
  for _ = 1 to 40 do
    s.Scheduler.enqueue 1;
    s.Scheduler.enqueue 2
  done;
  let grants = drain s 40 in
  let n1 = List.length (List.filter (( = ) 1) grants) in
  let n2 = List.length (List.filter (( = ) 2) grants) in
  Alcotest.(check bool)
    (Printf.sprintf "3:1 split (%d vs %d)" n1 n2)
    true
    (n1 >= 27 && n1 <= 33 && n1 + n2 = 40)

(* satellite (b): pass rebasing must be invisible to fairness.  A tiny
   threshold forces thousands of rebases over 10M grants; the 10:1 weight
   split has to survive every one of them. *)
let test_stride_rebase_fairness () =
  let s = Scheduler.weighted_stride ~rebase_threshold:1e9 () in
  s.Scheduler.set_weight 1 1.0;
  s.Scheduler.set_weight 2 10.0;
  s.Scheduler.enqueue 1;
  s.Scheduler.enqueue 2;
  let n1 = ref 0 and n2 = ref 0 in
  let total = 10_000_000 in
  for _ = 1 to total do
    match s.Scheduler.dequeue () with
    | Some 1 ->
        incr n1;
        s.Scheduler.enqueue 1
    | Some 2 ->
        incr n2;
        s.Scheduler.enqueue 2
    | _ -> Alcotest.fail "scheduler ran dry"
  done;
  let ratio = float_of_int !n2 /. float_of_int !n1 in
  Alcotest.(check int) "every grant accounted" total (!n1 + !n2);
  Alcotest.(check bool)
    (Printf.sprintf "10:1 split after 10M grants across rebases (%d vs %d)" !n2 !n1)
    true
    (ratio > 9.9 && ratio < 10.1)

(* satellite (c): at N=4096, over full cycles with every flow backlogged,
   each flow's grant count stays within +/-1 of its weighted share *)
let check_full_cycle_share s ~weights ~cycles =
  let n = Array.length weights in
  let sum_w = Array.fold_left ( + ) 0 weights in
  for i = 0 to n - 1 do
    for _ = 1 to (cycles * weights.(i)) + 2 do
      s.Scheduler.enqueue i
    done
  done;
  let got = Array.make n 0 in
  for _ = 1 to cycles * sum_w do
    match s.Scheduler.dequeue () with
    | Some i -> got.(i) <- got.(i) + 1
    | None -> Alcotest.fail "scheduler ran dry"
  done;
  Array.iteri
    (fun i g ->
      let ideal = cycles * weights.(i) in
      if abs (g - ideal) > 1 then
        Alcotest.failf "flow %d got %d grants, weighted share %d (weight %d)" i g ideal
          weights.(i))
    got

let test_rr_share_at_4096 () =
  let weights = Array.make 4096 1 in
  check_full_cycle_share (Scheduler.round_robin ()) ~weights ~cycles:3

let test_stride_share_at_4096 () =
  let weights = Array.init 4096 (fun i -> 1 + (i mod 3)) in
  let s = Scheduler.weighted () in
  Array.iteri (fun i w -> s.Scheduler.set_weight i (float_of_int w)) weights;
  check_full_cycle_share s ~weights ~cycles:3

(* ------------------------------------------------------------------ *)
(* CM API tests *)

let test_open_close () =
  let _engine, cm = make_env () in
  let fid = Cm.open_flow cm (flow_key ()) in
  Alcotest.(check int) "mtu exposed" mtu (Cm.mtu cm fid);
  Alcotest.(check (option int)) "lookup finds flow" (Some fid) (Cm.lookup cm (flow_key ()));
  Cm.close_flow cm fid;
  Alcotest.(check (option int)) "lookup after close" None (Cm.lookup cm (flow_key ()));
  Alcotest.check_raises "double close rejected" (Invalid_argument "Cm: unknown or closed flow 1")
    (fun () -> Cm.close_flow cm fid)

let test_duplicate_open_rejected () =
  let _engine, cm = make_env () in
  let _fid = Cm.open_flow cm (flow_key ()) in
  Alcotest.(check bool) "duplicate open raises" true
    (try
       ignore (Cm.open_flow cm (flow_key ()));
       false
     with Invalid_argument _ -> true)

let test_same_dst_shares_macroflow () =
  let _engine, cm = make_env () in
  let f1 = Cm.open_flow cm (flow_key ~sport:100 ()) in
  let f2 = Cm.open_flow cm (flow_key ~sport:101 ()) in
  let f3 = Cm.open_flow cm (flow_key ~sport:102 ~dst:2 ()) in
  Alcotest.(check int) "same destination, same macroflow" (Cm.macroflow_id cm f1)
    (Cm.macroflow_id cm f2);
  Alcotest.(check bool) "different destination, different macroflow" true
    (Cm.macroflow_id cm f1 <> Cm.macroflow_id cm f3)

let test_request_grant_cycle () =
  let engine, cm = make_env () in
  let fid = Cm.open_flow cm (flow_key ()) in
  let grants = ref 0 in
  Cm.register_send cm fid (fun g ->
      Alcotest.(check int) "grant names the flow" fid g;
      incr grants;
      (* client transmits a full mtu; notify is what the IP hook would do *)
      Cm.notify cm fid ~nbytes:mtu);
  Cm.request cm fid;
  Engine.run_for engine (Time.ms 1);
  Alcotest.(check int) "one grant delivered" 1 !grants;
  let mf = Cm.macroflow_of cm fid in
  Alcotest.(check int) "window fully outstanding" mtu (Macroflow.outstanding mf);
  (* second request must stall: window is full *)
  Cm.request cm fid;
  Engine.run_for engine (Time.ms 1);
  Alcotest.(check int) "no grant while window closed" 1 !grants;
  (* feedback opens the window and releases the pending request *)
  Cm.update cm fid ~nsent:mtu ~nrecd:mtu ~loss:Cm_types.No_loss ~rtt:(Time.ms 10) ();
  Engine.run_for engine (Time.ms 1);
  Alcotest.(check int) "pending grant released by update" 2 !grants

let test_grant_declined_passes_on () =
  let engine, cm = make_env () in
  let f1 = Cm.open_flow cm (flow_key ~sport:100 ()) in
  let f2 = Cm.open_flow cm (flow_key ~sport:101 ()) in
  let f2_grants = ref 0 in
  (* f1 declines its grant: cm_notify(0) *)
  Cm.register_send cm f1 (fun _ -> Cm.notify cm f1 ~nbytes:0);
  Cm.register_send cm f2 (fun _ ->
      incr f2_grants;
      Cm.notify cm f2 ~nbytes:mtu);
  Cm.request cm f1;
  Cm.request cm f2;
  Engine.run_for engine (Time.ms 1);
  Alcotest.(check int) "declined grant reaches the other flow" 1 !f2_grants

let test_query_reports_rtt_and_rate () =
  let engine, cm = make_env () in
  let fid = Cm.open_flow cm (flow_key ()) in
  let st0 = Cm.query cm fid in
  Alcotest.(check (option int)) "no srtt before feedback" None st0.Cm_types.srtt;
  Cm.update cm fid ~nsent:0 ~nrecd:0 ~loss:Cm_types.No_loss ~rtt:(Time.ms 100) ();
  Engine.run_for engine (Time.ms 1);
  let st = Cm.query cm fid in
  (match st.Cm_types.srtt with
  | Some srtt -> Alcotest.(check int) "first sample becomes srtt" (Time.ms 100) srtt
  | None -> Alcotest.fail "expected srtt");
  (* rate = cwnd / srtt = 1000 B / 0.1 s = 80_000 bps *)
  Alcotest.(check bool)
    (Printf.sprintf "rate near 80kbps (%f)" st.Cm_types.rate_bps)
    true
    (Float.abs (st.Cm_types.rate_bps -. 80_000.) < 1.)

let test_rate_callback_fires_on_change () =
  let engine, cm = make_env () in
  let fid = Cm.open_flow cm (flow_key ()) in
  let reported = ref [] in
  Cm.register_update cm fid (fun st -> reported := st.Cm_types.rate_bps :: !reported);
  Cm.set_thresh cm fid ~down:0.9 ~up:1.1;
  Cm.update cm fid ~nsent:0 ~nrecd:0 ~loss:Cm_types.No_loss ~rtt:(Time.ms 100) ();
  Engine.run_for engine (Time.ms 1);
  Alcotest.(check int) "first estimate reported" 1 (List.length !reported);
  (* massive growth: slow-start doubling should cross the 1.1x threshold *)
  Cm.update cm fid ~nsent:mtu ~nrecd:mtu ~loss:Cm_types.No_loss ();
  Engine.run_for engine (Time.ms 1);
  Alcotest.(check int) "growth reported" 2 (List.length !reported);
  (* tiny change: no callback *)
  Cm.update cm fid ~nsent:0 ~nrecd:0 ~loss:Cm_types.No_loss ~rtt:(Time.ms 100) ();
  Engine.run_for engine (Time.ms 1);
  Alcotest.(check int) "small change suppressed" 2 (List.length !reported)

let test_split_and_merge () =
  let _engine, cm = make_env () in
  let f1 = Cm.open_flow cm (flow_key ~sport:100 ()) in
  let f2 = Cm.open_flow cm (flow_key ~sport:101 ()) in
  Alcotest.(check int) "start together" (Cm.macroflow_id cm f1) (Cm.macroflow_id cm f2);
  Cm.split cm f1;
  Alcotest.(check bool) "split separates" true (Cm.macroflow_id cm f1 <> Cm.macroflow_id cm f2);
  Cm.merge cm f1 ~into:f2;
  Alcotest.(check int) "merge rejoins" (Cm.macroflow_id cm f1) (Cm.macroflow_id cm f2)

let test_attach_charges_outstanding () =
  let engine = Engine.create () in
  let net = Topology.pipe engine ~bandwidth_bps:1e7 ~delay:(Time.ms 5) () in
  let cm = Cm.create engine ~mtu () in
  Cm.attach cm net.Topology.a;
  let key =
    Addr.flow
      ~src:(Addr.endpoint ~host:0 ~port:100)
      ~dst:(Addr.endpoint ~host:1 ~port:200)
      ~proto:Addr.Udp ()
  in
  let fid = Cm.open_flow cm key in
  let pkt = Packet.make ~now:(Engine.now engine) ~flow:key ~payload_bytes:500 (Packet.Raw 500) in
  Host.ip_output net.Topology.a pkt;
  let mf = Cm.macroflow_of cm fid in
  Alcotest.(check int) "ip hook charged the payload" 500 (Macroflow.outstanding mf)

let test_persistent_resets_outstanding () =
  let engine, cm = make_env () in
  let fid = Cm.open_flow cm (flow_key ()) in
  Cm.notify cm fid ~nbytes:(3 * mtu);
  let mf = Cm.macroflow_of cm fid in
  Alcotest.(check int) "charged" (3 * mtu) (Macroflow.outstanding mf);
  Cm.update cm fid ~nsent:0 ~nrecd:0 ~loss:Cm_types.Persistent ();
  ignore engine;
  Alcotest.(check int) "persistent congestion clears outstanding" 0 (Macroflow.outstanding mf)

let test_grant_reclaim () =
  let engine = Engine.create () in
  let cm = Cm.create engine ~mtu ~grant_reclaim_after:(Time.ms 200) () in
  let fid = Cm.open_flow cm (flow_key ()) in
  (* client takes the grant but never transmits nor declines *)
  Cm.register_send cm fid (fun _ -> ());
  Cm.request cm fid;
  Engine.run_for engine (Time.ms 50);
  let mf = Cm.macroflow_of cm fid in
  Alcotest.(check int) "grant outstanding" mtu (Macroflow.granted mf);
  Engine.run_for engine (Time.ms 500);
  Alcotest.(check int) "grant reclaimed by maintenance" 0 (Macroflow.granted mf);
  Alcotest.(check bool) "reclaim counted" true (Macroflow.grants_reclaimed mf >= 1)

let test_close_returns_granted_bytes () =
  (* granted-but-unnotified bytes come back the moment the flow closes,
     not 500 ms later when the reclaim timer would catch them *)
  let engine, cm = make_env () in
  let f1 = Cm.open_flow cm (flow_key ~sport:100 ()) in
  let f2 = Cm.open_flow cm (flow_key ~sport:101 ()) in
  (* f1 takes its grant and sits on it: never transmits, never declines *)
  Cm.register_send cm f1 (fun _ -> ());
  let f2_grants = ref 0 in
  Cm.register_send cm f2 (fun _ ->
      incr f2_grants;
      Cm.notify cm f2 ~nbytes:mtu);
  Cm.request cm f1;
  Engine.run_for engine (Time.ms 1);
  let mf = Cm.macroflow_of cm f1 in
  Alcotest.(check int) "grant held by f1" mtu (Macroflow.granted mf);
  (* the initial window is one mtu, so f2's request stalls behind it *)
  Cm.request cm f2;
  Engine.run_for engine (Time.ms 1);
  Alcotest.(check int) "f2 stalled behind the hoarded grant" 0 !f2_grants;
  Cm.close_flow cm f1;
  Alcotest.(check int) "granted bytes returned synchronously" 0 (Macroflow.granted mf);
  Alcotest.(check bool) "release counted" true (Macroflow.grants_released mf >= 1);
  Engine.run_for engine (Time.ms 1);
  Alcotest.(check int) "f2 granted without waiting for reclaim" 1 !f2_grants

let test_decline_restores_window () =
  (* cm_notify(0) on a flow with no competitor: the grant is returned to
     the window (nothing charged) and the decline is counted *)
  let engine, cm = make_env () in
  let fid = Cm.open_flow cm (flow_key ()) in
  Cm.register_send cm fid (fun _ -> Cm.notify cm fid ~nbytes:0);
  Cm.request cm fid;
  Engine.run_for engine (Time.ms 1);
  let mf = Cm.macroflow_of cm fid in
  Alcotest.(check int) "no bytes granted after decline" 0 (Macroflow.granted mf);
  Alcotest.(check int) "no bytes charged" 0 (Macroflow.outstanding mf);
  let c = Cm.counters cm in
  Alcotest.(check int) "decline counted" 1 c.Cm.declined_grants;
  Alcotest.(check int) "grant still counted as issued" 1 c.Cm.grants;
  (* the flow is unharmed: a later request is granted again *)
  let granted_again = ref 0 in
  Cm.register_send cm fid (fun _ ->
      incr granted_again;
      Cm.notify cm fid ~nbytes:mtu);
  Cm.request cm fid;
  Engine.run_for engine (Time.ms 1);
  Alcotest.(check int) "regranted after decline" 1 !granted_again

let test_counters () =
  let engine, cm = make_env () in
  let fid = Cm.open_flow cm (flow_key ()) in
  Cm.register_send cm fid (fun _ -> Cm.notify cm fid ~nbytes:mtu);
  Cm.request cm fid;
  Engine.run_for engine (Time.ms 1);
  let c = Cm.counters cm in
  Alcotest.(check int) "opens" 1 c.Cm.opens;
  Alcotest.(check int) "requests" 1 c.Cm.requests;
  Alcotest.(check int) "grants" 1 c.Cm.grants;
  Alcotest.(check int) "notifies" 1 c.Cm.notifies

let test_bulk_calls () =
  let engine, cm = make_env () in
  let f1 = Cm.open_flow cm (flow_key ~sport:100 ()) in
  let f2 = Cm.open_flow cm (flow_key ~sport:101 ()) in
  let got = ref [] in
  Cm.register_send cm f1 (fun g ->
      got := g :: !got;
      Cm.notify cm f1 ~nbytes:mtu);
  Cm.register_send cm f2 (fun g ->
      got := g :: !got;
      Cm.notify cm f2 ~nbytes:mtu);
  (* open the window first so both grants fit *)
  Cm.bulk_update cm [ (f1, 2 * mtu, 2 * mtu, Cm_types.No_loss, Some (Time.ms 10)) ];
  Cm.bulk_request cm [ f1; f2 ];
  Engine.run_for engine (Time.ms 1);
  Alcotest.(check int) "both flows granted" 2 (List.length !got)


let test_macroflow_state_persists_across_flows () =
  (* the Fig. 7 mechanism: close the only flow to a destination, open a
     new one, and inherit the macroflow's congestion state *)
  let engine, cm = make_env () in
  let f1 = Cm.open_flow cm (flow_key ~sport:100 ()) in
  let mf1 = Cm.macroflow_id cm f1 in
  (* grow the window well past the initial one *)
  for _ = 1 to 20 do
    Cm.update cm f1 ~nsent:mtu ~nrecd:mtu ~loss:Cm_types.No_loss ~rtt:(Time.ms 50) ()
  done;
  let grown = (Cm.query cm f1).Cm_types.cwnd in
  Cm.close_flow cm f1;
  Engine.run_for engine (Time.ms 10);
  let f2 = Cm.open_flow cm (flow_key ~sport:101 ()) in
  Alcotest.(check int) "same macroflow reused" mf1 (Cm.macroflow_id cm f2);
  Alcotest.(check int) "window inherited" grown ((Cm.query cm f2).Cm_types.cwnd);
  (match (Cm.query cm f2).Cm_types.srtt with
  | Some _ -> ()
  | None -> Alcotest.fail "srtt should persist")

let test_split_macroflow_dies_when_empty () =
  let _engine, cm = make_env () in
  let f1 = Cm.open_flow cm (flow_key ~sport:100 ()) in
  Cm.split cm f1;
  let split_id = Cm.macroflow_id cm f1 in
  Cm.close_flow cm f1;
  (* a fresh flow to the same destination lands in the (persistent)
     default macroflow, not the discarded split one *)
  let f2 = Cm.open_flow cm (flow_key ~sport:101 ()) in
  Alcotest.(check bool) "split macroflow not reused" true
    (Cm.macroflow_id cm f2 <> split_id)


let test_dscp_aggregation_modes () =
  (* §5: under diffserv, flows to the same host with different service
     classes should not share congestion state *)
  let engine = Engine.create () in
  let dst = Addr.endpoint ~host:1 ~port:200 in
  let mk ?dscp sport = Addr.flow ?dscp ~src:(Addr.endpoint ~host:0 ~port:sport) ~dst ~proto:Addr.Udp () in
  (* default: DSCP is ignored for aggregation *)
  let cm = Cm.create engine ~mtu () in
  let f1 = Cm.open_flow cm (mk 100) in
  let f2 = Cm.open_flow cm (mk ~dscp:46 101) in
  Alcotest.(check int) "default mode ignores dscp" (Cm.macroflow_id cm f1)
    (Cm.macroflow_id cm f2);
  (* diffserv-aware: distinct DSCPs get distinct macroflows *)
  let cm2 = Cm.create engine ~mtu ~aggregation:Cm.By_destination_and_dscp () in
  let g1 = Cm.open_flow cm2 (mk 100) in
  let g2 = Cm.open_flow cm2 (mk ~dscp:46 101) in
  let g3 = Cm.open_flow cm2 (mk ~dscp:46 102) in
  Alcotest.(check bool) "different dscp, different macroflow" true
    (Cm.macroflow_id cm2 g1 <> Cm.macroflow_id cm2 g2);
  Alcotest.(check int) "same dscp still shares" (Cm.macroflow_id cm2 g2)
    (Cm.macroflow_id cm2 g3)

let test_dscp_rejected_out_of_range () =
  let dst = Addr.endpoint ~host:1 ~port:200 in
  Alcotest.(check bool) "dscp > 63 rejected" true
    (try
       ignore (Addr.flow ~dscp:64 ~src:(Addr.endpoint ~host:0 ~port:1) ~dst ~proto:Addr.Udp ());
       false
     with Invalid_argument _ -> true)


let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  nl = 0 || at 0

let test_pp_summary_renders () =
  let engine, cm = make_env () in
  let fid = Cm.open_flow cm (flow_key ()) in
  Cm.update cm fid ~nsent:mtu ~nrecd:mtu ~loss:Cm_types.No_loss ~rtt:(Time.ms 10) ();
  Engine.run_for engine (Time.ms 1);
  let s = Format.asprintf "%a" Cm.pp_summary cm in
  Alcotest.(check bool) "mentions the flow" true (contains s "flow 1");
  Alcotest.(check bool) "mentions counters" true (contains s "updates")


let test_idle_restart_resets_window () =
  let engine = Engine.create () in
  let cm = Cm.create engine ~mtu ~idle_restart:(Time.sec 1.) () in
  let fid = Cm.open_flow cm (flow_key ()) in
  Cm.register_send cm fid (fun _ -> Cm.notify cm fid ~nbytes:mtu);
  for _ = 1 to 10 do
    Cm.request cm fid;
    Engine.run_for engine (Time.ms 1);
    Cm.update cm fid ~nsent:mtu ~nrecd:mtu ~loss:Cm_types.No_loss ~rtt:(Time.ms 10) ()
  done;
  let grown = (Cm.query cm fid).Cm_types.cwnd in
  (* a stop-and-wait client is bounded by window validation at ~4 MTU *)
  Alcotest.(check bool) "window grew" true (grown > mtu);
  (* idle past the threshold, then a fresh request *)
  Engine.run_for engine (Time.sec 3.);
  Cm.request cm fid;
  Alcotest.(check int) "slow-start restart" mtu (Cm.query cm fid).Cm_types.cwnd;
  (* without the option, state persists (covered by the fig7 test) *)
  ignore grown

(* window conservation under a random client, as a qcheck property *)
let prop_window_conservation =
  QCheck.Test.make ~name:"macroflow never exceeds cwnd" ~count:50
    QCheck.(small_list (int_bound 2))
    (fun actions ->
      let engine = Engine.create () in
      let cm = Cm.create engine ~mtu () in
      let fid = Cm.open_flow cm (flow_key ()) in
      let mf = Cm.macroflow_of cm fid in
      let ok = ref true in
      let check () =
        if Macroflow.outstanding mf + Macroflow.granted mf > Macroflow.cwnd mf + mtu then
          ok := false
      in
      Cm.register_send cm fid (fun _ ->
          Cm.notify cm fid ~nbytes:mtu;
          check ());
      List.iter
        (fun a ->
          (match a with
          | 0 -> Cm.request cm fid
          | 1 -> Cm.update cm fid ~nsent:mtu ~nrecd:mtu ~loss:Cm_types.No_loss ~rtt:(Time.ms 5) ()
          | _ -> Cm.update cm fid ~nsent:mtu ~nrecd:0 ~loss:Cm_types.Transient ());
          Engine.run_for engine (Time.us 100);
          check ())
        actions;
      !ok)


(* every controller, under any event sequence: window stays within
   [mtu, max]; reset restores the initial window *)
let prop_controller_invariants =
  let factories =
    [
      ("aimd", Controller.aimd ());
      ("iiad", Controller.iiad ());
      ("sqrt", Controller.sqrt_ctl ());
      ("equation", Controller.equation ());
      ("binomial(0,1)", Controller.binomial ~k:0. ~l:1. ());
    ]
  in
  QCheck.Test.make ~name:"controllers keep cwnd within bounds" ~count:100
    QCheck.(pair (int_bound (List.length factories - 1)) (small_list (int_bound 3)))
    (fun (which, ops) ->
      let _, factory = List.nth factories which in
      let c = factory ~mtu in
      let ok = ref true in
      let check () =
        let w = c.Controller.cwnd () in
        if w < mtu || w > 4 * 1024 * 1024 then ok := false
      in
      List.iter
        (fun op ->
          (match op with
          | 0 -> c.Controller.on_ack ~nbytes:mtu
          | 1 -> c.Controller.on_ack ~nbytes:(10 * mtu)
          | 2 -> c.Controller.on_loss Cm_types.Transient
          | _ -> c.Controller.on_loss Cm_types.Persistent);
          check ())
        ops;
      c.Controller.reset ();
      !ok && c.Controller.cwnd () = mtu)

(* satellite (a): closing one flow must examine a bounded number of
   macroflows no matter how many destinations the CM has ever talked to.
   [Cm.teardown_probes] counts macroflows examined by the teardown path;
   before the reverse index it grew with hosts-ever-contacted. *)
let close_probe_delta ~macroflows =
  let _engine, cm = make_env () in
  let keep =
    List.init macroflows (fun d -> Cm.open_flow cm (flow_key ~sport:100 ~dst:(1 + d) ()))
  in
  let victim = Cm.open_flow cm (flow_key ~sport:101 ~dst:1 ()) in
  let before = Cm.teardown_probes cm in
  Cm.close_flow cm victim;
  let delta = Cm.teardown_probes cm - before in
  List.iter (Cm.close_flow cm) keep;
  delta

let test_close_cost_constant () =
  let small = close_probe_delta ~macroflows:4 in
  let large = close_probe_delta ~macroflows:256 in
  Alcotest.(check int)
    (Printf.sprintf "probes per close equal at 4 and 256 macroflows (%d vs %d)" small large)
    small large;
  Alcotest.(check bool) "constant per close" true (small <= 2)

(* ------------------------------------------------------------------ *)
(* Flow-id recycling (Fid_dir) *)

let test_stale_fid_misses_after_reuse () =
  let _engine, cm = make_env () in
  let fid1 = Cm.open_flow cm (flow_key ~sport:100 ()) in
  Cm.close_flow cm fid1;
  (* the freed slot is recycled LIFO: the next open reuses it under a
     bumped generation, so the two ids share slot bits but differ *)
  let fid2 = Cm.open_flow cm (flow_key ~sport:101 ()) in
  Alcotest.(check int) "slot reused" (fid1 land 0xFFFFFF) (fid2 land 0xFFFFFF);
  Alcotest.(check bool) "stale and fresh ids differ" true (fid1 <> fid2);
  (* every API path through the stale (id, generation) must miss without
     touching the slot's new tenant *)
  let rejected f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "request through stale id rejected" true
    (rejected (fun () -> Cm.request cm fid1));
  Alcotest.(check bool) "notify through stale id rejected" true
    (rejected (fun () -> Cm.notify cm fid1 ~nbytes:10));
  Alcotest.(check bool) "query through stale id rejected" true
    (rejected (fun () -> ignore (Cm.query cm fid1)));
  Alcotest.(check bool) "close through stale id rejected" true
    (rejected (fun () -> Cm.close_flow cm fid1));
  Alcotest.(check int) "new tenant unharmed" mtu (Cm.mtu cm fid2);
  Alcotest.(check int) "one live flow" 1 (Cm.live_flows cm)

let test_million_churn_capacity_bounded () =
  let _engine, cm = make_env () in
  (* an anchor flow keeps the macroflow alive so the loop measures slot
     recycling, not macroflow setup/teardown *)
  let anchor = Cm.open_flow cm (flow_key ~sport:9999 ()) in
  for i = 1 to 1_000_000 do
    let fid = Cm.open_flow cm (flow_key ~sport:(10_000 + (i land 1)) ()) in
    Cm.close_flow cm fid
  done;
  Alcotest.(check int) "only the anchor left" 1 (Cm.live_flows cm);
  (* 1,000,001 opens at peak concurrency 2: the directory is bounded by
     the peak, not by flows ever opened *)
  Alcotest.(check bool)
    (Printf.sprintf "slot capacity bounded by peak concurrency (%d)"
       (Cm.flow_slot_capacity cm))
    true
    (Cm.flow_slot_capacity cm <= 4);
  Cm.close_flow cm anchor

let () =
  Alcotest.run "cm"
    [
      ( "controller",
        [
          Alcotest.test_case "aimd slow start" `Quick test_aimd_slow_start;
          Alcotest.test_case "aimd transient halves" `Quick test_aimd_transient_halves;
          Alcotest.test_case "aimd persistent collapses" `Quick test_aimd_persistent_collapses;
          Alcotest.test_case "aimd linear growth in CA" `Quick test_aimd_congestion_avoidance_linear;
          Alcotest.test_case "aimd floor and reset" `Quick test_aimd_floor_and_reset;
          Alcotest.test_case "ecn acts like transient" `Quick test_aimd_ecn_like_transient;
          Alcotest.test_case "binomial(0,1) = aimd" `Quick test_binomial_aimd_equivalence;
          Alcotest.test_case "sqrt decreases more gently" `Quick test_binomial_sqrt_gentler;
          Alcotest.test_case "equation tracks loss rate" `Quick
            test_equation_slow_starts_then_tracks_loss_rate;
          Alcotest.test_case "equation smoother than aimd" `Quick test_equation_smoother_than_aimd;
          Alcotest.test_case "equation reset" `Quick test_equation_reset;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "round robin alternates" `Quick test_rr_alternates;
          Alcotest.test_case "remove purges requests" `Quick test_rr_remove_purges;
          Alcotest.test_case "pending counts" `Quick test_rr_pending_counts;
          Alcotest.test_case "weighted is proportional" `Quick test_weighted_proportional;
          Alcotest.test_case "stride fairness across 10M-grant rebases" `Slow
            test_stride_rebase_fairness;
          Alcotest.test_case "rr share +/-1 at 4096 flows" `Quick test_rr_share_at_4096;
          Alcotest.test_case "stride share +/-1 at 4096 flows" `Quick test_stride_share_at_4096;
        ] );
      ( "api",
        [
          Alcotest.test_case "open/close/lookup" `Quick test_open_close;
          Alcotest.test_case "duplicate open rejected" `Quick test_duplicate_open_rejected;
          Alcotest.test_case "per-destination aggregation" `Quick test_same_dst_shares_macroflow;
          Alcotest.test_case "request/grant cycle" `Quick test_request_grant_cycle;
          Alcotest.test_case "declined grant passes on" `Quick test_grant_declined_passes_on;
          Alcotest.test_case "query rtt and rate" `Quick test_query_reports_rtt_and_rate;
          Alcotest.test_case "rate callbacks with thresholds" `Quick test_rate_callback_fires_on_change;
          Alcotest.test_case "split and merge" `Quick test_split_and_merge;
          Alcotest.test_case "ip hook charges macroflow" `Quick test_attach_charges_outstanding;
          Alcotest.test_case "persistent clears outstanding" `Quick test_persistent_resets_outstanding;
          Alcotest.test_case "grant reclaim" `Quick test_grant_reclaim;
          Alcotest.test_case "close returns granted bytes" `Quick test_close_returns_granted_bytes;
          Alcotest.test_case "decline restores window" `Quick test_decline_restores_window;
          Alcotest.test_case "api counters" `Quick test_counters;
          Alcotest.test_case "bulk request/update" `Quick test_bulk_calls;
          Alcotest.test_case "macroflow state persists (fig7)" `Quick
            test_macroflow_state_persists_across_flows;
          Alcotest.test_case "split macroflow dies when empty" `Quick
            test_split_macroflow_dies_when_empty;
          Alcotest.test_case "dscp aggregation modes" `Quick test_dscp_aggregation_modes;
          Alcotest.test_case "dscp range check" `Quick test_dscp_rejected_out_of_range;
          Alcotest.test_case "summary dump renders" `Quick test_pp_summary_renders;
          Alcotest.test_case "idle restart option" `Quick test_idle_restart_resets_window;
          Alcotest.test_case "close cost independent of macroflow count" `Quick
            test_close_cost_constant;
          Alcotest.test_case "stale flow id misses after slot reuse" `Quick
            test_stale_fid_misses_after_reuse;
          Alcotest.test_case "1M flow churn keeps directory bounded" `Slow
            test_million_churn_capacity_bounded;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_window_conservation;
          QCheck_alcotest.to_alcotest prop_controller_invariants;
        ] );
    ]
