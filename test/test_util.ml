(* Tests for cm_util: time, rng, heap, stats, ewma, timeline, byte_queue. *)

open Cm_util

let ( => ) name cond = Alcotest.(check bool) name true cond

(* ---- Time ---------------------------------------------------------- *)

let test_time_units () =
  Alcotest.(check int) "us" 1_000 (Time.us 1);
  Alcotest.(check int) "ms" 1_000_000 (Time.ms 1);
  Alcotest.(check int) "sec" 1_000_000_000 (Time.sec 1.);
  Alcotest.(check int) "minutes" (60 * 1_000_000_000) (Time.minutes 1.);
  Alcotest.(check (float 1e-9)) "to_float_s" 1.5 (Time.to_float_s (Time.sec 1.5));
  Alcotest.(check (float 1e-9)) "to_float_ms" 2. (Time.to_float_ms (Time.ms 2))

let test_time_arith () =
  let t = Time.add Time.zero (Time.ms 5) in
  Alcotest.(check int) "add" (Time.ms 5) t;
  Alcotest.(check int) "diff" (Time.ms 3) (Time.diff (Time.ms 5) (Time.ms 2));
  Alcotest.(check int) "min" (Time.ms 2) (Time.min (Time.ms 5) (Time.ms 2));
  Alcotest.(check int) "max" (Time.ms 5) (Time.max (Time.ms 5) (Time.ms 2))

let test_time_pp () =
  let s v = Format.asprintf "%a" Time.pp v in
  "ns rendering" => (s 12 = "12ns");
  "us rendering" => (s (Time.us 3) = "3.00us");
  "ms rendering" => (s (Time.ms 7) = "7.000ms");
  "s rendering" => (s (Time.sec 2.) = "2.0000s")

(* ---- Json ----------------------------------------------------------- *)

let test_json_escape_control_chars () =
  let s = Json.to_string (Json.Str "a\"b\\c\nd\re\tf\bg\012h\x01i") in
  "quote/backslash/newline" => (s = "\"a\\\"b\\\\c\\nd\\re\\tf\\bg\\fh\\u0001i\"");
  (* and the escaped form parses back to the original *)
  match Json.parse s with
  | Ok (Json.Str r) -> "roundtrip" => (r = "a\"b\\c\nd\re\tf\bg\012h\x01i")
  | _ -> Alcotest.fail "escaped string did not parse back"

let test_json_nonfinite_floats () =
  "nan is null" => (Json.to_string (Json.Float Float.nan) = "null");
  "inf is null" => (Json.to_string (Json.Float Float.infinity) = "null");
  "-inf is null" => (Json.to_string (Json.Float Float.neg_infinity) = "null");
  "finite stays numeric" => (Json.to_string (Json.Float 2.5) = "2.5")

let test_json_parse_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.Str "he said \"hi\"\n");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.25);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Str "x"; Json.Obj [ ("k", Json.Int 2) ] ]);
      ]
  in
  let s = Json.to_string doc in
  match Json.parse s with
  | Ok doc' -> "render/parse/render fixpoint" => (Json.to_string doc' = s)
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

let test_json_parse_rejects_garbage () =
  let bad = [ "{"; "[1,"; "\"unterminated"; "{\"a\" 1}"; "tru"; "1.2.3"; "[] trailing" ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "parse accepted %S" s))
    bad

let test_json_parse_unicode_escape () =
  match Json.parse "\"a\\u00e9b\"" with
  | Ok (Json.Str s) -> "\\uXXXX decodes to UTF-8" => (s = "a\xc3\xa9b")
  | _ -> Alcotest.fail "unicode escape did not parse"

(* ---- Rng ------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  let xs = List.init 100 (fun _ -> Rng.int a 1000) in
  let ys = List.init 100 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_rng_seed_matters () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let xs = List.init 50 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1_000_000) in
  "different seeds diverge" => (xs <> ys)

let test_rng_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
  done;
  for _ = 1 to 10_000 do
    let f = Rng.float r 2.5 in
    if f < 0. || f >= 2.5 then Alcotest.fail "float out of bounds"
  done

let test_rng_bernoulli_frequency () =
  let r = Rng.create ~seed:4 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  "bernoulli(0.3) frequency within 1%" => (Float.abs (freq -. 0.3) < 0.01)

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:5 in
  let sum = ref 0. in
  let n = 100_000 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:4.0
  done;
  let mean = !sum /. float_of_int n in
  "exponential mean within 3%" => (Float.abs (mean -. 4.0) < 0.12)

let test_rng_split_independent () =
  let r = Rng.create ~seed:6 in
  let a = Rng.split r and b = Rng.split r in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  "split streams differ" => (xs <> ys)

(* ---- Heap ------------------------------------------------------------ *)

let test_heap_orders () =
  let h = Heap.create () in
  List.iter (fun p -> ignore (Heap.insert h ~prio:p p)) [ 5; 1; 4; 1; 3; 9; 0 ];
  let out = List.init 7 (fun _ -> Heap.extract_min h) |> List.filter_map Fun.id in
  Alcotest.(check (list (pair int int)))
    "sorted output"
    [ (0, 0); (1, 1); (1, 1); (3, 3); (4, 4); (5, 5); (9, 9) ]
    out

let test_heap_fifo_ties () =
  let h = Heap.create () in
  ignore (Heap.insert h ~prio:7 "first");
  ignore (Heap.insert h ~prio:7 "second");
  ignore (Heap.insert h ~prio:7 "third");
  let order = List.init 3 (fun _ -> Heap.extract_min h) |> List.filter_map Fun.id |> List.map snd in
  Alcotest.(check (list string)) "FIFO among equal priorities" [ "first"; "second"; "third" ] order

let test_heap_remove () =
  let h = Heap.create () in
  let _a = Heap.insert h ~prio:1 "a" in
  let b = Heap.insert h ~prio:2 "b" in
  let _c = Heap.insert h ~prio:3 "c" in
  "remove succeeds" => Heap.remove h b;
  "second remove fails" => not (Heap.remove h b);
  let out = List.init 3 (fun _ -> Heap.extract_min h) |> List.filter_map Fun.id |> List.map snd in
  Alcotest.(check (list string)) "b removed" [ "a"; "c" ] out

let test_heap_clear_and_size () =
  let h = Heap.create () in
  for i = 1 to 100 do
    ignore (Heap.insert h ~prio:i i)
  done;
  Alcotest.(check int) "size" 100 (Heap.size h);
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.size h);
  "extract on empty" => (Heap.extract_min h = None)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap extracts in priority order" ~count:200
    QCheck.(list small_int)
    (fun prios ->
      let h = Heap.create () in
      List.iter (fun p -> ignore (Heap.insert h ~prio:p p)) prios;
      let out = List.init (List.length prios) (fun _ -> Heap.extract_min h) in
      let out = List.filter_map Fun.id out |> List.map fst in
      out = List.sort Stdlib.compare prios)

let prop_heap_removal_consistent =
  QCheck.Test.make ~name:"heap removal keeps order" ~count:100
    QCheck.(pair (list small_int) (list bool))
    (fun (prios, removes) ->
      let h = Heap.create () in
      let handles = List.map (fun p -> (p, Heap.insert h ~prio:p p)) prios in
      let kept =
        List.filteri
          (fun i (_, hd) ->
            let remove = List.nth_opt removes i = Some true in
            if remove then ignore (Heap.remove h hd);
            not remove)
          handles
        |> List.map fst
      in
      let out = List.init (List.length kept) (fun _ -> Heap.extract_min h) in
      let out = List.filter_map Fun.id out |> List.map fst in
      out = List.sort Stdlib.compare kept)

let test_heap_update_prio () =
  let h = Heap.create () in
  let a = Heap.insert h ~prio:10 "a" in
  let _b = Heap.insert h ~prio:20 "b" in
  let c = Heap.insert h ~prio:30 "c" in
  "decrease-key succeeds" => Heap.update_prio h c ~prio:5;
  "increase-key succeeds" => Heap.update_prio h a ~prio:40;
  let out = List.init 3 (fun _ -> Heap.extract_min h) |> List.filter_map Fun.id in
  Alcotest.(check (list (pair int string)))
    "re-keyed order" [ (5, "c"); (20, "b"); (40, "a") ] out;
  "update after extraction fails" => not (Heap.update_prio h c ~prio:1)

let test_heap_update_prio_refreshes_fifo () =
  (* a re-keyed element behaves like a fresh insert among equal priorities *)
  let h = Heap.create () in
  let a = Heap.insert h ~prio:7 "rekeyed" in
  ignore (Heap.insert h ~prio:7 "second");
  "same-prio update" => Heap.update_prio h a ~prio:7;
  let order = List.init 2 (fun _ -> Heap.extract_min h) |> List.filter_map Fun.id |> List.map snd in
  Alcotest.(check (list string)) "re-keyed element moved behind" [ "second"; "rekeyed" ] order

let test_heap_reinsert () =
  (* an extracted entry can be recycled: same value, fresh key, and FIFO
     behaviour identical to a fresh insert among equal priorities *)
  let h = Heap.create () in
  let a = Heap.insert h ~prio:10 "recycled" in
  ignore (Heap.extract_min h);
  "extracted handle is dead" => not (Heap.mem h a);
  ignore (Heap.insert h ~prio:7 "tie-first");
  Heap.reinsert h a ~prio:7;
  "reinserted handle is live" => Heap.mem h a;
  let out = List.init 2 (fun _ -> Heap.extract_min h) |> List.filter_map Fun.id in
  Alcotest.(check (list (pair int string)))
    "reinserted entry behaves like a fresh insert"
    [ (7, "tie-first"); (7, "recycled") ]
    out;
  (try
     Heap.reinsert h (Heap.insert h ~prio:1 "live") ~prio:2;
     Alcotest.fail "reinsert of a live handle must raise"
   with Invalid_argument _ -> ())

(* Model-based randomized test: drive the heap and a sorted-list reference
   with the same operation stream (insert / extract_min / remove /
   update_prio) and require identical observable behaviour, including the
   FIFO tie-break among equal priorities.  The reference mirrors the heap's
   sequence numbering: one fresh seq per insert *and* per update_prio. *)
let prop_heap_model =
  let open QCheck in
  let op = triple (int_bound 3) (int_bound 20) (int_bound 100) in
  Test.make ~name:"heap matches reference model (insert/extract/remove/update_prio, FIFO)"
    ~count:300 (list op)
    (fun ops ->
      let h = Heap.create () in
      let seq = ref 0 in
      let next_id = ref 0 in
      (* model: association list id -> (prio, seq); handles: id -> handle *)
      let model = ref [] in
      let handles = Hashtbl.create 16 in
      let ok = ref true in
      let check b = if not b then ok := false in
      let expected_min () =
        List.fold_left
          (fun acc (id, (p, s)) ->
            match acc with
            | Some (_, (bp, bs)) when (bp, bs) <= (p, s) -> acc
            | _ -> Some (id, (p, s)))
          None !model
      in
      let pick_id k =
        (* any id ever created: lets us hit stale handles too *)
        if !next_id = 0 then None else Some (k mod !next_id)
      in
      List.iter
        (fun (kind, prio, k) ->
          match kind with
          | 0 ->
              let id = !next_id in
              incr next_id;
              Hashtbl.replace handles id (Heap.insert h ~prio id);
              model := (id, (prio, !seq)) :: !model;
              incr seq
          | 1 -> (
              match expected_min () with
              | None -> check (Heap.extract_min h = None)
              | Some (id, (p, _)) ->
                  model := List.remove_assoc id !model;
                  check (Heap.extract_min h = Some (p, id)))
          | 2 -> (
              match pick_id k with
              | None -> ()
              | Some id ->
                  let live = List.mem_assoc id !model in
                  let r = Heap.remove h (Hashtbl.find handles id) in
                  check (r = live);
                  if live then model := List.remove_assoc id !model)
          | _ -> (
              match pick_id k with
              | None -> ()
              | Some id ->
                  let live = List.mem_assoc id !model in
                  let r = Heap.update_prio h (Hashtbl.find handles id) ~prio in
                  check (r = live);
                  if live then begin
                    model := (id, (prio, !seq)) :: List.remove_assoc id !model;
                    incr seq
                  end))
        ops;
      (* drain: remaining elements must come out in (prio, seq) order *)
      check (Heap.size h = List.length !model);
      let rec drain () =
        match expected_min () with
        | None -> check (Heap.extract_min h = None)
        | Some (id, (p, _)) ->
            model := List.remove_assoc id !model;
            check (Heap.extract_min h = Some (p, id));
            drain ()
      in
      drain ();
      !ok)

(* ---- Stats ----------------------------------------------------------- *)

let test_stats_moments () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean s);
  Alcotest.(check (float 1e-4)) "stddev (sample)" 2.13809 (Stats.stddev s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.max_value s);
  Alcotest.(check (float 1e-9)) "sum" 40.0 (Stats.sum s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  let xs = [ 1.; 2.; 3. ] and ys = [ 10.; 20.; 30.; 40. ] in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  List.iter (Stats.add whole) (xs @ ys);
  let m = Stats.merge a b in
  Alcotest.(check int) "merged count" (Stats.count whole) (Stats.count m);
  Alcotest.(check (float 1e-9)) "merged mean" (Stats.mean whole) (Stats.mean m);
  Alcotest.(check (float 1e-6)) "merged variance" (Stats.variance whole) (Stats.variance m)

let test_stats_percentile () =
  let xs = Array.init 101 (fun i -> float_of_int i) in
  Alcotest.(check (float 1e-9)) "p0" 0. (Stats.percentile xs 0.);
  Alcotest.(check (float 1e-9)) "p50" 50. (Stats.percentile xs 50.);
  Alcotest.(check (float 1e-9)) "p100" 100. (Stats.percentile xs 100.);
  Alcotest.(check (float 1e-9)) "median" 50. (Stats.median xs);
  "empty is nan" => Float.is_nan (Stats.percentile [||] 50.)

(* ---- Ewma ------------------------------------------------------------- *)

let test_ewma () =
  let e = Ewma.create ~gain:0.5 in
  "uninitialized" => not (Ewma.initialized e);
  "nan before samples" => Float.is_nan (Ewma.value e);
  Ewma.update e 10.;
  Alcotest.(check (float 1e-9)) "first sample direct" 10. (Ewma.value e);
  Ewma.update e 20.;
  Alcotest.(check (float 1e-9)) "second smoothed" 15. (Ewma.value e);
  Ewma.reset e;
  "reset forgets" => not (Ewma.initialized e)

let test_ewma_invalid_gain () =
  "gain 0 rejected"
  => (try
        ignore (Ewma.create ~gain:0.);
        false
      with Invalid_argument _ -> true);
  "gain > 1 rejected"
  => (try
        ignore (Ewma.create ~gain:1.5);
        false
      with Invalid_argument _ -> true)

(* ---- Timeline ---------------------------------------------------------- *)

let test_timeline_rate_series () =
  let tl = Timeline.create () in
  Timeline.record tl (Time.ms 100) 1000.;
  Timeline.record tl (Time.ms 900) 2000.;
  Timeline.record tl (Time.ms 1500) 1000.;
  let series = Timeline.rate_series tl ~bin:(Time.sec 1.) ~until:(Time.sec 2.) in
  match series with
  | [ (t0, r0); (t1, r1) ] ->
      Alcotest.(check int) "bin 0 start" 0 t0;
      Alcotest.(check (float 1e-9)) "bin 0 rate" 3000. r0;
      Alcotest.(check int) "bin 1 start" (Time.sec 1.) t1;
      Alcotest.(check (float 1e-9)) "bin 1 rate" 1000. r1
  | _ -> Alcotest.fail "expected two bins"

let test_timeline_sampled_series () =
  let tl = Timeline.create () in
  Timeline.record tl (Time.ms 0) 1.;
  Timeline.record tl (Time.ms 2500) 2.;
  let series = Timeline.sampled_series tl ~bin:(Time.sec 1.) ~until:(Time.sec 4.) in
  let values = List.map snd series in
  match values with
  | [ a; b; c; d ] ->
      Alcotest.(check (float 1e-9)) "t=0" 1. a;
      Alcotest.(check (float 1e-9)) "t=1" 1. b;
      Alcotest.(check (float 1e-9)) "t=2" 1. c;
      Alcotest.(check (float 1e-9)) "t=3 picks latest" 2. d
  | _ -> Alcotest.fail "expected four samples"

let test_timeline_basics () =
  let tl = Timeline.create () in
  Alcotest.(check int) "empty" 0 (Timeline.length tl);
  "no last" => (Timeline.last tl = None);
  Timeline.record tl 5 42.;
  Alcotest.(check int) "one point" 1 (Timeline.length tl);
  (match Timeline.last tl with
  | Some p -> Alcotest.(check (float 1e-9)) "last value" 42. p.Timeline.value
  | None -> Alcotest.fail "expected last");
  Alcotest.(check (float 1e-9)) "mean" 42. (Timeline.mean_value tl)

(* ---- Byte_queue --------------------------------------------------------- *)

let test_byte_queue_fifo () =
  let q = Byte_queue.create () in
  Byte_queue.push q ~size:10 "a";
  Byte_queue.push q ~size:20 "b";
  Alcotest.(check int) "bytes" 30 (Byte_queue.bytes q);
  Alcotest.(check int) "length" 2 (Byte_queue.length q);
  Alcotest.(check (option string)) "peek" (Some "a") (Byte_queue.peek q);
  Alcotest.(check (option string)) "pop order" (Some "a") (Byte_queue.pop q);
  Alcotest.(check int) "bytes after pop" 20 (Byte_queue.bytes q);
  Alcotest.(check (option (pair string int))) "drop_head returns size" (Some ("b", 20))
    (Byte_queue.drop_head q);
  "empty" => Byte_queue.is_empty q

let prop_byte_queue_conserves =
  QCheck.Test.make ~name:"byte_queue bytes = sum of element sizes" ~count:200
    QCheck.(list (int_bound 1000))
    (fun sizes ->
      let q = Byte_queue.create () in
      List.iter (fun s -> Byte_queue.push q ~size:s s) sizes;
      let total = List.fold_left ( + ) 0 sizes in
      let ok1 = Byte_queue.bytes q = total in
      let popped = ref 0 in
      let rec drain () =
        match Byte_queue.pop q with
        | Some s ->
            popped := !popped + s;
            drain ()
        | None -> ()
      in
      drain ();
      ok1 && !popped = total && Byte_queue.bytes q = 0)

(* ---- Fheap (float-priority indexed heap) ---------------------------- *)

let test_fheap_orders () =
  let h = Fheap.create () in
  List.iter (fun p -> ignore (Fheap.insert h ~prio:p p)) [ 5.; 1.5; 4.; 1.5; 3.; 9.; 0.25 ];
  let out = List.init 7 (fun _ -> Fheap.extract_min h) |> List.filter_map Fun.id in
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "sorted output"
    [ (0.25, 0.25); (1.5, 1.5); (1.5, 1.5); (3., 3.); (4., 4.); (5., 5.); (9., 9.) ]
    out

let test_fheap_fifo_ties () =
  let h = Fheap.create () in
  ignore (Fheap.insert h ~prio:7. "first");
  ignore (Fheap.insert h ~prio:7. "second");
  ignore (Fheap.insert h ~prio:7. "third");
  let order =
    List.init 3 (fun _ -> Fheap.extract_min h) |> List.filter_map Fun.id |> List.map snd
  in
  Alcotest.(check (list string)) "FIFO among equal priorities" [ "first"; "second"; "third" ] order

let test_fheap_update_prio () =
  let h = Fheap.create () in
  let a = Fheap.insert h ~prio:1. "a" in
  let b = Fheap.insert h ~prio:2. "b" in
  let _c = Fheap.insert h ~prio:3. "c" in
  let next h = Option.map snd (Fheap.extract_min h) in
  "update live handle" => Fheap.update_prio h b ~prio:0.5;
  Alcotest.(check (option string)) "b floats to the top" (Some "b") (next h);
  "update live handle" => Fheap.update_prio h a ~prio:10.;
  Alcotest.(check (option string)) "a sinks below c" (Some "c") (next h);
  Alcotest.(check (option string)) "a last" (Some "a") (next h)

let test_fheap_remove () =
  let h = Fheap.create () in
  let _a = Fheap.insert h ~prio:1. "a" in
  let b = Fheap.insert h ~prio:2. "b" in
  let _c = Fheap.insert h ~prio:3. "c" in
  "remove live handle" => Fheap.remove h b;
  Alcotest.(check bool) "b gone" false (Fheap.mem h b);
  Alcotest.(check int) "size 2" 2 (Fheap.size h);
  let out =
    List.init 2 (fun _ -> Fheap.extract_min h) |> List.filter_map Fun.id |> List.map snd
  in
  Alcotest.(check (list string)) "remaining order" [ "a"; "c" ] out

(* shift_all is the stride scheduler's pass rebase: a uniform shift must
   preserve the extraction order exactly (same relative keys, same FIFO
   ranks), only the absolute priorities change *)
let test_fheap_shift_preserves_order () =
  let mk () =
    let h = Fheap.create () in
    List.iteri
      (fun i p -> ignore (Fheap.insert h ~prio:p (i, p)))
      [ 12.5; 3.; 3.; 77.; 0.5; 12.5; 8. ];
    h
  in
  let h1 = mk () and h2 = mk () in
  Fheap.shift_all h2 (-1e6);
  let drain h = List.init 7 (fun _ -> Fheap.extract_min h) |> List.filter_map Fun.id in
  let vals = List.map snd and prios = List.map fst in
  let o1 = drain h1 and o2 = drain h2 in
  Alcotest.(check (list (pair int (float 0.))))
    "same values in the same order" (vals o1) (vals o2);
  List.iter2
    (fun p1 p2 -> Alcotest.(check (float 1e-9)) "priority shifted by delta" (p1 -. 1e6) p2)
    (prios o1) (prios o2)

let prop_fheap_sorts =
  QCheck.Test.make ~name:"fheap extracts in nondecreasing order" ~count:200
    QCheck.(list (float_bound_exclusive 1e9))
    (fun prios ->
      let h = Fheap.create () in
      List.iter (fun p -> ignore (Fheap.insert h ~prio:p p)) prios;
      let rec drain last =
        match Fheap.extract_min h with
        | None -> true
        | Some (p, _) -> p >= last && drain p
      in
      drain neg_infinity)

let () =
  Alcotest.run "util"
    [
      ( "time",
        [
          Alcotest.test_case "unit conversions" `Quick test_time_units;
          Alcotest.test_case "arithmetic" `Quick test_time_arith;
          Alcotest.test_case "pretty printing" `Quick test_time_pp;
        ] );
      ( "json",
        [
          Alcotest.test_case "control chars escape + roundtrip" `Quick
            test_json_escape_control_chars;
          Alcotest.test_case "non-finite floats render null" `Quick test_json_nonfinite_floats;
          Alcotest.test_case "parse roundtrip" `Quick test_json_parse_roundtrip;
          Alcotest.test_case "parse rejects garbage" `Quick test_json_parse_rejects_garbage;
          Alcotest.test_case "unicode escape" `Quick test_json_parse_unicode_escape;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic from seed" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds diverge" `Quick test_rng_seed_matters;
          Alcotest.test_case "bounds respected" `Quick test_rng_bounds;
          Alcotest.test_case "bernoulli frequency" `Quick test_rng_bernoulli_frequency;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        ] );
      ( "heap",
        [
          Alcotest.test_case "orders by priority" `Quick test_heap_orders;
          Alcotest.test_case "fifo among ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "removal" `Quick test_heap_remove;
          Alcotest.test_case "clear and size" `Quick test_heap_clear_and_size;
          Alcotest.test_case "update_prio re-keys" `Quick test_heap_update_prio;
          Alcotest.test_case "update_prio refreshes FIFO rank" `Quick
            test_heap_update_prio_refreshes_fifo;
          Alcotest.test_case "reinsert recycles an extracted entry" `Quick test_heap_reinsert;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
          QCheck_alcotest.to_alcotest prop_heap_removal_consistent;
          QCheck_alcotest.to_alcotest prop_heap_model;
        ] );
      ( "fheap",
        [
          Alcotest.test_case "orders by priority" `Quick test_fheap_orders;
          Alcotest.test_case "fifo among ties" `Quick test_fheap_fifo_ties;
          Alcotest.test_case "update_prio re-keys" `Quick test_fheap_update_prio;
          Alcotest.test_case "removal" `Quick test_fheap_remove;
          Alcotest.test_case "shift_all preserves order" `Quick test_fheap_shift_preserves_order;
          QCheck_alcotest.to_alcotest prop_fheap_sorts;
        ] );
      ( "stats",
        [
          Alcotest.test_case "moments" `Quick test_stats_moments;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
        ] );
      ( "ewma",
        [
          Alcotest.test_case "smoothing" `Quick test_ewma;
          Alcotest.test_case "invalid gain" `Quick test_ewma_invalid_gain;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "rate series" `Quick test_timeline_rate_series;
          Alcotest.test_case "sampled series" `Quick test_timeline_sampled_series;
          Alcotest.test_case "basics" `Quick test_timeline_basics;
        ] );
      ( "byte_queue",
        [
          Alcotest.test_case "fifo with byte accounting" `Quick test_byte_queue_fifo;
          QCheck_alcotest.to_alcotest prop_byte_queue_conserves;
        ] );
    ]
