(* Tests for the fault-injection & network-dynamics subsystem:
   channel-loss models (Bernoulli, Gilbert–Elliott), fault injectors
   (outage/flap, delay spikes, bandwidth steps/ramps), and the declarative
   scenario compiler with its determinism contract. *)

open Cm_util
open Eventsim
open Netsim
open Cm_dynamics

let ( => ) name cond = Alcotest.(check bool) name true cond

let mk_flow () =
  Addr.flow
    ~src:(Addr.endpoint ~host:0 ~port:10)
    ~dst:(Addr.endpoint ~host:1 ~port:20)
    ~proto:Addr.Udp ()

let mk_pkt ?(bytes = 1000) () =
  Packet.make ~now:0 ~flow:(mk_flow ()) ~payload_bytes:bytes (Packet.Raw bytes)

let expect_invalid name f =
  name
  => (try
        ignore (f ());
        false
      with Invalid_argument _ -> true)

(* ---- Loss models ------------------------------------------------------- *)

(* acceptance criterion: empirical loss over >= 1e5 packets within 5%
   relative error of the analytic stationary rate, for two parameter sets *)
let check_ge_stationary ~seed params =
  let rng = Rng.create ~seed in
  let model = Loss.gilbert_elliott rng params in
  let n = 200_000 in
  let lost = ref 0 in
  for _ = 1 to n do
    if model () then incr lost
  done;
  let empirical = float_of_int !lost /. float_of_int n in
  let analytic = Loss.ge_stationary_loss params in
  let rel = Float.abs (empirical -. analytic) /. analytic in
  Alcotest.(check bool)
    (Printf.sprintf "empirical %.5f within 5%% of analytic %.5f (rel %.3f)" empirical analytic
       rel)
    true (rel < 0.05)

let test_ge_stationary_bursty () =
  (* mean burst 10 packets, bad 9.1% of the time, stationary ~ 2.73% *)
  check_ge_stationary ~seed:42 (Loss.ge ~p_gb:0.01 ~p_bg:0.1 ~loss_bad:0.3 ())

let test_ge_stationary_lossy_good () =
  (* loss in both states: 0.9*0.001 + 0.1*0.5 = 5.09% *)
  check_ge_stationary ~seed:43
    (Loss.ge ~p_gb:0.02 ~p_bg:0.18 ~loss_good:0.001 ~loss_bad:0.5 ())

let test_ge_burstiness () =
  (* same stationary rate as i.i.d., but losses must clump: the number of
     loss runs is far below the Bernoulli expectation *)
  let params = Loss.ge ~p_gb:0.005 ~p_bg:0.05 ~loss_bad:1.0 () in
  let rng = Rng.create ~seed:7 in
  let model = Loss.gilbert_elliott rng params in
  let n = 100_000 in
  let runs = ref 0 and prev = ref false and lost = ref 0 in
  for _ = 1 to n do
    let l = model () in
    if l then begin
      incr lost;
      if not !prev then incr runs
    end;
    prev := l
  done;
  let p = Loss.ge_stationary_loss params in
  (* i.i.d. losses at rate p would start a run ~ n*p*(1-p) times; a GE
     chain with mean burst 1/p_bg = 20 starts ~ n*p*p_bg runs *)
  let iid_runs = float_of_int n *. p *. (1. -. p) in
  "losses occurred" => (!lost > 0);
  "losses are bursty, not i.i.d." => (float_of_int !runs < 0.25 *. iid_runs)

let test_ge_validation () =
  expect_invalid "p_gb out of range" (fun () -> Loss.ge ~p_gb:1.5 ~p_bg:0.1 ());
  expect_invalid "NaN p_bg" (fun () -> Loss.ge ~p_gb:0.1 ~p_bg:Float.nan ());
  expect_invalid "frozen chain" (fun () -> Loss.ge ~p_gb:0. ~p_bg:0. ());
  expect_invalid "bad loss_bad" (fun () -> Loss.ge ~p_gb:0.1 ~p_bg:0.1 ~loss_bad:(-1.) ());
  expect_invalid "bernoulli p > 1" (fun () -> Loss.bernoulli (Rng.create ~seed:1) ~p:2.)

let test_link_loss_model_override () =
  let e = Engine.create () in
  let rng = Rng.create ~seed:3 in
  let got = ref 0 in
  let link = Link.create e ~bandwidth_bps:1e9 ~delay:0 ~rng ~sink:(fun _ -> incr got) () in
  (* a model that loses everything overrides the (zero) baseline *)
  Link.set_loss_model link (Some (fun () -> true));
  for _ = 1 to 10 do
    Link.send link (mk_pkt ())
  done;
  Engine.run e;
  Alcotest.(check int) "all lost by the model" 0 !got;
  Alcotest.(check int) "counted as channel drops" 10 (Link.stats link).Link.channel_drops;
  (* clearing the model restores the baseline (no loss) *)
  Link.set_loss_model link None;
  for _ = 1 to 10 do
    Link.send link (mk_pkt ())
  done;
  Engine.run e;
  Alcotest.(check int) "baseline restored" 10 !got

(* ---- Outage / flap ------------------------------------------------------ *)

let test_outage_drops_in_flight () =
  let e = Engine.create () in
  let got = ref 0 in
  (* 1 ms serialization per packet, 50 ms propagation: several packets are
     in flight when the outage hits at t = 5 ms *)
  let link =
    Link.create e ~bandwidth_bps:8e6 ~delay:(Time.ms 50) ~sink:(fun _ -> incr got) ()
  in
  for _ = 1 to 10 do
    Link.send link (mk_pkt ~bytes:(1000 - Packet.header_bytes) ())
  done;
  Faults.outage e link ~at:(Time.ms 5) ~duration:(Time.ms 20);
  Engine.run e;
  let stats = Link.stats link in
  "some packets died in the outage" => (stats.Link.down_drops > 0);
  Alcotest.(check int) "conservation" 10 (!got + stats.Link.down_drops);
  (* the queue survived the outage and drained after bring_up *)
  "queued packets were delivered after recovery" => (!got > 0);
  "link is back up" => Link.up link

let test_send_while_down_drops () =
  let e = Engine.create () in
  let got = ref 0 in
  let link = Link.create e ~bandwidth_bps:1e9 ~delay:0 ~sink:(fun _ -> incr got) () in
  Link.take_down link;
  for _ = 1 to 5 do
    Link.send link (mk_pkt ())
  done;
  Engine.run e;
  Alcotest.(check int) "nothing delivered" 0 !got;
  Alcotest.(check int) "offered packets died" 5 (Link.stats link).Link.down_drops;
  Link.bring_up link;
  Link.send link (mk_pkt ());
  Engine.run e;
  Alcotest.(check int) "delivery resumes after bring_up" 1 !got

let test_flap_cycles () =
  let e = Engine.create () in
  let link = Link.create e ~bandwidth_bps:1e9 ~delay:0 ~sink:ignore () in
  let transitions = ref [] in
  let probe () = transitions := (Engine.now e, Link.up link) :: !transitions in
  Faults.flap e link ~at:(Time.ms 10) ~down:(Time.ms 5) ~up:(Time.ms 5) ~cycles:3;
  List.iter
    (fun ms -> ignore (Engine.schedule_at e (Time.ms ms + Time.us 1) probe))
    [ 10; 15; 20; 25; 30; 35; 40 ];
  Engine.run e;
  let ups = List.rev_map snd !transitions in
  Alcotest.(check (list bool)) "down/up alternation over 3 cycles"
    [ false; true; false; true; false; true; true ]
    ups

(* ---- Delay spike -------------------------------------------------------- *)

let test_delay_spike () =
  let e = Engine.create () in
  let arrivals = ref [] in
  let link =
    Link.create e ~bandwidth_bps:8e6 ~delay:(Time.ms 10)
      ~sink:(fun _ -> arrivals := Engine.now e :: !arrivals)
      ()
  in
  Faults.delay_spike e link ~at:(Time.ms 100) ~extra:(Time.ms 40) ~duration:(Time.ms 100) ();
  let send_at ms =
    ignore
      (Engine.schedule_at e (Time.ms ms) (fun () ->
           Link.send link (mk_pkt ~bytes:(1000 - Packet.header_bytes) ())))
  in
  send_at 0;
  (* 1 ms tx + 10 ms prop = arrives at 11 ms *)
  send_at 150;
  (* inside the spike: 1 + 10 + 40 = arrives at 201 ms *)
  send_at 300;
  (* after the spike clears: arrives at 311 ms *)
  Engine.run e;
  Alcotest.(check (list int)) "base, spiked, recovered"
    [ Time.ms 11; Time.ms 201; Time.ms 311 ]
    (List.rev !arrivals)

(* ---- Bandwidth steps / ramp --------------------------------------------- *)

let test_bandwidth_steps () =
  let e = Engine.create () in
  let net = Topology.pipe e ~bandwidth_bps:1e7 ~delay:0 () in
  Faults.bandwidth_steps e net.Topology.ab [ (Time.sec 1., 5e6); (Time.sec 2., 2e6) ];
  Engine.run ~until:(Time.ms 1500) e;
  Alcotest.(check (float 1.)) "first change applied" 5e6 (Link.bandwidth net.Topology.ab);
  Engine.run ~until:(Time.sec 3.) e;
  Alcotest.(check (float 1.)) "second change applied" 2e6 (Link.bandwidth net.Topology.ab)

let test_bandwidth_ramp () =
  let e = Engine.create () in
  let link = Link.create e ~bandwidth_bps:10e6 ~delay:0 ~sink:ignore () in
  Faults.bandwidth_ramp e link ~at:(Time.sec 1.) ~to_bps:2e6 ~over:(Time.sec 4.) ~steps:4;
  Engine.run ~until:(Time.ms 2100) e;
  Alcotest.(check (float 1.)) "first step: 10 - 2 = 8" 8e6 (Link.bandwidth link);
  Engine.run ~until:(Time.ms 3100) e;
  Alcotest.(check (float 1.)) "halfway: 6" 6e6 (Link.bandwidth link);
  Engine.run ~until:(Time.sec 6.) e;
  Alcotest.(check (float 1.)) "ramp target reached" 2e6 (Link.bandwidth link)

(* ---- Scenario ------------------------------------------------------------ *)

let test_scenario_validation () =
  expect_invalid "unknown target rejected at compile" (fun () ->
      let e = Engine.create () in
      let link = Link.create e ~bandwidth_bps:1e6 ~delay:0 ~sink:ignore () in
      Scenario.compile e ~rng:(Rng.create ~seed:1)
        ~links:[ ("fwd", link) ]
        (Scenario.make ~name:"bad"
           [ { Scenario.at = 0; target = "bogus"; action = Scenario.Outage (Time.sec 1.) } ]));
  expect_invalid "bad probability rejected at make" (fun () ->
      Scenario.make ~name:"bad"
        [ { Scenario.at = 0; target = "fwd"; action = Scenario.Set_loss (Scenario.Loss_bernoulli 1.5) } ]);
  expect_invalid "negative time rejected at make" (fun () ->
      Scenario.make ~name:"bad"
        [ { Scenario.at = -1; target = "fwd"; action = Scenario.Set_bandwidth 1e6 } ])

let test_scenario_fault_window () =
  let s =
    Scenario.make ~name:"w"
      [
        { Scenario.at = Time.sec 1.; target = "fwd"; action = Scenario.Set_bandwidth 1e6 };
        { Scenario.at = Time.sec 5.; target = "fwd"; action = Scenario.Outage (Time.sec 2.) };
        {
          Scenario.at = Time.sec 3.;
          target = "fwd";
          action = Scenario.Loss_burst { spec = Scenario.Loss_bernoulli 0.1; duration = Time.sec 1. };
        };
      ]
  in
  (match Scenario.fault_window s with
  | Some (s0, e0) ->
      Alcotest.(check int) "window starts at the first disruption" (Time.sec 3.) s0;
      Alcotest.(check int) "window ends at the last clearance" (Time.sec 7.) e0
  | None -> Alcotest.fail "expected a fault window");
  let bw_only = Scenario.of_bandwidth_schedule ~name:"bw" ~target:"fwd" [ (0, 1e6) ] in
  "renegotiation-only scenario has no fault window" => (Scenario.fault_window bw_only = None)

(* one scenario exercising every action kind, driven by CBR traffic; the
   whole observable outcome (delivery count + link stats) must be a pure
   function of the seed *)
let scenario_run seed =
  let e = Engine.create () in
  let rng = Rng.create ~seed in
  let net = Topology.pipe e ~bandwidth_bps:8e6 ~delay:(Time.ms 5) ~rng () in
  let got = ref 0 in
  Host.bind net.Topology.b Addr.Udp ~port:9 (fun _ -> incr got);
  let _src =
    Background.cbr e ~host:net.Topology.a
      ~dst:(Addr.endpoint ~host:1 ~port:9)
      ~rate_bps:2e6 ~packet_bytes:1000 ~stop:(Time.sec 20.) ()
  in
  let scenario =
    Scenario.make ~name:"everything"
      [
        { Scenario.at = Time.sec 2.; target = "fwd"; action = Scenario.Set_bandwidth 4e6 };
        {
          Scenario.at = Time.sec 4.;
          target = "fwd";
          action =
            Scenario.Loss_burst
              {
                spec = Scenario.Loss_gilbert_elliott (Loss.ge ~p_gb:0.02 ~p_bg:0.2 ~loss_bad:0.5 ());
                duration = Time.sec 3.;
              };
        };
        { Scenario.at = Time.sec 8.; target = "fwd"; action = Scenario.Outage (Time.sec 1.) };
        {
          Scenario.at = Time.sec 10.;
          target = "fwd";
          action =
            Scenario.Delay_spike
              { extra = Time.ms 30; jitter = Time.ms 5; duration = Time.sec 2. };
        };
        {
          Scenario.at = Time.sec 13.;
          target = "fwd";
          action = Scenario.Flap { down = Time.ms 200; up = Time.ms 300; cycles = 2 };
        };
        {
          Scenario.at = Time.sec 15.;
          target = "fwd";
          action = Scenario.Ramp_bandwidth { to_bps = 8e6; over = Time.sec 2.; steps = 4 };
        };
      ]
  in
  Scenario.compile e ~rng ~links:[ ("fwd", net.Topology.ab); ("rev", net.Topology.ba) ] scenario;
  Engine.run ~until:(Time.sec 21.) e;
  (!got, Link.stats net.Topology.ab)

let test_scenario_deterministic () =
  let got1, stats1 = scenario_run 42 in
  let got2, stats2 = scenario_run 42 in
  Alcotest.(check int) "same deliveries" got1 got2;
  "identical link stats" => (stats1 = stats2);
  "every drop cause occurred"
  => (stats1.Link.channel_drops > 0 && stats1.Link.down_drops > 0);
  "traffic flowed" => (got1 > 1000)

(* ---- Control-plane fault injection -------------------------------------- *)

(* two CBR streams into one host; the injector classifies only port-9
   traffic as "control", so port 10 must never be touched *)
let control_run ~profile ~seed =
  let e = Engine.create () in
  let rng = Rng.create ~seed in
  let net = Topology.pipe e ~bandwidth_bps:8e6 ~delay:(Time.ms 5) ~rng () in
  let inj =
    Control_faults.install net.Topology.b ~classify:(fun pkt ->
        pkt.Packet.flow.Addr.dst.Addr.port = 9)
  in
  let ctl = ref 0 and data = ref 0 in
  Host.bind net.Topology.b Addr.Udp ~port:9 (fun _ -> incr ctl);
  Host.bind net.Topology.b Addr.Udp ~port:10 (fun _ -> incr data);
  List.iter
    (fun port ->
      ignore
        (Background.cbr e ~host:net.Topology.a
           ~dst:(Addr.endpoint ~host:1 ~port)
           ~rate_bps:1e6 ~packet_bytes:500 ~stop:(Time.sec 6.) ()))
    [ 9; 10 ];
  Control_faults.engage inj ~rng:(Rng.split rng) ~at:(Time.sec 2.) ~profile
    ~duration:(Time.sec 2.);
  Engine.run ~until:(Time.sec 8.) e;
  (!ctl, !data, Control_faults.counters inj, Control_faults.active inj)

let test_control_faults_targets_only_control () =
  let drop_all = { Control_faults.drop = 1.0; dup = 0.0; delay = 0; jitter = 0 } in
  let ctl, data, c, still_active = control_run ~profile:drop_all ~seed:7 in
  let clean_ctl, clean_data, _, _ =
    control_run ~profile:{ drop_all with Control_faults.drop = 0.0 } ~seed:7
  in
  Alcotest.(check int) "data traffic untouched" clean_data data;
  "all in-window control packets dropped" => (c.Control_faults.dropped > 0);
  "control deliveries reduced by exactly the drops"
  => (ctl = clean_ctl - c.Control_faults.dropped);
  "window cleared after its duration" => (not still_active);
  "bookkeeping balances"
  => (c.Control_faults.matched
      = c.Control_faults.passed + c.Control_faults.dropped + c.Control_faults.delayed)

let test_control_faults_dup_delay_deterministic () =
  let messy =
    { Control_faults.drop = 0.2; dup = 0.3; delay = Time.ms 2; jitter = Time.ms 5 }
  in
  let r1 = control_run ~profile:messy ~seed:11 in
  let r2 = control_run ~profile:messy ~seed:11 in
  "same seed, same outcome" => (r1 = r2);
  let _, _, c, _ = r1 in
  "duplicates injected" => (c.Control_faults.duplicated > 0);
  "packets rescheduled" => (c.Control_faults.delayed > 0)

let test_control_fault_scenario_action () =
  let profile = { Control_faults.drop = 0.5; dup = 0.0; delay = 0; jitter = 0 } in
  expect_invalid "zero-duration control fault rejected at make" (fun () ->
      Scenario.make ~name:"bad"
        [
          {
            Scenario.at = 0;
            target = "ctl";
            action = Scenario.Control_fault { profile; duration = 0 };
          };
        ]);
  expect_invalid "bad probability rejected at make" (fun () ->
      Scenario.make ~name:"bad"
        [
          {
            Scenario.at = 0;
            target = "ctl";
            action =
              Scenario.Control_fault
                { profile = { profile with Control_faults.drop = 1.5 }; duration = Time.sec 1. };
          };
        ]);
  let good =
    Scenario.make ~name:"good"
      [
        {
          Scenario.at = Time.sec 1.;
          target = "ctl";
          action = Scenario.Control_fault { profile; duration = Time.sec 2. };
        };
      ]
  in
  (* control targets resolve against the controls binding, not links *)
  Scenario.validate ~links:[] ~controls:[ "ctl" ] good;
  expect_invalid "unknown control target rejected" (fun () ->
      Scenario.validate ~links:[] ~controls:[] good);
  (match Scenario.fault_window good with
  | Some (s0, e0) ->
      Alcotest.(check int) "window opens at the engagement" (Time.sec 1.) s0;
      Alcotest.(check int) "window closes at the clearance" (Time.sec 3.) e0
  | None -> Alcotest.fail "control fault must contribute a fault window");
  (* and compile arms the injector *)
  let e = Engine.create () in
  let host = Host.create e ~id:0 () in
  let inj = Control_faults.install host ~classify:(fun _ -> true) in
  Scenario.compile e ~rng:(Rng.create ~seed:1) ~links:[] ~controls:[ ("ctl", inj) ] good;
  "inactive before the window" => (not (Control_faults.active inj));
  Engine.run ~until:(Time.sec 2.) e;
  "active inside the window" => Control_faults.active inj;
  Engine.run ~until:(Time.sec 4.) e;
  "cleared after the window" => (not (Control_faults.active inj))

(* ---- Scenario experiments (acceptance criteria) -------------------------- *)

(* a TCP/CM bulk flow must collapse during the 2 s outage and climb back to
   >= 80% of its pre-fault goodput within a bounded window after the link
   returns *)
let test_outage_recovery () =
  let open Experiments.Scenarios in
  let r =
    run_one Experiments.Exp_common.default_params ~scenario:Outage ~app:Tcp_cm_bulk
  in
  "goodput collapses during the outage" => (r.r_fault_bps < 0.2 *. r.r_pre_bps);
  "outage killed in-flight packets" => (r.r_stats.Link.down_drops > 0);
  match r.r_recovery with
  | None -> Alcotest.fail "flow never recovered after the outage cleared"
  | Some rec_span ->
      Alcotest.(check bool)
        (Printf.sprintf "recovered to 80%% of pre-fault goodput in %.1f s (bound 6 s)"
           (Time.to_float_s rec_span))
        true
        (rec_span <= Time.sec 6.)

(* same seed => byte-identical serialized JSON for the whole 3x2 matrix *)
let test_scenario_json_deterministic () =
  let open Experiments in
  let p = Exp_common.default_params in
  let render () = Exp_common.Json.to_string (Scenarios.to_json p (Scenarios.run p)) in
  let j1 = render () and j2 = render () in
  Alcotest.(check string) "byte-identical JSON across runs" j1 j2;
  "document is non-trivial" => (String.length j1 > 200)

let () =
  Alcotest.run "dynamics"
    [
      ( "loss",
        [
          Alcotest.test_case "GE stationary rate (bursty)" `Quick test_ge_stationary_bursty;
          Alcotest.test_case "GE stationary rate (lossy good)" `Quick
            test_ge_stationary_lossy_good;
          Alcotest.test_case "GE burstiness" `Quick test_ge_burstiness;
          Alcotest.test_case "parameter validation" `Quick test_ge_validation;
          Alcotest.test_case "link loss-model override" `Quick test_link_loss_model_override;
        ] );
      ( "faults",
        [
          Alcotest.test_case "outage drops in-flight" `Quick test_outage_drops_in_flight;
          Alcotest.test_case "send while down" `Quick test_send_while_down_drops;
          Alcotest.test_case "flap cycles" `Quick test_flap_cycles;
          Alcotest.test_case "delay spike" `Quick test_delay_spike;
          Alcotest.test_case "bandwidth steps" `Quick test_bandwidth_steps;
          Alcotest.test_case "bandwidth ramp" `Quick test_bandwidth_ramp;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "validation" `Quick test_scenario_validation;
          Alcotest.test_case "fault window" `Quick test_scenario_fault_window;
          Alcotest.test_case "determinism" `Quick test_scenario_deterministic;
        ] );
      ( "control_faults",
        [
          Alcotest.test_case "targets only control traffic" `Quick
            test_control_faults_targets_only_control;
          Alcotest.test_case "dup/delay deterministic" `Quick
            test_control_faults_dup_delay_deterministic;
          Alcotest.test_case "scenario action" `Quick test_control_fault_scenario_action;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "outage recovery" `Quick test_outage_recovery;
          Alcotest.test_case "JSON determinism" `Quick test_scenario_json_deterministic;
        ] );
    ]
