(* Tests for the endpoint fault-tolerance layer: the feedback watchdog,
   the misbehaving-application auditor (rejection, scoring, quarantine),
   crash reclamation through Libcm.destroy / Cm.reap, the structural
   invariant auditor, and the app_faults experiment family. *)

open Cm_util
open Eventsim
open Netsim
open Cm

let ( => ) name cond = Alcotest.(check bool) name true cond
let mtu = 1000

let flow_key ?(sport = 100) ?(dport = 200) ?(dst = 1) () =
  Addr.flow
    ~src:(Addr.endpoint ~host:0 ~port:sport)
    ~dst:(Addr.endpoint ~host:dst ~port:dport)
    ~proto:Addr.Udp ()

let audit_clean name cm = name => Cm.Audit.ok (Cm.Audit.run cm)

(* grow a flow's macroflow window with clean feedback cycles *)
let grow engine cm fid ~rounds =
  for _ = 1 to rounds do
    Cm.notify cm fid ~nbytes:mtu;
    Cm.update cm fid ~nsent:mtu ~nrecd:mtu ~loss:Cm_types.No_loss ~rtt:(Time.ms 50) ();
    Engine.run_for engine (Time.ms 10)
  done

(* ------------------------------------------------------------------ *)
(* Feedback watchdog *)

let test_watchdog_off_by_default () =
  let engine = Engine.create () in
  let cm = Cm.create engine ~mtu () in
  let fid = Cm.open_flow cm (flow_key ()) in
  grow engine cm fid ~rounds:8;
  let mf = Cm.macroflow_of cm fid in
  let cwnd0 = Macroflow.cwnd mf in
  "window grew" => (cwnd0 > 2 * mtu);
  (* data outstanding, then total feedback silence *)
  Cm.notify cm fid ~nbytes:mtu;
  Engine.run_for engine (Time.sec 3.);
  Alcotest.(check int) "no watchdog, no aging" cwnd0 (Macroflow.cwnd mf);
  Alcotest.(check int) "no fires counted" 0 (Cm.watchdog_fires cm)

let test_watchdog_ages_stale_window () =
  let engine = Engine.create () in
  let cm = Cm.create engine ~mtu ~feedback_watchdog:Macroflow.default_watchdog () in
  let fid = Cm.open_flow cm (flow_key ()) in
  grow engine cm fid ~rounds:8;
  let mf = Cm.macroflow_of cm fid in
  let cwnd0 = Macroflow.cwnd mf in
  "window grew" => (cwnd0 > 2 * mtu);
  (* charge stays outstanding and the feedback stops: the watchdog must
     age the window back toward the initial window, exponentially *)
  Cm.notify cm fid ~nbytes:mtu;
  Engine.run_for engine (Time.sec 3.);
  Alcotest.(check int) "aged to the initial window" mtu (Macroflow.cwnd mf);
  "multiple exponential steps" => (Cm.watchdog_fires cm >= 2);
  audit_clean "audit clean after aging" cm

let test_watchdog_quiet_when_feedback_flows () =
  let engine = Engine.create () in
  let cm = Cm.create engine ~mtu ~feedback_watchdog:Macroflow.default_watchdog () in
  let fid = Cm.open_flow cm (flow_key ()) in
  grow engine cm fid ~rounds:30;
  Alcotest.(check int) "healthy feedback never trips the watchdog" 0 (Cm.watchdog_fires cm)

(* ------------------------------------------------------------------ *)
(* Misbehaviour auditor *)

let make_audited ?(auditor = Cm.default_auditor) ?grant_reclaim_after () =
  let engine = Engine.create () in
  let cm = Cm.create engine ~mtu ~auditor ?grant_reclaim_after () in
  (engine, cm)

let test_malformed_update_rejected_not_raised () =
  let _engine, cm = make_audited () in
  let fid = Cm.open_flow cm (flow_key ()) in
  (* nrecd > nsent is impossible feedback; kernel-facing path must not
     raise once the auditor is on *)
  Cm.update cm fid ~nsent:100 ~nrecd:200 ~loss:Cm_types.No_loss ();
  let c = Cm.counters cm in
  Alcotest.(check int) "rejected and counted" 1 c.Cm.rejected_updates;
  Alcotest.(check int) "scored" 1 (Cm.suspicion cm fid);
  (* without an auditor the pre-defense contract is preserved *)
  let engine2 = Engine.create () in
  let cm2 = Cm.create engine2 ~mtu () in
  let fid2 = Cm.open_flow cm2 (flow_key ()) in
  Alcotest.check_raises "raises without auditor"
    (Invalid_argument "Macroflow.update: need 0 <= nrecd <= nsent") (fun () ->
      Cm.update cm2 fid2 ~nsent:100 ~nrecd:200 ~loss:Cm_types.No_loss ())

let test_overclaim_rejected_and_quarantined () =
  let engine, cm = make_audited () in
  let fid = Cm.open_flow cm (flow_key ()) in
  let mf0 = Cm.macroflow_id cm fid in
  let cwnd_before = Macroflow.cwnd (Cm.macroflow_of cm fid) in
  (* claim vastly more resolved bytes than were ever charged: each claim
     is rejected (the window must not inflate) and scores a strike *)
  for _ = 1 to 3 do
    Cm.update cm fid ~nsent:50_000 ~nrecd:50_000 ~loss:Cm_types.No_loss ~rtt:(Time.ms 10) ()
  done;
  let c = Cm.counters cm in
  Alcotest.(check int) "every overclaim rejected" 3 c.Cm.rejected_updates;
  Alcotest.(check int) "cwnd never inflated by rejected feedback" cwnd_before
    (Macroflow.cwnd (Cm.macroflow_of cm (Cm.open_flow cm (flow_key ~sport:101 ()))));
  Alcotest.(check int) "quarantined at the threshold" 1 c.Cm.quarantines;
  "flow marked quarantined" => Cm.is_quarantined cm fid;
  "moved to a policed macroflow" => (Cm.macroflow_id cm fid <> mf0);
  Engine.run_for engine (Time.ms 500);
  audit_clean "audit clean after quarantine" cm

let test_hoarded_grants_reclaimed_and_scored () =
  let engine, cm = make_audited ~grant_reclaim_after:(Time.ms 200) () in
  let fid = Cm.open_flow cm (flow_key ()) in
  (* accept grants but never transmit: the reclaim timer returns the
     window and each reclaimed grant is a strike *)
  Cm.register_send cm fid (fun _ -> ());
  for _ = 1 to 4 do
    Cm.request cm fid
  done;
  Engine.run_for engine (Time.sec 2.);
  let c = Cm.counters cm in
  "reclaims scored the hoarder" => (Cm.suspicion cm fid >= 3);
  Alcotest.(check int) "quarantined" 1 c.Cm.quarantines;
  "grants back in the window" => (Macroflow.granted (Cm.macroflow_of cm fid) = 0);
  audit_clean "audit clean after hoard quarantine" cm

let test_charge_inflation_quarantined () =
  let engine, cm = make_audited () in
  let fid = Cm.open_flow cm (flow_key ()) in
  (* a large ungranted transmission claim: charged only up to the
     allowance, and the phantom charge no feedback ever explains must
     accumulate inflation strikes until quarantine *)
  Cm.notify cm fid ~nbytes:70_000;
  let c = Cm.counters cm in
  Alcotest.(check int) "over-allowance notify detected" 1 c.Cm.rejected_notifies;
  Engine.run_for engine (Time.sec 4.);
  "inflation strikes accumulated" => (Cm.suspicion cm fid >= 3);
  "quarantined" => Cm.is_quarantined cm fid;
  audit_clean "audit clean after inflation quarantine" cm

let test_silent_flow_with_charge_scored () =
  let engine, cm = make_audited () in
  let f_silent = Cm.open_flow cm (flow_key ~sport:100 ()) in
  let f_honest = Cm.open_flow cm (flow_key ~sport:101 ()) in
  grow engine cm f_honest ~rounds:8;
  (* the silent flow transmits (charged) but never reports, while the
     honest sibling keeps the macroflow's own feedback clock fresh *)
  for _ = 1 to 5 do
    Cm.notify cm f_silent ~nbytes:(3 * mtu);
    Cm.notify cm f_honest ~nbytes:mtu;
    Cm.update cm f_honest ~nsent:mtu ~nrecd:mtu ~loss:Cm_types.No_loss ~rtt:(Time.ms 50) ();
    Engine.run_for engine (Time.sec 1.)
  done;
  "silent flow scored" => (Cm.suspicion cm f_silent >= 3);
  "silent flow quarantined" => Cm.is_quarantined cm f_silent;
  Alcotest.(check int) "honest sibling untouched" 0 (Cm.suspicion cm f_honest);
  audit_clean "audit clean after silence quarantine" cm

(* ------------------------------------------------------------------ *)
(* Crash reclamation: Libcm.destroy / Cm.reap *)

let make_proc () =
  let engine = Engine.create () in
  let net = Topology.pipe engine ~bandwidth_bps:1e7 ~delay:(Time.ms 5) () in
  let cm = Cm.create engine ~mtu () in
  Cm.attach cm net.Topology.a;
  let lib = Libcm.create net.Topology.a cm () in
  (engine, net, cm, lib)

let test_destroy_reaps_and_returns_grants () =
  let engine, _net, cm, lib = make_proc () in
  let f_lib = Libcm.open_flow lib (flow_key ~sport:100 ()) in
  (* a kernel-client flow of the same destination shares the macroflow
     and must survive the process crash *)
  let f_kernel = Cm.open_flow cm (flow_key ~sport:101 ()) in
  Libcm.register_send lib f_lib (fun _ -> () (* sits on its grant *));
  Libcm.request lib f_lib;
  Engine.run_for engine (Time.ms 10);
  let mf = Cm.macroflow_of cm f_kernel in
  "grant parked before the crash" => (Macroflow.granted mf > 0);
  Libcm.destroy lib;
  "process dead" => not (Libcm.is_alive lib);
  let c = Cm.counters cm in
  Alcotest.(check int) "flow reaped" 1 c.Cm.reaps;
  Alcotest.(check (option int)) "reaped flow gone from the table" None
    (Cm.lookup cm (flow_key ~sport:100 ()));
  Alcotest.(check int) "granted-but-unsent bytes returned immediately" 0 (Macroflow.granted mf);
  "reclamation counted" => (Cm.released_grant_bytes cm > 0);
  "sibling flow survives" => (Cm.lookup cm (flow_key ~sport:101 ()) = Some f_kernel);
  "macroflow still alive" => Macroflow.alive mf;
  audit_clean "audit clean after crash" cm

let test_destroy_is_idempotent_and_fences_api () =
  let engine, _net, cm, lib = make_proc () in
  let fid = Libcm.open_flow lib (flow_key ()) in
  Engine.run_for engine (Time.ms 5);
  Libcm.destroy lib;
  Libcm.destroy lib;
  Alcotest.(check int) "second destroy reaps nothing more" 1 (Cm.counters cm).Cm.reaps;
  Alcotest.check_raises "cm_* calls raise after death"
    (Invalid_argument "Libcm: process is destroyed (control socket closed)") (fun () ->
      Libcm.request lib fid);
  audit_clean "audit clean after double destroy" cm

let test_destroy_cancels_callbacks () =
  let engine, _net, cm, lib = make_proc () in
  let fid = Libcm.open_flow lib (flow_key ()) in
  let fired = ref 0 in
  Libcm.register_send lib fid (fun _ -> incr fired);
  (* close the window so the request's grant is still pending when the
     process dies: it must never be delivered *)
  Cm.notify cm fid ~nbytes:mtu;
  Libcm.request lib fid;
  Libcm.destroy lib;
  Engine.run_for engine (Time.sec 1.);
  Alcotest.(check int) "no callback after destroy" 0 !fired

let test_reap_never_raises () =
  let engine = Engine.create () in
  let cm = Cm.create engine ~mtu () in
  let fid = Cm.open_flow cm (flow_key ()) in
  "reaps an open flow" => Cm.reap cm fid;
  "false on a closed flow" => not (Cm.reap cm fid);
  "false on an unknown flow" => not (Cm.reap cm 9999);
  audit_clean "audit clean after reaps" cm

(* ------------------------------------------------------------------ *)
(* Invariant auditor *)

let test_audit_reports_structure () =
  let engine = Engine.create () in
  let cm = Cm.create engine ~mtu () in
  let rep0 = Cm.Audit.run cm in
  "fresh cm is clean" => Cm.Audit.ok rep0;
  Alcotest.(check int) "no flows yet" 0 rep0.Cm.Audit.checked_flows;
  let f1 = Cm.open_flow cm (flow_key ~sport:100 ()) in
  let _f2 = Cm.open_flow cm (flow_key ~sport:101 ~dst:2 ()) in
  let rep = Cm.Audit.run cm in
  Alcotest.(check int) "two flows checked" 2 rep.Cm.Audit.checked_flows;
  Alcotest.(check int) "two macroflows checked" 2 rep.Cm.Audit.checked_macroflows;
  "clean under load" => Cm.Audit.ok rep;
  Cm.split cm f1;
  Cm.close_flow cm f1;
  "clean after split + close" => Cm.Audit.ok (Cm.Audit.run cm);
  let buf = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buf in
  Cm.Audit.pp fmt (Cm.Audit.run cm);
  Format.pp_print_flush fmt ();
  "pp renders" => (String.length (Buffer.contents buf) > 0)

let test_audit_lifecycle_under_churn () =
  (* open / grant / feedback / close churn across destinations must keep
     every structural invariant at every step *)
  let engine = Engine.create () in
  let cm = Cm.create engine ~mtu ~auditor:Cm.default_auditor () in
  for round = 0 to 5 do
    let fids =
      List.map
        (fun i -> Cm.open_flow cm (flow_key ~sport:(100 + i) ~dst:(1 + (i mod 2)) ()))
        [ 0; 1; 2; 3 ]
    in
    List.iter
      (fun fid ->
        Cm.register_send cm fid (fun f -> Cm.notify cm f ~nbytes:mtu);
        Cm.request cm fid)
      fids;
    Engine.run_for engine (Time.ms 50);
    List.iter
      (fun fid ->
        Cm.update cm fid ~nsent:mtu ~nrecd:mtu ~loss:Cm_types.No_loss ~rtt:(Time.ms 10) ())
      fids;
    "clean mid-churn" => Cm.Audit.ok (Cm.Audit.run cm);
    List.iter
      (fun fid -> if (fid + round) mod 2 = 0 then Cm.close_flow cm fid else ignore (Cm.reap cm fid))
      fids;
    "clean after churn round" => Cm.Audit.ok (Cm.Audit.run cm)
  done;
  let c = Cm.counters cm in
  Alcotest.(check int) "every open accounted" c.Cm.opens (c.Cm.closes + c.Cm.reaps)

(* ------------------------------------------------------------------ *)
(* App_faults schedule plumbing *)

let test_app_faults_compile_toggles_flags () =
  let engine = Engine.create () in
  let flags = Cm_dynamics.App_faults.behaviour () in
  let crashed = ref false in
  let targets =
    [
      Cm_dynamics.App_faults.target ~name:"app" ~crash:(fun () -> crashed := true) flags;
    ]
  in
  let sched =
    Cm_dynamics.App_faults.make ~name:"t"
      [
        { Cm_dynamics.App_faults.at = Time.sec 1.; target = "app";
          kind = Cm_dynamics.App_faults.Go_silent (Time.sec 2.) };
        { Cm_dynamics.App_faults.at = Time.sec 4.; target = "app";
          kind = Cm_dynamics.App_faults.Crash };
      ]
  in
  Cm_dynamics.App_faults.compile engine ~targets sched;
  Engine.run_for engine (Time.ms 500);
  "not yet silent" => not flags.Cm_dynamics.App_faults.silent;
  Engine.run_for engine (Time.sec 1.);
  "silent inside the window" => flags.Cm_dynamics.App_faults.silent;
  Engine.run_for engine (Time.sec 2.);
  "window cleared" => not flags.Cm_dynamics.App_faults.silent;
  "not yet crashed" => not !crashed;
  Engine.run_for engine (Time.sec 1.);
  "crash thunk ran" => !crashed;
  match Cm_dynamics.App_faults.fault_window sched with
  | Some (lo, hi) ->
      Alcotest.(check int) "window starts at first onset" (Time.sec 1.) lo;
      Alcotest.(check int) "crash never clears, window ends at last end" (Time.sec 4.) hi
  | None -> Alcotest.fail "schedule has a window"

let test_app_faults_validation () =
  Alcotest.check_raises "unknown target named"
    (Invalid_argument "App_faults t: unknown target \"ghost\" (have: app)") (fun () ->
      Cm_dynamics.App_faults.validate
        ~targets:[ Cm_dynamics.App_faults.target ~name:"app" (Cm_dynamics.App_faults.behaviour ()) ]
        (Cm_dynamics.App_faults.make ~name:"t"
           [
             { Cm_dynamics.App_faults.at = Time.zero; target = "ghost";
               kind = Cm_dynamics.App_faults.Crash };
           ]))

let test_app_faults_storm_deterministic () =
  let draw seed =
    let rng = Rng.create ~seed in
    let t =
      Cm_dynamics.App_faults.storm ~rng ~at:(Time.sec 5.) ~spread:(Time.sec 2.)
        [ "a"; "b"; "c" ]
    in
    List.map
      (fun (s : Cm_dynamics.App_faults.step) ->
        (s.Cm_dynamics.App_faults.at, s.Cm_dynamics.App_faults.target,
         s.Cm_dynamics.App_faults.kind))
      t.Cm_dynamics.App_faults.steps
  in
  "same seed, same storm" => (draw 7 = draw 7);
  "different seeds diverge" => (draw 7 <> draw 8)

(* ------------------------------------------------------------------ *)
(* The app_faults experiment family (end-to-end) *)

let test_storm_defends_and_recovers () =
  let open Experiments in
  let p = Exp_common.default_params in
  let results = App_faults.run p in
  List.iter
    (fun (r : App_faults.result) ->
      Printf.sprintf "%s: invariant audit clean" r.App_faults.r_case
      => (r.App_faults.r_audit_violations = []);
      Printf.sprintf "%s: honest flows at fair share (ratio %.2f)" r.App_faults.r_case
        r.App_faults.r_recovery_ratio
      => (r.App_faults.r_case = "baseline" || r.App_faults.r_recovery_ratio >= 0.9))
    results;
  let storm = List.find (fun r -> r.App_faults.r_case = "storm") results in
  "storm crasher reaped" => (storm.App_faults.r_counters.Cm.reaps = 1);
  "storm offenders quarantined" => (storm.App_faults.r_counters.Cm.quarantines >= 3);
  (match storm.App_faults.r_first_defense with
  | Some t -> "first defense inside the recovery budget" => (t < Time.sec 16.)
  | None -> Alcotest.fail "storm triggered no defense");
  "reclamation returned grant bytes" => (storm.App_faults.r_released_grant_bytes > 0)

let test_app_faults_json_deterministic () =
  let open Experiments in
  let p = Exp_common.default_params in
  let render () = Exp_common.Json.to_string (App_faults.to_json p (App_faults.run p)) in
  let j1 = render () and j2 = render () in
  Alcotest.(check string) "byte-identical JSON across runs" j1 j2;
  "document is non-trivial" => (String.length j1 > 500)

let () =
  Alcotest.run "endpoint_faults"
    [
      ( "watchdog",
        [
          Alcotest.test_case "off by default" `Quick test_watchdog_off_by_default;
          Alcotest.test_case "ages stale windows" `Quick test_watchdog_ages_stale_window;
          Alcotest.test_case "quiet under healthy feedback" `Quick
            test_watchdog_quiet_when_feedback_flows;
        ] );
      ( "auditor",
        [
          Alcotest.test_case "malformed rejected, not raised" `Quick
            test_malformed_update_rejected_not_raised;
          Alcotest.test_case "overclaim quarantined" `Quick test_overclaim_rejected_and_quarantined;
          Alcotest.test_case "hoarded grants reclaimed" `Quick
            test_hoarded_grants_reclaimed_and_scored;
          Alcotest.test_case "charge inflation quarantined" `Quick
            test_charge_inflation_quarantined;
          Alcotest.test_case "silence with charge scored" `Quick
            test_silent_flow_with_charge_scored;
        ] );
      ( "crash",
        [
          Alcotest.test_case "destroy reaps and returns grants" `Quick
            test_destroy_reaps_and_returns_grants;
          Alcotest.test_case "destroy idempotent, api fenced" `Quick
            test_destroy_is_idempotent_and_fences_api;
          Alcotest.test_case "destroy cancels callbacks" `Quick test_destroy_cancels_callbacks;
          Alcotest.test_case "reap never raises" `Quick test_reap_never_raises;
        ] );
      ( "audit",
        [
          Alcotest.test_case "reports structure" `Quick test_audit_reports_structure;
          Alcotest.test_case "clean under churn" `Quick test_audit_lifecycle_under_churn;
        ] );
      ( "app_faults",
        [
          Alcotest.test_case "compile toggles flags" `Quick test_app_faults_compile_toggles_flags;
          Alcotest.test_case "validation" `Quick test_app_faults_validation;
          Alcotest.test_case "storm deterministic" `Quick test_app_faults_storm_deterministic;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "storm defends and recovers" `Slow test_storm_defends_and_recovers;
          Alcotest.test_case "json deterministic" `Slow test_app_faults_json_deterministic;
        ] );
    ]
