(* Tests for the network substrate: queues, links, hosts, routers,
   topologies, CPU resource, background traffic. *)

open Cm_util
open Eventsim
open Netsim

let ( => ) name cond = Alcotest.(check bool) name true cond

let mk_flow ?(src = 0) ?(dst = 1) ?(sport = 10) ?(dport = 20) ?(proto = Addr.Udp) () =
  Addr.flow
    ~src:(Addr.endpoint ~host:src ~port:sport)
    ~dst:(Addr.endpoint ~host:dst ~port:dport)
    ~proto ()

let mk_pkt ?(bytes = 1000) ?flow () =
  let flow = match flow with Some f -> f | None -> mk_flow () in
  Packet.make ~now:0 ~flow ~payload_bytes:bytes (Packet.Raw bytes)

(* ---- Addr ------------------------------------------------------------ *)

let test_addr_reverse () =
  let f = mk_flow () in
  let r = Addr.reverse f in
  "src/dst swapped" => (Addr.equal_endpoint r.Addr.src f.Addr.dst && Addr.equal_endpoint r.Addr.dst f.Addr.src);
  "double reverse identity" => Addr.equal_flow f (Addr.reverse r)

let test_addr_equality () =
  "equal flows" => Addr.equal_flow (mk_flow ()) (mk_flow ());
  "different port differs" => not (Addr.equal_flow (mk_flow ()) (mk_flow ~sport:11 ()));
  "different proto differs" => not (Addr.equal_flow (mk_flow ()) (mk_flow ~proto:Addr.Tcp ()))

(* ---- Packet ----------------------------------------------------------- *)

let test_packet_sizes () =
  let p = mk_pkt ~bytes:100 () in
  Alcotest.(check int) "wire size includes headers" (100 + Packet.header_bytes) p.Packet.size;
  Alcotest.(check int) "payload recoverable" 100 (Packet.payload_bytes p);
  let ids = List.init 10 (fun _ -> (mk_pkt ()).Packet.id) in
  Alcotest.(check int) "ids unique" 10 (List.length (List.sort_uniq Stdlib.compare ids))

(* ---- Queue_disc -------------------------------------------------------- *)

let test_droptail_limit () =
  let q = Queue_disc.droptail ~limit_pkts:3 () in
  let verdicts = List.init 5 (fun _ -> q.Queue_disc.enqueue (mk_pkt ())) in
  let accepted = List.length (List.filter (( = ) Queue_disc.Enqueued) verdicts) in
  Alcotest.(check int) "three accepted" 3 accepted;
  Alcotest.(check int) "two dropped" 2 (q.Queue_disc.drops ());
  Alcotest.(check int) "len" 3 (q.Queue_disc.len ())

let test_droptail_byte_limit () =
  let q = Queue_disc.droptail ~limit_bytes:2500 ~limit_pkts:100 () in
  let p () = mk_pkt ~bytes:(1000 - Packet.header_bytes) () in
  ignore (q.Queue_disc.enqueue (p ()));
  ignore (q.Queue_disc.enqueue (p ()));
  let v = q.Queue_disc.enqueue (p ()) in
  "third rejected over byte limit" => (v = Queue_disc.Dropped)

let test_droptail_fifo () =
  let q = Queue_disc.droptail ~limit_pkts:10 () in
  let p1 = mk_pkt () and p2 = mk_pkt () in
  ignore (q.Queue_disc.enqueue p1);
  ignore (q.Queue_disc.enqueue p2);
  (match q.Queue_disc.dequeue () with
  | Some p -> Alcotest.(check int) "fifo order" p1.Packet.id p.Packet.id
  | None -> Alcotest.fail "empty");
  Alcotest.(check int) "bytes tracked" p2.Packet.size (q.Queue_disc.bytes ())

let test_drop_from_head () =
  let q = Queue_disc.drop_from_head ~limit_pkts:2 () in
  let p1 = mk_pkt () and p2 = mk_pkt () and p3 = mk_pkt () in
  ignore (q.Queue_disc.enqueue p1);
  ignore (q.Queue_disc.enqueue p2);
  let v = q.Queue_disc.enqueue p3 in
  "new packet admitted" => (v = Queue_disc.Enqueued);
  Alcotest.(check int) "oldest dropped" 1 (q.Queue_disc.drops ());
  match q.Queue_disc.dequeue () with
  | Some p -> Alcotest.(check int) "head is p2 now" p2.Packet.id p.Packet.id
  | None -> Alcotest.fail "empty"

let test_red_marks_ecn () =
  let rng = Rng.create ~seed:1 in
  let q = Queue_disc.red ~ecn:true ~min_th:2 ~max_th:6 ~limit_pkts:10 ~rng () in
  (* hold a standing queue so the EWMA average climbs over min_th *)
  let marked = ref 0 and dropped = ref 0 in
  for _ = 1 to 500 do
    let p = mk_pkt () in
    p.Packet.ecn_capable <- true;
    (match q.Queue_disc.enqueue p with
    | Queue_disc.Enqueued -> if p.Packet.ecn_marked then incr marked
    | Queue_disc.Dropped -> incr dropped);
    (* drain slowly: keep ~5 in queue *)
    if q.Queue_disc.len () > 5 then ignore (q.Queue_disc.dequeue ())
  done;
  "RED marked ECN-capable packets" => (!marked > 0);
  Alcotest.(check int) "ECN avoided early drops below max_th" !marked (q.Queue_disc.marks ())

let test_red_drops_non_ect () =
  let rng = Rng.create ~seed:2 in
  let q = Queue_disc.red ~ecn:true ~min_th:2 ~max_th:6 ~limit_pkts:10 ~rng () in
  let dropped = ref 0 in
  for _ = 1 to 500 do
    (match q.Queue_disc.enqueue (mk_pkt ()) with
    | Queue_disc.Dropped -> incr dropped
    | Queue_disc.Enqueued -> ());
    if q.Queue_disc.len () > 5 then ignore (q.Queue_disc.dequeue ())
  done;
  "non-ECT packets get dropped instead" => (!dropped > 0)

(* ---- Link --------------------------------------------------------------- *)

let test_link_serialization_rate () =
  let e = Engine.create () in
  let arrivals = ref [] in
  let link =
    Link.create e ~bandwidth_bps:8e6 ~delay:0 ~sink:(fun _ -> arrivals := Engine.now e :: !arrivals) ()
  in
  (* 1000-byte packets at 8 Mbps: 1 ms serialization each *)
  let wire = 1000 in
  for _ = 1 to 3 do
    Link.send link (mk_pkt ~bytes:(wire - Packet.header_bytes) ())
  done;
  Engine.run e;
  Alcotest.(check (list int)) "back-to-back serialization"
    [ Time.ms 1; Time.ms 2; Time.ms 3 ]
    (List.rev !arrivals)

let test_link_propagation_delay () =
  let e = Engine.create () in
  let arrival = ref None in
  let link =
    Link.create e ~bandwidth_bps:8e6 ~delay:(Time.ms 10)
      ~sink:(fun _ -> arrival := Some (Engine.now e))
      ()
  in
  Link.send link (mk_pkt ~bytes:(1000 - Packet.header_bytes) ());
  Engine.run e;
  Alcotest.(check (option int)) "tx time + prop delay" (Some (Time.ms 11)) !arrival

let test_link_no_reorder () =
  let e = Engine.create () in
  let rng = Rng.create ~seed:3 in
  let order = ref [] in
  let link =
    Link.create e ~bandwidth_bps:1e7 ~delay:(Time.ms 5)
      ~sink:(fun p -> order := p.Packet.id :: !order)
      ()
  in
  let sent = ref [] in
  for i = 0 to 49 do
    ignore
      (Engine.schedule_at e (Time.us (i * 137)) (fun () ->
           let p = mk_pkt ~bytes:(100 + Rng.int rng 1000) () in
           sent := p.Packet.id :: !sent;
           Link.send link p))
  done;
  Engine.run e;
  let delivered = List.rev !order in
  let sent = List.rev !sent in
  let delivered_subset = List.filter (fun id -> List.mem id delivered) sent in
  Alcotest.(check (list int)) "FIFO delivery" delivered_subset delivered

let test_link_loss_rate () =
  let e = Engine.create () in
  let rng = Rng.create ~seed:4 in
  let got = ref 0 in
  let link =
    Link.create e ~bandwidth_bps:1e9 ~delay:0 ~loss_rate:0.3 ~rng ~sink:(fun _ -> incr got) ()
  in
  let n = 20_000 in
  for _ = 1 to n do
    Link.send link (mk_pkt ~bytes:42 ())
  done;
  Engine.run e;
  let stats = Link.stats link in
  Alcotest.(check int) "conservation" n
    (!got + stats.Link.channel_drops + stats.Link.queue_drops);
  let loss = float_of_int stats.Link.channel_drops /. float_of_int n in
  "empirical loss near 30%" => (Float.abs (loss -. 0.3) < 0.02)

let test_link_bandwidth_change () =
  let e = Engine.create () in
  let arrivals = ref [] in
  let link =
    Link.create e ~bandwidth_bps:8e6 ~delay:0 ~sink:(fun _ -> arrivals := Engine.now e :: !arrivals) ()
  in
  Link.send link (mk_pkt ~bytes:(1000 - Packet.header_bytes) ());
  Engine.run e;
  Link.set_bandwidth link 4e6;
  Link.send link (mk_pkt ~bytes:(1000 - Packet.header_bytes) ());
  Engine.run e;
  match List.rev !arrivals with
  | [ t1; t2 ] ->
      Alcotest.(check int) "first at old rate" (Time.ms 1) t1;
      Alcotest.(check int) "second takes twice as long" (Time.ms 3) t2
  | _ -> Alcotest.fail "expected two arrivals"


let test_link_reordering () =
  let e = Engine.create () in
  let rng = Rng.create ~seed:17 in
  let order = ref [] in
  let link =
    Link.create e ~bandwidth_bps:1e8 ~delay:(Time.ms 1) ~reorder:(0.2, Time.ms 5) ~rng
      ~sink:(fun p -> order := p.Packet.id :: !order)
      ()
  in
  let sent = ref [] in
  for i = 0 to 99 do
    ignore
      (Engine.schedule_at e (Time.us (i * 200)) (fun () ->
           let p = mk_pkt ~bytes:100 () in
           sent := p.Packet.id :: !sent;
           Link.send link p))
  done;
  Engine.run e;
  let delivered = List.rev !order in
  Alcotest.(check int) "all delivered" 100 (List.length delivered);
  "some packets overtook others" => (delivered <> List.sort Stdlib.compare delivered)

let expect_invalid name f =
  name
  => (try
        ignore (f ());
        false
      with Invalid_argument _ -> true)

let test_link_probability_validation () =
  let e = Engine.create () in
  let rng = Rng.create ~seed:5 in
  let mk ?loss_rate ?reorder () =
    Link.create e ~bandwidth_bps:1e6 ~delay:0 ?loss_rate ?reorder ~rng ~sink:ignore ()
  in
  expect_invalid "negative loss rate rejected" (fun () -> mk ~loss_rate:(-0.1) ());
  expect_invalid "loss rate > 1 rejected" (fun () -> mk ~loss_rate:1.5 ());
  expect_invalid "NaN loss rate rejected" (fun () -> mk ~loss_rate:Float.nan ());
  expect_invalid "negative reorder probability rejected" (fun () ->
      mk ~reorder:(-0.2, Time.ms 1) ());
  expect_invalid "reorder probability > 1 rejected" (fun () -> mk ~reorder:(1.2, Time.ms 1) ());
  expect_invalid "NaN reorder probability rejected" (fun () ->
      mk ~reorder:(Float.nan, Time.ms 1) ());
  let l = mk ~loss_rate:0.5 () in
  expect_invalid "set_loss_rate rejects > 1" (fun () -> Link.set_loss_rate l 2.);
  expect_invalid "set_loss_rate rejects negative" (fun () -> Link.set_loss_rate l (-1.));
  expect_invalid "set_loss_rate rejects NaN" (fun () -> Link.set_loss_rate l Float.nan);
  Link.set_loss_rate l 1.;
  Link.set_loss_rate l 0.;
  "boundary values accepted" => true

(* ---- Cpu ------------------------------------------------------------------ *)

let test_cpu_serializes () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  let done_at = ref [] in
  Cpu.run cpu ~cost:(Time.us 10) (fun () -> done_at := Engine.now e :: !done_at);
  Cpu.run cpu ~cost:(Time.us 5) (fun () -> done_at := Engine.now e :: !done_at);
  Engine.run e;
  Alcotest.(check (list int)) "work serialized" [ Time.us 10; Time.us 15 ] (List.rev !done_at);
  Alcotest.(check int) "busy total" (Time.us 15) (Cpu.total_busy cpu)

let test_cpu_zero_cost_is_immediate () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  let ran = ref false in
  Cpu.run cpu ~cost:0 (fun () -> ran := true);
  "zero-cost work ran synchronously" => !ran

let test_cpu_utilization () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  let busy0 = Cpu.total_busy cpu and t0 = Engine.now e in
  Cpu.charge cpu (Time.ms 10);
  ignore (Engine.schedule_at e (Time.ms 100) (fun () -> ()));
  Engine.run e;
  let u = Cpu.utilization cpu ~since_busy:busy0 ~since_time:t0 in
  Alcotest.(check (float 1e-9)) "10% busy" 0.1 u

(* ---- Host / Router ---------------------------------------------------------- *)

let test_host_demux_priority () =
  let e = Engine.create () in
  let h = Host.create e ~id:1 () in
  let port_hits = ref 0 and conn_hits = ref 0 in
  Host.bind h Addr.Udp ~port:20 (fun _ -> incr port_hits);
  Host.deliver h (mk_pkt ());
  Alcotest.(check int) "listener got it" 1 !port_hits;
  Host.connect_demux h (mk_flow ()) (fun _ -> incr conn_hits);
  Host.deliver h (mk_pkt ());
  Alcotest.(check int) "exact match wins" 1 !conn_hits;
  Alcotest.(check int) "listener bypassed" 1 !port_hits;
  Host.disconnect_demux h (mk_flow ());
  Host.deliver h (mk_pkt ());
  Alcotest.(check int) "listener again after disconnect" 2 !port_hits

let test_host_unmatched_counted () =
  let e = Engine.create () in
  let h = Host.create e ~id:1 () in
  Host.deliver h (mk_pkt ());
  Alcotest.(check int) "unmatched counted" 1 (Host.unmatched h)

let test_host_tx_hooks_order () =
  let e = Engine.create () in
  let h = Host.create e ~id:0 () in
  let log = ref [] in
  Host.attach_route h (fun _ -> log := "route" :: !log);
  Host.add_tx_hook h (fun _ -> log := "hook1" :: !log);
  Host.add_tx_hook h (fun _ -> log := "hook2" :: !log);
  Host.ip_output h (mk_pkt ());
  Alcotest.(check (list string)) "hooks before route, in order" [ "hook1"; "hook2"; "route" ]
    (List.rev !log);
  Alcotest.(check int) "tx counted" 1 (Host.tx_packets h)

let test_host_ports_unique () =
  let e = Engine.create () in
  let h = Host.create e ~id:0 () in
  let p1 = Host.alloc_port h and p2 = Host.alloc_port h in
  "ephemeral ports distinct" => (p1 <> p2);
  Host.bind h Addr.Udp ~port:99 (fun _ -> ());
  "double bind rejected"
  => (try
        Host.bind h Addr.Udp ~port:99 (fun _ -> ());
        false
      with Invalid_argument _ -> true)

let test_router_forwarding () =
  let r = Router.create () in
  let to1 = ref 0 and def = ref 0 in
  Router.add_route r ~dst:1 (fun _ -> incr to1);
  Router.forward r (mk_pkt ());
  Alcotest.(check int) "routed" 1 !to1;
  Router.forward r (mk_pkt ~flow:(mk_flow ~dst:9 ()) ());
  Alcotest.(check int) "no route drop counted" 1 (Router.no_route_drops r);
  Router.set_default r (fun _ -> incr def);
  Router.forward r (mk_pkt ~flow:(mk_flow ~dst:9 ()) ());
  Alcotest.(check int) "default route used" 1 !def

(* ---- Topology ----------------------------------------------------------------- *)

let test_pipe_roundtrip () =
  let e = Engine.create () in
  let net = Topology.pipe e ~bandwidth_bps:1e7 ~delay:(Time.ms 5) () in
  let got_b = ref false and got_a = ref false in
  Host.bind net.Topology.b Addr.Udp ~port:20 (fun _ -> got_b := true);
  Host.bind net.Topology.a Addr.Udp ~port:10 (fun _ -> got_a := true);
  Host.ip_output net.Topology.a (mk_pkt ());
  Host.ip_output net.Topology.b (mk_pkt ~flow:(Addr.reverse (mk_flow ())) ());
  Engine.run e;
  "a -> b delivered" => !got_b;
  "b -> a delivered" => !got_a

let test_star_connectivity () =
  let e = Engine.create () in
  let net =
    Topology.star e ~n_clients:3 ~access_bps:1e8 ~access_delay:(Time.ms 1) ~bottleneck_bps:1e7
      ~bottleneck_delay:(Time.ms 10) ()
  in
  let server_got = ref 0 in
  let client_got = Array.make 3 0 in
  Host.bind net.Topology.server Addr.Udp ~port:80 (fun _ -> incr server_got);
  Array.iteri
    (fun i c -> Host.bind c Addr.Udp ~port:80 (fun _ -> client_got.(i) <- client_got.(i) + 1))
    net.Topology.clients;
  (* every client to server, server to every client *)
  Array.iteri
    (fun i c ->
      Host.ip_output c
        (mk_pkt ~flow:(mk_flow ~src:(i + 1) ~dst:0 ~sport:80 ~dport:80 ()) ());
      Host.ip_output net.Topology.server
        (mk_pkt ~flow:(mk_flow ~src:0 ~dst:(i + 1) ~sport:80 ~dport:80 ()) ()))
    net.Topology.clients;
  Engine.run e;
  Alcotest.(check int) "server received all" 3 !server_got;
  Alcotest.(check (array int)) "clients each received one" [| 1; 1; 1 |] client_got

(* the bandwidth-schedule machinery moved to lib/dynamics (Faults.
   bandwidth_steps / Scenario); its tests live in test_dynamics.ml *)

(* ---- Background traffic ----------------------------------------------------------- *)

let test_cbr_rate () =
  let e = Engine.create () in
  let net = Topology.pipe e ~bandwidth_bps:1e8 ~delay:0 () in
  let got = ref 0 in
  Host.bind net.Topology.b Addr.Udp ~port:9 (fun _ -> incr got);
  let src =
    Background.cbr e ~host:net.Topology.a
      ~dst:(Addr.endpoint ~host:1 ~port:9)
      ~rate_bps:800_000. ~packet_bytes:1000 ~stop:(Time.sec 10.) ()
  in
  Engine.run ~until:(Time.sec 11.) e;
  (* 800 kbps / 8000 bits per packet = 100 pps for 10 s *)
  "close to 1000 packets" => (abs (!got - 1000) <= 2);
  "generator counted them" => (abs (Background.packets_sent src - 1000) <= 2)

let test_on_off_bursts () =
  let e = Engine.create () in
  let net = Topology.pipe e ~bandwidth_bps:1e8 ~delay:0 () in
  let rng = Rng.create ~seed:11 in
  let got = ref 0 in
  Host.bind net.Topology.b Addr.Udp ~port:9 (fun _ -> incr got);
  let _src =
    Background.on_off e ~host:net.Topology.a
      ~dst:(Addr.endpoint ~host:1 ~port:9)
      ~rate_bps:1e6 ~packet_bytes:500 ~mean_on:(Time.ms 100) ~mean_off:(Time.ms 100) ~rng
      ~stop:(Time.sec 10.) ()
  in
  Engine.run ~until:(Time.sec 11.) e;
  let full_rate_count = 10. *. 1e6 /. (500. *. 8.) in
  "sent something" => (!got > 0);
  "duty cycle below 100%" => (float_of_int !got < 0.8 *. full_rate_count)

let test_poisson_mean_rate () =
  let e = Engine.create () in
  let net = Topology.pipe e ~bandwidth_bps:1e9 ~delay:0 () in
  let rng = Rng.create ~seed:12 in
  let got = ref 0 in
  Host.bind net.Topology.b Addr.Udp ~port:9 (fun _ -> incr got);
  let _src =
    Background.poisson e ~host:net.Topology.a
      ~dst:(Addr.endpoint ~host:1 ~port:9)
      ~rate_bps:8e5 ~packet_bytes:1000 ~rng ~stop:(Time.sec 20.) ()
  in
  Engine.run ~until:(Time.sec 21.) e;
  (* mean 100 pps over 20 s = 2000 *)
  "poisson mean within 10%" => (abs (!got - 2000) < 200)


(* ---- Tracer ------------------------------------------------------------- *)

let test_tracer_records_tx_and_rx () =
  let e = Engine.create () in
  let tr = Tracer.create e () in
  let a = Host.create e ~id:0 () in
  let b = Host.create e ~id:1 () in
  let link =
    Link.create e ~bandwidth_bps:1e7 ~delay:(Time.ms 5)
      ~sink:(Tracer.probe_sink tr ~name:"link-b" (fun p -> Host.deliver b p))
      ()
  in
  Host.attach_route a (Link.send link);
  Tracer.probe_host tr ~name:"host-a" a;
  Host.bind b Addr.Udp ~port:20 (fun _ -> ());
  Host.ip_output a (mk_pkt ());
  Engine.run e;
  let evs = Tracer.events tr in
  Alcotest.(check int) "two events" 2 (List.length evs);
  (match evs with
  | [ tx; rx ] ->
      "tx first" => (tx.Tracer.direction = Tracer.Tx && tx.Tracer.point = "host-a");
      "rx second" => (rx.Tracer.direction = Tracer.Rx && rx.Tracer.point = "link-b");
      "same packet" => (tx.Tracer.packet_id = rx.Tracer.packet_id);
      "rx later than tx" => (rx.Tracer.at > tx.Tracer.at)
  | _ -> Alcotest.fail "unexpected events");
  Alcotest.(check int) "total observed" 2 (Tracer.total_observed tr)

let test_tracer_ring_bounds () =
  let e = Engine.create () in
  let tr = Tracer.create e ~capacity:5 () in
  for _ = 1 to 12 do
    Tracer.observe tr ~name:"p" Tracer.Tx (mk_pkt ())
  done;
  Alcotest.(check int) "holds capacity" 5 (Tracer.count tr);
  Alcotest.(check int) "saw all" 12 (Tracer.total_observed tr);
  let ids = List.map (fun ev -> ev.Tracer.packet_id) (Tracer.events tr) in
  "oldest first, newest kept" => (List.sort Stdlib.compare ids = ids);
  Tracer.clear tr;
  Alcotest.(check int) "cleared" 0 (Tracer.count tr)

let test_tracer_filter () =
  let e = Engine.create () in
  let tr =
    Tracer.create e ~filter:(fun pkt -> pkt.Packet.flow.Addr.proto = Addr.Tcp) ()
  in
  Tracer.observe tr ~name:"p" Tracer.Tx (mk_pkt ());
  Tracer.observe tr ~name:"p" Tracer.Tx (mk_pkt ~flow:(mk_flow ~proto:Addr.Tcp ()) ());
  Alcotest.(check int) "only tcp recorded" 1 (Tracer.count tr);
  match Tracer.find tr (fun ev -> ev.Tracer.direction = Tracer.Tx) with
  | Some ev -> "found the tcp event" => (ev.Tracer.flow.Addr.proto = Addr.Tcp)
  | None -> Alcotest.fail "expected an event"

let test_tracer_attributes_drops () =
  let e = Engine.create () in
  let rng = Rng.create ~seed:21 in
  let tr = Tracer.create e () in
  (* a slow link with a 2-packet queue and heavy channel loss: both queue
     and channel drops occur, and the trace must tell them apart *)
  let link =
    Link.create e ~bandwidth_bps:8e4 ~delay:0 ~loss_rate:0.4 ~rng
      ~qdisc:(Queue_disc.droptail ~limit_pkts:2 ())
      ~sink:ignore ()
  in
  Tracer.probe_link_drops tr ~name:"bottleneck" link;
  for _ = 1 to 50 do
    Link.send link (mk_pkt ~bytes:(1000 - Packet.header_bytes) ())
  done;
  Engine.run e;
  let stats = Link.stats link in
  let count why =
    List.length
      (List.filter (fun ev -> ev.Tracer.direction = Tracer.Drop why) (Tracer.events tr))
  in
  "both kinds occurred" => (stats.Link.channel_drops > 0 && stats.Link.queue_drops > 0);
  Alcotest.(check int) "channel drops attributed" stats.Link.channel_drops (count Link.Channel);
  Alcotest.(check int) "queue drops attributed" stats.Link.queue_drops (count Link.Queue);
  Alcotest.(check int) "no outage drops" 0 (count Link.Down)

(* ---- Background determinism --------------------------------------------- *)

let run_background which seed =
  let e = Engine.create () in
  let net = Topology.pipe e ~bandwidth_bps:1e8 ~delay:(Time.ms 2) () in
  Host.bind net.Topology.b Addr.Udp ~port:9 (fun _ -> ());
  let rng = Rng.create ~seed in
  let dst = Addr.endpoint ~host:1 ~port:9 in
  let src =
    match which with
    | `On_off ->
        Background.on_off e ~host:net.Topology.a ~dst ~rate_bps:1e6 ~packet_bytes:500
          ~mean_on:(Time.ms 200) ~mean_off:(Time.ms 100) ~rng ~stop:(Time.sec 10.) ()
    | `Poisson ->
        Background.poisson e ~host:net.Topology.a ~dst ~rate_bps:8e5 ~packet_bytes:1000 ~rng
          ~stop:(Time.sec 10.) ()
  in
  Engine.run ~until:(Time.sec 11.) e;
  (Background.packets_sent src, Link.stats net.Topology.ab)

let test_on_off_deterministic () =
  let sent1, stats1 = run_background `On_off 7 in
  let sent2, stats2 = run_background `On_off 7 in
  Alcotest.(check int) "same packet count" sent1 sent2;
  "identical link stats" => (stats1 = stats2);
  let sent3, _ = run_background `On_off 8 in
  "a different seed gives a different run" => (sent1 <> sent3)

let test_poisson_deterministic () =
  let sent1, stats1 = run_background `Poisson 7 in
  let sent2, stats2 = run_background `Poisson 7 in
  Alcotest.(check int) "same packet count" sent1 sent2;
  "identical link stats" => (stats1 = stats2)

let test_on_off_mean_rate () =
  (* duty cycle mean_on/(mean_on+mean_off) = 2/3 of 250 pps over 10 s:
     expect ~1667 packets, with generous CI slack for ~33 cycles *)
  let sent, _ = run_background `On_off 7 in
  "on/off mean rate in the right range" => (sent > 800 && sent < 2400)

let () =
  Alcotest.run "netsim"
    [
      ( "addr+packet",
        [
          Alcotest.test_case "reverse" `Quick test_addr_reverse;
          Alcotest.test_case "equality" `Quick test_addr_equality;
          Alcotest.test_case "packet sizes and ids" `Quick test_packet_sizes;
        ] );
      ( "qdisc",
        [
          Alcotest.test_case "droptail packet limit" `Quick test_droptail_limit;
          Alcotest.test_case "droptail byte limit" `Quick test_droptail_byte_limit;
          Alcotest.test_case "droptail fifo" `Quick test_droptail_fifo;
          Alcotest.test_case "drop-from-head" `Quick test_drop_from_head;
          Alcotest.test_case "red marks ecn" `Quick test_red_marks_ecn;
          Alcotest.test_case "red drops non-ect" `Quick test_red_drops_non_ect;
        ] );
      ( "link",
        [
          Alcotest.test_case "serialization rate" `Quick test_link_serialization_rate;
          Alcotest.test_case "propagation delay" `Quick test_link_propagation_delay;
          Alcotest.test_case "fifo (no reordering)" `Quick test_link_no_reorder;
          Alcotest.test_case "random loss" `Quick test_link_loss_rate;
          Alcotest.test_case "bandwidth change" `Quick test_link_bandwidth_change;
          Alcotest.test_case "reordering" `Quick test_link_reordering;
          Alcotest.test_case "probability validation" `Quick test_link_probability_validation;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "serializes work" `Quick test_cpu_serializes;
          Alcotest.test_case "zero cost immediate" `Quick test_cpu_zero_cost_is_immediate;
          Alcotest.test_case "utilization" `Quick test_cpu_utilization;
        ] );
      ( "host+router",
        [
          Alcotest.test_case "demux priority" `Quick test_host_demux_priority;
          Alcotest.test_case "unmatched counted" `Quick test_host_unmatched_counted;
          Alcotest.test_case "tx hooks order" `Quick test_host_tx_hooks_order;
          Alcotest.test_case "port allocation" `Quick test_host_ports_unique;
          Alcotest.test_case "router forwarding" `Quick test_router_forwarding;
        ] );
      ( "topology",
        [
          Alcotest.test_case "pipe roundtrip" `Quick test_pipe_roundtrip;
          Alcotest.test_case "star connectivity" `Quick test_star_connectivity;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "records tx and rx" `Quick test_tracer_records_tx_and_rx;
          Alcotest.test_case "ring bounds" `Quick test_tracer_ring_bounds;
          Alcotest.test_case "filter" `Quick test_tracer_filter;
          Alcotest.test_case "drop attribution" `Quick test_tracer_attributes_drops;
        ] );
      ( "background",
        [
          Alcotest.test_case "cbr rate" `Quick test_cbr_rate;
          Alcotest.test_case "on/off duty cycle" `Quick test_on_off_bursts;
          Alcotest.test_case "poisson mean" `Quick test_poisson_mean_rate;
          Alcotest.test_case "on/off determinism" `Quick test_on_off_deterministic;
          Alcotest.test_case "poisson determinism" `Quick test_poisson_deterministic;
          Alcotest.test_case "on/off mean rate" `Quick test_on_off_mean_rate;
        ] );
    ]
