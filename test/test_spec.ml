(* The spec DSL pipeline: parity with the handwritten scenarios family,
   static-check diagnostics (one negative test per code), structural
   checks of the sugar combinators, a qcheck property that random
   well-formed specs always check clean and compile, and determinism of
   the three DSL-native families. *)

open Cm_util
module Spec = Cm_spec.Spec
module Check = Cm_spec.Check
module Build = Cm_spec.Build
module Scenario = Cm_dynamics.Scenario
module Exp_common = Experiments.Exp_common
module Scenarios = Experiments.Scenarios
module Fattree = Experiments.Fattree
module Cdn_edge = Experiments.Cdn_edge
module Cellular = Experiments.Cellular

let params = { Exp_common.default_params with seed = 42 }

(* ---- parity: DSL-compiled scenarios ≡ handwritten ----------------------- *)

let test_scenarios_parity () =
  let json via = Exp_common.Json.to_string (Scenarios.to_json params (Scenarios.run ~via params)) in
  let hand = json Scenarios.Handwritten in
  let dsl = json Scenarios.Dsl in
  Alcotest.(check string) "byte-identical family JSON" hand dsl

(* ---- static checks: one negative test per diagnostic code --------------- *)

let codes spec = List.map (fun d -> d.Check.d_code) (Check.check spec)

let has_code code spec =
  Alcotest.(check bool)
    (Printf.sprintf "diagnoses %s in: %s" code
       (String.concat ", " (codes spec)))
    true
    (List.mem code (codes spec))

let pipe_base =
  Spec.(
    par
      [
        node "a";
        node "b";
        link ~name:"fwd" ~bw:1e6 ~lat:(Time.ms 10) "a" "b";
        link ~name:"rev" ~bw:1e6 ~lat:(Time.ms 10) "b" "a";
      ])

let bulk_group ?(name = "g") ?(port = 80) ?start ?stop () =
  Spec.flows ~name ~src:[ "a" ] ~dst:"b" ~port ~app:(Spec.bulk ~bytes:8192) ?start ?stop ()

let test_clean_base () =
  Alcotest.(check (list string)) "clean" [] (codes (Spec.par [ pipe_base; bulk_group () ]))

let test_dup_name () =
  has_code "dup-name" (Spec.par [ pipe_base; Spec.node "a" ]);
  has_code "dup-name"
    (Spec.par [ pipe_base; Spec.link ~name:"fwd" ~bw:1e6 ~lat:0 "b" "a" ]);
  has_code "dup-name" (Spec.par [ pipe_base; bulk_group (); bulk_group ~port:9000 () ])

let test_dup_address () =
  has_code "dup-address" (Spec.par [ Spec.node "x"; Spec.node ~id:0 "y" ])

let test_bad_address () =
  has_code "bad-address" (Spec.par [ Spec.node ~id:(-1) "x" ])

let test_bad_link_param () =
  has_code "bad-link-param" (Spec.par [ pipe_base; Spec.link ~bw:(-1.) ~lat:0 "a" "b" ]);
  has_code "bad-link-param" (Spec.par [ pipe_base; Spec.link ~bw:Float.nan ~lat:0 "a" "b" ]);
  has_code "bad-link-param" (Spec.par [ pipe_base; Spec.link ~bw:1e6 ~lat:(-1) "a" "b" ]);
  has_code "bad-link-param" (Spec.par [ pipe_base; Spec.link ~queue:0 ~bw:1e6 ~lat:0 "a" "b" ])

let test_unknown_node () =
  has_code "unknown-node" (Spec.par [ pipe_base; Spec.link ~bw:1e6 ~lat:0 "a" "ghost" ]);
  has_code "unknown-node"
    (Spec.par [ pipe_base; Spec.flows ~name:"g" ~src:[ "ghost" ] ~dst:"b" ~app:(Spec.bulk ~bytes:1) () ])

let test_self_link () = has_code "self-link" (Spec.par [ pipe_base; Spec.link ~bw:1e6 ~lat:0 "a" "a" ])

let test_multihomed_host () =
  has_code "multihomed-host"
    (Spec.par [ pipe_base; Spec.node "c"; Spec.link ~bw:1e6 ~lat:0 "a" "c" ])

let test_router_endpoint () =
  has_code "router-endpoint"
    (Spec.par
       [
         pipe_base;
         Spec.router "r";
         Spec.link ~bw:1e6 ~lat:0 "b" "r";
         Spec.flows ~name:"g" ~src:[ "a" ] ~dst:"r" ~app:(Spec.bulk ~bytes:1) ();
       ])

let test_empty_group () =
  has_code "empty-group" (Spec.par [ pipe_base; Spec.flows ~name:"g" ~src:[] ~dst:"b" ~app:(Spec.bulk ~bytes:1) () ])

let test_bad_app () =
  let g app = Spec.par [ pipe_base; Spec.flows ~name:"g" ~src:[ "a" ] ~dst:"b" ~app () ] in
  has_code "bad-app" (g (Spec.bulk ~bytes:0));
  has_code "bad-app" (g (Spec.web_fetch ~object_bytes:0 ~count:1 ~gap:0));
  has_code "bad-app" (g (Spec.web_fetch ~object_bytes:1 ~count:0 ~gap:0));
  has_code "bad-app" (g (Spec.layered ~layers:[||] ()));
  has_code "bad-app" (g (Spec.layered ~layers:[| 2e6; 1e6 |] ()));
  has_code "bad-app" (g (Spec.layered ~layers:[| 0. |] ()))

let test_bad_time () =
  has_code "bad-time" (Spec.par [ pipe_base; bulk_group ~start:(Time.sec (-1.)) () ]);
  has_code "bad-time"
    (Spec.par [ pipe_base; bulk_group ~start:(Time.sec 2.) ~stop:(Time.sec 1.) () ]);
  has_code "bad-time"
    (Spec.par [ pipe_base; Spec.faults ~target:"fwd" [ (Time.sec (-1.), Scenario.Outage (Time.sec 1.)) ] ])

let test_unknown_target () =
  has_code "unknown-target"
    (Spec.par [ pipe_base; Spec.faults ~target:"ghost" [ (Time.sec 1., Scenario.Outage (Time.sec 1.)) ] ])

let test_bad_fault () =
  has_code "bad-fault"
    (Spec.par [ pipe_base; Spec.faults ~target:"fwd" [ (Time.sec 1., Scenario.Set_bandwidth (-5.)) ] ])

let test_fault_overlap () =
  has_code "fault-overlap"
    (Spec.par
       [
         pipe_base;
         Spec.faults ~target:"fwd"
           [
             (Time.sec 1., Scenario.Outage (Time.sec 5.));
             (Time.sec 3., Scenario.Outage (Time.sec 1.));
           ];
       ]);
  (* same windows on different links: fine *)
  Alcotest.(check (list string))
    "no overlap across links" []
    (codes
       (Spec.par
          [
            pipe_base;
            Spec.faults ~target:"fwd" [ (Time.sec 1., Scenario.Outage (Time.sec 5.)) ];
            Spec.faults ~target:"rev" [ (Time.sec 3., Scenario.Outage (Time.sec 1.)) ];
          ]))

let control_fault_on target =
  Spec.faults ~target
    [
      ( Time.sec 1.,
        Scenario.Control_fault
          {
            profile = { Cm_dynamics.Control_faults.drop = 0.5; dup = 0.1; delay = 0; jitter = 0 };
            duration = Time.sec 2.;
          } );
    ]

let test_control_target () =
  (* control-plane injectors live on hosts: a router or an undeclared
     name is a dedicated diagnostic, and a host target is clean *)
  has_code "control-target"
    (Spec.par
       [
         Spec.node "a";
         Spec.node "b";
         Spec.router "r";
         Spec.duplex ~bw:1e6 ~lat:0 "a" "r";
         Spec.duplex ~bw:1e6 ~lat:0 "r" "b";
         control_fault_on "r";
       ]);
  has_code "control-target" (Spec.par [ pipe_base; control_fault_on "ghost" ]);
  has_code "control-target" (Spec.par [ pipe_base; control_fault_on "fwd" ]);
  Alcotest.(check (list string))
    "host-targeted control fault is clean" []
    (codes (Spec.par [ pipe_base; bulk_group (); control_fault_on "a" ]))

let test_unreachable () =
  (* c—d island, no path to/from b *)
  has_code "unreachable"
    (Spec.par
       [
         pipe_base;
         Spec.node "c";
         Spec.node "d";
         Spec.duplex ~bw:1e6 ~lat:0 "c" "d";
         Spec.flows ~name:"g" ~src:[ "c" ] ~dst:"b" ~app:(Spec.bulk ~bytes:1) ();
       ]);
  (* one-way connectivity is not enough: feedback path missing *)
  has_code "unreachable"
    (Spec.par
       [
         Spec.node "a";
         Spec.node "b";
         Spec.link ~bw:1e6 ~lat:0 "a" "b";
         Spec.flows ~name:"g" ~src:[ "a" ] ~dst:"b" ~app:(Spec.bulk ~bytes:1) ();
       ])

let test_port_clash () =
  has_code "port-clash"
    (Spec.par
       [
         pipe_base;
         Spec.flows ~name:"g1" ~src:[ "a" ] ~dst:"b" ~port:80 ~app:(Spec.bulk ~bytes:1) ();
         Spec.flows ~name:"g2" ~src:[ "a" ] ~dst:"b" ~port:80
           ~app:(Spec.web_fetch ~object_bytes:1 ~count:1 ~gap:0)
           ();
       ])

let test_server_conflict () =
  let fetch ~name bytes =
    Spec.flows ~name ~src:[ "a" ] ~dst:"b" ~port:80
      ~app:(Spec.web_fetch ~object_bytes:bytes ~count:1 ~gap:0)
      ()
  in
  has_code "server-conflict" (Spec.par [ pipe_base; fetch ~name:"g1" 100; fetch ~name:"g2" 200 ]);
  (* same object size: a legitimately shared server *)
  Alcotest.(check (list string))
    "shared server ok" []
    (codes (Spec.par [ pipe_base; fetch ~name:"g1" 100; fetch ~name:"g2" 100 ]))

let test_oversubscribed () =
  has_code "oversubscribed"
    (Spec.par
       [
         pipe_base;
         Spec.flows ~name:"g" ~src:[ "a" ] ~dst:"b" ~port:5004
           ~app:(Spec.layered ~layers:[| 2e6; 4e6 |] ())
           ();
       ])

(* ---- sugar: structural expectations ------------------------------------- *)

let count pred spec = List.length (List.filter pred spec)
let is_node = function Spec.Node { kind = Spec.Host; _ } -> true | _ -> false
let is_router = function Spec.Node { kind = Spec.Router; _ } -> true | _ -> false
let is_link = function Spec.Link _ -> true | _ -> false

let test_fat_tree_shape () =
  let ft = Spec.fat_tree ~k:4 () in
  Alcotest.(check int) "hosts" 16 (count is_node ft);
  Alcotest.(check int) "routers" 20 (count is_router ft);
  (* 16 host links + 16 edge-agg + 16 agg-core adjacencies, duplex *)
  Alcotest.(check int) "links" 96 (count is_link ft);
  Alcotest.(check (list string)) "checks clean" [] (codes ft);
  let ir = Check.elaborate_exn ft in
  (* any-to-any: every host routes to every other *)
  let hosts =
    Array.to_list ir.Check.ir_nodes
    |> List.mapi (fun i n -> (i, n))
    |> List.filter (fun (_, n) -> n.Check.n_kind = Spec.Host)
    |> List.map fst
  in
  List.iter
    (fun dst ->
      let dist = Check.dist_to ir ~dst in
      List.iter
        (fun src ->
          if src <> dst then
            Alcotest.(check bool)
              (Printf.sprintf "route %d->%d" src dst)
              true
              (Check.route ir dist ~src <> None))
        hosts)
    hosts;
  Alcotest.check_raises "odd k rejected"
    (Invalid_argument "Spec.fat_tree: k must be a positive even number (got 3)") (fun () ->
      ignore (Spec.fat_tree ~k:3 ()))

let test_clients_shape () =
  let sp =
    Spec.(
      par
        [
          node "s0";
          node "s1";
          clients ~n:3 ~per:[ "s0"; "s1" ] ~bw:4e6 ~lat:(Time.ms 5) ~trunk_bw:100e6
            ~trunk_lat:(Time.ms 1) ();
        ])
  in
  Alcotest.(check int) "hosts" 8 (count is_node sp);
  Alcotest.(check int) "routers" 2 (count is_router sp);
  Alcotest.(check int) "links" 16 (count is_link sp);
  Alcotest.(check (list string)) "checks clean" [] (codes sp);
  Alcotest.(check (list string))
    "client names" [ "c0_0"; "c0_1"; "c0_2"; "c1_0"; "c1_1"; "c1_2" ]
    (Spec.client_names ~n:3 ~servers:[ "s0"; "s1" ] ())

let test_seq_offsets () =
  let sp =
    Spec.(
      seq
        [
          ("warm", Time.sec 5., faults ~target:"fwd" [ (Time.sec 1., Scenario.Set_bandwidth 1e6) ]);
          ("blip", Time.sec 5., faults ~target:"fwd" [ (Time.sec 2., Scenario.Outage (Time.sec 1.)) ]);
        ])
  in
  let ats =
    List.filter_map (function Spec.Fault { at; span; _ } -> Some (at, span) | _ -> None) sp
  in
  match ats with
  | [ (t1, sp1); (t2, sp2) ] ->
      Alcotest.(check int) "phase 1 unshifted" (Time.sec 1.) t1;
      Alcotest.(check int) "phase 2 shifted by phase 1 duration" (Time.sec 7.) t2;
      Alcotest.(check bool) "phase name in span" true (List.mem "warm" sp1);
      Alcotest.(check bool) "phase name in span" true (List.mem "blip" sp2)
  | _ -> Alcotest.fail "expected two fault elements"

let test_span_in_diag () =
  let sp = Spec.named "outer" (Spec.link ~name:"l" ~bw:(-1.) ~lat:0 "x" "y") in
  match Check.check sp with
  | [] -> Alcotest.fail "expected diagnostics"
  | ds ->
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (Printf.sprintf "span %S carries context" (Spec.span_str d.Check.d_span))
            true
            (String.length (Spec.span_str d.Check.d_span) > 0
            && List.mem "outer" d.Check.d_span))
        ds

(* ---- property: random well-formed specs check clean and compile --------- *)

(* Generator: a random dumbbell — n_l hosts and n_r hosts bridged by two
   routers — with random positive parameters, a bulk group left→right,
   and a non-overlapping fault schedule on the bottleneck.  Well-formed
   by construction, so the checker must accept it and the builder must
   instantiate it. *)
let gen_wellformed =
  QCheck.Gen.(
    let* n_l = int_range 1 4 in
    let* n_r = int_range 1 4 in
    let* bw_mbps = int_range 1 100 in
    let* lat_ms = int_range 0 50 in
    let* queue = int_range 1 200 in
    let* bytes = int_range 1 100_000 in
    let* port = int_range 1 60_000 in
    let* stagger_ms = int_range 0 100 in
    let* outage_gap_s = int_range 3 10 in
    let* n_faults = int_range 0 3 in
    return
      (let lhosts = List.init n_l (Printf.sprintf "l%d") in
       let rhosts = List.init n_r (Printf.sprintf "r%d") in
       let bw = float_of_int bw_mbps *. 1e6 in
       let lat = Time.ms lat_ms in
       Spec.(
         par
           [
             par (List.map node lhosts);
             par (List.map node rhosts);
             router "x";
             router "y";
             par (List.map (fun h -> duplex ~queue ~bw ~lat h "x") lhosts);
             duplex ~name:"bottleneck" ~queue ~bw ~lat "x" "y";
             par (List.map (fun h -> duplex ~queue ~bw ~lat "y" h) rhosts);
             flows ~name:"xfer" ~src:lhosts ~dst:(List.hd rhosts) ~port
               ~app:(bulk ~bytes) ~stagger:(Time.ms stagger_ms) ();
             faults ~target:"bottleneck"
               (List.init n_faults (fun i ->
                    ( Time.sec (float_of_int (1 + (i * outage_gap_s))),
                      Scenario.Outage (Time.sec 1.) )));
           ])))

let prop_wellformed_compiles =
  QCheck.Test.make ~count:60 ~name:"random well-formed specs check clean and compile"
    (QCheck.make gen_wellformed) (fun spec ->
      match Check.elaborate spec with
      | Error ds ->
          QCheck.Test.fail_reportf "diagnostics on well-formed spec: %s"
            (String.concat "; " (List.map Check.diag_str ds))
      | Ok ir ->
          let engine = Eventsim.Engine.create () in
          let rng = Rng.create ~seed:7 in
          let b = Build.instantiate ~rng engine ir in
          let sc = Build.scenario ~name:"p" ir in
          Scenario.compile engine ~rng ~links:(Build.links_alist b) sc;
          Array.length b.Build.links = Array.length ir.Check.ir_edges)

(* Same shape with the control-fault kind attached to a host: any such
   spec that elaborates must also build (injector installed via
   Build.control_injectors) and run to completion with the auditor
   clean. *)
let gen_ctrl_spec =
  QCheck.Gen.(
    let* n_l = int_range 1 3 in
    let* bw_mbps = int_range 2 50 in
    let* lat_ms = int_range 1 30 in
    let* queue = int_range 5 100 in
    let* bytes = int_range 1_000 60_000 in
    let* drop10 = int_range 0 10 in
    let* dup10 = int_range 0 5 in
    let* jitter_ms = int_range 0 20 in
    let* at_s = int_range 1 3 in
    let* dur_s = int_range 1 3 in
    return
      (let lhosts = List.init n_l (Printf.sprintf "l%d") in
       let bw = float_of_int bw_mbps *. 1e6 in
       let lat = Time.ms lat_ms in
       Spec.(
         par
           [
             par (List.map node lhosts);
             node "r0";
             router "x";
             router "y";
             par (List.map (fun h -> duplex ~queue ~bw ~lat h "x") lhosts);
             duplex ~name:"bottleneck" ~queue ~bw ~lat "x" "y";
             duplex ~queue ~bw ~lat "y" "r0";
             flows ~name:"xfer" ~src:lhosts ~dst:"r0" ~port:5000 ~app:(bulk ~bytes)
               ~stagger:(Time.ms 20) ();
             faults ~target:"l0"
               [
                 ( Time.sec (float_of_int at_s),
                   Scenario.Control_fault
                     {
                       profile =
                         {
                           Cm_dynamics.Control_faults.drop = float_of_int drop10 /. 10.;
                           dup = float_of_int dup10 /. 10.;
                           delay = 0;
                           jitter = Time.ms jitter_ms;
                         };
                       duration = Time.sec (float_of_int dur_s);
                     } );
               ];
           ])))

let prop_ctrl_fault_runs =
  QCheck.Test.make ~count:20
    ~name:"control-fault specs elaborate, build and run with the auditor clean"
    (QCheck.make gen_ctrl_spec) (fun spec ->
      match Check.elaborate spec with
      | Error ds ->
          QCheck.Test.fail_reportf "diagnostics on well-formed control-fault spec: %s"
            (String.concat "; " (List.map Check.diag_str ds))
      | Ok ir ->
          let engine = Eventsim.Engine.create () in
          let rng = Rng.create ~seed:5 in
          let b = Build.instantiate ~rng engine ir in
          let controls = Build.control_injectors b ~classify:Cmproto.is_control in
          let sc = Build.scenario ~name:"p" ir in
          Scenario.compile engine ~rng:(Rng.split rng) ~links:(Build.links_alist b) ~controls
            sc;
          let cms = ref [] in
          let by_host = Hashtbl.create 4 in
          let cm_for h =
            match Hashtbl.find_opt by_host (Netsim.Host.id h) with
            | Some cm -> cm
            | None ->
                let cm =
                  Cm.create engine ~feedback_watchdog:Cm.Macroflow.default_watchdog
                    ~auditor:Cm.default_auditor ()
                in
                Cm.attach cm h;
                Hashtbl.replace by_host (Netsim.Host.id h) cm;
                cms := cm :: !cms;
                cm
          in
          let running =
            Cm_spec.Launch.run b
              ~driver_for:(fun h -> Some (Tcp.Conn.Cm_driven (cm_for h)))
              ()
          in
          Eventsim.Engine.run ~until:(Time.sec 60.) engine;
          let breaches =
            List.concat_map (fun cm -> (Cm.Audit.run cm).Cm.Audit.violations) !cms
          in
          if breaches <> [] then
            QCheck.Test.fail_reportf "auditor breaches: %s" (String.concat "; " breaches);
          if not (List.for_all (fun r -> Cm_spec.Launch.done_count r > 0) running) then
            QCheck.Test.fail_reportf "bulk transfer never completed";
          controls <> [])

(* ---- the three DSL-native families: determinism ------------------------- *)

let family_json run to_json =
  let results = run params in
  Exp_common.Json.to_string (to_json params results)

let test_family_deterministic name run to_json () =
  let a = family_json run to_json in
  let b = family_json run to_json in
  Alcotest.(check bool) (name ^ " non-empty") true (String.length a > 2);
  Alcotest.(check string) (name ^ " same-seed byte-identical") a b

(* ---- netsim validation (satellite): descriptive early rejections -------- *)

let check_invalid what f =
  match f () with
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s names the parameter: %S" what msg)
        true
        (String.length msg > 0)
  | _ -> Alcotest.fail (what ^ ": expected Invalid_argument")

let test_netsim_validation () =
  let engine = Eventsim.Engine.create () in
  check_invalid "pipe negative bw" (fun () ->
      Netsim.Topology.pipe engine ~bandwidth_bps:(-1.) ~delay:0 ());
  check_invalid "pipe NaN bw" (fun () ->
      Netsim.Topology.pipe engine ~bandwidth_bps:Float.nan ~delay:0 ());
  check_invalid "pipe negative delay" (fun () ->
      Netsim.Topology.pipe engine ~bandwidth_bps:1e6 ~delay:(-1) ());
  check_invalid "pipe zero queue" (fun () ->
      Netsim.Topology.pipe engine ~bandwidth_bps:1e6 ~delay:0 ~qdisc_limit:0 ());
  check_invalid "star negative access bw" (fun () ->
      Netsim.Topology.star engine ~n_clients:2 ~access_bps:(-1.) ~access_delay:0
        ~bottleneck_bps:1e6 ~bottleneck_delay:0 ());
  check_invalid "link NaN set_bandwidth" (fun () ->
      let l =
        Netsim.Link.create engine ~bandwidth_bps:1e6 ~delay:0 ~sink:(fun _ -> ()) ()
      in
      Netsim.Link.set_bandwidth l Float.nan);
  check_invalid "droptail zero bytes" (fun () ->
      Netsim.Queue_disc.droptail ~limit_bytes:0 ~limit_pkts:10 ())

let () =
  Alcotest.run "spec"
    [
      ( "parity",
        [ Alcotest.test_case "scenarios family: DSL ≡ handwritten" `Slow test_scenarios_parity ] );
      ( "checks",
        [
          Alcotest.test_case "clean base" `Quick test_clean_base;
          Alcotest.test_case "dup-name" `Quick test_dup_name;
          Alcotest.test_case "dup-address" `Quick test_dup_address;
          Alcotest.test_case "bad-address" `Quick test_bad_address;
          Alcotest.test_case "bad-link-param" `Quick test_bad_link_param;
          Alcotest.test_case "unknown-node" `Quick test_unknown_node;
          Alcotest.test_case "self-link" `Quick test_self_link;
          Alcotest.test_case "multihomed-host" `Quick test_multihomed_host;
          Alcotest.test_case "router-endpoint" `Quick test_router_endpoint;
          Alcotest.test_case "empty-group" `Quick test_empty_group;
          Alcotest.test_case "bad-app" `Quick test_bad_app;
          Alcotest.test_case "bad-time" `Quick test_bad_time;
          Alcotest.test_case "unknown-target" `Quick test_unknown_target;
          Alcotest.test_case "bad-fault" `Quick test_bad_fault;
          Alcotest.test_case "fault-overlap" `Quick test_fault_overlap;
          Alcotest.test_case "unreachable" `Quick test_unreachable;
          Alcotest.test_case "port-clash" `Quick test_port_clash;
          Alcotest.test_case "server-conflict" `Quick test_server_conflict;
          Alcotest.test_case "oversubscribed" `Quick test_oversubscribed;
          Alcotest.test_case "control-target" `Quick test_control_target;
          Alcotest.test_case "diagnostics carry spans" `Quick test_span_in_diag;
        ] );
      ( "sugar",
        [
          Alcotest.test_case "fat_tree k=4 shape + any-to-any routes" `Quick test_fat_tree_shape;
          Alcotest.test_case "clients shape + naming" `Quick test_clients_shape;
          Alcotest.test_case "seq shifts phases" `Quick test_seq_offsets;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_wellformed_compiles;
          QCheck_alcotest.to_alcotest prop_ctrl_fault_runs;
        ] );
      ( "families",
        [
          Alcotest.test_case "fattree deterministic" `Slow
            (test_family_deterministic "fattree" Fattree.run Fattree.to_json);
          Alcotest.test_case "cdn_edge deterministic" `Slow
            (test_family_deterministic "cdn_edge" Cdn_edge.run Cdn_edge.to_json);
          Alcotest.test_case "cellular deterministic" `Slow
            (test_family_deterministic "cellular" Cellular.run Cellular.to_json);
        ] );
      ("netsim-validation", [ Alcotest.test_case "descriptive rejections" `Quick test_netsim_validation ]);
    ]
