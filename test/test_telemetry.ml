(* Telemetry subsystem tests: metrics registry, log-bucketed histograms,
   virtual-time sampler, structured tracer + exporters, and the
   determinism contract (same seed => byte-identical artifacts). *)

open Cm_util
open Eventsim

let ( => ) name b = Alcotest.(check bool) name true b
let feq name a b = Alcotest.(check (float 1e-9)) name a b

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---- metrics registry ------------------------------------------------- *)

let test_counter_basics () =
  let m = Telemetry.Metrics.create () in
  let c = Telemetry.Metrics.counter m "pkts" in
  Telemetry.Metrics.incr c;
  Telemetry.Metrics.incr ~by:4 c;
  Alcotest.(check int) "count" 5 (Telemetry.Metrics.count c);
  (* idempotent registration returns the same counter *)
  let c' = Telemetry.Metrics.counter m "pkts" in
  Telemetry.Metrics.incr c';
  Alcotest.(check int) "shared" 6 (Telemetry.Metrics.count c)

let test_kind_collision_rejected () =
  let m = Telemetry.Metrics.create () in
  ignore (Telemetry.Metrics.counter m "x");
  Alcotest.check_raises "gauge under counter name"
    (Invalid_argument "Metrics: \"x\" is already registered") (fun () ->
      ignore (Telemetry.Metrics.gauge m "x" (fun () -> 0.)))

let test_snapshot_order_and_reset () =
  let m = Telemetry.Metrics.create () in
  let c = Telemetry.Metrics.counter m "b_counter" in
  ignore (Telemetry.Metrics.gauge m "a_gauge" (fun () -> 7.5));
  let h = Telemetry.Metrics.histogram m "c_hist" in
  Telemetry.Metrics.incr ~by:3 c;
  Telemetry.Metrics.observe h 2.0;
  (* registration order, not alphabetical *)
  Alcotest.(check (list string))
    "snapshot order"
    [ "b_counter"; "a_gauge"; "c_hist" ]
    (List.map fst (Telemetry.Metrics.snapshot m));
  Telemetry.Metrics.reset m;
  Alcotest.(check int) "counter zeroed" 0 (Telemetry.Metrics.count c);
  (match Telemetry.Metrics.snapshot m with
  | [ _; ("a_gauge", Telemetry.Metrics.Sg v); _ ] -> feq "gauge survives reset" 7.5 v
  | _ -> Alcotest.fail "unexpected snapshot shape");
  "histogram zeroed"
  => (Stats.Histogram.count (Telemetry.Metrics.hist h) = 0)

let test_metrics_json () =
  let m = Telemetry.Metrics.create () in
  let c = Telemetry.Metrics.counter m "n" in
  Telemetry.Metrics.incr ~by:2 c;
  ignore (Telemetry.Metrics.gauge m "g" (fun () -> 1.25));
  let s = Json.to_string (Telemetry.Metrics.to_json m) in
  "counter in json" => contains s "\"n\": 2";
  "gauge in json" => contains s "\"g\": 1.25"

(* ---- histogram quantiles ---------------------------------------------- *)

let test_histogram_quantiles () =
  let h = Stats.Histogram.create () in
  for i = 1 to 1000 do
    Stats.Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Stats.Histogram.count h);
  feq "min" 1. (Stats.Histogram.min_value h);
  feq "max" 1000. (Stats.Histogram.max_value h);
  let p50 = Stats.Histogram.quantile h 0.5 in
  (* log-bucketed: coarse, but must land within a power-of-two of truth *)
  "p50 in range" => (p50 >= 250. && p50 <= 1000.);
  let p99 = Stats.Histogram.quantile h 0.99 in
  "p99 in range" => (p99 >= 500. && p99 <= 1000.);
  "monotone" => (Stats.Histogram.quantile h 0.1 <= p50 && p50 <= p99);
  feq "q0 is min" 1. (Stats.Histogram.quantile h 0.);
  feq "q1 is max" 1000. (Stats.Histogram.quantile h 1.)

let test_histogram_merge () =
  let a = Stats.Histogram.create () and b = Stats.Histogram.create () in
  List.iter (Stats.Histogram.observe a) [ 1.; 2.; 3. ];
  List.iter (Stats.Histogram.observe b) [ 100.; 200. ];
  let m = Stats.Histogram.merge a b in
  Alcotest.(check int) "merged count" 5 (Stats.Histogram.count m);
  feq "merged min" 1. (Stats.Histogram.min_value m);
  feq "merged max" 200. (Stats.Histogram.max_value m);
  feq "merged sum" 306. (Stats.Histogram.sum m)

(* ---- sampler ----------------------------------------------------------- *)

let test_sampler_virtual_time () =
  let e = Engine.create () in
  let s = Telemetry.Sampler.create e ~period:(Time.ms 100) () in
  let v = ref 0. in
  Telemetry.Sampler.subscribe s "v" (fun () -> !v);
  Telemetry.Sampler.start s;
  ignore (Engine.schedule_at e (Time.ms 150) (fun () -> v := 5.));
  Engine.run_for e (Time.ms 450);
  Telemetry.Sampler.stop s;
  Alcotest.(check int) "ticks at 100/200/300/400ms" 4 (Telemetry.Sampler.ticks s);
  let b = Buffer.create 256 in
  Telemetry.Sampler.to_csv b s;
  let csv = Buffer.contents b in
  "header" => contains csv "time_s,v";
  (* tick 1 (t=0.1) sees 0, tick 2 (t=0.2) sees the update made at 0.15 *)
  "first tick value" => contains csv "\n0.1,0\n";
  "second tick value" => contains csv "\n0.2,5\n"

let test_sampler_late_subscription_blank () =
  let e = Engine.create () in
  let s = Telemetry.Sampler.create e ~period:(Time.ms 100) () in
  Telemetry.Sampler.subscribe s "early" (fun () -> 1.);
  Telemetry.Sampler.start s;
  Engine.run_for e (Time.ms 250);
  Telemetry.Sampler.subscribe s "late" (fun () -> 2.);
  Engine.run_for e (Time.ms 200);
  Telemetry.Sampler.stop s;
  let b = Buffer.create 256 in
  Telemetry.Sampler.to_csv b s;
  let csv = Buffer.contents b in
  (* pre-subscription ticks render as blank cells, not zeros *)
  "early rows blank in late column" => contains csv "\n0.1,1,\n";
  "later rows filled" => contains csv "\n0.3,1,2\n"

(* ---- tracer ------------------------------------------------------------ *)

let test_trace_nil_sink () =
  "nil is off" => not (Telemetry.Trace.on Telemetry.Trace.nil);
  (* emitting into nil is a harmless no-op *)
  Telemetry.Trace.instant Telemetry.Trace.nil "x" [];
  Alcotest.(check int) "nil stays empty" 0 (Telemetry.Trace.length Telemetry.Trace.nil)

let test_trace_events_and_spans () =
  let e = Engine.create () in
  let tr = Telemetry.Trace.create e in
  ignore
    (Engine.schedule_at e (Time.ms 10) (fun () ->
         Telemetry.Trace.with_span tr ~cat:"test" "work"
           [ ("k", Telemetry.Trace.Int 1) ]
           (fun () -> Telemetry.Trace.instant tr ~cat:"test" "mid" [])));
  Engine.run e;
  match Telemetry.Trace.events tr with
  | [ b; i; en ] ->
      "begin phase" => (b.Telemetry.Trace.phase = Telemetry.Trace.Span_begin);
      "instant phase" => (i.Telemetry.Trace.phase = Telemetry.Trace.Instant);
      "end phase" => (en.Telemetry.Trace.phase = Telemetry.Trace.Span_end);
      Alcotest.(check int) "virtual stamp" (Time.ms 10) b.Telemetry.Trace.ts
  | l -> Alcotest.fail (Printf.sprintf "expected 3 events, got %d" (List.length l))

let test_trace_exporters () =
  let e = Engine.create () in
  let tr = Telemetry.Trace.create e in
  ignore
    (Engine.schedule_at e (Time.ms 1) (fun () ->
         Telemetry.Trace.instant tr ~cat:"cm" "cm.loss"
           [
             ("mode", Telemetry.Trace.Str "ecn");
             ("cwnd", Telemetry.Trace.Int 4096);
             ("ok", Telemetry.Trace.Bool true);
             ("rate", Telemetry.Trace.Float 1.5);
           ]));
  Engine.run e;
  let b = Buffer.create 256 in
  Telemetry.Trace.to_jsonl b tr;
  let jsonl = Buffer.contents b in
  "jsonl ts in ns" => contains jsonl "\"ts_ns\": 1000000";
  "jsonl phase" => contains jsonl "\"ph\": \"i\"";
  "jsonl typed args"
  => (contains jsonl "\"mode\": \"ecn\"" && contains jsonl "\"cwnd\": 4096"
     && contains jsonl "\"ok\": true" && contains jsonl "\"rate\": 1.5");
  Buffer.clear b;
  Telemetry.Trace.to_chrome b tr;
  let chrome = Buffer.contents b in
  "chrome envelope" => contains chrome "{\"traceEvents\": [";
  "chrome ts in us" => contains chrome "\"ts\": 1000";
  "chrome instant scope" => contains chrome "\"s\": \"g\""

(* ---- end-to-end determinism ------------------------------------------- *)

let artifacts ~expt ~seed =
  let tel = List.hd (Experiments.Trace_run.capture ~expt ~seed) in
  ( Telemetry.export_jsonl tel,
    Telemetry.export_chrome tel,
    Telemetry.export_csv tel,
    Telemetry.export_metrics_json tel )

let test_same_seed_byte_identical () =
  let a1, c1, s1, m1 = artifacts ~expt:"scenario_outage" ~seed:7 in
  let a2, c2, s2, m2 = artifacts ~expt:"scenario_outage" ~seed:7 in
  Alcotest.(check string) "jsonl identical" a1 a2;
  Alcotest.(check string) "chrome identical" c1 c2;
  Alcotest.(check string) "csv identical" s1 s2;
  Alcotest.(check string) "metrics identical" m1 m2;
  "trace is non-trivial" => (String.length a1 > 500);
  "csv has macroflow columns" => contains s1 "mf1.cwnd";
  "trace attributes drop causes" => contains a1 "\"cause\": \"down\"";
  "trace classifies congestion" => contains a1 "cm.congestion"

let test_instrumented_run_matches_uninstrumented () =
  (* telemetry must observe, not perturb: the simulation's outcome is
     identical with and without the nil sink replaced by a live one *)
  let run telemetry =
    let params = { Experiments.Exp_common.seed = 3; full = false; telemetry; defenses = false } in
    let m = Experiments.Fig6.measure_macro params Experiments.Fig6.Tcp_cm ~size:1448 ~n:500 in
    (m.Experiments.Fig6.m_events, m.Experiments.Fig6.m_final_clock)
  in
  let base_events, base_clock = run None in
  let tel_events, tel_clock =
    run (Some (Experiments.Exp_common.request_telemetry ()))
  in
  Alcotest.(check int) "virtual end time unchanged" base_clock tel_clock;
  (* the sampler adds its own timer events, so the instrumented run
     executes more engine callbacks — but never fewer *)
  "event count only grows" => (tel_events >= base_events)

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "kind collision rejected" `Quick test_kind_collision_rejected;
          Alcotest.test_case "snapshot order + reset" `Quick test_snapshot_order_and_reset;
          Alcotest.test_case "json snapshot" `Quick test_metrics_json;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "virtual-time ticks" `Quick test_sampler_virtual_time;
          Alcotest.test_case "late subscription blanks" `Quick
            test_sampler_late_subscription_blank;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nil sink" `Quick test_trace_nil_sink;
          Alcotest.test_case "events and spans" `Quick test_trace_events_and_spans;
          Alcotest.test_case "exporters" `Quick test_trace_exporters;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, identical bytes" `Quick test_same_seed_byte_identical;
          Alcotest.test_case "observation does not perturb" `Quick
            test_instrumented_run_matches_uninstrumented;
        ] );
    ]
