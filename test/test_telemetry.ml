(* Telemetry subsystem tests: metrics registry, log-bucketed histograms,
   virtual-time sampler, structured tracer + exporters, and the
   determinism contract (same seed => byte-identical artifacts). *)

open Cm_util
open Eventsim

let ( => ) name b = Alcotest.(check bool) name true b
let feq name a b = Alcotest.(check (float 1e-9)) name a b

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---- metrics registry ------------------------------------------------- *)

let test_counter_basics () =
  let m = Telemetry.Metrics.create () in
  let c = Telemetry.Metrics.counter m "pkts" in
  Telemetry.Metrics.incr c;
  Telemetry.Metrics.incr ~by:4 c;
  Alcotest.(check int) "count" 5 (Telemetry.Metrics.count c);
  (* idempotent registration returns the same counter *)
  let c' = Telemetry.Metrics.counter m "pkts" in
  Telemetry.Metrics.incr c';
  Alcotest.(check int) "shared" 6 (Telemetry.Metrics.count c)

let test_kind_collision_rejected () =
  let m = Telemetry.Metrics.create () in
  ignore (Telemetry.Metrics.counter m "x");
  Alcotest.check_raises "gauge under counter name"
    (Invalid_argument "Metrics: \"x\" is already registered") (fun () ->
      ignore (Telemetry.Metrics.gauge m "x" (fun () -> 0.)))

let test_snapshot_order_and_reset () =
  let m = Telemetry.Metrics.create () in
  let c = Telemetry.Metrics.counter m "b_counter" in
  ignore (Telemetry.Metrics.gauge m "a_gauge" (fun () -> 7.5));
  let h = Telemetry.Metrics.histogram m "c_hist" in
  Telemetry.Metrics.incr ~by:3 c;
  Telemetry.Metrics.observe h 2.0;
  (* registration order, not alphabetical *)
  Alcotest.(check (list string))
    "snapshot order"
    [ "b_counter"; "a_gauge"; "c_hist" ]
    (List.map fst (Telemetry.Metrics.snapshot m));
  Telemetry.Metrics.reset m;
  Alcotest.(check int) "counter zeroed" 0 (Telemetry.Metrics.count c);
  (match Telemetry.Metrics.snapshot m with
  | [ _; ("a_gauge", Telemetry.Metrics.Sg v); _ ] -> feq "gauge survives reset" 7.5 v
  | _ -> Alcotest.fail "unexpected snapshot shape");
  "histogram zeroed"
  => (Stats.Histogram.count (Telemetry.Metrics.hist h) = 0)

let test_metrics_json () =
  let m = Telemetry.Metrics.create () in
  let c = Telemetry.Metrics.counter m "n" in
  Telemetry.Metrics.incr ~by:2 c;
  ignore (Telemetry.Metrics.gauge m "g" (fun () -> 1.25));
  let s = Json.to_string (Telemetry.Metrics.to_json m) in
  "counter in json" => contains s "\"n\": 2";
  "gauge in json" => contains s "\"g\": 1.25"

(* ---- histogram quantiles ---------------------------------------------- *)

let test_histogram_quantiles () =
  let h = Stats.Histogram.create () in
  for i = 1 to 1000 do
    Stats.Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Stats.Histogram.count h);
  feq "min" 1. (Stats.Histogram.min_value h);
  feq "max" 1000. (Stats.Histogram.max_value h);
  let p50 = Stats.Histogram.quantile h 0.5 in
  (* log-bucketed: coarse, but must land within a power-of-two of truth *)
  "p50 in range" => (p50 >= 250. && p50 <= 1000.);
  let p99 = Stats.Histogram.quantile h 0.99 in
  "p99 in range" => (p99 >= 500. && p99 <= 1000.);
  "monotone" => (Stats.Histogram.quantile h 0.1 <= p50 && p50 <= p99);
  feq "q0 is min" 1. (Stats.Histogram.quantile h 0.);
  feq "q1 is max" 1000. (Stats.Histogram.quantile h 1.)

let test_histogram_merge () =
  let a = Stats.Histogram.create () and b = Stats.Histogram.create () in
  List.iter (Stats.Histogram.observe a) [ 1.; 2.; 3. ];
  List.iter (Stats.Histogram.observe b) [ 100.; 200. ];
  let m = Stats.Histogram.merge a b in
  Alcotest.(check int) "merged count" 5 (Stats.Histogram.count m);
  feq "merged min" 1. (Stats.Histogram.min_value m);
  feq "merged max" 200. (Stats.Histogram.max_value m);
  feq "merged sum" 306. (Stats.Histogram.sum m)

(* ---- sampler ----------------------------------------------------------- *)

let test_sampler_virtual_time () =
  let e = Engine.create () in
  let s = Telemetry.Sampler.create e ~period:(Time.ms 100) () in
  let v = ref 0. in
  Telemetry.Sampler.subscribe s "v" (fun () -> !v);
  Telemetry.Sampler.start s;
  ignore (Engine.schedule_at e (Time.ms 150) (fun () -> v := 5.));
  Engine.run_for e (Time.ms 450);
  Telemetry.Sampler.stop s;
  Alcotest.(check int) "ticks at 100/200/300/400ms" 4 (Telemetry.Sampler.ticks s);
  let b = Buffer.create 256 in
  Telemetry.Sampler.to_csv b s;
  let csv = Buffer.contents b in
  "header" => contains csv "time_s,v";
  (* tick 1 (t=0.1) sees 0, tick 2 (t=0.2) sees the update made at 0.15 *)
  "first tick value" => contains csv "\n0.1,0\n";
  "second tick value" => contains csv "\n0.2,5\n"

let test_sampler_late_subscription_blank () =
  let e = Engine.create () in
  let s = Telemetry.Sampler.create e ~period:(Time.ms 100) () in
  Telemetry.Sampler.subscribe s "early" (fun () -> 1.);
  Telemetry.Sampler.start s;
  Engine.run_for e (Time.ms 250);
  Telemetry.Sampler.subscribe s "late" (fun () -> 2.);
  Engine.run_for e (Time.ms 200);
  Telemetry.Sampler.stop s;
  let b = Buffer.create 256 in
  Telemetry.Sampler.to_csv b s;
  let csv = Buffer.contents b in
  (* pre-subscription ticks render as blank cells, not zeros *)
  "early rows blank in late column" => contains csv "\n0.1,1,\n";
  "later rows filled" => contains csv "\n0.3,1,2\n"

(* ---- tracer ------------------------------------------------------------ *)

let test_trace_nil_sink () =
  "nil is off" => not (Telemetry.Trace.on Telemetry.Trace.nil);
  (* emitting into nil is a harmless no-op *)
  Telemetry.Trace.instant Telemetry.Trace.nil "x" [];
  Alcotest.(check int) "nil stays empty" 0 (Telemetry.Trace.length Telemetry.Trace.nil)

let test_trace_events_and_spans () =
  let e = Engine.create () in
  let tr = Telemetry.Trace.create e in
  ignore
    (Engine.schedule_at e (Time.ms 10) (fun () ->
         Telemetry.Trace.with_span tr ~cat:"test" "work"
           [ ("k", Telemetry.Trace.Int 1) ]
           (fun () -> Telemetry.Trace.instant tr ~cat:"test" "mid" [])));
  Engine.run e;
  match Telemetry.Trace.events tr with
  | [ b; i; en ] ->
      "begin phase" => (b.Telemetry.Trace.phase = Telemetry.Trace.Span_begin);
      "instant phase" => (i.Telemetry.Trace.phase = Telemetry.Trace.Instant);
      "end phase" => (en.Telemetry.Trace.phase = Telemetry.Trace.Span_end);
      Alcotest.(check int) "virtual stamp" (Time.ms 10) b.Telemetry.Trace.ts
  | l -> Alcotest.fail (Printf.sprintf "expected 3 events, got %d" (List.length l))

let test_trace_exporters () =
  let e = Engine.create () in
  let tr = Telemetry.Trace.create e in
  ignore
    (Engine.schedule_at e (Time.ms 1) (fun () ->
         Telemetry.Trace.instant tr ~cat:"cm" "cm.loss"
           [
             ("mode", Telemetry.Trace.Str "ecn");
             ("cwnd", Telemetry.Trace.Int 4096);
             ("ok", Telemetry.Trace.Bool true);
             ("rate", Telemetry.Trace.Float 1.5);
           ]));
  Engine.run e;
  let b = Buffer.create 256 in
  Telemetry.Trace.to_jsonl b tr;
  let jsonl = Buffer.contents b in
  "jsonl ts in ns" => contains jsonl "\"ts_ns\": 1000000";
  "jsonl phase" => contains jsonl "\"ph\": \"i\"";
  "jsonl typed args"
  => (contains jsonl "\"mode\": \"ecn\"" && contains jsonl "\"cwnd\": 4096"
     && contains jsonl "\"ok\": true" && contains jsonl "\"rate\": 1.5");
  Buffer.clear b;
  Telemetry.Trace.to_chrome b tr;
  let chrome = Buffer.contents b in
  "chrome envelope" => contains chrome "{\"traceEvents\": [";
  "chrome ts in us" => contains chrome "\"ts\": 1000";
  "chrome instant scope" => contains chrome "\"s\": \"g\""

let test_empty_histogram_json_is_finite () =
  (* an empty histogram used to render NaN min/max, which [Json] turns
     into null only since PR8 — assert both the shape and parseability *)
  let m = Telemetry.Metrics.create () in
  ignore (Telemetry.Metrics.histogram m "latency");
  let s = Json.to_string (Telemetry.Metrics.to_json m) in
  "count 0" => contains s "\"count\": 0";
  "min null" => contains s "\"min\": null";
  "p99 null" => contains s "\"p99\": null";
  "no NaN leaks" => not (contains s "nan");
  (match Json.parse s with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("empty-histogram JSON does not parse: " ^ e))

let test_exporters_escape_strings () =
  (* names / args with quotes, backslashes and control chars must come
     out as valid JSON in both exporters *)
  let e = Engine.create () in
  let tr = Telemetry.Trace.create e in
  let evil = "a\"b\\c\nd\te\x01f" in
  ignore
    (Engine.schedule_at e (Time.ms 1) (fun () ->
         Telemetry.Trace.instant tr ~cat:"cat\"\n" evil
           [ ("k\"", Telemetry.Trace.Str evil) ]));
  Engine.run e;
  let b = Buffer.create 256 in
  Telemetry.Trace.to_jsonl b tr;
  let jsonl = Buffer.contents b in
  List.iteri
    (fun i line ->
      if String.trim line <> "" then
        match Json.parse line with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Printf.sprintf "jsonl line %d invalid: %s" i e))
    (String.split_on_char '\n' jsonl);
  (* the escaped string roundtrips through the parser *)
  (match Json.parse (String.trim jsonl) with
  | Ok (Json.Obj kvs) -> (
      match List.assoc_opt "name" kvs with
      | Some (Json.Str s) -> Alcotest.(check string) "name roundtrips" evil s
      | _ -> Alcotest.fail "no name field")
  | _ -> Alcotest.fail "jsonl line did not parse as an object");
  Buffer.clear b;
  Telemetry.Trace.to_chrome b tr;
  match Json.parse (Buffer.contents b) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("chrome export invalid: " ^ e)

(* ---- bounded ring trace ------------------------------------------------ *)

let test_ring_trace_overwrites_oldest () =
  let e = Engine.create () in
  let tr = Telemetry.Trace.create_ring e ~capacity:4 in
  Alcotest.(check int) "capacity" 4 (Telemetry.Trace.capacity tr);
  for i = 1 to 10 do
    ignore
      (Engine.schedule_at e (Time.ms i) (fun () ->
           Telemetry.Trace.instant tr ~cat:"t" "ev" [ ("i", Telemetry.Trace.Int i) ]))
  done;
  Engine.run e;
  Alcotest.(check int) "length capped" 4 (Telemetry.Trace.length tr);
  Alcotest.(check int) "dropped counted" 6 (Telemetry.Trace.dropped tr);
  (* survivors are the newest four, oldest -> newest *)
  let is_ =
    List.map
      (fun ev ->
        match ev.Telemetry.Trace.args with
        | [ ("i", Telemetry.Trace.Int i) ] -> i
        | _ -> -1)
      (Telemetry.Trace.events tr)
  in
  Alcotest.(check (list int)) "newest kept in order" [ 7; 8; 9; 10 ] is_;
  Telemetry.Trace.clear tr;
  Alcotest.(check int) "clear resets length" 0 (Telemetry.Trace.length tr);
  Alcotest.(check int) "clear resets dropped" 0 (Telemetry.Trace.dropped tr)

let test_ring_trace_rejects_bad_capacity () =
  let e = Engine.create () in
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Trace.create_ring: capacity must be positive") (fun () ->
      ignore (Telemetry.Trace.create_ring e ~capacity:0))

(* ---- flight recorder --------------------------------------------------- *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cm-test-rec-%d" (Unix.getpid ()))
  in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  cleanup ();
  Fun.protect ~finally:cleanup (fun () -> f dir)

let test_recorder_dump_parses () =
  with_temp_dir (fun dir ->
      let e = Engine.create () in
      let r = Telemetry.Recorder.create e ~out_dir:dir ~tag:"t" ~capacity:8 () in
      let tr = Telemetry.Recorder.trace r in
      for i = 1 to 20 do
        ignore
          (Engine.schedule_at e (Time.ms i) (fun () ->
               Telemetry.Trace.instant tr ~cat:"x" "ev" [ ("i", Telemetry.Trace.Int i) ]))
      done;
      Engine.run e;
      let path = Telemetry.Recorder.dump r ~reason:"test \"breach\"" in
      "dump file exists" => Sys.file_exists path;
      Alcotest.(check int) "one dump" 1 (Telemetry.Recorder.dumps r);
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      (* header + the 8 ring survivors *)
      Alcotest.(check int) "header + capacity lines" 9 (List.length lines);
      List.iter
        (fun line ->
          match Json.parse line with
          | Ok _ -> ()
          | Error e -> Alcotest.fail (Printf.sprintf "dump line invalid: %s" e))
        lines;
      match Json.parse (List.hd lines) with
      | Ok (Json.Obj kvs) ->
          "header names reason"
          => (match List.assoc_opt "reason" kvs with
             | Some (Json.Str s) -> s = "test \"breach\""
             | _ -> false);
          "header counts drops"
          => (match List.assoc_opt "dropped" kvs with
             | Some (Json.Int d) -> d = 12
             | _ -> false)
      | _ -> Alcotest.fail "dump header did not parse as an object")

let test_recorder_dumps_on_escape () =
  with_temp_dir (fun dir ->
      let e = Engine.create () in
      let r = Telemetry.Recorder.create e ~out_dir:dir ~tag:"crash" () in
      ignore
        (Engine.schedule_at e (Time.ms 1) (fun () ->
             Telemetry.Trace.instant (Telemetry.Recorder.trace r) ~cat:"x" "last-words" []));
      ignore (Engine.schedule_at e (Time.ms 2) (fun () -> failwith "sim bug"));
      (try
         Engine.run e;
         Alcotest.fail "exception swallowed"
       with Failure _ -> ());
      Alcotest.(check int) "crash produced a dump" 1 (Telemetry.Recorder.dumps r);
      match Telemetry.Recorder.last_file r with
      | Some path ->
          let ic = open_in path in
          let header = input_line ic in
          close_in ic;
          "reason mentions the exception" => contains header "sim bug"
      | None -> Alcotest.fail "no dump file recorded")

let test_telemetry_ring_mode () =
  let e = Engine.create () in
  let tel = Telemetry.create e ~trace_capacity:2 () in
  let tr = Telemetry.trace tel in
  ignore
    (Engine.schedule_at e (Time.ms 1) (fun () ->
         for i = 1 to 5 do
           Telemetry.Trace.instant tr ~cat:"x" "e" [ ("i", Telemetry.Trace.Int i) ]
         done));
  (* the sampler's periodic timer keeps the queue non-empty: bounded run *)
  Engine.run_for e (Time.ms 10);
  Telemetry.stop tel;
  Alcotest.(check int) "bounded" 2 (Telemetry.Trace.length tr);
  Alcotest.(check int) "overwrote" 3 (Telemetry.Trace.dropped tr)

(* ---- end-to-end determinism ------------------------------------------- *)

let artifacts ~expt ~seed =
  let tel = List.hd (Experiments.Trace_run.capture ~expt ~seed) in
  ( Telemetry.export_jsonl tel,
    Telemetry.export_chrome tel,
    Telemetry.export_csv tel,
    Telemetry.export_metrics_json tel )

let test_same_seed_byte_identical () =
  let a1, c1, s1, m1 = artifacts ~expt:"scenario_outage" ~seed:7 in
  let a2, c2, s2, m2 = artifacts ~expt:"scenario_outage" ~seed:7 in
  Alcotest.(check string) "jsonl identical" a1 a2;
  Alcotest.(check string) "chrome identical" c1 c2;
  Alcotest.(check string) "csv identical" s1 s2;
  Alcotest.(check string) "metrics identical" m1 m2;
  "trace is non-trivial" => (String.length a1 > 500);
  "csv has macroflow columns" => contains s1 "mf1.cwnd";
  "trace attributes drop causes" => contains a1 "\"cause\": \"down\"";
  "trace classifies congestion" => contains a1 "cm.congestion"

let test_instrumented_run_matches_uninstrumented () =
  (* telemetry must observe, not perturb: the simulation's outcome is
     identical with and without the nil sink replaced by a live one *)
  let run telemetry =
    let params = { Experiments.Exp_common.default_params with seed = 3; telemetry } in
    let m = Experiments.Fig6.measure_macro params Experiments.Fig6.Tcp_cm ~size:1448 ~n:500 in
    (m.Experiments.Fig6.m_events, m.Experiments.Fig6.m_final_clock)
  in
  let base_events, base_clock = run None in
  let tel_events, tel_clock =
    run (Some (Experiments.Exp_common.request_telemetry ()))
  in
  Alcotest.(check int) "virtual end time unchanged" base_clock tel_clock;
  (* the sampler adds its own timer events, so the instrumented run
     executes more engine callbacks — but never fewer *)
  "event count only grows" => (tel_events >= base_events)

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "kind collision rejected" `Quick test_kind_collision_rejected;
          Alcotest.test_case "snapshot order + reset" `Quick test_snapshot_order_and_reset;
          Alcotest.test_case "json snapshot" `Quick test_metrics_json;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "virtual-time ticks" `Quick test_sampler_virtual_time;
          Alcotest.test_case "late subscription blanks" `Quick
            test_sampler_late_subscription_blank;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nil sink" `Quick test_trace_nil_sink;
          Alcotest.test_case "events and spans" `Quick test_trace_events_and_spans;
          Alcotest.test_case "exporters" `Quick test_trace_exporters;
          Alcotest.test_case "empty histogram renders finite JSON" `Quick
            test_empty_histogram_json_is_finite;
          Alcotest.test_case "exporters escape hostile strings" `Quick
            test_exporters_escape_strings;
        ] );
      ( "ring",
        [
          Alcotest.test_case "overwrites oldest" `Quick test_ring_trace_overwrites_oldest;
          Alcotest.test_case "bad capacity rejected" `Quick test_ring_trace_rejects_bad_capacity;
          Alcotest.test_case "telemetry trace_capacity bounds" `Quick test_telemetry_ring_mode;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "dump file parses" `Quick test_recorder_dump_parses;
          Alcotest.test_case "dumps on escaping exception" `Quick test_recorder_dumps_on_escape;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, identical bytes" `Quick test_same_seed_byte_identical;
          Alcotest.test_case "observation does not perturb" `Quick
            test_instrumented_run_matches_uninstrumented;
        ] );
    ]
