(* Tests for the CM protocol: receiver-side CM feedback (the paper's §5
   "remains to be studied" extension). *)

open Cm_util
open Eventsim
open Netsim

let ( => ) name cond = Alcotest.(check bool) name true cond

let make ?(bandwidth = 1e7) ?(delay = Time.ms 10) ?(loss = 0.) ?(seed = 1) () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed in
  let net = Topology.pipe engine ~bandwidth_bps:bandwidth ~delay ~loss_rate:loss ~rng () in
  let cm = Cm.create engine ~mtu:1000 () in
  Cm.attach cm net.Topology.a;
  let sender_agent = Cmproto.Sender_agent.install net.Topology.a cm in
  let receiver_agent = Cmproto.Receiver_agent.install net.Topology.b () in
  (engine, net, cm, sender_agent, receiver_agent)

let test_unwrap () =
  let inner = Packet.Raw 42 in
  let wrapped = Cmproto.Data { seq = 7; ts = 9; inner } in
  "unwrap strips the header" => (Cmproto.unwrap wrapped == inner);
  "unwrap passes plain payloads" => (Cmproto.unwrap inner == inner)

let test_receiver_strips_header_for_app () =
  let engine, net, cm, agent, _r = make () in
  let got = ref [] in
  let server = Udp.Socket.create net.Topology.b ~port:7000 () in
  Udp.Socket.on_receive server (fun pkt -> got := pkt.Packet.payload :: !got);
  let session =
    Cmproto.Session.create agent ~host:net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ()
  in
  Cmproto.Session.send session 500;
  Engine.run_for engine (Time.ms 100);
  (match !got with
  | [ Packet.Raw 500 ] -> ()
  | [ _ ] -> Alcotest.fail "application saw a wrapped payload"
  | l -> Alcotest.fail (Printf.sprintf "expected exactly one packet, got %d" (List.length l)));
  "app never acknowledges anything" => (Udp.Socket.packets_sent server = 0)

let test_feedback_closes_the_loop () =
  let engine, _net, cm, agent, receiver = make () in
  let session =
    Cmproto.Session.create agent ~host:_net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ()
  in
  (* note: no application socket at all on the receiver — the agent still
     acknowledges *)
  for _ = 1 to 20 do
    Cmproto.Session.send session 500
  done;
  Engine.run_for engine (Time.sec 2.);
  Alcotest.(check int) "all datagrams transmitted" 20 (Cmproto.Session.packets_sent session);
  Alcotest.(check int) "all resolved by kernel feedback" 0
    (Cmproto.Session.unresolved_packets session);
  "receiver agent saw the data" => (Cmproto.Receiver_agent.data_seen receiver = 20);
  "feedback flowed" => (Cmproto.Receiver_agent.feedback_sent receiver > 0);
  "sender consumed it" => (Cmproto.Sender_agent.feedback_received agent > 0)

let test_feedback_batches () =
  let engine, _net, cm, agent, receiver = make () in
  let session =
    Cmproto.Session.create agent ~host:_net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ()
  in
  for _ = 1 to 40 do
    Cmproto.Session.send session 500
  done;
  Engine.run_for engine (Time.sec 3.);
  let fb = Cmproto.Receiver_agent.feedback_sent receiver in
  (* ack_every = 2: roughly one feedback per two data packets *)
  "feedback batched like delayed acks" => (fb <= 25 && fb >= 15);
  ignore engine

let test_window_opens_and_paces () =
  (* a 1 Mbit/s link: 100 KB must take >= ~0.8 s; the CM window must be
     driven purely by kernel feedback *)
  let engine, _net, cm, agent, _r = make ~bandwidth:1e6 () in
  let session =
    Cmproto.Session.create agent ~host:_net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ()
  in
  for _ = 1 to 100 do
    Cmproto.Session.send session (1000 - Cmproto.header_bytes)
  done;
  Engine.run_for engine (Time.ms 500);
  "not everything can have been sent yet" => (Cmproto.Session.packets_sent session < 100);
  Engine.run_for engine (Time.sec 10.);
  Alcotest.(check int) "all sent eventually" 100 (Cmproto.Session.packets_sent session);
  Alcotest.(check int) "all resolved" 0 (Cmproto.Session.unresolved_packets session)

let test_loss_detected_via_gaps () =
  let engine, _net, cm, agent, _r = make ~loss:0.05 ~seed:9 () in
  let session =
    Cmproto.Session.create agent ~host:_net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ()
  in
  let feeder = Timer.create engine ~callback:(fun () ->
      for _ = 1 to 10 do
        if Cmproto.Session.queued session < 64 then Cmproto.Session.send session 500
      done)
  in
  Timer.start_periodic feeder (Time.ms 20);
  Engine.run_for engine (Time.sec 10.);
  Timer.stop feeder;
  let mf = Cm.macroflow_of cm (Cmproto.Session.flow session) in
  "losses fed the loss estimate" => (Cm.Macroflow.loss_rate mf > 0.001);
  "window stayed sane" => (Cm.Macroflow.cwnd mf < 1_000_000)

let test_rtt_reaches_cm () =
  let engine, _net, cm, agent, _r = make ~delay:(Time.ms 25) () in
  let session =
    Cmproto.Session.create agent ~host:_net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ()
  in
  for _ = 1 to 10 do
    Cmproto.Session.send session 500
  done;
  Engine.run_for engine (Time.sec 2.);
  match (Cm.query cm (Cmproto.Session.flow session)).Cm.Cm_types.srtt with
  | Some srtt -> "srtt near the 50 ms path rtt" => (srtt > Time.ms 45 && srtt < Time.ms 150)
  | None -> Alcotest.fail "no rtt reached the CM"

let test_plain_traffic_untouched () =
  (* non-CM-protocol packets must pass both agents unmodified *)
  let engine, net, _cm, _agent, _r = make () in
  let got = ref 0 in
  let server = Udp.Socket.create net.Topology.b ~port:7777 () in
  Udp.Socket.on_receive server (fun pkt -> got := Packet.payload_bytes pkt);
  let plain = Udp.Socket.create net.Topology.a () in
  Udp.Socket.sendto plain ~dst:(Addr.endpoint ~host:1 ~port:7777) ~payload_bytes:123
    (Packet.Raw 123);
  Engine.run_for engine (Time.ms 100);
  Alcotest.(check int) "plain packet delivered unchanged" 123 !got

let test_orphan_feedback_counted () =
  let engine, _net, cm, agent, _r = make () in
  let session =
    Cmproto.Session.create agent ~host:_net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ()
  in
  Cmproto.Session.send session 500;
  Engine.run_for engine (Time.ms 20);
  (* close before the feedback returns *)
  Cmproto.Session.close session;
  Engine.run_for engine (Time.sec 1.);
  "late feedback counted as orphan" => (Cmproto.Sender_agent.orphan_feedback agent >= 1)

let test_session_close_releases () =
  let engine, _net, cm, agent, _r = make () in
  let session =
    Cmproto.Session.create agent ~host:_net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ()
  in
  Engine.run_for engine (Time.ms 10);
  Cmproto.Session.close session;
  Alcotest.(check (list int)) "cm flow released" [] (Cm.flows cm);
  "send after close raises"
  => (try
        Cmproto.Session.send session 100;
        false
      with Invalid_argument _ -> true)

(* ---- feedback-plane hardening ------------------------------------------- *)

module Control_faults = Cm_dynamics.Control_faults

(* like [make], but with control-fault injectors registered before the
   agents (receive filters run in registration order: the injector must
   see control packets before the agent consumes them) and the CM fully
   defended *)
let make_hardened ?(bandwidth = 1e7) ?(delay = Time.ms 10) ?(seed = 1) () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed in
  let net = Topology.pipe engine ~bandwidth_bps:bandwidth ~delay ~rng () in
  let cm =
    Cm.create engine ~mtu:1000 ~feedback_watchdog:Cm.Macroflow.default_watchdog
      ~auditor:Cm.default_auditor ()
  in
  Cm.attach cm net.Topology.a;
  let snd_inj = Control_faults.install net.Topology.a ~classify:Cmproto.is_control in
  let rcv_inj = Control_faults.install net.Topology.b ~classify:Cmproto.is_control in
  let agent = Cmproto.Sender_agent.install net.Topology.a cm in
  let receiver = Cmproto.Receiver_agent.install net.Topology.b () in
  (engine, net, cm, agent, receiver, snd_inj, rcv_inj, rng)

(* one 40-packet transfer, optionally with a control-plane filter
   installed before the agents; returns what the hardening must keep
   invariant under duplication/reordering *)
let run_transfer ?twiddle () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:1 in
  let net = Topology.pipe engine ~bandwidth_bps:1e7 ~delay:(Time.ms 10) ~rng () in
  let cm = Cm.create engine ~mtu:1000 () in
  Cm.attach cm net.Topology.a;
  (match twiddle with Some f -> f engine net | None -> ());
  let agent = Cmproto.Sender_agent.install net.Topology.a cm in
  let _receiver = Cmproto.Receiver_agent.install net.Topology.b () in
  let session =
    Cmproto.Session.create agent ~host:net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ()
  in
  for _ = 1 to 40 do
    Cmproto.Session.send session 500
  done;
  Engine.run_for engine (Time.sec 5.);
  let srtt = (Cm.query cm (Cmproto.Session.flow session)).Cm.Cm_types.srtt in
  ( srtt,
    Cmproto.Session.packets_sent session,
    Cmproto.Session.unresolved_packets session,
    Cmproto.Sender_agent.counters agent,
    (Cm.counters cm).Cm.updates )

let test_duplicate_feedback_rejected () =
  let clean_srtt, clean_sent, clean_unres, _, clean_updates = run_transfer () in
  (* duplicate every control packet in the same tick *)
  let dup_filter engine net =
    let replaying = ref false in
    Host.add_rx_filter net.Topology.a (fun pkt ->
        if (not !replaying) && Cmproto.is_control pkt then
          ignore
            (Engine.schedule_after engine 0 (fun () ->
                 replaying := true;
                 Host.deliver net.Topology.a pkt;
                 replaying := false));
        Some pkt)
  in
  let srtt, sent, unres, d, updates = run_transfer ~twiddle:dup_filter () in
  "duplicates were seen and dropped" => (d.Cmproto.Sender_agent.dup_feedback > 0);
  Alcotest.(check int) "same packets sent" clean_sent sent;
  Alcotest.(check int) "everything resolved" clean_unres unres;
  Alcotest.(check int) "identical cm_update stream" clean_updates updates;
  match (clean_srtt, srtt) with
  | Some a, Some b -> Alcotest.(check int) "identical srtt" a b
  | _ -> Alcotest.fail "srtt missing"

let test_reordered_feedback_merged () =
  let clean_srtt, clean_sent, _, _, _ = run_transfer () in
  (* capture three consecutive feedback packets and re-deliver them fully
     reversed: the newest cumulative packet must supersede the two
     stragglers *)
  let reorder_filter engine net =
    let buf = ref [] and seen = ref 0 and replaying = ref false in
    Host.add_rx_filter net.Topology.a (fun pkt ->
        if !replaying || not (Cmproto.is_control pkt) then Some pkt
        else begin
          incr seen;
          if !seen >= 4 && !seen <= 6 then begin
            buf := pkt :: !buf;
            (* cons order = newest first = full reversal on release *)
            if List.length !buf = 3 then begin
              let pkts = !buf in
              buf := [];
              ignore
                (Engine.schedule_after engine (Time.ms 1) (fun () ->
                     replaying := true;
                     List.iter (Host.deliver net.Topology.a) pkts;
                     replaying := false))
            end;
            None
          end
          else Some pkt
        end)
  in
  let srtt, sent, unres, d, _ = run_transfer ~twiddle:reorder_filter () in
  "the two stragglers were dropped" => (d.Cmproto.Sender_agent.dup_feedback >= 2);
  "no echo ever looked like the future" => (d.Cmproto.Sender_agent.bad_echoes = 0);
  Alcotest.(check int) "same packets sent" clean_sent sent;
  Alcotest.(check int) "everything resolved" 0 unres;
  match (clean_srtt, srtt) with
  | Some a, Some b ->
      "srtt within 5 ms of the in-order run"
      => (abs (a - b) < Time.ms 5 && b > 0)
  | _ -> Alcotest.fail "srtt missing"

let test_future_echo_clamped () =
  (* regression: a reordered/forged echo from the future must never
     produce a negative RTT sample — the guard drops the sample and
     counts it *)
  let engine, net, cm, agent, _r = make () in
  let session =
    Cmproto.Session.create agent ~host:net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ()
  in
  for _ = 1 to 4 do
    Cmproto.Session.send session 500
  done;
  Engine.run_for engine (Time.sec 1.);
  let fid = Cmproto.Session.flow session in
  let srtt_before = (Cm.query cm fid).Cm.Cm_types.srtt in
  let data_flow = Cm.flow_key cm fid in
  let now = Engine.now engine in
  (* fb_seq far ahead so the dup guard accepts it; totals equal to what
     is already applied (4 packets x (500 + header) wire bytes) so the
     deltas are zero — only the poisoned echo distinguishes it *)
  let forged =
    Packet.make ~now
      ~flow:(Cmproto.feedback_flow ~from_host:1 ~to_host:0)
      ~payload_bytes:Cmproto.feedback_wire_bytes
      (Cmproto.Feedback
         {
           data_flow;
           epoch = 0;
           fb_seq = 9999;
           max_seq = 4;
           total_count = 4;
           total_bytes = 4 * (500 + Cmproto.header_bytes);
           ts_echo = Time.add now (Time.sec 5.);
         })
  in
  Host.deliver net.Topology.a forged;
  Engine.run_for engine (Time.ms 50);
  Alcotest.(check int) "future echo clamped and counted" 1
    (Cmproto.Sender_agent.counters agent).Cmproto.Sender_agent.bad_echoes;
  let srtt_after = (Cm.query cm fid).Cm.Cm_types.srtt in
  (match srtt_after with
  | Some s -> "srtt still positive" => (s > 0)
  | None -> ());
  "poisoned sample never reached the estimator" => (srtt_before = srtt_after)

let blackout = { Control_faults.drop = 1.0; dup = 0.0; delay = 0; jitter = 0 }

let test_blackout_decays_and_recovers () =
  let engine, net, cm, agent, _recv, snd_inj, rcv_inj, rng = make_hardened () in
  let session =
    Cmproto.Session.create agent ~host:net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ~queue_limit_pkts:64 ()
  in
  let pump =
    Timer.create engine ~callback:(fun () ->
        while Cmproto.Session.queued session < 16 do
          Cmproto.Session.send session 500
        done)
  in
  Timer.start_periodic pump (Time.ms 5);
  (* total control-plane partition from 2 s to 5 s *)
  Control_faults.engage snd_inj ~rng:(Rng.split rng) ~at:(Time.sec 2.) ~profile:blackout
    ~duration:(Time.sec 3.);
  Control_faults.engage rcv_inj ~rng:(Rng.split rng) ~at:(Time.sec 2.) ~profile:blackout
    ~duration:(Time.sec 3.);
  let fid = Cmproto.Session.flow session in
  let pre_cwnd = ref 0 and floor_cwnd = ref max_int and sent_at_fault_end = ref 0 in
  ignore
    (Engine.schedule_at engine (Time.sec 2.) (fun () ->
         pre_cwnd := (Cm.query cm fid).Cm.Cm_types.cwnd));
  let rec probe () =
    let now = Engine.now engine in
    if now >= Time.sec 4. && now < Time.sec 5. then begin
      let c = (Cm.query cm fid).Cm.Cm_types.cwnd in
      if c < !floor_cwnd then floor_cwnd := c
    end;
    if now < Time.sec 5. then ignore (Engine.schedule_after engine (Time.ms 100) probe)
  in
  ignore (Engine.schedule_at engine (Time.sec 4.) probe);
  ignore
    (Engine.schedule_at engine (Time.sec 5.) (fun () ->
         sent_at_fault_end := Cmproto.Session.packets_sent session));
  Engine.run_for engine (Time.sec 12.);
  Timer.stop pump;
  "watchdog aged the silent window" => (Cm.watchdog_fires cm > 0);
  "cwnd decayed toward the floor" => (!floor_cwnd < !pre_cwnd);
  "sender solicited the receiver" => (Cmproto.Session.solicits_sent session >= 1);
  "goodput resumed after the blackout"
  => (Cmproto.Session.packets_sent session > !sent_at_fault_end + 100);
  Alcotest.(check (list string)) "auditor clean throughout" []
    (Cm.Audit.run cm).Cm.Audit.violations

let test_solicit_backoff_bounded () =
  (* only the feedback direction is dark: the sender starves, solicits
     with exponential backoff — a handful of solicits over 3 s, not one
     per maintenance tick *)
  let engine, net, cm, agent, _recv, snd_inj, _rcv_inj, rng = make_hardened () in
  let session =
    Cmproto.Session.create agent ~host:net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ~queue_limit_pkts:64 ()
  in
  let pump =
    Timer.create engine ~callback:(fun () ->
        while Cmproto.Session.queued session < 16 do
          Cmproto.Session.send session 500
        done)
  in
  Timer.start_periodic pump (Time.ms 5);
  Control_faults.engage snd_inj ~rng:(Rng.split rng) ~at:(Time.sec 1.) ~profile:blackout
    ~duration:(Time.sec 3.);
  Engine.run_for engine (Time.sec 6.);
  Timer.stop pump;
  let solicits = Cmproto.Session.solicits_sent session in
  "solicited at least twice" => (solicits >= 2);
  "but backed off exponentially" => (solicits <= 10)

let test_receiver_crash_restart_resync () =
  let engine, net, cm, agent, receiver, _si, _ri, _rng = make_hardened () in
  let session =
    Cmproto.Session.create agent ~host:net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ~queue_limit_pkts:64 ()
  in
  let pump =
    Timer.create engine ~callback:(fun () ->
        while Cmproto.Session.queued session < 16 do
          Cmproto.Session.send session 500
        done)
  in
  Timer.start_periodic pump (Time.ms 5);
  ignore
    (Engine.schedule_at engine (Time.sec 1.) (fun () -> Cmproto.Receiver_agent.crash receiver));
  ignore
    (Engine.schedule_at engine (Time.sec 1.5) (fun () ->
         Cmproto.Receiver_agent.restart receiver));
  Engine.run_for engine (Time.sec 6.);
  Timer.stop pump;
  Engine.run_for engine (Time.sec 2.);
  Alcotest.(check int) "receiver came back with a new epoch" 1
    (Cmproto.Receiver_agent.epoch receiver);
  "receiver announced the restart" => (Cmproto.Receiver_agent.resyncs_sent receiver >= 1);
  "sender resynchronized" =>
  ((Cmproto.Sender_agent.counters agent).Cmproto.Sender_agent.resyncs >= 1);
  "data dropped while down was counted"
  => (Cmproto.Receiver_agent.dropped_while_down receiver > 0);
  Alcotest.(check int) "ledger fully resolved after resync" 0
    (Cmproto.Session.unresolved_packets session);
  Alcotest.(check (list string)) "auditor clean" [] (Cm.Audit.run cm).Cm.Audit.violations

let () =
  Alcotest.run "cmproto"
    [
      ( "wire",
        [
          Alcotest.test_case "unwrap" `Quick test_unwrap;
          Alcotest.test_case "receiver strips header" `Quick test_receiver_strips_header_for_app;
          Alcotest.test_case "plain traffic untouched" `Quick test_plain_traffic_untouched;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "closes the loop without app code" `Quick
            test_feedback_closes_the_loop;
          Alcotest.test_case "batches like delayed acks" `Quick test_feedback_batches;
          Alcotest.test_case "rtt reaches the cm" `Quick test_rtt_reaches_cm;
          Alcotest.test_case "orphan feedback counted" `Quick test_orphan_feedback_counted;
        ] );
      ( "session",
        [
          Alcotest.test_case "window paces transmissions" `Quick test_window_opens_and_paces;
          Alcotest.test_case "loss via sequence gaps" `Quick test_loss_detected_via_gaps;
          Alcotest.test_case "close releases resources" `Quick test_session_close_releases;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "duplicate feedback rejected" `Quick
            test_duplicate_feedback_rejected;
          Alcotest.test_case "3-packet reordering merged" `Quick
            test_reordered_feedback_merged;
          Alcotest.test_case "future ts_echo clamped (no negative rtt)" `Quick
            test_future_echo_clamped;
          Alcotest.test_case "blackout decays to floor, recovers" `Quick
            test_blackout_decays_and_recovers;
          Alcotest.test_case "solicitation backs off exponentially" `Quick
            test_solicit_backoff_bounded;
          Alcotest.test_case "receiver crash/restart resyncs" `Quick
            test_receiver_crash_restart_resync;
        ] );
    ]
