(* Tests for the many-flow scale experiment family: deterministic JSON
   (the CI gate diffs same-seed runs byte-for-byte) and the workload's
   accounting invariants. *)

let params seed = { Experiments.Exp_common.default_params with Experiments.Exp_common.seed }

let json p points =
  Experiments.Exp_common.Json.to_string (Experiments.Scale.to_json p points)

(* same seed, same JSON — the wall clock is deliberately outside it *)
let test_deterministic () =
  let p = params 7 in
  let run () = Experiments.Scale.run ~sizes:[ 64 ] p in
  Alcotest.(check string) "same-seed runs serialize identically" (json p (run ()))
    (json p (run ()))

let test_seed_matters () =
  let run seed = json (params seed) (Experiments.Scale.run ~sizes:[ 64 ] (params seed)) in
  Alcotest.(check bool) "different seeds give different latency profiles" true
    (run 7 <> run 8)

let test_accounting () =
  let p = params 7 in
  let pt = Experiments.Scale.run_point p ~sched:Experiments.Scale.Rr ~flows:64 in
  let open Experiments.Scale in
  Alcotest.(check int) "every flow completes its rounds" (64 * rounds) pt.p_grants;
  Alcotest.(check bool) "churn closes on top of the final close-all" true (pt.p_closes > 64);
  Alcotest.(check int) "teardown probes: one per close" pt.p_closes pt.p_teardown_probes;
  Alcotest.(check int) "macroflows = flows / 32" 2 pt.p_macroflows

(* both schedulers drive the same workload to completion *)
let test_stride_point () =
  let p = params 7 in
  let pt = Experiments.Scale.run_point p ~sched:Experiments.Scale.Stride ~flows:64 in
  Alcotest.(check int) "every flow completes its rounds" (64 * Experiments.Scale.rounds)
    pt.Experiments.Scale.p_grants

let () =
  Alcotest.run "scale"
    [
      ( "scale",
        [
          Alcotest.test_case "deterministic JSON for a fixed seed" `Quick test_deterministic;
          Alcotest.test_case "seed changes the run" `Quick test_seed_matters;
          Alcotest.test_case "grant/close accounting" `Quick test_accounting;
          Alcotest.test_case "stride scheduler completes the workload" `Quick test_stride_point;
        ] );
    ]
