(* Tests for the applications: layered streaming, vat, web, bulk. *)

open Cm_util
open Eventsim
open Netsim

let ( => ) name cond = Alcotest.(check bool) name true cond

let make ?(bandwidth = 8e6) ?(qdisc_limit = 50) () =
  let engine = Engine.create () in
  let net = Topology.pipe engine ~bandwidth_bps:bandwidth ~delay:(Time.ms 20) ~qdisc_limit () in
  let cm = Cm.create engine ~mtu:1000 () in
  Cm.attach cm net.Topology.a;
  let lib = Libcm.create net.Topology.a cm () in
  (engine, net, cm, lib)

let layers = [| 0.5e6; 1e6; 2e6; 4e6 |]

(* ---- Layered ---------------------------------------------------------- *)

let test_layered_alf_fills_pipe () =
  let engine, net, _cm, lib = make () in
  let _rx = Udp.Cc_socket.run_echo_receiver net.Topology.b ~port:5004 () in
  let src =
    Cm_apps.Layered.create lib ~host:net.Topology.a
      ~dst:(Addr.endpoint ~host:1 ~port:5004)
      ~layers ~mode:Cm_apps.Layered.Alf ()
  in
  Cm_apps.Layered.start src;
  Engine.run_for engine (Time.sec 10.);
  Cm_apps.Layered.stop src;
  let sent = Cm_apps.Layered.bytes_sent src in
  (* 8 Mbit/s for ~10 s ≈ 10 MB; expect a decent fraction after slow start *)
  "ALF source used most of the link" => (sent > 5_000_000);
  "settled on the top layer" => (Cm_apps.Layered.current_layer src = 3)

let test_layered_alf_tracks_bandwidth_drop () =
  let engine, net, _cm, lib = make () in
  let _rx = Udp.Cc_socket.run_echo_receiver net.Topology.b ~port:5004 () in
  Cm_dynamics.Faults.bandwidth_steps engine net.Topology.ab [ (Time.sec 5., 0.9e6) ];
  let src =
    Cm_apps.Layered.create lib ~host:net.Topology.a
      ~dst:(Addr.endpoint ~host:1 ~port:5004)
      ~layers ~mode:Cm_apps.Layered.Alf ()
  in
  Cm_apps.Layered.start src;
  Engine.run_for engine (Time.sec 15.);
  Cm_apps.Layered.stop src;
  "dropped to a low layer after the squeeze" => (Cm_apps.Layered.current_layer src <= 1)

let test_layered_rate_mode_switches_layers () =
  let engine, net, _cm, lib = make () in
  let _rx = Udp.Cc_socket.run_echo_receiver net.Topology.b ~port:5004 () in
  let src =
    Cm_apps.Layered.create lib ~host:net.Topology.a
      ~dst:(Addr.endpoint ~host:1 ~port:5004)
      ~layers
      ~mode:(Cm_apps.Layered.Rate_callback { down = 0.9; up = 1.1 })
      ()
  in
  Cm_apps.Layered.start src;
  Alcotest.(check int) "starts at base layer" 0 (Cm_apps.Layered.current_layer src);
  Engine.run_for engine (Time.sec 15.);
  Cm_apps.Layered.stop src;
  "climbed above the base layer" => (Cm_apps.Layered.current_layer src >= 2);
  "timelines recorded" => (Timeline.length (Cm_apps.Layered.tx_timeline src) > 100)

let test_layered_stop_stops () =
  let engine, net, _cm, lib = make () in
  let _rx = Udp.Cc_socket.run_echo_receiver net.Topology.b ~port:5004 () in
  let src =
    Cm_apps.Layered.create lib ~host:net.Topology.a
      ~dst:(Addr.endpoint ~host:1 ~port:5004)
      ~layers
      ~mode:(Cm_apps.Layered.Rate_callback { down = 0.9; up = 1.1 })
      ()
  in
  Cm_apps.Layered.start src;
  Engine.run_for engine (Time.sec 2.);
  Cm_apps.Layered.stop src;
  let sent = Cm_apps.Layered.packets_sent src in
  Engine.run_for engine (Time.sec 2.);
  Alcotest.(check int) "no packets after stop" sent (Cm_apps.Layered.packets_sent src)

(* ---- Vat --------------------------------------------------------------- *)

let test_vat_full_rate_when_bandwidth_ample () =
  let engine, net, _cm, lib = make ~bandwidth:1e6 () in
  let _rx = Cm_apps.Vat.Receiver.create net.Topology.b ~port:5006 () in
  let vat =
    Cm_apps.Vat.create lib ~host:net.Topology.a ~dst:(Addr.endpoint ~host:1 ~port:5006) ()
  in
  Cm_apps.Vat.start vat;
  Engine.run_for engine (Time.sec 10.);
  Cm_apps.Vat.stop vat;
  let s = Cm_apps.Vat.stats vat in
  (* 50 frames/s for 10 s = 500 frames; allow warmup losses *)
  "nearly all frames sent" => (s.Cm_apps.Vat.frames_sent > 450);
  "few policer drops" => (s.Cm_apps.Vat.policer_drops < 30)

let test_vat_polices_under_squeeze () =
  let engine, net, _cm, lib = make ~bandwidth:32e3 ~qdisc_limit:10 () in
  let rx = Cm_apps.Vat.Receiver.create net.Topology.b ~port:5006 () in
  let vat =
    Cm_apps.Vat.create lib ~host:net.Topology.a ~dst:(Addr.endpoint ~host:1 ~port:5006) ()
  in
  Cm_apps.Vat.start vat;
  Engine.run_for engine (Time.sec 20.);
  Cm_apps.Vat.stop vat;
  let s = Cm_apps.Vat.stats vat in
  "source kept producing" => (s.Cm_apps.Vat.frames_in > 900);
  "policer shed a large fraction" => (s.Cm_apps.Vat.policer_drops + s.Cm_apps.Vat.buffer_drops > 300);
  "but frames still flowed" => (Cm_apps.Vat.Receiver.frames_received rx > 50);
  (* delivered rate must be near the link rate, not the source rate *)
  let delivered_bps =
    float_of_int (Cm_apps.Vat.Receiver.frames_received rx * 160 * 8) /. 20.
  in
  "delivered near link capacity" => (delivered_bps < 40_000.)

let test_vat_app_buffer_bounds_delay () =
  let engine, net, _cm, lib = make ~bandwidth:48e3 ~qdisc_limit:5 () in
  let rx = Cm_apps.Vat.Receiver.create net.Topology.b ~port:5006 () in
  let vat =
    Cm_apps.Vat.create lib ~host:net.Topology.a
      ~dst:(Addr.endpoint ~host:1 ~port:5006)
      ~app_buffer_frames:5 ()
  in
  Cm_apps.Vat.start vat;
  Engine.run_for engine (Time.sec 20.);
  Cm_apps.Vat.stop vat;
  let d = Cm_apps.Vat.Receiver.delay_stats rx in
  (* app buffer 5 frames + small kernel queue: delay stays well under a
     second even though the source is twice the link rate *)
  "frames delivered" => (Stats.count d > 50);
  "p-max delay bounded" => (Stats.max_value d < 1_000.)


let test_vat_playout_accounting () =
  (* ample bandwidth: with a 100 ms playout offset essentially every frame
     makes its slot *)
  let engine, net, _cm, lib = make ~bandwidth:1e6 () in
  let rx = Cm_apps.Vat.Receiver.create net.Topology.b ~port:5006 () in
  let vat =
    Cm_apps.Vat.create lib ~host:net.Topology.a ~dst:(Addr.endpoint ~host:1 ~port:5006) ()
  in
  Cm_apps.Vat.start vat;
  Engine.run_for engine (Time.sec 10.);
  Cm_apps.Vat.stop vat;
  let on_time = Cm_apps.Vat.Receiver.playout_on_time rx in
  let late = Cm_apps.Vat.Receiver.playout_late rx in
  Alcotest.(check int) "every frame accounted"
    (Cm_apps.Vat.Receiver.frames_received rx)
    (on_time + late);
  "nearly all on time" => (late * 20 < on_time)

let test_vat_playout_late_under_squeeze () =
  (* a 32 kbit/s link under a 64 kbit/s source with a tight 40 ms playout
     budget: a visible fraction of frames misses playout *)
  let run delay =
    let engine, net, _cm, lib = make ~bandwidth:32e3 ~qdisc_limit:10 () in
    let rx =
      Cm_apps.Vat.Receiver.create net.Topology.b ~port:5006 ~playout_delay:delay ()
    in
    let vat =
      Cm_apps.Vat.create lib ~host:net.Topology.a ~dst:(Addr.endpoint ~host:1 ~port:5006) ()
    in
    Cm_apps.Vat.start vat;
    Engine.run_for engine (Time.sec 20.);
    Cm_apps.Vat.stop vat;
    (Cm_apps.Vat.Receiver.playout_on_time rx, Cm_apps.Vat.Receiver.playout_late rx)
  in
  let _on_tight, late_tight = run (Time.ms 40) in
  let _on_loose, late_loose = run (Time.sec 2.) in
  "tight budget misses frames" => (late_tight > 10);
  "larger playout delay absorbs jitter" => (late_loose < late_tight)

(* ---- Web ----------------------------------------------------------------- *)

let test_web_fetch_roundtrip () =
  let engine, net, _cm, _lib = make () in
  let _server = Cm_apps.Web.server net.Topology.b ~port:80 ~file_bytes:50_000 () in
  let result = ref None in
  Cm_apps.Web.fetch net.Topology.a
    ~dst:(Addr.endpoint ~host:1 ~port:80)
    ~expect_bytes:50_000
    ~on_done:(fun r -> result := Some r)
    ();
  Engine.run_for engine (Time.sec 5.);
  match !result with
  | Some r ->
      Alcotest.(check int) "whole file received" 50_000 r.Cm_apps.Web.bytes;
      "took at least two RTTs" => (r.Cm_apps.Web.duration >= Time.ms 80)
  | None -> Alcotest.fail "fetch did not complete"

let test_web_sequential_ordering () =
  let engine, net, _cm, _lib = make () in
  let _server = Cm_apps.Web.server net.Topology.b ~port:80 ~file_bytes:10_000 () in
  let results = ref [] in
  Cm_apps.Web.sequential_fetches net.Topology.a
    ~dst:(Addr.endpoint ~host:1 ~port:80)
    ~expect_bytes:10_000 ~count:4 ~gap:(Time.ms 300)
    ~on_done:(fun rs -> results := rs)
    ();
  Engine.run_for engine (Time.sec 5.);
  Alcotest.(check int) "all four fetches" 4 (List.length !results);
  let starts = List.map (fun r -> r.Cm_apps.Web.started_at) !results in
  let gaps = List.map2 Time.diff (List.tl starts) (List.filteri (fun i _ -> i < 3) starts) in
  List.iter (fun g -> Alcotest.(check int) "starts 300ms apart" (Time.ms 300) g) gaps

let test_web_concurrent_all_complete () =
  let engine, net, _cm, _lib = make () in
  let _server = Cm_apps.Web.server net.Topology.b ~port:80 ~file_bytes:100_000 () in
  let results = ref [] in
  Cm_apps.Web.concurrent_fetches net.Topology.a
    ~dst:(Addr.endpoint ~host:1 ~port:80)
    ~expect_bytes:100_000 ~count:4
    ~on_done:(fun rs -> results := rs)
    ();
  Engine.run_for engine (Time.sec 10.);
  Alcotest.(check int) "all four complete" 4 (List.length !results);
  List.iter
    (fun r -> Alcotest.(check int) "full file each" 100_000 r.Cm_apps.Web.bytes)
    !results


let test_adaptive_server_picks_encoding () =
  (* no estimate -> smallest; after traffic teaches the macroflow -> a
     larger encoding that fits the 1 s budget *)
  let engine = Engine.create () in
  let net = Topology.pipe engine ~bandwidth_bps:2e6 ~delay:(Time.ms 20) () in
  let cm = Cm.create engine () in
  Cm.attach cm net.Topology.b;
  let _server =
    Cm_apps.Web.adaptive_server net.Topology.b ~cm ~port:80
      ~encodings:[| 10_000; 50_000; 200_000 |]
      ~target_latency:(Time.sec 1.)
      ~driver:(Tcp.Conn.Cm_driven cm) ()
  in
  let sizes = ref [] in
  let fetch () =
    let conn = Tcp.Conn.connect net.Topology.a ~dst:(Addr.endpoint ~host:1 ~port:80) () in
    let received = ref 0 in
    Tcp.Conn.on_established conn (fun () -> Tcp.Conn.send conn 100);
    Tcp.Conn.on_receive conn (fun n -> received := !received + n);
    received
  in
  let r1 = fetch () in
  Engine.run_for engine (Time.sec 3.);
  sizes := !r1 :: !sizes;
  let r2 = fetch () in
  Engine.run_for engine (Time.sec 3.);
  sizes := !r2 :: !sizes;
  (match List.rev !sizes with
  | [ first; second ] ->
      Alcotest.(check int) "first request: conservative smallest encoding" 10_000 first;
      (* 2 Mbit/s for 1 s = 250 KB budget; the estimate is conservative but
         must at least step up *)
      "second request serves a larger encoding" => (second > first)
  | _ -> Alcotest.fail "expected two fetches")

(* ---- Bulk ------------------------------------------------------------------ *)

let test_bulk_tcp_push () =
  let engine = Engine.create () in
  let net = Topology.pipe engine ~bandwidth_bps:1e7 ~delay:(Time.ms 5) () in
  let result = ref None in
  Cm_apps.Bulk.tcp_push ~src:net.Topology.a ~dst_host:net.Topology.b ~port:5010 ~buffers:100
    ~buffer_bytes:8192
    ~on_done:(fun r -> result := Some r)
    ();
  Engine.run_for engine (Time.sec 10.);
  match !result with
  | Some r ->
      Alcotest.(check int) "all bytes" (100 * 8192) r.Cm_apps.Bulk.transferred;
      "credible throughput" => (r.Cm_apps.Bulk.throughput_bps > 1e6)
  | None -> Alcotest.fail "bulk tcp push did not finish"

let test_bulk_udp_cc_push () =
  let engine = Engine.create () in
  let net = Topology.pipe engine ~bandwidth_bps:1e7 ~delay:(Time.ms 5) () in
  let cm = Cm.create engine ~mtu:1000 () in
  Cm.attach cm net.Topology.a;
  let result = ref None in
  Cm_apps.Bulk.udp_cc_push ~src:net.Topology.a ~dst_host:net.Topology.b ~port:5011 ~cm
    ~packets:500 ~packet_bytes:1000
    ~on_done:(fun r -> result := Some r)
    ();
  Engine.run_for engine (Time.sec 20.);
  match !result with
  | Some r ->
      (* UDP does not retransmit: slow-start overshoot losses are final;
         the vast majority must still arrive *)
      "most bytes arrived" => (r.Cm_apps.Bulk.transferred > 350_000);
      "nothing beyond what was sent" => (r.Cm_apps.Bulk.transferred <= 500_000)
  | None -> Alcotest.fail "bulk udp push did not finish"

let () =
  Alcotest.run "apps"
    [
      ( "layered",
        [
          Alcotest.test_case "alf fills the pipe" `Quick test_layered_alf_fills_pipe;
          Alcotest.test_case "alf tracks bandwidth drop" `Quick
            test_layered_alf_tracks_bandwidth_drop;
          Alcotest.test_case "rate mode climbs layers" `Quick test_layered_rate_mode_switches_layers;
          Alcotest.test_case "stop stops" `Quick test_layered_stop_stops;
        ] );
      ( "vat",
        [
          Alcotest.test_case "full rate when ample" `Quick test_vat_full_rate_when_bandwidth_ample;
          Alcotest.test_case "polices under squeeze" `Quick test_vat_polices_under_squeeze;
          Alcotest.test_case "buffer bounds delay" `Quick test_vat_app_buffer_bounds_delay;
          Alcotest.test_case "playout accounting" `Quick test_vat_playout_accounting;
          Alcotest.test_case "playout under squeeze" `Quick test_vat_playout_late_under_squeeze;
        ] );
      ( "web",
        [
          Alcotest.test_case "fetch roundtrip" `Quick test_web_fetch_roundtrip;
          Alcotest.test_case "sequential spacing" `Quick test_web_sequential_ordering;
          Alcotest.test_case "concurrent completion" `Quick test_web_concurrent_all_complete;
          Alcotest.test_case "adaptive encoding choice" `Quick test_adaptive_server_picks_encoding;
        ] );
      ( "bulk",
        [
          Alcotest.test_case "tcp push" `Quick test_bulk_tcp_push;
          Alcotest.test_case "udp cc push" `Quick test_bulk_udp_cc_push;
        ] );
    ]
