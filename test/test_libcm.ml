(* Tests for libcm: the user-space CM library, its control-socket
   notification machinery, and the boundary-operation metering. *)

open Cm_util
open Eventsim
open Netsim

let ( => ) name cond = Alcotest.(check bool) name true cond

let make ?(mode = Libcm.Select_loop) ?(costs = Costs.zero) () =
  let engine = Engine.create () in
  let net = Topology.pipe engine ~bandwidth_bps:1e7 ~delay:(Time.ms 5) ~costs () in
  let cm = Cm.create engine ~mtu:1000 () in
  Cm.attach cm net.Topology.a;
  let lib = Libcm.create net.Topology.a cm ~mode () in
  (engine, net, cm, lib)

let flow_key ?(sport = 100) () =
  Addr.flow
    ~src:(Addr.endpoint ~host:0 ~port:sport)
    ~dst:(Addr.endpoint ~host:1 ~port:200)
    ~proto:Addr.Udp ()

let test_api_mirrors_cm () =
  let _engine, _net, cm, lib = make () in
  let fid = Libcm.open_flow lib (flow_key ()) in
  Alcotest.(check int) "mtu via libcm" 1000 (Libcm.mtu lib fid);
  Alcotest.(check (option int)) "flow registered in kernel" (Some fid)
    (Cm.lookup cm (flow_key ()));
  Libcm.close_flow lib fid;
  Alcotest.(check (option int)) "closed in kernel" None (Cm.lookup cm (flow_key ()))

let test_send_callback_via_control_socket () =
  let engine, _net, _cm, lib = make () in
  let fid = Libcm.open_flow lib (flow_key ()) in
  let grants = ref 0 in
  Libcm.register_send lib fid (fun g ->
      Alcotest.(check int) "flow id delivered" fid g;
      incr grants;
      Libcm.notify lib fid ~nbytes:1000);
  Libcm.request lib fid;
  Engine.run_for engine (Time.ms 10);
  Alcotest.(check int) "dispatched through control socket" 1 !grants;
  "at least one wakeup" => (Libcm.dispatches lib >= 1)

let test_batched_dispatch_single_ioctl () =
  (* several grants ready at once are drained with one ready-flows ioctl;
     a non-zero select cost gives the wakeup a window to batch under *)
  let engine, _net, cm, lib = make ~costs:Costs.pentium3 () in
  let f1 = Libcm.open_flow lib (flow_key ~sport:100 ()) in
  let f2 = Libcm.open_flow lib (flow_key ~sport:101 ()) in
  let got = ref [] in
  Libcm.register_send lib f1 (fun g -> got := g :: !got);
  Libcm.register_send lib f2 (fun g -> got := g :: !got);
  (* open the kernel window so both grants fire in the same engine cycle *)
  Cm.update cm f1 ~nsent:2000 ~nrecd:2000 ~loss:Cm.Cm_types.No_loss ~rtt:(Time.ms 10) ();
  let meter = Libcm.meter lib in
  let ioctls_before = Libcm.Ops.count meter Libcm.Ops.Ioctl_query in
  Libcm.bulk_request lib [ f1; f2 ];
  Engine.run_for engine (Time.ms 10);
  Alcotest.(check int) "both flows called back" 2 (List.length !got);
  let ioctls = Libcm.Ops.count meter Libcm.Ops.Ioctl_query - ioctls_before in
  Alcotest.(check int) "one extraction ioctl for both grants" 1 ioctls

let test_update_callback_requeries_status () =
  let engine, _net, _cm, lib = make () in
  let fid = Libcm.open_flow lib (flow_key ()) in
  let statuses = ref [] in
  Libcm.register_update lib fid (fun st -> statuses := st :: !statuses);
  Libcm.set_thresh lib fid ~down:0.5 ~up:1.5;
  Libcm.update lib fid ~nsent:0 ~nrecd:0 ~loss:Cm.Cm_types.No_loss ~rtt:(Time.ms 20) ();
  Engine.run_for engine (Time.ms 10);
  Alcotest.(check int) "status callback delivered" 1 (List.length !statuses);
  match !statuses with
  | [ st ] -> "status carries a rate" => (st.Cm.Cm_types.rate_bps > 0.)
  | _ -> Alcotest.fail "expected one status"

let test_poll_mode_waits_for_tick () =
  let engine, _net, _cm, lib = make ~mode:(Libcm.Poll (Time.ms 50)) () in
  let fid = Libcm.open_flow lib (flow_key ()) in
  let grants = ref 0 in
  Libcm.register_send lib fid (fun _ ->
      incr grants;
      Libcm.notify lib fid ~nbytes:1000);
  Libcm.request lib fid;
  Engine.run_for engine (Time.ms 10);
  Alcotest.(check int) "not dispatched before the poll tick" 0 !grants;
  Engine.run_for engine (Time.ms 60);
  Alcotest.(check int) "dispatched on the tick" 1 !grants

let test_sigio_mode_dispatches () =
  let engine, _net, _cm, lib = make ~mode:Libcm.Sigio () in
  let fid = Libcm.open_flow lib (flow_key ()) in
  let grants = ref 0 in
  Libcm.register_send lib fid (fun _ ->
      incr grants;
      Libcm.notify lib fid ~nbytes:1000);
  Libcm.request lib fid;
  Engine.run_for engine (Time.ms 10);
  Alcotest.(check int) "sigio delivery" 1 !grants;
  "sigio counted" => (Libcm.Ops.count (Libcm.meter lib) Libcm.Ops.Sigio >= 1)

let test_failed_close_keeps_library_state () =
  (* regression: when the CM-side close raises (flow already gone in the
     kernel), the library must not half-forget the flow — its caches and
     ownership record stay intact, and the library remains usable *)
  let _engine, _net, cm, lib = make () in
  let fid = Libcm.open_flow lib (flow_key ()) in
  (* the flow disappears kernel-side behind the library's back *)
  Cm.close_flow cm fid;
  let raised =
    try
      Libcm.close_flow lib fid;
      false
    with Invalid_argument _ -> true
  in
  "failed close raises" => raised;
  (* library state untouched: the mtu cache still answers for the fid *)
  Alcotest.(check int) "mtu still served from the cache" 1000 (Libcm.mtu lib fid);
  (* a second failed close is equally safe *)
  let raised_again =
    try
      Libcm.close_flow lib fid;
      false
    with Invalid_argument _ -> true
  in
  "second failed close raises too" => raised_again;
  (* and the library is still fully usable for new flows *)
  let f2 = Libcm.open_flow lib (flow_key ~sport:101 ()) in
  Alcotest.(check int) "new flow opens fine" 1000 (Libcm.mtu lib f2);
  Libcm.close_flow lib f2;
  Alcotest.(check (option int)) "new flow closes fine" None
    (Cm.lookup cm (flow_key ~sport:101 ()))

let test_decline_grant_counted () =
  (* cm_notify(0) through the library: the grant returns to the window
     and the kernel counts the decline *)
  let engine, _net, cm, lib = make () in
  let fid = Libcm.open_flow lib (flow_key ()) in
  let declines = ref 0 in
  Libcm.register_send lib fid (fun _ ->
      incr declines;
      Libcm.notify lib fid ~nbytes:0);
  Libcm.request lib fid;
  Engine.run_for engine (Time.ms 10);
  Alcotest.(check int) "grant delivered and declined" 1 !declines;
  Alcotest.(check int) "kernel counted the decline" 1 (Cm.counters cm).Cm.declined_grants;
  let mf = Cm.macroflow_of cm fid in
  Alcotest.(check int) "window restored: nothing granted" 0 (Cm.Macroflow.granted mf);
  Alcotest.(check int) "window restored: nothing outstanding" 0 (Cm.Macroflow.outstanding mf);
  "notify ioctl metered" => (Libcm.Ops.count (Libcm.meter lib) Libcm.Ops.Ioctl_notify >= 1)

let test_meter_counts_and_charges () =
  let _engine, net, _cm, lib = make ~costs:Costs.pentium3 () in
  let fid = Libcm.open_flow lib (flow_key ()) in
  let meter = Libcm.meter lib in
  let busy0 = Cpu.total_busy (Host.cpu net.Topology.a) in
  Libcm.request lib fid;
  Libcm.app_send lib ~bytes:1000;
  Libcm.app_recv lib ~bytes:100;
  Libcm.app_gettimeofday lib;
  Alcotest.(check int) "request counted" 1 (Libcm.Ops.count meter Libcm.Ops.Ioctl_request);
  Alcotest.(check int) "send counted" 1 (Libcm.Ops.count meter Libcm.Ops.Send);
  Alcotest.(check int) "recv counted" 1 (Libcm.Ops.count meter Libcm.Ops.Recv);
  Alcotest.(check int) "gettimeofday counted" 1 (Libcm.Ops.count meter Libcm.Ops.Gettimeofday);
  let busy = Cpu.total_busy (Host.cpu net.Topology.a) - busy0 in
  let expected =
    let c = Costs.pentium3 in
    c.Costs.ioctl
    + Libcm.Ops.cost_of c ~bytes:1000 Libcm.Ops.Send
    + Libcm.Ops.cost_of c ~bytes:100 Libcm.Ops.Recv
    + c.Costs.gettimeofday
  in
  Alcotest.(check int) "cpu charged the cost-model time" expected busy

let test_meter_zero_costs_free () =
  let _engine, net, _cm, lib = make () in
  let fid = Libcm.open_flow lib (flow_key ()) in
  Libcm.request lib fid;
  Libcm.app_send lib ~bytes:1000;
  Alcotest.(check int) "no cpu time with zero costs" 0 (Cpu.total_busy (Host.cpu net.Topology.a))

let test_ops_cost_model () =
  let c = Costs.pentium3 in
  Alcotest.(check int) "send includes copy"
    (c.Costs.syscall + Costs.copy c 1000)
    (Libcm.Ops.cost_of c ~bytes:1000 Libcm.Ops.Send);
  Alcotest.(check int) "ioctls equal"
    (Libcm.Ops.cost_of c Libcm.Ops.Ioctl_request)
    (Libcm.Ops.cost_of c Libcm.Ops.Ioctl_notify);
  "select grows with fds" => (Costs.select c ~nfds:10 > Costs.select c ~nfds:2);
  Alcotest.(check int) "all kinds listed" 9 (List.length Libcm.Ops.all)

let test_meter_reset () =
  let _engine, _net, _cm, lib = make () in
  let meter = Libcm.meter lib in
  Libcm.app_send lib ~bytes:10;
  Libcm.app_send lib ~bytes:10;
  Alcotest.(check int) "total before reset" 2 (Libcm.Ops.total meter);
  Libcm.Ops.reset meter;
  Alcotest.(check int) "total after reset" 0 (Libcm.Ops.total meter)

(* ---- destroy vs in-flight grants ----------------------------------------- *)

let audit_clean name cm =
  Alcotest.(check (list string)) name [] (Cm.Audit.run cm).Cm.Audit.violations

let test_destroy_races_inflight_grant () =
  (* destroy in the same tick the grant event is posted, before it is
     delivered: the callback must be suppressed and the granted bytes
     returned exactly once (the audit's ledger-skew check would flag a
     double return as negative skew and a leak as positive skew) *)
  let engine, _net, cm, lib = make () in
  let fid = Libcm.open_flow lib (flow_key ()) in
  let fired = ref 0 in
  Libcm.register_send lib fid (fun _ -> incr fired);
  Libcm.request lib fid;
  Libcm.destroy lib;
  Engine.run_for engine (Time.sec 2.);
  Alcotest.(check int) "callback suppressed after destroy" 0 !fired;
  Alcotest.(check (list int)) "flow reaped" [] (Cm.flows cm);
  audit_clean "grant ledger balanced (returned exactly once)" cm

let test_destroy_mid_dispatch_skips_rest () =
  (* two grants drained by one control-socket wakeup; the first callback
     destroys the process — the second flow's callback must not run, and
     its already-extracted grant must be returned exactly once (by the
     reap, not also by a notify) *)
  let engine, _net, cm, lib = make () in
  let f1 = Libcm.open_flow lib (flow_key ~sport:100 ()) in
  let f2 = Libcm.open_flow lib (flow_key ~sport:101 ()) in
  let f2_fired = ref 0 in
  let destroyed_in_cb = ref false in
  Libcm.register_send lib f1 (fun _ ->
      destroyed_in_cb := true;
      Libcm.destroy lib);
  Libcm.register_send lib f2 (fun _ -> incr f2_fired);
  (* open the window so both grants land in the same wakeup *)
  Cm.update cm f1 ~nsent:2000 ~nrecd:2000 ~loss:Cm.Cm_types.No_loss ~rtt:(Time.ms 10) ();
  Libcm.bulk_request lib [ f1; f2 ];
  Engine.run_for engine (Time.sec 2.);
  "first callback ran and destroyed the process" => !destroyed_in_cb;
  Alcotest.(check int) "second callback suppressed" 0 !f2_fired;
  Alcotest.(check (list int)) "both flows reaped" [] (Cm.flows cm);
  audit_clean "grant ledger balanced after mid-dispatch destroy" cm

let () =
  Alcotest.run "libcm"
    [
      ( "api",
        [
          Alcotest.test_case "mirrors kernel cm" `Quick test_api_mirrors_cm;
          Alcotest.test_case "send callback via control socket" `Quick
            test_send_callback_via_control_socket;
          Alcotest.test_case "batched grant extraction" `Quick test_batched_dispatch_single_ioctl;
          Alcotest.test_case "update callback re-queries" `Quick
            test_update_callback_requeries_status;
          Alcotest.test_case "failed close keeps library state" `Quick
            test_failed_close_keeps_library_state;
          Alcotest.test_case "declined grant counted" `Quick test_decline_grant_counted;
        ] );
      ( "destroy",
        [
          Alcotest.test_case "races in-flight grant" `Quick test_destroy_races_inflight_grant;
          Alcotest.test_case "mid-dispatch destroy skips rest" `Quick
            test_destroy_mid_dispatch_skips_rest;
        ] );
      ( "modes",
        [
          Alcotest.test_case "poll mode" `Quick test_poll_mode_waits_for_tick;
          Alcotest.test_case "sigio mode" `Quick test_sigio_mode_dispatches;
        ] );
      ( "metering",
        [
          Alcotest.test_case "counts and charges" `Quick test_meter_counts_and_charges;
          Alcotest.test_case "zero costs are free" `Quick test_meter_zero_costs_free;
          Alcotest.test_case "cost model" `Quick test_ops_cost_model;
          Alcotest.test_case "reset" `Quick test_meter_reset;
        ] );
    ]
